package dtmsched_test

import (
	"testing"

	dtm "dtmsched"
)

func TestRunOnlinePolicies(t *testing.T) {
	sys := dtm.NewCliqueSystem(24, dtm.Uniform(8, 2), dtm.Seed(3))
	off, err := sys.Run(dtm.AlgGreedy)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []dtm.Policy{dtm.PolicyFIFO, dtm.PolicyNearest, dtm.PolicyRandom} {
		rep, err := sys.RunOnline(pol, 0)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.Makespan < off.LowerBound {
			t.Fatalf("%s: online makespan %d below certified bound %d", pol, rep.Makespan, off.LowerBound)
		}
		if rep.Policy == "" || rep.MeanResponse <= 0 {
			t.Fatalf("%s: report incomplete: %+v", pol, rep)
		}
	}
	if _, err := sys.RunOnline("bogus", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunOnlinePoisson(t *testing.T) {
	sys := dtm.NewLineSystem(32, dtm.Uniform(8, 2), dtm.Seed(4))
	rep, err := sys.RunOnline(dtm.PolicyFIFO, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxResponse < 1 {
		t.Fatalf("MaxResponse = %d", rep.MaxResponse)
	}
}

func TestRunCongested(t *testing.T) {
	sys := dtm.NewStarSystem(6, 4, dtm.Uniform(8, 2), dtm.Seed(5))
	tight, err := sys.RunCongested(dtm.AlgStar, 1)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := sys.RunCongested(dtm.AlgStar, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Dilation < 1 || loose.Dilation != 1 {
		t.Fatalf("dilations: tight %v, loose %v", tight.Dilation, loose.Dilation)
	}
	if tight.Makespan < loose.Makespan {
		t.Fatal("capacity 1 faster than unlimited")
	}
	if _, err := sys.RunCongested(dtm.AlgStar, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := sys.RunCongested(dtm.AlgLine, 1); err == nil {
		t.Fatal("mismatched algorithm accepted")
	}
}

func TestRunReplicated(t *testing.T) {
	sys := dtm.NewCliqueSystem(32, dtm.Uniform(8, 2), dtm.Seed(6))
	allWrites, err := sys.RunReplicated(0)
	if err != nil {
		t.Fatal(err)
	}
	allReads, err := sys.RunReplicated(1)
	if err != nil {
		t.Fatal(err)
	}
	if allReads.Makespan > allWrites.Makespan {
		t.Fatalf("all-reads makespan %d exceeds all-writes %d", allReads.Makespan, allWrites.Makespan)
	}
	if allReads.Conflicts != 0 || allReads.WriteAccesses != 0 {
		t.Fatalf("all-reads report wrong: %+v", allReads)
	}
	if allWrites.WriteAccesses != 64 {
		t.Fatalf("all-writes accesses = %d, want 64", allWrites.WriteAccesses)
	}
	if _, err := sys.RunReplicated(-0.1); err == nil {
		t.Fatal("bad fraction accepted")
	}
}
