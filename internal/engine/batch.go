package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dtmsched/internal/obs"
)

// Options configures RunBatch.
type Options struct {
	// Workers is the goroutine pool size (0 = GOMAXPROCS). Results are
	// identical for every worker count: jobs own their randomness and
	// results are returned in job order.
	Workers int
	// Hook observes every job's stage completions. Called concurrently
	// from the workers; must be goroutine-safe.
	Hook Hook
	// Collector records stage timings, counters, and run traces for
	// every job that does not carry its own Job.Collector. Collectors
	// are goroutine-safe; nil costs nothing.
	Collector *obs.Collector
}

// JobResult pairs one job with its outcome. Exactly one of Report / Err is
// set: jobs skipped by cancellation carry the context's error.
type JobResult struct {
	// Index is the job's position in the input slice.
	Index int
	// Name echoes the job label.
	Name string
	// Report is the finished report on success.
	Report *Report
	// Err is the job's failure: a pipeline error, a recovered scheduler
	// panic, or the context error for jobs not run before cancellation.
	Err error
}

// RunBatch fans jobs out over a bounded worker pool. It always returns one
// JobResult per job, in job order, regardless of completion order. A
// panicking job fails its own result, not the sweep. Cancelling the
// context returns promptly: running jobs stop at their next stage
// boundary, unstarted jobs are marked with the context error, and all
// workers are joined before returning (no goroutine leaks). The returned
// error is the context's error, if any; per-job failures are reported only
// through the results.
func RunBatch(ctx context.Context, jobs []Job, opt Options) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = JobResult{Index: i, Name: jobs[i].Name, Err: err}
					continue // drain remaining jobs as cancelled
				}
				col := jobs[i].Collector
				if col == nil {
					col = opt.Collector
				}
				results[i] = runJob(ctx, i, jobs[i], combineHooks(jobs[i].Hook, opt.Hook), col)
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// runJob executes one job, converting panics (a buggy scheduler, a bad
// workload closure) into that job's error.
func runJob(ctx context.Context, i int, job Job, hook Hook, col *obs.Collector) (res JobResult) {
	res = JobResult{Index: i, Name: job.Name}
	defer func() {
		if r := recover(); r != nil {
			res.Report = nil
			res.Err = fmt.Errorf("engine: job %d (%s) panicked: %v", i, job.Name, r)
		}
	}()
	res.Report, res.Err = run(ctx, i, job, hook, col)
	return res
}

// combineHooks chains a job-level and a batch-level hook.
func combineHooks(a, b Hook) Hook {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return func(ev Event) { a(ev); b(ev) }
	}
}

// Reports unwraps a batch into bare reports, failing on the first job
// error. Convenience for callers (experiments, benches) that treat any
// job failure as fatal.
func Reports(results []JobResult) ([]*Report, error) {
	out := make([]*Report, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("engine: job %d (%s): %w", r.Index, r.Name, r.Err)
		}
		out[i] = r.Report
	}
	return out, nil
}
