package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
)

// RetryPolicy re-runs failed job attempts with bounded exponential
// backoff. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job, including the
	// first (values ≤ 1 mean no retry).
	MaxAttempts int
	// Backoff is the wait before the second attempt (default 50ms); it
	// doubles after every failure up to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 1s).
	MaxBackoff time.Duration
	// Retryable filters which errors are worth retrying. Nil retries
	// every failure while the batch context is alive — deterministic
	// failures simply burn their bounded attempts.
	Retryable func(error) bool
}

// Options configures RunBatch.
type Options struct {
	// Workers is the goroutine pool size (0 = GOMAXPROCS). Results are
	// identical for every worker count: jobs own their randomness and
	// results are returned in job order.
	Workers int
	// Hook observes every job's stage completions. Called concurrently
	// from the workers; must be goroutine-safe.
	Hook Hook
	// Collector records stage timings, counters, and run traces for
	// every job that does not carry its own Job.Collector. Collectors
	// are goroutine-safe; nil costs nothing.
	Collector *obs.Collector
	// Deadline bounds each job attempt's wall time (0 = none). An
	// attempt that exceeds it is abandoned: the worker records the
	// deadline error and moves on, so one hung run cannot stall the
	// pool. The abandoned goroutine exits at its next stage boundary
	// (its context is cancelled); the worker emits the terminal errored
	// event immediately, so hooks and collectors may see one extra late
	// stage event from the abandoned attempt.
	Deadline time.Duration
	// Retry re-runs failed attempts per RetryPolicy. Each retry is
	// counted on the collector (engine_retries_total).
	Retry RetryPolicy
	// LowerOracle serves every job's Measure-stage certified bound from
	// a shared per-instance cache (jobs with their own Job.LowerOracle
	// keep it). Nil gets a fresh oracle scoped to this batch, so sweeps
	// running k algorithms × t trials against one instance compute its
	// bound once; the batch scope keeps retired instances collectable.
	LowerOracle *lower.Oracle
	// LowerWorkers is the worker count for bound computations the batch
	// oracle performs on a miss (≤ 1 = serial). Only consulted when
	// LowerOracle is nil.
	LowerWorkers int
}

// JobResult pairs one job with its outcome. Err is nil on success. On
// failure, Report may still carry the partial report of the stages that
// completed before the error (a schedule whose verification or faulty
// replay failed, for example) — the degraded state; see State and
// PartialReports. Jobs skipped by cancellation carry the context's error.
type JobResult struct {
	// Index is the job's position in the input slice.
	Index int
	// Name echoes the job label.
	Name string
	// Report is the finished report on success, or the partial report on
	// a degraded failure (nil when nothing useful completed).
	Report *Report
	// Err is the job's failure: a pipeline error, a recovered scheduler
	// panic, a deadline overrun, or the context error for jobs not run
	// before cancellation.
	Err error
}

// State classifies a JobResult.
type State int

// Job outcome states.
const (
	// StateOK: the job completed; Report is final.
	StateOK State = iota
	// StateDegraded: the job failed but produced a usable partial report
	// (at least a schedule); Err explains what was lost.
	StateDegraded
	// StateFailed: the job failed with nothing to show.
	StateFailed
)

// String names the state for logs.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// State classifies the result: OK, degraded (partial report + error), or
// failed outright.
func (r JobResult) State() State {
	switch {
	case r.Err == nil:
		return StateOK
	case r.Report != nil:
		return StateDegraded
	default:
		return StateFailed
	}
}

// RunBatch fans jobs out over a bounded worker pool. It always returns one
// JobResult per job, in job order, regardless of completion order. A
// panicking job fails its own result, not the sweep. Cancelling the
// context returns promptly: running jobs stop at their next stage
// boundary, unstarted jobs are marked with the context error, and all
// workers are joined before returning (no goroutine leaks — except
// attempts abandoned by Options.Deadline, which exit at their next stage
// boundary). The returned error is the context's error, if any; per-job
// failures are reported only through the results.
func RunBatch(ctx context.Context, jobs []Job, opt Options) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	oracle := opt.LowerOracle
	if oracle == nil {
		oracle = lower.NewOracle(lower.Options{Workers: opt.LowerWorkers, Witness: true})
	}
	results := make([]JobResult, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = JobResult{Index: i, Name: jobs[i].Name, Err: err}
					continue // drain remaining jobs as cancelled
				}
				job := jobs[i]
				col := job.Collector
				if col == nil {
					col = opt.Collector
				}
				if job.LowerOracle == nil {
					job.LowerOracle = oracle
				}
				results[i] = runJob(ctx, i, job, combineHooks(job.Hook, opt.Hook), col, opt)
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// runJob executes one job under the batch's retry policy: failed attempts
// are re-run with doubling backoff until they succeed, exhaust
// MaxAttempts, are ruled out by Retryable, or the batch context dies.
func runJob(ctx context.Context, i int, job Job, hook Hook, col *obs.Collector, opt Options) JobResult {
	attempts := opt.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := opt.Retry.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := opt.Retry.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	var res JobResult
	for attempt := 1; ; attempt++ {
		res = runAttempt(ctx, i, job, hook, col, opt.Deadline)
		if res.Err == nil || attempt >= attempts || ctx.Err() != nil {
			return res
		}
		if opt.Retry.Retryable != nil && !opt.Retry.Retryable(res.Err) {
			return res
		}
		col.Retry()
		select {
		case <-ctx.Done():
			return res
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// runAttempt executes one attempt, bounding it by the per-job deadline
// when one is set. On overrun the attempt is abandoned — its context is
// cancelled, the worker synthesizes the terminal errored event (so
// collectors and hooks always see the job end, per the engine's terminal-
// event contract) and returns without waiting for the stuck goroutine.
func runAttempt(ctx context.Context, i int, job Job, hook Hook, col *obs.Collector, deadline time.Duration) JobResult {
	if deadline <= 0 {
		return runRecover(ctx, i, job, hook, col)
	}
	jctx, cancel := context.WithTimeout(ctx, deadline)
	start := time.Now()
	done := make(chan JobResult, 1) // buffered: the late sender never blocks
	go func() {
		defer cancel()
		done <- runRecover(jctx, i, job, hook, col)
	}()
	select {
	case res := <-done:
		cancel()
		return res
	case <-jctx.Done():
		err := fmt.Errorf("engine: job %d (%s) exceeded the %v deadline: %w", i, job.Name, deadline, jctx.Err())
		elapsed := time.Since(start)
		if hook != nil {
			hook(Event{Job: i, Name: job.Name, Stage: StageDone, Elapsed: elapsed, Err: err})
		}
		col.Stage(i, job.Name, StageDone.String(), elapsed, err)
		return JobResult{Index: i, Name: job.Name, Err: err}
	}
}

// runRecover executes one pipeline run, converting panics (a buggy
// scheduler, a bad workload closure) into that job's error. A failing run
// keeps its partial report only when it got far enough to be useful — a
// schedule to look at — so StateDegraded never surfaces an empty shell.
func runRecover(ctx context.Context, i int, job Job, hook Hook, col *obs.Collector) (res JobResult) {
	res = JobResult{Index: i, Name: job.Name}
	defer func() {
		if r := recover(); r != nil {
			res.Report = nil
			res.Err = fmt.Errorf("engine: job %d (%s) panicked: %v", i, job.Name, r)
		}
	}()
	res.Report, res.Err = run(ctx, i, job, hook, col)
	if res.Err != nil && res.Report != nil && res.Report.Schedule == nil {
		res.Report = nil
	}
	return res
}

// combineHooks chains a job-level and a batch-level hook.
func combineHooks(a, b Hook) Hook {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return func(ev Event) { a(ev); b(ev) }
	}
}

// Reports unwraps a batch into bare reports, failing on the first job
// error. Convenience for callers (experiments, benches) that treat any
// job failure as fatal.
func Reports(results []JobResult) ([]*Report, error) {
	out := make([]*Report, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("engine: job %d (%s): %w", r.Index, r.Name, r.Err)
		}
		out[i] = r.Report
	}
	return out, nil
}

// Degraded is the error PartialReports returns when some jobs failed: the
// batch still produced results, just not all of them. Failed holds every
// non-OK JobResult (degraded ones included, with their partial reports).
type Degraded struct {
	// Failed are the results with errors, in job order.
	Failed []JobResult
	// Total is the batch size.
	Total int
}

// Error summarizes the losses.
func (d *Degraded) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d of %d jobs failed:", len(d.Failed), d.Total)
	for i, r := range d.Failed {
		if i == 3 {
			fmt.Fprintf(&b, " … (%d more)", len(d.Failed)-i)
			break
		}
		fmt.Fprintf(&b, " [%d %s: %v]", r.Index, r.Name, r.Err)
	}
	return b.String()
}

// PartialReports unwraps a batch in degraded mode: the reports of every
// successful job, plus a *Degraded error describing the failures (nil
// when all jobs succeeded). Unlike Reports, one bad job does not discard
// the rest of the sweep.
func PartialReports(results []JobResult) ([]*Report, error) {
	out := make([]*Report, 0, len(results))
	var failed []JobResult
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, r)
			continue
		}
		out = append(out, r.Report)
	}
	if len(failed) > 0 {
		return out, &Degraded{Failed: failed, Total: len(results)}
	}
	return out, nil
}
