package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"dtmsched/internal/graph"
	"dtmsched/internal/obs"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// infeasibleJob returns a job whose precomputed schedule violates
// Definition 1: two transactions on a clique both claim the shared object
// at step 1, but the second is a distance-1 transfer away.
func infeasibleJob(name string, mode VerifyMode) Job {
	topo := topology.NewClique(4)
	txns := []tm.Txn{
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{0}},
	}
	in := tm.NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1, txns, []graph.NodeID{0})
	return Job{
		Name:     name,
		Instance: in,
		Schedule: &schedule.Schedule{Times: []int64{1, 1}},
		Verify:   mode,
	}
}

// recordHook collects events goroutine-safely and reports whether a
// failing verify produced exactly one errored StageVerify event and no
// StageDone.
type recordHook struct {
	mu     sync.Mutex
	events []Event
}

func (h *recordHook) hook() Hook {
	return func(ev Event) {
		h.mu.Lock()
		h.events = append(h.events, ev)
		h.mu.Unlock()
	}
}

func (h *recordHook) checkVerifyFailure(t *testing.T, job string) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	var verifyErrs, dones int
	for _, ev := range h.events {
		if ev.Name != job {
			continue
		}
		switch ev.Stage {
		case StageVerify:
			if ev.Err == nil {
				t.Errorf("%s: StageVerify event without error", job)
			}
			if ev.Report != nil {
				t.Errorf("%s: errored verify event carries a report", job)
			}
			verifyErrs++
		case StageDone:
			dones++
		}
	}
	if verifyErrs != 1 {
		t.Errorf("%s: saw %d errored verify events, want 1", job, verifyErrs)
	}
	if dones != 0 {
		t.Errorf("%s: saw %d StageDone events after a failed verify, want 0", job, dones)
	}
}

func TestVerifyFailureEventsRun(t *testing.T) {
	for _, mode := range []VerifyMode{VerifyFull, VerifyFast} {
		t.Run(mode.String(), func(t *testing.T) {
			h := &recordHook{}
			job := infeasibleJob("bad-"+mode.String(), mode)
			job.Hook = h.hook()
			rep, err := Run(context.Background(), job)
			if err == nil || rep != nil {
				t.Fatalf("infeasible schedule passed %s verify: rep=%v err=%v", mode, rep, err)
			}
			if !strings.Contains(err.Error(), "verify stage") {
				t.Errorf("error %q does not name the verify stage", err)
			}
			h.checkVerifyFailure(t, job.Name)
		})
	}
}

func TestVerifyFailureEventsRunBatch(t *testing.T) {
	h := &recordHook{}
	col := obs.NewMetricsCollector()
	jobs := []Job{
		infeasibleJob("bad", VerifyFull),
		{Name: "good", Gen: cliqueGen(16, 4, 2, 3), Scheduler: testJobs(3)[0].Scheduler},
	}
	res, err := RunBatch(context.Background(), jobs, Options{Workers: 2, Hook: h.hook(), Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	// A verify-stage failure is the degraded state: the error is set, and
	// the partial report (the schedule that failed verification) survives
	// for degraded-mode consumers.
	if res[0].Err == nil || res[0].State() != StateDegraded || res[0].Report == nil || res[0].Report.Schedule == nil {
		t.Errorf("infeasible job: report=%v err=%v state=%v, want a degraded result carrying the partial report", res[0].Report, res[0].Err, res[0].State())
	}
	if res[1].Err != nil || res[1].Report == nil {
		t.Errorf("good job failed: %v", res[1].Err)
	}
	h.checkVerifyFailure(t, "bad")
	// The collector counted the failure on the verify stage.
	if got := col.Registry().Counter("engine_stage_errors_total", "stage", "verify").Value(); got != 1 {
		t.Errorf("verify error counter = %d, want 1", got)
	}
	if got := col.Registry().Counter("engine_runs_total").Value(); got != 1 {
		t.Errorf("runs counter = %d, want 1 (only the good job finished)", got)
	}
}

// TestCancellationEventsAndCollector: a job cancelled between stages must
// terminate observably — the hook sees exactly one errored stage event
// carrying the context error (and no StageDone), the collector counts the
// failure against that stage, and the returned error both names the stage
// and still matches errors.Is(err, context.Canceled). Guards against the
// silent-return regression where cancelled jobs left started-but-never-
// terminated traces.
func TestCancellationEventsAndCollector(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the job dies at the first stage boundary

	h := &recordHook{}
	col := obs.NewMetricsCollector()
	job := infeasibleJob("cancelled", VerifyFull) // never reaches verify
	job.Hook = h.hook()
	job.Collector = col
	rep, err := Run(ctx, job)
	if rep != nil {
		t.Fatalf("cancelled job produced a report: %+v", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "generate stage") {
		t.Errorf("error %q does not name the interrupted stage", err)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.events) != 1 {
		t.Fatalf("hook saw %d events, want exactly 1 terminal event: %+v", len(h.events), h.events)
	}
	ev := h.events[0]
	if ev.Stage != StageGenerate || !errors.Is(ev.Err, context.Canceled) || ev.Report != nil {
		t.Errorf("terminal event = %+v, want errored StageGenerate without report", ev)
	}
	if got := col.Registry().Counter("engine_stage_errors_total", "stage", "generate").Value(); got != 1 {
		t.Errorf("generate error counter = %d, want 1", got)
	}
}

// TestCancellationMidBatchEmitsTerminalEvents: jobs cancelled while
// already inside the pipeline (not merely skipped by the batch drain)
// still emit a terminal errored stage event for the stage they were about
// to enter.
func TestCancellationMidBatchEmitsTerminalEvents(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	h := &recordHook{}
	gen := cliqueGen(16, 4, 2, 3)
	job := Job{
		Name: "mid-cancel",
		Gen: func() (*tm.Instance, error) {
			cancel() // cancel while the generate stage is running
			return gen()
		},
		Scheduler: testJobs(3)[0].Scheduler,
		Hook:      h.hook(),
	}
	rep, err := Run(ctx, job)
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("rep=%v err=%v, want nil report and context.Canceled", rep, err)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	var terminal int
	for _, ev := range h.events {
		if ev.Stage == StageDone {
			t.Errorf("cancelled job emitted StageDone: %+v", ev)
		}
		if ev.Err != nil {
			if !errors.Is(ev.Err, context.Canceled) {
				t.Errorf("errored event carries %v, want context.Canceled", ev.Err)
			}
			terminal++
		}
	}
	if terminal != 1 {
		t.Errorf("saw %d errored events, want exactly 1 terminal event", terminal)
	}
}

// BenchmarkRunNilCollector pins the no-collector pipeline cost; compare
// with BenchmarkRunMetricsCollector to see the collector's overhead.
func BenchmarkRunNilCollector(b *testing.B) {
	benchmarkRun(b, nil)
}

func BenchmarkRunMetricsCollector(b *testing.B) {
	benchmarkRun(b, obs.NewMetricsCollector())
}

func benchmarkRun(b *testing.B, col *obs.Collector) {
	job := Job{Name: "bench", Gen: cliqueGen(32, 8, 2, 7), Scheduler: testJobs(7)[0].Scheduler, Collector: col}
	in, err := job.Gen()
	if err != nil {
		b.Fatal(err)
	}
	job.Instance, job.Gen = in, nil
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}
