// Observability hook constructors: the obs/v2 run ledger and per-stage
// profiler attach to the pipeline through the existing Hook mechanism —
// no new pipeline branches, and nothing here runs unless a caller wires
// the returned Hook into a Job or batch Options. With neither attached,
// the hot path keeps the nil-Collector zero-allocation contract.
package engine

import (
	"strconv"
	"strings"
	"time"

	"dtmsched/internal/obs"
)

// LedgerHook returns a Hook that appends one obs.RunRecord to l for
// every job that finishes successfully (StageDone with a report). base
// seeds the record's identity: Experiment (the job name is appended to
// an empty Experiment, so per-job records group by workload), Config
// (cloned per record with the job name added under "job"), and Seed.
// Job names may carry a "#N" suffix to mark trial N of one fingerprint:
// the suffix is stripped from the grouping identity and recorded as
// Trial, so repeated trials share a fingerprint and the regression
// comparator can pool them.
//
// Appends are serialized by the ledger itself, so the hook is safe under
// RunBatch; append errors are sticky on the ledger (check Ledger.Err
// after the run).
func LedgerHook(l *obs.Ledger, base obs.RunRecord) Hook {
	env := obs.CaptureEnv()
	return func(ev Event) {
		if ev.Stage != StageDone || ev.Report == nil {
			return
		}
		name, trial := splitTrial(ev.Name)
		rec := base
		rec.Env = env
		rec.Trial = trial
		rec.Fingerprint = "" // recomputed per job by Append
		if rec.Experiment == "" {
			rec.Experiment = name
		}
		cfg := make(map[string]string, len(base.Config)+1)
		for k, v := range base.Config {
			cfg[k] = v
		}
		cfg["job"] = name
		rec.Config = cfg

		r := ev.Report
		rec.Algorithm = r.Algorithm
		rec.StageMS = map[string]float64{
			"generate": ms(r.Timing.Generate),
			"schedule": ms(r.Timing.Schedule),
			"verify":   ms(r.Timing.Verify),
			"measure":  ms(r.Timing.Measure),
		}
		rec.TotalMS = ms(r.Timing.Total)
		rec.SimSteps = r.Counters.SimSteps
		rec.ObjectMoves = r.Counters.ObjectMoves
		rec.Executed = r.Counters.Executed
		rec.Makespan = r.Makespan
		rec.Bound = r.Bound.Value
		rec.Ratio = r.Ratio
		if r.Schedule != nil {
			rec.Latency = obs.SnapshotValues(r.Schedule.Times)
			q := obs.Quantiles(r.Schedule.Times, 0.50, 0.99)
			rec.LatencyP50, rec.LatencyP99 = q[0], q[1]
		}
		l.Append(&rec)
	}
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// splitTrial splits a "name#N" job label into its grouping name and
// trial number; names without a numeric suffix are trial 0.
func splitTrial(name string) (string, int) {
	i := strings.LastIndexByte(name, '#')
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return name, 0
	}
	return name[:i], n
}

// ProfilerHook returns a Hook that rotates p's capture at every stage
// boundary, so each pipeline stage lands in its own CPU profile with a
// heap snapshot at the seam. Meaningful attribution needs serial
// execution (Options.Workers = 1): CPU profiling is process-global.
func ProfilerHook(p *obs.Profiler) Hook {
	return func(ev Event) {
		p.StageBoundary(ev.Job, ev.Name, ev.Stage.String())
	}
}
