// Package engine is the concurrent run layer of the reproduction: every
// evaluation of a scheduler — the public facade, the experiment harness,
// cmd/dtmbench, and the repository benchmarks — funnels through one staged
// pipeline
//
//	Generate → Schedule → Verify → Measure
//
// behind a single entry point, Run, plus a bounded-worker batch runner,
// RunBatch, with context cancellation, per-job panic recovery, and
// deterministic result ordering. Each stage is instrumented (wall time per
// stage, simulator steps, object moves, scheduler stats), and verification
// is a policy: VerifyFull replays the schedule hop by hop in the
// synchronous simulator, VerifyFast only checks Definition 1's algebraic
// transfer-time constraints, and VerifyOff trusts the scheduler — so large
// sweeps stop paying full simulation cost when they only need makespans.
package engine

import (
	"context"
	"fmt"
	"time"

	"dtmsched/internal/core"
	"dtmsched/internal/faults"
	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
	"dtmsched/internal/schedule"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
)

// VerifyMode selects how much verification the Verify stage performs. The
// zero value is VerifyFull: reports are fully simulator-checked unless a
// caller explicitly opts out.
type VerifyMode int

// Verification policies.
const (
	// VerifyFull validates the schedule algebraically and replays it hop
	// by hop in the synchronous simulator; the report carries measured
	// communication cost and simulator counters.
	VerifyFull VerifyMode = iota
	// VerifyFast runs only schedule.Validate (Definition 1's per-object
	// transfer-time constraints); no simulation, no communication cost.
	VerifyFast
	// VerifyOff skips verification entirely.
	VerifyOff
)

// String names the mode for reports and flags.
func (m VerifyMode) String() string {
	switch m {
	case VerifyFull:
		return "full"
	case VerifyFast:
		return "fast"
	case VerifyOff:
		return "off"
	default:
		return fmt.Sprintf("verify(%d)", int(m))
	}
}

// Stage identifies a pipeline stage in Hook events.
type Stage int

// Pipeline stages, in execution order. StageDone fires once per job after
// Measure, carrying the finished Report.
const (
	StageGenerate Stage = iota
	StageSchedule
	StageVerify
	StageMeasure
	StageDone
)

// String names the stage for progress output.
func (s Stage) String() string {
	switch s {
	case StageGenerate:
		return "generate"
	case StageSchedule:
		return "schedule"
	case StageVerify:
		return "verify"
	case StageMeasure:
		return "measure"
	case StageDone:
		return "done"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Event is one progress record delivered to a Hook.
type Event struct {
	// Job is the index of the job within its batch (0 for single runs).
	Job int
	// Name is the job's label.
	Name string
	// Stage is the stage that just completed.
	Stage Stage
	// Elapsed is the completed stage's wall time (total time for
	// StageDone).
	Elapsed time.Duration
	// Err is the failure that aborted the stage, if any.
	Err error
	// Report is the finished report; non-nil only on successful
	// StageDone events.
	Report *Report
}

// Hook observes pipeline progress. Hooks are called synchronously from the
// worker executing the job, so they must be goroutine-safe when used with
// RunBatch.
type Hook func(Event)

// Job is one unit of work for the pipeline: an instance (given directly or
// produced by Gen) plus either a scheduler to run or a precomputed
// schedule to verify and measure.
type Job struct {
	// Name labels the job in events, errors, and the report.
	Name string
	// Instance is the problem instance. Leave nil to have Gen produce it
	// inside the Generate stage.
	Instance *tm.Instance
	// Gen produces the instance when Instance is nil. It runs on the
	// worker executing the job, so expensive workload generation is
	// parallelized and timed like every other stage.
	Gen func() (*tm.Instance, error)
	// Scheduler computes the schedule. Exactly one of Scheduler /
	// Schedule must be set.
	Scheduler core.Scheduler
	// Schedule is a precomputed schedule to verify and measure instead
	// of running a scheduler.
	Schedule *schedule.Schedule
	// Algorithm labels a precomputed Schedule in the report (default
	// "precomputed"); ignored when Scheduler is set.
	Algorithm string
	// Verify selects the verification policy (default VerifyFull).
	Verify VerifyMode
	// SkipLowerBound omits the certified lower-bound computation in the
	// Measure stage (Report.Bound stays zero, Ratio 0).
	SkipLowerBound bool
	// LowerOracle, when set, serves the Measure stage's certified bound
	// from a per-instance cache, so jobs sharing an Instance compute it
	// once. RunBatch jobs without their own oracle inherit the batch
	// oracle (see Options.LowerOracle); plain Run computes directly when
	// nil. Cache hits are visible on the collector's lower_* counters —
	// never on the Report, which stays byte-identical either way.
	LowerOracle *lower.Oracle
	// Faults, when set to a non-empty injector, replays the schedule
	// under fault injection in the Verify stage: sim.RunFaulty
	// re-dispatches dropped moves with backoff, reroutes around dead
	// links, and defers commits on crashed nodes. The recovery summary
	// lands in Report.Fault and the collector's fault_* counters. A
	// non-empty injector forces the faulty simulation even under
	// VerifyFast / VerifyOff (injection is meaningless without a replay);
	// Report.Counters still stays zero outside VerifyFull.
	Faults faults.Injector
	// Hook, when set, observes this job's stage completions (in addition
	// to any batch-level hook).
	Hook Hook
	// Collector, when set, records this job's stage timings, counters,
	// and (if the collector traces) its full run trace. A nil collector
	// is free: the no-op path adds zero allocations to the pipeline.
	// RunBatch jobs without their own collector inherit the batch-level
	// Options.Collector.
	Collector *obs.Collector
}

// Timing records per-stage wall time. Timings are the only
// non-deterministic fields of a Report; comparisons across runs should
// zero them first.
type Timing struct {
	Generate time.Duration
	Schedule time.Duration
	Verify   time.Duration
	Measure  time.Duration
	// DepGraphBuild is the portion of the Schedule stage the scheduler
	// spent constructing conflict graphs (summed over builds — Grid and
	// Star build one per tile/period). Zero when the scheduler reports no
	// build instrumentation (baselines, precomputed schedules).
	DepGraphBuild time.Duration
	// HierShard and HierMerge split the hierarchical scheduler's Schedule
	// stage: the parallel per-subtree local phase versus the top-level
	// cross-tier merge pass. Zero for every other scheduler.
	HierShard time.Duration
	HierMerge time.Duration
	// Total is the whole pipeline, including stage bookkeeping.
	Total time.Duration
}

// Counters carries the simulator-measured counters of a VerifyFull run;
// all zero under VerifyFast / VerifyOff.
type Counters struct {
	// SimSteps is the number of synchronous steps the simulator
	// executed (the step of the last commit).
	SimSteps int64
	// ObjectMoves counts object dispatches that traveled a nonzero
	// distance.
	ObjectMoves int64
	// Executed is the number of committed transactions.
	Executed int64
}

// Report is the outcome of one pipeline run.
type Report struct {
	// Name echoes the job label.
	Name string
	// Algorithm names the concrete algorithm that produced the schedule.
	Algorithm string
	// Makespan is the schedule's execution time (Definition 1).
	Makespan int64
	// Bound is the instance's certified lower bound (zero when
	// SkipLowerBound was set).
	Bound lower.Bound
	// Ratio is Makespan / Bound.Value (0 when the bound is unavailable).
	Ratio float64
	// CommCost is the total distance traveled by all objects, measured
	// by the simulator (VerifyFull only).
	CommCost int64
	// Stats carries algorithm-specific counters from the scheduler.
	Stats map[string]int64
	// Schedule is the verified schedule itself, for callers that need
	// per-transaction times (analysis, window checks, visualization).
	Schedule *schedule.Schedule
	// Verify echoes the policy the report was produced under.
	Verify VerifyMode
	// Timing is the per-stage instrumentation.
	Timing Timing
	// Counters are the simulator counters (VerifyFull only). Under fault
	// injection they are measured from the faulty replay, so SimSteps is
	// the recovered makespan, not the schedule's.
	Counters Counters
	// Fault summarizes the recovery work of a fault-injected run
	// (Job.Faults); nil for fault-free runs.
	Fault *faults.Report
}

// Run executes one job through the staged pipeline. The context is checked
// between stages, so cancellation aborts promptly without leaving partial
// state anywhere but the returned error. On error the report is nil;
// degraded-mode consumers that want partial results use RunBatch and
// PartialReports.
func Run(ctx context.Context, job Job) (*Report, error) {
	rep, err := run(ctx, 0, job, job.Hook, job.Collector)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// run is Run with an explicit batch index, composed hook, and collector.
func run(ctx context.Context, idx int, job Job, hook Hook, col *obs.Collector) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	emit := func(stage Stage, elapsed time.Duration, err error, rep *Report) {
		if hook != nil {
			hook(Event{Job: idx, Name: job.Name, Stage: stage, Elapsed: elapsed, Err: err, Report: rep})
		}
		col.Stage(idx, job.Name, stage.String(), elapsed, err)
	}
	rep := &Report{Name: job.Name, Verify: job.Verify}
	fail := func(stage Stage, elapsed time.Duration, err error) (*Report, error) {
		err = fmt.Errorf("engine: %s stage: %w", stage, err)
		emit(stage, elapsed, err, nil)
		// The partial report (whatever the completed stages populated) is
		// returned alongside the error for degraded-mode consumers; Run
		// discards it, RunBatch keeps it when it carries a schedule.
		return rep, err
	}

	// Generate: obtain the instance. Cancellation between stages routes
	// through fail() like any stage error, so hooks and collectors always
	// see a terminal errored-stage event (never a started-but-silent job)
	// and the error names the stage it interrupted; errors.Is still
	// recognizes context.Canceled / DeadlineExceeded through the wrap.
	if err := ctx.Err(); err != nil {
		return fail(StageGenerate, 0, err)
	}
	t0 := time.Now()
	in := job.Instance
	if in == nil {
		if job.Gen == nil {
			return fail(StageGenerate, 0, fmt.Errorf("job %q has neither Instance nor Gen", job.Name))
		}
		var err error
		if in, err = job.Gen(); err != nil {
			return fail(StageGenerate, time.Since(t0), err)
		}
	}
	rep.Timing.Generate = time.Since(t0)
	emit(StageGenerate, rep.Timing.Generate, nil, nil)

	// Schedule: run the scheduler (or adopt the precomputed schedule).
	if err := ctx.Err(); err != nil {
		return fail(StageSchedule, 0, err)
	}
	t0 = time.Now()
	switch {
	case job.Scheduler != nil:
		res, err := job.Scheduler.Schedule(in)
		if err != nil {
			return fail(StageSchedule, time.Since(t0), err)
		}
		rep.Algorithm = res.Algorithm
		rep.Makespan = res.Makespan
		rep.Stats = res.Stats
		rep.Schedule = res.Schedule
	case job.Schedule != nil:
		rep.Algorithm = job.Algorithm
		if rep.Algorithm == "" {
			rep.Algorithm = "precomputed"
		}
		rep.Makespan = job.Schedule.Makespan()
		rep.Schedule = job.Schedule
	default:
		return fail(StageSchedule, 0, fmt.Errorf("job %q has neither Scheduler nor Schedule", job.Name))
	}
	rep.Timing.Schedule = time.Since(t0)
	if ns, ok := rep.Stats["depgraph_build_ns"]; ok {
		// The build wall time is the one non-deterministic scheduler stat;
		// move it into Timing (whose fields are documented as such) so
		// Report.Stats stays byte-identical across runs and worker counts.
		rep.Timing.DepGraphBuild = time.Duration(ns)
		col.DepGraphBuild(rep.Stats)
		delete(rep.Stats, "depgraph_build_ns")
	}
	if _, ok := rep.Stats["hier_shards"]; ok {
		// Same treatment for the hierarchical scheduler's phase wall
		// clocks: record them, then move them out of Stats into Timing.
		col.Hier(rep.Stats)
		if ns, ok := rep.Stats["hier_shard_wall_ns"]; ok {
			rep.Timing.HierShard = time.Duration(ns)
			delete(rep.Stats, "hier_shard_wall_ns")
		}
		if ns, ok := rep.Stats["hier_merge_wall_ns"]; ok {
			rep.Timing.HierMerge = time.Duration(ns)
			delete(rep.Stats, "hier_merge_wall_ns")
		}
	}
	emit(StageSchedule, rep.Timing.Schedule, nil, nil)

	// Verify: policy-dependent feasibility checking.
	if err := ctx.Err(); err != nil {
		return fail(StageVerify, 0, err)
	}
	t0 = time.Now()
	var simRes *sim.Result
	switch job.Verify {
	case VerifyFull, VerifyFast:
		if err := rep.Schedule.Validate(in); err != nil {
			return fail(StageVerify, time.Since(t0), fmt.Errorf("%s schedule infeasible: %w", rep.Algorithm, err))
		}
	case VerifyOff:
		// Trust the scheduler.
	default:
		return fail(StageVerify, 0, fmt.Errorf("unknown verify mode %d", int(job.Verify)))
	}
	switch {
	case job.Faults != nil && !job.Faults.Empty():
		// Fault injection always replays the schedule, whatever the verify
		// policy: the replay is the measurement.
		var frep *faults.Report
		var err error
		simRes, frep, err = sim.RunFaulty(in, rep.Schedule, sim.FaultyOptions{
			Options: sim.Options{Trace: col.Tracing()},
			Inject:  job.Faults,
		})
		if err != nil {
			return fail(StageVerify, time.Since(t0), fmt.Errorf("faulty replay of %s schedule: %w", rep.Algorithm, err))
		}
		rep.Fault = frep
		col.Fault(frep)
		if job.Verify == VerifyFull {
			rep.CommCost = simRes.CommCost
			rep.Counters = Counters{
				SimSteps:    simRes.Makespan,
				ObjectMoves: simRes.Moves,
				Executed:    int64(simRes.Executed),
			}
		}
	case job.Verify == VerifyFull:
		var err error
		simRes, err = sim.Run(in, rep.Schedule, sim.Options{Trace: col.Tracing()})
		if err != nil {
			return fail(StageVerify, time.Since(t0), fmt.Errorf("simulator rejected %s schedule: %w", rep.Algorithm, err))
		}
		rep.CommCost = simRes.CommCost
		rep.Counters = Counters{
			SimSteps:    simRes.Makespan,
			ObjectMoves: simRes.Moves,
			Executed:    int64(simRes.Executed),
		}
	}
	rep.Timing.Verify = time.Since(t0)
	emit(StageVerify, rep.Timing.Verify, nil, nil)

	// Measure: certified lower bound and approximation ratio.
	if err := ctx.Err(); err != nil {
		return fail(StageMeasure, 0, err)
	}
	t0 = time.Now()
	if !job.SkipLowerBound {
		var hit bool
		if job.LowerOracle != nil {
			var b *lower.Bound
			b, hit = job.LowerOracle.Get(in)
			rep.Bound = *b
		} else {
			rep.Bound = lower.Compute(in)
		}
		if rep.Bound.Value > 0 {
			rep.Ratio = float64(rep.Makespan) / float64(rep.Bound.Value)
		}
		col.LowerBound(hit, time.Since(t0), &rep.Bound)
	}
	rep.Timing.Measure = time.Since(t0)
	emit(StageMeasure, rep.Timing.Measure, nil, nil)

	rep.Timing.Total = time.Since(start)
	col.RecordRun(idx, job.Name, rep.Algorithm, in, rep.Schedule, simRes)
	emit(StageDone, rep.Timing.Total, nil, rep)
	return rep, nil
}
