package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dtmsched/internal/core"
	"dtmsched/internal/faults"
	"dtmsched/internal/obs"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// faultTestInstance builds a deterministic grid workload plus the
// trivially feasible serial schedule (txn i commits at (i+1)·n).
func faultTestInstance(side int, seed int64) (*tm.Instance, *schedule.Schedule) {
	g := topology.NewSquareGrid(side).Graph()
	rng := xrand.NewDerived(seed, "engine-fault-test")
	in := tm.UniformK(8, 2).Generate(rng, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
	n := int64(g.NumNodes())
	s := schedule.New(in.NumTxns())
	for i := range s.Times {
		s.Times[i] = int64(i+1) * n
	}
	return in, s
}

func TestRunWithFaultsReportsRecovery(t *testing.T) {
	in, s := faultTestInstance(5, 3)
	plan := faults.MustNew(faults.Config{
		Seed: 11, Horizon: s.Makespan(),
		LinkDownRate: 0.1, LinkSlowRate: 0.1, CrashRate: 0.05, DropRate: 0.05,
	}, in.G)
	col := obs.NewMetricsCollector()
	rep, err := Run(context.Background(), Job{
		Name: "faulty", Instance: in, Schedule: s, Faults: plan, Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fault == nil {
		t.Fatal("fault-injected run produced no fault report")
	}
	if rep.Fault.BaselineMakespan != s.Makespan() || rep.Fault.Inflation < 1.0 {
		t.Errorf("fault report inconsistent: %v", rep.Fault)
	}
	// Report.Makespan stays the schedule's (planned) makespan; the
	// recovered one is the fault report's and the simulator counters'.
	if rep.Makespan != s.Makespan() {
		t.Errorf("Makespan = %d, want planned %d", rep.Makespan, s.Makespan())
	}
	if rep.Counters.SimSteps != rep.Fault.Makespan {
		t.Errorf("SimSteps = %d, want recovered makespan %d", rep.Counters.SimSteps, rep.Fault.Makespan)
	}
	if got := col.Registry().Counter("fault_runs_total").Value(); got != 1 {
		t.Errorf("fault_runs_total = %d, want 1", got)
	}
	// A fault-free job records no fault report and no fault metrics.
	rep2, err := Run(context.Background(), Job{Name: "clean", Instance: in, Schedule: s, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fault != nil {
		t.Errorf("fault-free run carries a fault report: %v", rep2.Fault)
	}
	if got := col.Registry().Counter("fault_runs_total").Value(); got != 1 {
		t.Errorf("fault_runs_total = %d after clean run, want still 1", got)
	}
}

func TestBatchFaultReportsDeterministicAcrossWorkers(t *testing.T) {
	// The same fault-injected batch must produce byte-identical fault
	// reports at every worker count.
	in, s := faultTestInstance(5, 9)
	var jobs []Job
	for j := 0; j < 6; j++ {
		plan := faults.MustNew(faults.Config{
			Seed: int64(100 + j), Horizon: s.Makespan(),
			LinkDownRate: 0.08, LinkSlowRate: 0.08, CrashRate: 0.04, DropRate: 0.04,
		}, in.G)
		jobs = append(jobs, Job{Name: fmt.Sprintf("f%d", j), Instance: in, Schedule: s, Faults: plan})
	}
	marshal := func(workers int) string {
		res, err := RunBatch(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reps, err := Reports(res)
		if err != nil {
			t.Fatal(err)
		}
		var frs []*faults.Report
		for _, r := range reps {
			frs = append(frs, r.Fault)
		}
		b, err := json.Marshal(frs)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := marshal(1)
	for _, w := range []int{2, 4, 8} {
		if got := marshal(w); got != want {
			t.Fatalf("fault reports differ between 1 and %d workers:\n%s\nvs\n%s", w, want, got)
		}
	}
}

func TestRunBatchDeadlineFreesPool(t *testing.T) {
	// One hung job must not stall the (single-worker) pool: the deadline
	// abandons it, the next job runs, and hooks/collector see the hung
	// job's terminal errored event.
	release := make(chan struct{})
	defer close(release)
	hung := Job{Name: "hung", Gen: func() (*tm.Instance, error) {
		<-release
		return nil, errors.New("released")
	}}
	good := Job{Name: "good", Gen: cliqueGen(16, 4, 2, 5), Scheduler: &core.Greedy{}}

	var mu sync.Mutex
	var terminal []Event
	hook := func(ev Event) {
		if ev.Stage == StageDone || ev.Err != nil {
			mu.Lock()
			terminal = append(terminal, ev)
			mu.Unlock()
		}
	}
	col := obs.NewMetricsCollector()
	start := time.Now()
	res, err := RunBatch(context.Background(), []Job{hung, good},
		Options{Workers: 1, Deadline: 50 * time.Millisecond, Hook: hook, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch took %v; the hung job stalled the pool", elapsed)
	}
	if res[0].Err == nil || !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("hung job err = %v, want wrapped DeadlineExceeded", res[0].Err)
	}
	if !strings.Contains(res[0].Err.Error(), "deadline") {
		t.Errorf("hung job error %q does not mention the deadline", res[0].Err)
	}
	if res[0].State() != StateFailed {
		t.Errorf("hung job state = %v, want failed", res[0].State())
	}
	if res[1].Err != nil || res[1].Report == nil {
		t.Fatalf("job after the hung one failed: %v", res[1].Err)
	}
	mu.Lock()
	var hungTerminal bool
	for _, ev := range terminal {
		if ev.Name == "hung" && ev.Stage == StageDone && ev.Err != nil {
			hungTerminal = true
		}
	}
	mu.Unlock()
	if !hungTerminal {
		t.Error("hook never saw the hung job's terminal errored event")
	}
	if got := col.Registry().Counter("engine_stage_errors_total", "stage", "done").Value(); got != 1 {
		t.Errorf("done-stage error counter = %d, want 1", got)
	}
}

func TestRunBatchRetriesTransientFailures(t *testing.T) {
	// A job that fails twice then succeeds must end OK under a 4-attempt
	// retry policy, with the retries counted on the collector.
	var calls atomic.Int64
	gen := cliqueGen(16, 4, 2, 7)
	flaky := Job{Name: "flaky", Gen: func() (*tm.Instance, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("transient: fabric hiccup")
		}
		return gen()
	}, Scheduler: &core.Greedy{}}
	col := obs.NewMetricsCollector()
	res, err := RunBatch(context.Background(), []Job{flaky}, Options{
		Collector: col,
		Retry:     RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].State() != StateOK {
		t.Fatalf("flaky job did not recover: %v", res[0].Err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("generator called %d times, want 3", got)
	}
	if got := col.Registry().Counter("engine_retries_total").Value(); got != 2 {
		t.Errorf("engine_retries_total = %d, want 2", got)
	}

	// Retryable can veto: a permanent error burns no further attempts.
	calls.Store(0)
	always := Job{Name: "permanent", Gen: func() (*tm.Instance, error) {
		calls.Add(1)
		return nil, errors.New("permanent: bad workload")
	}}
	res, err = RunBatch(context.Background(), []Job{always}, Options{
		Retry: RetryPolicy{
			MaxAttempts: 5, Backoff: time.Millisecond,
			Retryable: func(err error) bool { return !strings.Contains(err.Error(), "permanent") },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Fatal("permanent failure reported success")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("non-retryable error attempted %d times, want 1", got)
	}
}

func TestPartialReportsDegradedBatch(t *testing.T) {
	// A batch with one infeasible job degrades instead of failing whole:
	// PartialReports hands back the successes plus a *Degraded error that
	// names the losses.
	jobs := []Job{
		{Name: "good-0", Gen: cliqueGen(16, 4, 2, 1), Scheduler: &core.Greedy{}},
		infeasibleJob("broken", VerifyFull),
		{Name: "good-1", Gen: cliqueGen(16, 4, 2, 2), Scheduler: &core.Greedy{}},
	}
	res, err := RunBatch(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reports(res); err == nil {
		t.Fatal("Reports should fail on the broken job")
	}
	reps, err := PartialReports(res)
	if len(reps) != 2 {
		t.Fatalf("got %d partial reports, want 2", len(reps))
	}
	var deg *Degraded
	if !errors.As(err, &deg) {
		t.Fatalf("err = %v (%T), want *Degraded", err, err)
	}
	if len(deg.Failed) != 1 || deg.Total != 3 || deg.Failed[0].Name != "broken" {
		t.Errorf("Degraded = %+v, want the one broken job of 3", deg)
	}
	if deg.Failed[0].State() != StateDegraded {
		t.Errorf("broken job state = %v, want degraded (verify failures keep the schedule)", deg.Failed[0].State())
	}
	if !strings.Contains(deg.Error(), "1 of 3 jobs failed") {
		t.Errorf("Degraded.Error() = %q", deg.Error())
	}
	// An all-green batch returns a nil error.
	res, err = RunBatch(context.Background(), jobs[:1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartialReports(res); err != nil {
		t.Errorf("all-green PartialReports returned %v", err)
	}
}
