package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/hier"
	"dtmsched/internal/obs"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// cliqueGen returns a Gen producing a deterministic clique instance.
func cliqueGen(n, w, k int, seed int64) func() (*tm.Instance, error) {
	return func() (*tm.Instance, error) {
		topo := topology.NewClique(n)
		rng := xrand.NewDerived(seed, "engine-test", fmt.Sprint(n))
		in := tm.UniformK(w, k).Generate(rng, topo.Graph(),
			graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		return in, nil
	}
}

// testJobs builds a fresh multi-algorithm job list. A factory, not a
// fixture: randomized schedulers carry their own rng state, so every run
// needs fresh jobs.
func testJobs(seed int64) []Job {
	var jobs []Job
	for i := 0; i < 3; i++ {
		n := 24 + 8*i
		jobs = append(jobs,
			Job{Name: fmt.Sprintf("greedy/%d", n), Gen: cliqueGen(n, n/4, 2, seed), Scheduler: &core.Greedy{}},
			Job{Name: fmt.Sprintf("seq/%d", n), Gen: cliqueGen(n, n/4, 2, seed), Scheduler: baseline.Sequential{}},
			Job{Name: fmt.Sprintf("list/%d", n), Gen: cliqueGen(n, n/4, 2, seed), Scheduler: baseline.List{}},
			Job{Name: fmt.Sprintf("rand/%d", n), Gen: cliqueGen(n, n/4, 2, seed),
				Scheduler: baseline.Random{Rng: xrand.NewDerived(seed, "rand", fmt.Sprint(n))}},
		)
	}
	return jobs
}

// marshalStripped renders reports as JSON with the non-deterministic
// timing fields zeroed, for byte-identical comparison.
func marshalStripped(t *testing.T, reports []*Report) []byte {
	t.Helper()
	stripped := make([]Report, len(reports))
	for i, r := range reports {
		stripped[i] = *r
		stripped[i].Timing = Timing{}
	}
	b, err := json.Marshal(stripped)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunFullPipeline checks a single fully verified run end to end:
// algorithm name, feasible makespan, non-zero per-stage timings, and
// non-zero simulator counters.
func TestRunFullPipeline(t *testing.T) {
	rep, err := Run(context.Background(), Job{
		Name: "one", Gen: cliqueGen(32, 8, 2, 7), Scheduler: &core.Greedy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "greedy" {
		t.Errorf("algorithm = %q, want greedy", rep.Algorithm)
	}
	if rep.Makespan < rep.Bound.Value || rep.Bound.Value <= 0 {
		t.Errorf("makespan %d vs bound %d: infeasible ordering", rep.Makespan, rep.Bound.Value)
	}
	if rep.Ratio < 1 {
		t.Errorf("ratio %.2f < 1", rep.Ratio)
	}
	tm := rep.Timing
	for _, st := range []struct {
		name string
		d    time.Duration
	}{{"generate", tm.Generate}, {"schedule", tm.Schedule}, {"verify", tm.Verify}, {"measure", tm.Measure}, {"total", tm.Total}} {
		if st.d <= 0 {
			t.Errorf("timing %s = %v, want > 0", st.name, st.d)
		}
	}
	c := rep.Counters
	if c.SimSteps <= 0 || c.ObjectMoves <= 0 || c.Executed <= 0 {
		t.Errorf("counters %+v: all must be positive under VerifyFull", c)
	}
	if c.SimSteps != rep.Makespan {
		t.Errorf("SimSteps %d != makespan %d", c.SimSteps, rep.Makespan)
	}
	if rep.Schedule == nil {
		t.Error("report carries no schedule")
	}
}

// TestDepGraphBuildTiming checks the hand-off of conflict-graph build
// instrumentation: the scheduler's wall-clock depgraph_build_ns stat moves
// into Timing.DepGraphBuild (keeping Report.Stats deterministic), the
// deterministic build stats stay, and the collector's registry picks up the
// depgraph_* counters.
func TestDepGraphBuildTiming(t *testing.T) {
	col := obs.NewMetricsCollector()
	rep, err := Run(context.Background(), Job{
		Name: "g", Gen: cliqueGen(32, 8, 2, 7), Scheduler: &core.Greedy{}, Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timing.DepGraphBuild <= 0 {
		t.Errorf("Timing.DepGraphBuild = %v, want > 0 for greedy", rep.Timing.DepGraphBuild)
	}
	if rep.Timing.DepGraphBuild > rep.Timing.Schedule {
		t.Errorf("build time %v exceeds whole schedule stage %v", rep.Timing.DepGraphBuild, rep.Timing.Schedule)
	}
	if _, ok := rep.Stats["depgraph_build_ns"]; ok {
		t.Error("wall-clock depgraph_build_ns leaked into deterministic Stats")
	}
	if rep.Stats["depgraph_builds"] != 1 || rep.Stats["depgraph_edges"] <= 0 {
		t.Errorf("build stats missing: %v", rep.Stats)
	}
	reg := col.Registry()
	if got := reg.Counter("depgraph_builds_total").Value(); got != 1 {
		t.Errorf("depgraph_builds_total = %d, want 1", got)
	}
	if reg.Counter("depgraph_build_ns_total").Value() <= 0 || reg.Counter("depgraph_edges_total").Value() <= 0 {
		t.Error("registry missing depgraph build counters")
	}

	// A baseline scheduler builds no conflict graph: no timing, no counters.
	rep2, err := Run(context.Background(), Job{
		Name: "b", Gen: cliqueGen(32, 8, 2, 7), Scheduler: baseline.Sequential{}, Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Timing.DepGraphBuild != 0 {
		t.Errorf("baseline DepGraphBuild = %v, want 0", rep2.Timing.DepGraphBuild)
	}
	if got := reg.Counter("depgraph_builds_total").Value(); got != 1 {
		t.Errorf("baseline incremented depgraph_builds_total to %d", got)
	}
}

// TestVerifyModes checks the policy ladder: same makespan everywhere,
// simulator counters and communication cost only under VerifyFull.
func TestVerifyModes(t *testing.T) {
	var reps [3]*Report
	for i, mode := range []VerifyMode{VerifyFull, VerifyFast, VerifyOff} {
		rep, err := Run(context.Background(), Job{
			Name: mode.String(), Gen: cliqueGen(32, 8, 2, 7), Scheduler: &core.Greedy{}, Verify: mode,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		reps[i] = rep
	}
	full, fast, off := reps[0], reps[1], reps[2]
	if full.Makespan != fast.Makespan || fast.Makespan != off.Makespan {
		t.Errorf("makespans diverge across verify modes: %d / %d / %d", full.Makespan, fast.Makespan, off.Makespan)
	}
	if full.CommCost <= 0 || full.Counters.SimSteps <= 0 {
		t.Errorf("VerifyFull lost its measurements: %+v", full.Counters)
	}
	for _, r := range []*Report{fast, off} {
		if r.CommCost != 0 || r.Counters != (Counters{}) {
			t.Errorf("%s: unexpected simulator output %d / %+v", r.Verify, r.CommCost, r.Counters)
		}
	}
}

// TestRunBatchDeterminism requires byte-identical reports (timings
// stripped) for every worker count, including the sequential path.
func TestRunBatchDeterminism(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		results, err := RunBatch(context.Background(), testJobs(42), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports, err := Reports(results)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := marshalStripped(t, reports)
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: reports differ from sequential path", workers)
		}
	}
}

// TestRunBatchOrdering checks results come back in job order with echoed
// names and indexes, regardless of completion order.
func TestRunBatchOrdering(t *testing.T) {
	jobs := testJobs(3)
	results, err := RunBatch(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i || r.Name != jobs[i].Name {
			t.Errorf("result %d: index %d name %q, want %d %q", i, r.Index, r.Name, i, jobs[i].Name)
		}
	}
}

// panicScheduler implements core.Scheduler by panicking.
type panicScheduler struct{}

func (panicScheduler) Name() string { return "panic" }
func (panicScheduler) Schedule(in *tm.Instance) (*core.Result, error) {
	panic("scheduler bug")
}

// TestRunBatchPanicRecovery: a panicking scheduler fails its own job and
// leaves the rest of the batch intact.
func TestRunBatchPanicRecovery(t *testing.T) {
	jobs := []Job{
		{Name: "ok1", Gen: cliqueGen(24, 6, 2, 1), Scheduler: &core.Greedy{}},
		{Name: "boom", Gen: cliqueGen(24, 6, 2, 1), Scheduler: panicScheduler{}},
		{Name: "ok2", Gen: cliqueGen(24, 6, 2, 1), Scheduler: baseline.List{}},
	}
	results, err := RunBatch(context.Background(), jobs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("panicking job error = %v, want recovered panic", results[1].Err)
	}
	if results[1].Report != nil {
		t.Error("panicking job produced a report")
	}
}

// TestRunBatchCancellation: cancelling mid-batch returns promptly with
// partial results, marks unstarted jobs with the context error, and leaks
// no goroutines.
func TestRunBatchCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Slow jobs: each Gen sleeps, so the batch takes long enough for a
	// cancel to land in the middle. The first completed job triggers it.
	var once sync.Once
	const jobs = 32
	slow := make([]Job, jobs)
	for i := range slow {
		gen := cliqueGen(24, 6, 2, int64(i))
		slow[i] = Job{
			Name: fmt.Sprintf("slow/%d", i),
			Gen: func() (*tm.Instance, error) {
				time.Sleep(5 * time.Millisecond)
				return gen()
			},
			Scheduler: &core.Greedy{},
			Hook: func(ev Event) {
				if ev.Stage == StageDone {
					once.Do(cancel)
				}
			},
		}
	}
	start := time.Now()
	results, err := RunBatch(ctx, slow, Options{Workers: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled batch took %v, want prompt return", elapsed)
	}
	var done, cancelled int
	for _, r := range results {
		switch {
		case r.Err == nil && r.Report != nil:
			done++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("job %d: unexpected state report=%v err=%v", r.Index, r.Report != nil, r.Err)
		}
	}
	if done == 0 {
		t.Error("no job completed before cancellation")
	}
	if cancelled == 0 {
		t.Error("no job was cancelled")
	}

	// All workers must be joined: give the runtime a moment, then check
	// we are back at (or below) the starting goroutine count.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestHookStageOrder checks every successful job emits its five stage
// events in pipeline order, with the report attached to StageDone.
func TestHookStageOrder(t *testing.T) {
	var mu sync.Mutex
	events := map[string][]Event{}
	hook := func(ev Event) {
		mu.Lock()
		events[ev.Name] = append(events[ev.Name], ev)
		mu.Unlock()
	}
	jobs := testJobs(5)
	results, err := RunBatch(context.Background(), jobs, Options{Workers: 4, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reports(results); err != nil {
		t.Fatal(err)
	}
	want := []Stage{StageGenerate, StageSchedule, StageVerify, StageMeasure, StageDone}
	for _, job := range jobs {
		evs := events[job.Name]
		if len(evs) != len(want) {
			t.Fatalf("%s: %d events, want %d", job.Name, len(evs), len(want))
		}
		for i, ev := range evs {
			if ev.Stage != want[i] {
				t.Errorf("%s: event %d stage %s, want %s", job.Name, i, ev.Stage, want[i])
			}
		}
		if evs[len(evs)-1].Report == nil {
			t.Errorf("%s: StageDone carries no report", job.Name)
		}
	}
}

// TestPrecomputedSchedule runs the pipeline on a schedule produced outside
// it, as the experiment harness does for the Section 8 constructions.
func TestPrecomputedSchedule(t *testing.T) {
	in, err := cliqueGen(24, 6, 2, 9)()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Greedy{}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Job{
		Name: "pre", Instance: in, Schedule: res.Schedule, Algorithm: "handmade",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "handmade" || rep.Makespan != res.Makespan {
		t.Errorf("report %q/%d, want handmade/%d", rep.Algorithm, rep.Makespan, res.Makespan)
	}
}

// TestJobValidation covers the misconfiguration errors.
func TestJobValidation(t *testing.T) {
	if _, err := Run(context.Background(), Job{Name: "no-input", Scheduler: &core.Greedy{}}); err == nil {
		t.Error("job without Instance/Gen must fail")
	}
	in, _ := cliqueGen(24, 6, 2, 9)()
	if _, err := Run(context.Background(), Job{Name: "no-sched", Instance: in}); err == nil {
		t.Error("job without Scheduler/Schedule must fail")
	}
	genErr := errors.New("generator exploded")
	_, err := Run(context.Background(), Job{Name: "gen-fail",
		Gen: func() (*tm.Instance, error) { return nil, genErr }, Scheduler: &core.Greedy{}})
	if !errors.Is(err, genErr) {
		t.Errorf("gen error not propagated: %v", err)
	}
}

// TestSharedInstance exercises many concurrent jobs over one instance:
// lazy indexes (tm users, graph shortest-path cache) must be safe, and
// the reports must agree with a solo run. Run under -race this is the
// regression test for the shared-instance hazards.
func TestSharedInstance(t *testing.T) {
	topo := topology.NewSquareGrid(8) // graph metric path queries hit the sp cache
	rng := xrand.NewDerived(11, "shared")
	in := tm.UniformK(16, 2).Generate(rng, topo.Graph(), topo.Graph(), topo.Graph().Nodes(), tm.PlaceAtRandomUser)

	solo, err := Run(context.Background(), Job{Name: "solo", Instance: in, Scheduler: baseline.List{}})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("shared/%d", i), Instance: in, Scheduler: baseline.List{}}
	}
	results, err := RunBatch(context.Background(), jobs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Reports(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Makespan != solo.Makespan || r.CommCost != solo.CommCost {
			t.Errorf("%s: %d/%d, want %d/%d", r.Name, r.Makespan, r.CommCost, solo.Makespan, solo.CommCost)
		}
	}
}

// TestHierTimingExtraction checks the hierarchical scheduler's phase wall
// clocks are moved out of the deterministic Stats map into Timing, and the
// hier registry metrics fill in.
func TestHierTimingExtraction(t *testing.T) {
	col := obs.NewMetricsCollector()
	fc := topology.NewFogCloud([]int{4, 8}, []int64{8, 1})
	gen := func() (*tm.Instance, error) {
		rng := xrand.NewDerived(3, "engine-test", "hier")
		in := tm.UniformK(32, 2).Generate(rng, fc.Graph(), fc, fc.Graph().Nodes(), tm.PlaceAtRandomUser)
		return in, nil
	}
	rep, err := Run(context.Background(), Job{
		Name: "h", Gen: gen, Scheduler: &hier.Scheduler{Topo: fc}, Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hier_shard_wall_ns", "hier_merge_wall_ns"} {
		if _, ok := rep.Stats[key]; ok {
			t.Errorf("wall-clock %s leaked into deterministic Stats", key)
		}
	}
	if rep.Timing.HierShard <= 0 {
		t.Errorf("Timing.HierShard = %v, want > 0", rep.Timing.HierShard)
	}
	if rep.Stats["hier_shards"] != 4 {
		t.Errorf("hier_shards = %d, want 4", rep.Stats["hier_shards"])
	}
	reg := col.Registry()
	if got := reg.Counter("hier_runs_total").Value(); got != 1 {
		t.Errorf("hier_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("hier_local_txns_total").Value() + reg.Counter("hier_cross_txns_total").Value(); got != int64(fc.Graph().NumNodes()) {
		t.Errorf("local+cross txn totals = %d, want %d", got, fc.Graph().NumNodes())
	}

	// Non-hier schedulers leave the hier timing and metrics untouched.
	rep2, err := Run(context.Background(), Job{
		Name: "g", Gen: cliqueGen(32, 8, 2, 7), Scheduler: &core.Greedy{}, Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Timing.HierShard != 0 || rep2.Timing.HierMerge != 0 {
		t.Errorf("greedy run carries hier timing: %+v", rep2.Timing)
	}
	if got := reg.Counter("hier_runs_total").Value(); got != 1 {
		t.Errorf("greedy run incremented hier_runs_total to %d", got)
	}
}
