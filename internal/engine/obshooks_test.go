package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtmsched/internal/core"
	"dtmsched/internal/obs"
	"dtmsched/internal/tm"
)

type failingScheduler struct{}

func (failingScheduler) Name() string { return "failing" }
func (failingScheduler) Schedule(in *tm.Instance) (*core.Result, error) {
	return nil, errors.New("no schedule today")
}

func TestLedgerHook(t *testing.T) {
	var buf bytes.Buffer
	ledger := obs.NewLedger(&buf)
	base := obs.RunRecord{Config: map[string]string{"suite": "t"}, Seed: 11}
	jobs := []Job{
		{Name: "lh/clique#0", Gen: cliqueGen(12, 4, 2, 11), Scheduler: &core.Greedy{}},
		{Name: "lh/clique#1", Gen: cliqueGen(12, 4, 2, 12), Scheduler: &core.Greedy{}},
	}
	results, err := RunBatch(context.Background(), jobs, Options{Hook: LedgerHook(ledger, base)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reports(results); err != nil {
		t.Fatal(err)
	}
	if err := ledger.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ledger has %d records, want one per job", len(recs))
	}
	if recs[0].Fingerprint != recs[1].Fingerprint {
		t.Errorf("trials of one job split fingerprints: %s vs %s", recs[0].Fingerprint, recs[1].Fingerprint)
	}
	gotTrials := map[int]bool{recs[0].Trial: true, recs[1].Trial: true}
	if !gotTrials[0] || !gotTrials[1] {
		t.Errorf("trials = %v, want {0, 1} from the #N suffixes", gotTrials)
	}
	for _, r := range recs {
		if r.Experiment != "lh/clique" {
			t.Errorf("experiment = %q, want the job name minus the trial suffix", r.Experiment)
		}
		if r.Config["job"] != "lh/clique" || r.Config["suite"] != "t" {
			t.Errorf("config = %v, want the base config plus job", r.Config)
		}
		if r.Algorithm == "" {
			t.Error("algorithm not recorded")
		}
		for _, stage := range []string{"generate", "schedule", "verify", "measure"} {
			if _, ok := r.StageMS[stage]; !ok {
				t.Errorf("stage_ms missing %q", stage)
			}
		}
		if r.SimSteps <= 0 || r.Executed <= 0 || r.Makespan <= 0 {
			t.Errorf("counters not recorded: %+v", r)
		}
		if r.Bound <= 0 || r.Ratio <= 0 {
			t.Errorf("bound/ratio not recorded: bound=%d ratio=%g", r.Bound, r.Ratio)
		}
		if r.Latency == nil || r.Latency.Count != r.Executed {
			t.Errorf("latency snapshot missing or wrong size: %+v", r.Latency)
		}
		if r.LatencyP99 < r.LatencyP50 {
			t.Errorf("p99 %d < p50 %d", r.LatencyP99, r.LatencyP50)
		}
		if r.Env == (obs.Env{}) {
			t.Error("env not captured")
		}
	}
}

func TestLedgerHookSkipsFailures(t *testing.T) {
	var buf bytes.Buffer
	ledger := obs.NewLedger(&buf)
	_, err := Run(context.Background(), Job{
		Name: "bad", Gen: cliqueGen(12, 4, 2, 11), Scheduler: failingScheduler{},
		Hook: LedgerHook(ledger, obs.RunRecord{}),
	})
	if err == nil {
		t.Fatal("failing scheduler must error")
	}
	if buf.Len() != 0 {
		t.Errorf("failed job wrote a ledger record: %s", buf.String())
	}
}

func TestSplitTrial(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		trial int
	}{
		{"bench/grid12#3", "bench/grid12", 3},
		{"plain", "plain", 0},
		{"odd#name", "odd#name", 0}, // non-numeric suffix stays in the name
		{"x#0", "x", 0},
	} {
		name, trial := splitTrial(tc.in)
		if name != tc.name || trial != tc.trial {
			t.Errorf("splitTrial(%q) = (%q, %d), want (%q, %d)", tc.in, name, trial, tc.name, tc.trial)
		}
	}
}

func TestProfilerHook(t *testing.T) {
	dir := t.TempDir()
	prof, err := obs.NewProfiler(dir)
	if err != nil {
		t.Fatal(err)
	}
	prof.Start()
	if _, err := Run(context.Background(), Job{
		Name: "prof/clique", Gen: cliqueGen(12, 4, 2, 11), Scheduler: &core.Greedy{},
		Hook: ProfilerHook(prof),
	}); err != nil {
		t.Fatal(err)
	}
	if err := prof.Close(); err != nil {
		t.Fatal(err)
	}
	if err := prof.Err(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cpu, heap int
	stages := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "cpu-"):
			cpu++
		case strings.HasPrefix(name, "heap-"):
			heap++
		default:
			t.Errorf("unexpected file %s (the active scratch must be cleaned up)", name)
		}
		for _, stage := range []string{"generate", "schedule", "verify", "measure"} {
			if strings.Contains(name, "-"+stage+".pprof") {
				stages[stage] = true
			}
		}
		if info, err := e.Info(); err == nil && info.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
	// Five stage boundaries (generate..done) each produce a CPU profile
	// and a heap snapshot.
	if cpu != 5 || heap != 5 {
		t.Errorf("got %d cpu / %d heap profiles, want 5 each", cpu, heap)
	}
	for _, stage := range []string{"generate", "schedule", "verify", "measure"} {
		if !stages[stage] {
			t.Errorf("no profile labeled for stage %s", stage)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".cpu-active.pprof")); !os.IsNotExist(err) {
		t.Error("scratch CPU profile left behind after Close")
	}
}
