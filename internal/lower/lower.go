// Package lower computes certified execution-time lower bounds for problem
// instances. Every approximation ratio the benchmark harness reports uses
// these bounds as its denominator, exactly as the paper's proofs do:
//
//   - ℓ = max objects' requester counts: an object's requesters execute at
//     pairwise-distinct steps separated by ≥ 1, so the makespan is ≥ ℓ
//     (Theorem 1's lower bound);
//   - the longest shortest walk of any object from its home through all of
//     its requesters (the TSP-style bound of Sections 4 and 8);
//   - h_max, the largest distance between two conflicting transactions
//     (Section 2.3).
//
// Because these are true lower bounds on the optimum, measured ratios
// (makespan / bound) can only overstate an algorithm's distance from
// optimal, never understate it.
//
// The bound depends only on the instance, so the package provides three
// cost tiers: Compute (serial, full witnesses — the original API),
// ComputeOpts (worker-pooled per-object solves with a canonical-site-set
// memo and an optional witness-free fast path), and Oracle (per-instance
// one-shot publication so repeated queries for the same instance cost a
// pointer load). All three produce byte-identical Bound values for a
// given instance at every worker count.
package lower

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/tsp"
)

// ObjectDetail records the per-object quantities entering the bound.
type ObjectDetail struct {
	Object tm.ObjectID
	// Users is |A_i|: how many transactions request the object.
	Users int
	// Walk bounds the object's shortest home-rooted walk through all
	// its requesters.
	Walk tsp.Bounds
	// Tour bounds the object's optimal TSP tour through its requesters
	// (Theorem 6's measure).
	Tour tsp.Bounds
}

// LB returns the object's certified execution-time lower bound.
func (d ObjectDetail) LB() int64 {
	lb := int64(d.Users)
	if d.Walk.LB > lb {
		lb = d.Walk.LB
	}
	return lb
}

// Bound is the instance-level certified lower bound with its witnesses.
type Bound struct {
	// Value is the lower bound on the optimal makespan, ≥ 1 whenever
	// the instance has at least one transaction.
	Value int64
	// MaxUse is ℓ.
	MaxUse int
	// MaxWalkLB / MaxWalkUB bracket the longest shortest object walk.
	MaxWalkLB, MaxWalkUB int64
	// MaxTourLB / MaxTourUB bracket the longest optimal object TSP tour.
	MaxTourLB, MaxTourUB int64
	// ExactObjects counts requested objects whose walk was solved
	// exactly (≤ tsp.ExactLimit requesters); BoundedObjects counts those
	// that got MST/heuristic bounds instead.
	ExactObjects, BoundedObjects int
	// PerObject has one entry per object that is requested at all.
	// Empty when the bound was computed witness-free (Options.Witness
	// false); the scalar fields above are always populated.
	PerObject []ObjectDetail
}

// Options controls how ComputeOpts runs. The zero value reproduces the
// historical Compute behavior minus witnesses.
type Options struct {
	// Workers is the number of goroutines solving per-object TSP work;
	// values ≤ 1 solve serially. The resulting Bound is byte-identical
	// at every worker count.
	Workers int
	// Witness populates Bound.PerObject. Callers that only need the
	// scalar bound (engines computing ratios) leave it false and skip
	// the per-object allocation.
	Witness bool
}

// Compute derives the certified bound for an instance with full
// witnesses, serially. Equivalent to ComputeOpts(in, Options{Witness:
// true}); kept as the stable original API.
func Compute(in *tm.Instance) Bound {
	return ComputeOpts(in, Options{Witness: true})
}

// solveItem is one unit of TSP work: a home-rooted walk or a closed tour
// over a site list. Objects with identical canonical site sets share one
// item (the exact Held–Karp result depends only on the set), so
// clique/star sweeps where many objects see the same requester sites
// solve each distinct set once.
type solveItem struct {
	walk  bool
	home  graph.NodeID
	sites []graph.NodeID
	res   tsp.Bounds
}

// objRef ties a requested object to its walk and tour items.
type objRef struct {
	obj          tm.ObjectID
	users        int
	walkI, tourI int
}

// ComputeOpts derives the certified bound for an instance. Per-object
// walk/tour solves fan over opt.Workers goroutines (each with its own
// reusable tsp.Solver) and merge deterministically in object order, so
// the result is byte-identical to the serial computation at every worker
// count.
func ComputeOpts(in *tm.Instance, opt Options) Bound {
	var (
		items    []solveItem
		refs     []objRef
		walkMemo = make(map[string]int)
		tourMemo = make(map[string]int)
		keyBuf   []byte
		canon    []graph.NodeID
	)
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		users := in.Users(oid)
		if len(users) == 0 {
			continue
		}
		sites := make([]graph.NodeID, len(users))
		for i, id := range users {
			sites[i] = in.Txns[id].Node
		}
		home := in.Home[oid]

		// Canonical sorted site set. Exact solves (unique count ≤
		// tsp.ExactLimit) depend only on the set, so they memoize; the
		// heuristic path beyond the limit is order-dependent and must
		// see the original sequence to keep bounds byte-identical.
		canon = append(canon[:0], sites...)
		sort.Slice(canon, func(i, j int) bool { return canon[i] < canon[j] })
		uniq := canon[:0]
		for i, v := range canon {
			if i > 0 && v == canon[i-1] {
				continue
			}
			uniq = append(uniq, v)
		}

		// Walk: home is removed by the solver, so the canonical walk
		// set excludes it.
		walkUniq := 0
		for _, v := range uniq {
			if v != home {
				walkUniq++
			}
		}
		walkI := -1
		if walkUniq <= tsp.ExactLimit {
			keyBuf = keyBuf[:0]
			keyBuf = binary.LittleEndian.AppendUint64(keyBuf, uint64(home))
			for _, v := range uniq {
				if v != home {
					keyBuf = binary.LittleEndian.AppendUint64(keyBuf, uint64(v))
				}
			}
			if i, ok := walkMemo[string(keyBuf)]; ok {
				walkI = i
			} else {
				set := make([]graph.NodeID, 0, walkUniq)
				for _, v := range uniq {
					if v != home {
						set = append(set, v)
					}
				}
				walkI = len(items)
				items = append(items, solveItem{walk: true, home: home, sites: set})
				walkMemo[string(keyBuf)] = walkI
			}
		} else {
			walkI = len(items)
			items = append(items, solveItem{walk: true, home: home, sites: sites})
		}

		// Tour: no fixed root; the canonical set is the whole site set.
		tourI := -1
		if len(uniq) <= tsp.ExactLimit {
			keyBuf = keyBuf[:0]
			for _, v := range uniq {
				keyBuf = binary.LittleEndian.AppendUint64(keyBuf, uint64(v))
			}
			if i, ok := tourMemo[string(keyBuf)]; ok {
				tourI = i
			} else {
				tourI = len(items)
				items = append(items, solveItem{sites: append([]graph.NodeID(nil), uniq...)})
				tourMemo[string(keyBuf)] = tourI
			}
		} else {
			tourI = len(items)
			items = append(items, solveItem{sites: sites})
		}

		refs = append(refs, objRef{obj: oid, users: len(users), walkI: walkI, tourI: tourI})
	}

	solveAll(in.Metric, items, opt.Workers)

	b := Bound{}
	if opt.Witness {
		b.PerObject = make([]ObjectDetail, 0, len(refs))
	}
	for _, r := range refs {
		d := ObjectDetail{
			Object: r.obj,
			Users:  r.users,
			Walk:   items[r.walkI].res,
			Tour:   items[r.tourI].res,
		}
		if opt.Witness {
			b.PerObject = append(b.PerObject, d)
		}
		if d.Walk.Exact {
			b.ExactObjects++
		} else {
			b.BoundedObjects++
		}
		if d.Users > b.MaxUse {
			b.MaxUse = d.Users
		}
		if d.Walk.LB > b.MaxWalkLB {
			b.MaxWalkLB = d.Walk.LB
		}
		if d.Walk.UB > b.MaxWalkUB {
			b.MaxWalkUB = d.Walk.UB
		}
		if d.Tour.LB > b.MaxTourLB {
			b.MaxTourLB = d.Tour.LB
		}
		if d.Tour.UB > b.MaxTourUB {
			b.MaxTourUB = d.Tour.UB
		}
		if lb := d.LB(); lb > b.Value {
			b.Value = lb
		}
	}
	if b.Value < 1 && in.NumTxns() > 0 {
		b.Value = 1
	}
	return b
}

// solveAll fills every item's res, fanning over workers goroutines (each
// with a private reusable solver) when workers > 1. Item results are
// independent of scheduling, so any interleaving yields the same Bound.
func solveAll(m graph.Metric, items []solveItem, workers int) {
	if workers <= 1 || len(items) < 2 {
		s := tsp.NewSolver()
		for i := range items {
			it := &items[i]
			if it.walk {
				it.res = s.Walk(m, it.home, it.sites)
			} else {
				it.res = s.Tour(m, it.sites)
			}
		}
		return
	}
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := tsp.NewSolver()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := &items[i]
				if it.walk {
					it.res = s.Walk(m, it.home, it.sites)
				} else {
					it.res = s.Tour(m, it.sites)
				}
			}
		}()
	}
	wg.Wait()
}

// ClusterSigma returns σ: the maximum, over objects, of the number of
// distinct clusters containing a requester of the object (Section 6).
// Distinct clusters are counted with one epoch-stamped slice reused
// across objects instead of a per-object map.
func ClusterSigma(in *tm.Instance, c *topology.ClusterGraph) int {
	sigma := 0
	stamp := make([]int, c.Alpha())
	for o := 0; o < in.NumObjects; o++ {
		epoch := o + 1
		count := 0
		for _, id := range in.Users(tm.ObjectID(o)) {
			cl := c.ClusterOf(in.Txns[id].Node)
			if stamp[cl] != epoch {
				stamp[cl] = epoch
				count++
			}
		}
		if count > sigma {
			sigma = count
		}
	}
	return sigma
}

// ClusterLB is the Section 6 lower bound Ω(σγ): an object used in σ
// clusters must cross σ−1 bridges of weight γ. It is implied by the walk
// bound but reported separately so experiments can show both.
func ClusterLB(in *tm.Instance, c *topology.ClusterGraph) int64 {
	sigma := ClusterSigma(in, c)
	if sigma <= 1 {
		return 1
	}
	return int64(sigma-1) * c.Gamma()
}

// StarSigma returns, for segment set index i of the star decomposition,
// the maximum number of distinct ray segments of V_i that any object must
// visit (the paper's σ_i). Distinct rays are counted with one
// epoch-stamped slice reused across objects instead of a per-object map.
func StarSigma(in *tm.Instance, s *topology.Star, segIndex int) int {
	segs := s.Segments(segIndex)
	if len(segs) == 0 {
		return 0
	}
	lo, hi := segs[0].Lo, segs[0].Hi
	sigma := 0
	stamp := make([]int, s.Alpha())
	for o := 0; o < in.NumObjects; o++ {
		epoch := o + 1
		count := 0
		for _, id := range in.Users(tm.ObjectID(o)) {
			ray, pos := s.RayOf(in.Txns[id].Node)
			if ray >= 0 && pos >= lo && pos <= hi && stamp[ray] != epoch {
				stamp[ray] = epoch
				count++
			}
		}
		if count > sigma {
			sigma = count
		}
	}
	return sigma
}
