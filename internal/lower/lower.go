// Package lower computes certified execution-time lower bounds for problem
// instances. Every approximation ratio the benchmark harness reports uses
// these bounds as its denominator, exactly as the paper's proofs do:
//
//   - ℓ = max objects' requester counts: an object's requesters execute at
//     pairwise-distinct steps separated by ≥ 1, so the makespan is ≥ ℓ
//     (Theorem 1's lower bound);
//   - the longest shortest walk of any object from its home through all of
//     its requesters (the TSP-style bound of Sections 4 and 8);
//   - h_max, the largest distance between two conflicting transactions
//     (Section 2.3).
//
// Because these are true lower bounds on the optimum, measured ratios
// (makespan / bound) can only overstate an algorithm's distance from
// optimal, never understate it.
package lower

import (
	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/tsp"
)

// ObjectDetail records the per-object quantities entering the bound.
type ObjectDetail struct {
	Object tm.ObjectID
	// Users is |A_i|: how many transactions request the object.
	Users int
	// Walk bounds the object's shortest home-rooted walk through all
	// its requesters.
	Walk tsp.Bounds
	// Tour bounds the object's optimal TSP tour through its requesters
	// (Theorem 6's measure).
	Tour tsp.Bounds
}

// LB returns the object's certified execution-time lower bound.
func (d ObjectDetail) LB() int64 {
	lb := int64(d.Users)
	if d.Walk.LB > lb {
		lb = d.Walk.LB
	}
	return lb
}

// Bound is the instance-level certified lower bound with its witnesses.
type Bound struct {
	// Value is the lower bound on the optimal makespan, ≥ 1 whenever
	// the instance has at least one transaction.
	Value int64
	// MaxUse is ℓ.
	MaxUse int
	// MaxWalkLB / MaxWalkUB bracket the longest shortest object walk.
	MaxWalkLB, MaxWalkUB int64
	// MaxTourLB / MaxTourUB bracket the longest optimal object TSP tour.
	MaxTourLB, MaxTourUB int64
	// PerObject has one entry per object that is requested at all.
	PerObject []ObjectDetail
}

// Compute derives the certified bound for an instance. Cost is dominated
// by one shortest-walk computation per object (exact up to tsp.ExactLimit
// requesters, MST bounds beyond).
func Compute(in *tm.Instance) Bound {
	b := Bound{}
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		users := in.Users(oid)
		if len(users) == 0 {
			continue
		}
		sites := make([]graph.NodeID, len(users))
		for i, id := range users {
			sites[i] = in.Txns[id].Node
		}
		d := ObjectDetail{
			Object: oid,
			Users:  len(users),
			Walk:   tsp.Walk(in.Metric, in.Home[oid], sites),
			Tour:   tsp.Tour(in.Metric, sites),
		}
		b.PerObject = append(b.PerObject, d)
		if d.Users > b.MaxUse {
			b.MaxUse = d.Users
		}
		if d.Walk.LB > b.MaxWalkLB {
			b.MaxWalkLB = d.Walk.LB
		}
		if d.Walk.UB > b.MaxWalkUB {
			b.MaxWalkUB = d.Walk.UB
		}
		if d.Tour.LB > b.MaxTourLB {
			b.MaxTourLB = d.Tour.LB
		}
		if d.Tour.UB > b.MaxTourUB {
			b.MaxTourUB = d.Tour.UB
		}
		if lb := d.LB(); lb > b.Value {
			b.Value = lb
		}
	}
	if b.Value < 1 && in.NumTxns() > 0 {
		b.Value = 1
	}
	return b
}

// ClusterSigma returns σ: the maximum, over objects, of the number of
// distinct clusters containing a requester of the object (Section 6).
func ClusterSigma(in *tm.Instance, c *topology.ClusterGraph) int {
	sigma := 0
	for o := 0; o < in.NumObjects; o++ {
		clusters := make(map[int]struct{})
		for _, id := range in.Users(tm.ObjectID(o)) {
			clusters[c.ClusterOf(in.Txns[id].Node)] = struct{}{}
		}
		if len(clusters) > sigma {
			sigma = len(clusters)
		}
	}
	return sigma
}

// ClusterLB is the Section 6 lower bound Ω(σγ): an object used in σ
// clusters must cross σ−1 bridges of weight γ. It is implied by the walk
// bound but reported separately so experiments can show both.
func ClusterLB(in *tm.Instance, c *topology.ClusterGraph) int64 {
	sigma := ClusterSigma(in, c)
	if sigma <= 1 {
		return 1
	}
	return int64(sigma-1) * c.Gamma()
}

// StarSigma returns, for segment set index i of the star decomposition,
// the maximum number of distinct ray segments of V_i that any object must
// visit (the paper's σ_i).
func StarSigma(in *tm.Instance, s *topology.Star, segIndex int) int {
	segs := s.Segments(segIndex)
	if len(segs) == 0 {
		return 0
	}
	lo, hi := segs[0].Lo, segs[0].Hi
	sigma := 0
	for o := 0; o < in.NumObjects; o++ {
		rays := make(map[int]struct{})
		for _, id := range in.Users(tm.ObjectID(o)) {
			ray, pos := s.RayOf(in.Txns[id].Node)
			if ray >= 0 && pos >= lo && pos <= hi {
				rays[ray] = struct{}{}
			}
		}
		if len(rays) > sigma {
			sigma = len(rays)
		}
	}
	return sigma
}
