package lower

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

func TestComputeHandExample(t *testing.T) {
	// Line 0-1-2-3-4. Object 0 used by txns at nodes 0 and 4, home 0:
	// walk = 4. Object 1 used by three txns at 1,2,3, home 2: walk = 2
	// but ℓ = 3.
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	in := tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 4, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{1}},
		{Node: 2, Objects: []tm.ObjectID{1}},
		{Node: 3, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 2})
	b := Compute(in)
	if b.MaxUse != 3 {
		t.Fatalf("MaxUse = %d, want 3", b.MaxUse)
	}
	if b.MaxWalkLB != 4 || b.MaxWalkUB != 4 {
		t.Fatalf("MaxWalk = [%d,%d], want exact 4", b.MaxWalkLB, b.MaxWalkUB)
	}
	if b.Value != 4 {
		t.Fatalf("Value = %d, want 4", b.Value)
	}
	if len(b.PerObject) != 2 {
		t.Fatalf("PerObject has %d entries", len(b.PerObject))
	}
	if b.PerObject[1].LB() != 3 {
		t.Fatalf("object 1 LB = %d, want 3 (ℓ dominates its short walk)", b.PerObject[1].LB())
	}
}

func TestComputeEmptyRequests(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := tm.NewInstance(g, nil, 1, []tm.Txn{{Node: 0, Objects: nil}}, []graph.NodeID{1})
	b := Compute(in)
	if b.Value != 1 {
		t.Fatalf("Value = %d, want 1 (one transaction exists)", b.Value)
	}
	if len(b.PerObject) != 0 {
		t.Fatal("unrequested object got a detail entry")
	}
}

// TestBoundNeverExceedsFeasibleScheduleProperty is the soundness property
// the whole harness rests on: the certified lower bound can never exceed
// the makespan of an actual feasible schedule.
func TestBoundNeverExceedsFeasibleScheduleProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		w := 2 + r.Intn(6)
		k := 1 + r.Intn(minInt(w, 3))
		g := graph.New(n)
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
		}
		in := tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
		s := listSchedule(r, in)
		if s.Validate(in) != nil {
			return false
		}
		return Compute(in).Value <= s.Makespan()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSigmaAndLB(t *testing.T) {
	c := topology.NewCluster(3, 2, 5)
	g := c.Graph()
	// Object 0 used in clusters 0 and 2; object 1 only in cluster 1.
	in := tm.NewInstance(g, graph.FuncMetric(c.Dist), 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 4, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{1}},
		{Node: 3, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 2})
	if got := ClusterSigma(in, c); got != 2 {
		t.Fatalf("ClusterSigma = %d, want 2", got)
	}
	if got := ClusterLB(in, c); got != 5 {
		t.Fatalf("ClusterLB = %d, want (σ−1)γ = 5", got)
	}
}

func TestClusterLBSingleCluster(t *testing.T) {
	c := topology.NewCluster(2, 2, 4)
	in := tm.NewInstance(c.Graph(), graph.FuncMetric(c.Dist), 1, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
	if got := ClusterLB(in, c); got != 1 {
		t.Fatalf("single-cluster ClusterLB = %d, want 1", got)
	}
}

func TestStarSigma(t *testing.T) {
	s := topology.NewStar(3, 4)
	// Object 0 used at position 2 of rays 0 and 2 (segment 2 covers
	// positions 2–3); object 1 used only on ray 1.
	in := tm.NewInstance(s.Graph(), graph.FuncMetric(s.Dist), 2, []tm.Txn{
		{Node: s.ID(0, 2), Objects: []tm.ObjectID{0}},
		{Node: s.ID(2, 3), Objects: []tm.ObjectID{0}},
		{Node: s.ID(1, 2), Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{s.ID(0, 2), s.ID(1, 2)})
	if got := StarSigma(in, s, 2); got != 2 {
		t.Fatalf("StarSigma(seg 2) = %d, want 2", got)
	}
	if got := StarSigma(in, s, 1); got != 0 {
		t.Fatalf("StarSigma(seg 1) = %d, want 0 (nobody in positions [1,1])", got)
	}
}

// listSchedule mirrors the baseline list scheduler for property input.
func listSchedule(r *rand.Rand, in *tm.Instance) *schedule.Schedule {
	order := r.Perm(in.NumTxns())
	relT := make([]int64, in.NumObjects)
	relN := make([]graph.NodeID, in.NumObjects)
	copy(relN, in.Home)
	s := schedule.New(in.NumTxns())
	for _, i := range order {
		txn := &in.Txns[i]
		var t int64 = 1
		for _, o := range txn.Objects {
			if need := relT[o] + in.Dist(relN[o], txn.Node); need > t {
				t = need
			}
		}
		s.Times[i] = t
		for _, o := range txn.Objects {
			relT[o] = t
			relN[o] = txn.Node
		}
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
