package lower

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// zooInstances builds one instance per topology family, covering both
// graph-backed and closed-form metrics plus the > tsp.ExactLimit
// heuristic path (the single-object workload funnels every transaction
// onto one object).
func zooInstances(t testing.TB) []*tm.Instance {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	var out []*tm.Instance
	build := func(g *graph.Graph, m graph.Metric, w, k int) {
		in := tm.UniformK(w, k).Generate(r, g, m, g.Nodes(), tm.PlaceAtRandomUser)
		out = append(out, in)
	}
	build(topology.NewClique(24).Graph(), nil, 6, 2)
	build(topology.NewLine(30).Graph(), nil, 8, 2)
	build(topology.NewSquareGrid(5).Graph(), nil, 6, 3)
	c := topology.NewCluster(3, 4, 9)
	build(c.Graph(), graph.FuncMetric(c.Dist), 4, 2)
	s := topology.NewStar(4, 5)
	build(s.Graph(), graph.FuncMetric(s.Dist), 5, 2)
	// One object requested by every transaction: 40 sites exceed
	// tsp.ExactLimit, exercising the order-sensitive MST/heuristic path.
	big := topology.NewSquareGrid(7).Graph()
	out = append(out, tm.UniformK(1, 1).Generate(r, big, nil, big.Nodes(), tm.PlaceAtRandomUser))
	return out
}

// TestComputeOptsMatchesCompute pins the refactored path to the original
// serial API: same witnesses, same scalars, on every topology family.
func TestComputeOptsMatchesCompute(t *testing.T) {
	for i, in := range zooInstances(t) {
		want := Compute(in)
		got := ComputeOpts(in, Options{Workers: 4, Witness: true})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("instance %d: parallel ComputeOpts diverged\n want %+v\n  got %+v", i, want, got)
		}
	}
}

// TestComputeOptsWorkerDeterminism: the Bound must be byte-identical at
// every worker count (1, 2, 8), witnesses included.
func TestComputeOptsWorkerDeterminism(t *testing.T) {
	for i, in := range zooInstances(t) {
		base := ComputeOpts(in, Options{Workers: 1, Witness: true})
		for _, workers := range []int{2, 8} {
			got := ComputeOpts(in, Options{Workers: workers, Witness: true})
			if !reflect.DeepEqual(base, got) {
				t.Errorf("instance %d: workers=%d diverged from serial\n want %+v\n  got %+v",
					i, workers, base, got)
			}
		}
	}
}

// TestComputeOptsWitnessFree: the fast path must skip PerObject but keep
// every scalar field identical.
func TestComputeOptsWitnessFree(t *testing.T) {
	for i, in := range zooInstances(t) {
		full := ComputeOpts(in, Options{Witness: true})
		fast := ComputeOpts(in, Options{})
		if fast.PerObject != nil {
			t.Errorf("instance %d: witness-free bound has PerObject", i)
		}
		full.PerObject = nil
		if !reflect.DeepEqual(full, fast) {
			t.Errorf("instance %d: witness-free scalars diverged\n want %+v\n  got %+v", i, full, fast)
		}
	}
}

// TestOracleConcurrentFirstQuery races many first queries for the same
// instance (run under -race in ci): every caller must observe the same
// bound, and every query must be accounted as either a computation or a
// cache hit.
func TestOracleConcurrentFirstQuery(t *testing.T) {
	for _, in := range zooInstances(t) {
		o := NewOracle(Options{Witness: true})
		want := Compute(in)
		const goroutines = 8
		bounds := make([]*Bound, goroutines)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				defer done.Done()
				start.Wait()
				b, _ := o.Get(in)
				bounds[g] = b
			}(g)
		}
		start.Done()
		done.Wait()
		for g, b := range bounds {
			if b == nil {
				t.Fatalf("goroutine %d got nil bound", g)
			}
			if !reflect.DeepEqual(*b, want) {
				t.Fatalf("goroutine %d bound diverged: %+v", g, *b)
			}
		}
		comps, hits := o.Stats()
		if comps < 1 {
			t.Fatalf("no computation recorded (computations=%d hits=%d)", comps, hits)
		}
		if comps+hits != goroutines {
			t.Fatalf("stats don't account for all queries: computations=%d hits=%d want sum %d",
				comps, hits, goroutines)
		}
	}
}

// TestOracleWarmLookupZeroAllocs: after publication, Get must be a
// pointer load — no allocation, matching the distance-oracle guard.
func TestOracleWarmLookupZeroAllocs(t *testing.T) {
	in := zooInstances(t)[0]
	o := NewOracle(Options{Witness: true})
	first, hit := o.Get(in)
	if hit {
		t.Fatal("first query reported as cache hit")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b, hit := o.Get(in)
		if !hit || b != first {
			t.Fatal("warm lookup missed the published bound")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm oracle lookup allocates %.1f allocs/op, want 0", allocs)
	}
}

// mapClusterSigma is the original map-per-object implementation, kept as
// the reference the epoch-stamped version is pinned against.
func mapClusterSigma(in *tm.Instance, c *topology.ClusterGraph) int {
	sigma := 0
	for o := 0; o < in.NumObjects; o++ {
		clusters := make(map[int]struct{})
		for _, id := range in.Users(tm.ObjectID(o)) {
			clusters[c.ClusterOf(in.Txns[id].Node)] = struct{}{}
		}
		if len(clusters) > sigma {
			sigma = len(clusters)
		}
	}
	return sigma
}

// mapStarSigma is the original map-per-object StarSigma reference.
func mapStarSigma(in *tm.Instance, s *topology.Star, segIndex int) int {
	segs := s.Segments(segIndex)
	if len(segs) == 0 {
		return 0
	}
	lo, hi := segs[0].Lo, segs[0].Hi
	sigma := 0
	for o := 0; o < in.NumObjects; o++ {
		rays := make(map[int]struct{})
		for _, id := range in.Users(tm.ObjectID(o)) {
			ray, pos := s.RayOf(in.Txns[id].Node)
			if ray >= 0 && pos >= lo && pos <= hi {
				rays[ray] = struct{}{}
			}
		}
		if len(rays) > sigma {
			sigma = len(rays)
		}
	}
	return sigma
}

// TestClusterSigmaMatchesMapReference pins the stamped counter to the map
// version across random cluster workloads.
func TestClusterSigmaMatchesMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		c := topology.NewCluster(2+r.Intn(4), 2+r.Intn(4), 5)
		g := c.Graph()
		w := 2 + r.Intn(4)
		in := tm.UniformK(w, 1+r.Intn(2)).Generate(
			r, g, graph.FuncMetric(c.Dist), g.Nodes(), tm.PlaceAtRandomUser)
		if got, want := ClusterSigma(in, c), mapClusterSigma(in, c); got != want {
			t.Fatalf("trial %d: ClusterSigma = %d, map reference = %d", trial, got, want)
		}
	}
}

// TestStarSigmaMatchesMapReference pins the stamped counter to the map
// version across random star workloads and every segment index.
func TestStarSigmaMatchesMapReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		s := topology.NewStar(2+r.Intn(4), 2+r.Intn(5))
		g := s.Graph()
		w := 2 + r.Intn(4)
		in := tm.UniformK(w, 1+r.Intn(2)).Generate(
			r, g, graph.FuncMetric(s.Dist), g.Nodes(), tm.PlaceAtRandomUser)
		for seg := 1; seg <= s.NumSegments(); seg++ {
			if got, want := StarSigma(in, s, seg), mapStarSigma(in, s, seg); got != want {
				t.Fatalf("trial %d seg %d: StarSigma = %d, map reference = %d", trial, seg, got, want)
			}
		}
	}
}
