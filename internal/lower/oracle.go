package lower

import (
	"sync"
	"sync/atomic"

	"dtmsched/internal/tm"
)

// Oracle caches certified bounds per instance. The bound depends only on
// the instance, yet batch sweeps run many jobs (algorithms × trials)
// against the same instance and historically recomputed it per job; the
// oracle makes every query after the first a lock-free pointer load.
//
// Publication mirrors the graph package's shortest-path tree cache:
// each instance gets an entry holding an atomic.Pointer[Bound]; the
// first queries race to compute and CAS-publish, losers adopt the
// winner's pointer, so duplicate work is bounded by the number of
// concurrent first queries and the published Bound is immutable
// thereafter. Warm lookups allocate nothing.
//
// The oracle holds its instances live; scope one per batch or sweep
// rather than per process so retired instances can be collected.
type Oracle struct {
	opt     Options
	entries sync.Map // *tm.Instance → *oracleEntry

	computations atomic.Int64
	hits         atomic.Int64
}

type oracleEntry struct {
	b atomic.Pointer[Bound]
}

// NewOracle returns an oracle computing misses with ComputeOpts(in, opt).
func NewOracle(opt Options) *Oracle {
	return &Oracle{opt: opt}
}

// Get returns the instance's certified bound and whether it was served
// from cache. The returned Bound is shared and must not be mutated.
func (o *Oracle) Get(in *tm.Instance) (*Bound, bool) {
	if ei, ok := o.entries.Load(in); ok {
		if b := ei.(*oracleEntry).b.Load(); b != nil {
			o.hits.Add(1)
			return b, true
		}
	}
	ei, _ := o.entries.LoadOrStore(in, &oracleEntry{})
	e := ei.(*oracleEntry)
	if b := e.b.Load(); b != nil {
		o.hits.Add(1)
		return b, true
	}
	b := ComputeOpts(in, o.opt)
	o.computations.Add(1)
	if e.b.CompareAndSwap(nil, &b) {
		return &b, false
	}
	// A concurrent first query published first; adopt its bound (the
	// values are identical — ComputeOpts is deterministic) so every
	// caller shares one witness allocation.
	return e.b.Load(), false
}

// Stats reports how many bounds were computed versus served from cache.
func (o *Oracle) Stats() (computations, hits int64) {
	return o.computations.Load(), o.hits.Load()
}
