package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, "grid", "n=32")
	b := Derive(42, "grid", "n=32")
	if a != b {
		t.Fatal("same labels gave different seeds")
	}
}

func TestDeriveSeparatesLabels(t *testing.T) {
	if Derive(1, "ab", "c") == Derive(1, "a", "bc") {
		t.Fatal("label concatenation collision")
	}
	if Derive(1, "x") == Derive(2, "x") {
		t.Fatal("root seed ignored")
	}
	if Derive(1, "x") == Derive(1, "y") {
		t.Fatal("labels ignored")
	}
}

func TestNewDerivedStreamsDiffer(t *testing.T) {
	r1 := NewDerived(7, "a")
	r2 := NewDerived(7, "b")
	same := true
	for i := 0; i < 8; i++ {
		if r1.Int63() != r2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("derived streams identical for distinct labels")
	}
}

func TestSampleKProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := New(seed)
		n := 1 + int(uint(seed)%50)
		k := int(uint(seed/3) % uint(n+1))
		s := SampleK(r, n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, x := range s {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKFull(t *testing.T) {
	r := New(1)
	s := SampleK(r, 5, 5)
	seen := make(map[int]bool)
	for _, x := range s {
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Fatalf("SampleK(5,5) = %v, not a permutation", s)
	}
}

func TestSampleKPanics(t *testing.T) {
	r := New(1)
	t.Run("k>n", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for k > n")
			}
		}()
		SampleK(r, 2, 3)
	})
	t.Run("negative", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic for negative k")
			}
		}()
		SampleK(r, 2, -1)
	})
}

func TestSampleKUniformish(t *testing.T) {
	// Every element of [0,8) should be sampled roughly equally often.
	r := New(99)
	counts := make([]int, 8)
	const trials = 4000
	for i := 0; i < trials; i++ {
		for _, x := range SampleK(r, 8, 2) {
			counts[x]++
		}
	}
	want := trials * 2 / 8
	for x, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("element %d sampled %d times, expected ≈%d", x, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(3)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(r, s)
	sum := 0
	for _, x := range s {
		sum += x
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestGeometricGapMeanAndClamp(t *testing.T) {
	r := New(17)
	// Gaps are ≥ 1 with mean 1/p; a fixed seed makes the check exact.
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		const samples = 20000
		var sum int64
		for i := 0; i < samples; i++ {
			g := GeometricGap(r, rate)
			if g < 1 {
				t.Fatalf("rate %v: gap %d < 1", rate, g)
			}
			sum += g
		}
		mean := float64(sum) / samples
		if want := 1 / rate; mean < 0.97*want || mean > 1.03*want {
			t.Fatalf("rate %v: mean gap %v, want ≈ %v", rate, mean, want)
		}
	}
	// Rates ≥ 1 clamp to one arrival per step: the gap is exactly 1.
	for i := 0; i < 100; i++ {
		if g := GeometricGap(r, 2.5); g != 1 {
			t.Fatalf("rate 2.5: gap %d, want 1", g)
		}
	}
}

func TestGeometricGapPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rate 0")
		}
	}()
	GeometricGap(New(1), 0)
}
