// Package xrand provides deterministic, splittable pseudo-random streams
// for experiments. Every randomized component of the library takes an
// explicit *rand.Rand; this package standardizes how those are derived so
// that an experiment cell (topology, n, k, trial) always sees the same
// stream regardless of execution order or parallelism.
package xrand

import (
	"hash/fnv"
	"math/rand"
)

// DefaultSeed is the root seed used by benches and examples when the caller
// does not supply one.
const DefaultSeed = 0x5eed_d7a1

// New returns a *rand.Rand seeded with seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derive deterministically derives a child seed from a root seed and a
// label path (e.g. "grid", "n=32", "k=4", "trial=7"). Two distinct label
// paths give independent-looking streams; the same path always gives the
// same stream.
func Derive(root int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(root)
	for i := range buf {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte{0xff}) // separator so ("ab","c") != ("a","bc")
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}

// NewDerived is New(Derive(root, labels...)).
func NewDerived(root int64, labels ...string) *rand.Rand {
	return New(Derive(root, labels...))
}

// GeometricGap samples a discrete inter-arrival gap for a Bernoulli
// (discrete-time Poisson) arrival process of the given rate: the number
// of per-step coin flips with success probability p = min(rate, 1) up to
// and including the first success. Gaps are therefore ≥ 1 with mean
// exactly 1/p steps, so a stream of arrivals spaced by GeometricGap
// realizes its nominal rate (rates ≥ 1 clamp to one arrival per step).
// It panics on non-positive rates.
func GeometricGap(r *rand.Rand, rate float64) int64 {
	if rate <= 0 {
		panic("xrand: non-positive arrival rate")
	}
	p := rate
	if p > 1 {
		p = 1
	}
	var gap int64 = 1
	for r.Float64() > p {
		gap++
	}
	return gap
}

// Perm fills a deterministic permutation of [0, n) using r.
func Perm(r *rand.Rand, n int) []int { return r.Perm(n) }

// SampleK returns k distinct integers from [0, n) chosen uniformly at
// random (a uniform k-subset, as the Grid scheduling problem requires).
// It panics if k > n. The result is in selection order, not sorted.
func SampleK(r *rand.Rand, n, k int) []int {
	if k > n {
		panic("xrand: sample larger than population")
	}
	if k < 0 {
		panic("xrand: negative sample size")
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Shuffle shuffles s in place.
func Shuffle[T any](r *rand.Rand, s []T) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
