// Package schedule defines the execution schedules produced by the
// scheduling algorithms and the feasibility rules of Definition 1.
//
// A schedule assigns each transaction T_i the discrete time step t(T_i) ≥ 1
// at which it executes and commits. Timing semantics follow the paper's
// synchronous model: within one step a node receives objects, executes, and
// forwards; an object forwarded after a transaction executing at step t
// reaches a node at distance d in time for step t+d. Each object's initial
// position acts as a virtual holder at time 0, so the first requester may
// execute no earlier than its distance from the object's home.
package schedule

import (
	"fmt"
	"sort"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
)

// Schedule holds one execution time per transaction: Times[i] = t(T_i).
type Schedule struct {
	Times []int64
}

// New returns a schedule with all times unset (zero, which is infeasible
// until assigned).
func New(numTxns int) *Schedule {
	return &Schedule{Times: make([]int64, numTxns)}
}

// Makespan returns the execution time of the schedule: the maximum t(T_i)
// (Definition 1). Zero for an empty schedule.
func (s *Schedule) Makespan() int64 {
	var m int64
	for _, t := range s.Times {
		if t > m {
			m = t
		}
	}
	return m
}

// Order returns object o's requesting transactions sorted by execution
// time (ties broken by transaction ID; a feasible schedule has no ties
// among users of a shared object).
func (s *Schedule) Order(in *tm.Instance, o tm.ObjectID) []tm.TxnID {
	users := in.Users(o)
	out := make([]tm.TxnID, len(users))
	copy(out, users)
	sort.Slice(out, func(i, j int) bool {
		ti, tj := s.Times[out[i]], s.Times[out[j]]
		if ti != tj {
			return ti < tj
		}
		return out[i] < out[j]
	})
	return out
}

// Route returns the nodes object o visits under s: its home followed by
// its requesters' nodes in execution order. Consecutive duplicates are
// collapsed (an object already at the right node does not move).
func (s *Schedule) Route(in *tm.Instance, o tm.ObjectID) []graph.NodeID {
	route := []graph.NodeID{in.Home[o]}
	for _, id := range s.Order(in, o) {
		v := in.Txns[id].Node
		if route[len(route)-1] != v {
			route = append(route, v)
		}
	}
	return route
}

// CommCost returns the total communication cost: the summed shortest-path
// distance traversed by all objects along their routes.
func (s *Schedule) CommCost(in *tm.Instance) int64 {
	var total int64
	for o := 0; o < in.NumObjects; o++ {
		r := s.Route(in, tm.ObjectID(o))
		for i := 0; i+1 < len(r); i++ {
			total += in.Dist(r[i], r[i+1])
		}
	}
	return total
}

// Validate checks feasibility per Definition 1:
//
//   - every transaction has t(T_i) ≥ 1;
//   - for each object, its first requester executes no earlier than the
//     object's distance from home;
//   - each subsequent requester executes at least dist(prev, next) steps
//     after the previous one (the object must physically travel between
//     commits).
//
// It returns nil for feasible schedules and a descriptive error otherwise.
func (s *Schedule) Validate(in *tm.Instance) error {
	if len(s.Times) != in.NumTxns() {
		return fmt.Errorf("schedule: %d times for %d transactions", len(s.Times), in.NumTxns())
	}
	for i, t := range s.Times {
		if t < 1 {
			return fmt.Errorf("schedule: transaction %d has time %d < 1", i, t)
		}
	}
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		order := s.Order(in, oid)
		if len(order) == 0 {
			continue
		}
		first := order[0]
		if d := in.Dist(in.Home[oid], in.Txns[first].Node); s.Times[first] < d {
			return fmt.Errorf("schedule: object %d cannot reach transaction %d by step %d (home %d is %d away)",
				o, first, s.Times[first], in.Home[oid], d)
		}
		for i := 0; i+1 < len(order); i++ {
			a, b := order[i], order[i+1]
			d := in.Dist(in.Txns[a].Node, in.Txns[b].Node)
			if s.Times[b] < s.Times[a]+d {
				return fmt.Errorf("schedule: object %d: transaction %d at step %d then %d at step %d, but they are %d apart",
					o, a, s.Times[a], b, s.Times[b], d)
			}
		}
	}
	return nil
}

// Shift adds delta to every execution time; useful when composing phase
// schedules.
func (s *Schedule) Shift(delta int64) {
	for i := range s.Times {
		s.Times[i] += delta
	}
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	times := make([]int64, len(s.Times))
	copy(times, s.Times)
	return &Schedule{Times: times}
}
