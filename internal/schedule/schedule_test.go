package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
)

// tinyInstance: line 0-1-2-3, two objects.
//
//	txn0@node0 uses {0}; txn1@node1 uses {0,1}; txn2@node3 uses {1}.
//	homes: object0@node0, object1@node3.
func tinyInstance() *tm.Instance {
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0, 1}},
		{Node: 3, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 3})
}

func TestValidateAccepts(t *testing.T) {
	in := tinyInstance()
	s := &Schedule{Times: []int64{1, 3, 1}}
	// obj0: txn0@t1(node0,home) → txn1@t3 (dist 1 ≤ 2 gap) ok.
	// obj1: txn2@t1(node3,home) → txn1@t3 (dist 2 ≤ 2 gap) ok.
	if err := s.Validate(in); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}
}

func TestValidateRejectsEarlyFirstUse(t *testing.T) {
	in := tinyInstance()
	// txn1 at t=1 needs object1 from node3 (distance 2).
	s := &Schedule{Times: []int64{1, 1, 4}}
	if err := s.Validate(in); err == nil {
		t.Fatal("accepted schedule where object cannot reach its first user")
	}
}

func TestValidateRejectsTightChain(t *testing.T) {
	in := tinyInstance()
	// obj1 held by txn1@t2 (node1) then txn2@t3 (node3): gap 1 < dist 2.
	s := &Schedule{Times: []int64{1, 2, 3}}
	if err := s.Validate(in); err == nil {
		t.Fatal("accepted schedule violating transfer time")
	}
}

func TestValidateRejectsNonPositiveTimes(t *testing.T) {
	in := tinyInstance()
	s := &Schedule{Times: []int64{0, 2, 5}}
	if err := s.Validate(in); err == nil {
		t.Fatal("accepted t=0")
	}
}

func TestValidateRejectsWrongLength(t *testing.T) {
	in := tinyInstance()
	s := &Schedule{Times: []int64{1, 2}}
	if err := s.Validate(in); err == nil {
		t.Fatal("accepted wrong-length schedule")
	}
}

func TestValidateRejectsTiesOnSharedObject(t *testing.T) {
	in := tinyInstance()
	// txn0 and txn1 share object 0 and both run at t=2.
	s := &Schedule{Times: []int64{2, 2, 4}}
	if err := s.Validate(in); err == nil {
		t.Fatal("accepted simultaneous execution of conflicting transactions")
	}
}

func TestMakespanAndShift(t *testing.T) {
	s := &Schedule{Times: []int64{4, 9, 2}}
	if s.Makespan() != 9 {
		t.Fatalf("Makespan = %d", s.Makespan())
	}
	s.Shift(3)
	if s.Times[0] != 7 || s.Makespan() != 12 {
		t.Fatal("Shift broken")
	}
	c := s.Clone()
	c.Times[0] = 100
	if s.Times[0] == 100 {
		t.Fatal("Clone shares backing array")
	}
}

func TestOrderAndRoute(t *testing.T) {
	in := tinyInstance()
	s := &Schedule{Times: []int64{5, 2, 8}}
	order := s.Order(in, 0) // users of obj0: txn0(t5), txn1(t2) → [1 0]
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("Order = %v", order)
	}
	route := s.Route(in, 0) // home node0 → txn1@node1 → txn0@node0
	want := []graph.NodeID{0, 1, 0}
	if len(route) != 3 || route[0] != want[0] || route[1] != want[1] || route[2] != want[2] {
		t.Fatalf("Route = %v, want %v", route, want)
	}
}

func TestRouteCollapsesStationaryObject(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := tm.NewInstance(g, nil, 1, []tm.Txn{{Node: 0, Objects: []tm.ObjectID{0}}}, []graph.NodeID{0})
	s := &Schedule{Times: []int64{1}}
	if r := s.Route(in, 0); len(r) != 1 {
		t.Fatalf("Route = %v, want just the home", r)
	}
	if c := s.CommCost(in); c != 0 {
		t.Fatalf("CommCost = %d, want 0", c)
	}
}

func TestCommCost(t *testing.T) {
	in := tinyInstance()
	s := &Schedule{Times: []int64{1, 3, 1}}
	// obj0: 0→1 (1) ; obj1: 3→1 (2). Total 3.
	if c := s.CommCost(in); c != 3 {
		t.Fatalf("CommCost = %d, want 3", c)
	}
}

// listSchedule builds a feasible schedule by list scheduling a random
// order — the generator for property tests.
func listSchedule(r *rand.Rand, in *tm.Instance) *Schedule {
	order := r.Perm(in.NumTxns())
	relT := make([]int64, in.NumObjects)
	relN := make([]graph.NodeID, in.NumObjects)
	copy(relN, in.Home)
	s := New(in.NumTxns())
	for _, i := range order {
		txn := &in.Txns[i]
		var t int64 = 1
		for _, o := range txn.Objects {
			if need := relT[o] + in.Dist(relN[o], txn.Node); need > t {
				t = need
			}
		}
		s.Times[i] = t
		for _, o := range txn.Objects {
			relT[o] = t
			relN[o] = txn.Node
		}
	}
	return s
}

func randomInstance(r *rand.Rand) *tm.Instance {
	n := 3 + r.Intn(20)
	w := 2 + r.Intn(8)
	k := 1 + r.Intn(minInt(w, 3))
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
	}
	return tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
}

func TestListScheduleAlwaysFeasibleProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		s := listSchedule(r, in)
		return s.Validate(in) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedingUpATransactionBreaksFeasibilityProperty(t *testing.T) {
	// Take a feasible schedule and pull one conflicting transaction
	// earlier than its object chain allows: Validate must notice.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		s := listSchedule(r, in)
		// Find an object with ≥ 2 users and break its chain.
		for o := 0; o < in.NumObjects; o++ {
			users := s.Order(in, tm.ObjectID(o))
			if len(users) < 2 {
				continue
			}
			last := users[len(users)-1]
			prev := users[len(users)-2]
			s.Times[last] = s.Times[prev] // tie on a shared object: infeasible
			return s.Validate(in) != nil
		}
		return true // no shareable object; nothing to break
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
