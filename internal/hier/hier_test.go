package hier

import (
	"reflect"
	"testing"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// fixture builds a 7-node fogcloud ([2,2], weights [4,1]) with a hand-built
// instance pinning every classification case:
//
//	nodes: 0 = cloud; 1, 2 = fog; 3, 4 under fog 1; 5, 6 under fog 2
//	o0: users {t3, t4}, home 3      → local to shard 0
//	o1: users {t5, t6}, home 5      → local to shard 1
//	o2: users {t3, t5}, home 5      → cross (users span shards)
//	o3: users {t0}, home 0          → cross (cloud node, above the tier)
//	o4: users {t4}, home 6          → cross (home outside the user's shard)
func fixture() (*topology.FogCloud, *tm.Instance) {
	fc := topology.NewFogCloud([]int{2, 2}, []int64{4, 1})
	txns := []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{3}},
		{Node: 3, Objects: []tm.ObjectID{0, 2}},
		{Node: 4, Objects: []tm.ObjectID{0, 4}},
		{Node: 5, Objects: []tm.ObjectID{1, 2}},
		{Node: 6, Objects: []tm.ObjectID{1}},
	}
	home := []graph.NodeID{3, 5, 5, 0, 6}
	in := tm.NewInstance(fc.Graph(), fc, 5, txns, home)
	return fc, in
}

func TestDecomposePinned(t *testing.T) {
	fc, in := fixture()
	d := Decompose(fc, in, 1)
	if d.Shards != 2 || d.Tier != 1 {
		t.Fatalf("shards=%d tier=%d", d.Shards, d.Tier)
	}
	if want := []int{-1, 0, 1, 0, 0, 1, 1}; !reflect.DeepEqual(d.NodeShard, want) {
		t.Fatalf("NodeShard = %v, want %v", d.NodeShard, want)
	}
	if want := []int{0, 1, -1, -1, -1}; !reflect.DeepEqual(d.ObjShard, want) {
		t.Fatalf("ObjShard = %v, want %v", d.ObjShard, want)
	}
	// t0 sits above the tier, t1 and t3 use cross o2, t2 uses cross o4;
	// only t4 (node 6, object o1) is shard-local.
	if want := []int{2, 2, 2, 2, 1}; !reflect.DeepEqual(d.TxnShard, want) {
		t.Fatalf("TxnShard = %v, want %v", d.TxnShard, want)
	}
	if len(d.Local[0]) != 0 || !reflect.DeepEqual(d.Local[1], []tm.TxnID{4}) {
		t.Fatalf("Local = %v", d.Local)
	}
	if want := []tm.TxnID{0, 1, 2, 3}; !reflect.DeepEqual(d.Cross, want) {
		t.Fatalf("Cross = %v, want %v", d.Cross, want)
	}
	if d.CrossObjects != 3 {
		t.Fatalf("CrossObjects = %d, want 3", d.CrossObjects)
	}
	if d.LocalTxns() != 1 || d.MaxShardTxns() != 1 {
		t.Fatalf("LocalTxns=%d MaxShardTxns=%d", d.LocalTxns(), d.MaxShardTxns())
	}
}

// genInstance generates a seeded uniform workload over every node of the
// tree — dense enough that shards, cross conflicts, and the merge phase all
// exercise.
func genInstance(t *testing.T, fc *topology.FogCloud, w, k int, seed int64) *tm.Instance {
	t.Helper()
	r := xrand.NewDerived(seed, "hier-test", fc.Graph().Name())
	nodes := make([]graph.NodeID, fc.Graph().NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return tm.UniformK(w, k).Generate(r, fc.Graph(), fc, nodes, tm.PlaceAtRandomUser)
}

func TestHierFeasibleAndCrossChecked(t *testing.T) {
	for _, tc := range []struct {
		fanout []int
		weight []int64
		w, k   int
	}{
		{[]int{4, 8}, []int64{8, 1}, 48, 3},
		{[]int{2, 4, 4}, []int64{16, 4, 1}, 40, 2},
		{[]int{8}, []int64{5}, 12, 2},
	} {
		fc := topology.NewFogCloud(tc.fanout, tc.weight)
		in := genInstance(t, fc, tc.w, tc.k, 7)
		s := &Scheduler{Topo: fc}
		r, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", fc.Graph().Name(), err)
		}
		if err := r.Schedule.Validate(in); err != nil {
			t.Fatalf("%s: invalid schedule: %v", fc.Graph().Name(), err)
		}
		if r.Makespan != r.Schedule.Makespan() || r.Makespan < 1 {
			t.Fatalf("%s: makespan %d", fc.Graph().Name(), r.Makespan)
		}
		if r.Stats["hier_shards"] < 2 {
			t.Fatalf("%s: only %d shards", fc.Graph().Name(), r.Stats["hier_shards"])
		}
		if got := r.Stats["hier_local_txns"] + r.Stats["hier_cross_txns"]; got != int64(in.NumTxns()) {
			t.Fatalf("%s: local+cross = %d, want %d", fc.Graph().Name(), got, in.NumTxns())
		}
	}
}

// stripWallStats drops the wall-clock keys (the only nondeterministic
// stats, moved into engine Timing in pipeline runs).
func stripWallStats(stats map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range stats {
		if k == "hier_shard_wall_ns" || k == "hier_merge_wall_ns" || k == "depgraph_build_ns" {
			continue
		}
		out[k] = v
	}
	return out
}

// TestHierDeterministicAcrossWorkers pins the acceptance contract: the
// schedule and every deterministic stat are byte-identical at shard-worker
// counts 1, 4, and 8.
func TestHierDeterministicAcrossWorkers(t *testing.T) {
	fc := topology.NewFogCloud([]int{4, 4, 2}, []int64{12, 3, 1})
	in := genInstance(t, fc, 64, 3, 11)
	var base *core.Result
	for _, workers := range []int{1, 4, 8} {
		s := &Scheduler{Topo: fc, Workers: workers}
		r, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = r
			continue
		}
		if !reflect.DeepEqual(base.Schedule.Times, r.Schedule.Times) {
			t.Fatalf("workers=%d: schedule differs from workers=1", workers)
		}
		if !reflect.DeepEqual(stripWallStats(base.Stats), stripWallStats(r.Stats)) {
			t.Fatalf("workers=%d: stats differ: %v vs %v",
				workers, stripWallStats(base.Stats), stripWallStats(r.Stats))
		}
	}
}

// TestHierTierSweep checks every legal shard tier of a 4-tier tree
// produces a feasible schedule, and deeper tiers never decrease the cross
// fraction (finer shards can only break more conflicts across).
func TestHierTierSweep(t *testing.T) {
	fc := topology.NewFogCloud([]int{2, 2, 3}, []int64{9, 3, 1})
	in := genInstance(t, fc, 36, 2, 3)
	prevCross := int64(-1)
	for tier := 1; tier < fc.Tiers(); tier++ {
		s := &Scheduler{Topo: fc, Tier: tier, Workers: 2}
		r, err := s.Schedule(in)
		if err != nil {
			t.Fatalf("tier %d: %v", tier, err)
		}
		if got := r.Stats["hier_tier"]; got != int64(tier) {
			t.Fatalf("tier %d: stat says %d", tier, got)
		}
		if cross := r.Stats["hier_cross_txns"]; cross < prevCross {
			t.Fatalf("tier %d: cross txns %d fell below tier %d's %d", tier, cross, tier-1, prevCross)
		} else {
			prevCross = cross
		}
	}
}

// TestHierLocalOverlap pins the whole point of sharding: a fully
// subtree-local workload has no cross transactions and its makespan is the
// max over shard spans — shards overlap in time instead of serializing.
func TestHierLocalOverlap(t *testing.T) {
	fc := topology.NewFogCloud([]int{4, 8}, []int64{10, 1})
	r := xrand.NewDerived(5, "hier-local")
	nodes := make([]graph.NodeID, fc.Graph().NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	wl := tm.PartitionedK(16, 2, 4, func(node graph.NodeID) int {
		if fc.TierOf(node) < 1 {
			return 0
		}
		return int(fc.Ancestor(node, 1)) - int(fc.TierStart(1))
	})
	in := wl.Generate(r, fc.Graph(), fc, nodes[1:], tm.PlaceAtFirstUser)
	s := &Scheduler{Topo: fc}
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	// The fog-tier transactions are shard-local too: each fog node roots
	// its own subtree, so nothing should classify cross.
	if cross := res.Stats["hier_cross_txns"]; cross != 0 {
		t.Fatalf("partitioned workload produced %d cross transactions", cross)
	}
	if res.Makespan != res.Stats["hier_local_span"] {
		t.Fatalf("makespan %d != local span %d: shards failed to overlap",
			res.Makespan, res.Stats["hier_local_span"])
	}
}

func TestHierConfigErrors(t *testing.T) {
	fc := topology.NewFogCloud([]int{2, 2}, []int64{2, 1})
	in := genInstance(t, fc, 8, 2, 1)
	if _, err := (&Scheduler{}).Schedule(in); err == nil {
		t.Fatal("nil topology accepted")
	}
	for _, tier := range []int{-1, 3} {
		if _, err := (&Scheduler{Topo: fc, Tier: tier}).Schedule(in); err == nil {
			t.Fatalf("tier %d accepted", tier)
		}
	}
	other := topology.NewFogCloud([]int{3, 3}, []int64{2, 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for mismatched topology")
			}
		}()
		Decompose(other, in, 1)
	}()
}

// TestCrossCheckRejectsTampering feeds CrossCheck corrupted inputs to make
// sure the independent checker actually bites.
func TestCrossCheckRejectsTampering(t *testing.T) {
	fc := topology.NewFogCloud([]int{4, 8}, []int64{8, 1})
	in := genInstance(t, fc, 48, 3, 7)
	s := &Scheduler{Topo: fc}
	r, err := s.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(fc, in, 1)

	// Collapse two users of a shared object onto one step.
	bad := r.Schedule.Clone()
	var tampered bool
	for o := 0; o < in.NumObjects && !tampered; o++ {
		users := in.Users(tm.ObjectID(o))
		if len(users) >= 2 {
			bad.Times[users[1]] = bad.Times[users[0]]
			tampered = true
		}
	}
	if !tampered {
		t.Skip("no shared object in fixture")
	}
	if err := CrossCheck(d, in, bad); err == nil {
		t.Fatal("chain cross-check accepted a same-step shared-object schedule")
	}

	// Corrupt the decomposition: claim a cross object is shard-local.
	for o := 0; o < in.NumObjects; o++ {
		if d.ObjShard[o] < 0 && len(in.Users(tm.ObjectID(o))) > 0 {
			d.ObjShard[o] = 0
			break
		}
	}
	if err := CrossCheck(d, in, r.Schedule); err == nil {
		t.Fatal("containment check accepted a cross object marked local")
	}
}

var _ core.Scheduler = (*Scheduler)(nil)
