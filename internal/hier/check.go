package hier

import (
	"fmt"

	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/windows"
)

// CrossCheck verifies a merged hierarchical schedule independently of the
// scheduler's own composition bookkeeping. It feeds the whole schedule
// through a fresh windows.ChainChecker — re-deriving every per-object
// handoff chain from the homes (objects must have time to travel between
// successive users, including across shard boundaries into the merge
// phase) and enforcing globally unique, strictly ordered per-node commit
// steps — and then checks the decomposition's containment invariant: a
// shard-local object's home and every one of its users must lie inside
// that shard's subtree, so no local schedule ever moves an object across a
// tier boundary.
func CrossCheck(d *Decomposition, in *tm.Instance, s *schedule.Schedule) error {
	cc := windows.NewChainChecker(in.Metric, in.Home)
	if err := cc.Check(in, s); err != nil {
		return fmt.Errorf("hier: chain cross-check: %w", err)
	}
	for o := 0; o < in.NumObjects; o++ {
		so := d.ObjShard[o]
		if so < 0 {
			continue
		}
		if hs := d.NodeShard[in.Home[o]]; hs != so {
			return fmt.Errorf("hier: object %d is local to shard %d but homed on node %d of shard %d",
				o, so, in.Home[o], hs)
		}
		for _, id := range in.Users(tm.ObjectID(o)) {
			if ns := d.NodeShard[in.Txns[id].Node]; ns != so {
				return fmt.Errorf("hier: object %d is local to shard %d but used by transaction %d on node %d of shard %d",
					o, so, id, in.Txns[id].Node, ns)
			}
		}
	}
	return nil
}
