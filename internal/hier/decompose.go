// Package hier implements the hierarchical fog–cloud scheduler: transactions
// are partitioned by their lowest-common-ancestor subtree at a shard tier of
// a topology.FogCloud tree, each subtree's purely local conflicts are
// scheduled independently on a parallel worker pool (each shard building its
// own dependency-graph CSR over a tm.ShardView of the instance's conflict
// index), and a top-level merge pass schedules the remaining cross-tier
// transactions after the release points the local phase leaves behind. The
// approach follows "A Poly-Log Approximation for Transaction Scheduling in
// Fog-Cloud Computing and Beyond" (Adhikari, Busch, Poudel): subtree-local
// work never pays cloud-link latency, and only genuinely cross-subtree
// conflicts climb the tree.
//
// Like every scheduler in the repo, the result is feasible by construction
// (exact per-shard and merge offsets, not probabilistic accounting),
// re-validated by schedule.Validate, and cross-checked by an independent
// windows.ChainChecker pass plus the subtree-containment invariant. Results
// are byte-identical at every worker count: shards compute into private
// slots and the composition never depends on completion order.
package hier

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// Decomposition is the subtree partition of an instance at a shard tier:
// every node of the communication tree at or below the tier belongs to
// exactly one tier subtree ("shard"), and every transaction and object is
// classified as local to one shard or cross-tier.
type Decomposition struct {
	// Tier is the shard tier: shard s is the subtree rooted at the s-th
	// tier-Tier node.
	Tier int
	// Shards is the number of subtrees, topology.FogCloud.TierSize(Tier).
	Shards int

	// NodeShard maps each node to its subtree index in [0, Shards), or −1
	// for nodes above the shard tier (they belong to no subtree).
	NodeShard []int
	// TxnShard maps each transaction to its shard, with the extra index
	// Shards for cross-tier transactions — exactly the layout
	// tm.ConflictIndex.Partition consumes.
	TxnShard []int
	// ObjShard maps each object to the shard it is local to, or −1 when it
	// is cross-tier (its home or any user sits outside a single subtree).
	ObjShard []int

	// Local lists each shard's local transactions in ascending ID order.
	Local [][]tm.TxnID
	// Cross lists the cross-tier transactions in ascending ID order.
	Cross []tm.TxnID
	// CrossObjects counts the requested objects classified cross-tier.
	CrossObjects int
}

// Decompose partitions in's transactions by their tier-t subtree on topo.
// An object is local to shard s when its home and every user lie inside
// subtree s; a transaction is local when its node lies in a subtree and
// every object it requests is local to that subtree. Everything else is
// cross-tier. Local objects of distinct shards are disjoint, and a local
// transaction never conflicts with a transaction of another shard — the
// invariant that lets shards schedule concurrently and overlap in time.
func Decompose(topo *topology.FogCloud, in *tm.Instance, tier int) *Decomposition {
	if tier < 0 || tier >= topo.Tiers() {
		panic(fmt.Sprintf("hier: shard tier %d outside [0, %d)", tier, topo.Tiers()))
	}
	n := topo.Graph().NumNodes()
	if in.G.NumNodes() != n {
		panic(fmt.Sprintf("hier: instance has %d nodes, topology %d", in.G.NumNodes(), n))
	}
	d := &Decomposition{
		Tier:      tier,
		Shards:    topo.TierSize(tier),
		NodeShard: make([]int, n),
		TxnShard:  make([]int, in.NumTxns()),
		ObjShard:  make([]int, in.NumObjects),
		Local:     make([][]tm.TxnID, topo.TierSize(tier)),
	}
	base := int(topo.TierStart(tier))
	for u := 0; u < n; u++ {
		if topo.TierOf(graph.NodeID(u)) < tier {
			d.NodeShard[u] = -1
			continue
		}
		d.NodeShard[u] = int(topo.Ancestor(graph.NodeID(u), tier)) - base
	}

	// Object classification: local to the common subtree of its home and
	// all users, or cross when no such subtree exists.
	for o := range d.ObjShard {
		s := d.NodeShard[in.Home[o]]
		for _, id := range in.Users(tm.ObjectID(o)) {
			if s < 0 {
				break
			}
			if d.NodeShard[in.Txns[id].Node] != s {
				s = -1
			}
		}
		d.ObjShard[o] = s
		if s < 0 && len(in.Users(tm.ObjectID(o))) > 0 {
			d.CrossObjects++
		}
	}

	// Transaction classification. A transaction using object o is one of
	// o's users, so if every requested object is local they are all local
	// to the transaction's own subtree.
	for i := range in.Txns {
		s := d.NodeShard[in.Txns[i].Node]
		for _, o := range in.Txns[i].Objects {
			if s < 0 {
				break
			}
			if d.ObjShard[o] != s {
				s = -1
			}
		}
		if s >= 0 {
			d.TxnShard[i] = s
			d.Local[s] = append(d.Local[s], tm.TxnID(i))
		} else {
			d.TxnShard[i] = d.Shards
			d.Cross = append(d.Cross, tm.TxnID(i))
		}
	}
	return d
}

// LocalTxns returns the total number of shard-local transactions.
func (d *Decomposition) LocalTxns() int {
	total := 0
	for _, ids := range d.Local {
		total += len(ids)
	}
	return total
}

// MaxShardTxns returns the largest shard's local transaction count.
func (d *Decomposition) MaxShardTxns() int {
	maxLen := 0
	for _, ids := range d.Local {
		if len(ids) > maxLen {
			maxLen = len(ids)
		}
	}
	return maxLen
}
