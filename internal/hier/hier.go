package hier

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dtmsched/internal/core"
	"dtmsched/internal/depgraph"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// Scheduler is the hierarchical fog–cloud scheduler. It implements
// core.Scheduler over instances generated on a topology.FogCloud tree.
//
// The schedule is built in two phases. The local phase decomposes the
// instance at the shard tier and schedules each subtree's local
// transactions independently: one dependency-graph CSR per shard, built
// over that shard's tm.ShardView of the conflict index, greedily colored
// and shifted by the exact per-shard offset that lets every local object
// reach its first requester from its home. Shards own disjoint node and
// object sets, so their sub-schedules overlap in time instead of
// serializing. The merge phase then schedules the cross-tier transactions:
// one dependency graph over the cross set (whose conflicts — cross–cross on
// any shared object — are exactly the cross member groups of the
// partitioned index), colored and shifted by the single offset that
// respects every release point the local phase left behind.
type Scheduler struct {
	// Topo is the fog–cloud tree the instance was generated on. Required.
	Topo *topology.FogCloud
	// Tier is the shard tier: subtrees rooted at tier Tier become shards.
	// 0 picks tier 1 (the fog tier, one shard per cloud child); explicit
	// values must lie in [1, Topo.Tiers()).
	Tier int
	// Workers bounds the local phase's shard worker pool: 0 picks
	// GOMAXPROCS, 1 forces serial. The schedule is byte-identical at every
	// worker count — shards compute into private slots and write disjoint
	// transaction and object entries.
	Workers int
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return "hier" }

// shardOut is one shard's private result slot.
type shardOut struct {
	built bool
	info  depgraph.BuildInfo
	span  int64 // completion step of the shard's sub-schedule
}

// firstUse tracks an object's earliest use inside one batch.
type firstUse struct {
	t    int64
	node graph.NodeID
}

// Schedule implements core.Scheduler.
func (s *Scheduler) Schedule(in *tm.Instance) (*core.Result, error) {
	if s.Topo == nil {
		return nil, errors.New("hier: scheduler needs its fog–cloud topology")
	}
	tier := s.Tier
	if tier == 0 {
		tier = 1
	}
	if tier < 1 || tier >= s.Topo.Tiers() {
		return nil, fmt.Errorf("hier: shard tier %d outside [1, %d)", tier, s.Topo.Tiers())
	}
	d := Decompose(s.Topo, in, tier)
	pv := in.Index().Partition(d.Shards+1, d.TxnShard)

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.Shards {
		workers = d.Shards
	}
	if workers < 1 {
		workers = 1
	}

	sched := schedule.New(in.NumTxns())
	// Per-object release points after the local phase. Each object is
	// touched by at most one shard (locality invariant), so shard workers
	// write disjoint entries.
	relT := make([]int64, in.NumObjects)
	relN := make([]graph.NodeID, in.NumObjects)
	copy(relN, in.Home)

	outs := make([]shardOut, d.Shards)
	shardStart := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= d.Shards {
					return
				}
				scheduleShard(in, d, pv, si, sched, &outs[si], relT, relN)
			}
		}()
	}
	wg.Wait()
	shardWall := time.Since(shardStart)

	// Merge phase: cross-tier transactions after the local release points.
	mergeStart := time.Now()
	var mergeOut shardOut
	if len(d.Cross) > 0 {
		h := depgraph.BuildOpts(in, d.Cross, depgraph.Options{Workers: workers, Index: pv.View(d.Shards)})
		local := h.GreedyColor(h.OrderByNode(in))
		first := make(map[tm.ObjectID]firstUse)
		for i, id := range d.Cross {
			node := in.Txns[id].Node
			for _, o := range in.Txns[id].Objects {
				if fu, ok := first[o]; !ok || local[i] < fu.t {
					first[o] = firstUse{t: local[i], node: node}
				}
			}
		}
		var delta int64
		for o, fu := range first {
			if need := relT[o] + in.Dist(relN[o], fu.node) - fu.t; need > delta {
				delta = need
			}
		}
		for i, id := range d.Cross {
			sched.Times[id] = local[i] + delta
			if t := sched.Times[id]; t > mergeOut.span {
				mergeOut.span = t
			}
		}
		mergeOut.built = true
		mergeOut.info = h.Info()
	}
	mergeWall := time.Since(mergeStart)

	r := &core.Result{
		Schedule:  sched,
		Makespan:  sched.Makespan(),
		Algorithm: s.Name(),
		Stats:     map[string]int64{},
	}
	var localSpan int64
	for si := range outs {
		if outs[si].span > localSpan {
			localSpan = outs[si].span
		}
	}
	r.Stats["hier_shards"] = int64(d.Shards)
	r.Stats["hier_tier"] = int64(d.Tier)
	r.Stats["hier_local_txns"] = int64(d.LocalTxns())
	r.Stats["hier_cross_txns"] = int64(len(d.Cross))
	r.Stats["hier_cross_objects"] = int64(d.CrossObjects)
	r.Stats["hier_max_shard_txns"] = int64(d.MaxShardTxns())
	r.Stats["hier_local_span"] = localSpan
	r.Stats["hier_merge_span"] = mergeOut.span
	// Wall-clock keys are the only nondeterministic stats; the engine moves
	// them into Timing (like depgraph_build_ns) so Report.Stats stays
	// byte-identical at every worker count.
	r.Stats["hier_shard_wall_ns"] = int64(shardWall)
	r.Stats["hier_merge_wall_ns"] = int64(mergeWall)
	// Conflict-graph build accounting, accumulated in shard order (the
	// depgraph_* keys the engine and observability layers read).
	for si := range outs {
		addBuildStats(r.Stats, outs[si])
	}
	addBuildStats(r.Stats, mergeOut)

	if err := sched.Validate(in); err != nil {
		return nil, fmt.Errorf("hier: produced an infeasible schedule: %w", err)
	}
	if err := CrossCheck(d, in, sched); err != nil {
		return nil, fmt.Errorf("hier: merged schedule fails the cross-check: %w", err)
	}
	return r, nil
}

// scheduleShard schedules shard si's local transactions into sched and
// advances the release points of the shard's (private) local objects.
func scheduleShard(in *tm.Instance, d *Decomposition, pv *tm.PartitionedView, si int,
	sched *schedule.Schedule, out *shardOut, relT []int64, relN []graph.NodeID) {
	ids := d.Local[si]
	if len(ids) == 0 {
		return
	}
	// Inner builds run serially: parallelism lives at the shard level.
	h := depgraph.BuildOpts(in, ids, depgraph.Options{Workers: 1, Index: pv.View(si)})
	local := h.GreedyColor(h.OrderByNode(in))

	// Exact home-travel offset: every local object must reach its first
	// requester from its home. Local objects are shard-private, so shards
	// shift independently and overlap in global time.
	first := make(map[tm.ObjectID]firstUse)
	for i, id := range ids {
		node := in.Txns[id].Node
		for _, o := range in.Txns[id].Objects {
			if fu, ok := first[o]; !ok || local[i] < fu.t {
				first[o] = firstUse{t: local[i], node: node}
			}
		}
	}
	var delta int64
	for o, fu := range first {
		if need := in.Dist(in.Home[o], fu.node) - fu.t; need > delta {
			delta = need
		}
	}
	for i, id := range ids {
		t := local[i] + delta
		sched.Times[id] = t
		if t > out.span {
			out.span = t
		}
		for _, o := range in.Txns[id].Objects {
			if t > relT[o] {
				relT[o] = t
				relN[o] = in.Txns[id].Node
			}
		}
	}
	out.built = true
	out.info = h.Info()
}

// addBuildStats accumulates one build's instrumentation under the
// depgraph_* keys shared with internal/core.
func addBuildStats(stats map[string]int64, out shardOut) {
	if !out.built {
		return
	}
	stats["depgraph_builds"]++
	stats["depgraph_build_ns"] += int64(out.info.Duration)
	stats["depgraph_edges"] += out.info.Edges
}
