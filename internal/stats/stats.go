// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics over trial measurements, the
// Chernoff bounds of Lemma 1 (used to sanity-check the paper's
// concentration arguments empirically), least-squares fits for growth-rate
// shape checks, and fixed-width table rendering for reproducible report
// output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of float64 measurements.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary; it returns the zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if n > 1 {
		s.Std = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ChernoffUpper bounds Pr(X ≥ (1+δ)μ) ≤ exp(−δ²μ/3) for a sum X of
// independent 0/1 variables with mean μ and 0 < δ < 1 (Lemma 1, Eq. 1).
func ChernoffUpper(mu, delta float64) float64 {
	return math.Exp(-delta * delta * mu / 3)
}

// ChernoffLower bounds Pr(X ≤ (1−δ)μ) ≤ exp(−δ²μ/2) (Lemma 1, Eq. 2).
func ChernoffLower(mu, delta float64) float64 {
	return math.Exp(-delta * delta * mu / 2)
}

// LinFit fits y ≈ a + b·x by least squares and returns (a, b, r²).
// Passing log-transformed data yields power-law / logarithmic shape fits.
func LinFit(x, y []float64) (a, b, r2 float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	// r² = 1 − SSres/SStot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range x {
		d := y[i] - (a + b*x[i])
		ssRes += d * d
	}
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2
}

// Table renders aligned fixed-width tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty. Use Fmt helpers for numbers.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := 0; i < len(t.header) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each value with %v.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// String renders the table with a separator line under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Header returns a copy of the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns a deep copy of the data rows, in insertion order.
func (t *Table) Rows() [][]string {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return rows
}

// CSV renders the table as comma-separated values (header + rows), with
// cells containing commas or quotes quoted per RFC 4180.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
