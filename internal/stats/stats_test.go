package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P99 != 7 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Fatalf("P50 of {0,10} = %v, want 5", s.P50)
	}
	if s.P90 != 9 {
		t.Fatalf("P90 of {0,10} = %v, want 9", s.P90)
	}
}

func TestSummarizeOrderInvariantProperty(t *testing.T) {
	check := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a := Summarize(xs)
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		b := Summarize(rev)
		return a.N == b.N && a.Min == b.Min && a.Max == b.Max && a.P50 == b.P50
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChernoffBounds(t *testing.T) {
	// Lemma 2's numbers: μ = 27·ln m, δ = 2/3 ⇒ both tails ≤ m^−4.
	m := 100.0
	mu := 27 * math.Log(m)
	if up := ChernoffUpper(mu, 2.0/3.0); up > math.Pow(m, -4)*1.01 {
		t.Fatalf("upper tail %v exceeds m^-4", up)
	}
	if lo := ChernoffLower(mu, 2.0/3.0); lo > math.Pow(m, -4)*1.01 {
		t.Fatalf("lower tail %v exceeds m^-4", lo)
	}
	// Monotone in μ and δ.
	if ChernoffUpper(10, 0.5) >= ChernoffUpper(5, 0.5) {
		t.Fatal("upper bound not decreasing in μ")
	}
	if ChernoffLower(10, 0.9) >= ChernoffLower(10, 0.1) {
		t.Fatal("lower bound not decreasing in δ")
	}
}

func TestLinFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinFit(x, y)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("LinFit = (%v,%v,%v)", a, b, r2)
	}
}

func TestLinFitDegenerate(t *testing.T) {
	if _, b, _ := LinFit([]float64{2, 2, 2}, []float64{1, 5, 9}); b != 0 {
		t.Fatalf("vertical data slope = %v", b)
	}
	if a, b, r2 := LinFit([]float64{1}, []float64{1}); a != 0 || b != 0 || r2 != 0 {
		t.Fatal("short input not rejected")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("alg", "ratio")
	tab.AddRowf("greedy", 1.25)
	tab.AddRow("line")
	out := tab.String()
	if !strings.Contains(out, "greedy") || !strings.Contains(out, "1.25") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	// Extra cells are dropped, missing cells render empty.
	tab.AddRow("a", "b", "c")
	if strings.Contains(tab.String(), "c") {
		t.Fatal("overflow cell not dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("plain", `quo"ted,cell`)
	csv := tab.CSV()
	if !strings.Contains(csv, "a,b\n") || !strings.Contains(csv, `"quo""ted,cell"`) {
		t.Fatalf("CSV wrong:\n%s", csv)
	}
}
