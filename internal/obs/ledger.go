// Run ledger: a schema-versioned, append-only JSONL history of canonical
// RunRecords. Where a metrics snapshot answers "what happened in this
// process", the ledger answers "how does this run compare to every run
// before it": each benchmark invocation appends one record per
// experiment (or per engine job), and the regression engine in compare.go
// groups the accumulated records by configuration fingerprint to decide
// whether performance moved.
//
// The ledger follows the Collector's nil-safety contract: a nil *Ledger
// is a no-op whose methods cost zero allocations, so engine hooks can
// call it unconditionally and an unattached pipeline pays nothing
// (enforced by TestNilLedgerProfilerZeroAllocs).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
)

// LedgerSchemaVersion is the RunRecord schema this package writes.
// Readers accept any version ≤ the current one; unknown newer versions
// are a hard error rather than a silent misparse.
const LedgerSchemaVersion = 1

// Env captures the execution environment of a record. Environment fields
// never enter the fingerprint — records from different machines share a
// fingerprint and the comparator surfaces the mismatch as a warning
// instead of silently comparing apples to oranges.
type Env struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() Env {
	return Env{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// HistSnapshot is a frozen histogram: per-bucket counts with the same
// bounds convention as Registry histograms (Bucket.LE = -1 is the
// overflow bucket). Records carry one for transaction latency so the
// comparator can pool distributions across trials instead of taking a
// median of per-trial quantiles.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the qth quantile with Histogram.Quantile's
// semantics: the upper bound of the bucket containing the rank,
// the observed maximum for ranks landing in the overflow bucket, zero
// when empty.
func (h *HistSnapshot) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.N
		if seen >= rank {
			if b.LE >= 0 {
				return b.LE
			}
			return h.Max
		}
	}
	return h.Max
}

// MergeHist returns the bucket-wise sum of two snapshots (either may be
// nil). Buckets are matched by upper bound and the result is sorted with
// the overflow bucket last, so merging is commutative and deterministic:
// merge(a,b) and merge(b,a) are byte-identical
// (TestMergeHistDeterminism).
func MergeHist(a, b *HistSnapshot) *HistSnapshot {
	if a == nil && b == nil {
		return nil
	}
	out := &HistSnapshot{}
	byLE := map[int64]int64{}
	for _, h := range []*HistSnapshot{a, b} {
		if h == nil {
			continue
		}
		out.Count += h.Count
		out.Sum += h.Sum
		if h.Max > out.Max {
			out.Max = h.Max
		}
		for _, bk := range h.Buckets {
			byLE[bk.LE] += bk.N
		}
	}
	out.Buckets = sortedBuckets(byLE)
	return out
}

// HistDelta returns the histogram accumulated between two registry
// snapshot samples of the same histogram (prev may be the zero Sample
// for "since the beginning"). Count, Sum, and per-bucket counts
// subtract; Max cannot be deltaed from a snapshot and keeps the
// cumulative cur.Max, which is exact whenever the interval contains the
// run that set it.
func HistDelta(cur, prev Sample) *HistSnapshot {
	out := &HistSnapshot{
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
		Max:   cur.Max,
	}
	byLE := map[int64]int64{}
	for _, b := range cur.Buckets {
		byLE[b.LE] += b.N
	}
	for _, b := range prev.Buckets {
		byLE[b.LE] -= b.N
	}
	out.Buckets = sortedBuckets(byLE)
	return out
}

// sortedBuckets renders a LE→count map as a bucket list sorted by bound
// with the overflow bucket (LE -1) last; empty buckets are dropped.
func sortedBuckets(byLE map[int64]int64) []Bucket {
	var out []Bucket
	for le, n := range byLE {
		if n != 0 {
			out = append(out, Bucket{LE: le, N: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].LE, out[j].LE
		if li < 0 {
			return false // overflow sorts last
		}
		if lj < 0 {
			return true
		}
		return li < lj
	})
	return out
}

// SnapshotValues builds a HistSnapshot by observing every value into a
// fresh DefaultBuckets histogram — the path engine hooks use to freeze a
// schedule's per-transaction latencies into a record.
func SnapshotValues(values []int64) *HistSnapshot {
	h := newHistogram(nil)
	for _, v := range values {
		h.Observe(v)
	}
	out := &HistSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.max.Value()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			le := int64(-1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			out.Buckets = append(out.Buckets, Bucket{LE: le, N: n})
		}
	}
	return out
}

// RunRecord is one canonical ledger entry: the identity of what ran
// (experiment, fingerprint, config, seed), what it measured (per-stage
// wall times, simulator counters, lower-bound oracle stats, latency),
// and where it ran (Env). Wall-time fields are the only
// non-deterministic ones; everything else is reproducible from the
// fingerprint and seed.
type RunRecord struct {
	// Schema is the record's LedgerSchemaVersion (filled by Append).
	Schema int `json:"schema"`
	// Experiment names what ran: an experiment ID ("E5") or a bench
	// suite job ("bench/grid12").
	Experiment string `json:"experiment"`
	// Fingerprint identifies the configuration group this record belongs
	// to: a stable hash of Experiment plus the Config map (filled by
	// Append when empty). The comparator only ever compares records with
	// equal fingerprints.
	Fingerprint string `json:"fingerprint"`
	// Config holds the raw fingerprint inputs, for humans and reports.
	Config map[string]string `json:"config,omitempty"`
	// Seed is the root seed of the run.
	Seed int64 `json:"seed,omitempty"`
	// Trial distinguishes repeated runs of one fingerprint within a
	// single ledger append session (0 when unused).
	Trial int `json:"trial,omitempty"`
	// Algorithm names the schedule producer for per-job records.
	Algorithm string `json:"algorithm,omitempty"`

	// StageMS maps pipeline stage name → wall milliseconds.
	StageMS map[string]float64 `json:"stage_ms,omitempty"`
	// TotalMS is the whole run's wall time in milliseconds.
	TotalMS float64 `json:"total_ms,omitempty"`

	// SimSteps / ObjectMoves / Executed are the simulator counters.
	SimSteps    int64 `json:"simsteps,omitempty"`
	ObjectMoves int64 `json:"objmoves,omitempty"`
	Executed    int64 `json:"executed,omitempty"`
	// Makespan / Bound / Ratio measure schedule quality (per-job records).
	Makespan int64   `json:"makespan,omitempty"`
	Bound    int64   `json:"bound,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`

	// Lower* are the certified-bound oracle stats.
	LowerMS           float64 `json:"lower_ms,omitempty"`
	LowerComputations int64   `json:"lower_computations,omitempty"`
	LowerCacheHits    int64   `json:"lower_cache_hits,omitempty"`

	// LatencyP50 / LatencyP99 are per-transaction commit-step quantiles;
	// Latency is the full distribution they were read from, kept so the
	// comparator can pool trials.
	LatencyP50 int64         `json:"latency_p50,omitempty"`
	LatencyP99 int64         `json:"latency_p99,omitempty"`
	Latency    *HistSnapshot `json:"latency,omitempty"`

	// Stream* summarize a streaming-service run (dtmsched serve):
	// admission-control outcomes, window count, queue peak, and the
	// cut-to-last-commit window-latency distribution. All zero/nil for
	// batch records, so pre-existing ledgers compare unchanged.
	StreamAdmitted  int64         `json:"stream_admitted,omitempty"`
	StreamRejected  int64         `json:"stream_rejected,omitempty"`
	StreamBlocked   int64         `json:"stream_blocked,omitempty"`
	StreamWindows   int64         `json:"stream_windows,omitempty"`
	StreamQueuePeak int64         `json:"stream_queue_peak,omitempty"`
	WindowLatency   *HistSnapshot `json:"window_latency,omitempty"`

	// StreamFault* summarize the fault-tolerance layer of a chaos serving
	// run: requeues and sheds from the health tracker, degraded windows
	// and their mean makespan inflation, and breaker transitions. All zero
	// for fault-free runs, so zero-fault records stay byte-identical.
	StreamRequeued   int64   `json:"stream_requeued,omitempty"`
	StreamShed       int64   `json:"stream_shed,omitempty"`
	StreamDegraded   int64   `json:"stream_degraded,omitempty"`
	StreamInflation  float64 `json:"stream_inflation,omitempty"`
	StreamTrips      int64   `json:"stream_breaker_trips,omitempty"`
	StreamRecoveries int64   `json:"stream_breaker_recoveries,omitempty"`

	// Env is the execution environment.
	Env Env `json:"env"`
}

// Fingerprint hashes an experiment name and its configuration map into
// a stable 16-hex-digit group key (FNV-1a over the sorted k=v pairs).
func Fingerprint(experiment string, cfg map[string]string) string {
	h := fnv.New64a()
	io.WriteString(h, experiment)
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		io.WriteString(h, "|")
		io.WriteString(h, k)
		io.WriteString(h, "=")
		io.WriteString(h, cfg[k])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Ledger appends RunRecords to an io.Writer sink as JSON Lines. Append
// is safe for concurrent use (RunBatch workers share one ledger); a nil
// *Ledger is a no-op.
type Ledger struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewLedger wraps a writer sink. The caller owns the writer's lifetime
// (closing files, flushing buffers).
func NewLedger(w io.Writer) *Ledger { return &Ledger{w: w} }

// Append writes one record as a single JSON line, filling Schema, Env,
// and Fingerprint when the caller left them empty. The first write error
// is sticky: later appends fail fast with it.
func (l *Ledger) Append(rec *RunRecord) error {
	if l == nil || rec == nil {
		return nil
	}
	if rec.Schema == 0 {
		rec.Schema = LedgerSchemaVersion
	}
	if rec.Fingerprint == "" {
		rec.Fingerprint = Fingerprint(rec.Experiment, rec.Config)
	}
	if rec.Env == (Env{}) {
		rec.Env = CaptureEnv()
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if _, err := l.w.Write(append(data, '\n')); err != nil {
		l.err = err
		return err
	}
	return nil
}

// Err returns the sticky write error, if any.
func (l *Ledger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// ReadLedger parses a JSONL ledger stream. Blank lines are skipped;
// malformed lines and records from a newer schema version are errors
// that name the offending line.
func ReadLedger(r io.Reader) ([]RunRecord, error) {
	var out []RunRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("ledger line %d: %w", line, err)
		}
		if rec.Schema < 1 || rec.Schema > LedgerSchemaVersion {
			return nil, fmt.Errorf("ledger line %d: schema %d not supported (this build reads ≤ %d)",
				line, rec.Schema, LedgerSchemaVersion)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadLedgerFile reads a ledger from a file path.
func ReadLedgerFile(path string) ([]RunRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadLedger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
