package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"dtmsched/internal/faults"
	"dtmsched/internal/lower"
)

func TestNilCollectorZeroAllocs(t *testing.T) {
	var c *Collector
	in, s := lineInstance()
	err := errors.New("boom")
	stats := map[string]int64{"depgraph_build_ns": 1, "depgraph_builds": 1}
	fr := &faults.Report{Retries: 3, Inflation: 1.5}
	lb := &lower.Bound{Value: 4, ExactObjects: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Stage(0, "job", "verify", time.Millisecond, nil)
		c.Stage(0, "job", "verify", time.Millisecond, err)
		c.RecordRun(0, "job", "alg", in, s, nil)
		c.DepGraphBuild(stats)
		c.Hier(stats)
		c.Fault(fr)
		c.LowerBound(false, time.Millisecond, lb)
		c.LowerBound(true, 0, lb)
		c.Retry()
		c.StreamAdmit(1, 1, 1, 1)
		c.StreamWindow(1, 1, nil)
		c.StreamCommit(1)
		c.StreamRequeue(1, 2)
		c.StreamShed(1)
		c.StreamBreaker(true)
		c.StreamBreaker(false)
		c.StreamFaultWindow(1.5, true)
		if c.Tracing() {
			t.Fatal("nil collector must not trace")
		}
		c.Registry().Counter("x").Inc()
	})
	if allocs != 0 {
		t.Fatalf("nil collector path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCollectorStageMetrics(t *testing.T) {
	c := NewMetricsCollector()
	c.Stage(0, "j", "schedule", 1500*time.Microsecond, nil)
	c.Stage(1, "k", "schedule", 500*time.Microsecond, nil)
	c.Stage(1, "k", "verify", time.Millisecond, errors.New("infeasible"))
	reg := c.Registry()
	if got := reg.Counter("engine_stage_wall_us", "stage", "schedule").Value(); got != 2000 {
		t.Errorf("schedule wall = %dµs, want 2000", got)
	}
	if got := reg.Counter("engine_stage_total", "stage", "schedule").Value(); got != 2 {
		t.Errorf("schedule completions = %d, want 2", got)
	}
	if got := reg.Counter("engine_stage_errors_total", "stage", "verify").Value(); got != 1 {
		t.Errorf("verify errors = %d, want 1", got)
	}
	// Metrics-only collector retains no traces.
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("metrics-only collector exported %d bytes of trace", buf.Len())
	}
}

func TestCollectorStreamFaultMetrics(t *testing.T) {
	c := NewMetricsCollector()
	c.StreamRequeue(2, 3)
	c.StreamRequeue(1, 1)
	c.StreamRequeue(0, 0) // depth gauge still tracks the drained queue
	c.StreamShed(2)
	c.StreamShed(0) // no-op
	c.StreamBreaker(true)
	c.StreamBreaker(false)
	c.StreamFaultWindow(1.0, false)
	c.StreamFaultWindow(2.5, true)
	reg := c.Registry()
	for name, want := range map[string]int64{
		"stream_requeue_total":            3,
		"stream_shed_total":               2,
		"stream_breaker_trips_total":      1,
		"stream_breaker_recoveries_total": 1,
		"stream_fault_windows_total":      2,
		"stream_fault_degraded_total":     1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("stream_requeue_depth").Value(); got != 0 {
		t.Errorf("requeue depth = %d, want 0 after drain", got)
	}
	if got := reg.Gauge("stream_requeue_depth_peak").Value(); got != 3 {
		t.Errorf("requeue depth peak = %d, want 3", got)
	}
	h := reg.Histogram("stream_fault_inflation_pct", nil)
	if h.Count() != 2 || h.Sum() != 100+250 {
		t.Errorf("inflation histogram count=%d sum=%d, want 2/350", h.Count(), h.Sum())
	}
}

func TestCollectorDepGraphBuild(t *testing.T) {
	c := NewMetricsCollector()
	// A stats map without depgraph_build_ns (baseline schedulers) is a no-op.
	c.DepGraphBuild(map[string]int64{"makespan": 10})
	c.DepGraphBuild(map[string]int64{
		"depgraph_build_ns": 4_000_000, "depgraph_builds": 2, "depgraph_edges": 33,
		"gamma": 12, "hmax": 3,
	})
	c.DepGraphBuild(map[string]int64{
		"depgraph_build_ns": 1_000_000, "depgraph_builds": 1, "depgraph_edges": 7,
	})
	reg := c.Registry()
	if got := reg.Counter("depgraph_build_ns_total").Value(); got != 5_000_000 {
		t.Errorf("build ns total = %d, want 5000000", got)
	}
	if got := reg.Counter("depgraph_builds_total").Value(); got != 3 {
		t.Errorf("builds total = %d, want 3", got)
	}
	if got := reg.Counter("depgraph_edges_total").Value(); got != 40 {
		t.Errorf("edges total = %d, want 40", got)
	}
	if h := reg.Histogram("depgraph_build_us", nil); h.Count() != 2 || h.Sum() != 5000 {
		t.Errorf("build_us histogram count=%d sum=%d, want 2/5000", h.Count(), h.Sum())
	}
	if h := reg.Histogram("depgraph_edges", nil); h.Count() != 2 || h.Sum() != 40 {
		t.Errorf("edges histogram count=%d sum=%d, want 2/40", h.Count(), h.Sum())
	}
	// Γ and h_max distributions only observe when the scheduler reported them.
	if h := reg.Histogram("depgraph_gamma", nil); h.Count() != 1 || h.Sum() != 12 {
		t.Errorf("gamma histogram count=%d sum=%d, want 1/12", h.Count(), h.Sum())
	}
	if h := reg.Histogram("depgraph_hmax", nil); h.Count() != 1 || h.Sum() != 3 {
		t.Errorf("hmax histogram count=%d sum=%d, want 1/3", h.Count(), h.Sum())
	}
}

func TestCollectorRecordRun(t *testing.T) {
	in, s := lineInstance()
	c := NewCollector()
	c.Stage(0, "line-run", "schedule", time.Millisecond, nil)
	c.RecordRun(0, "line-run", "test-alg", in, s, nil)

	reg := c.Registry()
	if got := reg.Counter("engine_runs_total").Value(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
	lat := reg.Histogram("txn_latency_steps", nil)
	if lat.Count() != 3 || lat.Sum() != 10 {
		t.Errorf("latency histogram count=%d sum=%d, want 3/10", lat.Count(), lat.Sum())
	}
	travel := reg.Histogram("object_travel_steps", nil)
	if travel.Count() != 1 || travel.Sum() != 5 {
		t.Errorf("travel histogram count=%d sum=%d, want 1/5", travel.Count(), travel.Sum())
	}
	if got := reg.Gauge("makespan_steps_max").Value(); got != 6 {
		t.Errorf("makespan gauge = %d, want 6", got)
	}

	var jsonl, chrome, metrics bytes.Buffer
	if err := c.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ev":"run"`, `"ev":"stage"`, `"ev":"move"`, `"ev":"exec"`, `"ev":"metrics"`, `"algorithm":"test-alg"`} {
		if !strings.Contains(jsonl.String(), want) {
			t.Errorf("JSONL missing %s", want)
		}
	}
	if strings.Contains(jsonl.String(), "wall_us") {
		t.Error("JSONL leaked wall-clock times without WallClock opt-in")
	}
	if err := c.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"ph":"M"`, `"ph":"X"`, `"cat":"move"`, `"cat":"txn"`, `"cat":"wait"`} {
		if !strings.Contains(chrome.String(), want) {
			t.Errorf("Chrome trace missing %s", want)
		}
	}
	if err := c.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"txn_latency_steps", "object_travel_steps", "queue_depth", "link_utilization", "critical_path"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics snapshot missing %s", want)
		}
	}
}

func TestWallClockOptIn(t *testing.T) {
	in, s := lineInstance()
	c := NewCollectorConfig(Config{Traces: true, WallClock: true})
	c.Stage(0, "j", "schedule", 2*time.Millisecond, nil)
	c.RecordRun(0, "j", "a", in, s, nil)
	var jsonl bytes.Buffer
	if err := c.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"wall_us":2000`) {
		t.Error("WallClock collector should export stage wall times")
	}
	var chrome bytes.Buffer
	if err := c.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"cat":"stage"`) {
		t.Error("WallClock collector should export pipeline stage spans")
	}
}

func TestMaxTraceRuns(t *testing.T) {
	in, s := lineInstance()
	c := NewCollectorConfig(Config{Traces: true, MaxTraceRuns: 2})
	// Record out of order: retention must keep the lowest (job, name)
	// keys regardless of arrival order.
	for _, job := range []int{3, 1, 2, 0} {
		c.RecordRun(job, "j", "a", in, s, nil)
	}
	runs := c.sortedRuns()
	if len(runs) != 2 {
		t.Fatalf("retained %d runs, want 2", len(runs))
	}
	if runs[0].Job != 0 || runs[1].Job != 1 {
		t.Errorf("retained jobs %d,%d — want 0,1", runs[0].Job, runs[1].Job)
	}
}

func TestCollectorHier(t *testing.T) {
	c := NewMetricsCollector()
	// A stats map without hier_shards (every other scheduler) is a no-op.
	c.Hier(map[string]int64{"makespan": 10})
	c.Hier(map[string]int64{
		"hier_shards": 4, "hier_local_txns": 30, "hier_cross_txns": 10,
		"hier_max_shard_txns": 12, "hier_shard_wall_ns": 2_000_000, "hier_merge_wall_ns": 1_000_000,
	})
	c.Hier(map[string]int64{
		"hier_shards": 8, "hier_local_txns": 50, "hier_cross_txns": 0,
		"hier_max_shard_txns": 9, "hier_shard_wall_ns": 3_000_000,
	})
	reg := c.Registry()
	if got := reg.Counter("hier_runs_total").Value(); got != 2 {
		t.Errorf("hier_runs_total = %d, want 2", got)
	}
	if got := reg.Counter("hier_local_txns_total").Value(); got != 80 {
		t.Errorf("hier_local_txns_total = %d, want 80", got)
	}
	if got := reg.Counter("hier_cross_txns_total").Value(); got != 10 {
		t.Errorf("hier_cross_txns_total = %d, want 10", got)
	}
	if got := reg.Counter("hier_shard_wall_ns_total").Value(); got != 5_000_000 {
		t.Errorf("hier_shard_wall_ns_total = %d, want 5000000", got)
	}
	if h := reg.Histogram("hier_shards", nil); h.Count() != 2 || h.Sum() != 12 {
		t.Errorf("hier_shards histogram count=%d sum=%d, want 2/12", h.Count(), h.Sum())
	}
	// Cross fractions: 10/40 → 25%, 0/50 → 0%.
	if h := reg.Histogram("hier_cross_fraction_pct", nil); h.Count() != 2 || h.Sum() != 25 {
		t.Errorf("cross fraction histogram count=%d sum=%d, want 2/25", h.Count(), h.Sum())
	}
}
