// Derived schedule metrics: everything here is computed deterministically
// from an (instance, schedule) pair under the paper's synchronous timing
// semantics, so the numbers agree exactly with what the simulator measures
// and are reproducible across worker counts and verify policies.
package obs

import (
	"sort"

	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// Move is one object relocation: the object departs From after the step
// Depart (its previous holder's commit, or step 0 from its home) and
// arrives at To at step Arrive = Depart + distance. Used is the step at
// which the receiving transaction executes, so Used − Arrive is the
// object's queueing delay at the destination.
type Move struct {
	Object int   `json:"object"`
	Txn    int   `json:"txn"`
	From   int   `json:"from"`
	To     int   `json:"to"`
	Depart int64 `json:"depart"`
	Arrive int64 `json:"arrive"`
	Used   int64 `json:"used"`
}

// Exec is one transaction commit.
type Exec struct {
	Txn  int   `json:"txn"`
	Node int   `json:"node"`
	Step int64 `json:"step"`
}

// Series is a per-step time series, possibly downsampled: Values[i] covers
// steps [i·Stride, (i+1)·Stride) and holds the maximum over the window.
type Series struct {
	Stride int64   `json:"stride"`
	Values []int64 `json:"values"`
}

// maxSeriesPoints bounds exported series length; longer series are
// downsampled by a power-of-two stride (window maximum), which keeps the
// export deterministic and Perfetto/plot friendly.
const maxSeriesPoints = 512

func downsample(values []int64) Series {
	stride := int64(1)
	for int64(len(values)) > stride*maxSeriesPoints {
		stride *= 2
	}
	if stride == 1 {
		return Series{Stride: 1, Values: values}
	}
	out := make([]int64, 0, (int64(len(values))+stride-1)/stride)
	for i := 0; i < len(values); i += int(stride) {
		end := i + int(stride)
		if end > len(values) {
			end = len(values)
		}
		var m int64
		for _, v := range values[i:end] {
			if v > m {
				m = v
			}
		}
		out = append(out, m)
	}
	return Series{Stride: stride, Values: out}
}

// NodeDepth is the peak number of objects queued (arrived but not yet
// consumed) at one node.
type NodeDepth struct {
	Node int   `json:"node"`
	Peak int64 `json:"peak"`
}

// ScheduleMetrics is the time-resolved shape of one run's schedule.
type ScheduleMetrics struct {
	Makespan int64 `json:"makespan"`
	// TxnLatencyP50/P90/P99/Max summarize per-transaction latency: the
	// step at which each transaction commits, counted from batch
	// activation at step 0.
	TxnLatencyP50 int64 `json:"txn_latency_p50"`
	TxnLatencyP90 int64 `json:"txn_latency_p90"`
	TxnLatencyP99 int64 `json:"txn_latency_p99"`
	TxnLatencyMax int64 `json:"txn_latency_max"`
	// ObjectTravel[o] is the total distance object o travels.
	ObjectTravel []int64 `json:"object_travel"`
	// TotalTravel is the summed travel (= the simulator's CommCost).
	TotalTravel int64 `json:"total_travel"`
	// QueueDepth is the total number of objects sitting at some
	// requester's node waiting to be used, per step.
	QueueDepth Series `json:"queue_depth"`
	// PeakQueueDepth lists nodes by their peak local queue depth
	// (descending; ties by node ID), capped at the 16 hottest nodes.
	PeakQueueDepth []NodeDepth `json:"peak_queue_depth"`
	// LinkUtilization is the number of objects in transit (occupying
	// links) per step — the network-load profile of the schedule.
	LinkUtilization Series `json:"link_utilization"`
	// CriticalPath is the longest chain of tight object handoffs
	// (T_{i+1} executes exactly when T_i's object can first arrive);
	// its length is what pins the makespan from below.
	CriticalPath []int `json:"critical_path"`
}

// Derive computes the schedule metrics plus the full move/exec span lists
// for an (instance, schedule) pair. The spans reproduce exactly the
// object movements the simulator would perform (dispatch at commit, travel
// one unit of distance per step), so traces are identical whether or not
// the verify policy actually ran the simulator.
func Derive(in *tm.Instance, s *schedule.Schedule) (*ScheduleMetrics, []Move, []Exec) {
	m := &ScheduleMetrics{Makespan: s.Makespan(), ObjectTravel: make([]int64, in.NumObjects)}

	// Transaction latency distribution and execute spans.
	lat := make([]int64, len(s.Times))
	execs := make([]Exec, len(s.Times))
	for i, t := range s.Times {
		lat[i] = t
		execs[i] = Exec{Txn: i, Node: int(in.Txns[i].Node), Step: t}
	}
	sort.Slice(execs, func(i, j int) bool {
		if execs[i].Step != execs[j].Step {
			return execs[i].Step < execs[j].Step
		}
		return execs[i].Txn < execs[j].Txn
	})
	q := Quantiles(lat, 0.50, 0.90, 0.99, 1.0)
	m.TxnLatencyP50, m.TxnLatencyP90, m.TxnLatencyP99, m.TxnLatencyMax = q[0], q[1], q[2], q[3]

	// Object itineraries → move spans, travel, queue/transit series. An
	// object is "in transit" during the d steps after its dispatch and
	// "queued" at its destination from arrival until its requester
	// executes — the same semantics the simulator enforces.
	steps := m.Makespan + 1
	queue := make([]int64, steps)
	transit := make([]int64, steps)
	type interval struct {
		node   int
		lo, hi int64 // queued at node during [lo, hi)
	}
	var ivs []interval
	var moves []Move
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		order := s.Order(in, oid)
		prevNode := in.Home[oid]
		prevTime := int64(0)
		for _, id := range order {
			dest := in.Txns[id].Node
			d := in.Dist(prevNode, dest)
			arrive := prevTime + d
			used := s.Times[id]
			m.ObjectTravel[o] += d
			if d > 0 {
				moves = append(moves, Move{Object: o, Txn: int(id), From: int(prevNode), To: int(dest),
					Depart: prevTime, Arrive: arrive, Used: used})
			}
			for t := prevTime + 1; t <= arrive && t < steps; t++ {
				transit[t]++
			}
			for t := arrive; t < used && t < steps; t++ {
				queue[t]++
			}
			if used > arrive {
				ivs = append(ivs, interval{int(dest), arrive, used})
			}
			prevNode, prevTime = dest, used
		}
		m.TotalTravel += m.ObjectTravel[o]
	}

	// Per-node peak queue depth: sweep each node's [arrive, used)
	// intervals for maximum overlap.
	byNode := map[int][]interval{}
	for _, iv := range ivs {
		byNode[iv.node] = append(byNode[iv.node], iv)
	}
	for node, list := range byNode {
		type ev struct {
			t int64
			d int64
		}
		evs := make([]ev, 0, 2*len(list))
		for _, iv := range list {
			evs = append(evs, ev{iv.lo, +1}, ev{iv.hi, -1})
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].d < evs[j].d // close before open at the same step
		})
		var cur, best int64
		for _, e := range evs {
			cur += e.d
			if cur > best {
				best = cur
			}
		}
		if best > 0 {
			m.PeakQueueDepth = append(m.PeakQueueDepth, NodeDepth{Node: node, Peak: best})
		}
	}
	sort.Slice(m.PeakQueueDepth, func(i, j int) bool {
		if m.PeakQueueDepth[i].Peak != m.PeakQueueDepth[j].Peak {
			return m.PeakQueueDepth[i].Peak > m.PeakQueueDepth[j].Peak
		}
		return m.PeakQueueDepth[i].Node < m.PeakQueueDepth[j].Node
	})
	if len(m.PeakQueueDepth) > 16 {
		m.PeakQueueDepth = m.PeakQueueDepth[:16]
	}

	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Object != moves[j].Object {
			return moves[i].Object < moves[j].Object
		}
		return moves[i].Depart < moves[j].Depart
	})

	m.QueueDepth = downsample(queue)
	m.LinkUtilization = downsample(transit)
	m.CriticalPath = criticalPath(in, s)
	return m, moves, execs
}

// criticalPath finds the longest chain T_1 → T_2 → … where consecutive
// transactions share an object and each successor executes exactly when
// the object can first arrive from its predecessor (a tight handoff) —
// the event-stream witness for why the makespan is what it is.
func criticalPath(in *tm.Instance, s *schedule.Schedule) []int {
	n := in.NumTxns()
	preds := make([][]tm.TxnID, n)
	for o := 0; o < in.NumObjects; o++ {
		order := s.Order(in, tm.ObjectID(o))
		for i := 0; i+1 < len(order); i++ {
			a, b := order[i], order[i+1]
			if s.Times[b] == s.Times[a]+in.Dist(in.Txns[a].Node, in.Txns[b].Node) {
				preds[b] = append(preds[b], a)
			}
		}
	}
	order := make([]tm.TxnID, n)
	for i := range order {
		order[i] = tm.TxnID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := s.Times[order[a]], s.Times[order[b]]
		if ta != tb {
			return ta < tb
		}
		return order[a] < order[b]
	})
	bestLen := make([]int, n)
	bestPrev := make([]tm.TxnID, n)
	var tail tm.TxnID = -1
	tailLen := 0
	for i := range bestPrev {
		bestPrev[i] = -1
	}
	for _, id := range order {
		bestLen[id] = 1
		for _, p := range preds[id] {
			if bestLen[p]+1 > bestLen[id] {
				bestLen[id] = bestLen[p] + 1
				bestPrev[id] = p
			}
		}
		if bestLen[id] > tailLen || (bestLen[id] == tailLen && (tail == -1 || id < tail)) {
			tailLen, tail = bestLen[id], id
		}
	}
	if tail < 0 {
		return nil
	}
	chain := make([]int, 0, tailLen)
	for t := tail; t >= 0; t = bestPrev[t] {
		chain = append(chain, int(t))
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
