package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// benchRec builds a gate-ready record; trials of one experiment share a
// fingerprint (Fingerprint ignores nothing in the config, so the caller
// keeps it constant).
func benchRec(exp string, trial int, stageMS float64, simsteps int64) RunRecord {
	cfg := map[string]string{"suite": "test"}
	return RunRecord{
		Schema: LedgerSchemaVersion, Experiment: exp,
		Fingerprint: Fingerprint(exp, cfg), Config: cfg, Trial: trial,
		StageMS:  map[string]float64{"measure": stageMS},
		TotalMS:  stageMS + 5,
		SimSteps: simsteps, ObjectMoves: simsteps * 3, Executed: 10,
		Makespan: simsteps, LatencyP50: 3, LatencyP99: 9,
		Env: CaptureEnv(),
	}
}

func trials(exp string, stageMS float64, simsteps int64, n int) []RunRecord {
	out := make([]RunRecord, n)
	for i := range out {
		out[i] = benchRec(exp, i, stageMS, simsteps)
	}
	return out
}

// TestCompareGateSelfTest is the CI self-test of the regression gate:
// identical ledgers pass, an injected 2× stage-time slowdown fails, and
// both verdict directions are counted.
func TestCompareGateSelfTest(t *testing.T) {
	old := trials("E1", 10, 100, 3)

	t.Run("identical ledgers pass", func(t *testing.T) {
		rep := Compare(old, trials("E1", 10, 100, 3), Thresholds{})
		if !rep.Pass() || rep.Regressions != 0 || rep.Improvements != 0 {
			t.Fatalf("identical ledgers: %+v, want clean pass", rep)
		}
		if len(rep.Groups) != 1 {
			t.Fatalf("groups = %d, want 1", len(rep.Groups))
		}
	})

	t.Run("2x stage time regresses", func(t *testing.T) {
		rep := Compare(old, trials("E1", 20, 100, 3), Thresholds{})
		if rep.Pass() {
			t.Fatal("2x stage_ms slowdown passed the gate")
		}
		found := false
		for _, m := range rep.Groups[0].Metrics {
			if m.Metric == "stage_ms/measure" {
				found = true
				if m.Verdict != VerdictRegression {
					t.Errorf("stage_ms/measure verdict = %s, want regression", m.Verdict)
				}
				if m.Delta < 0.99 || m.Delta > 1.01 {
					t.Errorf("delta = %g, want ~1.0 (+100%%)", m.Delta)
				}
			}
		}
		if !found {
			t.Fatal("stage_ms/measure not judged")
		}
	})

	t.Run("2x speedup improves", func(t *testing.T) {
		rep := Compare(old, trials("E1", 5, 100, 3), Thresholds{})
		if !rep.Pass() {
			t.Fatal("a speedup must not fail the gate")
		}
		if rep.Improvements == 0 {
			t.Error("halved stage time not counted as an improvement")
		}
	})

	t.Run("count drift regresses exactly", func(t *testing.T) {
		rep := Compare(old, trials("E1", 10, 101, 3), Thresholds{})
		if rep.Pass() {
			t.Fatal("simsteps 100 -> 101 must regress: counters are deterministic")
		}
	})
}

// TestCompareTimeNoiseFloors pins the two guards that keep wall-time
// jitter out of the gate: the MAD noise floor and the absolute
// millisecond floor.
func TestCompareTimeNoiseFloors(t *testing.T) {
	t.Run("MAD floor absorbs noisy trials", func(t *testing.T) {
		// Old trials scatter widely (MAD 10); the new median is +40% but
		// well inside 3×MAD, so the delta is noise, not a regression.
		old := []RunRecord{benchRec("E1", 0, 10, 100), benchRec("E1", 1, 20, 100), benchRec("E1", 2, 30, 100)}
		new := []RunRecord{benchRec("E1", 0, 18, 100), benchRec("E1", 1, 28, 100), benchRec("E1", 2, 38, 100)}
		rep := Compare(old, new, Thresholds{})
		for _, m := range rep.Groups[0].Metrics {
			if m.Metric == "stage_ms/measure" && m.Verdict != VerdictOK {
				t.Errorf("noisy +40%% within 3xMAD judged %s, want ok", m.Verdict)
			}
		}
	})

	t.Run("sub-millisecond deltas never judged", func(t *testing.T) {
		rep := Compare(trials("E1", 0.02, 100, 3), trials("E1", 0.05, 100, 3), Thresholds{})
		if !rep.Pass() {
			t.Fatal("0.02ms -> 0.05ms (+150%) must stay under the 1ms absolute floor")
		}
	})
}

func TestCompareOneSidedAndEnv(t *testing.T) {
	old := trials("E1", 10, 100, 2)
	new := append(trials("E1", 10, 100, 2), trials("E2", 4, 50, 2)...)
	rep := Compare(old, new, Thresholds{})
	if !rep.Pass() {
		t.Fatal("a brand-new benchmark must not fail the gate")
	}
	if len(rep.OnlyNew) != 1 || !strings.Contains(rep.OnlyNew[0], "E2") {
		t.Errorf("OnlyNew = %v, want the E2 fingerprint", rep.OnlyNew)
	}
	if rep.EnvMismatch != "" {
		t.Errorf("same-env comparison reported mismatch %q", rep.EnvMismatch)
	}

	other := trials("E1", 10, 100, 2)
	for i := range other {
		other[i].Env.GOMAXPROCS += 7
	}
	rep = Compare(old, other, Thresholds{})
	if !strings.Contains(rep.EnvMismatch, "GOMAXPROCS") {
		t.Errorf("EnvMismatch = %q, want a GOMAXPROCS warning", rep.EnvMismatch)
	}
	if !rep.Pass() {
		t.Error("an environment mismatch is a warning, not a failure")
	}
}

// TestCompareLatencyPooling verifies the MergeHist consumer: when every
// record carries its latency distribution, the group's p50/p99 come from
// the pooled histogram, not a median of per-trial quantiles.
func TestCompareLatencyPooling(t *testing.T) {
	// Each trial observes 49 fast transactions and one 1000-step straggler;
	// pooled across two trials the p99 rank lands on the stragglers, which
	// a median of per-trial p99s would have kept but naive averaging
	// flattens.
	trialValues := append(make([]int64, 0, 50), 1000)
	for len(trialValues) < 50 {
		trialValues = append(trialValues, 2)
	}
	mk := func(n int) []RunRecord {
		cfg := map[string]string{"suite": "test"}
		out := make([]RunRecord, n)
		for i := range out {
			out[i] = RunRecord{
				Schema: LedgerSchemaVersion, Experiment: "E1",
				Fingerprint: Fingerprint("E1", cfg), Config: cfg, Trial: i,
				SimSteps: 100, Latency: SnapshotValues(trialValues),
				Env: CaptureEnv(),
			}
		}
		return out
	}
	rep := Compare(mk(2), mk(2), Thresholds{})
	if !rep.Pass() {
		t.Fatalf("identical pooled latency failed:\n%s", textOf(rep))
	}
	var p50, p99 float64
	for _, m := range rep.Groups[0].Metrics {
		switch m.Metric {
		case "latency_p50":
			p50 = m.New
		case "latency_p99":
			p99 = m.New
		}
	}
	if p50 != 2 {
		t.Errorf("pooled p50 = %g, want 2", p50)
	}
	if p99 < 1000 {
		t.Errorf("pooled p99 = %g, want the 1000-step tail to survive pooling", p99)
	}
}

func TestCompareReportRendering(t *testing.T) {
	rep := Compare(trials("E1", 10, 100, 3), trials("E1", 25, 101, 3), Thresholds{})
	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FAIL", "REGRESSED", "stage_ms/measure", "simsteps"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back CompareReport
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if back.Regressions != rep.Regressions {
		t.Errorf("round-tripped regressions = %d, want %d", back.Regressions, rep.Regressions)
	}
}

func textOf(rep *CompareReport) string {
	var b bytes.Buffer
	rep.WriteText(&b)
	return b.String()
}
