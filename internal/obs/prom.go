// Prometheus text exposition (format 0.0.4) for the metrics registry:
// one `# TYPE` line per metric family, counter/gauge samples as-is,
// histograms expanded into cumulative `le=`-labeled `_bucket` series
// plus `_sum` and `_count`. The output is deterministic — families
// sorted by name, series sorted by label set, buckets by bound — so the
// same registry state always renders byte-identical text
// (TestPromGolden pins it), and any standard Prometheus scraper can
// consume `/metrics?format=prom`.
package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promSeries is one sample split into family name and rendered labels.
type promSeries struct {
	labels string // prometheus-rendered label list without braces ("" when bare)
	sample Sample
}

// promFamily groups the series of one metric name.
type promFamily struct {
	name   string
	kind   string
	series []promSeries
}

// splitKey parses a registry key "name{k1=v1,k2=v2}" into the family
// name and the prometheus-rendered label list.
func splitKey(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	name = key[:i]
	inner := strings.TrimSuffix(key[i+1:], "}")
	var sb strings.Builder
	for n, pair := range strings.Split(inner, ",") {
		k, v, _ := strings.Cut(pair, "=")
		if n > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteByte('"')
	}
	return name, sb.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// families groups a snapshot into sorted metric families with sorted
// series. Mixed kinds under one name keep the first kind and drop the
// rest (the registry cannot produce this; defensive only).
func families(samples []Sample) []promFamily {
	byName := map[string]*promFamily{}
	var order []string
	for _, s := range samples {
		name, labels := splitKey(s.Name)
		f := byName[name]
		if f == nil {
			f = &promFamily{name: name, kind: s.Kind}
			byName[name] = f
			order = append(order, name)
		}
		if f.kind != s.Kind {
			continue
		}
		f.series = append(f.series, promSeries{labels: labels, sample: s})
	}
	sort.Strings(order)
	out := make([]promFamily, 0, len(order))
	for _, name := range order {
		f := byName[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		out = append(out, *f)
	}
	return out
}

// WriteProm renders a snapshot as Prometheus text exposition.
func WriteProm(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	for _, f := range families(samples) {
		kind := f.kind
		if kind == "" {
			kind = "untyped"
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(kind)
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case "histogram":
				writeHistSeries(bw, f.name, s)
			default:
				writeLine(bw, f.name, s.labels, s.sample.Value)
			}
		}
	}
	return bw.Flush()
}

// writeLine emits `name{labels} value`.
func writeLine(bw *bufio.Writer, name, labels string, v int64) {
	bw.WriteString(name)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

// writeHistSeries expands one histogram sample: cumulative buckets with
// `le` labels (the overflow bucket and the terminal line map to +Inf),
// then _sum and _count.
func writeHistSeries(bw *bufio.Writer, name string, s promSeries) {
	var cum int64
	infDone := false
	for _, b := range s.sample.Buckets {
		cum += b.N
		le := "+Inf"
		if b.LE >= 0 {
			le = strconv.FormatInt(b.LE, 10)
		} else {
			infDone = true
		}
		writeBucket(bw, name, s.labels, le, cum)
	}
	if !infDone {
		writeBucket(bw, name, s.labels, "+Inf", s.sample.Count)
	}
	writeLine(bw, name+"_sum", s.labels, s.sample.Sum)
	writeLine(bw, name+"_count", s.labels, s.sample.Count)
}

func writeBucket(bw *bufio.Writer, name, labels, le string, cum int64) {
	bw.WriteString(name)
	bw.WriteString(`_bucket{`)
	if labels != "" {
		bw.WriteString(labels)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString("\"} ")
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// WriteProm renders the registry's current state as Prometheus text
// exposition. Nil registries render nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	return WriteProm(w, r.Snapshot())
}

// PromContentType is the Content-Type of Prometheus text format 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves the collector's metrics over HTTP: the JSON
// snapshot by default (`?format=json` explicit), Prometheus text
// exposition for `?format=prom`, and 400 for anything else — an unknown
// format is a caller bug, not a reason to silently serve JSON.
func (c *Collector) MetricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			if err := c.WriteMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "prom":
			w.Header().Set("Content-Type", PromContentType)
			if err := c.Registry().WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format "+strconv.Quote(format)+" (want json or prom)", http.StatusBadRequest)
		}
	}
}
