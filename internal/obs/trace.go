// Structured run traces: every recorded run keeps its pipeline stage
// records and its object-move / transaction-execute spans, exportable as
// JSONL (one self-describing record per line) and as Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing.
//
// Exports are deterministic by construction: runs are ordered by (job,
// name), spans are sorted by stable keys, and wall-clock durations are
// omitted unless Config.WallClock opts in — so the same seed and job list
// produce byte-identical trace files at every worker count.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// stageRec is one pipeline stage completion within a run.
type stageRec struct {
	Stage  string
	WallUS int64
	Err    string
}

// runTrace is the full recorded trace of one engine job.
type runTrace struct {
	Job       int
	Name      string
	Algorithm string
	Makespan  int64
	Stages    []stageRec
	Metrics   *ScheduleMetrics
	Moves     []Move
	Execs     []Exec
}

// sortedRuns returns the recorded runs in deterministic (job, name) order.
func (c *Collector) sortedRuns() []*runTrace {
	c.mu.Lock()
	runs := make([]*runTrace, len(c.runs))
	copy(runs, c.runs)
	c.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Job != runs[j].Job {
			return runs[i].Job < runs[j].Job
		}
		return runs[i].Name < runs[j].Name
	})
	return runs
}

// JSONL record schemas. Field order is fixed by the struct declarations,
// so encoding/json output is stable.
type jsonlRun struct {
	Ev        string `json:"ev"` // "run"
	Job       int    `json:"job"`
	Name      string `json:"name"`
	Algorithm string `json:"algorithm"`
	Makespan  int64  `json:"makespan"`
}

type jsonlStage struct {
	Ev     string `json:"ev"` // "stage"
	Job    int    `json:"job"`
	Name   string `json:"name"`
	Stage  string `json:"stage"`
	WallUS int64  `json:"wall_us,omitempty"`
	Err    string `json:"err,omitempty"`
}

type jsonlMove struct {
	Ev     string `json:"ev"` // "move"
	Job    int    `json:"job"`
	Object int    `json:"object"`
	Txn    int    `json:"txn"`
	From   int    `json:"from"`
	To     int    `json:"to"`
	Depart int64  `json:"depart"`
	Arrive int64  `json:"arrive"`
	Used   int64  `json:"used"`
}

type jsonlExec struct {
	Ev   string `json:"ev"` // "exec"
	Job  int    `json:"job"`
	Txn  int    `json:"txn"`
	Node int    `json:"node"`
	Step int64  `json:"step"`
}

type jsonlMetrics struct {
	Ev      string           `json:"ev"` // "metrics"
	Job     int              `json:"job"`
	Metrics *ScheduleMetrics `json:"metrics"`
}

// WriteJSONL writes every recorded run as JSON Lines: a "run" header, its
// "stage" records, "move" and "exec" spans, and a closing "metrics" record
// carrying the derived schedule metrics.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range c.sortedRuns() {
		if err := enc.Encode(jsonlRun{Ev: "run", Job: r.Job, Name: r.Name, Algorithm: r.Algorithm, Makespan: r.Makespan}); err != nil {
			return err
		}
		for _, st := range r.Stages {
			rec := jsonlStage{Ev: "stage", Job: r.Job, Name: r.Name, Stage: st.Stage, Err: st.Err}
			if c.cfg.WallClock {
				rec.WallUS = st.WallUS
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		for _, mv := range r.Moves {
			if err := enc.Encode(jsonlMove{Ev: "move", Job: r.Job, Object: mv.Object, Txn: mv.Txn,
				From: mv.From, To: mv.To, Depart: mv.Depart, Arrive: mv.Arrive, Used: mv.Used}); err != nil {
				return err
			}
		}
		for _, ex := range r.Execs {
			if err := enc.Encode(jsonlExec{Ev: "exec", Job: r.Job, Txn: ex.Txn, Node: ex.Node, Step: ex.Step}); err != nil {
				return err
			}
		}
		if r.Metrics != nil {
			if err := enc.Encode(jsonlMetrics{Ev: "metrics", Job: r.Job, Metrics: r.Metrics}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event record. One simulated step maps to
// one microsecond of trace time; pipeline stage spans (WallClock mode) use
// real microseconds on their own "pipeline" track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Thread-ID layout within a job's process: tid 0 is the pipeline track,
// 1+node are node tracks, objTidBase+object are object tracks.
const objTidBase = 1 << 20

// WriteChromeTrace writes all recorded runs as one Chrome trace-event file
// (the {"traceEvents": [...]} JSON object form, which Perfetto and
// chrome://tracing both accept). Each job is a process; each node and each
// object is a thread within it. Object move spans and queue-wait spans
// live on the object tracks, execute spans on the node tracks.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	var evs []chromeEvent
	for _, r := range c.sortedRuns() {
		pid := r.Job
		evs = append(evs, chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("job %d: %s [%s]", r.Job, r.Name, r.Algorithm)}})
		if c.cfg.WallClock && len(r.Stages) > 0 {
			evs = append(evs, chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": "pipeline (wall µs)"}})
			var ts int64
			for _, st := range r.Stages {
				evs = append(evs, chromeEvent{Name: st.Stage, Cat: "stage", Ph: "X", Ts: ts, Dur: st.WallUS, Pid: pid, Tid: 0})
				ts += st.WallUS
			}
		}
		nodeNamed := map[int64]bool{}
		nameNode := func(node int) int64 {
			tid := int64(1 + node)
			if !nodeNamed[tid] {
				nodeNamed[tid] = true
				evs = append(evs, chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("node %d", node)}})
			}
			return tid
		}
		objNamed := map[int64]bool{}
		nameObj := func(o int) int64 {
			tid := int64(objTidBase + o)
			if !objNamed[tid] {
				objNamed[tid] = true
				evs = append(evs, chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("object %d", o)}})
			}
			return tid
		}
		for _, mv := range r.Moves {
			tid := nameObj(mv.Object)
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("o%d %d→%d", mv.Object, mv.From, mv.To), Cat: "move", Ph: "X",
				Ts: mv.Depart, Dur: mv.Arrive - mv.Depart, Pid: pid, Tid: tid,
				Args: map[string]any{"txn": mv.Txn},
			})
			if mv.Used > mv.Arrive {
				evs = append(evs, chromeEvent{
					Name: fmt.Sprintf("o%d wait", mv.Object), Cat: "wait", Ph: "X",
					Ts: mv.Arrive, Dur: mv.Used - mv.Arrive, Pid: pid, Tid: tid,
					Args: map[string]any{"txn": mv.Txn},
				})
			}
		}
		for _, ex := range r.Execs {
			tid := nameNode(ex.Node)
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("T%d", ex.Txn), Cat: "txn", Ph: "X",
				Ts: ex.Step, Dur: 1, Pid: pid, Tid: tid,
			})
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// metricsFile is the schema of WriteMetrics output.
type metricsFile struct {
	// Metrics is the registry snapshot (counters, gauges, histograms).
	Metrics []Sample `json:"metrics"`
	// Runs holds the derived schedule metrics of every retained trace.
	Runs []runMetrics `json:"runs,omitempty"`
}

type runMetrics struct {
	Job       int              `json:"job"`
	Name      string           `json:"name"`
	Algorithm string           `json:"algorithm"`
	Schedule  *ScheduleMetrics `json:"schedule"`
}

// WriteMetrics writes the full metrics snapshot: the registry (txn-latency
// and object-travel histograms, stage counters, engine counters) plus the
// per-run derived schedule metrics (queue-depth and link-utilization
// series, critical path) for every retained trace.
func (c *Collector) WriteMetrics(w io.Writer) error {
	if c == nil {
		return nil
	}
	out := metricsFile{Metrics: c.reg.Snapshot()}
	for _, r := range c.sortedRuns() {
		if r.Metrics != nil {
			out.Runs = append(out.Runs, runMetrics{Job: r.Job, Name: r.Name, Algorithm: r.Algorithm, Schedule: r.Metrics})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
