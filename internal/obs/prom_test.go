package obs_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dtmsched/internal/obs"
)

// promRegistry builds a synthetic registry covering every exposition
// shape: bare and labeled counters, a gauge, and histograms with and
// without labels, with and without overflow observations. Synthetic
// because wall-time counters from a real run are nondeterministic, and
// the golden test pins exact bytes.
func promRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("jobs_total").Add(5)
	r.Counter("engine_stage_wall_us", "stage", "schedule").Add(1200)
	r.Counter("engine_stage_wall_us", "stage", "verify").Add(340)
	r.Gauge("queue_depth").Set(3)
	h := r.Histogram("txn_latency_steps", nil)
	for _, v := range []int64{1, 2, 3, 5, 9, 100, 200000} {
		h.Observe(v) // 200000 overflows the default 65536 ladder
	}
	hg := r.Histogram("move_dist", nil, "topo", "grid")
	for _, v := range []int64{1, 4, 4, 7} {
		hg.Observe(v)
	}
	return r
}

// TestPromGolden pins the Prometheus exposition byte-for-byte.
// Regenerate with `go test ./internal/obs -run TestPromGolden -update`.
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prom exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestPromDeterministic renders the same logical state twice — once from
// one registry scraped twice, once from an independently built registry —
// and requires byte-identical output each time.
func TestPromDeterministic(t *testing.T) {
	r := promRegistry()
	var a, b, c bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two scrapes of one registry differ")
	}
	if err := promRegistry().WriteProm(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("independently built registries render differently")
	}
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)

// TestPromParseable validates the exposition against the text-format
// contract a Prometheus scraper relies on: every sample line parses,
// every family has exactly one # TYPE line before its samples, histogram
// buckets are cumulative and monotone, and the terminal +Inf bucket
// equals _count.
func TestPromParseable(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	lastBucket := map[string]int64{} // family|labels-minus-le → last cumulative value
	infValue := map[string]int64{}
	countValue := map[string]int64{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if typed[parts[2]] {
				t.Errorf("duplicate # TYPE for %s", parts[2])
			}
			typed[parts[2]] = true
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("sample line does not parse: %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("value of %q: %v", line, err)
		}
		name, labels := line[:sp], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name, labels = name[:i], strings.TrimSuffix(line[i+1:sp], "}")
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam := strings.TrimSuffix(name, "_bucket")
			var rest []string
			le := ""
			for _, p := range strings.Split(labels, ",") {
				if strings.HasPrefix(p, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
				} else {
					rest = append(rest, p)
				}
			}
			if le == "" {
				t.Errorf("bucket line without le label: %q", line)
			}
			key := fam + "|" + strings.Join(rest, ",")
			if v < lastBucket[key] {
				t.Errorf("bucket series %q not cumulative: %d after %d", key, v, lastBucket[key])
			}
			lastBucket[key] = v
			if le == "+Inf" {
				infValue[key] = v
			}
		case strings.HasSuffix(name, "_count"):
			countValue[strings.TrimSuffix(name, "_count")+"|"+labels] = v
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			fam = strings.TrimSuffix(fam, suffix)
		}
		if !typed[fam] {
			t.Errorf("sample %q precedes its # TYPE line", line)
		}
	}
	if len(infValue) != 2 {
		t.Fatalf("found %d +Inf bucket series, want 2 (both histograms)", len(infValue))
	}
	for key, inf := range infValue {
		count, ok := countValue[key]
		if !ok {
			t.Errorf("histogram series %q has buckets but no _count", key)
			continue
		}
		if inf != count {
			t.Errorf("series %q: +Inf bucket %d != _count %d", key, inf, count)
		}
	}
}

// TestRegistryUpdateZeroAllocDuringScrape guards the hot path: registry
// updates must stay allocation-free while a scrape holds a snapshot of
// the same registry mid-flight. The render itself happens outside the
// measured window because AllocsPerRun counts process-wide allocations.
func TestRegistryUpdateZeroAllocDuringScrape(t *testing.T) {
	r := promRegistry()
	c := r.Counter("jobs_total")
	g := r.Gauge("queue_depth")
	h := r.Histogram("txn_latency_steps", nil)

	snap := r.Snapshot() // scrape begins: snapshot taken, not yet rendered
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(9)
		h.Observe(17)
	})
	if err := obs.WriteProm(io.Discard, snap); err != nil { // scrape completes
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("registry updates allocate %.1f allocs/op during a scrape, want 0", allocs)
	}
}

// TestMetricsHandlerFormats pins the /metrics contract: JSON by default
// with the right Content-Type, Prometheus text for ?format=prom, and a
// 400 — not silent JSON — for unknown formats.
func TestMetricsHandlerFormats(t *testing.T) {
	col := obs.NewMetricsCollector()
	col.Registry().Counter("jobs_total").Inc()
	handler := col.MetricsHandler()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	rec := get("/metrics")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("default: code %d type %q, want 200 application/json", rec.Code, rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "jobs_total") {
		t.Error("JSON body missing the counter")
	}
	if got := get("/metrics?format=json"); got.Code != http.StatusOK {
		t.Errorf("format=json: code %d, want 200", got.Code)
	}

	rec = get("/metrics?format=prom")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != obs.PromContentType {
		t.Errorf("prom: code %d type %q, want 200 %q", rec.Code, rec.Header().Get("Content-Type"), obs.PromContentType)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE jobs_total counter") {
		t.Errorf("prom body missing the TYPE line:\n%s", rec.Body.String())
	}

	rec = get("/metrics?format=xml")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown format: code %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "xml") {
		t.Error("400 body should name the rejected format")
	}
}
