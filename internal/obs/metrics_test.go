package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("jobs") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.Max(3)
	if got := g.Value(); got != 5 {
		t.Errorf("Max(3) lowered the gauge to %d", got)
	}
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Errorf("Max(9) = %d, want 9", got)
	}
}

func TestLabelsNormalize(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("stage_us", "stage", "verify", "alg", "greedy")
	b := r.Counter("stage_us", "alg", "greedy", "stage", "verify")
	if a != b {
		t.Error("label order should not distinguish metrics")
	}
	a.Inc()
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples, want 1", len(snap))
	}
	if want := "stage_us{alg=greedy,stage=verify}"; snap[0].Name != want {
		t.Errorf("key = %q, want %q", snap[0].Name, want)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{1, 10, 100})
	for _, v := range []int64{1, 2, 3, 50, 99, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1155 {
		t.Errorf("count=%d sum=%d, want 6/1155", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %d, want 10 (bucket upper bound)", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want observed max 1000", q)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 {
		t.Error("nil histogram should read as zero")
	}
}

func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Gauge("a").Set(1)
	r.Histogram("m", nil).Observe(3)
	s1, _ := json.Marshal(r.Snapshot())
	s2, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(s1, s2) {
		t.Error("snapshots of an unchanged registry differ")
	}
	snap := r.Snapshot()
	if snap[0].Name != "a" || snap[1].Name != "m" || snap[2].Name != "z" {
		t.Errorf("snapshot not name-sorted: %v", []string{snap[0].Name, snap[1].Name, snap[2].Name})
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	r.Publish("nil-registry") // must not panic
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits", "worker", "shared").Inc()
				r.Histogram("lat", nil).Observe(int64(i % 64))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits", "worker", "shared").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("published").Add(42)
	r.Publish("obs-test-registry")
	r.Publish("obs-test-registry") // second publish is a no-op, not a panic
	v := expvar.Get("obs-test-registry")
	if v == nil {
		t.Fatal("registry not published to expvar")
	}
	var snap []Sample
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not a snapshot: %v", err)
	}
	if len(snap) != 1 || snap[0].Value != 42 {
		t.Errorf("expvar snapshot = %+v, want the published counter", snap)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []int64{5, 1, 4, 2, 3}
	q := Quantiles(xs, 0.5, 0.99, 1.0)
	if q[0] != 3 {
		t.Errorf("p50 = %d, want 3", q[0])
	}
	if q[1] != 5 || q[2] != 5 {
		t.Errorf("p99/p100 = %d/%d, want 5/5", q[1], q[2])
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty input p50 = %d, want 0", got[0])
	}
}

// TestHistogramQuantileEdges pins the bucket-quantile semantics the
// ledger and comparator rely on: quantiles return the upper bound of the
// bucket containing the rank, single observations land on their bucket's
// bound, overflow ranks return the observed maximum, and q=1.0 is the
// max for all-overflow histograms.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()

	t.Run("single observation", func(t *testing.T) {
		h := r.Histogram("single", nil)
		h.Observe(5)
		for _, q := range []float64{0, 0.5, 1.0} {
			if got := h.Quantile(q); got != 8 {
				t.Errorf("Quantile(%g) = %d, want 8 (the 4<v<=8 bucket bound)", q, got)
			}
		}
	})

	t.Run("bucket boundaries", func(t *testing.T) {
		h := r.Histogram("bounds", []int64{10, 20})
		for _, v := range []int64{10, 10, 20, 20} {
			h.Observe(v)
		}
		// Ranks 1–2 sit in the le=10 bucket, ranks 3–4 in le=20.
		if got := h.Quantile(0.5); got != 10 {
			t.Errorf("Quantile(0.5) = %d, want 10 (rank 2 is the last le=10 observation)", got)
		}
		if got := h.Quantile(0.75); got != 20 {
			t.Errorf("Quantile(0.75) = %d, want 20 (rank 3 crosses the boundary)", got)
		}
		if got := h.Quantile(1.0); got != 20 {
			t.Errorf("Quantile(1.0) = %d, want 20", got)
		}
	})

	t.Run("all overflow", func(t *testing.T) {
		h := r.Histogram("overflow", []int64{10})
		h.Observe(500)
		h.Observe(900)
		for _, tc := range []struct {
			q    float64
			want int64
		}{{0.5, 900}, {1.0, 900}} {
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%g) = %d, want observed max %d", tc.q, got, tc.want)
			}
		}
	})

	t.Run("q=1.0 returns observed max from overflow", func(t *testing.T) {
		h := r.Histogram("mixed", []int64{10})
		h.Observe(3)
		h.Observe(70000)
		if got := h.Quantile(1.0); got != 70000 {
			t.Errorf("Quantile(1.0) = %d, want the observed max 70000", got)
		}
	})

	t.Run("empty", func(t *testing.T) {
		h := r.Histogram("empty", nil)
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("empty histogram Quantile = %d, want 0", got)
		}
	})
}
