package obs

import (
	"testing"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// lineInstance builds a 6-node line with one object passed down the line:
// home at node 0, requested by transactions at nodes 1, 3, 5.
func lineInstance() (*tm.Instance, *schedule.Schedule) {
	topo := topology.NewLine(6)
	txns := []tm.Txn{
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 3, Objects: []tm.ObjectID{0}},
		{Node: 5, Objects: []tm.ObjectID{0}},
	}
	in := tm.NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1, txns, []graph.NodeID{0})
	// Tight: T0 at 1 (d=1 from home), T1 at 3 (d=2), T2 at 6 with one
	// step of queueing (arrives at 5, used at 6).
	s := &schedule.Schedule{Times: []int64{1, 3, 6}}
	return in, s
}

func TestDeriveLine(t *testing.T) {
	in, s := lineInstance()
	m, moves, execs := Derive(in, s)
	if m.Makespan != 6 {
		t.Errorf("makespan = %d, want 6", m.Makespan)
	}
	if m.TotalTravel != 5 || m.ObjectTravel[0] != 5 {
		t.Errorf("travel = %d (per-object %v), want 5", m.TotalTravel, m.ObjectTravel)
	}
	if len(moves) != 3 {
		t.Fatalf("moves = %d, want 3", len(moves))
	}
	// Third hop: departs node 3 at step 3, arrives node 5 at step 5,
	// used at step 6 → one step queued.
	last := moves[2]
	if last.From != 3 || last.To != 5 || last.Depart != 3 || last.Arrive != 5 || last.Used != 6 {
		t.Errorf("last move = %+v", last)
	}
	if len(execs) != 3 || execs[0].Step != 1 || execs[2].Step != 6 {
		t.Errorf("execs = %+v", execs)
	}
	// Latency percentiles over commit steps {1,3,6}.
	if m.TxnLatencyP50 != 3 || m.TxnLatencyMax != 6 {
		t.Errorf("latency p50=%d max=%d, want 3/6", m.TxnLatencyP50, m.TxnLatencyMax)
	}
	// The object is queued at node 5 during step 5 only.
	if m.QueueDepth.Stride != 1 {
		t.Fatalf("stride = %d, want 1", m.QueueDepth.Stride)
	}
	wantQueue := []int64{0, 0, 0, 0, 0, 1, 0}
	for i, v := range m.QueueDepth.Values {
		if v != wantQueue[i] {
			t.Errorf("queue[%d] = %d, want %d", i, v, wantQueue[i])
		}
	}
	// In transit during steps 1, 2-3 (second hop d=2 departs at 1... no:
	// hop1 step 1; hop2 steps 2,3; hop3 steps 4,5): transit profile.
	wantTransit := []int64{0, 1, 1, 1, 1, 1, 0}
	for i, v := range m.LinkUtilization.Values {
		if v != wantTransit[i] {
			t.Errorf("transit[%d] = %d, want %d", i, v, wantTransit[i])
		}
	}
	if len(m.PeakQueueDepth) != 1 || m.PeakQueueDepth[0].Node != 5 || m.PeakQueueDepth[0].Peak != 1 {
		t.Errorf("peak queue = %+v, want node 5 peak 1", m.PeakQueueDepth)
	}
	// All three handoffs are tight except the last (arrives 5, used 6):
	// critical path is T0 → T1.
	if len(m.CriticalPath) != 2 || m.CriticalPath[0] != 0 || m.CriticalPath[1] != 1 {
		t.Errorf("critical path = %v, want [0 1]", m.CriticalPath)
	}
}

// TestDeriveMatchesSimulator: the derived spans and travel must agree with
// what the simulator measures and emits for a nontrivial random instance.
func TestDeriveMatchesSimulator(t *testing.T) {
	topo := topology.NewSquareGrid(6)
	in := tm.UniformK(12, 2).Generate(xrand.NewDerived(7, "derive-test"), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (baselineList{}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	s := res
	simRes := sim.MustRun(in, s, sim.Options{Trace: true})

	m, moves, execs := Derive(in, s)
	if m.TotalTravel != simRes.CommCost {
		t.Errorf("derived travel %d != simulator comm cost %d", m.TotalTravel, simRes.CommCost)
	}
	for o, d := range m.ObjectTravel {
		if d != simRes.ObjectDistance[o] {
			t.Errorf("object %d travel %d != simulator %d", o, d, simRes.ObjectDistance[o])
		}
	}
	if int64(len(moves)) != simRes.Moves {
		t.Errorf("derived %d moves != simulator %d", len(moves), simRes.Moves)
	}
	if len(execs) != simRes.Executed {
		t.Errorf("derived %d execs != simulator %d", len(execs), simRes.Executed)
	}
	// Span streams built from the simulator's events must equal the
	// synthesized ones exactly.
	evMoves, evExecs := spansFromEvents(in, s, simRes.Events)
	if len(evMoves) != len(moves) {
		t.Fatalf("event moves %d != derived %d", len(evMoves), len(moves))
	}
	for i := range moves {
		if moves[i] != evMoves[i] {
			t.Errorf("move %d differs: derived %+v, events %+v", i, moves[i], evMoves[i])
		}
	}
	for i := range execs {
		if execs[i] != evExecs[i] {
			t.Errorf("exec %d differs: derived %+v, events %+v", i, execs[i], evExecs[i])
		}
	}
}

// baselineList is a tiny local greedy serializer so the obs package tests
// do not import internal/baseline (keeping the dependency graph flat): it
// schedules transactions in ID order, each as early as feasible.
type baselineList struct{}

func (baselineList) Schedule(in *tm.Instance) (*schedule.Schedule, error) {
	s := schedule.New(in.NumTxns())
	objAt := make([]graph.NodeID, in.NumObjects)
	objFree := make([]int64, in.NumObjects)
	for o := range objAt {
		objAt[o] = in.Home[o]
	}
	for i := range in.Txns {
		txn := &in.Txns[i]
		t := int64(1)
		for _, o := range txn.Objects {
			if arr := objFree[o] + in.Dist(objAt[o], txn.Node); arr > t {
				t = arr
			}
		}
		s.Times[i] = t
		for _, o := range txn.Objects {
			objAt[o], objFree[o] = txn.Node, t
		}
	}
	return s, nil
}

func TestDownsample(t *testing.T) {
	long := make([]int64, 4*maxSeriesPoints)
	for i := range long {
		long[i] = int64(i)
	}
	s := downsample(long)
	if s.Stride != 4 {
		t.Errorf("stride = %d, want 4", s.Stride)
	}
	if len(s.Values) != maxSeriesPoints {
		t.Errorf("len = %d, want %d", len(s.Values), maxSeriesPoints)
	}
	if s.Values[0] != 3 || s.Values[len(s.Values)-1] != int64(len(long)-1) {
		t.Errorf("window maxima wrong: first=%d last=%d", s.Values[0], s.Values[len(s.Values)-1])
	}
	short := downsample([]int64{1, 2})
	if short.Stride != 1 || len(short.Values) != 2 {
		t.Errorf("short series should pass through, got %+v", short)
	}
}
