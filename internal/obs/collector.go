package obs

import (
	"sort"
	"sync"
	"time"

	"dtmsched/internal/faults"
	"dtmsched/internal/lower"
	"dtmsched/internal/schedule"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
)

// Config tunes a Collector.
type Config struct {
	// Traces retains full per-run traces (move/exec spans and derived
	// schedule metrics) for JSONL / Chrome export. Off, the collector is
	// metrics-only: the registry still aggregates latency, travel, and
	// stage counters, but memory stays O(metrics) for arbitrarily large
	// sweeps.
	Traces bool
	// WallClock includes wall-clock stage durations in trace exports.
	// Off by default because wall times are the only non-deterministic
	// field a trace could carry; leaving them out makes trace files
	// byte-identical across runs and worker counts.
	WallClock bool
	// MaxTraceRuns caps the number of retained run traces (0 = no cap).
	// Runs beyond the cap still feed the registry. The retained set is
	// the lowest (job, name) keys, so it is deterministic under
	// concurrent recording.
	MaxTraceRuns int
}

// Collector aggregates observability for a set of engine runs: a metrics
// Registry fed by every stage completion and finished run, and (when
// Config.Traces is set) structured per-run traces. All methods are safe
// for concurrent use by RunBatch workers, and all methods are no-ops on a
// nil receiver — the engine calls them unconditionally, and the nil path
// costs zero allocations (enforced by TestNilCollectorZeroAllocs).
type Collector struct {
	cfg Config
	reg *Registry

	mu    sync.Mutex
	runs  []*runTrace
	index map[runKey]*runTrace
}

// runKey identifies a run trace: the job index within its batch plus the
// job name (names disambiguate jobs from different batches sharing an
// index).
type runKey struct {
	job  int
	name string
}

// NewCollector returns a collector with trace retention enabled — the
// configuration behind dtmbench -trace and dtmsched trace.
func NewCollector() *Collector { return NewCollectorConfig(Config{Traces: true}) }

// NewMetricsCollector returns a metrics-only collector (no trace
// retention), suitable for full-size sweeps.
func NewMetricsCollector() *Collector { return NewCollectorConfig(Config{}) }

// NewCollectorConfig returns a collector with explicit configuration.
func NewCollectorConfig(cfg Config) *Collector {
	return &Collector{cfg: cfg, reg: NewRegistry()}
}

// Registry exposes the collector's metric registry (nil-safe).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Tracing reports whether the collector retains run traces. The engine
// uses it to decide whether the simulator should record its event stream.
func (c *Collector) Tracing() bool { return c != nil && c.cfg.Traces }

// Stage records one pipeline stage completion: per-stage wall time and
// completion/error counters in the registry, plus a stage record on the
// job's trace when tracing. The stage string is the engine's Stage name
// ("generate", "schedule", "verify", "measure", "done").
func (c *Collector) Stage(job int, name, stage string, wall time.Duration, err error) {
	if c == nil {
		return
	}
	c.reg.Counter("engine_stage_wall_us", "stage", stage).Add(wall.Microseconds())
	c.reg.Counter("engine_stage_total", "stage", stage).Inc()
	if err != nil {
		c.reg.Counter("engine_stage_errors_total", "stage", stage).Inc()
	}
	if !c.cfg.Traces {
		return
	}
	r := c.run(job, name)
	rec := stageRec{Stage: stage, WallUS: wall.Microseconds()}
	if err != nil {
		rec.Err = err.Error()
	}
	c.mu.Lock()
	r.Stages = append(r.Stages, rec)
	c.mu.Unlock()
}

// DepGraphBuild records conflict-graph build instrumentation from a
// scheduler's stats map (the depgraph_* keys written by core schedulers):
// build count, wall time, and edge totals as counters, plus per-run
// distributions of edges, Γ, and h_max. A stats map without
// depgraph_build_ns (baselines, precomputed schedules) is a no-op, as is
// a nil collector.
func (c *Collector) DepGraphBuild(stats map[string]int64) {
	if c == nil {
		return
	}
	ns, ok := stats["depgraph_build_ns"]
	if !ok {
		return
	}
	c.reg.Counter("depgraph_build_ns_total").Add(ns)
	c.reg.Counter("depgraph_builds_total").Add(stats["depgraph_builds"])
	c.reg.Counter("depgraph_edges_total").Add(stats["depgraph_edges"])
	c.reg.Histogram("depgraph_build_us", nil).Observe(ns / 1000)
	c.reg.Histogram("depgraph_edges", nil).Observe(stats["depgraph_edges"])
	if gamma, ok := stats["gamma"]; ok {
		c.reg.Histogram("depgraph_gamma", nil).Observe(gamma)
	}
	if hmax, ok := stats["hmax"]; ok {
		c.reg.Histogram("depgraph_hmax", nil).Observe(hmax)
	}
}

// Hier records one hierarchical-scheduler run from its stats map (the
// hier_* keys written by internal/hier): phase wall times and local/cross
// transaction totals as counters, plus per-run distributions of shard
// count, largest shard, and the cross-tier conflict fraction (in integer
// percent of transactions classified cross). A stats map without
// hier_shards is a no-op, as is a nil collector.
func (c *Collector) Hier(stats map[string]int64) {
	if c == nil {
		return
	}
	shards, ok := stats["hier_shards"]
	if !ok {
		return
	}
	local, cross := stats["hier_local_txns"], stats["hier_cross_txns"]
	c.reg.Counter("hier_runs_total").Inc()
	c.reg.Counter("hier_local_txns_total").Add(local)
	c.reg.Counter("hier_cross_txns_total").Add(cross)
	c.reg.Counter("hier_shard_wall_ns_total").Add(stats["hier_shard_wall_ns"])
	c.reg.Counter("hier_merge_wall_ns_total").Add(stats["hier_merge_wall_ns"])
	c.reg.Histogram("hier_shards", nil).Observe(shards)
	c.reg.Histogram("hier_max_shard_txns", nil).Observe(stats["hier_max_shard_txns"])
	c.reg.Histogram("hier_shard_wall_us", nil).Observe(stats["hier_shard_wall_ns"] / 1000)
	c.reg.Histogram("hier_merge_wall_us", nil).Observe(stats["hier_merge_wall_ns"] / 1000)
	if total := local + cross; total > 0 {
		c.reg.Histogram("hier_cross_fraction_pct", nil).Observe(100 * cross / total)
	}
}

// LowerBound records one Measure-stage certified-bound query: cache hits
// versus fresh computations as counters, plus compute wall time and the
// bound's exact-vs-MST per-object split as histograms (computations
// only — a hit re-observes nothing, so distributions count each distinct
// bound once per computation). Nil collector and nil bound are no-ops,
// both allocation-free.
func (c *Collector) LowerBound(hit bool, wall time.Duration, b *lower.Bound) {
	if c == nil || b == nil {
		return
	}
	if hit {
		c.reg.Counter("lower_cache_hits_total").Inc()
		return
	}
	c.reg.Counter("lower_computations_total").Inc()
	c.reg.Counter("lower_compute_ns_total").Add(wall.Nanoseconds())
	c.reg.Counter("lower_exact_objects_total").Add(int64(b.ExactObjects))
	c.reg.Counter("lower_bounded_objects_total").Add(int64(b.BoundedObjects))
	c.reg.Histogram("lower_compute_us", nil).Observe(wall.Microseconds())
	c.reg.Histogram("lower_exact_objects", nil).Observe(int64(b.ExactObjects))
	c.reg.Histogram("lower_mst_objects", nil).Observe(int64(b.BoundedObjects))
}

// Fault records one faulty run's recovery summary (sim.RunFaulty's
// report): per-kind recovery counters plus a makespan-inflation histogram
// in integer percent (100 = no loss). Nil collector and nil report are
// no-ops, both allocation-free.
func (c *Collector) Fault(fr *faults.Report) {
	if c == nil || fr == nil {
		return
	}
	c.reg.Counter("fault_runs_total").Inc()
	c.reg.Counter("fault_retries_total").Add(fr.Retries)
	c.reg.Counter("fault_reroutes_total").Add(fr.Reroutes)
	c.reg.Counter("fault_blocked_waits_total").Add(fr.BlockedWaits)
	c.reg.Counter("fault_deferred_moves_total").Add(fr.DeferredMoves)
	c.reg.Counter("fault_deferred_commits_total").Add(fr.DeferredCommits)
	c.reg.Counter("fault_wasted_comm_total").Add(fr.WastedComm)
	c.reg.Histogram("fault_inflation_pct", nil).Observe(int64(fr.Inflation*100 + 0.5))
}

// StreamAdmit records one admission round of the streaming scheduler:
// how many transactions were admitted into / rejected from / blocked at
// the bounded queue since the last call, plus the queue depth after the
// round (current-value gauge and all-time peak). Nil collectors are
// allocation-free no-ops.
func (c *Collector) StreamAdmit(admitted, rejected, blocked int64, queueDepth int) {
	if c == nil {
		return
	}
	if admitted > 0 {
		c.reg.Counter("stream_admitted_total").Add(admitted)
	}
	if rejected > 0 {
		c.reg.Counter("stream_rejected_total").Add(rejected)
	}
	if blocked > 0 {
		c.reg.Counter("stream_blocked_total").Add(blocked)
	}
	c.reg.Gauge("stream_queue_depth").Set(int64(queueDepth))
	c.reg.Gauge("stream_queue_depth_peak").Max(int64(queueDepth))
}

// StreamWindow records one cut scheduling window: its size, its latency
// (cut step to last commit step), and each member's response time
// (commit step − arrival step). Nil collectors are allocation-free
// no-ops.
func (c *Collector) StreamWindow(size int, latency int64, responses []int64) {
	if c == nil {
		return
	}
	c.reg.Counter("stream_windows_total").Inc()
	c.reg.Histogram("stream_window_size", nil).Observe(int64(size))
	c.reg.Histogram("stream_window_latency_steps", nil).Observe(latency)
	resp := c.reg.Histogram("stream_txn_response_steps", nil)
	for _, r := range responses {
		resp.Observe(r)
	}
}

// StreamCommit records one window's successful execution: size
// transactions committed. Nil collectors are allocation-free no-ops.
func (c *Collector) StreamCommit(size int) {
	if c == nil {
		return
	}
	c.reg.Counter("stream_committed_total").Add(int64(size))
}

// StreamRequeue records the health layer's decisions at one window cut:
// count transactions pushed back because their node is down, plus the
// requeue backlog depth after the cut (current-value gauge and all-time
// peak). Nil collectors are allocation-free no-ops.
func (c *Collector) StreamRequeue(count int64, depth int) {
	if c == nil {
		return
	}
	if count > 0 {
		c.reg.Counter("stream_requeue_total").Add(count)
	}
	c.reg.Gauge("stream_requeue_depth").Set(int64(depth))
	c.reg.Gauge("stream_requeue_depth_peak").Max(int64(depth))
}

// StreamShed records transactions dropped after exhausting their requeue
// budget. Nil collectors are allocation-free no-ops.
func (c *Collector) StreamShed(count int64) {
	if c == nil || count <= 0 {
		return
	}
	c.reg.Counter("stream_shed_total").Add(count)
}

// StreamBreaker records one admission circuit-breaker transition: a trip
// into load shedding (open) or a recovery back to the configured policy.
// Nil collectors are allocation-free no-ops.
func (c *Collector) StreamBreaker(open bool) {
	if c == nil {
		return
	}
	if open {
		c.reg.Counter("stream_breaker_trips_total").Inc()
	} else {
		c.reg.Counter("stream_breaker_recoveries_total").Inc()
	}
}

// StreamFaultWindow records one executed window's fault outcome: the
// window-relative makespan inflation in integer percent (100 = the
// window finished on its planned end) and whether the window was
// degraded (committed past its plan). Nil collectors are allocation-free
// no-ops.
func (c *Collector) StreamFaultWindow(inflation float64, degraded bool) {
	if c == nil {
		return
	}
	c.reg.Counter("stream_fault_windows_total").Inc()
	if degraded {
		c.reg.Counter("stream_fault_degraded_total").Inc()
	}
	c.reg.Histogram("stream_fault_inflation_pct", nil).Observe(int64(inflation*100 + 0.5))
}

// Retry counts one engine-level job retry (RunBatch's transient-failure
// retry policy). Nil-safe and allocation-free on the nil path.
func (c *Collector) Retry() {
	if c == nil {
		return
	}
	c.reg.Counter("engine_retries_total").Inc()
}

// run returns (creating if needed) the trace for (job, name).
func (c *Collector) run(job int, name string) *runTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.index == nil {
		c.index = map[runKey]*runTrace{}
	}
	if r, ok := c.index[runKey{job, name}]; ok {
		return r
	}
	r := &runTrace{Job: job, Name: name}
	c.index[runKey{job, name}] = r
	c.runs = append(c.runs, r)
	return r
}

// RecordRun records one finished run: latency/travel histograms and engine
// counters always; the full trace (move/exec spans, derived schedule
// metrics) when tracing. simRes may be nil (VerifyFast / VerifyOff): the
// collector then synthesizes the identical span stream from the schedule
// under the same synchronous timing semantics the simulator enforces, so
// traces do not depend on the verify policy. When simRes carries a
// recorded event stream, the spans are built from those events instead.
func (c *Collector) RecordRun(job int, name, algorithm string, in *tm.Instance, s *schedule.Schedule, simRes *sim.Result) {
	if c == nil || in == nil || s == nil {
		return
	}
	c.reg.Counter("engine_runs_total").Inc()
	c.reg.Counter("engine_runs_total", "algorithm", algorithm).Inc()
	latency := c.reg.Histogram("txn_latency_steps", nil)
	for _, t := range s.Times {
		latency.Observe(t)
	}
	c.reg.Gauge("makespan_steps_max").Max(s.Makespan())
	if simRes != nil {
		c.reg.Counter("sim_steps_total").Add(simRes.Makespan)
		c.reg.Counter("object_moves_total").Add(simRes.Moves)
		c.reg.Counter("txns_executed_total").Add(int64(simRes.Executed))
		c.reg.Counter("comm_cost_total").Add(simRes.CommCost)
	}

	if !c.cfg.Traces {
		// Metrics-only: observe per-object travel without building spans.
		travel := c.reg.Histogram("object_travel_steps", nil)
		if simRes != nil {
			for _, d := range simRes.ObjectDistance {
				travel.Observe(d)
			}
		} else {
			for o := 0; o < in.NumObjects; o++ {
				var sum int64
				route := s.Route(in, tm.ObjectID(o))
				for i := 0; i+1 < len(route); i++ {
					sum += in.Dist(route[i], route[i+1])
				}
				travel.Observe(sum)
			}
		}
		return
	}

	metrics, moves, execs := Derive(in, s)
	if simRes != nil && len(simRes.Events) > 0 {
		moves, execs = spansFromEvents(in, s, simRes.Events)
	}
	travel := c.reg.Histogram("object_travel_steps", nil)
	for _, d := range metrics.ObjectTravel {
		travel.Observe(d)
	}
	for _, nd := range metrics.PeakQueueDepth {
		c.reg.Gauge("queue_depth_peak").Max(nd.Peak)
	}

	r := c.run(job, name)
	c.mu.Lock()
	r.Algorithm = algorithm
	r.Makespan = s.Makespan()
	r.Metrics = metrics
	r.Moves = moves
	r.Execs = execs
	over := c.cfg.MaxTraceRuns > 0 && len(c.runs) > c.cfg.MaxTraceRuns
	c.mu.Unlock()
	if over {
		c.trimRuns()
	}
}

// trimRuns drops the highest-keyed traces beyond MaxTraceRuns, keeping the
// retained set deterministic regardless of recording order.
func (c *Collector) trimRuns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.MaxTraceRuns <= 0 || len(c.runs) <= c.cfg.MaxTraceRuns {
		return
	}
	runs := append([]*runTrace(nil), c.runs...)
	sortRuns(runs)
	c.runs = runs[:c.cfg.MaxTraceRuns]
	c.index = make(map[runKey]*runTrace, len(c.runs))
	for _, r := range c.runs {
		c.index[runKey{r.Job, r.Name}] = r
	}
}

// sortRuns orders traces by (job, name).
func sortRuns(runs []*runTrace) {
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Job != runs[j].Job {
			return runs[i].Job < runs[j].Job
		}
		return runs[i].Name < runs[j].Name
	})
}

// spansFromEvents converts a simulator event stream into move/exec spans.
// The result is identical to Derive's synthesis — the simulator emits one
// depart/arrive pair per nonzero-distance relocation and one execute per
// commit under the same timing model — but using the stream keeps the
// trace a faithful subscription to what the simulator actually did.
func spansFromEvents(in *tm.Instance, s *schedule.Schedule, events []sim.Event) ([]Move, []Exec) {
	var moves []Move
	var execs []Exec
	for _, ev := range events {
		switch ev.Kind {
		case sim.EventDepart:
			moves = append(moves, Move{
				Object: int(ev.Object), Txn: int(ev.Txn), From: int(ev.From), To: int(ev.To),
				Depart: ev.Step, Arrive: ev.Step + in.Dist(ev.From, ev.To), Used: s.Times[ev.Txn],
			})
		case sim.EventExecute:
			execs = append(execs, Exec{Txn: int(ev.Txn), Node: int(ev.Node), Step: ev.Step})
		}
	}
	sortMoves(moves)
	sortExecs(execs)
	return moves, execs
}

func sortMoves(moves []Move) {
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].Object != moves[j].Object {
			return moves[i].Object < moves[j].Object
		}
		return moves[i].Depart < moves[j].Depart
	})
}

func sortExecs(execs []Exec) {
	sort.Slice(execs, func(i, j int) bool {
		if execs[i].Step != execs[j].Step {
			return execs[i].Step < execs[j].Step
		}
		return execs[i].Txn < execs[j].Txn
	})
}
