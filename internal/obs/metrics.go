// Package obs is the observability layer of the reproduction: a lock-free
// metrics registry (counters, gauges, fixed-bucket histograms backed by
// sync/atomic), a trace recorder that turns engine pipeline events and
// simulator event streams into structured JSONL and Chrome trace-event
// files (loadable in Perfetto / chrome://tracing), and derived schedule
// metrics — per-transaction latency, per-object travel, queue depth and
// link utilization over simulated steps, critical-path extraction.
//
// The paper's theorems are statements about schedule *shape* (makespan vs.
// object travel, congestion at hot nodes, per-window latency); this package
// makes that shape measurable per run instead of reducing every run to
// three scalars. Everything is nil-safe: a nil *Collector is a no-op that
// adds zero allocations to the engine hot path, so observability is free
// when not requested.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds d (d may be any sign, but counters are conventionally monotone).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Max raises the gauge to v if v is larger (atomic CAS loop).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive upper
// bound of bucket i, with one implicit overflow bucket. Observations are
// atomic adds; there is no locking anywhere on the update path.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
}

// DefaultBuckets is a geometric 1–65536 ladder suitable for step-valued
// quantities (latencies, distances) across every topology in the repo.
var DefaultBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.Max(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the qth quantile (0 < q ≤ 1) as the upper bound of the
// bucket containing it; observations beyond the last bound report the
// observed maximum. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Value()
		}
	}
	return h.max.Value()
}

// metric is the union stored in a Registry.
type metric struct {
	kind string // "counter" | "gauge" | "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named, labeled metric store. Metric handles are created (or
// fetched) with Counter/Gauge/Histogram and then updated with pure atomic
// operations; the registry itself is a sync.Map, so steady-state updates
// take no locks. A nil *Registry is a valid no-op registry.
type Registry struct {
	m       sync.Map // key string -> metric
	publish sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// key renders "name{k1=v1,k2=v2}" from alternating key/value label pairs.
// Labels are sorted so the same label set always yields the same key.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	if len(labels)%2 == 1 { // dangling key: keep it visible rather than drop it
		pairs = append(pairs, kv{labels[len(labels)-1], ""})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns the counter registered under name and labels (alternating
// key/value pairs), creating it on first use. Nil registry → nil counter
// (whose methods are no-ops).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if m, ok := r.m.Load(k); ok {
		return m.(metric).c
	}
	m, _ := r.m.LoadOrStore(k, metric{kind: "counter", c: &Counter{}})
	return m.(metric).c
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if m, ok := r.m.Load(k); ok {
		return m.(metric).g
	}
	m, _ := r.m.LoadOrStore(k, metric{kind: "gauge", g: &Gauge{}})
	return m.(metric).g
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket bounds on first use (nil bounds =
// DefaultBuckets). Bounds are fixed at creation; later callers share the
// first histogram regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	if m, ok := r.m.Load(k); ok {
		return m.(metric).h
	}
	m, _ := r.m.LoadOrStore(k, metric{kind: "histogram", h: newHistogram(bounds)})
	return m.(metric).h
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// LE is the inclusive upper bound (-1 for the overflow bucket).
	LE int64 `json:"le"`
	// N is the number of observations in the bucket.
	N int64 `json:"n"`
}

// Sample is one metric in a snapshot.
type Sample struct {
	// Name is the full key, "name{k=v,...}".
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value is the counter/gauge value (histograms use the fields below).
	Value int64 `json:"value,omitempty"`
	// Count/Sum/Max/P50/P90/P99 summarize a histogram.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	Max   int64 `json:"max,omitempty"`
	P50   int64 `json:"p50,omitempty"`
	P90   int64 `json:"p90,omitempty"`
	P99   int64 `json:"p99,omitempty"`
	// Buckets holds the non-empty buckets of a histogram.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric, sorted by name, so the JSON
// rendering of a snapshot is stable across runs and worker counts.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	r.m.Range(func(k, v any) bool {
		m := v.(metric)
		s := Sample{Name: k.(string), Kind: m.kind}
		switch m.kind {
		case "counter":
			s.Value = m.c.Value()
		case "gauge":
			s.Value = m.g.Value()
		case "histogram":
			h := m.h
			s.Count, s.Sum, s.Max = h.Count(), h.Sum(), h.max.Value()
			s.P50, s.P90, s.P99 = h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					le := int64(-1)
					if i < len(h.bounds) {
						le = h.bounds[i]
					}
					s.Buckets = append(s.Buckets, Bucket{LE: le, N: n})
				}
			}
		}
		out = append(out, s)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Publish exposes the registry under the given expvar name (served at
// /debug/vars). Publishing twice, or under a name already taken, is a
// no-op rather than the expvar panic.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	r.publish.Do(func() {
		if expvar.Get(name) != nil {
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Quantiles returns the requested quantiles (0 < q ≤ 1) of xs using the
// nearest-rank method on a sorted copy. Zero-length input yields zeros.
// Exported for callers (experiment tables) that need exact small-sample
// percentiles rather than bucketed histogram estimates.
func Quantiles(xs []int64, qs ...float64) []int64 {
	out := make([]int64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]int64, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		rank := int(q*float64(len(sorted)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}
