// Per-stage profiling capture: a Profiler rides the engine's stage
// hooks and rotates the process CPU profile at every stage boundary, so
// each pipeline stage (generate, schedule, verify, measure) lands in its
// own pprof file, with an optional heap snapshot taken at the same
// boundaries. Files are written into one directory per profiler,
// prefixed with a monotone sequence number so the stage order is
// reconstructible from a directory listing.
//
// CPU profiling is a process-global resource, so a Profiler is meant
// for serial runs (dtmbench forces one engine worker under -profile);
// attribution across concurrent jobs would be meaningless anyway. All
// methods are nil-safe no-ops, and errors are sticky — the first
// failure (typically "cpu profiling already in use") is reported once
// from Err/Close instead of spamming every boundary.
package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
)

// ProfileConfig selects what a Profiler captures.
type ProfileConfig struct {
	// CPU rotates per-stage CPU profiles (cpu-*.pprof).
	CPU bool
	// Heap writes a heap snapshot at every stage boundary
	// (heap-*.pprof).
	Heap bool
}

// Profiler captures per-stage CPU profiles and stage-boundary heap
// snapshots. Create with NewProfiler, attach via engine.ProfilerHook,
// bracket the run with Start and Close.
type Profiler struct {
	mu     sync.Mutex
	dir    string
	cfg    ProfileConfig
	seq    int
	active *os.File // destination of the running CPU profile
	err    error    // first failure, sticky
}

// activeName is the scratch file the running CPU profile streams into;
// it is renamed to its stage-labeled name when the boundary arrives.
const activeName = ".cpu-active.pprof"

// NewProfiler creates dir (if needed) and returns a profiler capturing
// both CPU and heap.
func NewProfiler(dir string) (*Profiler, error) {
	return NewProfilerConfig(dir, ProfileConfig{CPU: true, Heap: true})
}

// NewProfilerConfig is NewProfiler with explicit capture selection.
func NewProfilerConfig(dir string, cfg ProfileConfig) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Profiler{dir: dir, cfg: cfg}, nil
}

// Start begins CPU capture for the upcoming stage. Call it once before
// the first engine run; calling it while a capture is active is a no-op,
// so a missed Start only loses the first stage's CPU profile (the first
// boundary starts capture for the stages after it).
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.startCPULocked()
}

// StageBoundary records the completion of one pipeline stage: the
// running CPU profile is stopped and renamed to the completed stage's
// label, a heap snapshot is written, and the next capture begins. The
// stage string is the engine's Stage name.
func (p *Profiler) StageBoundary(job int, name, stage string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	label := fmt.Sprintf("%04d-job%03d-%s-%s", p.seq, job, sanitize(name), stage)
	p.seq++
	if p.active != nil {
		pprof.StopCPUProfile()
		if err := p.active.Close(); err != nil {
			p.fail(err)
		}
		if err := os.Rename(p.active.Name(), filepath.Join(p.dir, "cpu-"+label+".pprof")); err != nil {
			p.fail(err)
		}
		p.active = nil
	}
	if p.cfg.Heap {
		p.writeHeapLocked(label)
	}
	p.startCPULocked()
}

// Close stops any running capture, discarding the unlabeled tail
// profile, and returns the first error the profiler hit.
func (p *Profiler) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active != nil {
		pprof.StopCPUProfile()
		p.active.Close()
		os.Remove(p.active.Name())
		p.active = nil
	}
	return p.err
}

// Err returns the first capture failure, if any.
func (p *Profiler) Err() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Dir returns the capture directory.
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// startCPULocked begins the next CPU capture into the scratch file.
func (p *Profiler) startCPULocked() {
	if !p.cfg.CPU || p.active != nil || p.err != nil {
		return
	}
	f, err := os.Create(filepath.Join(p.dir, activeName))
	if err != nil {
		p.fail(err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		p.fail(fmt.Errorf("cpu profile: %w", err))
		return
	}
	p.active = f
}

// writeHeapLocked snapshots the heap profile at a stage boundary.
func (p *Profiler) writeHeapLocked(label string) {
	f, err := os.Create(filepath.Join(p.dir, "heap-"+label+".pprof"))
	if err != nil {
		p.fail(err)
		return
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		p.fail(err)
	}
	if err := f.Close(); err != nil {
		p.fail(err)
	}
}

// fail records the first error.
func (p *Profiler) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// sanitize maps a job name onto the filename-safe alphabet.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}
