// Regression engine over run ledgers: group RunRecords by configuration
// fingerprint, reduce each metric to a robust location estimate (median
// plus MAD across trials and repeated runs), and judge the old→new delta
// per metric class. Wall-time metrics tolerate a configurable relative
// slack above a noise floor; deterministic counters (simulator steps,
// object moves, makespan, latency quantiles) are expected to reproduce
// exactly and any drift is flagged.
//
// The comparator is the pass/fail core behind `dtmsched bench compare`
// and `dtmsched bench gate`: Compare never errors on mismatched ledgers
// (one-sided fingerprints are reported, not fatal), and
// CompareReport.Pass() is the single gate bit.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Metric classes drive the comparison rule per metric.
const (
	// ClassTime marks wall-clock metrics: noisy, judged against
	// Thresholds.Time with a MAD noise floor and an absolute floor.
	ClassTime = "time"
	// ClassCount marks deterministic metrics: expected to reproduce
	// exactly for a fixed fingerprint and seed, judged against
	// Thresholds.Count (default 0 — any increase regresses, any
	// decrease improves).
	ClassCount = "count"
)

// Thresholds configures the regression judgment.
type Thresholds struct {
	// Time is the allowed relative increase on ClassTime metrics before
	// a regression is declared (0.30 = +30%). Zero selects the default.
	Time float64
	// Count is the allowed relative change on ClassCount metrics
	// (default 0: exact reproduction expected).
	Count float64
	// MADFactor scales the robust noise floor: a time delta must exceed
	// MADFactor × max(oldMAD, newMAD) as well as the relative threshold
	// (default 3).
	MADFactor float64
	// MinTimeMS is the absolute wall-time floor: time deltas smaller
	// than this are never judged, whatever their relative size
	// (default 1 ms). Keeps 0.02 ms → 0.05 ms jitter out of the gate.
	MinTimeMS float64
}

// DefaultThresholds are the gate's defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{Time: 0.30, Count: 0, MADFactor: 3, MinTimeMS: 1}
}

func (t Thresholds) normalized() Thresholds {
	if t.Time <= 0 {
		t.Time = 0.30
	}
	if t.MADFactor <= 0 {
		t.MADFactor = 3
	}
	if t.MinTimeMS <= 0 {
		t.MinTimeMS = 1
	}
	return t
}

// Verdicts of one metric comparison.
const (
	VerdictOK          = "ok"
	VerdictRegression  = "regression"
	VerdictImprovement = "improvement"
)

// MetricDelta is one metric's old→new judgment within a fingerprint
// group.
type MetricDelta struct {
	// Metric is the metric name ("stage_ms/measure", "simsteps", …).
	Metric string `json:"metric"`
	// Class is ClassTime or ClassCount.
	Class string `json:"class"`
	// Old / New are the robust per-side estimates (medians).
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// OldMAD / NewMAD are the per-side median absolute deviations.
	OldMAD float64 `json:"old_mad,omitempty"`
	NewMAD float64 `json:"new_mad,omitempty"`
	// OldN / NewN count the records that contributed per side.
	OldN int `json:"old_n"`
	NewN int `json:"new_n"`
	// Delta is the relative change (new-old)/old; +Inf-free: 0 when old
	// is 0 and new is 0, 1 when old is 0 and new is not.
	Delta float64 `json:"delta"`
	// Verdict is VerdictOK, VerdictRegression, or VerdictImprovement.
	Verdict string `json:"verdict"`
}

// GroupDelta is one fingerprint group's comparison.
type GroupDelta struct {
	Fingerprint string            `json:"fingerprint"`
	Experiment  string            `json:"experiment"`
	Config      map[string]string `json:"config,omitempty"`
	Metrics     []MetricDelta     `json:"metrics"`
}

// CompareReport is the full result of comparing two ledgers.
type CompareReport struct {
	// Thresholds echoes the effective judgment parameters.
	Thresholds Thresholds `json:"thresholds"`
	// Groups holds per-fingerprint metric deltas, sorted by
	// (experiment, fingerprint).
	Groups []GroupDelta `json:"groups"`
	// Regressions / Improvements count judged metrics across all groups.
	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
	// OnlyOld / OnlyNew list experiments whose fingerprints appear on a
	// single side (configuration drift, new benchmarks); informational.
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// EnvMismatch warns when the two sides ran in different
	// environments (GOOS/GOARCH/GOMAXPROCS/CPU count); wall-time deltas
	// across environments are suspect.
	EnvMismatch string `json:"env_mismatch,omitempty"`
}

// Pass reports whether the comparison is regression-free.
func (r *CompareReport) Pass() bool { return r.Regressions == 0 }

// metricVal is one extracted (name, class, value) triple.
type metricVal struct {
	name  string
	class string
	value float64
}

// gateMetrics extracts the judged metrics of one record. Identity fields
// (bound, ratio, seed) and the environment are deliberately excluded —
// they contextualize a record but are not performance.
func gateMetrics(r *RunRecord) []metricVal {
	var out []metricVal
	for stage, ms := range r.StageMS {
		out = append(out, metricVal{"stage_ms/" + stage, ClassTime, ms})
	}
	if r.TotalMS > 0 {
		out = append(out, metricVal{"total_ms", ClassTime, r.TotalMS})
	}
	if r.LowerMS > 0 {
		out = append(out, metricVal{"lower_ms", ClassTime, r.LowerMS})
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"simsteps", r.SimSteps},
		{"objmoves", r.ObjectMoves},
		{"executed", r.Executed},
		{"makespan", r.Makespan},
		{"latency_p50", r.LatencyP50},
		{"latency_p99", r.LatencyP99},
		{"stream_admitted", r.StreamAdmitted},
		{"stream_rejected", r.StreamRejected},
		{"stream_blocked", r.StreamBlocked},
		{"stream_windows", r.StreamWindows},
		{"stream_queue_peak", r.StreamQueuePeak},
		{"stream_requeued", r.StreamRequeued},
		{"stream_shed", r.StreamShed},
		{"stream_degraded", r.StreamDegraded},
		{"stream_breaker_trips", r.StreamTrips},
		{"stream_breaker_recoveries", r.StreamRecoveries},
	} {
		if c.v != 0 {
			out = append(out, metricVal{c.name, ClassCount, float64(c.v)})
		}
	}
	if r.StreamInflation > 0 {
		out = append(out, metricVal{"stream_inflation", ClassCount, r.StreamInflation})
	}
	return out
}

// group is the per-side accumulation of one fingerprint.
type group struct {
	experiment string
	config     map[string]string
	values     map[string][]float64 // metric → observations
	classes    map[string]string
	latency    *HistSnapshot
	hasLatency bool
}

// accumulate folds records into fingerprint groups.
func accumulate(recs []RunRecord) map[string]*group {
	out := map[string]*group{}
	for i := range recs {
		r := &recs[i]
		g := out[r.Fingerprint]
		if g == nil {
			g = &group{
				experiment: r.Experiment,
				config:     r.Config,
				values:     map[string][]float64{},
				classes:    map[string]string{},
			}
			out[r.Fingerprint] = g
		}
		for _, mv := range gateMetrics(r) {
			g.values[mv.name] = append(g.values[mv.name], mv.value)
			g.classes[mv.name] = mv.class
		}
		if r.Latency != nil {
			g.latency = MergeHist(g.latency, r.Latency)
			g.hasLatency = true
		}
	}
	// Pooled latency quantiles replace the per-record medians when every
	// contributing record carried the full distribution: merging the
	// histograms and taking one quantile is the MergeHist consumer the
	// comparator exists for.
	for _, g := range out {
		if g.hasLatency {
			g.values["latency_p50"] = []float64{float64(g.latency.Quantile(0.50))}
			g.values["latency_p99"] = []float64{float64(g.latency.Quantile(0.99))}
			g.classes["latency_p50"], g.classes["latency_p99"] = ClassCount, ClassCount
		}
	}
	return out
}

// median returns the middle of a sorted copy (mean of the central pair
// for even lengths); 0 for empty input.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mad returns the median absolute deviation around med.
func mad(xs []float64, med float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return median(dev)
}

// Compare judges new against old, grouping by fingerprint. Neither slice
// is mutated. Zero-valued thresholds select DefaultThresholds fields.
func Compare(old, new []RunRecord, th Thresholds) *CompareReport {
	th = th.normalized()
	rep := &CompareReport{Thresholds: th}
	oldG, newG := accumulate(old), accumulate(new)

	if msg := envMismatch(old, new); msg != "" {
		rep.EnvMismatch = msg
	}

	var fps []string
	for fp := range oldG {
		if _, ok := newG[fp]; ok {
			fps = append(fps, fp)
		} else {
			rep.OnlyOld = append(rep.OnlyOld, oldG[fp].experiment+" ["+fp+"]")
		}
	}
	for fp, g := range newG {
		if _, ok := oldG[fp]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, g.experiment+" ["+fp+"]")
		}
	}
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	sort.Slice(fps, func(i, j int) bool {
		a, b := oldG[fps[i]], oldG[fps[j]]
		if a.experiment != b.experiment {
			return a.experiment < b.experiment
		}
		return fps[i] < fps[j]
	})

	for _, fp := range fps {
		og, ng := oldG[fp], newG[fp]
		gd := GroupDelta{Fingerprint: fp, Experiment: og.experiment, Config: og.config}
		var names []string
		for name := range og.values {
			if _, ok := ng.values[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			ov, nv := og.values[name], ng.values[name]
			md := MetricDelta{
				Metric: name, Class: og.classes[name],
				Old: median(ov), New: median(nv),
				OldN: len(ov), NewN: len(nv),
			}
			md.OldMAD, md.NewMAD = mad(ov, md.Old), mad(nv, md.New)
			md.Delta = relDelta(md.Old, md.New)
			md.Verdict = judge(md, th)
			switch md.Verdict {
			case VerdictRegression:
				rep.Regressions++
			case VerdictImprovement:
				rep.Improvements++
			}
			gd.Metrics = append(gd.Metrics, md)
		}
		rep.Groups = append(rep.Groups, gd)
	}
	return rep
}

// relDelta is (new-old)/old with the zero-old edge pinned: 0→0 is no
// change, 0→x is a unit increase.
func relDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

// judge applies the per-class rule to one metric delta.
func judge(md MetricDelta, th Thresholds) string {
	diff := md.New - md.Old
	switch md.Class {
	case ClassTime:
		if math.Abs(diff) < th.MinTimeMS {
			return VerdictOK
		}
		floor := th.MADFactor * math.Max(md.OldMAD, md.NewMAD)
		if md.Delta > th.Time && diff > floor {
			return VerdictRegression
		}
		if md.Delta < -th.Time && -diff > floor {
			return VerdictImprovement
		}
	default: // ClassCount
		if md.Delta > th.Count {
			return VerdictRegression
		}
		if md.Delta < -th.Count {
			return VerdictImprovement
		}
	}
	return VerdictOK
}

// envMismatch compares the first record's environment per side.
func envMismatch(old, new []RunRecord) string {
	if len(old) == 0 || len(new) == 0 {
		return ""
	}
	a, b := old[0].Env, new[0].Env
	var diffs []string
	if a.GOOS != b.GOOS || a.GOARCH != b.GOARCH {
		diffs = append(diffs, fmt.Sprintf("platform %s/%s vs %s/%s", a.GOOS, a.GOARCH, b.GOOS, b.GOARCH))
	}
	if a.GOMAXPROCS != b.GOMAXPROCS {
		diffs = append(diffs, fmt.Sprintf("GOMAXPROCS %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	if a.NumCPU != b.NumCPU {
		diffs = append(diffs, fmt.Sprintf("cpus %d vs %d", a.NumCPU, b.NumCPU))
	}
	return strings.Join(diffs, "; ")
}

// WriteText renders the report for terminals: the summary line, every
// regression and improvement, one-sided fingerprints, and a per-group
// ok count so silence never reads as "not checked".
func (r *CompareReport) WriteText(w io.Writer) error {
	status := "PASS"
	if !r.Pass() {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "%s: %d fingerprint groups, %d regressions, %d improvements\n",
		status, len(r.Groups), r.Regressions, r.Improvements); err != nil {
		return err
	}
	if r.EnvMismatch != "" {
		fmt.Fprintf(w, "warning: environment mismatch (%s) — wall-time deltas are suspect\n", r.EnvMismatch)
	}
	for _, g := range r.Groups {
		ok := 0
		for _, m := range g.Metrics {
			if m.Verdict == VerdictOK {
				ok++
				continue
			}
			mark := "IMPROVED"
			if m.Verdict == VerdictRegression {
				mark = "REGRESSED"
			}
			fmt.Fprintf(w, "  %-9s %s [%s] %-20s %s -> %s (%+.1f%%, n=%d/%d)\n",
				mark, g.Experiment, g.Fingerprint[:8], m.Metric,
				fmtVal(m.Old), fmtVal(m.New), m.Delta*100, m.OldN, m.NewN)
		}
		fmt.Fprintf(w, "  %s [%s]: %d metrics ok\n", g.Experiment, g.Fingerprint[:8], ok)
	}
	for _, s := range r.OnlyOld {
		fmt.Fprintf(w, "  only in OLD: %s\n", s)
	}
	for _, s := range r.OnlyNew {
		fmt.Fprintf(w, "  only in NEW: %s\n", s)
	}
	return nil
}

// fmtVal prints values compactly: integers without a fraction.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// WriteJSON renders the report as indented JSON.
func (r *CompareReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
