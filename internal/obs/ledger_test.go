package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(&buf)
	recs := []*RunRecord{
		{Experiment: "E1", Config: map[string]string{"quick": "true"}, Seed: 7,
			StageMS: map[string]float64{"schedule": 1.5}, TotalMS: 10,
			SimSteps: 42, ObjectMoves: 9, Executed: 5, Makespan: 12, Bound: 10, Ratio: 1.2,
			LatencyP50: 3, LatencyP99: 8,
			Latency: &HistSnapshot{Count: 5, Sum: 20, Max: 8, Buckets: []Bucket{{LE: 4, N: 3}, {LE: 8, N: 2}}}},
		{Experiment: "E2", Trial: 2},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}

	got, err := ReadLedger(&buf)
	if err != nil {
		t.Fatalf("ReadLedger: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	r := got[0]
	if r.Schema != LedgerSchemaVersion {
		t.Errorf("schema = %d, want %d (Append fills it)", r.Schema, LedgerSchemaVersion)
	}
	if r.Fingerprint != Fingerprint("E1", map[string]string{"quick": "true"}) {
		t.Errorf("fingerprint = %q not the config hash", r.Fingerprint)
	}
	if r.Env == (Env{}) {
		t.Error("Append must fill Env")
	}
	if r.SimSteps != 42 || r.Makespan != 12 || r.StageMS["schedule"] != 1.5 {
		t.Errorf("measurement fields did not round-trip: %+v", r)
	}
	if r.Latency == nil || r.Latency.Count != 5 || len(r.Latency.Buckets) != 2 {
		t.Errorf("latency snapshot did not round-trip: %+v", r.Latency)
	}
	if got[1].Trial != 2 {
		t.Errorf("trial = %d, want 2", got[1].Trial)
	}
}

func TestReadLedgerRejectsBadInput(t *testing.T) {
	for name, in := range map[string]string{
		"newer schema": fmt.Sprintf(`{"schema":%d,"experiment":"x"}`, LedgerSchemaVersion+1),
		"zero schema":  `{"experiment":"x"}`,
		"not json":     `{"experiment":`,
	} {
		if _, err := ReadLedger(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("%s: ReadLedger accepted %q", name, in)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %q does not name the line", name, err)
		}
	}
	// Blank lines are not errors.
	if recs, err := ReadLedger(strings.NewReader("\n\n")); err != nil || len(recs) != 0 {
		t.Errorf("blank input: recs=%d err=%v, want 0, nil", len(recs), err)
	}
}

func TestLedgerStickyError(t *testing.T) {
	l := NewLedger(failWriter{})
	if err := l.Append(&RunRecord{Experiment: "x"}); err == nil {
		t.Fatal("Append to a failing writer must error")
	}
	if err := l.Err(); err == nil {
		t.Fatal("Err must report the sticky write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("sink full") }

func TestFingerprintStable(t *testing.T) {
	a := Fingerprint("E1", map[string]string{"a": "1", "b": "2"})
	b := Fingerprint("E1", map[string]string{"b": "2", "a": "1"})
	if a != b {
		t.Errorf("fingerprint depends on map order: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Errorf("fingerprint %q is not 16 hex chars", a)
	}
	if a == Fingerprint("E1", map[string]string{"a": "1", "b": "3"}) {
		t.Error("different config produced the same fingerprint")
	}
	if a == Fingerprint("E2", map[string]string{"a": "1", "b": "2"}) {
		t.Error("different experiment produced the same fingerprint")
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	h := &HistSnapshot{Count: 10, Sum: 100, Max: 900,
		Buckets: []Bucket{{LE: 4, N: 4}, {LE: 8, N: 4}, {LE: -1, N: 2}}}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.0, 4},   // rank clamps to 1
		{0.4, 4},   // exactly the last observation of the first bucket
		{0.5, 8},   // first observation of the second bucket
		{0.8, 8},   // boundary of the second bucket
		{0.9, 900}, // overflow → observed max
		{1.0, 900},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := (&HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot Quantile = %d, want 0", got)
	}
	if got := (*HistSnapshot)(nil).Quantile(0.5); got != 0 {
		t.Errorf("nil snapshot Quantile = %d, want 0", got)
	}
}

func TestMergeHistDeterminism(t *testing.T) {
	a := &HistSnapshot{Count: 3, Sum: 10, Max: 7,
		Buckets: []Bucket{{LE: 4, N: 2}, {LE: 8, N: 1}}}
	b := &HistSnapshot{Count: 4, Sum: 40, Max: 90,
		Buckets: []Bucket{{LE: 2, N: 1}, {LE: 8, N: 2}, {LE: -1, N: 1}}}
	ab, ba := MergeHist(a, b), MergeHist(b, a)
	jab, _ := json.Marshal(ab)
	jba, _ := json.Marshal(ba)
	if !bytes.Equal(jab, jba) {
		t.Errorf("merge is not commutative:\n %s\n %s", jab, jba)
	}
	if ab.Count != 7 || ab.Sum != 50 || ab.Max != 90 {
		t.Errorf("merged totals = %+v, want count 7 sum 50 max 90", ab)
	}
	want := []Bucket{{LE: 2, N: 1}, {LE: 4, N: 2}, {LE: 8, N: 3}, {LE: -1, N: 1}}
	if fmt.Sprint(ab.Buckets) != fmt.Sprint(want) {
		t.Errorf("merged buckets = %v, want %v (sorted, overflow last)", ab.Buckets, want)
	}
	if MergeHist(nil, nil) != nil {
		t.Error("MergeHist(nil, nil) must be nil")
	}
	if m := MergeHist(a, nil); m.Count != a.Count {
		t.Errorf("MergeHist(a, nil).Count = %d, want %d", m.Count, a.Count)
	}
}

func TestHistDelta(t *testing.T) {
	prev := Sample{Count: 3, Sum: 10, Max: 8, Buckets: []Bucket{{LE: 4, N: 2}, {LE: 8, N: 1}}}
	cur := Sample{Count: 8, Sum: 60, Max: 32, Buckets: []Bucket{{LE: 4, N: 3}, {LE: 8, N: 3}, {LE: 32, N: 2}}}
	d := HistDelta(cur, prev)
	if d.Count != 5 || d.Sum != 50 || d.Max != 32 {
		t.Errorf("delta totals = %+v, want count 5 sum 50 max 32", d)
	}
	want := []Bucket{{LE: 4, N: 1}, {LE: 8, N: 2}, {LE: 32, N: 2}}
	if fmt.Sprint(d.Buckets) != fmt.Sprint(want) {
		t.Errorf("delta buckets = %v, want %v", d.Buckets, want)
	}
	// Delta from the zero Sample is the cumulative snapshot.
	if d := HistDelta(cur, Sample{}); d.Count != 8 || len(d.Buckets) != 3 {
		t.Errorf("delta from zero = %+v, want the full snapshot", d)
	}
}

func TestSnapshotValues(t *testing.T) {
	s := SnapshotValues([]int64{1, 3, 5, 100000})
	if s.Count != 4 || s.Sum != 100009 || s.Max != 100000 {
		t.Errorf("snapshot totals = %+v", s)
	}
	if got := s.Quantile(0.5); got != 4 {
		t.Errorf("Quantile(0.5) = %d, want 4 (bucket upper bound of 3)", got)
	}
	if got := s.Quantile(1.0); got != 100000 {
		t.Errorf("Quantile(1.0) = %d, want the observed max in overflow", got)
	}
}

// TestNilLedgerProfilerZeroAllocs pins the obs/v2 nil-safety contract:
// engine hooks may call an unattached ledger or profiler unconditionally
// and the hot path must not allocate.
func TestNilLedgerProfilerZeroAllocs(t *testing.T) {
	var l *Ledger
	var p *Profiler
	rec := &RunRecord{Experiment: "x"}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := l.Err(); err != nil {
			t.Fatal(err)
		}
		p.Start()
		p.StageBoundary(0, "job", "verify")
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil ledger/profiler path allocates %.1f allocs/op, want 0", allocs)
	}
}
