package obs

import (
	"testing"

	"dtmsched/internal/faults"
)

func TestCollectorFaultMetrics(t *testing.T) {
	c := NewMetricsCollector()
	c.Fault(&faults.Report{Retries: 2, Reroutes: 1, DeferredCommits: 3, WastedComm: 7, Inflation: 1.25})
	c.Fault(&faults.Report{Inflation: 1.0})
	c.Fault(nil) // ignored
	c.Retry()
	c.Retry()
	reg := c.Registry()
	for name, want := range map[string]int64{
		"fault_runs_total":             2,
		"fault_retries_total":          2,
		"fault_reroutes_total":         1,
		"fault_deferred_commits_total": 3,
		"fault_wasted_comm_total":      7,
		"engine_retries_total":         2,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h := reg.Histogram("fault_inflation_pct", nil)
	if got := h.Count(); got != 2 {
		t.Errorf("fault_inflation_pct count = %d, want 2", got)
	}
}
