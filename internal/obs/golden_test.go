package obs_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/obs"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenJobs is a small deterministic multi-algorithm batch. A factory:
// jobs must be rebuilt for every RunBatch call.
func goldenJobs() []engine.Job {
	gen := func(n int) func() (*tm.Instance, error) {
		return func() (*tm.Instance, error) {
			topo := topology.NewClique(n)
			rng := xrand.NewDerived(11, "obs-golden", fmt.Sprint(n))
			in := tm.UniformK(n/3, 2).Generate(rng, topo.Graph(),
				graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, nil
		}
	}
	var jobs []engine.Job
	for _, n := range []int{12, 18} {
		jobs = append(jobs,
			engine.Job{Name: fmt.Sprintf("greedy/%d", n), Gen: gen(n), Scheduler: &core.Greedy{}},
			engine.Job{Name: fmt.Sprintf("seq/%d", n), Gen: gen(n), Scheduler: baseline.Sequential{}},
			engine.Job{Name: fmt.Sprintf("list/%d", n), Gen: gen(n), Scheduler: baseline.List{}},
		)
	}
	return jobs
}

// collect runs the golden batch under the given worker count and returns
// the exported JSONL and Chrome trace bytes.
func collect(t *testing.T, workers int) (jsonl, chrome []byte) {
	t.Helper()
	col := obs.NewCollector()
	if _, err := engine.RunBatch(context.Background(), goldenJobs(),
		engine.Options{Workers: workers, Collector: col}); err != nil {
		t.Fatal(err)
	}
	var j, c bytes.Buffer
	if err := col.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes()
}

// TestTraceGolden pins trace export determinism: the same batch traced
// under 1 worker and 8 workers must export byte-identical JSONL and
// Chrome traces, and both must match the committed golden files.
func TestTraceGolden(t *testing.T) {
	jsonl1, chrome1 := collect(t, 1)
	jsonl8, chrome8 := collect(t, 8)
	if !bytes.Equal(jsonl1, jsonl8) {
		t.Error("JSONL trace differs between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(chrome1, chrome8) {
		t.Error("Chrome trace differs between -parallel 1 and -parallel 8")
	}

	goldens := []struct {
		file string
		got  []byte
	}{
		{"golden.jsonl", jsonl1},
		{"golden.chrome.json", chrome1},
	}
	for _, g := range goldens {
		path := filepath.Join("testdata", g.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run `go test ./internal/obs -run TraceGolden -update`): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted from golden (%d bytes vs %d); rerun with -update if intentional",
				g.file, len(g.got), len(want))
		}
	}
}

// TestCollectorDoesNotPerturbReports: attaching a collector must not
// change any report the engine produces.
func TestCollectorDoesNotPerturbReports(t *testing.T) {
	run := func(col *obs.Collector) []engine.JobResult {
		res, err := engine.RunBatch(context.Background(), goldenJobs(),
			engine.Options{Workers: 4, Collector: col})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(obs.NewCollector())
	for i := range plain {
		a, b := plain[i].Report, traced[i].Report
		if a == nil || b == nil {
			t.Fatalf("job %d failed: %v / %v", i, plain[i].Err, traced[i].Err)
		}
		if a.Makespan != b.Makespan || a.CommCost != b.CommCost || a.Counters != b.Counters {
			t.Errorf("job %q report changed under collector: %+v vs %+v", a.Name, a, b)
		}
	}
}
