// Package depgraph builds the transaction dependency (conflict) graph H of
// Section 2.3 and colors it greedily. Nodes of H are transactions; an edge
// joins two transactions that share at least one object, weighted by the
// shortest-path distance between their nodes in the communication graph.
// A valid coloring assigns each transaction a positive integer time step
// such that adjacent transactions' colors differ by at least the incident
// edge weight; greedy coloring uses at most Γ+1 = h_max·Δ+1 colors.
//
// H is stored in compressed sparse row (CSR) form: one flat neighbor array
// plus one flat weight array, indexed per member by a row-offset table.
// Build enumerates conflict pairs from the instance's shared
// tm.ConflictIndex in parallel (per-object shards into per-worker
// buffers), merges them with a counting sort over rows, and sorts +
// deduplicates each row — so the resulting CSR bytes are identical for
// every worker count, and all warm queries (Weight, Degree, Neighbors,
// GreedyColor, CheckColoring) are zero-allocation slice walks.
package depgraph

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"time"

	"dtmsched/internal/tm"
)

// DepGraph is the weighted conflict graph over a set of transactions
// (possibly a subset of an instance's transactions, as the Grid and Star
// algorithms schedule tile by tile), in CSR form.
type DepGraph struct {
	// IDs lists the member transactions; local index i refers to IDs[i].
	IDs []tm.TxnID

	// CSR adjacency: member i's neighbors are nbr[rowStart[i]:rowStart[i+1]]
	// (ascending local indices, each undirected edge stored in both rows)
	// with parallel edge weights in wt.
	rowStart []int32
	nbr      []int32
	wt       []int64

	hmax int64
	mdeg int
	info BuildInfo
}

// BuildInfo reports how a DepGraph was built; schedulers forward it into
// their stats so the engine and observability layers can attribute
// schedule-stage time to conflict-graph construction.
type BuildInfo struct {
	// Workers is the number of build workers actually used.
	Workers int
	// Pairs is the number of conflicting pairs enumerated across objects,
	// before deduplication (two transactions sharing two objects count
	// twice).
	Pairs int64
	// Edges is the number of distinct undirected edges of H.
	Edges int64
	// Duration is the wall time of the build.
	Duration time.Duration
}

// Options tunes Build. The zero value (auto worker count, index taken from
// the instance) is what every scheduler uses.
type Options struct {
	// Workers is the number of build goroutines: 0 picks automatically
	// (serial for small member sets, up to GOMAXPROCS beyond that),
	// 1 forces the serial path. The built graph is byte-identical for
	// every worker count.
	Workers int
	// Index supplies the object → member-transaction source to enumerate
	// conflicts from. Nil uses the instance's own cached Index(). Callers
	// with an evolving member set (the windows extension) pass their
	// incrementally maintained *tm.ConflictIndex here; the hierarchical
	// scheduler passes one tm.ShardView per subtree so each shard's build
	// sees only its own members without copying the index.
	Index tm.MemberSource
}

// serialThreshold is the member count below which the auto policy builds
// serially: tile- and segment-sized graphs are cheaper to build inline
// than to fan out.
const serialThreshold = 512

// Build constructs H over the given transactions of in with default
// options. A nil ids slice means all transactions. Edge weights come from
// the instance's metric.
func Build(in *tm.Instance, ids []tm.TxnID) *DepGraph {
	return BuildOpts(in, ids, Options{})
}

// BuildOpts constructs H over the given transactions of in. A nil ids
// slice means all transactions.
//
// The build runs in two passes. Pass one shards the objects of the
// conflict index across workers; each worker enumerates, for its objects,
// every pair of member transactions (restricted to ids) into a private
// buffer, and counts the pairs' row degrees. Pass two lays the pairs out
// as CSR via a counting sort — per-row offsets are derived from the
// per-worker degree counts, so workers scatter concurrently without
// synchronization — then sorts and deduplicates each row and fills in
// edge weights from the instance metric. Sorting rows makes the result
// independent of enumeration order: the same instance yields identical
// CSR bytes, h_max, and Δ at every worker count.
func BuildOpts(in *tm.Instance, ids []tm.TxnID, opt Options) *DepGraph {
	start := time.Now()
	if ids == nil {
		ids = make([]tm.TxnID, in.NumTxns())
		for i := range ids {
			ids[i] = tm.TxnID(i)
		}
	}
	n := len(ids)
	h := &DepGraph{IDs: ids}

	index := opt.Index
	if index == nil {
		index = in.Index()
	}
	workers := opt.Workers
	if workers <= 0 {
		if n < serialThreshold {
			workers = 1
		} else {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	w := index.NumObjects()
	if workers > w && w > 0 {
		workers = w
	}
	if workers < 1 {
		workers = 1
	}

	// Local-index lookup: localOf[id] = member index, or −1.
	localOf := make([]int32, in.NumTxns())
	for i := range localOf {
		localOf[i] = -1
	}
	for i, id := range ids {
		localOf[id] = int32(i)
	}

	// Pass 1: enumerate conflict pairs per object shard.
	type pair struct{ a, b int32 } // a < b, local indices
	bufs := make([][]pair, workers)
	degs := make([][]int32, workers) // per-worker per-row pair counts
	runShards(workers, w, func(shard, lo, hi int) {
		var buf []pair
		deg := make([]int32, n)
		var scratch []int32
		for o := lo; o < hi; o++ {
			members := index.Members(tm.ObjectID(o))
			scratch = scratch[:0]
			for _, id := range members {
				if li := localOf[id]; li >= 0 {
					scratch = append(scratch, li)
				}
			}
			for x := 0; x < len(scratch); x++ {
				for y := x + 1; y < len(scratch); y++ {
					a, b := scratch[x], scratch[y]
					if a > b {
						a, b = b, a
					}
					buf = append(buf, pair{a, b})
					deg[a]++
					deg[b]++
				}
			}
		}
		bufs[shard] = buf
		degs[shard] = deg
	})

	// Counting sort: per-row offsets, with each worker's slots reserved in
	// shard order so the scatter needs no synchronization.
	var pairs int64
	for _, buf := range bufs {
		pairs += int64(len(buf))
	}
	h.info = BuildInfo{Workers: workers, Pairs: pairs}
	rowStart := make([]int32, n+1)
	var total int64
	for i := 0; i < n; i++ {
		rowStart[i] = int32(total)
		for _, deg := range degs {
			total += int64(deg[i])
		}
	}
	if total != 2*pairs {
		panic("depgraph: pair accounting mismatch")
	}
	if total > int64(1)<<31-1 {
		panic(fmt.Sprintf("depgraph: %d directed pair slots overflow the CSR int32 layout", total))
	}
	rowStart[n] = int32(total)
	// cursors[shard] = next free slot per row for that shard.
	cursors := make([][]int32, workers)
	for shard := range cursors {
		cur := make([]int32, n)
		for i := 0; i < n; i++ {
			off := rowStart[i]
			for s := 0; s < shard; s++ {
				off += degs[s][i]
			}
			cur[i] = off
		}
		cursors[shard] = cur
	}
	tmpNbr := make([]int32, total)
	runShards(workers, workers, func(_, lo, hi int) {
		for shard := lo; shard < hi; shard++ {
			cur := cursors[shard]
			for _, p := range bufs[shard] {
				tmpNbr[cur[p.a]] = p.b
				cur[p.a]++
				tmpNbr[cur[p.b]] = p.a
				cur[p.b]++
			}
		}
	})

	// Pass 2a: sort + dedup each row in place; record final degrees.
	finalDeg := make([]int32, n)
	runShards(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := tmpNbr[rowStart[i]:rowStart[i+1]]
			slices.Sort(row)
			d := 0
			for j := range row {
				if j == 0 || row[j] != row[j-1] {
					row[d] = row[j]
					d++
				}
			}
			finalDeg[i] = int32(d)
		}
	})

	// Pass 2b: compact into the final CSR and compute weights, h_max, Δ.
	h.rowStart = make([]int32, n+1)
	var edges2 int64
	for i := 0; i < n; i++ {
		h.rowStart[i] = int32(edges2)
		edges2 += int64(finalDeg[i])
	}
	h.rowStart[n] = int32(edges2)
	h.info.Edges = edges2 / 2
	h.nbr = make([]int32, edges2)
	h.wt = make([]int64, edges2)
	hmaxs := make([]int64, workers)
	mdegs := make([]int, workers)
	runShards(workers, n, func(shard, lo, hi int) {
		var hmax int64
		mdeg := 0
		for i := lo; i < hi; i++ {
			src := tmpNbr[rowStart[i] : rowStart[i]+finalDeg[i]]
			dst := int(h.rowStart[i])
			ui := in.Txns[ids[i]].Node
			copy(h.nbr[dst:], src)
			for k, j := range src {
				wgt := in.Dist(ui, in.Txns[ids[j]].Node)
				h.wt[dst+k] = wgt
				if wgt > hmax {
					hmax = wgt
				}
			}
			if d := len(src); d > mdeg {
				mdeg = d
			}
		}
		hmaxs[shard] = hmax
		mdegs[shard] = mdeg
	})
	for shard := 0; shard < workers; shard++ {
		if hmaxs[shard] > h.hmax {
			h.hmax = hmaxs[shard]
		}
		if mdegs[shard] > h.mdeg {
			h.mdeg = mdegs[shard]
		}
	}
	h.info.Duration = time.Since(start)
	return h
}

// runShards splits [0, size) into contiguous chunks and runs fn on each,
// concurrently when workers > 1. fn receives its shard number and bounds;
// shard s always covers the same range for a given (workers, size), which
// keeps per-shard bookkeeping deterministic.
func runShards(workers, size int, fn func(shard, lo, hi int)) {
	if workers <= 1 || size <= 1 {
		fn(0, 0, size)
		return
	}
	chunk := (size + workers - 1) / workers
	done := make(chan struct{}, workers)
	launched := 0
	for shard := 0; shard < workers; shard++ {
		lo := shard * chunk
		hi := lo + chunk
		if lo >= size {
			// Late shards may be empty; still run fn so per-shard state
			// (degree buffers) exists for every shard index.
			lo, hi = size, size
		} else if hi > size {
			hi = size
		}
		launched++
		go func(shard, lo, hi int) {
			fn(shard, lo, hi)
			done <- struct{}{}
		}(shard, lo, hi)
	}
	for i := 0; i < launched; i++ {
		<-done
	}
}

// BuildReference is the pre-CSR map-of-maps construction, retained as the
// differential-testing oracle and the benchmark baseline that the parallel
// CSR build is measured against. It produces a DepGraph equal to
// BuildOpts' for every input (the CSR conversion sorts rows the same way).
func BuildReference(in *tm.Instance, ids []tm.TxnID) *DepGraph {
	start := time.Now()
	if ids == nil {
		ids = make([]tm.TxnID, in.NumTxns())
		for i := range ids {
			ids[i] = tm.TxnID(i)
		}
	}
	h := &DepGraph{IDs: ids}
	index := make(map[tm.TxnID]int, len(ids))
	adj := make([]map[int]int64, len(ids))
	for i, id := range ids {
		index[id] = i
		adj[i] = make(map[int]int64)
	}
	byObject := make(map[tm.ObjectID][]int)
	for i, id := range ids {
		for _, o := range in.Txns[id].Objects {
			byObject[o] = append(byObject[o], i)
		}
	}
	var pairs int64
	for _, members := range byObject {
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				i, j := members[x], members[y]
				pairs++
				if _, done := adj[i][j]; done {
					continue
				}
				w := in.Dist(in.Txns[ids[i]].Node, in.Txns[ids[j]].Node)
				adj[i][j] = w
				adj[j][i] = w
				if w > h.hmax {
					h.hmax = w
				}
			}
		}
	}
	n := len(ids)
	h.rowStart = make([]int32, n+1)
	var total int64
	for i := range adj {
		h.rowStart[i] = int32(total)
		total += int64(len(adj[i]))
		if d := len(adj[i]); d > h.mdeg {
			h.mdeg = d
		}
	}
	h.rowStart[n] = int32(total)
	h.nbr = make([]int32, total)
	h.wt = make([]int64, total)
	for i := range adj {
		row := h.nbr[h.rowStart[i]:h.rowStart[i+1]]
		k := 0
		for j := range adj[i] {
			row[k] = int32(j)
			k++
		}
		slices.Sort(row)
		for k, j := range row {
			h.wt[int(h.rowStart[i])+k] = adj[i][int(j)]
		}
	}
	h.info = BuildInfo{Workers: 1, Pairs: pairs, Edges: total / 2, Duration: time.Since(start)}
	return h
}

// Len returns the number of member transactions.
func (h *DepGraph) Len() int { return len(h.IDs) }

// HMax returns h_max, the maximum edge weight (0 when H has no edges).
func (h *DepGraph) HMax() int64 { return h.hmax }

// MaxDegree returns Δ, the maximum node degree.
func (h *DepGraph) MaxDegree() int { return h.mdeg }

// WeightedDegree returns Γ = h_max·Δ, the paper's weighted degree of H.
func (h *DepGraph) WeightedDegree() int64 { return h.hmax * int64(h.mdeg) }

// NumEdges returns the number of distinct undirected edges of H.
func (h *DepGraph) NumEdges() int64 { return h.info.Edges }

// Info returns the build instrumentation.
func (h *DepGraph) Info() BuildInfo { return h.info }

// Weight returns the edge weight between members with local indices i and
// j, or 0 if they do not conflict. Zero-allocation: a binary search over
// member i's sorted CSR row.
func (h *DepGraph) Weight(i, j int) int64 {
	lo, hi := h.rowStart[i], h.rowStart[i+1]
	row := h.nbr[lo:hi]
	x := int32(j)
	a, b := 0, len(row)
	for a < b {
		mid := int(uint(a+b) >> 1)
		if row[mid] < x {
			a = mid + 1
		} else {
			b = mid
		}
	}
	if a < len(row) && row[a] == x {
		return h.wt[int(lo)+a]
	}
	return 0
}

// Degree returns the degree of local member i.
func (h *DepGraph) Degree(i int) int { return int(h.rowStart[i+1] - h.rowStart[i]) }

// Neighbors returns member i's neighbor row: ascending local indices and
// the parallel edge weights. The slices alias the graph's CSR storage —
// read-only, zero-allocation.
func (h *DepGraph) Neighbors(i int) ([]int32, []int64) {
	lo, hi := h.rowStart[i], h.rowStart[i+1]
	return h.nbr[lo:hi], h.wt[lo:hi]
}

// GreedyColor colors H in the given local-index order (nil for natural
// order) and returns one execution time per member, aligned with IDs.
// Member u receives color k_u·h_max + 1 for the smallest k_u not used by
// an already-colored neighbor; by the pigeonhole argument of Section 2.3,
// k_u ≤ Δ, so every color is at most Γ+1. Distinct multiples of h_max
// differ by at least h_max ≥ every edge weight, making the coloring valid.
//
// order must be a permutation of the member indices; a partial order
// (wrong length, out-of-range index, or duplicate) panics rather than
// silently producing an invalid or incomplete coloring.
func (h *DepGraph) GreedyColor(order []int) []int64 {
	n := len(h.IDs)
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("depgraph: order has %d entries for %d members", len(order), n))
	}
	hmax := h.hmax
	if hmax == 0 {
		hmax = 1 // conflict-free: everyone runs at step 1
	}
	k := make([]int64, n)
	for i := range k {
		k[i] = -1
	}
	times := make([]int64, n)
	var used []bool
	for _, u := range order {
		if u < 0 || u >= n {
			panic(fmt.Sprintf("depgraph: order entry %d out of range for %d members", u, n))
		}
		if k[u] >= 0 {
			panic(fmt.Sprintf("depgraph: order lists member %d twice", u))
		}
		row := h.nbr[h.rowStart[u]:h.rowStart[u+1]]
		deg := len(row)
		if cap(used) < deg+1 {
			used = make([]bool, deg+1)
		}
		used = used[:deg+1]
		for i := range used {
			used[i] = false
		}
		for _, v := range row {
			if kv := k[v]; kv >= 0 && kv <= int64(deg) {
				used[kv] = true
			}
		}
		var ku int64
		for int(ku) <= deg && used[ku] {
			ku++
		}
		k[u] = ku
		times[u] = ku*hmax + 1
	}
	return times
}

// CheckColoring verifies that times is a valid coloring of H: positive
// times, with |t_i − t_j| ≥ weight(i, j) for every edge. It returns the
// first violation found.
func (h *DepGraph) CheckColoring(times []int64) error {
	if len(times) != len(h.IDs) {
		return fmt.Errorf("depgraph: %d times for %d members", len(times), len(h.IDs))
	}
	for i, t := range times {
		if t < 1 {
			return fmt.Errorf("depgraph: member %d has time %d < 1", i, t)
		}
		row, wts := h.Neighbors(i)
		for e, j := range row {
			w := wts[e]
			if d := times[i] - times[j]; d < w && -d < w {
				return fmt.Errorf("depgraph: members %d (t=%d) and %d (t=%d) violate weight %d",
					i, times[i], j, times[j], w)
			}
		}
	}
	return nil
}

// OrderByNode returns local indices sorted by the member transactions'
// node IDs — the deterministic default order used by the schedulers.
func (h *DepGraph) OrderByNode(in *tm.Instance) []int {
	order := make([]int, len(h.IDs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return in.Txns[h.IDs[order[a]]].Node < in.Txns[h.IDs[order[b]]].Node
	})
	return order
}
