// Package depgraph builds the transaction dependency (conflict) graph H of
// Section 2.3 and colors it greedily. Nodes of H are transactions; an edge
// joins two transactions that share at least one object, weighted by the
// shortest-path distance between their nodes in the communication graph.
// A valid coloring assigns each transaction a positive integer time step
// such that adjacent transactions' colors differ by at least the incident
// edge weight; greedy coloring uses at most Γ+1 = h_max·Δ+1 colors.
package depgraph

import (
	"fmt"
	"sort"

	"dtmsched/internal/tm"
)

// DepGraph is the weighted conflict graph over a set of transactions
// (possibly a subset of an instance's transactions, as the Grid and Cluster
// algorithms schedule tile by tile).
type DepGraph struct {
	// IDs lists the member transactions; local index i refers to IDs[i].
	IDs []tm.TxnID

	index map[tm.TxnID]int
	adj   []map[int]int64 // adj[i][j] = weight of edge {i, j}, both directions stored
	hmax  int64
	mdeg  int
}

// Build constructs H over the given transactions of in. A nil ids slice
// means all transactions. Edge weights come from the instance's metric.
func Build(in *tm.Instance, ids []tm.TxnID) *DepGraph {
	if ids == nil {
		ids = make([]tm.TxnID, in.NumTxns())
		for i := range ids {
			ids[i] = tm.TxnID(i)
		}
	}
	h := &DepGraph{
		IDs:   ids,
		index: make(map[tm.TxnID]int, len(ids)),
		adj:   make([]map[int]int64, len(ids)),
	}
	for i, id := range ids {
		h.index[id] = i
		h.adj[i] = make(map[int]int64)
	}
	// Conflicts: for each object, all pairs of member users conflict.
	// Group member transactions by object first to avoid scanning
	// non-member users.
	byObject := make(map[tm.ObjectID][]int)
	for i, id := range ids {
		for _, o := range in.Txns[id].Objects {
			byObject[o] = append(byObject[o], i)
		}
	}
	for _, members := range byObject {
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				i, j := members[x], members[y]
				if _, done := h.adj[i][j]; done {
					continue
				}
				w := in.Dist(in.Txns[ids[i]].Node, in.Txns[ids[j]].Node)
				h.adj[i][j] = w
				h.adj[j][i] = w
				if w > h.hmax {
					h.hmax = w
				}
			}
		}
	}
	for i := range h.adj {
		if d := len(h.adj[i]); d > h.mdeg {
			h.mdeg = d
		}
	}
	return h
}

// Len returns the number of member transactions.
func (h *DepGraph) Len() int { return len(h.IDs) }

// HMax returns h_max, the maximum edge weight (0 when H has no edges).
func (h *DepGraph) HMax() int64 { return h.hmax }

// MaxDegree returns Δ, the maximum node degree.
func (h *DepGraph) MaxDegree() int { return h.mdeg }

// WeightedDegree returns Γ = h_max·Δ, the paper's weighted degree of H.
func (h *DepGraph) WeightedDegree() int64 { return h.hmax * int64(h.mdeg) }

// Weight returns the edge weight between members with local indices i and
// j, or 0 if they do not conflict.
func (h *DepGraph) Weight(i, j int) int64 { return h.adj[i][j] }

// Degree returns the degree of local member i.
func (h *DepGraph) Degree(i int) int { return len(h.adj[i]) }

// GreedyColor colors H in the given local-index order (nil for natural
// order) and returns one execution time per member, aligned with IDs.
// Member u receives color k_u·h_max + 1 for the smallest k_u not used by
// an already-colored neighbor; by the pigeonhole argument of Section 2.3,
// k_u ≤ Δ, so every color is at most Γ+1. Distinct multiples of h_max
// differ by at least h_max ≥ every edge weight, making the coloring valid.
func (h *DepGraph) GreedyColor(order []int) []int64 {
	n := len(h.IDs)
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("depgraph: order has %d entries for %d members", len(order), n))
	}
	hmax := h.hmax
	if hmax == 0 {
		hmax = 1 // conflict-free: everyone runs at step 1
	}
	k := make([]int64, n)
	for i := range k {
		k[i] = -1
	}
	times := make([]int64, n)
	var used []bool
	for _, u := range order {
		deg := len(h.adj[u])
		if cap(used) < deg+1 {
			used = make([]bool, deg+1)
		}
		used = used[:deg+1]
		for i := range used {
			used[i] = false
		}
		for v := range h.adj[u] {
			if kv := k[v]; kv >= 0 && kv <= int64(deg) {
				used[kv] = true
			}
		}
		var ku int64
		for int(ku) <= deg && used[ku] {
			ku++
		}
		k[u] = ku
		times[u] = ku*hmax + 1
	}
	return times
}

// CheckColoring verifies that times is a valid coloring of H: positive
// times, with |t_i − t_j| ≥ weight(i, j) for every edge. It returns the
// first violation found.
func (h *DepGraph) CheckColoring(times []int64) error {
	if len(times) != len(h.IDs) {
		return fmt.Errorf("depgraph: %d times for %d members", len(times), len(h.IDs))
	}
	for i, t := range times {
		if t < 1 {
			return fmt.Errorf("depgraph: member %d has time %d < 1", i, t)
		}
		for j, w := range h.adj[i] {
			if d := times[i] - times[j]; d < w && -d < w {
				return fmt.Errorf("depgraph: members %d (t=%d) and %d (t=%d) violate weight %d",
					i, times[i], j, times[j], w)
			}
		}
	}
	return nil
}

// OrderByNode returns local indices sorted by the member transactions'
// node IDs — the deterministic default order used by the schedulers.
func (h *DepGraph) OrderByNode(in *tm.Instance) []int {
	order := make([]int, len(h.IDs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return in.Txns[h.IDs[order[a]]].Node < in.Txns[h.IDs[order[b]]].Node
	})
	return order
}
