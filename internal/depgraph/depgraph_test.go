package depgraph

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
)

// pathInstance: 5 nodes in a line; txn i at node i.
// objects: 0 shared by txns {0,1,2}; 1 shared by {2,4}.
func pathInstance() *tm.Instance {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{0, 1}},
		{Node: 3, Objects: nil},
		{Node: 4, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 4})
}

func TestBuildStructure(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Conflicts: {0,1},{0,2},{1,2} via obj0; {2,4} via obj1.
	if h.Degree(2) != 3 {
		t.Fatalf("Degree(txn2) = %d, want 3", h.Degree(2))
	}
	if h.Degree(3) != 0 {
		t.Fatalf("Degree(txn3) = %d, want 0", h.Degree(3))
	}
	if w := h.Weight(0, 2); w != 2 {
		t.Fatalf("Weight(0,2) = %d, want 2 (distance on the line)", w)
	}
	if w := h.Weight(0, 4); w != 0 {
		t.Fatalf("Weight(0,4) = %d, want 0 (no conflict)", w)
	}
	if h.HMax() != 2 {
		t.Fatalf("HMax = %d, want 2", h.HMax())
	}
	if h.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", h.MaxDegree())
	}
	if h.WeightedDegree() != 6 {
		t.Fatalf("WeightedDegree = %d, want 6", h.WeightedDegree())
	}
}

func TestBuildSubset(t *testing.T) {
	in := pathInstance()
	h := Build(in, []tm.TxnID{0, 1, 4})
	if h.Len() != 3 {
		t.Fatalf("subset Len = %d", h.Len())
	}
	// Only the {0,1} conflict survives (txn2 excluded).
	if h.MaxDegree() != 1 {
		t.Fatalf("subset MaxDegree = %d, want 1", h.MaxDegree())
	}
	if h.HMax() != 1 {
		t.Fatalf("subset HMax = %d, want 1", h.HMax())
	}
}

func TestGreedyColorValidAndBounded(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	times := h.GreedyColor(nil)
	if err := h.CheckColoring(times); err != nil {
		t.Fatalf("greedy coloring invalid: %v", err)
	}
	limit := h.WeightedDegree() + 1
	for i, tt := range times {
		if tt > limit {
			t.Fatalf("color %d of member %d exceeds Γ+1 = %d", tt, i, limit)
		}
	}
}

func TestGreedyColorConflictFree(t *testing.T) {
	g := graph.New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	in := tm.NewInstance(g, nil, 3, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{1}},
		{Node: 2, Objects: []tm.ObjectID{2}},
	}, []graph.NodeID{0, 1, 2})
	h := Build(in, nil)
	times := h.GreedyColor(nil)
	for _, tt := range times {
		if tt != 1 {
			t.Fatalf("conflict-free instance should run entirely at step 1, got %v", times)
		}
	}
}

func TestCheckColoringRejects(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	bad := []int64{1, 1, 2, 1, 5} // txns 0 and 1 conflict at distance 1, same color
	if err := h.CheckColoring(bad); err == nil {
		t.Fatal("CheckColoring accepted a clash")
	}
	if err := h.CheckColoring([]int64{1, 2}); err == nil {
		t.Fatal("CheckColoring accepted wrong length")
	}
	if err := h.CheckColoring([]int64{0, 2, 5, 1, 9}); err == nil {
		t.Fatal("CheckColoring accepted non-positive time")
	}
}

func TestGreedyColorPanicsOnBadOrder(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short order")
		}
	}()
	h.GreedyColor([]int{0, 1})
}

func TestOrderByNode(t *testing.T) {
	in := pathInstance()
	h := Build(in, []tm.TxnID{4, 0, 2})
	order := h.OrderByNode(in)
	// Members are [4 0 2]; node order 0,2,4 → local indices [1 2 0].
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("OrderByNode = %v, want %v", order, want)
		}
	}
}

func randomInstance(r *rand.Rand) *tm.Instance {
	n := 3 + r.Intn(24)
	w := 2 + r.Intn(8)
	k := 1 + r.Intn(minInt(w, 4))
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
	}
	return tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
}

// TestGreedyColoringValidProperty: on random instances and random coloring
// orders, the greedy coloring is always valid and within Γ+1.
func TestGreedyColoringValidProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		h := Build(in, nil)
		order := r.Perm(h.Len())
		times := h.GreedyColor(order)
		if h.CheckColoring(times) != nil {
			return false
		}
		limit := h.WeightedDegree() + 1
		if limit < 1 {
			limit = 1
		}
		for _, tt := range times {
			if tt > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightsSymmetricProperty: edge weights stored in both directions.
func TestWeightsSymmetricProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		h := Build(in, nil)
		for i := 0; i < h.Len(); i++ {
			for j := 0; j < h.Len(); j++ {
				if h.Weight(i, j) != h.Weight(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// csrEqual compares two graphs' flat CSR layouts byte for byte (offsets,
// neighbor rows, weights) plus the derived aggregates.
func csrEqual(t *testing.T, label string, a, b *DepGraph) {
	t.Helper()
	if !slices.Equal(a.rowStart, b.rowStart) {
		t.Fatalf("%s: rowStart differs", label)
	}
	if !slices.Equal(a.nbr, b.nbr) {
		t.Fatalf("%s: neighbor rows differ", label)
	}
	if !slices.Equal(a.wt, b.wt) {
		t.Fatalf("%s: edge weights differ", label)
	}
	if a.hmax != b.hmax || a.mdeg != b.mdeg {
		t.Fatalf("%s: hmax/mdeg = %d/%d vs %d/%d", label, a.hmax, a.mdeg, b.hmax, b.mdeg)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: edges = %d vs %d", label, a.NumEdges(), b.NumEdges())
	}
}

// TestBuildMatchesReference: the parallel CSR build and the pre-CSR
// map-of-maps reference construct identical graphs on random instances,
// for full and subset member sets.
func TestBuildMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		var ids []tm.TxnID
		if seed%3 == 1 { // every third case: a strict subset
			for i := 0; i < in.NumTxns(); i += 2 {
				ids = append(ids, tm.TxnID(i))
			}
		}
		want := BuildReference(in, ids)
		got := BuildOpts(in, ids, Options{Workers: 1 + int(seed%4)})
		csrEqual(t, "seed", got, want)
	}
}

// TestBuildDeterministicAcrossWorkers: the same instance yields identical
// CSR bytes, Γ, h_max, and greedy coloring at every worker count. Run
// under -race this also exercises the parallel build for data races.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Large enough that the auto policy would genuinely parallelize.
	n, w, k := 700, 150, 3
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
	}
	in := tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)

	base := BuildOpts(in, nil, Options{Workers: 1})
	baseTimes := base.GreedyColor(base.OrderByNode(in))
	if base.WeightedDegree() == 0 {
		t.Fatal("degenerate instance: no conflicts")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		h := BuildOpts(in, nil, Options{Workers: workers})
		csrEqual(t, "workers", h, base)
		if h.WeightedDegree() != base.WeightedDegree() {
			t.Fatalf("workers=%d: Γ = %d, want %d", workers, h.WeightedDegree(), base.WeightedDegree())
		}
		if !slices.Equal(h.GreedyColor(h.OrderByNode(in)), baseTimes) {
			t.Fatalf("workers=%d: greedy coloring differs", workers)
		}
	}
}

// TestBuildExternalIndex: building against a caller-maintained
// ConflictIndex (the windows extension's incremental reuse path) matches
// building from the instance's own cached index.
func TestBuildExternalIndex(t *testing.T) {
	in := pathInstance()
	index := tm.NewConflictIndex(in.NumObjects)
	for i := range in.Txns {
		index.Add(in.Txns[i].ID, in.Txns[i].Objects)
	}
	csrEqual(t, "external index", BuildOpts(in, nil, Options{Index: index}), Build(in, nil))

	// Remove txn 2 (the hub) from the index: builds over the index must
	// reflect the smaller member set even with ids = all.
	index.Remove(2, in.Txns[2].Objects)
	h := BuildOpts(in, nil, Options{Index: index})
	if h.Degree(2) != 0 {
		t.Fatalf("removed member still has degree %d", h.Degree(2))
	}
	if h.MaxDegree() != 1 {
		t.Fatalf("MaxDegree = %d after hub removal, want 1", h.MaxDegree())
	}
}

// TestCheckColoringEdgeCases: empty graphs, single members, and weight-0
// conflict pairs all round-trip through GreedyColor / CheckColoring.
func TestCheckColoringEdgeCases(t *testing.T) {
	in := pathInstance()

	t.Run("empty", func(t *testing.T) {
		h := Build(in, []tm.TxnID{})
		if h.Len() != 0 || h.HMax() != 0 || h.MaxDegree() != 0 || h.NumEdges() != 0 {
			t.Fatalf("empty graph: Len=%d HMax=%d Δ=%d edges=%d", h.Len(), h.HMax(), h.MaxDegree(), h.NumEdges())
		}
		if err := h.CheckColoring(h.GreedyColor(nil)); err != nil {
			t.Fatalf("empty coloring rejected: %v", err)
		}
		if err := h.CheckColoring([]int64{1}); err == nil {
			t.Fatal("CheckColoring accepted 1 time for 0 members")
		}
	})

	t.Run("single member", func(t *testing.T) {
		h := Build(in, []tm.TxnID{2})
		times := h.GreedyColor(nil)
		if len(times) != 1 || times[0] != 1 {
			t.Fatalf("single member times = %v, want [1]", times)
		}
		if err := h.CheckColoring(times); err != nil {
			t.Fatalf("single-member coloring rejected: %v", err)
		}
		if err := h.CheckColoring([]int64{0}); err == nil {
			t.Fatal("CheckColoring accepted time 0")
		}
	})

	t.Run("weight-0 conflict pair", func(t *testing.T) {
		// A metric that reports distance 0 between distinct nodes makes a
		// conflict edge of weight 0: the pair still counts toward degrees,
		// but any positive times (even equal ones) satisfy |ti−tj| ≥ 0.
		g := graph.New(2)
		g.AddUnitEdge(0, 1)
		zero := graph.FuncMetric(func(u, v graph.NodeID) int64 { return 0 })
		in0 := tm.NewInstance(g, zero, 1, []tm.Txn{
			{Node: 0, Objects: []tm.ObjectID{0}},
			{Node: 1, Objects: []tm.ObjectID{0}},
		}, []graph.NodeID{0})
		h := Build(in0, nil)
		if h.NumEdges() != 1 || h.HMax() != 0 || h.Degree(0) != 1 {
			t.Fatalf("weight-0 pair: edges=%d hmax=%d deg0=%d", h.NumEdges(), h.HMax(), h.Degree(0))
		}
		times := h.GreedyColor(nil)
		if err := h.CheckColoring(times); err != nil {
			t.Fatalf("weight-0 coloring rejected: %v", err)
		}
		if err := h.CheckColoring([]int64{3, 3}); err != nil {
			t.Fatalf("equal times rejected across a weight-0 edge: %v", err)
		}
	})
}

// TestGreedyColorPartialOrderPanics: every malformed caller-supplied order
// (short, long, out-of-range entry, duplicate entry) panics instead of
// silently producing a partial coloring.
func TestGreedyColorPartialOrderPanics(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	for name, order := range map[string][]int{
		"short":        {0, 1},
		"long":         {0, 1, 2, 3, 4, 0},
		"out of range": {0, 1, 2, 3, 5},
		"negative":     {0, 1, 2, 3, -1},
		"duplicate":    {0, 1, 2, 3, 3},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("GreedyColor accepted %s order %v", name, order)
				}
			}()
			h.GreedyColor(order)
		})
	}
}

// TestWarmCSRQueriesZeroAlloc: warm queries against a built graph are pure
// slice walks — the CI gate pins 0 allocs/op for Weight, Degree, Neighbors
// iteration, and CheckColoring.
func TestWarmCSRQueriesZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := randomInstance(r)
	h := Build(in, nil)
	times := h.GreedyColor(nil)
	var sink int64
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < h.Len(); i++ {
			for j := 0; j < h.Len(); j++ {
				sink += h.Weight(i, j)
			}
			sink += int64(h.Degree(i))
			row, wts := h.Neighbors(i)
			for e := range row {
				sink += int64(row[e]) + wts[e]
			}
		}
		if err := h.CheckColoring(times); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm CSR queries allocated %.1f allocs/op, want 0", allocs)
	}
	_ = sink
}
