package depgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
)

// pathInstance: 5 nodes in a line; txn i at node i.
// objects: 0 shared by txns {0,1,2}; 1 shared by {2,4}.
func pathInstance() *tm.Instance {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{0, 1}},
		{Node: 3, Objects: nil},
		{Node: 4, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 4})
}

func TestBuildStructure(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	if h.Len() != 5 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Conflicts: {0,1},{0,2},{1,2} via obj0; {2,4} via obj1.
	if h.Degree(2) != 3 {
		t.Fatalf("Degree(txn2) = %d, want 3", h.Degree(2))
	}
	if h.Degree(3) != 0 {
		t.Fatalf("Degree(txn3) = %d, want 0", h.Degree(3))
	}
	if w := h.Weight(0, 2); w != 2 {
		t.Fatalf("Weight(0,2) = %d, want 2 (distance on the line)", w)
	}
	if w := h.Weight(0, 4); w != 0 {
		t.Fatalf("Weight(0,4) = %d, want 0 (no conflict)", w)
	}
	if h.HMax() != 2 {
		t.Fatalf("HMax = %d, want 2", h.HMax())
	}
	if h.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", h.MaxDegree())
	}
	if h.WeightedDegree() != 6 {
		t.Fatalf("WeightedDegree = %d, want 6", h.WeightedDegree())
	}
}

func TestBuildSubset(t *testing.T) {
	in := pathInstance()
	h := Build(in, []tm.TxnID{0, 1, 4})
	if h.Len() != 3 {
		t.Fatalf("subset Len = %d", h.Len())
	}
	// Only the {0,1} conflict survives (txn2 excluded).
	if h.MaxDegree() != 1 {
		t.Fatalf("subset MaxDegree = %d, want 1", h.MaxDegree())
	}
	if h.HMax() != 1 {
		t.Fatalf("subset HMax = %d, want 1", h.HMax())
	}
}

func TestGreedyColorValidAndBounded(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	times := h.GreedyColor(nil)
	if err := h.CheckColoring(times); err != nil {
		t.Fatalf("greedy coloring invalid: %v", err)
	}
	limit := h.WeightedDegree() + 1
	for i, tt := range times {
		if tt > limit {
			t.Fatalf("color %d of member %d exceeds Γ+1 = %d", tt, i, limit)
		}
	}
}

func TestGreedyColorConflictFree(t *testing.T) {
	g := graph.New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	in := tm.NewInstance(g, nil, 3, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{1}},
		{Node: 2, Objects: []tm.ObjectID{2}},
	}, []graph.NodeID{0, 1, 2})
	h := Build(in, nil)
	times := h.GreedyColor(nil)
	for _, tt := range times {
		if tt != 1 {
			t.Fatalf("conflict-free instance should run entirely at step 1, got %v", times)
		}
	}
}

func TestCheckColoringRejects(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	bad := []int64{1, 1, 2, 1, 5} // txns 0 and 1 conflict at distance 1, same color
	if err := h.CheckColoring(bad); err == nil {
		t.Fatal("CheckColoring accepted a clash")
	}
	if err := h.CheckColoring([]int64{1, 2}); err == nil {
		t.Fatal("CheckColoring accepted wrong length")
	}
	if err := h.CheckColoring([]int64{0, 2, 5, 1, 9}); err == nil {
		t.Fatal("CheckColoring accepted non-positive time")
	}
}

func TestGreedyColorPanicsOnBadOrder(t *testing.T) {
	in := pathInstance()
	h := Build(in, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short order")
		}
	}()
	h.GreedyColor([]int{0, 1})
}

func TestOrderByNode(t *testing.T) {
	in := pathInstance()
	h := Build(in, []tm.TxnID{4, 0, 2})
	order := h.OrderByNode(in)
	// Members are [4 0 2]; node order 0,2,4 → local indices [1 2 0].
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("OrderByNode = %v, want %v", order, want)
		}
	}
}

func randomInstance(r *rand.Rand) *tm.Instance {
	n := 3 + r.Intn(24)
	w := 2 + r.Intn(8)
	k := 1 + r.Intn(minInt(w, 4))
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
	}
	return tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
}

// TestGreedyColoringValidProperty: on random instances and random coloring
// orders, the greedy coloring is always valid and within Γ+1.
func TestGreedyColoringValidProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		h := Build(in, nil)
		order := r.Perm(h.Len())
		times := h.GreedyColor(order)
		if h.CheckColoring(times) != nil {
			return false
		}
		limit := h.WeightedDegree() + 1
		if limit < 1 {
			limit = 1
		}
		for _, tt := range times {
			if tt > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightsSymmetricProperty: edge weights stored in both directions.
func TestWeightsSymmetricProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		h := Build(in, nil)
		for i := 0; i < h.Len(); i++ {
			for j := 0; j < h.Len(); j++ {
				if h.Weight(i, j) != h.Weight(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
