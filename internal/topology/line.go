package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Line is the path graph of Section 4: nodes v_0 … v_{n-1} in left-to-right
// orientation, with unit edges (v_i, v_{i+1}).
type Line struct {
	g *graph.Graph
	n int
}

// NewLine builds a line (path) of n ≥ 1 nodes.
func NewLine(n int) *Line {
	if n < 1 {
		panic(fmt.Sprintf("topology: line size %d < 1", n))
	}
	g := graph.NewNamed(fmt.Sprintf("line-%d", n), n)
	for i := 0; i+1 < n; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return &Line{g: g, n: n}
}

// Graph returns the underlying graph.
func (l *Line) Graph() *graph.Graph { return l.g }

// Kind returns KindLine.
func (l *Line) Kind() Kind { return KindLine }

// N returns the number of nodes.
func (l *Line) N() int { return l.n }

// Dist is |u − v|.
func (l *Line) Dist(u, v graph.NodeID) int64 { return abs64(int64(u) - int64(v)) }

// Diameter is n − 1.
func (l *Line) Diameter() int64 { return int64(l.n - 1) }

// Leftmost returns the smaller of two node IDs; the Line scheduler sweeps
// left to right, so "leftmost" is the natural ordering primitive.
func (l *Line) Leftmost(u, v graph.NodeID) graph.NodeID {
	if u < v {
		return u
	}
	return v
}
