package topology

import (
	"testing"

	"dtmsched/internal/graph"
)

// checkMetric asserts the topology's closed-form distance matches the
// graph's shortest paths on every pair.
func checkMetric(t *testing.T, topo Topology) {
	t.Helper()
	m := graph.FuncMetric(topo.Dist)
	if u, v, want, got, ok := graph.CheckMetricAgrees(topo.Graph(), m); !ok {
		t.Fatalf("%s: Dist(%d,%d) = %d, graph says %d", topo.Graph(), u, v, got, want)
	}
}

// checkDiameter asserts the closed-form diameter matches the graph.
func checkDiameter(t *testing.T, topo Topology) {
	t.Helper()
	if d, ok := topo.(Diameterer); ok {
		if got, want := d.Diameter(), topo.Graph().Diameter(); got != want {
			t.Fatalf("%s: Diameter() = %d, graph says %d", topo.Graph(), got, want)
		}
	}
}

func TestCliqueStructure(t *testing.T) {
	c := NewClique(6)
	g := c.Graph()
	if g.NumNodes() != 6 || g.NumEdges() != 15 {
		t.Fatalf("K6 has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	checkMetric(t, c)
	checkDiameter(t, c)
	if c.Kind() != KindClique || c.Kind().String() != "clique" {
		t.Fatalf("Kind = %v", c.Kind())
	}
}

func TestCliqueSingleton(t *testing.T) {
	c := NewClique(1)
	if c.Diameter() != 0 {
		t.Fatal("K1 diameter should be 0")
	}
	if c.Dist(0, 0) != 0 {
		t.Fatal("Dist(0,0) should be 0")
	}
}

func TestLineStructure(t *testing.T) {
	l := NewLine(10)
	if l.Graph().NumEdges() != 9 {
		t.Fatalf("line-10 has %d edges", l.Graph().NumEdges())
	}
	checkMetric(t, l)
	checkDiameter(t, l)
	if l.Leftmost(7, 3) != 3 {
		t.Fatal("Leftmost(7,3) != 3")
	}
}

func TestGridStructure(t *testing.T) {
	gr := NewGrid(4, 6)
	g := gr.Graph()
	if g.NumNodes() != 24 {
		t.Fatalf("4x6 grid has %d nodes", g.NumNodes())
	}
	// Edges: horizontal 4*5 + vertical 3*6 = 38.
	if g.NumEdges() != 38 {
		t.Fatalf("4x6 grid has %d edges, want 38", g.NumEdges())
	}
	checkMetric(t, gr)
	checkDiameter(t, gr)
	for id := 0; id < 24; id++ {
		r, c := gr.Coord(graph.NodeID(id))
		if gr.ID(r, c) != graph.NodeID(id) {
			t.Fatalf("coord round-trip failed for %d", id)
		}
	}
}

func TestGridDecompose(t *testing.T) {
	gr := NewSquareGrid(10)
	tiles := gr.Decompose(4) // 3x3 tiles, borders truncated
	if len(tiles) != 3 || len(tiles[0]) != 3 {
		t.Fatalf("Decompose(4) gave %dx%d tiles", len(tiles), len(tiles[0]))
	}
	seen := make(map[graph.NodeID]bool)
	for _, row := range tiles {
		for _, tile := range row {
			for _, v := range tile.Nodes(gr) {
				if seen[v] {
					t.Fatalf("node %d in two tiles", v)
				}
				seen[v] = true
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("tiles cover %d nodes, want 100", len(seen))
	}
	// Border tiles are truncated to 2 columns/rows.
	if tiles[2][2].R1-tiles[2][2].R0 != 2 || tiles[2][2].C1-tiles[2][2].C0 != 2 {
		t.Fatalf("border tile dims wrong: %+v", tiles[2][2])
	}
}

func TestSnakeOrder(t *testing.T) {
	gr := NewSquareGrid(8)
	tiles := gr.Decompose(4) // 2x2 tile grid
	order := SnakeOrder(tiles)
	want := [][2]int{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if len(order) != 4 {
		t.Fatalf("snake order has %d tiles", len(order))
	}
	for i, tile := range order {
		if tile.Row != want[i][0] || tile.Col != want[i][1] {
			t.Fatalf("snake[%d] = (%d,%d), want %v", i, tile.Row, tile.Col, want[i])
		}
	}
	if SnakeOrder(nil) != nil {
		t.Fatal("SnakeOrder(nil) should be nil")
	}
}

func TestHypercubeStructure(t *testing.T) {
	h := NewHypercube(4)
	g := h.Graph()
	if g.NumNodes() != 16 || g.NumEdges() != 32 { // n·dim/2
		t.Fatalf("Q4 has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	checkMetric(t, h)
	checkDiameter(t, h)
}

func TestHypercubeDim0(t *testing.T) {
	h := NewHypercube(0)
	if h.Graph().NumNodes() != 1 || h.Diameter() != 0 {
		t.Fatal("Q0 should be a single node")
	}
}

func TestButterflyStructure(t *testing.T) {
	b := NewButterfly(3)
	g := b.Graph()
	if g.NumNodes() != 32 { // (3+1)*8
		t.Fatalf("BF3 has %d nodes", g.NumNodes())
	}
	if g.NumEdges() != 48 { // dim * rows * 2
		t.Fatalf("BF3 has %d edges", g.NumEdges())
	}
	checkDiameter(t, b)
	for id := 0; id < 32; id++ {
		l, r := b.Coord(graph.NodeID(id))
		if b.ID(l, r) != graph.NodeID(id) {
			t.Fatalf("butterfly coord round-trip failed for %d", id)
		}
	}
	// Dist delegates to the graph, so agreement is trivially exact, but
	// verify a couple of hand values: same row across all levels.
	if d := b.Dist(b.ID(0, 0), b.ID(3, 0)); d != 3 {
		t.Fatalf("straight-line distance = %d, want 3", d)
	}
}

func TestClusterStructure(t *testing.T) {
	c := NewCluster(3, 4, 9)
	g := c.Graph()
	if g.NumNodes() != 12 {
		t.Fatalf("cluster graph has %d nodes", g.NumNodes())
	}
	// Edges: 3 cliques of C(4,2)=6 plus C(3,2)=3 bridges.
	if g.NumEdges() != 21 {
		t.Fatalf("cluster graph has %d edges, want 21", g.NumEdges())
	}
	checkMetric(t, c)
	checkDiameter(t, c)
	if c.ClusterOf(5) != 1 || c.Bridge(1) != 4 {
		t.Fatalf("cluster membership wrong: ClusterOf(5)=%d Bridge(1)=%d", c.ClusterOf(5), c.Bridge(1))
	}
	members := c.Members(2)
	if len(members) != 4 || members[0] != 8 || members[3] != 11 {
		t.Fatalf("Members(2) = %v", members)
	}
}

func TestClusterEdgeCases(t *testing.T) {
	// Single cluster: pure clique distances.
	c1 := NewCluster(1, 4, 9)
	checkMetric(t, c1)
	checkDiameter(t, c1)
	// Singleton clusters: pure bridge network.
	cb := NewCluster(4, 1, 3)
	checkMetric(t, cb)
	checkDiameter(t, cb)
}

func TestClusterGammaSmallerThanBetaStillExact(t *testing.T) {
	// The paper assumes γ ≥ β, but the closed form must stay exact even
	// for γ < β because bridge edges form a clique (never beneficial to
	// route through a third cluster when γ ≥ 1).
	c := NewCluster(3, 8, 2)
	checkMetric(t, c)
}

func TestStarStructure(t *testing.T) {
	s := NewStar(3, 5)
	g := s.Graph()
	if g.NumNodes() != 16 {
		t.Fatalf("star has %d nodes", g.NumNodes())
	}
	if g.NumEdges() != 15 { // a tree
		t.Fatalf("star has %d edges, want 15", g.NumEdges())
	}
	checkMetric(t, s)
	checkDiameter(t, s)
	for r := 0; r < 3; r++ {
		for p := 1; p <= 5; p++ {
			ray, pos := s.RayOf(s.ID(r, p))
			if ray != r || pos != p {
				t.Fatalf("RayOf(ID(%d,%d)) = (%d,%d)", r, p, ray, pos)
			}
		}
	}
	if ray, pos := s.RayOf(s.Center()); ray != -1 || pos != 0 {
		t.Fatalf("RayOf(center) = (%d,%d)", ray, pos)
	}
}

func TestStarSegments(t *testing.T) {
	s := NewStar(2, 7) // η = ceil(log2 7)+... segments: [1,1], [2,3], [4,7]
	if s.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d, want 3", s.NumSegments())
	}
	covered := make(map[int]int)
	for i := 1; i <= s.NumSegments(); i++ {
		for _, seg := range s.Segments(i) {
			if seg.Ray == 0 {
				for p := seg.Lo; p <= seg.Hi; p++ {
					covered[p]++
				}
				if seg.Distance != seg.Lo {
					t.Fatalf("segment %d distance %d != lo %d", i, seg.Distance, seg.Lo)
				}
			}
		}
	}
	for p := 1; p <= 7; p++ {
		if covered[p] != 1 {
			t.Fatalf("position %d covered %d times", p, covered[p])
		}
	}
}

func TestStarSingleRay(t *testing.T) {
	s := NewStar(1, 4)
	checkMetric(t, s)
	checkDiameter(t, s)
}

func TestTorusStructure(t *testing.T) {
	to := NewTorus(4, 5)
	g := to.Graph()
	if g.NumNodes() != 20 || g.NumEdges() != 40 { // 2 edges per node
		t.Fatalf("torus has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	checkMetric(t, to)
	checkDiameter(t, to)
}

func TestLBGridStructure(t *testing.T) {
	l := NewLBGrid(4) // s=4: 4 rows × 8 cols, 4 blocks of 4×2
	g := l.Graph()
	if g.NumNodes() != 32 {
		t.Fatalf("lbgrid s=4 has %d nodes, want 32", g.NumNodes())
	}
	checkMetric(t, l)
	if l.Block(l.ID(0, 0)) != 0 || l.Block(l.ID(3, 7)) != 3 {
		t.Fatal("block membership wrong")
	}
	if len(l.BlockNodes(1)) != 8 {
		t.Fatalf("block has %d nodes, want 8", len(l.BlockNodes(1)))
	}
	// Inter-block distance is at least s.
	for _, u := range l.BlockNodes(0) {
		for _, v := range l.BlockNodes(1) {
			if d := l.Dist(u, v); d < 4 {
				t.Fatalf("Dist(%d,%d) = %d < s across blocks", u, v, d)
			}
		}
	}
	if l.Diameter() != l.Graph().Diameter() {
		t.Fatalf("lbgrid diameter mismatch: %d vs %d", l.Diameter(), l.Graph().Diameter())
	}
}

func TestLBGridRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square s")
		}
	}()
	NewLBGrid(5)
}

func TestLBTreeStructure(t *testing.T) {
	l := NewLBTree(4)
	g := l.Graph()
	if g.NumNodes() != 32 {
		t.Fatalf("lbtree s=4 has %d nodes", g.NumNodes())
	}
	// A tree has exactly n−1 edges and is connected.
	if g.NumEdges() != 31 {
		t.Fatalf("lbtree has %d edges, want 31 (tree)", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("lbtree disconnected")
	}
	checkMetric(t, l)
	if l.Diameter() != l.Graph().Diameter() {
		t.Fatalf("lbtree diameter mismatch: %d vs %d", l.Diameter(), l.Graph().Diameter())
	}
	for _, u := range l.BlockNodes(0) {
		for _, v := range l.BlockNodes(2) {
			if d := l.Dist(u, v); d < 8 { // ≥ 2 bridges
				t.Fatalf("Dist(%d,%d) = %d across two bridges", u, v, d)
			}
		}
	}
}

func TestLBTreeLargerMetric(t *testing.T) {
	// s=9 exercises truncation-free odd √s and cross-block paths with
	// intermediate top-row traversals.
	checkMetric(t, NewLBTree(9))
	checkMetric(t, NewLBGrid(9))
}

func TestKindStrings(t *testing.T) {
	if KindLBTree.String() != "lbtree" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

func TestDiameterHelper(t *testing.T) {
	// Diameter() falls back to the graph when Diameterer is absent; all
	// our topologies implement it, so just confirm the helper agrees.
	c := NewClique(5)
	if Diameter(c) != 1 {
		t.Fatal("Diameter helper broken")
	}
}
