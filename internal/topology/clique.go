package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Clique is the unweighted complete graph K_n of Section 3: every pair of
// nodes is joined by an edge of weight 1.
type Clique struct {
	g *graph.Graph
	n int
}

// NewClique builds K_n. n must be ≥ 1.
func NewClique(n int) *Clique {
	if n < 1 {
		panic(fmt.Sprintf("topology: clique size %d < 1", n))
	}
	g := graph.NewNamed(fmt.Sprintf("clique-%d", n), n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddUnitEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return &Clique{g: g, n: n}
}

// Graph returns the underlying graph.
func (c *Clique) Graph() *graph.Graph { return c.g }

// Kind returns KindClique.
func (c *Clique) Kind() Kind { return KindClique }

// N returns the number of nodes.
func (c *Clique) N() int { return c.n }

// Dist is 0 for u == v and 1 otherwise.
func (c *Clique) Dist(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	return 1
}

// Diameter of a clique with ≥ 2 nodes is 1.
func (c *Clique) Diameter() int64 {
	if c.n <= 1 {
		return 0
	}
	return 1
}
