package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Butterfly is the dim-dimensional (unwrapped) butterfly network of
// Section 3.1, a standard supercomputer interconnect (Leighton 1992). It
// has (dim+1)·2^dim nodes arranged in dim+1 levels of 2^dim rows. Node
// ⟨level, row⟩ at level i < dim connects to ⟨i+1, row⟩ (straight edge) and
// ⟨i+1, row XOR 2^i⟩ (cross edge). Its diameter is 2·dim = Θ(log n).
type Butterfly struct {
	g   *graph.Graph
	dim int
}

// NewButterfly builds the dim-dimensional butterfly, dim ≥ 1.
func NewButterfly(dim int) *Butterfly {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("topology: butterfly dimension %d out of range [1,20]", dim))
	}
	rows := 1 << dim
	n := (dim + 1) * rows
	g := graph.NewNamed(fmt.Sprintf("butterfly-%d", dim), n)
	id := func(level, row int) graph.NodeID { return graph.NodeID(level*rows + row) }
	for level := 0; level < dim; level++ {
		for row := 0; row < rows; row++ {
			g.AddUnitEdge(id(level, row), id(level+1, row))
			g.AddUnitEdge(id(level, row), id(level+1, row^(1<<level)))
		}
	}
	return &Butterfly{g: g, dim: dim}
}

// Graph returns the underlying graph.
func (b *Butterfly) Graph() *graph.Graph { return b.g }

// Kind returns KindButterfly.
func (b *Butterfly) Kind() Kind { return KindButterfly }

// Dim returns the butterfly dimension.
func (b *Butterfly) Dim() int { return b.dim }

// Levels returns dim+1, the number of levels.
func (b *Butterfly) Levels() int { return b.dim + 1 }

// Rows returns 2^dim, the number of rows.
func (b *Butterfly) Rows() int { return 1 << b.dim }

// ID returns the node at the given level and row.
func (b *Butterfly) ID(level, row int) graph.NodeID {
	rows := b.Rows()
	if level < 0 || level > b.dim || row < 0 || row >= rows {
		panic(fmt.Sprintf("topology: butterfly coordinate (%d,%d) out of range", level, row))
	}
	return graph.NodeID(level*rows + row)
}

// Coord returns the (level, row) of node id.
func (b *Butterfly) Coord(id graph.NodeID) (level, row int) {
	rows := b.Rows()
	return int(id) / rows, int(id) % rows
}

// Dist delegates to BFS on the graph; the butterfly has no simple exact
// closed form for arbitrary pairs, and its node counts stay modest
// ((d+1)·2^d), so memoized BFS is cheap.
func (b *Butterfly) Dist(u, v graph.NodeID) int64 { return b.g.Dist(u, v) }

// graphMetricFallback marks the butterfly metric as graph-backed.
func (b *Butterfly) graphMetricFallback() {}

// Diameter is 2·dim: route up to level dim fixing bits, then back down.
func (b *Butterfly) Diameter() int64 { return int64(2 * b.dim) }
