package topology

import (
	"fmt"
	"math/bits"

	"dtmsched/internal/graph"
)

// Hypercube is the dim-dimensional boolean hypercube of Section 3.1:
// n = 2^dim nodes, with an edge between nodes whose IDs differ in exactly
// one bit. Shortest-path distance is Hamming distance, so the diameter is
// dim = log₂ n.
type Hypercube struct {
	g   *graph.Graph
	dim int
}

// NewHypercube builds the dim-dimensional hypercube, dim ≥ 0 (dim = 0 is a
// single node).
func NewHypercube(dim int) *Hypercube {
	if dim < 0 || dim > 30 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range [0,30]", dim))
	}
	n := 1 << dim
	g := graph.NewNamed(fmt.Sprintf("hypercube-%d", dim), n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddUnitEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return &Hypercube{g: g, dim: dim}
}

// Graph returns the underlying graph.
func (h *Hypercube) Graph() *graph.Graph { return h.g }

// Kind returns KindHypercube.
func (h *Hypercube) Kind() Kind { return KindHypercube }

// Dim returns the dimension (log₂ of the node count).
func (h *Hypercube) Dim() int { return h.dim }

// Dist is the Hamming distance between the node IDs.
func (h *Hypercube) Dist(u, v graph.NodeID) int64 {
	return int64(bits.OnesCount32(uint32(u) ^ uint32(v)))
}

// Diameter is dim.
func (h *Hypercube) Diameter() int64 { return int64(h.dim) }
