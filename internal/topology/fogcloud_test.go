package topology

import (
	"testing"

	"dtmsched/internal/graph"
)

func TestFogCloudTierMembership(t *testing.T) {
	// Cloud → 2 fog nodes → 3 edge nodes each: 1 + 2 + 6 = 9 nodes.
	fc := NewFogCloud([]int{2, 3}, []int64{4, 1})
	if got := fc.Graph().NumNodes(); got != 9 {
		t.Fatalf("nodes = %d, want 9", got)
	}
	if fc.Tiers() != 3 {
		t.Fatalf("tiers = %d, want 3", fc.Tiers())
	}
	if fc.Kind() != KindFogCloud || fc.Kind().String() != "fogcloud" {
		t.Fatalf("Kind = %v (%q)", fc.Kind(), fc.Kind().String())
	}
	wantTiers := []struct {
		tier  int
		nodes []graph.NodeID
	}{
		{0, []graph.NodeID{0}},
		{1, []graph.NodeID{1, 2}},
		{2, []graph.NodeID{3, 4, 5, 6, 7, 8}},
	}
	for _, wt := range wantTiers {
		got := fc.TierNodes(wt.tier)
		if len(got) != len(wt.nodes) {
			t.Fatalf("tier %d has %d nodes, want %d", wt.tier, len(got), len(wt.nodes))
		}
		for i, u := range wt.nodes {
			if got[i] != u {
				t.Fatalf("tier %d node %d = %d, want %d", wt.tier, i, got[i], u)
			}
			if fc.TierOf(u) != wt.tier {
				t.Fatalf("TierOf(%d) = %d, want %d", u, fc.TierOf(u), wt.tier)
			}
		}
	}
	parents := map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 6: 2, 7: 2, 8: 2}
	for u, p := range parents {
		if fc.Parent(u) != p {
			t.Fatalf("Parent(%d) = %d, want %d", u, fc.Parent(u), p)
		}
	}
	for _, tc := range []struct {
		u, v, lca graph.NodeID
	}{{3, 5, 1}, {6, 8, 2}, {3, 6, 0}, {4, 4, 4}, {1, 5, 1}, {0, 8, 0}} {
		if got := fc.LCA(tc.u, tc.v); got != tc.lca {
			t.Fatalf("LCA(%d,%d) = %d, want %d", tc.u, tc.v, got, tc.lca)
		}
	}
	if fc.Ancestor(7, 1) != 2 || fc.Ancestor(7, 2) != 7 || fc.Ancestor(2, 1) != 2 {
		t.Fatal("Ancestor walk wrong")
	}
	// Weighted distances: sibling edges 2, cross-subtree 2·(4+1) = 10.
	for _, tc := range []struct {
		u, v graph.NodeID
		d    int64
	}{{3, 4, 2}, {3, 6, 10}, {0, 3, 5}, {1, 2, 8}, {2, 5, 9}} {
		if got := fc.Dist(tc.u, tc.v); got != tc.d {
			t.Fatalf("Dist(%d,%d) = %d, want %d", tc.u, tc.v, got, tc.d)
		}
	}
}

func TestFogCloudMetricAndDiameter(t *testing.T) {
	for _, fc := range []*FogCloud{
		NewFogCloud([]int{2, 3}, []int64{4, 1}),
		NewFogCloud([]int{3, 2, 2}, []int64{9, 3, 1}),
		NewFogCloud([]int{1, 4}, []int64{7, 2}), // path above the branching tier
		NewFogCloud([]int{4}, []int64{5}),       // two tiers only
		NewFogCloud([]int{1, 1}, []int64{3, 2}), // pure path
	} {
		checkMetric(t, fc)
		checkDiameter(t, fc)
	}
}

func TestFogCloudMetricProperties(t *testing.T) {
	fc := NewFogCloud([]int{2, 2, 3}, []int64{8, 3, 1})
	n := fc.Graph().NumNodes()
	for u := 0; u < n; u++ {
		if fc.Dist(graph.NodeID(u), graph.NodeID(u)) != 0 {
			t.Fatalf("Dist(%d,%d) != 0", u, u)
		}
		for v := 0; v < n; v++ {
			duv := fc.Dist(graph.NodeID(u), graph.NodeID(v))
			if duv != fc.Dist(graph.NodeID(v), graph.NodeID(u)) {
				t.Fatalf("asymmetric at (%d,%d)", u, v)
			}
			if u != v && duv < 1 {
				t.Fatalf("Dist(%d,%d) = %d < 1", u, v, duv)
			}
			for x := 0; x < n; x++ {
				if through := fc.Dist(graph.NodeID(u), graph.NodeID(x)) + fc.Dist(graph.NodeID(x), graph.NodeID(v)); duv > through {
					t.Fatalf("triangle inequality fails: d(%d,%d)=%d > %d via %d", u, v, duv, through, x)
				}
			}
		}
	}
}

func TestFogCloudClosedFormMetric(t *testing.T) {
	fc := NewFogCloud([]int{2, 4}, []int64{6, 1})
	if MetricFallsBackToGraph(fc) {
		t.Fatal("fogcloud has a closed-form metric; it must not fall back to graph search")
	}
}

func TestFogCloudBadDims(t *testing.T) {
	for name, fn := range map[string]func(){
		"no levels":      func() { NewFogCloud(nil, nil) },
		"zero fanout":    func() { NewFogCloud([]int{2, 0}, []int64{2, 1}) },
		"zero weight":    func() { NewFogCloud([]int{2, 2}, []int64{2, 0}) },
		"weight arity":   func() { NewFogCloud([]int{2, 2}, []int64{2}) },
		"above ancestor": func() { NewFogCloud([]int{2}, []int64{1}).Ancestor(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
