package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Ring is the n-node cycle: the wraparound variant of the Line, modeling
// token-ring buses and chassis interconnects. The greedy schedule applies
// with diameter ⌊n/2⌋; the Line algorithm's decomposition also carries
// over by cutting the ring at any point (the facade uses greedy).
type Ring struct {
	g *graph.Graph
	n int
}

// NewRing builds the n-node cycle, n ≥ 3.
func NewRing(n int) *Ring {
	if n < 3 {
		panic(fmt.Sprintf("topology: ring size %d < 3", n))
	}
	g := graph.NewNamed(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return &Ring{g: g, n: n}
}

// Graph returns the underlying graph.
func (r *Ring) Graph() *graph.Graph { return r.g }

// Kind reports KindLine: the ring is the line's wraparound sibling.
func (r *Ring) Kind() Kind { return KindLine }

// N returns the node count.
func (r *Ring) N() int { return r.n }

// Dist is the shorter way around.
func (r *Ring) Dist(u, v graph.NodeID) int64 {
	d := abs64(int64(u) - int64(v))
	if w := int64(r.n) - d; w < d {
		d = w
	}
	return d
}

// Diameter is ⌊n/2⌋.
func (r *Ring) Diameter() int64 { return int64(r.n / 2) }
