package topology

import (
	"fmt"
	"math/rand"

	"dtmsched/internal/graph"
)

// Stretched wraps a topology whose edge weights have been scaled by
// per-edge factors in [1, factor] — the paper's Section 9 remark that in
// a not-completely-synchronous system "our bounds are affected by the
// synchronicity factor (maximum delay divided by minimum delay)". A
// Stretched topology models that asynchrony as heterogeneous link delays;
// experiment E17 measures how the schedulers' ratios degrade with it.
//
// Distances are served by the stretched graph's shortest paths (closed
// forms do not survive random scaling).
type Stretched struct {
	g      *graph.Graph
	base   Topology
	factor int64
}

// Stretch rebuilds t's graph with every edge weight multiplied by an
// independent uniform integer factor in [1, factor]. factor = 1 returns
// an identical copy.
func Stretch(r *rand.Rand, t Topology, factor int64) *Stretched {
	if factor < 1 {
		panic(fmt.Sprintf("topology: stretch factor %d < 1", factor))
	}
	base := t.Graph()
	n := base.NumNodes()
	g := graph.NewNamed(fmt.Sprintf("%s-stretch%d", base.Name(), factor), n)
	for u := 0; u < n; u++ {
		for _, e := range base.SortedNeighbors(graph.NodeID(u)) {
			if int(e.To) < u {
				continue // add each undirected edge once
			}
			w := e.Weight * (1 + r.Int63n(factor))
			g.AddEdge(graph.NodeID(u), e.To, w)
		}
	}
	return &Stretched{g: g, base: t, factor: factor}
}

// Graph returns the stretched graph.
func (s *Stretched) Graph() *graph.Graph { return s.g }

// Kind reports the base topology's kind.
func (s *Stretched) Kind() Kind { return s.base.Kind() }

// Base returns the topology that was stretched.
func (s *Stretched) Base() Topology { return s.base }

// Factor returns the maximum per-edge scaling factor.
func (s *Stretched) Factor() int64 { return s.factor }

// Dist delegates to the stretched graph's shortest paths.
func (s *Stretched) Dist(u, v graph.NodeID) int64 { return s.g.Dist(u, v) }

// graphMetricFallback marks the stretched metric as graph-backed.
func (s *Stretched) graphMetricFallback() {}

// Synchronicity returns the realized max/min edge-delay ratio.
func (s *Stretched) Synchronicity() float64 {
	var lo, hi int64
	for u := 0; u < s.g.NumNodes(); u++ {
		for _, e := range s.g.Neighbors(graph.NodeID(u)) {
			if lo == 0 || e.Weight < lo {
				lo = e.Weight
			}
			if e.Weight > hi {
				hi = e.Weight
			}
		}
	}
	if lo == 0 {
		return 1
	}
	return float64(hi) / float64(lo)
}
