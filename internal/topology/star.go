package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Star is the Section 7 topology: a center node s and α rays, each ray a
// line of β nodes whose tip is adjacent to s. All edges have weight 1.
//
// Node layout: node 0 is the center; ray r (0-based) occupies IDs
// 1 + r*β … 1 + r*β + (β−1), ordered by distance from the center, so the
// node at "position" p ∈ [1, β] of ray r is at distance p from s.
type Star struct {
	g     *graph.Graph
	alpha int
	beta  int
}

// NewStar builds a star with alpha ≥ 1 rays of beta ≥ 1 nodes.
func NewStar(alpha, beta int) *Star {
	if alpha < 1 || beta < 1 {
		panic(fmt.Sprintf("topology: star %dx%d has empty dimension", alpha, beta))
	}
	n := 1 + alpha*beta
	g := graph.NewNamed(fmt.Sprintf("star-%dx%d", alpha, beta), n)
	for r := 0; r < alpha; r++ {
		base := 1 + r*beta
		g.AddUnitEdge(0, graph.NodeID(base))
		for p := 0; p+1 < beta; p++ {
			g.AddUnitEdge(graph.NodeID(base+p), graph.NodeID(base+p+1))
		}
	}
	return &Star{g: g, alpha: alpha, beta: beta}
}

// Graph returns the underlying graph.
func (s *Star) Graph() *graph.Graph { return s.g }

// Kind returns KindStar.
func (s *Star) Kind() Kind { return KindStar }

// Alpha returns the number of rays.
func (s *Star) Alpha() int { return s.alpha }

// Beta returns the nodes per ray.
func (s *Star) Beta() int { return s.beta }

// Center returns the center node's ID (always 0).
func (s *Star) Center() graph.NodeID { return 0 }

// RayOf returns the ray index of u and its 1-based position (distance from
// the center). The center itself reports ray −1, position 0.
func (s *Star) RayOf(u graph.NodeID) (ray, pos int) {
	if u == 0 {
		return -1, 0
	}
	i := int(u) - 1
	return i / s.beta, i%s.beta + 1
}

// ID returns the node at 1-based position pos of ray r.
func (s *Star) ID(r, pos int) graph.NodeID {
	if r < 0 || r >= s.alpha || pos < 1 || pos > s.beta {
		panic(fmt.Sprintf("topology: star coordinate (ray %d, pos %d) out of range", r, pos))
	}
	return graph.NodeID(1 + r*s.beta + pos - 1)
}

// Dist: within a ray it is |p_u − p_v|; across rays (or to the center) the
// route passes through the center, giving p_u + p_v.
func (s *Star) Dist(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	ru, pu := s.RayOf(u)
	rv, pv := s.RayOf(v)
	if ru == rv && ru >= 0 {
		return abs64(int64(pu) - int64(pv))
	}
	return int64(pu) + int64(pv)
}

// Diameter is 2β for α ≥ 2 rays (tip to tip), β for a single ray.
func (s *Star) Diameter() int64 {
	if s.alpha == 1 {
		return int64(s.beta)
	}
	return 2 * int64(s.beta)
}

// Segment identifies one exponentially sized ray piece of the Section 7
// decomposition: segment i (1-based) of a ray holds positions
// 2^(i−1) … 2^i − 1, with the last segment truncated at β.
type Segment struct {
	Index    int // 1-based segment index i
	Ray      int // ray index
	Lo, Hi   int // 1-based position range [Lo, Hi], inclusive
	Distance int // distance of the segment's nearest node to the center: 2^(i−1)
}

// Nodes returns the node IDs of the segment, nearest-to-center first.
func (sg Segment) Nodes(s *Star) []graph.NodeID {
	out := make([]graph.NodeID, 0, sg.Hi-sg.Lo+1)
	for p := sg.Lo; p <= sg.Hi; p++ {
		out = append(out, s.ID(sg.Ray, p))
	}
	return out
}

// NumSegments returns η = ⌈log₂ β⌉ segments per ray (minimum 1).
func (s *Star) NumSegments() int {
	eta := 0
	for (1 << eta) <= s.beta {
		eta++
	}
	if eta < 1 {
		eta = 1
	}
	return eta
}

// Segments returns the ith (1-based) segment of every ray. Segments past
// the end of short rays are empty and omitted.
func (s *Star) Segments(i int) []Segment {
	lo := 1 << (i - 1)
	hi := 1<<i - 1
	if hi > s.beta {
		hi = s.beta
	}
	if lo > s.beta {
		return nil
	}
	out := make([]Segment, 0, s.alpha)
	for r := 0; r < s.alpha; r++ {
		out = append(out, Segment{Index: i, Ray: r, Lo: lo, Hi: hi, Distance: lo})
	}
	return out
}
