package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// MultiGrid is the d-dimensional mesh mentioned in Section 3.1 (log n-
// dimensional grids have diameter O(log n), so the greedy schedule gives
// the same O(k·log n) bound as the hypercube — of which the 2×2×…×2
// multigrid is exactly the special case).
//
// Node IDs are mixed-radix over dims: the last dimension varies fastest.
type MultiGrid struct {
	g    *graph.Graph
	dims []int
	strd []int // strides per dimension
}

// NewMultiGrid builds the mesh with the given per-dimension sizes (each
// ≥ 1, at least one dimension).
func NewMultiGrid(dims ...int) *MultiGrid {
	if len(dims) == 0 {
		panic("topology: multigrid needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("topology: multigrid dimension %d < 1", d))
		}
		if n > 1<<26/d {
			panic("topology: multigrid too large")
		}
		n *= d
	}
	strd := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strd[i] = s
		s *= dims[i]
	}
	g := graph.NewNamed(fmt.Sprintf("multigrid-%v", dims), n)
	coord := make([]int, len(dims))
	for id := 0; id < n; id++ {
		for axis := range dims {
			if coord[axis]+1 < dims[axis] {
				g.AddUnitEdge(graph.NodeID(id), graph.NodeID(id+strd[axis]))
			}
		}
		// Increment mixed-radix coordinate.
		for axis := len(dims) - 1; axis >= 0; axis-- {
			coord[axis]++
			if coord[axis] < dims[axis] {
				break
			}
			coord[axis] = 0
		}
	}
	dcopy := make([]int, len(dims))
	copy(dcopy, dims)
	return &MultiGrid{g: g, dims: dcopy, strd: strd}
}

// Graph returns the underlying graph.
func (m *MultiGrid) Graph() *graph.Graph { return m.g }

// Kind reports KindGrid: the multigrid generalizes the planar mesh.
func (m *MultiGrid) Kind() Kind { return KindGrid }

// Dims returns a copy of the per-dimension sizes.
func (m *MultiGrid) Dims() []int {
	out := make([]int, len(m.dims))
	copy(out, m.dims)
	return out
}

// Coord returns the mixed-radix coordinate of id.
func (m *MultiGrid) Coord(id graph.NodeID) []int {
	out := make([]int, len(m.dims))
	rem := int(id)
	for axis := range m.dims {
		out[axis] = rem / m.strd[axis]
		rem %= m.strd[axis]
	}
	return out
}

// ID returns the node at the given coordinate.
func (m *MultiGrid) ID(coord ...int) graph.NodeID {
	if len(coord) != len(m.dims) {
		panic(fmt.Sprintf("topology: multigrid coordinate has %d axes, want %d", len(coord), len(m.dims)))
	}
	id := 0
	for axis, c := range coord {
		if c < 0 || c >= m.dims[axis] {
			panic(fmt.Sprintf("topology: multigrid coordinate %d out of range on axis %d", c, axis))
		}
		id += c * m.strd[axis]
	}
	return graph.NodeID(id)
}

// Dist is the L1 (Manhattan) distance over all dimensions.
func (m *MultiGrid) Dist(u, v graph.NodeID) int64 {
	var d int64
	ru, rv := int(u), int(v)
	for axis := range m.dims {
		cu := ru / m.strd[axis]
		cv := rv / m.strd[axis]
		ru %= m.strd[axis]
		rv %= m.strd[axis]
		d += abs64(int64(cu) - int64(cv))
	}
	return d
}

// Diameter is Σ (dims[i] − 1).
func (m *MultiGrid) Diameter() int64 {
	var d int64
	for _, x := range m.dims {
		d += int64(x - 1)
	}
	return d
}
