package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Grid is the rows×cols mesh of Section 5. Nodes are laid out row-major:
// node (r, c) has ID r*cols + c, with (0, 0) at the top left matching the
// paper's orientation. All edges have weight 1 and connect 4-neighbors.
type Grid struct {
	g          *graph.Graph
	rows, cols int
}

// NewGrid builds a rows×cols mesh; both dimensions must be ≥ 1.
func NewGrid(rows, cols int) *Grid {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("topology: grid %dx%d has empty dimension", rows, cols))
	}
	g := graph.NewNamed(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := graph.NodeID(r*cols + c)
			if c+1 < cols {
				g.AddUnitEdge(id, id+1)
			}
			if r+1 < rows {
				g.AddUnitEdge(id, graph.NodeID((r+1)*cols+c))
			}
		}
	}
	return &Grid{g: g, rows: rows, cols: cols}
}

// NewSquareGrid builds the paper's n×n grid.
func NewSquareGrid(n int) *Grid { return NewGrid(n, n) }

// Graph returns the underlying graph.
func (gr *Grid) Graph() *graph.Graph { return gr.g }

// Kind returns KindGrid.
func (gr *Grid) Kind() Kind { return KindGrid }

// Rows returns the number of rows.
func (gr *Grid) Rows() int { return gr.rows }

// Cols returns the number of columns.
func (gr *Grid) Cols() int { return gr.cols }

// ID returns the node at row r, column c.
func (gr *Grid) ID(r, c int) graph.NodeID {
	if r < 0 || r >= gr.rows || c < 0 || c >= gr.cols {
		panic(fmt.Sprintf("topology: grid coordinate (%d,%d) outside %dx%d", r, c, gr.rows, gr.cols))
	}
	return graph.NodeID(r*gr.cols + c)
}

// Coord returns the (row, column) of node id.
func (gr *Grid) Coord(id graph.NodeID) (r, c int) {
	return int(id) / gr.cols, int(id) % gr.cols
}

// Dist is the Manhattan distance.
func (gr *Grid) Dist(u, v graph.NodeID) int64 {
	ur, uc := gr.Coord(u)
	vr, vc := gr.Coord(v)
	return abs64(int64(ur)-int64(vr)) + abs64(int64(uc)-int64(vc))
}

// Diameter is (rows−1) + (cols−1).
func (gr *Grid) Diameter() int64 { return int64(gr.rows-1) + int64(gr.cols-1) }

// Subgrid identifies one √ξ×√ξ tile in the Section 5 decomposition.
type Subgrid struct {
	// Row and Col index the tile within the tile grid (0-based).
	Row, Col int
	// R0, C0 are the node coordinates of the tile's top-left corner;
	// R1, C1 are one past its bottom-right corner (half-open ranges).
	R0, C0, R1, C1 int
}

// Nodes returns the node IDs inside the subgrid in row-major order.
func (s Subgrid) Nodes(gr *Grid) []graph.NodeID {
	out := make([]graph.NodeID, 0, (s.R1-s.R0)*(s.C1-s.C0))
	for r := s.R0; r < s.R1; r++ {
		for c := s.C0; c < s.C1; c++ {
			out = append(out, gr.ID(r, c))
		}
	}
	return out
}

// Decompose tiles the grid into side×side subgrids; border tiles may be
// smaller when side does not divide the dimensions (the paper treats those
// "partial subgrids" identically). Tiles are indexed (Row, Col) and returned
// row-major over the tile grid.
func (gr *Grid) Decompose(side int) [][]Subgrid {
	if side < 1 {
		panic(fmt.Sprintf("topology: subgrid side %d < 1", side))
	}
	tileRows := (gr.rows + side - 1) / side
	tileCols := (gr.cols + side - 1) / side
	tiles := make([][]Subgrid, tileRows)
	for i := 0; i < tileRows; i++ {
		tiles[i] = make([]Subgrid, tileCols)
		for j := 0; j < tileCols; j++ {
			t := Subgrid{
				Row: i, Col: j,
				R0: i * side, C0: j * side,
				R1: (i + 1) * side, C1: (j + 1) * side,
			}
			if t.R1 > gr.rows {
				t.R1 = gr.rows
			}
			if t.C1 > gr.cols {
				t.C1 = gr.cols
			}
			tiles[i][j] = t
		}
	}
	return tiles
}

// SnakeOrder flattens a tile matrix into the Section 5 execution order:
// column-major over tiles, with even tile columns traversed top to bottom
// and odd tile columns bottom to top, alternating (boustrophedon).
func SnakeOrder(tiles [][]Subgrid) []Subgrid {
	if len(tiles) == 0 {
		return nil
	}
	tileRows, tileCols := len(tiles), len(tiles[0])
	out := make([]Subgrid, 0, tileRows*tileCols)
	for j := 0; j < tileCols; j++ {
		if j%2 == 0 {
			for i := 0; i < tileRows; i++ {
				out = append(out, tiles[i][j])
			}
		} else {
			for i := tileRows - 1; i >= 0; i-- {
				out = append(out, tiles[i][j])
			}
		}
	}
	return out
}
