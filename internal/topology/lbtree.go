package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// LBTree is the Section 8.2 lower-bound construction on trees. It mirrors
// LBGrid's block layout — s blocks of s rows × √s columns — but each block
// is a tree: the leftmost column forms a vertical path, and each row forms
// a horizontal path attached to the leftmost column. Adjacent blocks are
// joined through their topmost rows by a single edge of weight s, keeping
// the whole graph a tree.
//
// Node IDs use the same row-major layout as LBGrid.
type LBTree struct {
	g     *graph.Graph
	s     int
	sqrtS int
}

// NewLBTree builds the construction for a perfect-square s ≥ 4.
func NewLBTree(s int) *LBTree {
	sq := intSqrt(s)
	if s < 4 || sq*sq != s {
		panic(fmt.Sprintf("topology: lbtree parameter s=%d must be a perfect square ≥ 4", s))
	}
	rows, cols := s, s*sq
	g := graph.NewNamed(fmt.Sprintf("lbtree-s%d", s), rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for b := 0; b < s; b++ {
		c0 := b * sq
		// Vertical spine: the block's leftmost column.
		for r := 0; r+1 < rows; r++ {
			g.AddUnitEdge(id(r, c0), id(r+1, c0))
		}
		// Horizontal rows attached to the spine.
		for r := 0; r < rows; r++ {
			for c := c0; c+1 < c0+sq; c++ {
				g.AddUnitEdge(id(r, c), id(r, c+1))
			}
		}
		// Bridge to the next block through the topmost row.
		if b+1 < s {
			g.AddEdge(id(0, c0+sq-1), id(0, (b+1)*sq), int64(s))
		}
	}
	return &LBTree{g: g, s: s, sqrtS: sq}
}

// Graph returns the underlying graph.
func (l *LBTree) Graph() *graph.Graph { return l.g }

// Kind returns KindLBTree.
func (l *LBTree) Kind() Kind { return KindLBTree }

// S returns the construction parameter s.
func (l *LBTree) S() int { return l.s }

// SqrtS returns √s, the columns per block.
func (l *LBTree) SqrtS() int { return l.sqrtS }

// Rows returns s.
func (l *LBTree) Rows() int { return l.s }

// Cols returns s·√s.
func (l *LBTree) Cols() int { return l.s * l.sqrtS }

// ID returns the node at global row r, global column c.
func (l *LBTree) ID(r, c int) graph.NodeID {
	cols := l.Cols()
	if r < 0 || r >= l.s || c < 0 || c >= cols {
		panic(fmt.Sprintf("topology: lbtree coordinate (%d,%d) out of range", r, c))
	}
	return graph.NodeID(r*cols + c)
}

// Coord returns the global (row, column) of node id.
func (l *LBTree) Coord(id graph.NodeID) (r, c int) {
	cols := l.Cols()
	return int(id) / cols, int(id) % cols
}

// Block returns the 0-based block index of node id.
func (l *LBTree) Block(id graph.NodeID) int {
	_, c := l.Coord(id)
	return c / l.sqrtS
}

// BlockNodes returns the node IDs of block b in row-major order.
func (l *LBTree) BlockNodes(b int) []graph.NodeID {
	if b < 0 || b >= l.s {
		panic(fmt.Sprintf("topology: lbtree block %d out of range [0,%d)", b, l.s))
	}
	out := make([]graph.NodeID, 0, l.s*l.sqrtS)
	for r := 0; r < l.s; r++ {
		for c := b * l.sqrtS; c < (b+1)*l.sqrtS; c++ {
			out = append(out, l.ID(r, c))
		}
	}
	return out
}

// Dist is the unique tree-path length, computed in closed form.
//
// Within a block, the unique path from (r1,c1) to (r2,c2) runs along row r1
// to the spine, down the spine, and out along row r2 (collapsing when rows
// or columns coincide). Across blocks the path additionally climbs to the
// block's top-left corner, traverses top rows and weight-s bridges, and
// descends symmetrically.
func (l *LBTree) Dist(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	ur, uc := l.Coord(u)
	vr, vc := l.Coord(v)
	ub, vb := uc/l.sqrtS, vc/l.sqrtS
	uco, vco := uc-ub*l.sqrtS, vc-vb*l.sqrtS // column offsets inside blocks
	if ub == vb {
		if ur == vr {
			return abs64(int64(uco) - int64(vco))
		}
		return int64(uco) + abs64(int64(ur)-int64(vr)) + int64(vco)
	}
	if ub > vb {
		ur, uc, ub, uco, vr, vc, vb, vco = vr, vc, vb, vco, ur, uc, ub, uco
	}
	// u's block to the top-right corner of its top row. When u is already
	// in the top row the unique path runs right along the row; otherwise
	// it goes to the spine, up, and across the whole top row.
	var d int64
	if ur == 0 {
		d = int64(l.sqrtS - 1 - uco)
	} else {
		d = int64(uco) + int64(ur) + int64(l.sqrtS-1)
	}
	// Bridges and intermediate top rows.
	d += int64(l.s) // first bridge
	for b := ub + 1; b < vb; b++ {
		d += int64(l.sqrtS-1) + int64(l.s)
	}
	// Down into v's block: arrive at (0, spine of vb).
	d += int64(vr) + int64(vco)
	return d
}

// Diameter is the tree path between the two bottom-extreme leaves of the
// outermost blocks.
func (l *LBTree) Diameter() int64 {
	return l.Dist(l.ID(l.s-1, l.sqrtS-1), l.ID(l.s-1, l.Cols()-1))
}
