package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// Torus is a rows×cols mesh with wraparound edges (a k-ary 2-cube), a
// common NoC variant of the grid. It is included beyond the paper's list as
// an extension topology: the grid scheduler applies unchanged, and the
// wraparound halves distances.
type Torus struct {
	g          *graph.Graph
	rows, cols int
}

// NewTorus builds a rows×cols torus; both dimensions must be ≥ 3 so that
// wraparound edges are distinct from mesh edges.
func NewTorus(rows, cols int) *Torus {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("topology: torus %dx%d needs both dimensions ≥ 3", rows, cols))
	}
	g := graph.NewNamed(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddUnitEdge(id(r, c), id(r, (c+1)%cols))
			g.AddUnitEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return &Torus{g: g, rows: rows, cols: cols}
}

// Graph returns the underlying graph.
func (t *Torus) Graph() *graph.Graph { return t.g }

// Kind returns KindTorus.
func (t *Torus) Kind() Kind { return KindTorus }

// Rows returns the number of rows.
func (t *Torus) Rows() int { return t.rows }

// Cols returns the number of columns.
func (t *Torus) Cols() int { return t.cols }

// ID returns the node at row r, column c.
func (t *Torus) ID(r, c int) graph.NodeID { return graph.NodeID(r*t.cols + c) }

// Coord returns the (row, column) of node id.
func (t *Torus) Coord(id graph.NodeID) (r, c int) {
	return int(id) / t.cols, int(id) % t.cols
}

// Dist is the wraparound Manhattan distance.
func (t *Torus) Dist(u, v graph.NodeID) int64 {
	ur, uc := t.Coord(u)
	vr, vc := t.Coord(v)
	dr := abs64(int64(ur) - int64(vr))
	if w := int64(t.rows) - dr; w < dr {
		dr = w
	}
	dc := abs64(int64(uc) - int64(vc))
	if w := int64(t.cols) - dc; w < dc {
		dc = w
	}
	return dr + dc
}

// Diameter is ⌊rows/2⌋ + ⌊cols/2⌋.
func (t *Torus) Diameter() int64 { return int64(t.rows/2) + int64(t.cols/2) }
