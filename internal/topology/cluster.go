package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// ClusterGraph is the Section 6 topology: α disjoint cliques ("clusters")
// of β nodes each with unit intra-cluster edges. Every cluster designates a
// bridge node, and every pair of bridge nodes is joined by a bridge edge of
// weight γ ≥ β ("the clusters are far apart").
//
// Node layout: cluster i occupies IDs [i*β, (i+1)*β); the bridge node of
// cluster i is its first node, i*β.
type ClusterGraph struct {
	g       *graph.Graph
	alpha   int
	beta    int
	gamma   int64
	bridges []graph.NodeID
}

// NewCluster builds a cluster graph with alpha ≥ 1 clusters of beta ≥ 1
// nodes and bridge weight gamma. The paper assumes gamma ≥ beta; the
// constructor enforces gamma ≥ 1 and lets callers violate gamma ≥ beta
// deliberately for sensitivity experiments.
func NewCluster(alpha, beta int, gamma int64) *ClusterGraph {
	if alpha < 1 || beta < 1 {
		panic(fmt.Sprintf("topology: cluster %dx%d has empty dimension", alpha, beta))
	}
	if gamma < 1 {
		panic(fmt.Sprintf("topology: bridge weight %d < 1", gamma))
	}
	n := alpha * beta
	g := graph.NewNamed(fmt.Sprintf("cluster-%dx%d-g%d", alpha, beta, gamma), n)
	bridges := make([]graph.NodeID, alpha)
	for i := 0; i < alpha; i++ {
		base := i * beta
		bridges[i] = graph.NodeID(base)
		for u := 0; u < beta; u++ {
			for v := u + 1; v < beta; v++ {
				g.AddUnitEdge(graph.NodeID(base+u), graph.NodeID(base+v))
			}
		}
	}
	for i := 0; i < alpha; i++ {
		for j := i + 1; j < alpha; j++ {
			g.AddEdge(bridges[i], bridges[j], gamma)
		}
	}
	return &ClusterGraph{g: g, alpha: alpha, beta: beta, gamma: gamma, bridges: bridges}
}

// Graph returns the underlying graph.
func (c *ClusterGraph) Graph() *graph.Graph { return c.g }

// Kind returns KindCluster.
func (c *ClusterGraph) Kind() Kind { return KindCluster }

// Alpha returns the number of clusters.
func (c *ClusterGraph) Alpha() int { return c.alpha }

// Beta returns the nodes per cluster.
func (c *ClusterGraph) Beta() int { return c.beta }

// Gamma returns the bridge edge weight.
func (c *ClusterGraph) Gamma() int64 { return c.gamma }

// ClusterOf returns the cluster index of node u.
func (c *ClusterGraph) ClusterOf(u graph.NodeID) int { return int(u) / c.beta }

// Bridge returns the bridge node of cluster i.
func (c *ClusterGraph) Bridge(i int) graph.NodeID { return c.bridges[i] }

// Members returns the node IDs of cluster i in increasing order.
func (c *ClusterGraph) Members(i int) []graph.NodeID {
	out := make([]graph.NodeID, c.beta)
	for j := range out {
		out[j] = graph.NodeID(i*c.beta + j)
	}
	return out
}

// Dist is the closed-form shortest path: 1 within a cluster, and
// hop-to-bridge + γ + bridge-to-hop across clusters. With β ≥ 2 and γ ≥ β,
// routing through a third bridge (γ+γ) is never shorter than the direct
// bridge edge (γ), so the formula below is exact under the paper's
// assumption; for adversarial γ < 1 cases it still matches because bridge
// edges form a clique.
func (c *ClusterGraph) Dist(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	cu, cv := c.ClusterOf(u), c.ClusterOf(v)
	if cu == cv {
		return 1
	}
	var d int64 = c.gamma
	if u != c.bridges[cu] {
		d++
	}
	if v != c.bridges[cv] {
		d++
	}
	return d
}

// Diameter is γ+2 across clusters (or the intra-cluster 1 when α == 1).
func (c *ClusterGraph) Diameter() int64 {
	if c.alpha == 1 {
		if c.beta == 1 {
			return 0
		}
		return 1
	}
	if c.beta == 1 {
		return c.gamma
	}
	return c.gamma + 2
}
