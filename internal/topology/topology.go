// Package topology generates the specialized communication graphs studied
// in "Fast Scheduling in Distributed Transactional Memory" (Busch, Herlihy,
// Popovic, Sharma; SPAA 2017): Clique, Line, Grid, Cluster, Hypercube,
// Butterfly, and Star, plus the Torus and the §8 lower-bound block grid and
// block tree constructions.
//
// Each generator returns a typed topology value exposing the underlying
// *graph.Graph together with the structural metadata its scheduler needs
// (coordinates, cluster membership, ray segments, block indices). Where a
// closed-form shortest-path distance exists, the topology implements
// graph.Metric in O(1) so large instances never run all-pairs searches.
package topology

import "dtmsched/internal/graph"

// Kind enumerates the topology families in the paper.
type Kind int

// Topology kinds, in the order the paper treats them.
const (
	KindClique Kind = iota
	KindHypercube
	KindButterfly
	KindLine
	KindGrid
	KindCluster
	KindStar
	KindTorus
	KindLBGrid
	KindLBTree
	KindFogCloud
)

var kindNames = map[Kind]string{
	KindClique:    "clique",
	KindHypercube: "hypercube",
	KindButterfly: "butterfly",
	KindLine:      "line",
	KindGrid:      "grid",
	KindCluster:   "cluster",
	KindStar:      "star",
	KindTorus:     "torus",
	KindLBGrid:    "lbgrid",
	KindLBTree:    "lbtree",
	KindFogCloud:  "fogcloud",
}

// String returns the lowercase topology name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Topology is the common view over every generated network.
type Topology interface {
	// Graph returns the underlying communication graph.
	Graph() *graph.Graph
	// Kind identifies the topology family.
	Kind() Kind
	// Dist returns the shortest-path distance between two nodes; all
	// topologies satisfy graph.Metric either in closed form or by
	// delegating to the graph.
	Dist(u, v graph.NodeID) int64
}

// Diameter returns the exact diameter of t's graph. Topologies with a
// closed-form diameter override this through the Diameterer interface.
func Diameter(t Topology) int64 {
	if d, ok := t.(Diameterer); ok {
		return d.Diameter()
	}
	return t.Graph().Diameter()
}

// Diameterer is implemented by topologies that know their diameter in
// closed form.
type Diameterer interface {
	Diameter() int64
}

// graphFallback marks topologies whose Dist has no closed form and
// delegates to shortest-path search on the underlying graph.
type graphFallback interface {
	graphMetricFallback()
}

// MetricFallsBackToGraph reports whether t's distance oracle delegates to
// the underlying graph's shortest paths (Butterfly, Stretched) instead of
// a closed form. Callers use it to hand the graph itself out as the
// metric — so the lock-free tree cache is shared rather than hidden
// behind a closure — and to decide when precomputing the graph's
// all-pairs matrix (graph.Graph.Precompute) pays off.
func MetricFallsBackToGraph(t Topology) bool {
	_, ok := t.(graphFallback)
	return ok
}

// abs64 is a helper shared across the closed-form metrics.
func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
