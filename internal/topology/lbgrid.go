package topology

import (
	"fmt"
	"math"

	"dtmsched/internal/graph"
)

// LBGrid is the Section 8.1 lower-bound construction: an s×(s·√s) grid of
// n = s^(5/2) nodes, divided into s blocks H_1 … H_s of s rows × √s columns
// each. Edges inside a block have weight 1; adjacent blocks H_i, H_{i+1}
// are connected row by row through horizontal edges of weight s, so the
// distance between any two nodes in different blocks is at least s.
//
// s must be a perfect square so that √s is an integer. Node IDs are
// row-major over the full s×(s√s) grid.
type LBGrid struct {
	g     *graph.Graph
	s     int
	sqrtS int
}

// NewLBGrid builds the construction for a perfect-square s ≥ 4.
func NewLBGrid(s int) *LBGrid {
	sq := intSqrt(s)
	if s < 4 || sq*sq != s {
		panic(fmt.Sprintf("topology: lbgrid parameter s=%d must be a perfect square ≥ 4", s))
	}
	rows, cols := s, s*sq
	g := graph.NewNamed(fmt.Sprintf("lbgrid-s%d", s), rows*cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				g.AddUnitEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				w := int64(1)
				if (c+1)%sq == 0 { // crossing a block boundary
					w = int64(s)
				}
				g.AddEdge(id(r, c), id(r, c+1), w)
			}
		}
	}
	return &LBGrid{g: g, s: s, sqrtS: sq}
}

// Graph returns the underlying graph.
func (l *LBGrid) Graph() *graph.Graph { return l.g }

// Kind returns KindLBGrid.
func (l *LBGrid) Kind() Kind { return KindLBGrid }

// S returns the construction parameter s (number of blocks, rows per block).
func (l *LBGrid) S() int { return l.s }

// SqrtS returns √s, the columns per block.
func (l *LBGrid) SqrtS() int { return l.sqrtS }

// Rows returns s.
func (l *LBGrid) Rows() int { return l.s }

// Cols returns s·√s.
func (l *LBGrid) Cols() int { return l.s * l.sqrtS }

// ID returns the node at global row r, global column c.
func (l *LBGrid) ID(r, c int) graph.NodeID {
	cols := l.Cols()
	if r < 0 || r >= l.s || c < 0 || c >= cols {
		panic(fmt.Sprintf("topology: lbgrid coordinate (%d,%d) out of range", r, c))
	}
	return graph.NodeID(r*cols + c)
}

// Coord returns the global (row, column) of node id.
func (l *LBGrid) Coord(id graph.NodeID) (r, c int) {
	cols := l.Cols()
	return int(id) / cols, int(id) % cols
}

// Block returns the 0-based block index of node id (the paper's H_{i+1}).
func (l *LBGrid) Block(id graph.NodeID) int {
	_, c := l.Coord(id)
	return c / l.sqrtS
}

// BlockNodes returns the node IDs of block b in row-major order.
func (l *LBGrid) BlockNodes(b int) []graph.NodeID {
	if b < 0 || b >= l.s {
		panic(fmt.Sprintf("topology: lbgrid block %d out of range [0,%d)", b, l.s))
	}
	out := make([]graph.NodeID, 0, l.s*l.sqrtS)
	for r := 0; r < l.s; r++ {
		for c := b * l.sqrtS; c < (b+1)*l.sqrtS; c++ {
			out = append(out, l.ID(r, c))
		}
	}
	return out
}

// Dist is the closed-form shortest path: vertical steps cost 1, horizontal
// steps cost 1 except block-boundary crossings which cost s. Every shortest
// path is a monotone Manhattan path and column-step costs are independent
// of the row, so the formula is exact.
func (l *LBGrid) Dist(u, v graph.NodeID) int64 {
	ur, uc := l.Coord(u)
	vr, vc := l.Coord(v)
	dr := abs64(int64(ur) - int64(vr))
	lo, hi := uc, vc
	if lo > hi {
		lo, hi = hi, lo
	}
	crossings := int64(hi/l.sqrtS - lo/l.sqrtS)
	unit := int64(hi-lo) - crossings
	return dr + unit + crossings*int64(l.s)
}

// Diameter is (s−1) vertical + within-block and boundary horizontal costs
// from corner to corner.
func (l *LBGrid) Diameter() int64 {
	return l.Dist(l.ID(0, 0), l.ID(l.s-1, l.Cols()-1))
}

func intSqrt(x int) int {
	if x < 0 {
		return -1
	}
	r := int(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
