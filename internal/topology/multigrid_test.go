package topology

import (
	"testing"

	"dtmsched/internal/graph"
)

func TestMultiGridStructure(t *testing.T) {
	m := NewMultiGrid(3, 4, 2)
	g := m.Graph()
	if g.NumNodes() != 24 {
		t.Fatalf("3x4x2 multigrid has %d nodes", g.NumNodes())
	}
	// Edges: axis0: 2*4*2=16, axis1: 3*3*2=18, axis2: 3*4*1=12 → 46.
	if g.NumEdges() != 46 {
		t.Fatalf("3x4x2 multigrid has %d edges, want 46", g.NumEdges())
	}
	checkMetric(t, m)
	checkDiameter(t, m)
	for id := 0; id < 24; id++ {
		c := m.Coord(graph.NodeID(id))
		if m.ID(c...) != graph.NodeID(id) {
			t.Fatalf("coord round-trip failed for %d: %v", id, c)
		}
	}
}

func TestMultiGridMatchesGrid2D(t *testing.T) {
	m := NewMultiGrid(4, 5)
	g2 := NewGrid(4, 5)
	if m.Graph().NumEdges() != g2.Graph().NumEdges() {
		t.Fatalf("2D multigrid edges %d != grid edges %d", m.Graph().NumEdges(), g2.Graph().NumEdges())
	}
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if m.Dist(graph.NodeID(u), graph.NodeID(v)) != g2.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("Dist mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestMultiGridMatchesHypercube(t *testing.T) {
	// A 2×2×2×2 multigrid is the 4-dimensional hypercube (up to node
	// relabeling; same edge count and diameter).
	m := NewMultiGrid(2, 2, 2, 2)
	h := NewHypercube(4)
	if m.Graph().NumEdges() != h.Graph().NumEdges() {
		t.Fatalf("multigrid edges %d != hypercube edges %d", m.Graph().NumEdges(), h.Graph().NumEdges())
	}
	if m.Diameter() != h.Diameter() {
		t.Fatalf("multigrid diameter %d != hypercube %d", m.Diameter(), h.Diameter())
	}
	checkMetric(t, m)
}

func TestMultiGridSingleDim(t *testing.T) {
	// A 1-dimensional multigrid is a line.
	m := NewMultiGrid(7)
	l := NewLine(7)
	for u := 0; u < 7; u++ {
		for v := 0; v < 7; v++ {
			if m.Dist(graph.NodeID(u), graph.NodeID(v)) != l.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatal("1D multigrid is not a line")
			}
		}
	}
}

func TestMultiGridPanics(t *testing.T) {
	t.Run("no dims", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewMultiGrid()
	})
	t.Run("bad dim", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewMultiGrid(3, 0)
	})
	t.Run("bad coord", func(t *testing.T) {
		m := NewMultiGrid(2, 2)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		m.ID(1, 2)
	})
}
