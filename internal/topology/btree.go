package topology

import (
	"fmt"

	"dtmsched/internal/graph"
)

// BTree is the complete b-ary tree of the given depth — the paper's
// "hierarchical datacenter" shape (Section 1) and the simplest member of
// the tree family its Section 8.2 lower bound lives on. Nodes are numbered
// level-order: the root is 0, and node i's children are b·i+1 … b·i+b.
// All edges have weight 1.
type BTree struct {
	g     *graph.Graph
	b     int
	depth int
	n     int
}

// NewBTree builds the complete b-ary tree with the given branching factor
// b ≥ 2 and depth ≥ 0 (depth 0 is a single root).
func NewBTree(b, depth int) *BTree {
	if b < 2 {
		panic(fmt.Sprintf("topology: btree branching %d < 2", b))
	}
	if depth < 0 || depth > 20 {
		panic(fmt.Sprintf("topology: btree depth %d out of range [0,20]", depth))
	}
	n := 1
	levelSize := 1
	for d := 0; d < depth; d++ {
		levelSize *= b
		n += levelSize
		if n > 1<<26 {
			panic("topology: btree too large")
		}
	}
	g := graph.NewNamed(fmt.Sprintf("btree-%dx%d", b, depth), n)
	for i := 1; i < n; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID((i-1)/b))
	}
	return &BTree{g: g, b: b, depth: depth, n: n}
}

// Graph returns the underlying graph.
func (t *BTree) Graph() *graph.Graph { return t.g }

// Kind reports KindLBTree's family (a tree).
func (t *BTree) Kind() Kind { return KindLBTree }

// Branching returns b.
func (t *BTree) Branching() int { return t.b }

// Depth returns the tree depth.
func (t *BTree) Depth() int { return t.depth }

// Parent returns the parent of v (the root's parent is the root itself).
func (t *BTree) Parent(v graph.NodeID) graph.NodeID {
	if v == 0 {
		return 0
	}
	return (v - 1) / graph.NodeID(t.b)
}

// Level returns v's distance from the root.
func (t *BTree) Level(v graph.NodeID) int {
	l := 0
	for v != 0 {
		v = (v - 1) / graph.NodeID(t.b)
		l++
	}
	return l
}

// Dist is the unique tree-path length, computed by walking both nodes up
// to their lowest common ancestor.
func (t *BTree) Dist(u, v graph.NodeID) int64 {
	lu, lv := t.Level(u), t.Level(v)
	var d int64
	for lu > lv {
		u = (u - 1) / graph.NodeID(t.b)
		lu--
		d++
	}
	for lv > lu {
		v = (v - 1) / graph.NodeID(t.b)
		lv--
		d++
	}
	for u != v {
		u = (u - 1) / graph.NodeID(t.b)
		v = (v - 1) / graph.NodeID(t.b)
		d += 2
	}
	return d
}

// Diameter is 2·depth (leaf to leaf through the root).
func (t *BTree) Diameter() int64 {
	if t.depth == 0 {
		return 0
	}
	return int64(2 * t.depth)
}
