package topology

import (
	"math/rand"
	"testing"

	"dtmsched/internal/graph"
)

func TestRingStructure(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10} {
		r := NewRing(n)
		if r.Graph().NumEdges() != n {
			t.Fatalf("ring-%d has %d edges", n, r.Graph().NumEdges())
		}
		checkMetric(t, r)
		checkDiameter(t, r)
	}
}

func TestRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(2)
}

func TestBTreeStructure(t *testing.T) {
	b := NewBTree(2, 3) // 15 nodes
	if b.Graph().NumNodes() != 15 || b.Graph().NumEdges() != 14 {
		t.Fatalf("btree has n=%d m=%d", b.Graph().NumNodes(), b.Graph().NumEdges())
	}
	if !b.Graph().Connected() {
		t.Fatal("btree disconnected")
	}
	checkMetric(t, b)
	checkDiameter(t, b)
	if b.Level(0) != 0 || b.Level(1) != 1 || b.Level(14) != 3 {
		t.Fatalf("levels wrong: %d %d %d", b.Level(0), b.Level(1), b.Level(14))
	}
	if b.Parent(0) != 0 || b.Parent(5) != 2 {
		t.Fatal("parents wrong")
	}
}

func TestBTreeTernary(t *testing.T) {
	b := NewBTree(3, 2) // 1 + 3 + 9 = 13 nodes
	if b.Graph().NumNodes() != 13 {
		t.Fatalf("3-ary depth-2 tree has %d nodes", b.Graph().NumNodes())
	}
	checkMetric(t, b)
	checkDiameter(t, b)
}

func TestBTreeSingleRoot(t *testing.T) {
	b := NewBTree(2, 0)
	if b.Graph().NumNodes() != 1 || b.Diameter() != 0 {
		t.Fatal("depth-0 tree wrong")
	}
}

func TestBTreePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"branching": func() { NewBTree(1, 2) },
		"depth":     func() { NewBTree(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Cross-check the BTree metric on a bigger asymmetric case against BFS.
func TestBTreeMetricLarger(t *testing.T) {
	b := NewBTree(4, 3)
	m := graph.FuncMetric(b.Dist)
	if u, v, want, got, ok := graph.CheckMetricAgrees(b.Graph(), m); !ok {
		t.Fatalf("Dist(%d,%d) = %d, want %d", u, v, got, want)
	}
}

func TestStretchProperties(t *testing.T) {
	r := newTestRand(5)
	base := NewCluster(3, 4, 8)
	st := Stretch(r, base, 4)
	if st.Graph().NumEdges() != base.Graph().NumEdges() {
		t.Fatalf("stretch changed edge count: %d vs %d", st.Graph().NumEdges(), base.Graph().NumEdges())
	}
	checkMetric(t, st) // closed form is the graph itself; must be self-consistent
	if st.Factor() != 4 || st.Base() != Topology(base) || st.Kind() != base.Kind() {
		t.Fatal("stretch metadata wrong")
	}
	if s := st.Synchronicity(); s < 1 || s > 4*8 {
		t.Fatalf("synchronicity %v out of range", s)
	}
	// Distances never shrink under stretching.
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if st.Dist(graph.NodeID(u), graph.NodeID(v)) < base.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("stretch shrank Dist(%d,%d)", u, v)
			}
		}
	}
}

func TestStretchFactorOneIdentity(t *testing.T) {
	r := newTestRand(6)
	base := NewLine(10)
	st := Stretch(r, base, 1)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if st.Dist(graph.NodeID(u), graph.NodeID(v)) != base.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatal("factor-1 stretch changed distances")
			}
		}
	}
}

func TestStretchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Stretch(newTestRand(7), NewLine(4), 0)
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
