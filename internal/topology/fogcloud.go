package topology

import (
	"fmt"
	"strings"

	"dtmsched/internal/graph"
)

// FogCloud is the hierarchical edge–fog–cloud tree of "A Poly-Log
// Approximation for Transaction Scheduling in Fog-Cloud Computing and
// Beyond" (Adhikari, Busch, Poudel): tier 0 is the single cloud root,
// tier t+1 holds fanout[t] children per tier-t node, and every link
// between tiers t and t+1 carries the heterogeneous weight linkWeight[t]
// (cloud links are typically the most expensive). Unlike the unweighted
// BTree, the generator exposes the tier decomposition itself — tier
// membership, parents, subtree ancestors, and LCAs — which is what the
// hierarchical scheduler (internal/hier) shards by.
//
// Node layout is breadth-first: tier t occupies the contiguous ID range
// [TierStart(t), TierStart(t+1)), and the children of the i-th tier-t
// node are the tier-(t+1) nodes [i·fanout[t], (i+1)·fanout[t]) within
// their tier. The tree metric is closed form: dist(u, v) =
// wroot(u) + wroot(v) − 2·wroot(lca(u, v)), where wroot is the weighted
// depth, so Dist runs in O(tiers) without graph searches.
type FogCloud struct {
	g      *graph.Graph
	fanout []int
	weight []int64

	tierStart []int          // len tiers+1; tier t is [tierStart[t], tierStart[t+1])
	parent    []graph.NodeID // parent[0] = 0 (the root is its own parent)
	tier      []int32        // tier of each node
	wroot     []int64        // weighted distance to the root
	down      []int64        // down[t] = Σ weight[t:], the depth below a tier-t node
}

// NewFogCloud builds the tree with the given per-tier fan-outs and link
// weights: len(fanout) ≥ 1 inter-tier levels, every fanout ≥ 1, and one
// weight ≥ 1 per level. The resulting tree has len(fanout)+1 tiers.
func NewFogCloud(fanout []int, linkWeight []int64) *FogCloud {
	if len(fanout) == 0 {
		panic("topology: fogcloud needs at least one fan-out level")
	}
	if len(linkWeight) != len(fanout) {
		panic(fmt.Sprintf("topology: fogcloud has %d fan-out levels but %d link weights", len(fanout), len(linkWeight)))
	}
	for t, f := range fanout {
		if f < 1 {
			panic(fmt.Sprintf("topology: fogcloud fan-out %d < 1 at level %d", f, t))
		}
		if linkWeight[t] < 1 {
			panic(fmt.Sprintf("topology: fogcloud link weight %d < 1 at level %d", linkWeight[t], t))
		}
	}
	tiers := len(fanout) + 1
	tierStart := make([]int, tiers+1)
	size := 1
	for t := 0; t < tiers; t++ {
		tierStart[t+1] = tierStart[t] + size
		if t < len(fanout) {
			size *= fanout[t]
		}
	}
	n := tierStart[tiers]

	g := graph.NewNamed(fogCloudName(fanout, linkWeight), n)
	fc := &FogCloud{
		g:         g,
		fanout:    append([]int(nil), fanout...),
		weight:    append([]int64(nil), linkWeight...),
		tierStart: tierStart,
		parent:    make([]graph.NodeID, n),
		tier:      make([]int32, n),
		wroot:     make([]int64, n),
		down:      make([]int64, tiers),
	}
	// down[t] = Σ_{j ≥ t} weight[j]; down[tiers-1] = 0 (leaves have no
	// subtree below them).
	for t := tiers - 2; t >= 0; t-- {
		fc.down[t] = fc.down[t+1] + linkWeight[t]
	}
	for t := 0; t < tiers-1; t++ {
		w := linkWeight[t]
		width := tierStart[t+1] - tierStart[t]
		for i := 0; i < width; i++ {
			p := graph.NodeID(tierStart[t] + i)
			for c := 0; c < fanout[t]; c++ {
				child := graph.NodeID(tierStart[t+1] + i*fanout[t] + c)
				g.AddEdge(p, child, w)
				fc.parent[child] = p
				fc.tier[child] = int32(t + 1)
				fc.wroot[child] = fc.wroot[p] + w
			}
		}
	}
	return fc
}

// fogCloudName renders "fogcloud-f4x16-w16x2".
func fogCloudName(fanout []int, weight []int64) string {
	var b strings.Builder
	b.WriteString("fogcloud-f")
	for i, f := range fanout {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", f)
	}
	b.WriteString("-w")
	for i, w := range weight {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", w)
	}
	return b.String()
}

// Graph returns the underlying graph.
func (f *FogCloud) Graph() *graph.Graph { return f.g }

// Kind returns KindFogCloud.
func (f *FogCloud) Kind() Kind { return KindFogCloud }

// Tiers returns the number of tiers (cloud tier 0 through the edge tier).
func (f *FogCloud) Tiers() int { return len(f.fanout) + 1 }

// Fanout returns the per-level fan-outs (tier t has fanout[t] children
// per node).
func (f *FogCloud) Fanout() []int { return append([]int(nil), f.fanout...) }

// LinkWeights returns the per-level link weights (the tier t ↔ t+1 edge
// weight).
func (f *FogCloud) LinkWeights() []int64 { return append([]int64(nil), f.weight...) }

// TierOf returns the tier of node u (0 = cloud root).
func (f *FogCloud) TierOf(u graph.NodeID) int { return int(f.tier[u]) }

// TierStart returns the first node ID of tier t.
func (f *FogCloud) TierStart(t int) graph.NodeID { return graph.NodeID(f.tierStart[t]) }

// TierSize returns the number of nodes in tier t.
func (f *FogCloud) TierSize(t int) int { return f.tierStart[t+1] - f.tierStart[t] }

// TierNodes returns the node IDs of tier t in increasing order.
func (f *FogCloud) TierNodes(t int) []graph.NodeID {
	out := make([]graph.NodeID, f.TierSize(t))
	for i := range out {
		out[i] = graph.NodeID(f.tierStart[t] + i)
	}
	return out
}

// Parent returns the parent of u; the root is its own parent.
func (f *FogCloud) Parent(u graph.NodeID) graph.NodeID { return f.parent[u] }

// Ancestor returns u's ancestor at tier t (u itself when TierOf(u) == t).
// It panics when u sits above tier t — such a node has no tier-t ancestor.
func (f *FogCloud) Ancestor(u graph.NodeID, t int) graph.NodeID {
	if f.TierOf(u) < t {
		panic(fmt.Sprintf("topology: node %d at tier %d has no ancestor at tier %d", u, f.TierOf(u), t))
	}
	for f.TierOf(u) > t {
		u = f.parent[u]
	}
	return u
}

// LCA returns the lowest common ancestor of u and v.
func (f *FogCloud) LCA(u, v graph.NodeID) graph.NodeID {
	for f.TierOf(u) > f.TierOf(v) {
		u = f.parent[u]
	}
	for f.TierOf(v) > f.TierOf(u) {
		v = f.parent[v]
	}
	for u != v {
		u, v = f.parent[u], f.parent[v]
	}
	return u
}

// Dist is the closed-form tree metric: the weighted path through the LCA.
func (f *FogCloud) Dist(u, v graph.NodeID) int64 {
	if u == v {
		return 0
	}
	return f.wroot[u] + f.wroot[v] - 2*f.wroot[f.LCA(u, v)]
}

// Depth returns u's weighted distance to the cloud root.
func (f *FogCloud) Depth(u graph.NodeID) int64 { return f.wroot[u] }

// Diameter is realized between two deepest leaves diverging at the
// highest branching tier t* (2·down[t*]), or along a root-to-leaf path
// (down[0]) when the tree is a path above t*, whichever is longer.
func (f *FogCloud) Diameter() int64 {
	branch := -1
	for t, fo := range f.fanout {
		if fo >= 2 {
			branch = t
			break
		}
	}
	if branch < 0 {
		return f.down[0]
	}
	if d := 2 * f.down[branch]; d > f.down[0] {
		return d
	}
	return f.down[0]
}
