package cliutil

import (
	"flag"
	"reflect"
	"strings"
	"testing"

	"dtmsched/internal/topology"
)

func parse(t *testing.T, topoDef TopoFlags, wlDef WorkloadFlags, args ...string) (*TopoFlags, *WorkloadFlags) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tf := RegisterTopoFlags(fs, topoDef)
	wf := RegisterWorkloadFlags(fs, wlDef)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return tf, wf
}

func TestBuildTopologyTable(t *testing.T) {
	def := TopoFlags{Name: "clique", N: 8, Side: 4, Dim: 3, Alpha: 2, Beta: 3, Gamma: 6}
	cases := []struct {
		args []string
		want interface{}
	}{
		{[]string{}, &topology.Clique{}},
		{[]string{"-topo", "line"}, &topology.Line{}},
		{[]string{"-topo", "grid"}, &topology.Grid{}},
		{[]string{"-topo", "torus"}, &topology.Torus{}},
		{[]string{"-topo", "hypercube"}, &topology.Hypercube{}},
		{[]string{"-topo", "butterfly"}, &topology.Butterfly{}},
		{[]string{"-topo", "cluster"}, &topology.ClusterGraph{}},
		{[]string{"-topo", "star"}, &topology.Star{}},
		{[]string{"-topo", "fogcloud", "-fanout", "2,3", "-linkw", "4,1"}, &topology.FogCloud{}},
	}
	for _, tc := range cases {
		tf, _ := parse(t, def, WorkloadFlags{Name: "uniform", W: 8, K: 2}, tc.args...)
		topo, err := tf.Build()
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if reflect.TypeOf(topo) != reflect.TypeOf(tc.want) {
			t.Fatalf("%v: built %T, want %T", tc.args, topo, tc.want)
		}
	}
	tf, _ := parse(t, def, WorkloadFlags{Name: "uniform"}, "-topo", "nope")
	if _, err := tf.Build(); err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("unknown topology: err=%v", err)
	}
}

func TestFogCloudShapeParsing(t *testing.T) {
	fo, wt, err := ParseFogCloudShape("4, 8", "8,1")
	if err != nil || !reflect.DeepEqual(fo, []int{4, 8}) || !reflect.DeepEqual(wt, []int64{8, 1}) {
		t.Fatalf("fo=%v wt=%v err=%v", fo, wt, err)
	}
	// Empty weights default to the halving ladder.
	fo, wt, err = ParseFogCloudShape("2,2,2", "")
	if err != nil || !reflect.DeepEqual(wt, []int64{4, 2, 1}) {
		t.Fatalf("default weights: fo=%v wt=%v err=%v", fo, wt, err)
	}
	for _, bad := range [][2]string{
		{"", ""},       // no fan-out
		{"4,x", "1,1"}, // non-integer
		{"4,8", "1"},   // length mismatch
		{"4,0", "1,1"}, // zero fan-out
		{"4,8", "0,1"}, // zero weight
	} {
		if _, _, err := ParseFogCloudShape(bad[0], bad[1]); err == nil {
			t.Fatalf("shape %q/%q accepted", bad[0], bad[1])
		}
	}
}

func TestBuildWorkloadTable(t *testing.T) {
	fc := topology.NewFogCloud([]int{4, 4}, []int64{4, 1})
	def := WorkloadFlags{Name: "uniform", W: 16, K: 2}
	for _, name := range []string{"uniform", "zipf", "hotspot", "single", "localized"} {
		_, wf := parse(t, TopoFlags{}, def, "-workload", name, "-locality", "0.8")
		wl, err := wf.Build(fc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wl.Pick == nil || wl.W < 1 {
			t.Fatalf("%s: degenerate workload %+v", name, wl)
		}
	}
	_, wf := parse(t, TopoFlags{}, def, "-workload", "nope")
	if _, err := wf.Build(fc); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestLocalizedWorkloadErrors(t *testing.T) {
	fc := topology.NewFogCloud([]int{4, 4}, []int64{4, 1})
	cases := []struct {
		wf   WorkloadFlags
		topo topology.Topology
		want string
	}{
		{WorkloadFlags{Name: "localized", W: 16, K: 2, Locality: 0.5}, topology.NewClique(8), "needs -topo fogcloud"},
		{WorkloadFlags{Name: "localized", W: 15, K: 2, Locality: 0.5}, fc, "not divisible"},
		{WorkloadFlags{Name: "localized", W: 16, K: 5, Locality: 0.5}, fc, "exceeds the per-subtree pool"},
		{WorkloadFlags{Name: "localized", W: 16, K: 2, Locality: 1.5}, fc, "outside [0,1]"},
	}
	for _, tc := range cases {
		wf := tc.wf
		if _, err := wf.Build(tc.topo); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%+v: err=%v, want %q", tc.wf, err, tc.want)
		}
	}
}

func TestFogSubtreeAssignment(t *testing.T) {
	fc := topology.NewFogCloud([]int{2, 3}, []int64{4, 1})
	assign := FogSubtree(fc)
	if got := assign(0); got != -1 {
		t.Fatalf("cloud root assigned to group %d", got)
	}
	// Fog nodes 1 and 2 root subtrees 0 and 1; their leaves follow.
	want := map[int]int{1: 0, 2: 1, 3: 0, 4: 0, 5: 0, 6: 1, 7: 1, 8: 1}
	for node, grp := range want {
		if got := assign(fc.Graph().Nodes()[node]); got != grp {
			t.Fatalf("node %d assigned to %d, want %d", node, got, grp)
		}
	}
}

func TestParseFaultSpec(t *testing.T) {
	good := map[string]FaultSpec{
		"":          {},
		"0":         {},
		"0.25":      {Rate: 0.25},
		"0.1,99":    {Rate: 0.1, Seed: 99},
		" 0.5 , 7 ": {Rate: 0.5, Seed: 7},
		"1":         {Rate: 1},
	}
	for in, want := range good {
		got, err := ParseFaultSpec(in)
		if err != nil || got != want {
			t.Errorf("ParseFaultSpec(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"1.5", "-0.1", "x", "0.1,zz", "0.1,2,3", ","} {
		if _, err := ParseFaultSpec(in); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", in)
		}
	}
}
