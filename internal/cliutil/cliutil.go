// Package cliutil holds the flag-to-constructor tables shared by the CLI
// binaries: every subcommand that lets the user name a topology or a
// workload (dtmsched's main, trace, and serve paths, and the experiment
// sweeps behind dtmbench) resolves the name through this package, so a new
// topology — like the fog–cloud tree with its list-valued shape flags —
// lands in one table instead of one per flag set.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// TopoFlags carries the topology-shape flags of a CLI flag set. Register
// installs them; Build resolves the parsed values into a topology.
type TopoFlags struct {
	Name   string
	N      int    // clique/line node count
	Side   int    // grid/torus side length
	Dim    int    // hypercube/butterfly dimension
	Alpha  int    // cluster/star: clusters/rays
	Beta   int    // cluster/star: nodes per cluster/ray
	Gamma  int64  // cluster bridge edge weight
	Fanout string // fogcloud per-tier fan-out, comma-separated ("4,8")
	LinkW  string // fogcloud per-tier uplink weights, comma-separated ("8,1")
}

// TopoNames documents the -topo values Build accepts.
const TopoNames = "clique|line|grid|torus|hypercube|butterfly|cluster|star|fogcloud"

// RegisterTopoFlags installs the topology flags on fs, seeded with def's
// values as the defaults, and returns the struct the parsed values land in.
func RegisterTopoFlags(fs *flag.FlagSet, def TopoFlags) *TopoFlags {
	tf := &def
	fs.StringVar(&tf.Name, "topo", def.Name, "topology: "+TopoNames)
	fs.IntVar(&tf.N, "n", def.N, "nodes (clique/line)")
	fs.IntVar(&tf.Side, "side", def.Side, "grid/torus side length")
	fs.IntVar(&tf.Dim, "dim", def.Dim, "hypercube/butterfly dimension")
	fs.IntVar(&tf.Alpha, "alpha", def.Alpha, "cluster/star: number of clusters/rays")
	fs.IntVar(&tf.Beta, "beta", def.Beta, "cluster/star: nodes per cluster/ray")
	fs.Int64Var(&tf.Gamma, "gamma", def.Gamma, "cluster: bridge edge weight")
	fs.StringVar(&tf.Fanout, "fanout", def.Fanout, "fogcloud: per-tier fan-out, comma-separated (e.g. 4,8)")
	fs.StringVar(&tf.LinkW, "linkw", def.LinkW, "fogcloud: per-tier uplink weights, comma-separated (e.g. 8,1)")
	return tf
}

// Build resolves the parsed topology flags.
func (tf *TopoFlags) Build() (topology.Topology, error) {
	switch tf.Name {
	case "clique":
		return topology.NewClique(tf.N), nil
	case "line":
		return topology.NewLine(tf.N), nil
	case "grid":
		return topology.NewSquareGrid(tf.Side), nil
	case "torus":
		return topology.NewTorus(tf.Side, tf.Side), nil
	case "hypercube":
		return topology.NewHypercube(tf.Dim), nil
	case "butterfly":
		return topology.NewButterfly(tf.Dim), nil
	case "cluster":
		return topology.NewCluster(tf.Alpha, tf.Beta, tf.Gamma), nil
	case "star":
		return topology.NewStar(tf.Alpha, tf.Beta), nil
	case "fogcloud":
		fanout, weights, err := ParseFogCloudShape(tf.Fanout, tf.LinkW)
		if err != nil {
			return nil, err
		}
		return topology.NewFogCloud(fanout, weights), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want %s)", tf.Name, TopoNames)
	}
}

// ParseFogCloudShape parses the fogcloud list flags. An empty weight list
// defaults to the halving ladder 2^(L-1)…1 — cloud links slowest, edge
// links unit — matching the heterogeneity the fog model assumes.
func ParseFogCloudShape(fanout, linkw string) ([]int, []int64, error) {
	fo, err := ParseInts(fanout)
	if err != nil || len(fo) == 0 {
		return nil, nil, fmt.Errorf("fogcloud -fanout %q: want a comma-separated list of positive tier fan-outs (e.g. 4,8)", fanout)
	}
	for _, f := range fo {
		if f < 1 {
			return nil, nil, fmt.Errorf("fogcloud -fanout %q: fan-out %d < 1", fanout, f)
		}
	}
	var wt []int64
	if strings.TrimSpace(linkw) == "" {
		wt = make([]int64, len(fo))
		for i := range wt {
			wt[i] = int64(1) << (len(fo) - 1 - i)
		}
	} else {
		wt, err = ParseInt64s(linkw)
		if err != nil {
			return nil, nil, fmt.Errorf("fogcloud -linkw %q: want a comma-separated list of positive link weights (e.g. 8,1)", linkw)
		}
	}
	if len(wt) != len(fo) {
		return nil, nil, fmt.Errorf("fogcloud shape: %d fan-out levels but %d link weights", len(fo), len(wt))
	}
	for _, w := range wt {
		if w < 1 {
			return nil, nil, fmt.Errorf("fogcloud -linkw %q: weight %d < 1", linkw, w)
		}
	}
	return fo, wt, nil
}

// ParseInts parses a comma-separated integer list; empty input is an empty
// list, not an error.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", tok, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseInt64s parses a comma-separated int64 list.
func ParseInt64s(s string) ([]int64, error) {
	xs, err := ParseInts(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(xs))
	for i, v := range xs {
		out[i] = int64(v)
	}
	return out, nil
}

// WorkloadFlags carries the workload flags of a CLI flag set.
type WorkloadFlags struct {
	Name     string
	W        int     // shared objects
	K        int     // objects per transaction
	Locality float64 // localized workload's in-group probability
}

// WorkloadNames documents the -workload values Build accepts.
const WorkloadNames = "uniform|zipf|hotspot|single|localized"

// RegisterWorkloadFlags installs the workload flags on fs with def's
// values as the defaults.
func RegisterWorkloadFlags(fs *flag.FlagSet, def WorkloadFlags) *WorkloadFlags {
	wf := &def
	fs.StringVar(&wf.Name, "workload", def.Name, "workload: "+WorkloadNames)
	fs.IntVar(&wf.W, "w", def.W, "number of shared objects")
	fs.IntVar(&wf.K, "k", def.K, "objects per transaction")
	fs.Float64Var(&wf.Locality, "locality", def.Locality, "localized workload: probability a draw stays in the node's own subtree group")
	return wf
}

// Build resolves the parsed workload flags. The localized workload shards
// the object space by fog subtree, so it needs the fog–cloud topology the
// instance will be generated on; every other workload ignores topo.
func (wf *WorkloadFlags) Build(topo topology.Topology) (tm.Workload, error) {
	switch wf.Name {
	case "uniform":
		return tm.UniformK(wf.W, wf.K), nil
	case "zipf":
		return tm.ZipfK(wf.W, wf.K), nil
	case "hotspot":
		return tm.HotspotK(wf.W, wf.K), nil
	case "single":
		return tm.SingleObject(), nil
	case "localized":
		fc, ok := topo.(*topology.FogCloud)
		if !ok {
			return tm.Workload{}, fmt.Errorf("workload localized needs -topo fogcloud (object groups follow fog subtrees)")
		}
		groups := fc.TierSize(1)
		if wf.W%groups != 0 {
			return tm.Workload{}, fmt.Errorf("workload localized: -w %d not divisible by the %d fog subtrees", wf.W, groups)
		}
		if wf.K > wf.W/groups {
			return tm.Workload{}, fmt.Errorf("workload localized: -k %d exceeds the per-subtree pool %d", wf.K, wf.W/groups)
		}
		if wf.Locality < 0 || wf.Locality > 1 {
			return tm.Workload{}, fmt.Errorf("workload localized: -locality %g outside [0,1]", wf.Locality)
		}
		return tm.LocalizedK(wf.W, wf.K, groups, wf.Locality, FogSubtree(fc)), nil
	default:
		return tm.Workload{}, fmt.Errorf("unknown workload %q (want %s)", wf.Name, WorkloadNames)
	}
}

// FaultSpec is the parsed -faults flag: the chaos rate fanned over the
// fault classes, plus an optional plan seed decoupled from the workload
// seed so chaos can be re-rolled without changing the transaction stream.
type FaultSpec struct {
	Rate float64
	Seed int64 // 0 = reuse the run's root seed
}

// ParseFaultSpec parses "RATE" or "RATE,SEED" (e.g. "0.1" or "0.1,99").
// The empty string means chaos off and parses to the zero spec.
func ParseFaultSpec(s string) (FaultSpec, error) {
	var spec FaultSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > 2 {
		return spec, fmt.Errorf("-faults %q: want RATE or RATE,SEED", s)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil || rate < 0 || rate > 1 {
		return spec, fmt.Errorf("-faults %q: rate must be a number in [0,1]", s)
	}
	spec.Rate = rate
	if len(parts) == 2 {
		seed, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return spec, fmt.Errorf("-faults %q: bad seed %q", s, parts[1])
		}
		spec.Seed = seed
	}
	return spec, nil
}

// FogSubtree returns the group-assignment function the localized workload
// and the partitioned fixtures share: a node's tier-1 subtree index, or -1
// for the cloud root (which then draws uniformly).
func FogSubtree(fc *topology.FogCloud) func(node graph.NodeID) int {
	return func(node graph.NodeID) int {
		if fc.TierOf(node) < 1 {
			return -1
		}
		return int(fc.Ancestor(node, 1)) - int(fc.TierStart(1))
	}
}
