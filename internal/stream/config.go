package stream

import "fmt"

// ConfigError is a typed Config validation failure: the offending field
// and why it was rejected. Serve returns one before touching any serving
// state, so misconfiguration never panics deep in the loop.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("stream: invalid Config.%s: %s", e.Field, e.Reason)
}

// CancelPolicy selects what Serve does when its context is cancelled
// mid-stream.
type CancelPolicy int

const (
	// CancelAbort stops immediately and returns the context error; queued
	// and in-flight work is dropped (the historical behavior).
	CancelAbort CancelPolicy = iota
	// CancelDrain performs a graceful shutdown: stop pulling new arrivals,
	// flush the admission queue through window cuts, finish every
	// in-flight window, and return the full summary with Result.Cancelled
	// set instead of an error.
	CancelDrain
)

// String names the policy for flags and reports.
func (p CancelPolicy) String() string {
	switch p {
	case CancelAbort:
		return "abort"
	case CancelDrain:
		return "drain"
	default:
		return fmt.Sprintf("cancel(%d)", int(p))
	}
}

// Validate checks the configuration without starting a run. Zero values
// that mean "use the default" (MaxWindow, QueueCap, PipelineDepth,
// MaxRequeue, RequeueBackoff, the breaker thresholds) stay valid;
// negative values, missing workload pieces, and inverted thresholds are
// rejected with a *ConfigError naming the field.
func (cfg *Config) Validate() error {
	if cfg.G == nil {
		return &ConfigError{"G", "nil graph"}
	}
	if cfg.Source == nil {
		return &ConfigError{"Source", "nil transaction source"}
	}
	if cfg.NumObjects <= 0 {
		return &ConfigError{"NumObjects", fmt.Sprintf("%d objects, need ≥ 1", cfg.NumObjects)}
	}
	if len(cfg.Home) != cfg.NumObjects {
		return &ConfigError{"Home", fmt.Sprintf("%d homes for %d objects", len(cfg.Home), cfg.NumObjects)}
	}
	n := cfg.G.NumNodes()
	for o, h := range cfg.Home {
		if int(h) < 0 || int(h) >= n {
			return &ConfigError{"Home", fmt.Sprintf("object %d homed at node %d outside [0,%d)", o, h, n)}
		}
	}
	if cfg.MaxWindow < 0 {
		return &ConfigError{"MaxWindow", fmt.Sprintf("negative window bound %d", cfg.MaxWindow)}
	}
	if cfg.QueueCap < 0 {
		return &ConfigError{"QueueCap", fmt.Sprintf("negative queue bound %d", cfg.QueueCap)}
	}
	if cfg.PipelineDepth < 0 {
		return &ConfigError{"PipelineDepth", fmt.Sprintf("negative pipeline depth %d", cfg.PipelineDepth)}
	}
	if cfg.Policy != Block && cfg.Policy != Reject {
		return &ConfigError{"Policy", fmt.Sprintf("unknown policy %d", int(cfg.Policy))}
	}
	if cfg.Deadline < 0 {
		return &ConfigError{"Deadline", fmt.Sprintf("negative deadline %s", cfg.Deadline)}
	}
	if cfg.OnCancel != CancelAbort && cfg.OnCancel != CancelDrain {
		return &ConfigError{"OnCancel", fmt.Sprintf("unknown cancel policy %d", int(cfg.OnCancel))}
	}
	if cfg.MaxRequeue < 0 {
		return &ConfigError{"MaxRequeue", fmt.Sprintf("negative requeue budget %d", cfg.MaxRequeue)}
	}
	if cfg.RequeueBackoff < 0 {
		return &ConfigError{"RequeueBackoff", fmt.Sprintf("negative backoff base %d", cfg.RequeueBackoff)}
	}
	if cfg.BreakerWindow < 0 {
		return &ConfigError{"BreakerWindow", fmt.Sprintf("negative rolling window %d", cfg.BreakerWindow)}
	}
	if cfg.InflationTrip < 0 {
		return &ConfigError{"InflationTrip", fmt.Sprintf("negative trip threshold %g", cfg.InflationTrip)}
	}
	if cfg.InflationReset < 0 {
		return &ConfigError{"InflationReset", fmt.Sprintf("negative reset threshold %g", cfg.InflationReset)}
	}
	if cfg.InflationTrip > 0 && cfg.InflationReset > 0 && cfg.InflationReset > cfg.InflationTrip {
		return &ConfigError{"InflationReset",
			fmt.Sprintf("reset %g above trip %g — the breaker could never close", cfg.InflationReset, cfg.InflationTrip)}
	}
	return nil
}
