package stream

import (
	"context"
	"reflect"
	"testing"

	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/obs"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// serveConfig builds a clique service config with a seeded generator.
func serveConfig(t testing.TB, n, w, k, limit int, rate float64, seed int64) Config {
	t.Helper()
	topo := topology.NewClique(n)
	g := topo.Graph()
	metric := graph.FuncMetric(topo.Dist)
	rng := xrand.NewDerived(seed, "stream", "homes")
	home := make([]graph.NodeID, w)
	for o := range home {
		home[o] = g.Nodes()[rng.Intn(n)]
	}
	return Config{
		G:          g,
		Metric:     metric,
		NumObjects: w,
		Home:       home,
		Source:     NewGenerator(xrand.NewDerived(seed, "stream", "gen"), g, tm.UniformK(w, k), rate, limit),
		Verify:     engine.VerifyFast,
	}
}

// lineServeConfig builds a single-hot-object service on a line, whose
// object travel time caps the service rate well below one commit per
// step — the overload workload for the backpressure tests.
func lineServeConfig(t testing.TB, n, limit int, rate float64, seed int64) Config {
	t.Helper()
	topo := topology.NewLine(n)
	g := topo.Graph()
	return Config{
		G:          g,
		Metric:     graph.FuncMetric(topo.Dist),
		NumObjects: 1,
		Home:       []graph.NodeID{g.Nodes()[0]},
		Source:     NewGenerator(xrand.NewDerived(seed, "stream", "gen"), g, tm.SingleObject(), rate, limit),
		Verify:     engine.VerifyFast,
	}
}

func TestServeDrainsDeterministically(t *testing.T) {
	run := func() *Result {
		cfg := serveConfig(t, 24, 8, 2, 150, 0.5, 41)
		cfg.PipelineDepth = 3
		res, err := Serve(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests: %x vs %x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if a.Admitted != 150 || a.Committed != 150 || a.Rejected != 0 {
		t.Fatalf("block policy lost transactions: %+v", a)
	}
	if a.Windows < 2 {
		t.Fatalf("expected a multi-window stream, got %d windows", a.Windows)
	}
	var sized int
	for _, s := range a.WindowSizes {
		if s < 1 || s > 24 {
			t.Fatalf("window size %d outside [1,24]", s)
		}
		sized += s
	}
	if int64(sized) != a.Committed {
		t.Fatalf("window sizes sum %d != committed %d", sized, a.Committed)
	}
	if a.Clock < 1 || a.Throughput <= 0 {
		t.Fatalf("bad clock/throughput: %+v", a)
	}
	if a.MaxResponse < 1 || a.MeanResponse < 1 {
		t.Fatalf("responses must be ≥ 1 step: %+v", a)
	}
}

func TestServeVerifyModesAgree(t *testing.T) {
	// The verification policy spends different effort but must not
	// change a single logical decision; VerifyFull replays every window
	// in the simulator, so it also proves the cut schedules feasible.
	digests := map[engine.VerifyMode]uint64{}
	for _, mode := range []engine.VerifyMode{engine.VerifyFull, engine.VerifyFast, engine.VerifyOff} {
		cfg := serveConfig(t, 16, 6, 2, 80, 0.4, 42)
		cfg.Verify = mode
		res, err := Serve(context.Background(), cfg)
		if err != nil {
			t.Fatalf("verify=%s: %v", mode, err)
		}
		if res.Committed != 80 {
			t.Fatalf("verify=%s: committed %d", mode, res.Committed)
		}
		digests[mode] = res.Digest
	}
	if digests[engine.VerifyFull] != digests[engine.VerifyFast] || digests[engine.VerifyFast] != digests[engine.VerifyOff] {
		t.Fatalf("verify mode changed the run: %v", digests)
	}
}

func TestServeRejectPolicyDropsOverflow(t *testing.T) {
	// Overload a tiny queue: one arrival per step on a 16-node line
	// sharing one hot object. The object's travel time between random
	// users caps service well below one commit per step, so the Reject
	// policy must drop arrivals — and everything admitted still
	// commits.
	cfg := lineServeConfig(t, 16, 200, 1.0, 43)
	cfg.MaxWindow = 4
	cfg.QueueCap = 4
	cfg.Policy = Reject
	res, err := Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatalf("overloaded reject run dropped nothing: %+v", res)
	}
	if res.Admitted+res.Rejected != 200 {
		t.Fatalf("admitted %d + rejected %d != 200", res.Admitted, res.Rejected)
	}
	if res.Admitted != res.Committed {
		t.Fatalf("admitted %d != committed %d", res.Admitted, res.Committed)
	}
	if res.QueuePeak > 4 {
		t.Fatalf("queue peak %d exceeds cap 4", res.QueuePeak)
	}
}

func TestServeBlockPolicyIsLossless(t *testing.T) {
	cfg := lineServeConfig(t, 16, 120, 1.0, 44)
	cfg.MaxWindow = 4
	cfg.QueueCap = 4
	cfg.Policy = Block
	res, err := Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 || res.Admitted != 120 || res.Committed != 120 {
		t.Fatalf("block policy must be lossless: %+v", res)
	}
	if res.Blocked == 0 {
		t.Fatalf("overloaded block run never stalled: %+v", res)
	}
	if res.QueuePeak > 4 {
		t.Fatalf("queue peak %d exceeds cap 4", res.QueuePeak)
	}
}

func TestServeSubCriticalQueueStaysBounded(t *testing.T) {
	// Well below saturation the queue never fills and no backpressure
	// fires — the stability regime of E21.
	cfg := serveConfig(t, 32, 16, 2, 200, 0.05, 45)
	res, err := Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 || res.Blocked != 0 {
		t.Fatalf("sub-critical run hit backpressure: %+v", res)
	}
	if res.Admitted != 200 || res.Committed != 200 {
		t.Fatalf("stream not drained: %+v", res)
	}
	if res.QueuePeak >= 2*32 {
		t.Fatalf("sub-critical queue peak %d at default cap", res.QueuePeak)
	}
}

func TestServeCollectorMetrics(t *testing.T) {
	col := obs.NewMetricsCollector()
	cfg := serveConfig(t, 12, 6, 2, 60, 0.5, 46)
	cfg.Collector = col
	res, err := Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"stream_admitted_total":  res.Admitted,
		"stream_committed_total": res.Committed,
		"stream_windows_total":   int64(res.Windows),
	}
	got := map[string]int64{}
	for _, s := range col.Registry().Snapshot() {
		got[s.Name] = s.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("%s = %d, want %d (snapshot %v)", name, got[name], v, got)
		}
	}
	if got["stream_queue_depth_peak"] != int64(res.QueuePeak) {
		t.Fatalf("queue peak gauge %d != result %d", got["stream_queue_depth_peak"], res.QueuePeak)
	}
	if _, ok := got["stream_window_latency_steps"]; !ok {
		t.Fatal("window latency histogram missing from registry")
	}
	if _, ok := got["stream_txn_response_steps"]; !ok {
		t.Fatal("response histogram missing from registry")
	}
}

func TestServeConfigAndSourceErrors(t *testing.T) {
	base := serveConfig(t, 8, 4, 2, 20, 0.5, 47)

	bad := base
	bad.G = nil
	if _, err := Serve(context.Background(), bad); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad = base
	bad.Home = bad.Home[:2]
	if _, err := Serve(context.Background(), bad); err == nil {
		t.Fatal("home/object mismatch accepted")
	}
	bad = base
	bad.Source = sliceSource{{Seq: 0, Node: base.G.Nodes()[0], Objects: []tm.ObjectID{0}, Arrive: 5},
		{Seq: 1, Node: base.G.Nodes()[1], Objects: []tm.ObjectID{0}, Arrive: 2}}.source()
	if _, err := Serve(context.Background(), bad); err == nil {
		t.Fatal("decreasing arrivals accepted")
	}
	bad = base
	bad.Source = sliceSource{{Seq: 0, Node: base.G.Nodes()[0], Objects: []tm.ObjectID{99}, Arrive: 0}}.source()
	if _, err := Serve(context.Background(), bad); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	bad = base
	bad.Source = sliceSource{{Seq: 0, Node: base.G.Nodes()[0], Objects: nil, Arrive: 0}}.source()
	if _, err := Serve(context.Background(), bad); err == nil {
		t.Fatal("empty object set accepted")
	}
}

func TestServeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := serveConfig(t, 8, 4, 2, 50, 0.5, 48)
	if _, err := Serve(ctx, cfg); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestGeneratorPanics(t *testing.T) {
	topo := topology.NewClique(4)
	for name, mk := range map[string]func(){
		"rate": func() { NewGenerator(xrand.New(1), topo.Graph(), tm.UniformK(2, 1), 0, 5) },
		"limit": func() {
			NewGenerator(xrand.New(1), topo.Graph(), tm.UniformK(2, 1), 0.5, 0)
		},
		"pick": func() { NewGenerator(xrand.New(1), topo.Graph(), tm.Workload{W: 2, K: 1}, 0.5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			mk()
		}()
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("block"); err != nil || p != Block {
		t.Fatalf("block: %v %v", p, err)
	}
	if p, err := ParsePolicy("reject"); err != nil || p != Reject {
		t.Fatalf("reject: %v %v", p, err)
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if Block.String() != "block" || Reject.String() != "reject" {
		t.Fatal("policy names wrong")
	}
}

// sliceSource replays a fixed item list.
type sliceSource []Item

func (s sliceSource) source() Source { return &sliceIter{items: s} }

type sliceIter struct {
	items []Item
	next  int
}

func (it *sliceIter) Next() (Item, bool) {
	if it.next >= len(it.items) {
		return Item{}, false
	}
	it.next++
	return it.items[it.next-1], true
}
