package stream

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/engine"
	"dtmsched/internal/faults"
	"dtmsched/internal/graph"
	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/windows"
)

// Config describes one streaming service run.
type Config struct {
	// G and Metric describe the network (Metric nil = the graph itself).
	G      *graph.Graph
	Metric graph.Metric
	// NumObjects is the shared object count; Home holds each object's
	// initial position (len NumObjects).
	NumObjects int
	Home       []graph.NodeID
	// Source supplies the transaction stream (a *Generator for seeded
	// load, or any custom Source).
	Source Source
	// MaxWindow caps the transactions per scheduling window (0 = the
	// number of nodes — one full window of the paper's batch model).
	MaxWindow int
	// QueueCap bounds the admission queue (0 = 2×MaxWindow).
	QueueCap int
	// Policy selects the backpressure behavior when the queue is full.
	Policy Policy
	// Verify is the per-window engine verification policy (zero value =
	// VerifyFull, the engine's default; serving at rate usually wants
	// VerifyFast).
	Verify engine.VerifyMode
	// Retry and Deadline are the engine's per-window execution policies.
	Retry    engine.RetryPolicy
	Deadline time.Duration
	// PipelineDepth is how many cut windows may queue for execution
	// while earlier ones run (0 = 1): the cutter fills window w+1 while
	// the executor drains window w.
	PipelineDepth int
	// Collector receives stream_* admission/window metrics and the
	// engine's per-stage instrumentation; nil costs nothing.
	Collector *obs.Collector
	// Hook observes the per-window engine jobs (ledger hooks etc.).
	Hook engine.Hook

	// Faults, when set to a non-empty injector (NewChaos, or any
	// faults.Injector), turns on fault-tolerant serving: every window
	// executes under sim.RunFaulty, transactions homed on down nodes are
	// requeued with backoff instead of scheduled into a doomed window,
	// and the admission circuit breaker sheds load while windows run
	// inflated. Nil or empty keeps serving byte-identical to the
	// fault-free path (same decisions, same Digest).
	Faults faults.Injector
	// MaxRequeue bounds how many times one transaction is pushed back
	// before it is shed (0 = 3).
	MaxRequeue int
	// RequeueBackoff is the base requeue delay in window-time steps: the
	// k-th requeue of a transaction waits base·2^(k−1) steps, or until
	// its node's known restart if later (0 = 4).
	RequeueBackoff int64
	// InflationTrip is the circuit-breaker trip threshold on the rolling
	// mean window inflation — committed window makespan over fault-free
	// planned makespan, both relative to the cut step (0 = 1.5). While
	// tripped, admission runs Reject regardless of Policy.
	InflationTrip float64
	// InflationReset closes the breaker again once the rolling mean
	// falls to it (0 = halfway between 1 and InflationTrip). Must not
	// exceed InflationTrip.
	InflationReset float64
	// BreakerWindow is the rolling-mean length in executed windows
	// (0 = 4).
	BreakerWindow int
	// OnCancel selects the context-cancellation behavior: CancelAbort
	// (default) returns the context error immediately; CancelDrain
	// flushes the queue and in-flight windows and returns the summary
	// with Result.Cancelled set.
	OnCancel CancelPolicy
}

// Result summarizes one drained stream. Every field is deterministic for
// a fixed seed and configuration.
type Result struct {
	// Admitted / Rejected / Blocked are the admission-control outcomes:
	// transactions that entered the queue, were dropped by the Reject
	// policy (or the tripped breaker), or stalled at least once under
	// the Block policy.
	Admitted int64
	Rejected int64
	Blocked  int64
	// Committed counts transactions whose window the engine executed.
	Committed int64
	// Windows is the number of cut windows.
	Windows int
	// WindowSizes holds each window's transaction count, in cut order.
	WindowSizes []int
	// Clock is the final logical step (the last window's last commit).
	Clock int64
	// QueuePeak is the maximum queue depth observed after any admission.
	QueuePeak int
	// CommCost is the total object travel distance across all windows.
	CommCost int64
	// MeanResponse / MaxResponse aggregate commit − arrival over all
	// committed transactions.
	MeanResponse float64
	MaxResponse  int64
	// Throughput is Committed / Clock, in transactions per step.
	Throughput float64
	// Digest fingerprints the run's logical decisions — admission order,
	// window cuts, commit steps, and (under faults) every requeue, shed,
	// and breaker transition — so two runs can be compared for
	// bit-determinism without retaining every schedule.
	Digest uint64

	// Requeued counts requeue decisions (one transaction may requeue
	// several times); RequeuePeak is the largest requeue backlog after
	// any window cut. Both zero without faults.
	Requeued    int64
	RequeuePeak int
	// Shed counts admitted transactions dropped after exhausting their
	// requeue budget — surfaced, never silently lost.
	Shed int64
	// DegradedWindows counts executed windows that committed past their
	// planned end under faults.
	DegradedWindows int
	// MeanInflation is the mean window-relative fault inflation over all
	// executed windows (1 = every window on plan; 0 without faults).
	MeanInflation float64
	// BreakerTrips / BreakerRecoveries count admission circuit-breaker
	// transitions.
	BreakerTrips      int
	BreakerRecoveries int
	// Cancelled reports that the run was cut short by context
	// cancellation under CancelDrain: the source was abandoned but every
	// admitted transaction was flushed through a window.
	Cancelled bool
}

// windowJob is one cut window handed to the executor: the shadow
// instance (homes frozen at the objects' release positions), the
// absolute-time schedule, the member items, and the cut interval the
// health layer judges fault inflation against.
type windowJob struct {
	index      int
	in         *tm.Instance
	sched      *schedule.Schedule
	size       int
	cutClock   int64
	plannedEnd int64
}

// windowOutcome is the executor's deterministic feedback for one window:
// the window-relative inflation the breaker consumes, drained by the
// serving loop with a fixed lag of PipelineDepth windows.
type windowOutcome struct {
	index     int
	inflation float64
	degraded  bool
}

// qitem is one queued transaction plus its health-layer state.
type qitem struct {
	it       Item
	attempts int   // requeue count so far
	retryAt  int64 // earliest cut step this item is eligible again
}

// Serve drains the configured stream: admit → cut → schedule → execute
// until the source is exhausted and every window has run. It returns the
// deterministic run summary, or the first error (invalid configuration,
// an infeasible window caught by the cross-checker, or a window whose
// engine execution failed after retries).
func Serve(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	metric := cfg.Metric
	if metric == nil {
		metric = cfg.G
	}
	n := cfg.G.NumNodes()
	maxWindow := cfg.MaxWindow
	if maxWindow <= 0 {
		maxWindow = n
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 2 * maxWindow
	}
	depth := cfg.PipelineDepth
	if depth <= 0 {
		depth = 1
	}
	col := cfg.Collector

	// Fault-tolerant serving state. Everything in this block is inert
	// when the injector is nil or empty: no requeue checks, no breaker,
	// no extra digest records — the zero-fault run stays byte-identical
	// to the historical path.
	faultsOn := cfg.Faults != nil && !cfg.Faults.Empty()
	maxRequeue := cfg.MaxRequeue
	if maxRequeue <= 0 {
		maxRequeue = 3
	}
	backoffBase := cfg.RequeueBackoff
	if backoffBase <= 0 {
		backoffBase = 4
	}
	trip := cfg.InflationTrip
	if trip <= 0 {
		trip = 1.5
	}
	reset := cfg.InflationReset
	if reset <= 0 {
		reset = 1 + (trip-1)/2
	}
	breakerWin := cfg.BreakerWindow
	if breakerWin <= 0 {
		breakerWin = 4
	}
	drainOnCancel := cfg.OnCancel == CancelDrain

	// Executor: windows run through the engine (with the batch layer's
	// retry/deadline policies) while the serving loop cuts the next one.
	// The loop owns all scheduling state, so executor interleaving never
	// touches determinism: under faults the executor reports each
	// window's outcome on a FIFO channel the loop drains at fixed
	// deterministic points (before cutting window w it has consumed the
	// outcomes of windows ≤ w − PipelineDepth).
	execCtx := ctx
	if drainOnCancel {
		execCtx = context.WithoutCancel(ctx)
	}
	jobs := make(chan windowJob, depth)
	var resCh chan windowOutcome
	if faultsOn {
		resCh = make(chan windowOutcome, depth+2)
	}
	var (
		execWG    sync.WaitGroup
		execErr   error
		committed int64
	)
	oracle := lower.NewOracle(lower.Options{})
	execWG.Add(1)
	go func() {
		defer execWG.Done()
		if resCh != nil {
			defer close(resCh)
		}
		for wj := range jobs {
			if execErr != nil {
				if resCh != nil {
					resCh <- windowOutcome{index: wj.index, inflation: 1}
				}
				continue // drain remaining windows after a failure
			}
			job := engine.Job{
				Name:           fmt.Sprintf("stream/w%d", wj.index),
				Instance:       wj.in,
				Schedule:       wj.sched,
				Algorithm:      "stream/window",
				Verify:         cfg.Verify,
				SkipLowerBound: true,
			}
			if faultsOn {
				job.Faults = cfg.Faults
			}
			results, err := engine.RunBatch(execCtx, []engine.Job{job}, engine.Options{
				Workers:     1,
				Hook:        cfg.Hook,
				Collector:   col,
				Deadline:    cfg.Deadline,
				Retry:       cfg.Retry,
				LowerOracle: oracle,
			})
			if err == nil {
				for _, r := range results {
					if r.Err != nil {
						err = r.Err
						break
					}
				}
			}
			if err != nil {
				execErr = fmt.Errorf("stream: window %d execution failed: %w", wj.index, err)
				if resCh != nil {
					resCh <- windowOutcome{index: wj.index, inflation: 1}
				}
				continue
			}
			committed += int64(wj.size)
			col.StreamCommit(wj.size)
			if resCh != nil {
				oc := windowOutcome{index: wj.index, inflation: 1}
				if fr := results[0].Report.Fault; fr != nil && wj.plannedEnd > wj.cutClock {
					oc.inflation = float64(fr.Makespan-wj.cutClock) / float64(wj.plannedEnd-wj.cutClock)
					if oc.inflation < 1 {
						oc.inflation = 1
					}
					oc.degraded = fr.Makespan > wj.plannedEnd
				}
				resCh <- oc
			}
		}
	}()

	res := &Result{}
	digest := fnv.New64a()
	hash64 := func(vs ...int64) {
		var buf [8]byte
		for _, v := range vs {
			u := uint64(v)
			for i := range buf {
				buf[i] = byte(u >> (8 * i))
			}
			digest.Write(buf[:])
		}
	}
	fail := func(err error) (*Result, error) {
		close(jobs)
		execWG.Wait()
		return nil, err
	}

	// Digest tags for the fault-path records. Normal records are
	// (seq ≥ 0, step ≥ 1) pairs, so a negative first word is
	// unambiguous; none of these are written on a zero-fault run.
	const (
		digestRequeue int64 = -1
		digestShed    int64 = -2
		digestBreaker int64 = -3
	)

	// Circuit-breaker state: a rolling window of per-window inflation
	// ratios fed exclusively from the deterministic outcome drain.
	var (
		breakerOpen bool
		inflHist    []float64
		sumInfl     float64
		outcomes    int
		reported    int
	)
	handleOutcome := func(oc windowOutcome) {
		reported++
		outcomes++
		sumInfl += oc.inflation
		if oc.degraded {
			res.DegradedWindows++
		}
		col.StreamFaultWindow(oc.inflation, oc.degraded)
		inflHist = append(inflHist, oc.inflation)
		if len(inflHist) > breakerWin {
			inflHist = inflHist[1:]
		}
		var mean float64
		for _, v := range inflHist {
			mean += v
		}
		mean /= float64(len(inflHist))
		switch {
		case !breakerOpen && mean >= trip:
			breakerOpen = true
			res.BreakerTrips++
			col.StreamBreaker(true)
			hash64(digestBreaker, int64(oc.index), 1)
		case breakerOpen && mean <= reset:
			breakerOpen = false
			res.BreakerRecoveries++
			col.StreamBreaker(false)
			hash64(digestBreaker, int64(oc.index), 0)
		}
	}

	// Chained scheduling state: object release steps/nodes and per-node
	// last-commit steps span the whole stream, exactly as windows.Run
	// chains homes across a finite sequence. The mutable conflict index
	// is registered/deregistered per window so dependency graphs reuse
	// its member-list capacity; the chain checker independently
	// re-verifies every cut window's feasibility.
	relT := make([]int64, cfg.NumObjects)
	relN := append([]graph.NodeID(nil), cfg.Home...)
	nodeBusy := make(map[graph.NodeID]int64)
	index := tm.NewConflictIndex(cfg.NumObjects)
	checker := windows.NewChainChecker(metric, cfg.Home)

	var (
		queue      []qitem
		pending    *Item
		pendingHit bool // pending already counted as blocked
		srcDone    bool
		lastArrive int64 = -1
		clock      int64
		totalResp  float64
	)

	// admit pulls arrivals with Arrive ≤ upTo into the bounded queue in
	// arrival order, applying the backpressure policy when full. A
	// tripped breaker forces Reject whatever the configured policy.
	admit := func(upTo int64) error {
		var admitted, rejected, blocked int64
		policy := cfg.Policy
		if breakerOpen {
			policy = Reject
		}
		for {
			if pending == nil {
				if srcDone {
					break
				}
				it, ok := cfg.Source.Next()
				if !ok {
					srcDone = true
					break
				}
				if it.Arrive < lastArrive {
					return fmt.Errorf("stream: source emitted arrival %d after %d (must be non-decreasing)", it.Arrive, lastArrive)
				}
				if len(it.Objects) == 0 {
					return fmt.Errorf("stream: transaction %d requests no objects", it.Seq)
				}
				for _, o := range it.Objects {
					if o < 0 || int(o) >= cfg.NumObjects {
						return fmt.Errorf("stream: transaction %d requests object %d outside [0,%d)", it.Seq, o, cfg.NumObjects)
					}
				}
				lastArrive = it.Arrive
				pending = &it
				pendingHit = false
			}
			if pending.Arrive > upTo {
				break
			}
			if len(queue) >= queueCap {
				if policy == Reject {
					rejected++
					pending = nil
					continue
				}
				// Block: the arrival waits at the source; count the
				// stall once and stop pulling until space frees up.
				if !pendingHit {
					blocked++
					pendingHit = true
				}
				break
			}
			queue = append(queue, qitem{it: *pending})
			admitted++
			pending = nil
			if len(queue) > res.QueuePeak {
				res.QueuePeak = len(queue)
			}
		}
		res.Admitted += admitted
		res.Rejected += rejected
		res.Blocked += blocked
		col.StreamAdmit(admitted, rejected, blocked, len(queue))
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			if !drainOnCancel {
				return fail(err)
			}
			// Graceful shutdown: abandon the source (the un-admitted
			// pending arrival with it) and flush everything already
			// admitted through the normal cut/execute path.
			if !res.Cancelled {
				res.Cancelled = true
				srcDone = true
				pending = nil
			}
		}
		// Deterministic breaker feedback: before cutting window w, the
		// outcomes of windows ≤ w − PipelineDepth have been consumed, so
		// the breaker state feeding this iteration's admission and cut
		// depends only on the seed and configuration, never on executor
		// timing.
		if faultsOn {
			for need := res.Windows - depth + 1; reported < need; {
				handleOutcome(<-resCh)
			}
		}
		if err := admit(clock); err != nil {
			return fail(err)
		}
		if len(queue) == 0 {
			if srcDone && pending == nil {
				break
			}
			// Idle: jump the clock to the next arrival. pending is
			// non-nil here (a blocked arrival cannot coexist with an
			// empty queue since queueCap ≥ 1).
			clock = pending.Arrive
			if err := admit(clock); err != nil {
				return fail(err)
			}
		}

		// Cut: first-come-first-served from the queue front, skipping
		// transactions whose node is already in the window (the batch
		// model admits one transaction per node per window); skipped
		// items keep their queue order for the next cut. Under faults
		// the health layer runs first: items homed on a node that is
		// down at the cut step are requeued with exponential backoff in
		// window-time (or until the node's known restart), and items
		// that exhausted their requeue budget are shed.
		cut := make([]Item, 0, maxWindow)
		inWindow := make(map[graph.NodeID]bool, maxWindow)
		rest := queue[:0]
		var requeuedNow, shedNow int64
		for _, q := range queue {
			if faultsOn {
				if q.retryAt > clock {
					rest = append(rest, q)
					continue
				}
				if restart, down := cfg.Faults.NodeDownUntil(q.it.Node, clock+1); down {
					q.attempts++
					if q.attempts > maxRequeue {
						shedNow++
						res.Shed++
						hash64(digestShed, int64(q.it.Seq), clock)
						continue
					}
					shift := q.attempts - 1
					if shift > 20 {
						shift = 20
					}
					q.retryAt = clock + backoffBase<<shift
					if restart != faults.Forever && restart > q.retryAt {
						q.retryAt = restart
					}
					requeuedNow++
					res.Requeued++
					hash64(digestRequeue, int64(q.it.Seq), q.retryAt)
					rest = append(rest, q)
					continue
				}
			}
			if len(cut) < maxWindow && !inWindow[q.it.Node] {
				inWindow[q.it.Node] = true
				cut = append(cut, q.it)
			} else {
				rest = append(rest, q)
			}
		}
		queue = rest
		if faultsOn {
			backlog := 0
			for _, q := range queue {
				if q.attempts > 0 {
					backlog++
				}
			}
			if backlog > res.RequeuePeak {
				res.RequeuePeak = backlog
			}
			if requeuedNow > 0 || shedNow > 0 {
				col.StreamRequeue(requeuedNow, backlog)
				col.StreamShed(shedNow)
			}
			if len(cut) == 0 {
				// Everything eligible was requeued or shed: advance the
				// clock to the next event (earliest retry, or the next
				// arrival if the queue has room for it) instead of
				// cutting an empty window. Bounded retries guarantee
				// progress even against a permanently down node.
				if len(queue) == 0 {
					continue // loop top handles drain/idle-jump
				}
				next := int64(-1)
				for _, q := range queue {
					if next < 0 || q.retryAt < next {
						next = q.retryAt
					}
				}
				if len(queue) < queueCap && pending != nil && pending.Arrive < next {
					next = pending.Arrive
				}
				if next <= clock {
					next = clock + 1
				}
				clock = next
				continue
			}
		}

		// Shadow instance: this window's transactions with object homes
		// frozen at the current release positions, so the engine's
		// algebraic validation and simulator replay see exactly the
		// handoff state the cutter scheduled against. relN is snapshotted
		// because the loop keeps mutating it while the executor runs.
		txns := make([]tm.Txn, len(cut))
		for i, it := range cut {
			txns[i] = tm.Txn{Node: it.Node, Objects: it.Objects}
		}
		in := tm.NewInstance(cfg.G, metric, cfg.NumObjects, txns, append([]graph.NodeID(nil), relN...))

		// Dependency graph over the mutable index: register this
		// window's members, build, deregister. Cross-window constraints
		// ride on relT/relN, not on index edges, so the index only ever
		// holds the window being cut (and retains member-list capacity
		// across windows).
		for i := range in.Txns {
			index.Add(in.Txns[i].ID, in.Txns[i].Objects)
		}
		h := depgraph.BuildOpts(in, nil, depgraph.Options{Index: index})
		local := h.GreedyColor(h.OrderByNode(in))
		for i := range in.Txns {
			index.Remove(in.Txns[i].ID, in.Txns[i].Objects)
		}

		// List-schedule in coloring order (colors, then IDs): each
		// transaction takes the earliest step after the cut boundary
		// that its objects can reach it and its node is free. Arrivals
		// need no explicit constraint: every member arrived ≤ clock, so
		// t ≥ clock+1 > its arrival.
		order := make([]int, len(h.IDs))
		for i := range order {
			order[i] = i
		}
		sortByColor(order, local, h.IDs)
		s := schedule.New(in.NumTxns())
		windowEnd := clock
		for _, i := range order {
			id := h.IDs[i]
			txn := &in.Txns[id]
			t := clock + 1
			for _, o := range txn.Objects {
				if need := relT[o] + metric.Dist(relN[o], txn.Node); need > t {
					t = need
				}
			}
			if busy := nodeBusy[txn.Node]; busy >= t {
				t = busy + 1
			}
			s.Times[id] = t
			nodeBusy[txn.Node] = t
			for _, o := range txn.Objects {
				if t > relT[o] {
					relT[o] = t
					relN[o] = txn.Node
				}
			}
			if t > windowEnd {
				windowEnd = t
			}
		}

		// Independent feasibility cross-check (the windows.ChainChecker
		// the finite-sequence scheduler uses): handoff chains and
		// per-node commit ordering across every window so far.
		if err := checker.Check(in, s); err != nil {
			return fail(fmt.Errorf("stream: window %d infeasible: %w", res.Windows, err))
		}

		// Window accounting: latency (cut → last commit), per-member
		// response times, communication cost, and the determinism
		// digest over (seq, commit) pairs.
		responses := make([]int64, len(cut))
		for i, it := range cut {
			r := s.Times[in.Txns[i].ID] - it.Arrive
			responses[i] = r
			totalResp += float64(r)
			if r > res.MaxResponse {
				res.MaxResponse = r
			}
			hash64(int64(it.Seq), s.Times[in.Txns[i].ID])
		}
		res.CommCost += s.CommCost(in)
		col.StreamWindow(len(cut), windowEnd-clock, responses)
		res.WindowSizes = append(res.WindowSizes, len(cut))

		cancelC := ctx.Done()
		if drainOnCancel {
			cancelC = nil // block until the executor frees a slot
		}
		select {
		case jobs <- windowJob{index: res.Windows, in: in, sched: s, size: len(cut), cutClock: clock, plannedEnd: windowEnd}:
		case <-cancelC:
			return fail(ctx.Err())
		}
		res.Windows++
		clock = windowEnd
	}

	close(jobs)
	execWG.Wait()
	if faultsOn {
		for oc := range resCh {
			handleOutcome(oc)
		}
	}
	if execErr != nil {
		return nil, execErr
	}
	res.Committed = committed
	res.Clock = clock
	if res.Committed > 0 {
		res.MeanResponse = totalResp / float64(res.Committed)
	}
	if res.Clock > 0 {
		res.Throughput = float64(res.Committed) / float64(res.Clock)
	}
	if outcomes > 0 {
		res.MeanInflation = sumInfl / float64(outcomes)
	}
	res.Digest = digest.Sum64()
	return res, nil
}

// sortByColor orders vertex indices by (color, transaction ID) — the
// deterministic list-scheduling order shared with windows.Run.
func sortByColor(order []int, color []int64, ids []tm.TxnID) {
	sort.Slice(order, func(a, b int) bool {
		if color[order[a]] != color[order[b]] {
			return color[order[a]] < color[order[b]]
		}
		return ids[order[a]] < ids[order[b]]
	})
}
