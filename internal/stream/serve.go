package stream

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/windows"
)

// Config describes one streaming service run.
type Config struct {
	// G and Metric describe the network (Metric nil = the graph itself).
	G      *graph.Graph
	Metric graph.Metric
	// NumObjects is the shared object count; Home holds each object's
	// initial position (len NumObjects).
	NumObjects int
	Home       []graph.NodeID
	// Source supplies the transaction stream (a *Generator for seeded
	// load, or any custom Source).
	Source Source
	// MaxWindow caps the transactions per scheduling window (0 = the
	// number of nodes — one full window of the paper's batch model).
	MaxWindow int
	// QueueCap bounds the admission queue (0 = 2×MaxWindow).
	QueueCap int
	// Policy selects the backpressure behavior when the queue is full.
	Policy Policy
	// Verify is the per-window engine verification policy (zero value =
	// VerifyFull, the engine's default; serving at rate usually wants
	// VerifyFast).
	Verify engine.VerifyMode
	// Retry and Deadline are the engine's per-window execution policies.
	Retry    engine.RetryPolicy
	Deadline time.Duration
	// PipelineDepth is how many cut windows may queue for execution
	// while earlier ones run (0 = 1): the cutter fills window w+1 while
	// the executor drains window w.
	PipelineDepth int
	// Collector receives stream_* admission/window metrics and the
	// engine's per-stage instrumentation; nil costs nothing.
	Collector *obs.Collector
	// Hook observes the per-window engine jobs (ledger hooks etc.).
	Hook engine.Hook
}

// Result summarizes one drained stream. All fields except nothing are
// deterministic for a fixed seed and configuration.
type Result struct {
	// Admitted / Rejected / Blocked are the admission-control outcomes:
	// transactions that entered the queue, were dropped by the Reject
	// policy, or stalled at least once under the Block policy.
	Admitted int64
	Rejected int64
	Blocked  int64
	// Committed counts transactions whose window the engine executed.
	Committed int64
	// Windows is the number of cut windows.
	Windows int
	// WindowSizes holds each window's transaction count, in cut order.
	WindowSizes []int
	// Clock is the final logical step (the last window's last commit).
	Clock int64
	// QueuePeak is the maximum queue depth observed after any admission.
	QueuePeak int
	// CommCost is the total object travel distance across all windows.
	CommCost int64
	// MeanResponse / MaxResponse aggregate commit − arrival over all
	// committed transactions.
	MeanResponse float64
	MaxResponse  int64
	// Throughput is Committed / Clock, in transactions per step.
	Throughput float64
	// Digest fingerprints the run's logical decisions — admission order,
	// window cuts, and commit steps — so two runs can be compared for
	// bit-determinism without retaining every schedule.
	Digest uint64
}

// windowJob is one cut window handed to the executor: the shadow
// instance (homes frozen at the objects' release positions), the
// absolute-time schedule, and the member items.
type windowJob struct {
	index int
	in    *tm.Instance
	sched *schedule.Schedule
	size  int
}

// Serve drains the configured stream: admit → cut → schedule → execute
// until the source is exhausted and every window has run. It returns the
// deterministic run summary, or the first error (invalid configuration,
// an infeasible window caught by the cross-checker, or a window whose
// engine execution failed after retries).
func Serve(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.G == nil || cfg.Source == nil {
		return nil, fmt.Errorf("stream: Config needs G and Source")
	}
	metric := cfg.Metric
	if metric == nil {
		metric = cfg.G
	}
	if cfg.NumObjects <= 0 {
		return nil, fmt.Errorf("stream: NumObjects %d < 1", cfg.NumObjects)
	}
	if len(cfg.Home) != cfg.NumObjects {
		return nil, fmt.Errorf("stream: %d homes for %d objects", len(cfg.Home), cfg.NumObjects)
	}
	n := cfg.G.NumNodes()
	maxWindow := cfg.MaxWindow
	if maxWindow <= 0 {
		maxWindow = n
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 2 * maxWindow
	}
	depth := cfg.PipelineDepth
	if depth <= 0 {
		depth = 1
	}
	col := cfg.Collector

	// Executor: windows run through the engine (with the batch layer's
	// retry/deadline policies) while the serving loop cuts the next one.
	// The loop owns all scheduling state, so executor interleaving never
	// touches determinism.
	jobs := make(chan windowJob, depth)
	var (
		execWG    sync.WaitGroup
		execErr   error
		committed int64
	)
	oracle := lower.NewOracle(lower.Options{})
	execWG.Add(1)
	go func() {
		defer execWG.Done()
		for wj := range jobs {
			if execErr != nil {
				continue // drain remaining windows after a failure
			}
			results, err := engine.RunBatch(ctx, []engine.Job{{
				Name:           fmt.Sprintf("stream/w%d", wj.index),
				Instance:       wj.in,
				Schedule:       wj.sched,
				Algorithm:      "stream/window",
				Verify:         cfg.Verify,
				SkipLowerBound: true,
			}}, engine.Options{
				Workers:     1,
				Hook:        cfg.Hook,
				Collector:   col,
				Deadline:    cfg.Deadline,
				Retry:       cfg.Retry,
				LowerOracle: oracle,
			})
			if err == nil {
				for _, r := range results {
					if r.Err != nil {
						err = r.Err
						break
					}
				}
			}
			if err != nil {
				execErr = fmt.Errorf("stream: window %d execution failed: %w", wj.index, err)
				continue
			}
			committed += int64(wj.size)
			col.StreamCommit(wj.size)
		}
	}()

	res := &Result{}
	digest := fnv.New64a()
	hash64 := func(vs ...int64) {
		var buf [8]byte
		for _, v := range vs {
			u := uint64(v)
			for i := range buf {
				buf[i] = byte(u >> (8 * i))
			}
			digest.Write(buf[:])
		}
	}
	fail := func(err error) (*Result, error) {
		close(jobs)
		execWG.Wait()
		return nil, err
	}

	// Chained scheduling state: object release steps/nodes and per-node
	// last-commit steps span the whole stream, exactly as windows.Run
	// chains homes across a finite sequence. The mutable conflict index
	// is registered/deregistered per window so dependency graphs reuse
	// its member-list capacity; the chain checker independently
	// re-verifies every cut window's feasibility.
	relT := make([]int64, cfg.NumObjects)
	relN := append([]graph.NodeID(nil), cfg.Home...)
	nodeBusy := make(map[graph.NodeID]int64)
	index := tm.NewConflictIndex(cfg.NumObjects)
	checker := windows.NewChainChecker(metric, cfg.Home)

	var (
		queue      []Item
		pending    *Item
		pendingHit bool // pending already counted as blocked
		srcDone    bool
		lastArrive int64 = -1
		clock      int64
		totalResp  float64
	)

	// admit pulls arrivals with Arrive ≤ upTo into the bounded queue in
	// arrival order, applying the backpressure policy when full.
	admit := func(upTo int64) error {
		var admitted, rejected, blocked int64
		for {
			if pending == nil {
				it, ok := cfg.Source.Next()
				if !ok {
					srcDone = true
					break
				}
				if it.Arrive < lastArrive {
					return fmt.Errorf("stream: source emitted arrival %d after %d (must be non-decreasing)", it.Arrive, lastArrive)
				}
				if len(it.Objects) == 0 {
					return fmt.Errorf("stream: transaction %d requests no objects", it.Seq)
				}
				for _, o := range it.Objects {
					if o < 0 || int(o) >= cfg.NumObjects {
						return fmt.Errorf("stream: transaction %d requests object %d outside [0,%d)", it.Seq, o, cfg.NumObjects)
					}
				}
				lastArrive = it.Arrive
				pending = &it
				pendingHit = false
			}
			if pending.Arrive > upTo {
				break
			}
			if len(queue) >= queueCap {
				if cfg.Policy == Reject {
					rejected++
					pending = nil
					continue
				}
				// Block: the arrival waits at the source; count the
				// stall once and stop pulling until space frees up.
				if !pendingHit {
					blocked++
					pendingHit = true
				}
				break
			}
			queue = append(queue, *pending)
			admitted++
			pending = nil
			if len(queue) > res.QueuePeak {
				res.QueuePeak = len(queue)
			}
		}
		res.Admitted += admitted
		res.Rejected += rejected
		res.Blocked += blocked
		col.StreamAdmit(admitted, rejected, blocked, len(queue))
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		if err := admit(clock); err != nil {
			return fail(err)
		}
		if len(queue) == 0 {
			if srcDone && pending == nil {
				break
			}
			// Idle: jump the clock to the next arrival. pending is
			// non-nil here (a blocked arrival cannot coexist with an
			// empty queue since queueCap ≥ 1).
			clock = pending.Arrive
			if err := admit(clock); err != nil {
				return fail(err)
			}
		}

		// Cut: first-come-first-served from the queue front, skipping
		// transactions whose node is already in the window (the batch
		// model admits one transaction per node per window); skipped
		// items keep their queue order for the next cut.
		cut := make([]Item, 0, maxWindow)
		inWindow := make(map[graph.NodeID]bool, maxWindow)
		rest := queue[:0]
		for _, it := range queue {
			if len(cut) < maxWindow && !inWindow[it.Node] {
				inWindow[it.Node] = true
				cut = append(cut, it)
			} else {
				rest = append(rest, it)
			}
		}
		queue = rest

		// Shadow instance: this window's transactions with object homes
		// frozen at the current release positions, so the engine's
		// algebraic validation and simulator replay see exactly the
		// handoff state the cutter scheduled against. relN is snapshotted
		// because the loop keeps mutating it while the executor runs.
		txns := make([]tm.Txn, len(cut))
		for i, it := range cut {
			txns[i] = tm.Txn{Node: it.Node, Objects: it.Objects}
		}
		in := tm.NewInstance(cfg.G, metric, cfg.NumObjects, txns, append([]graph.NodeID(nil), relN...))

		// Dependency graph over the mutable index: register this
		// window's members, build, deregister. Cross-window constraints
		// ride on relT/relN, not on index edges, so the index only ever
		// holds the window being cut (and retains member-list capacity
		// across windows).
		for i := range in.Txns {
			index.Add(in.Txns[i].ID, in.Txns[i].Objects)
		}
		h := depgraph.BuildOpts(in, nil, depgraph.Options{Index: index})
		local := h.GreedyColor(h.OrderByNode(in))
		for i := range in.Txns {
			index.Remove(in.Txns[i].ID, in.Txns[i].Objects)
		}

		// List-schedule in coloring order (colors, then IDs): each
		// transaction takes the earliest step after the cut boundary
		// that its objects can reach it and its node is free. Arrivals
		// need no explicit constraint: every member arrived ≤ clock, so
		// t ≥ clock+1 > its arrival.
		order := make([]int, len(h.IDs))
		for i := range order {
			order[i] = i
		}
		sortByColor(order, local, h.IDs)
		s := schedule.New(in.NumTxns())
		windowEnd := clock
		for _, i := range order {
			id := h.IDs[i]
			txn := &in.Txns[id]
			t := clock + 1
			for _, o := range txn.Objects {
				if need := relT[o] + metric.Dist(relN[o], txn.Node); need > t {
					t = need
				}
			}
			if busy := nodeBusy[txn.Node]; busy >= t {
				t = busy + 1
			}
			s.Times[id] = t
			nodeBusy[txn.Node] = t
			for _, o := range txn.Objects {
				if t > relT[o] {
					relT[o] = t
					relN[o] = txn.Node
				}
			}
			if t > windowEnd {
				windowEnd = t
			}
		}

		// Independent feasibility cross-check (the windows.ChainChecker
		// the finite-sequence scheduler uses): handoff chains and
		// per-node commit ordering across every window so far.
		if err := checker.Check(in, s); err != nil {
			return fail(fmt.Errorf("stream: window %d infeasible: %w", res.Windows, err))
		}

		// Window accounting: latency (cut → last commit), per-member
		// response times, communication cost, and the determinism
		// digest over (seq, commit) pairs.
		responses := make([]int64, len(cut))
		for i, it := range cut {
			r := s.Times[in.Txns[i].ID] - it.Arrive
			responses[i] = r
			totalResp += float64(r)
			if r > res.MaxResponse {
				res.MaxResponse = r
			}
			hash64(int64(it.Seq), s.Times[in.Txns[i].ID])
		}
		res.CommCost += s.CommCost(in)
		col.StreamWindow(len(cut), windowEnd-clock, responses)
		res.WindowSizes = append(res.WindowSizes, len(cut))

		select {
		case jobs <- windowJob{index: res.Windows, in: in, sched: s, size: len(cut)}:
		case <-ctx.Done():
			return fail(ctx.Err())
		}
		res.Windows++
		clock = windowEnd
	}

	close(jobs)
	execWG.Wait()
	if execErr != nil {
		return nil, execErr
	}
	res.Committed = committed
	res.Clock = clock
	if res.Committed > 0 {
		res.MeanResponse = totalResp / float64(res.Committed)
	}
	if res.Clock > 0 {
		res.Throughput = float64(res.Committed) / float64(res.Clock)
	}
	res.Digest = digest.Sum64()
	return res, nil
}

// sortByColor orders vertex indices by (color, transaction ID) — the
// deterministic list-scheduling order shared with windows.Run.
func sortByColor(order []int, color []int64, ids []tm.TxnID) {
	sort.Slice(order, func(a, b int) bool {
		if color[order[a]] != color[order[b]] {
			return color[order[a]] < color[order[b]]
		}
		return ids[order[a]] < ids[order[b]]
	})
}
