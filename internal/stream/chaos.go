package stream

import (
	"fmt"

	"dtmsched/internal/faults"
	"dtmsched/internal/graph"
)

// ChaosConfig parameterizes the serving chaos plan: one scalar fault
// rate fanned out over the fault classes with the same mapping the E20
// fault-inflation sweep uses, drawn recurrently so pressure persists
// over the whole serving horizon instead of clustering near step 0.
type ChaosConfig struct {
	// Rate is the per-site fault probability per chunk, in [0, 1].
	// Links draw a down and a slow interval at Rate each, nodes crash at
	// Rate/2, and dispatches drop at Rate/4 — the E20 mapping.
	Rate float64
	// Seed roots the plan's randomness (deterministic per seed).
	Seed int64
	// Horizon is the serving step range the plan covers; steps beyond it
	// are fault-free, so size it past the expected final clock.
	Horizon int64
	// Chunk is the redraw period in steps — the "serving window" the
	// plan is keyed to (0 = Horizon/16, min 8): every fault site rolls
	// fresh dice each chunk.
	Chunk int64
}

// NewChaos builds the chaos injector for a serving run, or nil when the
// rate is zero (serving then stays on the exact fault-free path). The
// plan is a plain *faults.Plan, so it composes with scripted injectors
// via faults.Compose.
func NewChaos(cc ChaosConfig, g *graph.Graph) (faults.Injector, error) {
	if cc.Rate < 0 || cc.Rate > 1 {
		return nil, &ConfigError{"Faults", fmt.Sprintf("chaos rate %v outside [0,1]", cc.Rate)}
	}
	if cc.Rate == 0 {
		return nil, nil
	}
	if cc.Horizon < 1 {
		return nil, &ConfigError{"Faults", fmt.Sprintf("chaos horizon %d < 1", cc.Horizon)}
	}
	chunk := cc.Chunk
	if chunk <= 0 {
		chunk = cc.Horizon / 16
		if chunk < 8 {
			chunk = 8
		}
	}
	outage := chunk / 2
	if outage < 1 {
		outage = 1
	}
	p, err := faults.New(faults.Config{
		Seed:         cc.Seed,
		Horizon:      cc.Horizon,
		Recur:        chunk,
		LinkDownRate: cc.Rate,
		LinkSlowRate: cc.Rate,
		CrashRate:    cc.Rate / 2,
		DropRate:     cc.Rate / 4,
		MeanOutage:   outage,
	}, g)
	if err != nil {
		return nil, err
	}
	return p, nil
}
