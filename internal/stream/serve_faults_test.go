package stream

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dtmsched/internal/engine"
	"dtmsched/internal/faults"
	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// TestServeZeroFaultDigestPinned pins the fault-free serving digest:
// the fault-tolerance layer must be byte-invisible when no injector is
// configured — same digest with a nil injector, an explicitly empty
// plan, or fault knobs set without an injector.
func TestServeZeroFaultDigestPinned(t *testing.T) {
	pins := []struct {
		name string
		mk   func() Config
		want uint64
	}{
		{"clique24", func() Config {
			cfg := serveConfig(t, 24, 8, 2, 150, 0.5, 41)
			cfg.PipelineDepth = 3
			return cfg
		}, 0xf3776ca50e2a89b1},
		{"clique16", func() Config {
			return serveConfig(t, 16, 6, 2, 80, 0.4, 42)
		}, 0xeae21719957f6c2c},
	}
	for _, p := range pins {
		base, err := Serve(context.Background(), p.mk())
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if base.Digest != p.want {
			t.Errorf("%s: zero-fault digest %016x, want pinned %016x", p.name, base.Digest, p.want)
		}
		empty := p.mk()
		empty.Faults = faults.MustFromFaults() // empty plan, not nil
		empty.MaxRequeue = 7
		empty.InflationTrip = 1.01
		empty.BreakerWindow = 2
		re, err := Serve(context.Background(), empty)
		if err != nil {
			t.Fatalf("%s empty-plan: %v", p.name, err)
		}
		if re.Digest != base.Digest {
			t.Errorf("%s: empty injector changed the digest: %016x vs %016x", p.name, re.Digest, base.Digest)
		}
		if re.Requeued != 0 || re.Shed != 0 || re.BreakerTrips != 0 || re.MeanInflation != 0 {
			t.Errorf("%s: empty injector produced fault accounting: %+v", p.name, re)
		}
	}
}

// chaosConfig is the pinned chaos-soak setup shared by the determinism
// tests: clique-16 at 15% chaos with per-chunk redraws.
func chaosConfig(t *testing.T, depth int) Config {
	t.Helper()
	cfg := serveConfig(t, 16, 8, 2, 200, 0.6, 77)
	inj, err := NewChaos(ChaosConfig{Rate: 0.15, Seed: 99, Horizon: 1200, Chunk: 64}, cfg.G)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = inj
	cfg.PipelineDepth = depth
	return cfg
}

// TestServeChaosDeterministicAcrossDepths pins the chaos digest and
// requires bit-identical runs at every pipeline depth: the executor's
// feedback is drained at deterministic points, so wall-clock overlap
// must never leak into a decision.
func TestServeChaosDeterministicAcrossDepths(t *testing.T) {
	const want = uint64(0xb35dc9c44d429827)
	var first *Result
	for _, depth := range []int{1, 2, 4} {
		res, err := Serve(context.Background(), chaosConfig(t, depth))
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if res.Digest != want {
			t.Errorf("depth %d: chaos digest %016x, want pinned %016x", depth, res.Digest, want)
		}
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(res, first) {
			t.Errorf("depth %d: result differs from depth 1:\n%+v\nvs\n%+v", depth, res, first)
		}
	}
	if first.Requeued == 0 {
		t.Error("chaos soak never requeued — the health layer did not engage")
	}
	if first.MeanInflation < 1 {
		t.Errorf("mean inflation %v < 1", first.MeanInflation)
	}
	if first.Admitted != first.Committed+first.Shed {
		t.Errorf("admitted %d != committed %d + shed %d", first.Admitted, first.Committed, first.Shed)
	}
}

// faultSliceConfig builds a 4-node clique service over a fixed item list.
func faultSliceConfig(t *testing.T, items []Item) Config {
	t.Helper()
	topo := topology.NewClique(4)
	g := topo.Graph()
	return Config{
		G:          g,
		Metric:     graph.FuncMetric(topo.Dist),
		NumObjects: 2,
		Home:       []graph.NodeID{g.Nodes()[0], g.Nodes()[0]},
		Source:     sliceSource(items).source(),
		Verify:     engine.VerifyFast,
	}
}

func TestServeRequeuesAroundRestartingNode(t *testing.T) {
	items := []Item{
		{Seq: 0, Node: 0, Objects: []tm.ObjectID{0}, Arrive: 0},
		{Seq: 1, Node: 1, Objects: []tm.ObjectID{1}, Arrive: 0}, // homed on the crashed node
		{Seq: 2, Node: 2, Objects: []tm.ObjectID{0}, Arrive: 1},
		{Seq: 3, Node: 3, Objects: []tm.ObjectID{1}, Arrive: 2},
	}
	cfg := faultSliceConfig(t, items)
	cfg.Faults = faults.MustFromFaults(faults.Fault{Kind: faults.NodeCrash, From: 1, To: 8, Node: 1})
	res, err := Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeued == 0 {
		t.Fatalf("transaction on a down node was never requeued: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("restarting node shed traffic: %+v", res)
	}
	if res.Committed != 4 || res.Admitted != 4 {
		t.Fatalf("lossless requeue expected 4 commits: %+v", res)
	}
	if res.RequeuePeak < 1 {
		t.Fatalf("requeue backlog never observed: %+v", res)
	}
}

func TestServeShedsAfterRequeueBudget(t *testing.T) {
	items := []Item{
		{Seq: 0, Node: 0, Objects: []tm.ObjectID{0}, Arrive: 0},
		{Seq: 1, Node: 1, Objects: []tm.ObjectID{1}, Arrive: 0}, // node 1 never restarts
		{Seq: 2, Node: 2, Objects: []tm.ObjectID{0}, Arrive: 1},
	}
	cfg := faultSliceConfig(t, items)
	cfg.Faults = faults.MustFromFaults(faults.Fault{Kind: faults.NodeCrash, From: 1, To: faults.Forever, Node: 1})
	cfg.MaxRequeue = 2
	res, err := Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 1 {
		t.Fatalf("expected exactly the dead node's transaction shed: %+v", res)
	}
	if res.Requeued != 2 {
		t.Fatalf("expected MaxRequeue=2 requeues before shedding, got %d", res.Requeued)
	}
	if res.Committed != 2 || res.Admitted != 3 {
		t.Fatalf("surviving transactions must commit: %+v", res)
	}
	if res.Admitted != res.Committed+res.Shed {
		t.Fatalf("admission accounting leak: %+v", res)
	}

	// Everything on the dead node: the stream must still terminate, with
	// every transaction surfaced as shed rather than looping forever.
	all := []Item{
		{Seq: 0, Node: 1, Objects: []tm.ObjectID{0}, Arrive: 0},
		{Seq: 1, Node: 1, Objects: []tm.ObjectID{1}, Arrive: 1},
	}
	cfg = faultSliceConfig(t, all)
	cfg.Faults = faults.MustFromFaults(faults.Fault{Kind: faults.NodeCrash, From: 1, To: faults.Forever, Node: 1})
	cfg.MaxRequeue = 2
	res, err = Serve(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 2 || res.Committed != 0 || res.Windows != 0 {
		t.Fatalf("all-shed stream: %+v", res)
	}
}

// TestServeBreakerTripsAndRecovers drives a line topology through a
// 120-step partition plus a slow link, then a healed network: the
// rolling inflation trips the breaker (admission shifts Block→Reject,
// so rejects appear under a Block policy), and the healed tail closes
// it again. Digest pinned — the whole episode is deterministic.
func TestServeBreakerTripsAndRecovers(t *testing.T) {
	mk := func() Config {
		topo := topology.NewLine(8)
		g := topo.Graph()
		return Config{
			G: g, Metric: graph.FuncMetric(topo.Dist),
			NumObjects: 1, Home: []graph.NodeID{g.Nodes()[0]},
			Source:    NewGenerator(xrand.NewDerived(5, "stream", "gen"), g, tm.SingleObject(), 0.6, 160),
			Verify:    engine.VerifyFast,
			MaxWindow: 4, QueueCap: 6, Policy: Block,
			BreakerWindow: 2, InflationTrip: 1.5, InflationReset: 1.2,
			PipelineDepth: 2,
			Faults: faults.MustFromFaults(
				faults.Fault{Kind: faults.LinkDown, From: 1, To: 120, U: 3, V: 4},
				faults.Fault{Kind: faults.LinkSlow, From: 1, To: 120, U: 1, V: 2, Factor: 6},
			),
		}
	}
	res, err := Serve(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != 0x703671723aea5cb6 {
		t.Errorf("breaker episode digest %016x, want pinned 703671723aea5cb6", res.Digest)
	}
	if res.BreakerTrips < 1 || res.BreakerRecoveries < 1 {
		t.Fatalf("breaker never cycled: %+v", res)
	}
	if res.Rejected == 0 {
		t.Fatalf("tripped breaker never shed admission load under Block policy: %+v", res)
	}
	if res.Blocked == 0 {
		t.Fatalf("closed-breaker periods never blocked: %+v", res)
	}
	if res.DegradedWindows == 0 || res.MeanInflation <= 1 {
		t.Fatalf("partition produced no degraded windows: %+v", res)
	}
	again, err := Serve(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("breaker episode not deterministic:\n%+v\nvs\n%+v", res, again)
	}
}

func TestServeConfigValidate(t *testing.T) {
	mkBase := func() Config { return serveConfig(t, 8, 4, 2, 20, 0.5, 47) }
	cases := []struct {
		name   string
		field  string
		mutate func(*Config)
	}{
		{"nil-graph", "G", func(c *Config) { c.G = nil }},
		{"nil-source", "Source", func(c *Config) { c.Source = nil }},
		{"no-objects", "NumObjects", func(c *Config) { c.NumObjects = 0 }},
		{"neg-objects", "NumObjects", func(c *Config) { c.NumObjects = -3 }},
		{"short-homes", "Home", func(c *Config) { c.Home = c.Home[:1] }},
		{"home-range", "Home", func(c *Config) { c.Home[0] = 99 }},
		{"neg-window", "MaxWindow", func(c *Config) { c.MaxWindow = -1 }},
		{"neg-queue", "QueueCap", func(c *Config) { c.QueueCap = -2 }},
		{"neg-depth", "PipelineDepth", func(c *Config) { c.PipelineDepth = -1 }},
		{"bad-policy", "Policy", func(c *Config) { c.Policy = Policy(7) }},
		{"neg-deadline", "Deadline", func(c *Config) { c.Deadline = -time.Second }},
		{"bad-cancel", "OnCancel", func(c *Config) { c.OnCancel = CancelPolicy(9) }},
		{"neg-requeue", "MaxRequeue", func(c *Config) { c.MaxRequeue = -1 }},
		{"neg-backoff", "RequeueBackoff", func(c *Config) { c.RequeueBackoff = -4 }},
		{"neg-breaker", "BreakerWindow", func(c *Config) { c.BreakerWindow = -1 }},
		{"neg-trip", "InflationTrip", func(c *Config) { c.InflationTrip = -0.5 }},
		{"neg-reset", "InflationReset", func(c *Config) { c.InflationReset = -0.5 }},
		{"inverted-thresholds", "InflationReset", func(c *Config) {
			c.InflationTrip = 1.2
			c.InflationReset = 1.5
		}},
	}
	for _, tc := range cases {
		cfg := mkBase()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		} else {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
			} else if ce.Field != tc.field {
				t.Errorf("%s: error names field %q, want %q", tc.name, ce.Field, tc.field)
			}
			// Serve must surface the identical typed error.
			if _, serr := Serve(context.Background(), cfg); serr == nil || !errors.As(serr, &ce) {
				t.Errorf("%s: Serve did not return the typed config error (got %v)", tc.name, serr)
			}
		}
	}
	good := mkBase()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMakeGeneratorErrors(t *testing.T) {
	topo := topology.NewClique(4)
	g := topo.Graph()
	w := tm.UniformK(2, 1)
	cases := []struct {
		name string
		mk   func() (*Generator, error)
	}{
		{"nil-rng", func() (*Generator, error) { return MakeGenerator(nil, g, w, 0.5, 5) }},
		{"nil-graph", func() (*Generator, error) { return MakeGenerator(xrand.New(1), nil, w, 0.5, 5) }},
		{"zero-rate", func() (*Generator, error) { return MakeGenerator(xrand.New(1), g, w, 0, 5) }},
		{"neg-rate", func() (*Generator, error) { return MakeGenerator(xrand.New(1), g, w, -0.5, 5) }},
		{"zero-limit", func() (*Generator, error) { return MakeGenerator(xrand.New(1), g, w, 0.5, 0) }},
		{"no-pick", func() (*Generator, error) { return MakeGenerator(xrand.New(1), g, tm.Workload{W: 2, K: 1}, 0.5, 5) }},
	}
	for _, tc := range cases {
		gen, err := tc.mk()
		if err == nil || gen != nil {
			t.Errorf("%s: accepted (gen=%v err=%v)", tc.name, gen, err)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
		}
	}
	gen, err := MakeGenerator(xrand.New(1), g, w, 0.5, 5)
	if err != nil || gen == nil {
		t.Fatalf("valid generator rejected: %v", err)
	}
}

// cancellingSource cancels a context after a fixed number of pulls —
// a deterministic mid-stream shutdown trigger.
type cancellingSource struct {
	inner  Source
	pulls  int
	after  int
	cancel context.CancelFunc
}

func (c *cancellingSource) Next() (Item, bool) {
	c.pulls++
	if c.pulls == c.after {
		c.cancel()
	}
	return c.inner.Next()
}

func TestServeCancelDrain(t *testing.T) {
	run := func() *Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg := serveConfig(t, 12, 6, 2, 200, 0.5, 49)
		cfg.Source = &cancellingSource{inner: cfg.Source, after: 60, cancel: cancel}
		cfg.OnCancel = CancelDrain
		res, err := Serve(ctx, cfg)
		if err != nil {
			t.Fatalf("graceful drain returned error: %v", err)
		}
		return res
	}
	res := run()
	if !res.Cancelled {
		t.Fatalf("drained run not marked cancelled: %+v", res)
	}
	if res.Admitted == 0 || res.Admitted >= 200 {
		t.Fatalf("cancellation should truncate the stream: %+v", res)
	}
	if res.Committed != res.Admitted {
		t.Fatalf("drain dropped admitted work: committed %d of %d", res.Committed, res.Admitted)
	}
	if res.Windows == 0 || res.Clock == 0 || res.Digest == 0 {
		t.Fatalf("drained summary incomplete: %+v", res)
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Fatalf("graceful drain not deterministic:\n%+v\nvs\n%+v", res, again)
	}
}

func TestServeCancelAbortMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := serveConfig(t, 12, 6, 2, 200, 0.5, 49)
	cfg.Source = &cancellingSource{inner: cfg.Source, after: 60, cancel: cancel}
	// Default OnCancel: the run aborts with the context error.
	if _, err := Serve(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("abort mode returned %v, want context.Canceled", err)
	}
}
