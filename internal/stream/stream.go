// Package stream turns the batch reproduction into a long-running
// scheduling service, addressing the paper's Section 9 open question of
// continuous arrival: transactions are admitted from a seeded load
// generator into a bounded queue with explicit backpressure, cut into
// rolling scheduling windows over a mutable conflict index (the
// register/deregister discipline of internal/windows generalized to an
// unbounded sequence), list-scheduled against the chained object-release
// state, and executed through the engine pipeline while the next window
// fills.
//
// All admission, cutting, and scheduling decisions happen on one
// logical-time serving loop that owns every piece of mutable state, so a
// run is bit-deterministic for a given seed and configuration regardless
// of how the concurrent executor interleaves: same seed ⇒ identical
// admission order, window cuts, and commit steps (Result.Digest pins
// this). Wall-clock concurrency only overlaps window *execution*
// (verification, measurement, retries) with the cutting of later
// windows.
package stream

import (
	"fmt"
	"math/rand"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/xrand"
)

// Item is one streamed transaction: an admission sequence number, the
// issuing node, the object set, and the logical arrival step.
type Item struct {
	// Seq is the dense generation-order sequence number.
	Seq int
	// Node is the node the transaction executes on.
	Node graph.NodeID
	// Objects are the distinct objects the transaction needs.
	Objects []tm.ObjectID
	// Arrive is the logical step the transaction becomes known, ≥ 0 and
	// non-decreasing in Seq.
	Arrive int64
}

// Source produces the transaction stream in arrival order. Sources are
// pulled only from the serving loop, so they need not be goroutine-safe.
type Source interface {
	// Next returns the next transaction, or ok = false once the stream
	// is exhausted.
	Next() (it Item, ok bool)
}

// Generator is the seeded load generator: nodes drawn uniformly from the
// graph, object sets from the workload's Pick, and inter-arrival gaps
// geometric with mean exactly 1/min(rate, 1) steps (xrand.GeometricGap),
// so the offered load matches the nominal injection rate.
type Generator struct {
	rng   *rand.Rand
	nodes []graph.NodeID
	w     tm.Workload
	rate  float64
	limit int

	seq  int
	next int64
}

// MakeGenerator builds a generator producing limit transactions at the
// given rate (transactions per step), rejecting a non-positive rate or
// limit, a nil rng or graph, or a workload without a Pick with a typed
// *ConfigError instead of failing deep inside Serve.
func MakeGenerator(rng *rand.Rand, g *graph.Graph, w tm.Workload, rate float64, limit int) (*Generator, error) {
	if rng == nil {
		return nil, &ConfigError{"Source", "nil rng"}
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, &ConfigError{"Source", "nil or empty graph"}
	}
	if rate <= 0 {
		return nil, &ConfigError{"Source", fmt.Sprintf("non-positive injection rate %v", rate)}
	}
	if limit <= 0 {
		return nil, &ConfigError{"Source", fmt.Sprintf("non-positive stream limit %d", limit)}
	}
	if w.Pick == nil {
		return nil, &ConfigError{"Source", "workload has no Pick"}
	}
	return &Generator{rng: rng, nodes: g.Nodes(), w: w, rate: rate, limit: limit}, nil
}

// NewGenerator is MakeGenerator for callers that treat a bad workload as
// a programming error: it panics where MakeGenerator reports.
func NewGenerator(rng *rand.Rand, g *graph.Graph, w tm.Workload, rate float64, limit int) *Generator {
	gen, err := MakeGenerator(rng, g, w, rate, limit)
	if err != nil {
		panic(err.Error())
	}
	return gen
}

// Next implements Source. The first transaction arrives at step 0.
func (g *Generator) Next() (Item, bool) {
	if g.seq >= g.limit {
		return Item{}, false
	}
	node := g.nodes[g.rng.Intn(len(g.nodes))]
	it := Item{
		Seq:     g.seq,
		Node:    node,
		Objects: g.w.Pick(g.rng, node),
		Arrive:  g.next,
	}
	g.seq++
	g.next += xrand.GeometricGap(g.rng, g.rate)
	return it, true
}

// Policy selects what happens when an arrival finds the admission queue
// full.
type Policy int

const (
	// Block stops pulling from the source until a window cut frees queue
	// space: no transaction is lost, arrival latency absorbs the
	// overload (surfaced as the blocked counter).
	Block Policy = iota
	// Reject drops the overflowing arrival (surfaced as the rejected
	// counter) and keeps consuming the stream.
	Reject
)

// String names the policy for flags and reports.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name ("block" or "reject").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "reject":
		return Reject, nil
	default:
		return 0, fmt.Errorf("stream: unknown backpressure policy %q (want block or reject)", s)
	}
}
