package replica

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func cliqueInstance(n, w, k int, seed int64) *tm.Instance {
	topo := topology.NewClique(n)
	return tm.UniformK(w, k).Generate(xrand.New(seed), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
}

func TestNewRejectsForeignWrites(t *testing.T) {
	in := cliqueInstance(4, 4, 1, 1)
	writes := make([][]tm.ObjectID, 4)
	writes[0] = []tm.ObjectID{3}
	if in.Txns[0].Uses(3) {
		t.Skip("random pick collided; irrelevant instance")
	}
	if _, err := New(in, writes); err == nil {
		t.Fatal("accepted write outside the request set")
	}
	if _, err := New(in, nil); err == nil {
		t.Fatal("accepted missing write sets")
	}
}

func TestWithReadFractionExtremes(t *testing.T) {
	in := cliqueInstance(16, 8, 2, 2)
	all := WithReadFraction(xrand.New(1), in, 0)
	if all.WriteCount() != 16*2 {
		t.Fatalf("readFrac=0 write count %d, want 32", all.WriteCount())
	}
	none := WithReadFraction(xrand.New(1), in, 1)
	if none.WriteCount() != 0 {
		t.Fatalf("readFrac=1 write count %d, want 0", none.WriteCount())
	}
}

func TestWithReadFractionPanics(t *testing.T) {
	in := cliqueInstance(4, 2, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WithReadFraction(xrand.New(1), in, 1.5)
}

func TestScheduleFeasibleAcrossFractions(t *testing.T) {
	in := cliqueInstance(32, 8, 2, 4)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		rw := WithReadFraction(xrand.New(5), in, frac)
		res, err := Schedule(rw)
		if err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
		if err := Validate(rw, res.Schedule); err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
	}
}

func TestAllWritesMatchesBaseModel(t *testing.T) {
	// With readFrac = 0 the multi-version rules coincide with the base
	// model, so the base validator must accept the replica schedule too.
	in := cliqueInstance(24, 8, 2, 6)
	rw := WithReadFraction(xrand.New(7), in, 0)
	res, err := Schedule(rw)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("base validator rejected all-writes replica schedule: %v", err)
	}
}

func TestBaseScheduleValidUnderReplica(t *testing.T) {
	// Any base-model-feasible schedule is also feasible under the weaker
	// multi-version rules.
	in := cliqueInstance(24, 8, 2, 8)
	res, err := (&core.Greedy{}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rw := WithReadFraction(xrand.New(9), in, 0.5)
	if err := Validate(rw, res.Schedule); err != nil {
		t.Fatalf("multi-version validator rejected a base-feasible schedule: %v", err)
	}
}

func TestAllReadsRunAlmostInstantly(t *testing.T) {
	// readFrac = 1: no conflicts at all; every transaction needs only a
	// copy from the object homes, so makespan = max home distance ≤
	// clique diameter 1 (clique: homes at requesters, distance ≤ 1).
	in := cliqueInstance(32, 8, 2, 10)
	rw := WithReadFraction(xrand.New(11), in, 1)
	res, err := Schedule(rw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 {
		t.Fatalf("all-reads conflicts = %d", res.Conflicts)
	}
	if res.Makespan > 2 {
		t.Fatalf("all-reads makespan = %d, want ≤ 2 on a clique", res.Makespan)
	}
}

func TestMakespanMonotoneInReadFraction(t *testing.T) {
	// More reads ⇒ thinner conflict graph ⇒ no longer schedules (on the
	// same instance with nested write sets this is guaranteed; with
	// independent sampling we allow small noise by comparing extremes).
	in := cliqueInstance(64, 16, 2, 12)
	heavy, err := Schedule(WithReadFraction(xrand.New(13), in, 0))
	if err != nil {
		t.Fatal(err)
	}
	light, err := Schedule(WithReadFraction(xrand.New(13), in, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if light.Makespan > heavy.Makespan {
		t.Fatalf("90%% reads makespan %d exceeds all-writes %d", light.Makespan, heavy.Makespan)
	}
	if light.Conflicts >= heavy.Conflicts {
		t.Fatalf("conflicts did not thin: %d vs %d", light.Conflicts, heavy.Conflicts)
	}
}

func TestValidateRejects(t *testing.T) {
	in := cliqueInstance(8, 4, 2, 14)
	rw := WithReadFraction(xrand.New(15), in, 0.3)
	res, err := Schedule(rw)
	if err != nil {
		t.Fatal(err)
	}
	bad := res.Schedule.Clone()
	bad.Times[0] = 0
	if Validate(rw, bad) == nil {
		t.Fatal("accepted step 0")
	}
	if Validate(rw, &schedule.Schedule{Times: []int64{1}}) == nil {
		t.Fatal("accepted wrong length")
	}
	// Collapse everything to step 1: with any write conflict this must
	// fail (two writers or an unreachable copy).
	flat := res.Schedule.Clone()
	for i := range flat.Times {
		flat.Times[i] = 1
	}
	if rw.WriteCount() > 0 && res.Conflicts > 0 {
		if Validate(rw, flat) == nil {
			t.Fatal("accepted fully simultaneous schedule despite write conflicts")
		}
	}
}

func TestScheduleFeasibleProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo := topology.NewSquareGrid(3 + r.Intn(5))
		w := 2 + r.Intn(8)
		k := 1 + r.Intn(minInt(w, 3))
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		rw := WithReadFraction(r, in, r.Float64())
		res, err := Schedule(rw)
		if err != nil {
			return false
		}
		return Validate(rw, res.Schedule) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
