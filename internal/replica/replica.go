// Package replica extends the data-flow model with read-only replication,
// the direction of the multi-versioning and replicated distributed TMs the
// paper surveys in Section 1.2 (Manassiev et al., Peluso et al., Kim &
// Ravindran). Transactions declare read and write sets; the single master
// copy of each object still serializes its writers, but a reader only
// needs *a copy* of the latest version committed before it, so readers
// never conflict with each other.
//
// Semantics (snapshot / multi-version):
//
//   - writers of an object form a chain exactly as in the base model:
//     consecutive writers are separated by at least their distance;
//   - a reader must be reachable by a copy of the version it reads: its
//     time is at least the preceding writer's time plus their distance
//     (or the distance from the object's home when no writer precedes);
//   - readers impose nothing on writers or on each other.
//
// The scheduler colors the write-conflict graph (edges only where at
// least one endpoint writes the shared object) with the Section 2.3
// greedy rule, then shifts for initial copy distribution. As the read
// fraction grows, the conflict graph thins and the schedule shortens —
// quantified by experiment E14.
package replica

import (
	"fmt"
	"math/rand"
	"sort"

	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// RWInstance pairs a base instance with per-transaction write sets.
// Objects a transaction requests but does not write are read-only for it.
type RWInstance struct {
	*tm.Instance
	// writes[i] holds the objects transaction i writes (subset of its
	// object set), in a set for O(1) lookup.
	writes []map[tm.ObjectID]struct{}
}

// New wraps an instance with write sets. writes[i] must be a subset of
// transaction i's objects.
func New(in *tm.Instance, writes [][]tm.ObjectID) (*RWInstance, error) {
	if len(writes) != in.NumTxns() {
		return nil, fmt.Errorf("replica: %d write sets for %d transactions", len(writes), in.NumTxns())
	}
	rw := &RWInstance{Instance: in, writes: make([]map[tm.ObjectID]struct{}, len(writes))}
	for i, ws := range writes {
		rw.writes[i] = make(map[tm.ObjectID]struct{}, len(ws))
		for _, o := range ws {
			if !in.Txns[i].Uses(o) {
				return nil, fmt.Errorf("replica: transaction %d writes object %d it does not request", i, o)
			}
			rw.writes[i][o] = struct{}{}
		}
	}
	return rw, nil
}

// WithReadFraction derives write sets randomly: each (transaction,
// object) access is a read with probability readFrac. Fraction 0
// reproduces the base model (everything written).
func WithReadFraction(r *rand.Rand, in *tm.Instance, readFrac float64) *RWInstance {
	if readFrac < 0 || readFrac > 1 {
		panic(fmt.Sprintf("replica: read fraction %v outside [0,1]", readFrac))
	}
	writes := make([][]tm.ObjectID, in.NumTxns())
	for i := range in.Txns {
		for _, o := range in.Txns[i].Objects {
			if r.Float64() >= readFrac {
				writes[i] = append(writes[i], o)
			}
		}
	}
	rw, err := New(in, writes)
	if err != nil {
		panic(err) // unreachable: sets are subsets by construction
	}
	return rw
}

// Writes reports whether transaction id writes object o.
func (rw *RWInstance) Writes(id tm.TxnID, o tm.ObjectID) bool {
	_, ok := rw.writes[id][o]
	return ok
}

// WriteCount returns the total number of write accesses.
func (rw *RWInstance) WriteCount() int {
	n := 0
	for _, ws := range rw.writes {
		n += len(ws)
	}
	return n
}

// writersOf returns object o's writers sorted by schedule time (ties by
// ID).
func (rw *RWInstance) writersOf(s *schedule.Schedule, o tm.ObjectID) []tm.TxnID {
	var out []tm.TxnID
	for _, id := range rw.Users(o) {
		if rw.Writes(id, o) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := s.Times[out[i]], s.Times[out[j]]
		if ti != tj {
			return ti < tj
		}
		return out[i] < out[j]
	})
	return out
}

// Validate checks feasibility under the multi-version semantics above.
func Validate(rw *RWInstance, s *schedule.Schedule) error {
	if len(s.Times) != rw.NumTxns() {
		return fmt.Errorf("replica: %d times for %d transactions", len(s.Times), rw.NumTxns())
	}
	for i, t := range s.Times {
		if t < 1 {
			return fmt.Errorf("replica: transaction %d at step %d < 1", i, t)
		}
	}
	for o := 0; o < rw.NumObjects; o++ {
		oid := tm.ObjectID(o)
		writers := rw.writersOf(s, oid)
		// Writer chain: home → w1 → w2 → …
		prevNode := rw.Home[oid]
		prevTime := int64(0)
		for i, wtr := range writers {
			d := rw.Dist(prevNode, rw.Txns[wtr].Node)
			if s.Times[wtr] < prevTime+d {
				return fmt.Errorf("replica: object %d writer %d at step %d cannot receive master from step %d, %d away",
					o, wtr, s.Times[wtr], prevTime, d)
			}
			if i > 0 && s.Times[wtr] == prevTime {
				return fmt.Errorf("replica: object %d has two writers at step %d", o, s.Times[wtr])
			}
			prevNode = rw.Txns[wtr].Node
			prevTime = s.Times[wtr]
		}
		// Readers: copy from the latest writer strictly before them.
		for _, id := range rw.Users(oid) {
			if rw.Writes(id, oid) {
				continue
			}
			srcNode, srcTime := rw.Home[oid], int64(0)
			for _, wtr := range writers {
				if s.Times[wtr] < s.Times[id] {
					srcNode, srcTime = rw.Txns[wtr].Node, s.Times[wtr]
				} else {
					break
				}
			}
			if d := rw.Dist(srcNode, rw.Txns[id].Node); s.Times[id] < srcTime+d {
				return fmt.Errorf("replica: object %d reader %d at step %d cannot receive a copy from step %d, %d away",
					o, id, s.Times[id], srcTime, d)
			}
		}
	}
	return nil
}

// Result pairs a schedule with its accounting.
type Result struct {
	Schedule *schedule.Schedule
	Makespan int64
	// Conflicts is the number of edges in the write-conflict graph
	// (pairs sharing an object that at least one of them writes).
	Conflicts int
}

// Schedule computes a feasible multi-version schedule: greedy Γ+1 coloring
// of the write-conflict graph plus the exact shift needed for master and
// copy distribution from homes.
func Schedule(rw *RWInstance) (*Result, error) {
	m := rw.NumTxns()
	// Build the write-conflict graph directly (depgraph assumes every
	// shared object conflicts; here read-read pairs do not).
	adj := make([]map[int]int64, m)
	for i := range adj {
		adj[i] = make(map[int]int64)
	}
	var hmax int64
	conflicts := 0
	for o := 0; o < rw.NumObjects; o++ {
		users := rw.Users(tm.ObjectID(o))
		for x := 0; x < len(users); x++ {
			for y := x + 1; y < len(users); y++ {
				i, j := int(users[x]), int(users[y])
				if !rw.Writes(users[x], tm.ObjectID(o)) && !rw.Writes(users[y], tm.ObjectID(o)) {
					continue // read-read: no conflict
				}
				if _, dup := adj[i][j]; dup {
					continue
				}
				d := rw.Dist(rw.Txns[i].Node, rw.Txns[j].Node)
				adj[i][j] = d
				adj[j][i] = d
				conflicts++
				if d > hmax {
					hmax = d
				}
			}
		}
	}
	if hmax == 0 {
		hmax = 1
	}
	// Greedy color in node order.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rw.Txns[order[a]].Node < rw.Txns[order[b]].Node })
	k := make([]int64, m)
	for i := range k {
		k[i] = -1
	}
	s := schedule.New(m)
	for _, u := range order {
		used := make(map[int64]bool, len(adj[u]))
		for v := range adj[u] {
			if k[v] >= 0 {
				used[k[v]] = true
			}
		}
		var ku int64
		for used[ku] {
			ku++
		}
		k[u] = ku
		s.Times[u] = ku*hmax + 1
	}
	// Shift so every first access can be served from the object's home.
	var delta int64
	for o := 0; o < rw.NumObjects; o++ {
		for _, id := range rw.Users(tm.ObjectID(o)) {
			// Conservative: every access reachable from home directly
			// covers both the first writer and any pre-writer readers.
			if need := rw.Dist(rw.Home[o], rw.Txns[id].Node) - s.Times[id]; need > delta {
				delta = need
			}
		}
	}
	if delta > 0 {
		s.Shift(delta)
	}
	res := &Result{Schedule: s, Makespan: s.Makespan(), Conflicts: conflicts}
	if err := Validate(rw, s); err != nil {
		return nil, fmt.Errorf("replica: scheduler produced infeasible schedule: %w", err)
	}
	return res, nil
}
