// Package persist serializes problem instances, schedules, and results to
// a stable JSON format, so experiments can be saved, shared, diffed, and
// replayed. The format stores the communication graph explicitly (node
// count + weighted edge list), making files self-contained: loading never
// needs to know which topology generator produced the graph.
package persist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// FormatVersion is embedded in every file; Load rejects unknown versions.
const FormatVersion = 1

// edgeJSON is one undirected weighted edge.
type edgeJSON struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// txnJSON is one transaction.
type txnJSON struct {
	Node    int   `json:"node"`
	Objects []int `json:"objects"`
}

// InstanceFile is the on-disk form of a problem instance.
type InstanceFile struct {
	Version    int        `json:"version"`
	Name       string     `json:"name,omitempty"`
	Nodes      int        `json:"nodes"`
	Edges      []edgeJSON `json:"edges"`
	NumObjects int        `json:"numObjects"`
	Home       []int      `json:"home"`
	Txns       []txnJSON  `json:"txns"`
}

// ScheduleFile is the on-disk form of a schedule (optionally embedded in
// a ResultFile).
type ScheduleFile struct {
	Version int     `json:"version"`
	Times   []int64 `json:"times"`
}

// ResultFile couples a schedule with its measured outcome for archival.
type ResultFile struct {
	Version    int     `json:"version"`
	Algorithm  string  `json:"algorithm"`
	Makespan   int64   `json:"makespan"`
	LowerBound int64   `json:"lowerBound,omitempty"`
	CommCost   int64   `json:"commCost,omitempty"`
	Times      []int64 `json:"times"`
}

// EncodeInstance converts an instance to its file form.
func EncodeInstance(in *tm.Instance) *InstanceFile {
	f := &InstanceFile{
		Version:    FormatVersion,
		Name:       in.G.Name(),
		Nodes:      in.G.NumNodes(),
		NumObjects: in.NumObjects,
		Home:       make([]int, len(in.Home)),
	}
	for i, h := range in.Home {
		f.Home[i] = int(h)
	}
	seen := make(map[[2]int]bool)
	for u := 0; u < f.Nodes; u++ {
		for _, e := range in.G.Neighbors(graph.NodeID(u)) {
			a, b := u, int(e.To)
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			w, _ := in.G.HasEdge(graph.NodeID(a), graph.NodeID(b))
			f.Edges = append(f.Edges, edgeJSON{U: a, V: b, W: w})
		}
	}
	for i := range in.Txns {
		t := txnJSON{Node: int(in.Txns[i].Node)}
		for _, o := range in.Txns[i].Objects {
			t.Objects = append(t.Objects, int(o))
		}
		f.Txns = append(f.Txns, t)
	}
	return f
}

// DecodeInstance rebuilds a validated instance from its file form. The
// distance oracle is the graph itself (shortest paths); closed-form
// metrics are a generator-side optimization that files do not carry.
func DecodeInstance(f *InstanceFile) (*tm.Instance, error) {
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	if f.Nodes < 0 {
		return nil, fmt.Errorf("persist: negative node count")
	}
	g := graph.NewNamed(f.Name, f.Nodes)
	for _, e := range f.Edges {
		if e.U < 0 || e.U >= f.Nodes || e.V < 0 || e.V >= f.Nodes || e.U == e.V || e.W < 1 {
			return nil, fmt.Errorf("persist: invalid edge %+v", e)
		}
		g.AddEdge(graph.NodeID(e.U), graph.NodeID(e.V), e.W)
	}
	txns := make([]tm.Txn, len(f.Txns))
	for i, t := range f.Txns {
		txns[i].Node = graph.NodeID(t.Node)
		for _, o := range t.Objects {
			txns[i].Objects = append(txns[i].Objects, tm.ObjectID(o))
		}
	}
	home := make([]graph.NodeID, len(f.Home))
	for i, h := range f.Home {
		home[i] = graph.NodeID(h)
	}
	in := tm.NewInstance(g, nil, f.NumObjects, txns, home)
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("persist: decoded instance invalid: %w", err)
	}
	return in, nil
}

// WriteInstance writes the instance as indented JSON.
func WriteInstance(w io.Writer, in *tm.Instance) error {
	return writeJSON(w, EncodeInstance(in))
}

// ReadInstance parses an instance from JSON.
func ReadInstance(r io.Reader) (*tm.Instance, error) {
	var f InstanceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return DecodeInstance(&f)
}

// SaveInstance writes the instance to a file path.
func SaveInstance(path string, in *tm.Instance) error {
	return saveTo(path, func(w io.Writer) error { return WriteInstance(w, in) })
}

// LoadInstance reads an instance from a file path.
func LoadInstance(path string) (*tm.Instance, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return ReadInstance(bufio.NewReader(fd))
}

// WriteSchedule writes a schedule as JSON.
func WriteSchedule(w io.Writer, s *schedule.Schedule) error {
	return writeJSON(w, &ScheduleFile{Version: FormatVersion, Times: s.Times})
}

// ReadSchedule parses a schedule from JSON; the caller validates it
// against its instance.
func ReadSchedule(r io.Reader) (*schedule.Schedule, error) {
	var f ScheduleFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	return &schedule.Schedule{Times: f.Times}, nil
}

// SaveResult archives an algorithm's outcome with its schedule.
func SaveResult(path string, algorithm string, s *schedule.Schedule, lowerBound, commCost int64) error {
	f := &ResultFile{
		Version:    FormatVersion,
		Algorithm:  algorithm,
		Makespan:   s.Makespan(),
		LowerBound: lowerBound,
		CommCost:   commCost,
		Times:      s.Times,
	}
	return saveTo(path, func(w io.Writer) error { return writeJSON(w, f) })
}

// LoadResult reads an archived result.
func LoadResult(path string) (*ResultFile, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	var f ResultFile
	if err := json.NewDecoder(bufio.NewReader(fd)).Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	return &f, nil
}

func writeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func saveTo(path string, write func(io.Writer) error) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(fd)
	if err := write(bw); err != nil {
		fd.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}
