package persist

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func sampleInstance(seed int64) *tm.Instance {
	topo := topology.NewCluster(3, 4, 8)
	return tm.UniformK(6, 2).Generate(xrand.New(seed), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
}

func TestInstanceRoundTrip(t *testing.T) {
	in := sampleInstance(1)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.NumNodes() != in.G.NumNodes() || got.G.NumEdges() != in.G.NumEdges() {
		t.Fatalf("graph mismatch: %v vs %v", got.G, in.G)
	}
	if got.NumObjects != in.NumObjects || got.NumTxns() != in.NumTxns() {
		t.Fatal("shape mismatch")
	}
	for i := range in.Txns {
		if got.Txns[i].Node != in.Txns[i].Node || len(got.Txns[i].Objects) != len(in.Txns[i].Objects) {
			t.Fatalf("txn %d mismatch", i)
		}
		for j := range in.Txns[i].Objects {
			if got.Txns[i].Objects[j] != in.Txns[i].Objects[j] {
				t.Fatalf("txn %d object %d mismatch", i, j)
			}
		}
	}
	for o := range in.Home {
		if got.Home[o] != in.Home[o] {
			t.Fatalf("home %d mismatch", o)
		}
	}
	// Distances survive (weighted bridges included).
	for u := 0; u < in.G.NumNodes(); u++ {
		for v := 0; v < in.G.NumNodes(); v++ {
			if got.G.Dist(graph.NodeID(u), graph.NodeID(v)) != in.G.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("distance (%d,%d) changed", u, v)
			}
		}
	}
}

func TestInstanceRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo := topology.NewSquareGrid(3 + r.Intn(4))
		w := 2 + r.Intn(6)
		k := 1 + r.Intn(minInt(w, 3))
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		var buf bytes.Buffer
		if WriteInstance(&buf, in) != nil {
			return false
		}
		got, err := ReadInstance(&buf)
		if err != nil {
			return false
		}
		return got.Validate() == nil &&
			got.NumTxns() == in.NumTxns() &&
			got.G.NumEdges() == in.G.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := &schedule.Schedule{Times: []int64{3, 1, 4, 1, 5}}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Times) != 5 || got.Times[4] != 5 {
		t.Fatalf("schedule mismatch: %v", got.Times)
	}
}

func TestFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	in := sampleInstance(2)
	path := filepath.Join(dir, "instance.json")
	if err := SaveInstance(path, in); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTxns() != in.NumTxns() {
		t.Fatal("loaded instance differs")
	}

	s := &schedule.Schedule{Times: make([]int64, in.NumTxns())}
	for i := range s.Times {
		s.Times[i] = int64(i + 1)
	}
	rpath := filepath.Join(dir, "result.json")
	if err := SaveResult(rpath, "greedy", s, 7, 42); err != nil {
		t.Fatal(err)
	}
	res, err := LoadResult(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "greedy" || res.Makespan != int64(in.NumTxns()) || res.LowerBound != 7 || res.CommCost != 42 {
		t.Fatalf("result mismatch: %+v", res)
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := map[string]string{
		"bad version": `{"version":9,"nodes":1}`,
		"bad edge":    `{"version":1,"nodes":2,"edges":[{"u":0,"v":5,"w":1}],"numObjects":0}`,
		"self loop":   `{"version":1,"nodes":2,"edges":[{"u":1,"v":1,"w":1}],"numObjects":0}`,
		"zero weight": `{"version":1,"nodes":2,"edges":[{"u":0,"v":1,"w":0}],"numObjects":0}`,
		"not json":    `}{`,
		"invalid txn": `{"version":1,"nodes":2,"edges":[{"u":0,"v":1,"w":1}],"numObjects":1,"home":[0],"txns":[{"node":7,"objects":[0]}]}`,
	}
	for name, body := range cases {
		if _, err := ReadInstance(strings.NewReader(body)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := ReadSchedule(strings.NewReader(`{"version":2,"times":[1]}`)); err == nil {
		t.Fatal("bad schedule version accepted")
	}
	if _, err := LoadInstance(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadResult(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing result accepted")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
