package persist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance hardens the decoder against malformed input: it must
// either return an error or an instance that passes validation — never
// panic, never return garbage.
func FuzzReadInstance(f *testing.F) {
	f.Add(`{"version":1,"nodes":2,"edges":[{"u":0,"v":1,"w":1}],"numObjects":1,"home":[0],"txns":[{"node":0,"objects":[0]},{"node":1,"objects":[0]}]}`)
	f.Add(`{"version":1,"nodes":0,"numObjects":0}`)
	f.Add(`{"version":9}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"version":1,"nodes":-5}`)
	f.Fuzz(func(t *testing.T, body string) {
		in, err := ReadInstance(strings.NewReader(body))
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("decoder returned invalid instance: %v", err)
		}
		// Round-trip must be stable.
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.NumTxns() != in.NumTxns() || again.G.NumEdges() != in.G.NumEdges() {
			t.Fatal("round-trip changed the instance")
		}
	})
}

// FuzzReadSchedule: the schedule decoder must never panic.
func FuzzReadSchedule(f *testing.F) {
	f.Add(`{"version":1,"times":[1,2,3]}`)
	f.Add(`{"version":1,"times":[]}`)
	f.Add(`{"version":0}`)
	f.Add(`x`)
	f.Fuzz(func(t *testing.T, body string) {
		s, err := ReadSchedule(strings.NewReader(body))
		if err == nil && s == nil {
			t.Fatal("nil schedule without error")
		}
	})
}
