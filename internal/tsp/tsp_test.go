package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
)

// lineMetric is |u−v|: walks and tours have obvious closed forms.
type lineMetric struct{}

func (lineMetric) Dist(u, v graph.NodeID) int64 {
	d := int64(u) - int64(v)
	if d < 0 {
		d = -d
	}
	return d
}

func TestWalkOnLine(t *testing.T) {
	m := lineMetric{}
	// home 5, sites 2 and 9: best is 5→2→9 or 5→9→2: min(3+7, 4+7) = 10.
	b := Walk(m, 5, []graph.NodeID{2, 9})
	if !b.Exact || b.LB != 10 || b.UB != 10 {
		t.Fatalf("Walk = %+v, want exact 10", b)
	}
}

func TestWalkTrivialCases(t *testing.T) {
	m := lineMetric{}
	if b := Walk(m, 3, nil); !b.Exact || b.LB != 0 {
		t.Fatalf("empty walk = %+v", b)
	}
	if b := Walk(m, 3, []graph.NodeID{3}); !b.Exact || b.LB != 0 {
		t.Fatalf("walk to home only = %+v", b)
	}
	if b := Walk(m, 3, []graph.NodeID{7, 7, 3}); !b.Exact || b.LB != 4 {
		t.Fatalf("walk with dups = %+v, want 4", b)
	}
}

func TestTourOnLine(t *testing.T) {
	m := lineMetric{}
	// Tour over {1, 4, 9}: span is 8, closed tour = 16.
	b := Tour(m, []graph.NodeID{4, 1, 9})
	if !b.Exact || b.LB != 16 {
		t.Fatalf("Tour = %+v, want exact 16", b)
	}
	if b := Tour(m, []graph.NodeID{5}); b.LB != 0 || !b.Exact {
		t.Fatalf("singleton tour = %+v", b)
	}
	if b := Tour(m, []graph.NodeID{2, 6}); b.LB != 8 || !b.Exact {
		t.Fatalf("pair tour = %+v, want 8", b)
	}
}

func TestMSTWeightHandComputed(t *testing.T) {
	m := lineMetric{}
	// Sites 0, 4, 10: MST edges 0-4 (4) and 4-10 (6).
	if w := MSTWeight(m, []graph.NodeID{10, 0, 4}); w != 10 {
		t.Fatalf("MSTWeight = %d, want 10", w)
	}
	if w := MSTWeight(m, []graph.NodeID{3}); w != 0 {
		t.Fatalf("single-site MST = %d", w)
	}
}

// bruteWalk enumerates all permutations (small q only).
func bruteWalk(m graph.Metric, home graph.NodeID, sites []graph.NodeID) int64 {
	best := int64(1) << 60
	perm := make([]graph.NodeID, len(sites))
	copy(perm, sites)
	var rec func(i int)
	rec = func(i int) {
		if i == len(perm) {
			var total int64
			cur := home
			for _, v := range perm {
				total += m.Dist(cur, v)
				cur = v
			}
			if total < best {
				best = total
			}
			return
		}
		for j := i; j < len(perm); j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

// randomGraphMetric builds a random connected weighted graph and exposes
// its shortest-path metric plus some random sites.
func randomGraphMetric(r *rand.Rand, n int) (*graph.Graph, []graph.NodeID) {
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(5))
	}
	q := 2 + r.Intn(6)
	sites := make([]graph.NodeID, q)
	for i := range sites {
		sites[i] = graph.NodeID(r.Intn(n))
	}
	return g, sites
}

func TestHeldKarpMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, sites := randomGraphMetric(r, 4+r.Intn(10))
		home := graph.NodeID(r.Intn(g.NumNodes()))
		b := Walk(g, home, sites)
		if !b.Exact {
			return false
		}
		want := bruteWalk(g, home, dedupe(sites, home))
		if len(dedupe(sites, home)) == 0 {
			want = 0
		}
		return b.LB == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTourBoundsOrderingProperty(t *testing.T) {
	// For any site set: MST ≤ tour LB ≤ tour UB ≤ 2·MST-ish; and the
	// closed tour is at least the open walk from any of its sites.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, sites := randomGraphMetric(r, 4+r.Intn(12))
		b := Tour(g, sites)
		if b.LB > b.UB {
			return false
		}
		uniq := dedupe(sites, -1)
		if len(uniq) < 2 {
			return b.LB == 0
		}
		mst := MSTWeight(g, uniq)
		return b.LB >= mst && b.UB <= 2*mst+1 || b.Exact
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSetUsesBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := graph.New(60)
	perm := r.Perm(60)
	for i := 1; i < 60; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
	}
	sites := make([]graph.NodeID, ExactLimit+10)
	for i := range sites {
		sites[i] = graph.NodeID(r.Intn(60))
	}
	w := Walk(g, 0, sites)
	if w.Exact {
		t.Fatal("large walk claimed exact")
	}
	if w.LB > w.UB || w.LB <= 0 {
		t.Fatalf("large walk bounds broken: %+v", w)
	}
	uniq := dedupe(sites, 0)
	mst := MSTWeight(g, append([]graph.NodeID{0}, uniq...))
	if w.LB != mst {
		t.Fatalf("large walk LB %d != MST %d", w.LB, mst)
	}
	if w.UB > 2*mst {
		t.Fatalf("large walk UB %d exceeds 2·MST %d", w.UB, 2*mst)
	}
	tour := Tour(g, sites)
	if tour.Exact || tour.LB > tour.UB {
		t.Fatalf("large tour bounds broken: %+v", tour)
	}
}

func TestTwoOptImprovesCrossing(t *testing.T) {
	// On a line, the NN path from home=0 over {10, 1, 11, 2} may zigzag;
	// 2-opt must bring it to the optimal monotone sweep.
	m := lineMetric{}
	path := []graph.NodeID{10, 1, 11, 2}
	improved := twoOptPath(m, 0, append([]graph.NodeID(nil), path...))
	if got := pathLen(m, 0, improved); got != 11 {
		t.Fatalf("2-opt path length = %d, want 11 (0→1→2→10→11)", got)
	}
}
