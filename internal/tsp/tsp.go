// Package tsp bounds the shortest walks and TSP tours that objects follow
// through the communication graph. The paper's execution-time lower bounds
// rest on the longest shortest walk of any object (the walk starts at the
// object's home and visits every requesting transaction); optimal TSP tour
// lengths are within a factor two of shortest walks.
//
// All routines work over an abstract graph.Metric, which satisfies the
// triangle inequality because it is a shortest-path metric. Small site
// sets are solved exactly with Held–Karp dynamic programming; larger sets
// get certified bounds: MST weight ≤ optimal walk ≤ optimal tour ≤ 2·MST,
// with a nearest-neighbor + 2-opt heuristic tightening the upper side.
package tsp

import (
	"math"

	"dtmsched/internal/graph"
)

// ExactLimit is the largest number of sites solved exactly by Held–Karp;
// beyond it, Walk and Tour return certified bounds instead.
const ExactLimit = 16

// Bounds brackets an optimal length: LB ≤ OPT ≤ UB. Exact results have
// LB == UB.
type Bounds struct {
	LB, UB int64
	// Exact is true when the bounds come from exhaustive dynamic
	// programming rather than MST/heuristic estimates.
	Exact bool
}

// Walk bounds the shortest walk that starts at home and visits every node
// in sites (an open Hamiltonian path on the metric completion, fixed
// start). Duplicate sites and sites equal to home are harmless.
func Walk(m graph.Metric, home graph.NodeID, sites []graph.NodeID) Bounds {
	sites = dedupe(sites, home)
	q := len(sites)
	switch {
	case q == 0:
		return Bounds{Exact: true}
	case q == 1:
		d := m.Dist(home, sites[0])
		return Bounds{LB: d, UB: d, Exact: true}
	case q <= ExactLimit:
		opt := heldKarpPath(m, home, sites)
		return Bounds{LB: opt, UB: opt, Exact: true}
	}
	all := append([]graph.NodeID{home}, sites...)
	mst := MSTWeight(m, all)
	path := nearestNeighborPath(m, home, sites)
	path = twoOptPath(m, home, path)
	ub := pathLen(m, home, path)
	if double := 2 * mst; double < ub {
		ub = double
	}
	return Bounds{LB: mst, UB: ub}
}

// Tour bounds the optimal closed TSP tour through all sites (no fixed
// start). The paper's Theorem 6 measures objects' TSP tour lengths.
func Tour(m graph.Metric, sites []graph.NodeID) Bounds {
	sites = dedupe(sites, -1)
	q := len(sites)
	switch {
	case q <= 1:
		return Bounds{Exact: true}
	case q == 2:
		d := 2 * m.Dist(sites[0], sites[1])
		return Bounds{LB: d, UB: d, Exact: true}
	case q <= ExactLimit:
		opt := heldKarpTour(m, sites)
		return Bounds{LB: opt, UB: opt, Exact: true}
	}
	mst := MSTWeight(m, sites)
	path := nearestNeighborPath(m, sites[0], sites[1:])
	path = twoOptPath(m, sites[0], path)
	var ub int64 = m.Dist(sites[0], path[len(path)-1])
	ub += pathLen(m, sites[0], path)
	if double := 2 * mst; double < ub {
		ub = double
	}
	return Bounds{LB: mst, UB: ub}
}

// MSTWeight returns the minimum spanning tree weight over sites under
// metric m, via Prim's algorithm in O(q²) time and O(q) space.
func MSTWeight(m graph.Metric, sites []graph.NodeID) int64 {
	q := len(sites)
	if q <= 1 {
		return 0
	}
	const inf = int64(math.MaxInt64)
	inTree := make([]bool, q)
	best := make([]int64, q)
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	var total int64
	for iter := 0; iter < q; iter++ {
		u, bu := -1, inf
		for i := 0; i < q; i++ {
			if !inTree[i] && best[i] < bu {
				u, bu = i, best[i]
			}
		}
		inTree[u] = true
		total += bu
		for i := 0; i < q; i++ {
			if !inTree[i] {
				if d := m.Dist(sites[u], sites[i]); d < best[i] {
					best[i] = d
				}
			}
		}
	}
	return total
}

// heldKarpPath solves the fixed-start open path exactly:
// dp[S][j] = cheapest walk from home visiting exactly set S, ending at j.
func heldKarpPath(m graph.Metric, home graph.NodeID, sites []graph.NodeID) int64 {
	q := len(sites)
	d := pairwise(m, append([]graph.NodeID{home}, sites...)) // index 0 = home
	size := 1 << q
	const inf = int64(math.MaxInt64) / 2
	dp := make([]int64, size*q)
	for i := range dp {
		dp[i] = inf
	}
	for j := 0; j < q; j++ {
		dp[(1<<j)*q+j] = d[0][j+1]
	}
	for s := 1; s < size; s++ {
		base := s * q
		for j := 0; j < q; j++ {
			cur := dp[base+j]
			if cur >= inf || s&(1<<j) == 0 {
				continue
			}
			for nxt := 0; nxt < q; nxt++ {
				if s&(1<<nxt) != 0 {
					continue
				}
				ns := s | 1<<nxt
				if c := cur + d[j+1][nxt+1]; c < dp[ns*q+nxt] {
					dp[ns*q+nxt] = c
				}
			}
		}
	}
	best := inf
	full := size - 1
	for j := 0; j < q; j++ {
		if c := dp[full*q+j]; c < best {
			best = c
		}
	}
	return best
}

// heldKarpTour solves the closed tour exactly by fixing sites[0] as the
// start/end.
func heldKarpTour(m graph.Metric, sites []graph.NodeID) int64 {
	q := len(sites) - 1 // remaining sites after fixing sites[0]
	d := pairwise(m, sites)
	size := 1 << q
	const inf = int64(math.MaxInt64) / 2
	dp := make([]int64, size*q)
	for i := range dp {
		dp[i] = inf
	}
	for j := 0; j < q; j++ {
		dp[(1<<j)*q+j] = d[0][j+1]
	}
	for s := 1; s < size; s++ {
		base := s * q
		for j := 0; j < q; j++ {
			cur := dp[base+j]
			if cur >= inf || s&(1<<j) == 0 {
				continue
			}
			for nxt := 0; nxt < q; nxt++ {
				if s&(1<<nxt) != 0 {
					continue
				}
				ns := s | 1<<nxt
				if c := cur + d[j+1][nxt+1]; c < dp[ns*q+nxt] {
					dp[ns*q+nxt] = c
				}
			}
		}
	}
	best := inf
	full := size - 1
	for j := 0; j < q; j++ {
		if c := dp[full*q+j] + d[j+1][0]; c < best {
			best = c
		}
	}
	return best
}

// nearestNeighborPath orders sites by repeatedly hopping to the closest
// unvisited site, starting from home.
func nearestNeighborPath(m graph.Metric, home graph.NodeID, sites []graph.NodeID) []graph.NodeID {
	rest := make([]graph.NodeID, len(sites))
	copy(rest, sites)
	out := make([]graph.NodeID, 0, len(sites))
	cur := home
	for len(rest) > 0 {
		bi, bd := 0, m.Dist(cur, rest[0])
		for i := 1; i < len(rest); i++ {
			if d := m.Dist(cur, rest[i]); d < bd {
				bi, bd = i, d
			}
		}
		cur = rest[bi]
		out = append(out, cur)
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
	}
	return out
}

// twoOptPath improves an open path (fixed start at home) by reversing
// segments while any reversal shortens it.
func twoOptPath(m graph.Metric, home graph.NodeID, path []graph.NodeID) []graph.NodeID {
	n := len(path)
	if n < 3 {
		return path
	}
	prev := func(i int) graph.NodeID {
		if i == 0 {
			return home
		}
		return path[i-1]
	}
	improved := true
	for rounds := 0; improved && rounds < 32; rounds++ {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reverse path[i..j]: edges (prev(i), path[i]) and
				// (path[j], path[j+1]) become (prev(i), path[j]) and
				// (path[i], path[j+1]).
				oldCost := m.Dist(prev(i), path[i])
				newCost := m.Dist(prev(i), path[j])
				if j+1 < n {
					oldCost += m.Dist(path[j], path[j+1])
					newCost += m.Dist(path[i], path[j+1])
				}
				if newCost < oldCost {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						path[a], path[b] = path[b], path[a]
					}
					improved = true
				}
			}
		}
	}
	return path
}

func pathLen(m graph.Metric, home graph.NodeID, path []graph.NodeID) int64 {
	var total int64
	cur := home
	for _, v := range path {
		total += m.Dist(cur, v)
		cur = v
	}
	return total
}

func pairwise(m graph.Metric, sites []graph.NodeID) [][]int64 {
	q := len(sites)
	d := make([][]int64, q)
	for i := range d {
		d[i] = make([]int64, q)
		for j := range d[i] {
			if i != j {
				d[i][j] = m.Dist(sites[i], sites[j])
			}
		}
	}
	return d
}

// dedupe removes duplicates and (when skip ≥ 0) any site equal to skip.
func dedupe(sites []graph.NodeID, skip graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(sites))
	out := make([]graph.NodeID, 0, len(sites))
	for _, s := range sites {
		if s == skip {
			continue
		}
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}
