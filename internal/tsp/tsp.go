// Package tsp bounds the shortest walks and TSP tours that objects follow
// through the communication graph. The paper's execution-time lower bounds
// rest on the longest shortest walk of any object (the walk starts at the
// object's home and visits every requesting transaction); optimal TSP tour
// lengths are within a factor two of shortest walks.
//
// All routines work over an abstract graph.Metric, which satisfies the
// triangle inequality because it is a shortest-path metric. Small site
// sets are solved exactly with Held–Karp dynamic programming; larger sets
// get certified bounds: MST weight ≤ optimal walk ≤ optimal tour ≤ 2·MST,
// with a nearest-neighbor + 2-opt heuristic tightening the upper side.
//
// The Held–Karp tables are the hot allocation of the whole measurement
// path (2^q·q int64 cells per solve — 8 MiB at q = 16), so the exact
// solver lives on a reusable Solver: one per worker amortizes the tables
// across every object of an instance. The package-level Walk and Tour
// remain as convenience wrappers over a throwaway Solver.
package tsp

import (
	"math"
	"math/bits"

	"dtmsched/internal/graph"
)

// ExactLimit is the largest number of sites solved exactly by Held–Karp;
// beyond it, Walk and Tour return certified bounds instead.
const ExactLimit = 16

// Bounds brackets an optimal length: LB ≤ OPT ≤ UB. Exact results have
// LB == UB.
type Bounds struct {
	LB, UB int64
	// Exact is true when the bounds come from exhaustive dynamic
	// programming rather than MST/heuristic estimates.
	Exact bool
}

// Solver computes Walk and Tour bounds with reusable scratch: the DP
// table, the flat pairwise-distance matrix, and an epoch-stamped dedupe
// buffer all persist across calls, so solving many site sets (one per
// object of an instance) allocates only on high-water-mark growth. A
// Solver is not safe for concurrent use; parallel callers keep one per
// worker. The zero value is ready to use.
type Solver struct {
	dp    []int64        // Held–Karp table, 2^q·q cells
	d     []int64        // flat pairwise distances, row-major
	uniq  []graph.NodeID // dedupe output buffer
	stamp []int64        // per-node visit stamps for O(q) dedupe
	epoch int64
}

// NewSolver returns an empty solver; scratch grows on first use.
func NewSolver() *Solver { return &Solver{} }

// Walk bounds the shortest walk that starts at home and visits every node
// in sites (an open Hamiltonian path on the metric completion, fixed
// start). Duplicate sites and sites equal to home are harmless. Results
// are identical to the package-level Walk.
func (s *Solver) Walk(m graph.Metric, home graph.NodeID, sites []graph.NodeID) Bounds {
	sites = s.dedupe(sites, home)
	q := len(sites)
	switch {
	case q == 0:
		return Bounds{Exact: true}
	case q == 1:
		d := m.Dist(home, sites[0])
		return Bounds{LB: d, UB: d, Exact: true}
	case q <= ExactLimit:
		opt := s.heldKarpPath(m, home, sites)
		return Bounds{LB: opt, UB: opt, Exact: true}
	}
	all := append([]graph.NodeID{home}, sites...)
	mst := MSTWeight(m, all)
	path := nearestNeighborPath(m, home, sites)
	path = twoOptPath(m, home, path)
	ub := pathLen(m, home, path)
	if double := 2 * mst; double < ub {
		ub = double
	}
	return Bounds{LB: mst, UB: ub}
}

// Tour bounds the optimal closed TSP tour through all sites (no fixed
// start). The paper's Theorem 6 measures objects' TSP tour lengths.
// Results are identical to the package-level Tour.
func (s *Solver) Tour(m graph.Metric, sites []graph.NodeID) Bounds {
	sites = s.dedupe(sites, -1)
	q := len(sites)
	switch {
	case q <= 1:
		return Bounds{Exact: true}
	case q == 2:
		d := 2 * m.Dist(sites[0], sites[1])
		return Bounds{LB: d, UB: d, Exact: true}
	case q <= ExactLimit:
		opt := s.heldKarpTour(m, sites)
		return Bounds{LB: opt, UB: opt, Exact: true}
	}
	mst := MSTWeight(m, sites)
	path := nearestNeighborPath(m, sites[0], sites[1:])
	path = twoOptPath(m, sites[0], path)
	var ub int64 = m.Dist(sites[0], path[len(path)-1])
	ub += pathLen(m, sites[0], path)
	if double := 2 * mst; double < ub {
		ub = double
	}
	return Bounds{LB: mst, UB: ub}
}

// Walk bounds the shortest home-rooted walk through sites with a
// throwaway Solver. Callers solving many site sets should hold a Solver.
func Walk(m graph.Metric, home graph.NodeID, sites []graph.NodeID) Bounds {
	var s Solver
	return s.Walk(m, home, sites)
}

// Tour bounds the optimal closed tour through sites with a throwaway
// Solver. Callers solving many site sets should hold a Solver.
func Tour(m graph.Metric, sites []graph.NodeID) Bounds {
	var s Solver
	return s.Tour(m, sites)
}

// MSTWeight returns the minimum spanning tree weight over sites under
// metric m, via Prim's algorithm in O(q²) time and O(q) space.
func MSTWeight(m graph.Metric, sites []graph.NodeID) int64 {
	q := len(sites)
	if q <= 1 {
		return 0
	}
	const inf = int64(math.MaxInt64)
	inTree := make([]bool, q)
	best := make([]int64, q)
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	var total int64
	for iter := 0; iter < q; iter++ {
		u, bu := -1, inf
		for i := 0; i < q; i++ {
			if !inTree[i] && best[i] < bu {
				u, bu = i, best[i]
			}
		}
		inTree[u] = true
		total += bu
		for i := 0; i < q; i++ {
			if !inTree[i] {
				if d := m.Dist(sites[u], sites[i]); d < best[i] {
					best[i] = d
				}
			}
		}
	}
	return total
}

// dedupe removes duplicates (and, when skip ≥ 0, sites equal to skip)
// preserving first-occurrence order, via per-node epoch stamps: O(q) with
// no per-call map. The returned slice is the solver's buffer, valid until
// the next call.
func (s *Solver) dedupe(sites []graph.NodeID, skip graph.NodeID) []graph.NodeID {
	s.epoch++
	out := s.uniq[:0]
	for _, v := range sites {
		if v == skip {
			continue
		}
		if int(v) >= len(s.stamp) {
			grown := make([]int64, int(v)+1)
			copy(grown, s.stamp)
			s.stamp = grown
		}
		if s.stamp[v] == s.epoch {
			continue
		}
		s.stamp[v] = s.epoch
		out = append(out, v)
	}
	s.uniq = out
	return out
}

// growI64 returns a length-n int64 buffer, reusing buf's storage when it
// is large enough.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// fillPairwise populates the solver's flat distance matrix over nodes
// (row-major, stride len(nodes)); nodes[0] is the walk home / tour start.
func (s *Solver) fillPairwise(m graph.Metric, home graph.NodeID, sites []graph.NodeID) []int64 {
	n := len(sites) + 1
	d := growI64(s.d, n*n)
	s.d = d
	at := func(i int) graph.NodeID {
		if i == 0 {
			return home
		}
		return sites[i-1]
	}
	for i := 0; i < n; i++ {
		row := d[i*n : (i+1)*n]
		ni := at(i)
		for j := 0; j < n; j++ {
			if i == j {
				row[j] = 0
				continue
			}
			row[j] = m.Dist(ni, at(j))
		}
	}
	return d
}

// heldKarpPath solves the fixed-start open path exactly:
// dp[S][j] = cheapest walk from home visiting exactly set S, ending at j.
// The inner loops iterate only the set bits of S (ends) and of its
// complement (extensions), so the work is Σ_S |S|·(q−|S|) = 2^q·q²/4
// transitions instead of 2^q·q² index probes.
func (s *Solver) heldKarpPath(m graph.Metric, home graph.NodeID, sites []graph.NodeID) int64 {
	q := len(sites)
	d := s.fillPairwise(m, home, sites) // index 0 = home, stride q+1
	stride := q + 1
	size := 1 << q
	const inf = int64(math.MaxInt64) / 2
	dp := growI64(s.dp, size*q)
	s.dp = dp
	for i := range dp {
		dp[i] = inf
	}
	for j := 0; j < q; j++ {
		dp[(1<<j)*q+j] = d[j+1] // d[home][j]
	}
	full := uint32(size - 1)
	for set := 1; set < size; set++ {
		base := set * q
		rest := full &^ uint32(set)
		if rest == 0 {
			continue
		}
		for ends := uint32(set); ends != 0; ends &= ends - 1 {
			j := int(bits.TrailingZeros32(ends))
			cur := dp[base+j]
			if cur >= inf {
				continue
			}
			row := d[(j+1)*stride:]
			for rem := rest; rem != 0; rem &= rem - 1 {
				nxt := int(bits.TrailingZeros32(rem))
				if c := cur + row[nxt+1]; c < dp[(set|1<<nxt)*q+nxt] {
					dp[(set|1<<nxt)*q+nxt] = c
				}
			}
		}
	}
	best := inf
	for j := 0; j < q; j++ {
		if c := dp[(size-1)*q+j]; c < best {
			best = c
		}
	}
	return best
}

// heldKarpTour solves the closed tour exactly by fixing sites[0] as the
// start/end; same bit-iterated transition structure as heldKarpPath.
func (s *Solver) heldKarpTour(m graph.Metric, sites []graph.NodeID) int64 {
	q := len(sites) - 1                         // remaining sites after fixing sites[0]
	d := s.fillPairwise(m, sites[0], sites[1:]) // index 0 = start, stride q+1
	stride := q + 1
	size := 1 << q
	const inf = int64(math.MaxInt64) / 2
	dp := growI64(s.dp, size*q)
	s.dp = dp
	for i := range dp {
		dp[i] = inf
	}
	for j := 0; j < q; j++ {
		dp[(1<<j)*q+j] = d[j+1] // d[start][j]
	}
	full := uint32(size - 1)
	for set := 1; set < size; set++ {
		base := set * q
		rest := full &^ uint32(set)
		if rest == 0 {
			continue
		}
		for ends := uint32(set); ends != 0; ends &= ends - 1 {
			j := int(bits.TrailingZeros32(ends))
			cur := dp[base+j]
			if cur >= inf {
				continue
			}
			row := d[(j+1)*stride:]
			for rem := rest; rem != 0; rem &= rem - 1 {
				nxt := int(bits.TrailingZeros32(rem))
				if c := cur + row[nxt+1]; c < dp[(set|1<<nxt)*q+nxt] {
					dp[(set|1<<nxt)*q+nxt] = c
				}
			}
		}
	}
	best := inf
	for j := 0; j < q; j++ {
		if c := dp[(size-1)*q+j] + d[(j+1)*stride]; c < best {
			best = c
		}
	}
	return best
}

// nearestNeighborPath orders sites by repeatedly hopping to the closest
// unvisited site, starting from home.
func nearestNeighborPath(m graph.Metric, home graph.NodeID, sites []graph.NodeID) []graph.NodeID {
	rest := make([]graph.NodeID, len(sites))
	copy(rest, sites)
	out := make([]graph.NodeID, 0, len(sites))
	cur := home
	for len(rest) > 0 {
		bi, bd := 0, m.Dist(cur, rest[0])
		for i := 1; i < len(rest); i++ {
			if d := m.Dist(cur, rest[i]); d < bd {
				bi, bd = i, d
			}
		}
		cur = rest[bi]
		out = append(out, cur)
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
	}
	return out
}

// twoOptPath improves an open path (fixed start at home) by reversing
// segments while any reversal shortens it.
func twoOptPath(m graph.Metric, home graph.NodeID, path []graph.NodeID) []graph.NodeID {
	n := len(path)
	if n < 3 {
		return path
	}
	prev := func(i int) graph.NodeID {
		if i == 0 {
			return home
		}
		return path[i-1]
	}
	improved := true
	for rounds := 0; improved && rounds < 32; rounds++ {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reverse path[i..j]: edges (prev(i), path[i]) and
				// (path[j], path[j+1]) become (prev(i), path[j]) and
				// (path[i], path[j+1]).
				oldCost := m.Dist(prev(i), path[i])
				newCost := m.Dist(prev(i), path[j])
				if j+1 < n {
					oldCost += m.Dist(path[j], path[j+1])
					newCost += m.Dist(path[i], path[j+1])
				}
				if newCost < oldCost {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						path[a], path[b] = path[b], path[a]
					}
					improved = true
				}
			}
		}
	}
	return path
}

func pathLen(m graph.Metric, home graph.NodeID, path []graph.NodeID) int64 {
	var total int64
	cur := home
	for _, v := range path {
		total += m.Dist(cur, v)
		cur = v
	}
	return total
}

// dedupe removes duplicates and (when skip ≥ 0) any site equal to skip.
// Map-based; the Solver's stamp dedupe is the amortized equivalent.
func dedupe(sites []graph.NodeID, skip graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(sites))
	out := make([]graph.NodeID, 0, len(sites))
	for _, s := range sites {
		if s == skip {
			continue
		}
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}
