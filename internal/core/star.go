package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// Star is the Section 7 schedule for the star graph (α rays of β nodes
// around a center). Rays are cut into η = ⌈log₂ β⌉ segments of
// exponentially growing length; the center's transaction executes first,
// then period i executes the transactions of V_i — the ith segment of
// every ray — treating segments as clusters that communicate through the
// center with effective bridge length 2^i.
//
// Like the Cluster scheduler, each period runs either the greedy schedule
// (Approach 1) or randomized activation rounds (Approach 2, Algorithm 1
// with segments in place of clusters, enabled transactions sweeping their
// segment center-outward); Auto builds both full schedules and keeps the
// shorter, realizing Theorem 5's O(log β · min(kβ, c^k ln^k m)) factor.
type Star struct {
	// Topo is the star topology the instance lives on.
	Topo *topology.Star
	// Rng drives Approach 2's random activations.
	Rng *rand.Rand
	// Approach selects the per-period algorithm (default auto).
	Approach ClusterApproach
}

// Name implements Scheduler.
func (st *Star) Name() string {
	switch st.Approach {
	case ClusterApproach1:
		return "star/approach1"
	case ClusterApproach2:
		return "star/approach2"
	default:
		return "star/auto"
	}
}

// Schedule implements Scheduler.
func (st *Star) Schedule(in *tm.Instance) (*Result, error) {
	if st.Topo == nil {
		return nil, fmt.Errorf("core: star scheduler needs its topology")
	}
	if in.G != st.Topo.Graph() {
		return nil, fmt.Errorf("core: instance graph is not the scheduler's star")
	}
	switch st.Approach {
	case ClusterApproach1:
		return st.run(in, false)
	case ClusterApproach2:
		return st.run(in, true)
	default:
		r1, err := st.run(in, false)
		if err != nil {
			return nil, err
		}
		r2, err := st.run(in, true)
		if err != nil {
			return nil, err
		}
		if r2.Makespan < r1.Makespan {
			r2.Stats["picked"] = 2
			return r2, nil
		}
		r1.Stats["picked"] = 1
		return r1, nil
	}
}

func (st *Star) run(in *tm.Instance, randomized bool) (*Result, error) {
	if randomized && st.Rng == nil {
		return nil, fmt.Errorf("core: star approach 2 needs an Rng")
	}
	c := newComposer(in)
	var totalRounds, fallbacks int64

	name := "star/approach1"
	if randomized {
		name = "star/approach2"
	}
	r := &Result{Algorithm: name, Stats: map[string]int64{}}

	// The center's transaction executes first.
	if txn := in.TxnAt(st.Topo.Center()); txn != nil {
		c.appendOne(txn.ID)
	}

	eta := st.Topo.NumSegments()
	for i := 1; i <= eta; i++ {
		segs := st.Topo.Segments(i)
		if len(segs) == 0 {
			continue
		}
		// Collect pending transactions per segment (keyed by ray).
		bySeg := make([][]tm.TxnID, len(segs))
		var all []tm.TxnID
		for s, seg := range segs {
			for _, v := range seg.Nodes(st.Topo) {
				if txn := in.TxnAt(v); txn != nil && !c.done[txn.ID] {
					bySeg[s] = append(bySeg[s], txn.ID)
					all = append(all, txn.ID)
				}
			}
		}
		if len(all) == 0 {
			continue
		}
		if !randomized {
			h := depgraph.Build(in, all)
			c.appendBatch(all, h.GreedyColor(h.OrderByNode(in)))
			addBuildStats(r.Stats, h.Info())
			continue
		}
		rounds, fb := st.randomizedPeriod(in, c, segs, bySeg)
		totalRounds += rounds
		fallbacks += fb
	}

	r.Schedule = c.finish()
	r.Makespan = r.Schedule.Makespan()
	r.Stats["eta"] = int64(eta)
	r.Stats["rounds"] = totalRounds
	r.Stats["fallbacks"] = fallbacks
	return validateResult(in, r)
}

// randomizedPeriod runs Algorithm 1 style rounds over the segments of one
// period: each object wanted by pending transactions of several segments
// activates in one uniformly random such segment; a pending transaction is
// enabled when all of its objects activated in its own segment, and
// enabled transactions sweep their segment center-outward (consecutive
// positions execute on consecutive steps, so two enabled transactions in
// one segment sharing an object are separated by at least their distance).
func (st *Star) randomizedPeriod(in *tm.Instance, c *composer, segs []topology.Segment, bySeg [][]tm.TxnID) (rounds, fallbacks int64) {
	pendingCount := 0
	segOf := make(map[tm.TxnID]int)
	for s := range bySeg {
		pendingCount += len(bySeg[s])
		for _, id := range bySeg[s] {
			segOf[id] = s
		}
	}
	n := in.G.NumNodes()
	m := maxInt(maxInt(n, in.NumObjects), 2)
	k := maxInt(in.MaxK(), 1)
	zeta := roundCap(k, math.Log(float64(m)))

	const stallLimit = 5000
	stall := 0
	for round := int64(0); pendingCount > 0 && round < zeta && stall < stallLimit; round++ {
		rounds++
		active := make(map[tm.ObjectID]int)
		index := in.Index()
		for o := 0; o < in.NumObjects; o++ {
			var choices []int
			seen := make(map[int]bool)
			for _, id := range index.Members(tm.ObjectID(o)) {
				if s, ok := segOf[id]; ok && !c.done[id] && !seen[s] {
					seen[s] = true
					choices = append(choices, s)
				}
			}
			if len(choices) > 0 {
				sort.Ints(choices)
				active[tm.ObjectID(o)] = choices[cPick(st.Rng, len(choices))]
			}
		}
		var ids []tm.TxnID
		var local []int64
		for s := range bySeg {
			var still []tm.TxnID
			for _, id := range bySeg[s] {
				enabled := true
				for _, o := range in.Txns[id].Objects {
					if a, ok := active[o]; !ok || a != s {
						enabled = false
						break
					}
				}
				if enabled {
					// Local time = 1-based offset of the node within its
					// segment, sweeping center-outward.
					_, pos := st.Topo.RayOf(in.Txns[id].Node)
					ids = append(ids, id)
					local = append(local, int64(pos-segs[s].Lo+1))
					pendingCount--
					delete(segOf, id)
				} else {
					still = append(still, id)
				}
			}
			bySeg[s] = still
		}
		if len(ids) > 0 {
			c.appendBatch(ids, local)
			stall = 0
		} else {
			stall++
		}
	}
	for s := range bySeg {
		for _, id := range bySeg[s] {
			fallbacks++
			c.appendOne(id)
		}
		bySeg[s] = nil
	}
	return rounds, fallbacks
}

func cPick(r *rand.Rand, n int) int { return r.Intn(n) }
