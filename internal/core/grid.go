package core

import (
	"fmt"
	"math"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// Grid is the Section 5 schedule for the n×n grid with uniformly random
// k-subsets of w objects. Let m = max(n, w) and ξ = 27·w·ln(m)/k. The grid
// is decomposed into √ξ×√ξ subgrids executed one at a time in boustrophedon
// column-major order (Figure 2); each subgrid runs the greedy schedule of
// Section 2.3 internally, and objects migrate to the next requesting
// subgrid between internal schedules. With high probability the result is
// an O(k·log m) approximation (Theorem 3).
type Grid struct {
	// Topo is the grid topology the instance lives on.
	Topo *topology.Grid
	// SideOverride forces the subgrid side length (0 = the paper's √ξ).
	// Ablation experiments use it to probe sensitivity to tile size.
	SideOverride int
}

// Name implements Scheduler.
func (g *Grid) Name() string { return "grid" }

// Side returns the subgrid side the algorithm would use for an instance:
// ⌈√ξ⌉ with ξ = 27·w·ln(m)/k, clamped to [1, grid side].
func (g *Grid) Side(in *tm.Instance) int {
	if g.SideOverride > 0 {
		return g.SideOverride
	}
	n := g.Topo.Rows()
	if c := g.Topo.Cols(); c > n {
		n = c
	}
	w := in.NumObjects
	k := in.MaxK()
	if k < 1 {
		k = 1
	}
	m := n
	if w > m {
		m = w
	}
	xi := 27 * float64(w) * math.Log(float64(maxInt(m, 2))) / float64(k)
	side := int(math.Ceil(math.Sqrt(xi)))
	if side < 1 {
		side = 1
	}
	if side > n {
		side = n
	}
	return side
}

// Schedule implements Scheduler.
func (g *Grid) Schedule(in *tm.Instance) (*Result, error) {
	if g.Topo == nil {
		return nil, fmt.Errorf("core: grid scheduler needs its topology")
	}
	if in.G != g.Topo.Graph() {
		return nil, fmt.Errorf("core: instance graph is not the scheduler's grid")
	}
	side := g.Side(in)
	tiles := topology.SnakeOrder(g.Topo.Decompose(side))

	c := newComposer(in)
	r := &Result{Algorithm: g.Name(), Stats: map[string]int64{}}
	var internalSteps, tilesUsed int64
	for _, tile := range tiles {
		var ids []tm.TxnID
		for _, v := range tile.Nodes(g.Topo) {
			if txn := in.TxnAt(v); txn != nil {
				ids = append(ids, txn.ID)
			}
		}
		if len(ids) == 0 {
			continue
		}
		h := depgraph.Build(in, ids)
		local := h.GreedyColor(h.OrderByNode(in))
		before := c.clock
		c.appendBatch(ids, local)
		internalSteps += c.clock - before
		tilesUsed++
		addBuildStats(r.Stats, h.Info())
	}
	r.Schedule = c.finish()
	r.Makespan = r.Schedule.Makespan()
	r.Stats["side"] = int64(side)
	r.Stats["tiles"] = tilesUsed
	r.Stats["internal_steps"] = internalSteps
	return validateResult(in, r)
}
