package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/graph"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/tsp"
	"dtmsched/internal/xrand"
)

// mustSchedule runs the scheduler and asserts both the algebraic checker
// and the synchronous simulator accept the result.
func mustSchedule(t *testing.T, in *tm.Instance, s Scheduler) *Result {
	t.Helper()
	res, err := s.Schedule(in)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("%s: infeasible: %v", s.Name(), err)
	}
	if _, err := sim.Run(in, res.Schedule, sim.Options{}); err != nil {
		t.Fatalf("%s: simulator rejected: %v", s.Name(), err)
	}
	if res.Makespan != res.Schedule.Makespan() {
		t.Fatalf("%s: cached makespan %d != %d", s.Name(), res.Makespan, res.Schedule.Makespan())
	}
	return res
}

func uniformOn(t *testing.T, topo topology.Topology, w, k int, seed int64) *tm.Instance {
	t.Helper()
	g := topo.Graph()
	in := tm.UniformK(w, k).Generate(xrand.New(seed), g, graph.FuncMetric(topo.Dist), g.Nodes(), tm.PlaceAtRandomUser)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestGreedyOnCliqueWithinGammaPlusOne(t *testing.T) {
	topo := topology.NewClique(24)
	in := uniformOn(t, topo, 8, 2, 1)
	res := mustSchedule(t, in, &Greedy{})
	h := depgraph.Build(in, nil)
	// All objects are homed at requesters, and on a clique the initial
	// shift is ≤ 1, so makespan ≤ Γ + 2.
	if res.Makespan > h.WeightedDegree()+2 {
		t.Fatalf("greedy makespan %d exceeds Γ+2 = %d", res.Makespan, h.WeightedDegree()+2)
	}
	if res.Stats["colors"] < 1 || res.Stats["gamma"] != h.WeightedDegree() {
		t.Fatalf("stats wrong: %v", res.Stats)
	}
}

func TestGreedyDeterministicWithoutRng(t *testing.T) {
	topo := topology.NewClique(16)
	in := uniformOn(t, topo, 8, 2, 2)
	r1 := mustSchedule(t, in, &Greedy{})
	r2 := mustSchedule(t, in, &Greedy{})
	for i := range r1.Schedule.Times {
		if r1.Schedule.Times[i] != r2.Schedule.Times[i] {
			t.Fatal("greedy not deterministic")
		}
	}
}

// TestGreedyRngImpliesShuffle pins the backward-compatibility contract on
// Greedy.Rng: a non-nil Rng with the zero-value Order (OrderNode) shuffles
// exactly as if Order were OrderRandom. Early callers requested
// randomization by setting only Rng, so the implicit behavior must stay.
func TestGreedyRngImpliesShuffle(t *testing.T) {
	topo := topology.NewClique(20)
	in := uniformOn(t, topo, 8, 2, 21)
	implicit := mustSchedule(t, in, &Greedy{Rng: rand.New(rand.NewSource(77))})
	explicit := mustSchedule(t, in, &Greedy{Order: OrderRandom, Rng: rand.New(rand.NewSource(77))})
	for i := range implicit.Schedule.Times {
		if implicit.Schedule.Times[i] != explicit.Schedule.Times[i] {
			t.Fatalf("txn %d: implicit-shuffle time %d != OrderRandom time %d",
				i, implicit.Schedule.Times[i], explicit.Schedule.Times[i])
		}
	}
	// And OrderRandom without an Rng must still be rejected.
	if _, err := (&Greedy{Order: OrderRandom}).Schedule(in); err == nil {
		t.Fatal("OrderRandom accepted nil Rng")
	}
}

func TestGreedyShuffledStillFeasible(t *testing.T) {
	topo := topology.NewHypercube(4)
	in := uniformOn(t, topo, 6, 2, 3)
	mustSchedule(t, in, &Greedy{Rng: rand.New(rand.NewSource(9))})
}

func TestGreedySingleTransaction(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := tm.NewInstance(g, nil, 1, []tm.Txn{{Node: 1, Objects: []tm.ObjectID{0}}}, []graph.NodeID{0})
	res := mustSchedule(t, in, &Greedy{})
	// Object must travel distance 1 before the transaction runs.
	if res.Makespan != 1 {
		t.Fatalf("makespan = %d, want 1 (object one hop away, t ≥ dist)", res.Makespan)
	}
}

func TestGreedyConflictFreeRunsInOneStep(t *testing.T) {
	topo := topology.NewClique(8)
	g := topo.Graph()
	txns := make([]tm.Txn, 8)
	homes := make([]graph.NodeID, 8)
	for i := range txns {
		txns[i] = tm.Txn{Node: graph.NodeID(i), Objects: []tm.ObjectID{tm.ObjectID(i)}}
		homes[i] = graph.NodeID(i)
	}
	in := tm.NewInstance(g, graph.FuncMetric(topo.Dist), 8, txns, homes)
	res := mustSchedule(t, in, &Greedy{})
	if res.Makespan != 1 {
		t.Fatalf("conflict-free makespan = %d, want 1", res.Makespan)
	}
}

func TestLineWithinFourEll(t *testing.T) {
	topo := topology.NewLine(64)
	in := uniformOn(t, topo, 16, 2, 4)
	res := mustSchedule(t, in, &Line{Topo: topo})
	ell := res.Stats["ell"]
	if res.Makespan > 4*ell-2 {
		t.Fatalf("line makespan %d exceeds 4ℓ−2 = %d", res.Makespan, 4*ell-2)
	}
}

func TestLineSingleNode(t *testing.T) {
	topo := topology.NewLine(1)
	g := topo.Graph()
	in := tm.NewInstance(g, graph.FuncMetric(topo.Dist), 1,
		[]tm.Txn{{Node: 0, Objects: []tm.ObjectID{0}}}, []graph.NodeID{0})
	res := mustSchedule(t, in, &Line{Topo: topo})
	if res.Makespan != 1 {
		t.Fatalf("single-node line makespan = %d", res.Makespan)
	}
}

func TestLineErrors(t *testing.T) {
	topo := topology.NewLine(4)
	other := topology.NewLine(4)
	in := uniformOn(t, other, 2, 1, 5)
	if _, err := (&Line{Topo: topo}).Schedule(in); err == nil {
		t.Fatal("accepted instance from a different graph")
	}
	if _, err := (&Line{}).Schedule(in); err == nil {
		t.Fatal("accepted nil topology")
	}
}

func TestLinePropertyRandomWorkloads(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(120)
		w := 2 + r.Intn(16)
		k := 1 + r.Intn(minIntT(w, 3))
		topo := topology.NewLine(n)
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		res, err := (&Line{Topo: topo}).Schedule(in)
		if err != nil {
			return false
		}
		ell := res.Stats["ell"]
		return res.Schedule.Validate(in) == nil && res.Makespan <= 4*ell-2+ell // δ slack for random homes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGridSideFormula(t *testing.T) {
	topo := topology.NewSquareGrid(32)
	in := uniformOn(t, topo, 128, 2, 6)
	side := (&Grid{Topo: topo}).Side(in)
	if side < 1 || side > 32 {
		t.Fatalf("Side = %d out of range", side)
	}
	forced := &Grid{Topo: topo, SideOverride: 5}
	if forced.Side(in) != 5 {
		t.Fatal("SideOverride ignored")
	}
}

func TestGridSchedulesAllTiles(t *testing.T) {
	topo := topology.NewSquareGrid(12)
	in := uniformOn(t, topo, 24, 2, 7)
	res := mustSchedule(t, in, &Grid{Topo: topo, SideOverride: 4})
	if res.Stats["tiles"] != 9 {
		t.Fatalf("tiles = %d, want 9", res.Stats["tiles"])
	}
}

func TestGridErrors(t *testing.T) {
	topo := topology.NewSquareGrid(4)
	other := topology.NewSquareGrid(4)
	in := uniformOn(t, other, 4, 1, 8)
	if _, err := (&Grid{Topo: topo}).Schedule(in); err == nil {
		t.Fatal("accepted instance from a different grid")
	}
	if _, err := (&Grid{}).Schedule(in); err == nil {
		t.Fatal("accepted nil topology")
	}
}

func TestGridPropertyRandomSizes(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		side := 3 + r.Intn(10)
		w := 2 + r.Intn(12)
		k := 1 + r.Intn(minIntT(w, 3))
		topo := topology.NewSquareGrid(side)
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		res, err := (&Grid{Topo: topo}).Schedule(in)
		if err != nil {
			return false
		}
		if res.Schedule.Validate(in) != nil {
			return false
		}
		_, err = sim.Run(in, res.Schedule, sim.Options{})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterApproachesAndAuto(t *testing.T) {
	topo := topology.NewCluster(4, 6, 12)
	in := uniformOn(t, topo, 8, 2, 9)
	r1 := mustSchedule(t, in, &Cluster{Topo: topo, Approach: ClusterApproach1})
	r2 := mustSchedule(t, in, &Cluster{Topo: topo, Approach: ClusterApproach2, Rng: xrand.New(1)})
	ra := mustSchedule(t, in, &Cluster{Topo: topo, Rng: xrand.New(1)})
	if ra.Makespan > r1.Makespan && ra.Makespan > r2.Makespan {
		t.Fatalf("auto makespan %d worse than both approaches (%d, %d)", ra.Makespan, r1.Makespan, r2.Makespan)
	}
	if r2.Stats["rounds"] < 1 || r2.Stats["psi"] < 1 {
		t.Fatalf("approach-2 stats missing: %v", r2.Stats)
	}
	if r1.Stats["sigma"] < 1 {
		t.Fatalf("approach-1 sigma missing: %v", r1.Stats)
	}
}

func TestClusterErrors(t *testing.T) {
	topo := topology.NewCluster(2, 3, 4)
	in := uniformOn(t, topo, 4, 1, 10)
	if _, err := (&Cluster{Topo: topo, Approach: ClusterApproach2}).Schedule(in); err == nil {
		t.Fatal("approach 2 accepted nil Rng")
	}
	if _, err := (&Cluster{}).Schedule(in); err == nil {
		t.Fatal("accepted nil topology")
	}
	other := topology.NewCluster(2, 3, 4)
	inOther := uniformOn(t, other, 4, 1, 10)
	if _, err := (&Cluster{Topo: topo, Rng: xrand.New(1)}).Schedule(inOther); err == nil {
		t.Fatal("accepted instance from a different cluster graph")
	}
}

func TestClusterNames(t *testing.T) {
	topo := topology.NewCluster(2, 2, 2)
	for ap, want := range map[ClusterApproach]string{
		ClusterAuto:      "cluster/auto",
		ClusterApproach1: "cluster/approach1",
		ClusterApproach2: "cluster/approach2",
	} {
		if got := (&Cluster{Topo: topo, Approach: ap}).Name(); got != want {
			t.Fatalf("Name(%v) = %q", ap, got)
		}
	}
}

func TestClusterPropertyRandom(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := 2 + r.Intn(5)
		beta := 2 + r.Intn(6)
		gamma := int64(beta + r.Intn(2*beta))
		w := 2 + r.Intn(10)
		k := 1 + r.Intn(minIntT(w, 3))
		topo := topology.NewCluster(alpha, beta, gamma)
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		cs := &Cluster{Topo: topo, Rng: rand.New(rand.NewSource(seed + 1))}
		res, err := cs.Schedule(in)
		if err != nil || res.Schedule.Validate(in) != nil {
			return false
		}
		_, err = sim.Run(in, res.Schedule, sim.Options{})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStarApproachesAndAuto(t *testing.T) {
	topo := topology.NewStar(4, 8)
	in := uniformOn(t, topo, 8, 2, 11)
	r1 := mustSchedule(t, in, &Star{Topo: topo, Approach: ClusterApproach1})
	r2 := mustSchedule(t, in, &Star{Topo: topo, Approach: ClusterApproach2, Rng: xrand.New(2)})
	ra := mustSchedule(t, in, &Star{Topo: topo, Rng: xrand.New(2)})
	if ra.Makespan > r1.Makespan && ra.Makespan > r2.Makespan {
		t.Fatal("star auto worse than both approaches")
	}
	if r1.Stats["eta"] != int64(topo.NumSegments()) {
		t.Fatalf("eta stat = %d, want %d", r1.Stats["eta"], topo.NumSegments())
	}
	_ = r2
}

func TestStarErrors(t *testing.T) {
	topo := topology.NewStar(2, 3)
	in := uniformOn(t, topo, 4, 1, 12)
	if _, err := (&Star{Topo: topo, Approach: ClusterApproach2}).Schedule(in); err == nil {
		t.Fatal("star approach 2 accepted nil Rng")
	}
	if _, err := (&Star{}).Schedule(in); err == nil {
		t.Fatal("accepted nil topology")
	}
}

func TestStarCenterExecutesFirst(t *testing.T) {
	topo := topology.NewStar(3, 4)
	in := uniformOn(t, topo, 4, 2, 13)
	res := mustSchedule(t, in, &Star{Topo: topo, Approach: ClusterApproach1})
	var centerTime int64
	for i := range in.Txns {
		if in.Txns[i].Node == topo.Center() {
			centerTime = res.Schedule.Times[i]
		}
	}
	if centerTime == 0 {
		t.Skip("no transaction at center")
	}
	for i := range in.Txns {
		if in.Txns[i].Node != topo.Center() && res.Schedule.Times[i] < centerTime {
			// Center is scheduled by appendOne before any period, so no
			// transaction sharing none of its objects may still precede
			// it? They may not: composer serializes batches after it.
			t.Fatalf("transaction %d runs at %d before center's %d", i, res.Schedule.Times[i], centerTime)
		}
	}
}

func TestStarPropertyRandom(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := 2 + r.Intn(5)
		beta := 2 + r.Intn(12)
		w := 2 + r.Intn(10)
		k := 1 + r.Intn(minIntT(w, 3))
		topo := topology.NewStar(alpha, beta)
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		st := &Star{Topo: topo, Rng: rand.New(rand.NewSource(seed + 1))}
		res, err := st.Schedule(in)
		if err != nil || res.Schedule.Validate(in) != nil {
			return false
		}
		_, err = sim.Run(in, res.Schedule, sim.Options{})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minIntT(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestLineMaxWalkMatchesTSPExact cross-checks the Line scheduler's
// closed-form walk computation against the exact Held-Karp solver.
func TestLineMaxWalkMatchesTSPExact(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		topo := topology.NewLine(24)
		in := uniformOn(t, topo, 6, 2, 100+seed)
		l := &Line{Topo: topo}
		res, err := l.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for o := 0; o < in.NumObjects; o++ {
			users := in.Users(tm.ObjectID(o))
			if len(users) == 0 {
				continue
			}
			sites := make([]graph.NodeID, len(users))
			for i, id := range users {
				sites[i] = in.Txns[id].Node
			}
			b := tsp.Walk(graph.FuncMetric(topo.Dist), in.Home[o], sites)
			if !b.Exact {
				t.Skip("instance too large for exact walks")
			}
			if b.LB > want {
				want = b.LB
			}
		}
		if got := res.Stats["maxwalk"]; got != want {
			t.Fatalf("seed %d: line max walk = %d, exact = %d", seed, got, want)
		}
		if ell := res.Stats["ell"]; ell != want && ell != int64(topo.N()) {
			t.Fatalf("seed %d: ℓ = %d is neither the walk %d nor the n-cap", seed, ell, want)
		}
	}
}
