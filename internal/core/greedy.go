package core

import (
	"math/rand"
	"sort"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/tm"
)

// GreedyOrder selects the order in which the greedy schedule colors the
// dependency graph. The Γ+1 bound of Section 2.3 holds for every order;
// the order only affects the constant (experiment E15 quantifies it).
type GreedyOrder int

// Coloring orders.
const (
	// OrderNode colors transactions by ascending node ID (the
	// deterministic default).
	OrderNode GreedyOrder = iota
	// OrderDegree colors highest-degree transactions first
	// (Welsh–Powell), typically using fewer colors on skewed conflict
	// graphs.
	OrderDegree
	// OrderRandom shuffles with the scheduler's Rng.
	OrderRandom
)

// Greedy is the basic greedy schedule of Section 2.3: color the weighted
// transaction dependency graph H with at most Γ+1 = h_max·Δ+1 colors and
// execute each transaction at its color's time step, shifted just enough
// for objects to reach their first requesters from their homes.
//
// Applied to the complete graph it realizes Theorem 1's O(k) approximation;
// on the hypercube and butterfly it realizes the O(k log n) bounds of
// Section 3.1, and on any diameter-d graph the O(k·ℓ·d) schedule.
type Greedy struct {
	// Order selects the coloring order (default OrderNode).
	Order GreedyOrder
	// Rng drives OrderRandom.
	//
	// Backward-compatibility contract (pinned by
	// TestGreedyRngImpliesShuffle): a non-nil Rng with the zero-value
	// Order (OrderNode) is treated as an implicit request for a shuffled
	// order, exactly as if Order were OrderRandom — early callers asked
	// for randomization by setting only this field. Callers that want the
	// deterministic node order must leave Rng nil.
	Rng *rand.Rand
}

// Name implements Scheduler.
func (g *Greedy) Name() string { return "greedy" }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(in *tm.Instance) (*Result, error) {
	h := depgraph.Build(in, nil)
	order := h.OrderByNode(in)
	switch {
	case g.Order == OrderDegree:
		sort.SliceStable(order, func(a, b int) bool {
			return h.Degree(order[a]) > h.Degree(order[b])
		})
	case g.Order == OrderRandom || (g.Order == OrderNode && g.Rng != nil):
		if g.Rng == nil {
			return nil, errNoRng
		}
		g.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	local := h.GreedyColor(order)

	c := newComposer(in)
	c.appendBatch(h.IDs, local)
	r := newResult(g.Name(), c.finish())
	r.Stats["hmax"] = h.HMax()
	r.Stats["maxdeg"] = int64(h.MaxDegree())
	r.Stats["gamma"] = h.WeightedDegree()
	r.Stats["colors"] = maxOf(local)
	addBuildStats(r.Stats, h.Info())
	return validateResult(in, r)
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
