package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// ClusterApproach selects between Section 6's two algorithms.
type ClusterApproach int

// Approaches.
const (
	// ClusterAuto runs both approaches and keeps the shorter schedule,
	// realizing Theorem 4's O(min(kβ, 40^k ln^k m)) factor.
	ClusterAuto ClusterApproach = iota
	// ClusterApproach1 is the plain greedy schedule (Lemma 6).
	ClusterApproach1
	// ClusterApproach2 is the randomized phase/round Algorithm 1
	// (Lemma 9).
	ClusterApproach2
)

// Cluster schedules transactions on the Section 6 cluster graph: α cliques
// of β nodes joined by bridge edges of weight γ ≥ β.
//
// Approach 1 applies the basic greedy schedule to the whole graph.
// Approach 2 (Algorithm 1) assigns clusters to ψ = ⌈σ/(24·ln m)⌉ random
// phases; within a phase, rounds repeat in which every live object
// activates in one uniformly random phase-cluster that still wants it, the
// transactions whose objects all activated locally become enabled, and
// enabled transactions execute cluster-locally.
//
// Two deliberate deviations from the paper's accounting (not from its
// algorithm), both documented in DESIGN.md:
//
//   - rounds end early once every transaction of the phase has executed,
//     instead of always running the worst-case ζ = 2·40^k·ln^(k+1) m
//     rounds — the analysis shows w.h.p. completion within ζ, and ζ
//     remains the cap;
//   - objects travel directly between consecutive requesters rather than
//     literally staging at bridge nodes; direct shortest paths are never
//     longer than the via-bridge routes the analysis charges.
type Cluster struct {
	// Topo is the cluster topology the instance lives on.
	Topo *topology.ClusterGraph
	// Rng drives Approach 2's random choices. Required for Approach 2
	// and Auto.
	Rng *rand.Rand
	// Approach selects the algorithm (default ClusterAuto).
	Approach ClusterApproach
}

// Name implements Scheduler.
func (cs *Cluster) Name() string {
	switch cs.Approach {
	case ClusterApproach1:
		return "cluster/approach1"
	case ClusterApproach2:
		return "cluster/approach2"
	default:
		return "cluster/auto"
	}
}

// Schedule implements Scheduler.
func (cs *Cluster) Schedule(in *tm.Instance) (*Result, error) {
	if cs.Topo == nil {
		return nil, fmt.Errorf("core: cluster scheduler needs its topology")
	}
	if in.G != cs.Topo.Graph() {
		return nil, fmt.Errorf("core: instance graph is not the scheduler's cluster graph")
	}
	switch cs.Approach {
	case ClusterApproach1:
		return cs.approach1(in)
	case ClusterApproach2:
		return cs.approach2(in)
	default:
		r1, err := cs.approach1(in)
		if err != nil {
			return nil, err
		}
		r2, err := cs.approach2(in)
		if err != nil {
			return nil, err
		}
		if r2.Makespan < r1.Makespan {
			r2.Stats["picked"] = 2
			return r2, nil
		}
		r1.Stats["picked"] = 1
		return r1, nil
	}
}

func (cs *Cluster) approach1(in *tm.Instance) (*Result, error) {
	g := &Greedy{}
	r, err := g.Schedule(in)
	if err != nil {
		return nil, err
	}
	r.Algorithm = "cluster/approach1"
	r.Stats["sigma"] = int64(cs.sigma(in))
	return r, nil
}

// sigma returns σ = max over objects of the number of distinct clusters
// with a requester.
func (cs *Cluster) sigma(in *tm.Instance) int {
	sigma := 0
	for o := 0; o < in.NumObjects; o++ {
		clusters := make(map[int]struct{})
		for _, id := range in.Users(tm.ObjectID(o)) {
			clusters[cs.Topo.ClusterOf(in.Txns[id].Node)] = struct{}{}
		}
		if len(clusters) > sigma {
			sigma = len(clusters)
		}
	}
	return sigma
}

func (cs *Cluster) approach2(in *tm.Instance) (*Result, error) {
	if cs.Rng == nil {
		return nil, fmt.Errorf("core: cluster approach 2 needs an Rng")
	}
	alpha := cs.Topo.Alpha()
	n := in.G.NumNodes()
	w := in.NumObjects
	m := maxInt(maxInt(n, w), 2)
	k := maxInt(in.MaxK(), 1)
	sigma := cs.sigma(in)

	lnM := math.Log(float64(m))
	psi := int(math.Ceil(float64(sigma) / (24 * lnM)))
	if psi < 1 {
		psi = 1
	}
	zeta := roundCap(k, lnM)

	// Assign each cluster to a uniformly random phase.
	phaseOf := make([]int, alpha)
	for i := range phaseOf {
		phaseOf[i] = cs.Rng.Intn(psi)
	}

	// pendingByCluster[c] = not-yet-executed transactions homed in c.
	pendingByCluster := make([][]tm.TxnID, alpha)
	for i := range in.Txns {
		cl := cs.Topo.ClusterOf(in.Txns[i].Node)
		pendingByCluster[cl] = append(pendingByCluster[cl], tm.TxnID(i))
	}

	c := newComposer(in)
	var totalRounds, fallbacks int64

	runPhase := func(clusters []int) {
		inPhase := make(map[int]bool, len(clusters))
		pendingCount := 0
		for _, cl := range clusters {
			inPhase[cl] = true
			pendingCount += len(pendingByCluster[cl])
		}
		// stall guards against spinning through the (astronomical) ζ cap
		// when randomness is persistently unlucky; the deterministic
		// fallback below keeps the schedule correct either way.
		const stallLimit = 5000
		stall := 0
		for round := int64(0); pendingCount > 0 && round < zeta && stall < stallLimit; round++ {
			totalRounds++
			// Activation: each object still wanted by a phase cluster
			// picks one such cluster uniformly at random.
			active := make(map[tm.ObjectID]int)
			for o := 0; o < w; o++ {
				var choices []int
				seen := make(map[int]bool)
				for _, id := range in.Users(tm.ObjectID(o)) {
					if c.done[id] {
						continue
					}
					cl := cs.Topo.ClusterOf(in.Txns[id].Node)
					if inPhase[cl] && !seen[cl] {
						seen[cl] = true
						choices = append(choices, cl)
					}
				}
				if len(choices) > 0 {
					sort.Ints(choices) // deterministic order before the random draw
					active[tm.ObjectID(o)] = choices[cs.Rng.Intn(len(choices))]
				}
			}
			// Enabled transactions: all requested objects activated in
			// the transaction's own cluster.
			var ids []tm.TxnID
			var local []int64
			for _, cl := range clusters {
				var pos int64
				var still []tm.TxnID
				for _, id := range pendingByCluster[cl] {
					enabled := true
					for _, o := range in.Txns[id].Objects {
						if a, ok := active[o]; !ok || a != cl {
							enabled = false
							break
						}
					}
					if enabled {
						pos++
						ids = append(ids, id)
						local = append(local, pos)
						pendingCount--
					} else {
						still = append(still, id)
					}
				}
				pendingByCluster[cl] = still
			}
			if len(ids) > 0 {
				c.appendBatch(ids, local)
				stall = 0
			} else {
				stall++
			}
		}
		// Deterministic fallback: list-schedule whatever the random
		// rounds left behind (never triggered at the paper's ζ except
		// with vanishing probability; required for guaranteed
		// termination).
		for _, cl := range clusters {
			for _, id := range pendingByCluster[cl] {
				fallbacks++
				c.appendOne(id)
			}
			pendingByCluster[cl] = nil
		}
	}

	for p := 0; p < psi; p++ {
		var clusters []int
		for cl, ph := range phaseOf {
			if ph == p {
				clusters = append(clusters, cl)
			}
		}
		runPhase(clusters)
	}

	r := newResult("cluster/approach2", c.finish())
	r.Stats["sigma"] = int64(sigma)
	r.Stats["psi"] = int64(psi)
	r.Stats["zeta_cap"] = zeta
	r.Stats["rounds"] = totalRounds
	r.Stats["fallbacks"] = fallbacks
	return validateResult(in, r)
}

// roundCap computes ζ = 2·40^k·⌈ln^(k+1) m⌉, clamped to a practical
// ceiling (the cap only matters as a safety net; phases end when their
// transactions finish).
func roundCap(k int, lnM float64) int64 {
	z := 2 * math.Pow(40, float64(k)) * math.Ceil(math.Pow(lnM, float64(k+1)))
	if z > 1e9 || math.IsInf(z, 0) || math.IsNaN(z) {
		return 1 << 30
	}
	if z < 1 {
		return 1
	}
	return int64(z)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
