package core

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// Line is the Section 4 two-phase schedule for the line graph. With ℓ the
// longest shortest walk of any object, the line decomposes into consecutive
// subgraphs of ℓ nodes; the even subgraphs execute in phase 1 and the odd
// subgraphs in phase 2, each phase preceded by an (ℓ−1)-step positioning
// period and sweeping each subgraph left to right in ℓ steps. Total: at
// most 4ℓ−2 steps, an asymptotically optimal factor-4 approximation
// (Theorem 2).
type Line struct {
	// Topo is the line topology the instance lives on.
	Topo *topology.Line
}

// Name implements Scheduler.
func (l *Line) Name() string { return "line" }

// Schedule implements Scheduler.
func (l *Line) Schedule(in *tm.Instance) (*Result, error) {
	if l.Topo == nil {
		return nil, fmt.Errorf("core: line scheduler needs its topology")
	}
	n := l.Topo.N()
	if in.G != l.Topo.Graph() {
		return nil, fmt.Errorf("core: instance graph is not the scheduler's line")
	}

	walk := l.maxWalk(in)
	ell := walk
	if ell < 1 {
		ell = 1
	}
	if ell > int64(n) {
		ell = int64(n) // single subgraph spanning the whole line
	}
	L := int(ell)

	// Execution times by the paper's timetable. Node v belongs to
	// subgraph y = v/L with offset j = v−yL. Phase 1 (even y): period 1
	// lasts ℓ−1 steps, period 2 executes offset j at step ℓ+j. Phase 2
	// (odd y): positioning ends at 3ℓ−2, offset j executes at 3ℓ−1+j.
	times := make([]int64, in.NumTxns())
	for i := range in.Txns {
		v := int(in.Txns[i].Node)
		y, j := v/L, int64(v%L)
		if y%2 == 0 {
			times[i] = ell + j
		} else {
			times[i] = 3*ell - 1 + j
		}
	}
	ids := make([]tm.TxnID, in.NumTxns())
	for i := range ids {
		ids[i] = tm.TxnID(i)
	}
	c := newComposer(in)
	c.appendBatch(ids, times)
	r := newResult(l.Name(), c.finish())
	r.Stats["ell"] = ell
	r.Stats["maxwalk"] = walk
	r.Stats["bound4ell"] = 4*ell - 2
	return validateResult(in, r)
}

// maxWalk computes ℓ exactly on the line: for each object the shortest
// walk from its home through all requesters is the requesters' span plus
// the smaller overhang from home to the span's nearer end.
func (l *Line) maxWalk(in *tm.Instance) int64 {
	var ell int64
	for o := 0; o < in.NumObjects; o++ {
		users := in.Users(tm.ObjectID(o))
		if len(users) == 0 {
			continue
		}
		lo, hi := graph.NodeID(l.Topo.N()), graph.NodeID(-1)
		for _, id := range users {
			v := in.Txns[id].Node
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		h := in.Home[o]
		span := int64(hi - lo)
		walk := span
		switch {
		case h < lo:
			walk = int64(hi - h)
		case h > hi:
			walk = int64(h - lo)
		default:
			left, right := int64(h-lo), int64(hi-h)
			if left < right {
				walk = span + left
			} else {
				walk = span + right
			}
		}
		if walk > ell {
			ell = walk
		}
	}
	return ell
}
