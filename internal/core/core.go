// Package core implements the scheduling algorithms of "Fast Scheduling in
// Distributed Transactional Memory": the basic greedy schedule of Section
// 2.3 (used directly on Cliques, Hypercubes, Butterflies, and any
// bounded-diameter graph), the two-phase Line schedule of Section 4, the
// subgrid column-major Grid schedule of Section 5, the two Cluster
// approaches of Section 6 (including Algorithm 1), and the segment/period
// Star schedule of Section 7.
//
// Every scheduler emits a schedule.Schedule whose feasibility is
// independently verifiable by schedule.Validate and sim.Run. Schedulers
// never rely on the paper's probabilistic accounting for correctness: exact
// feasibility offsets are computed while composing phases, so emitted
// schedules are feasible by construction and the probabilistic machinery
// only governs how *short* they are.
package core

import (
	"errors"
	"fmt"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// errNoRng is returned by randomized schedulers missing their Rng.
var errNoRng = errors.New("core: randomized order requested without an Rng")

// Result is a scheduler's output: the schedule plus algorithm-specific
// accounting used by reports and experiments.
type Result struct {
	// Schedule assigns each transaction its execution step.
	Schedule *schedule.Schedule
	// Makespan is Schedule.Makespan(), cached.
	Makespan int64
	// Algorithm names the algorithm that produced the schedule.
	Algorithm string
	// Stats carries algorithm-specific counters (phases, rounds, ξ, σ,
	// subgrid side, …) keyed by short names.
	Stats map[string]int64
}

func newResult(name string, s *schedule.Schedule) *Result {
	return &Result{Schedule: s, Makespan: s.Makespan(), Algorithm: name, Stats: map[string]int64{}}
}

// Scheduler is the common interface over all algorithms.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Schedule computes an execution schedule for the instance. The
	// returned schedule is feasible (schedule.Validate returns nil)
	// whenever the error is nil.
	Schedule(in *tm.Instance) (*Result, error)
}

// addBuildStats accumulates conflict-graph build instrumentation into a
// scheduler's stats map under the depgraph_* keys the engine and the
// observability layer read: build count, summed wall nanoseconds, and
// summed distinct edges. Schedulers that build H several times (Grid per
// tile, Star per period) call it once per build.
func addBuildStats(stats map[string]int64, info depgraph.BuildInfo) {
	stats["depgraph_builds"]++
	stats["depgraph_build_ns"] += int64(info.Duration)
	stats["depgraph_edges"] += info.Edges
}

// validateResult is the shared post-condition every scheduler enforces
// before returning.
func validateResult(in *tm.Instance, r *Result) (*Result, error) {
	if err := r.Schedule.Validate(in); err != nil {
		return nil, fmt.Errorf("core: %s produced an infeasible schedule: %w", r.Algorithm, err)
	}
	return r, nil
}
