package core

import (
	"testing"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
)

// composerInstance: line 0-1-2-3-4 with three transactions sharing
// object 0 (home node 0) and one using object 1 (home node 4).
func composerInstance() *tm.Instance {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{0}},
		{Node: 4, Objects: []tm.ObjectID{0, 1}},
	}, []graph.NodeID{0, 4})
}

func TestComposerBatchShift(t *testing.T) {
	in := composerInstance()
	c := newComposer(in)
	// Batch 1: txn0 at local time 1 — object 0 already home, δ = 0.
	c.appendBatch([]tm.TxnID{0}, []int64{1})
	if c.sched.Times[0] != 1 {
		t.Fatalf("t0 = %d, want 1", c.sched.Times[0])
	}
	// Batch 2: txn1 at local 1. Object 0 released at (1, node0), needs
	// 2 steps → δ = max(clock=1, 1+2−1=2) = 2, so t1 = 3.
	c.appendBatch([]tm.TxnID{1}, []int64{1})
	if c.sched.Times[1] != 3 {
		t.Fatalf("t1 = %d, want 3", c.sched.Times[1])
	}
	// Batch 3: txn2 at local 1. Object 0 at (3, node2), 2 away → needs 5;
	// object 1 home at node4, distance 0. δ = 4, t2 = 5.
	c.appendBatch([]tm.TxnID{2}, []int64{1})
	if c.sched.Times[2] != 5 {
		t.Fatalf("t2 = %d, want 5", c.sched.Times[2])
	}
	s := c.finish()
	if err := s.Validate(in); err != nil {
		t.Fatalf("composed schedule infeasible: %v", err)
	}
}

func TestComposerBatchesSerializeAfterClock(t *testing.T) {
	in := composerInstance()
	c := newComposer(in)
	c.appendBatch([]tm.TxnID{2}, []int64{4}) // t2 = 4 + δ(home dist 0 + obj0 dist 4 → δ=0) = 4
	if c.sched.Times[2] != 4 {
		t.Fatalf("t2 = %d, want 4", c.sched.Times[2])
	}
	// Next batch must start strictly after step 4 even without conflicts.
	c.appendBatch([]tm.TxnID{0}, []int64{1})
	if c.sched.Times[0] <= 4 {
		t.Fatalf("batch not serialized: t0 = %d", c.sched.Times[0])
	}
}

func TestComposerAppendOneParallelism(t *testing.T) {
	// Two transactions with disjoint objects both get step 1.
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 1})
	c := newComposer(in)
	c.appendOne(0)
	c.appendOne(1)
	if c.sched.Times[0] != 1 || c.sched.Times[1] != 1 {
		t.Fatalf("times = %v, want both 1", c.sched.Times)
	}
	if err := c.finish().Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestComposerPanics(t *testing.T) {
	in := composerInstance()
	t.Run("double schedule", func(t *testing.T) {
		c := newComposer(in)
		c.appendOne(0)
		defer expectPanicT(t)
		c.appendOne(0)
	})
	t.Run("mismatched lengths", func(t *testing.T) {
		c := newComposer(in)
		defer expectPanicT(t)
		c.appendBatch([]tm.TxnID{0, 1}, []int64{1})
	})
	t.Run("zero local time", func(t *testing.T) {
		c := newComposer(in)
		defer expectPanicT(t)
		c.appendBatch([]tm.TxnID{0}, []int64{0})
	})
	t.Run("finish with pending", func(t *testing.T) {
		c := newComposer(in)
		c.appendOne(0)
		defer expectPanicT(t)
		c.finish()
	})
}

func TestComposerEmptyBatchNoop(t *testing.T) {
	in := composerInstance()
	c := newComposer(in)
	if got := c.appendBatch(nil, nil); got != 0 {
		t.Fatalf("empty batch advanced clock to %d", got)
	}
	if len(c.remaining()) != 3 {
		t.Fatalf("remaining = %v", c.remaining())
	}
}

func expectPanicT(t *testing.T) {
	t.Helper()
	if recover() == nil {
		t.Fatal("expected panic")
	}
}
