package core

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// composer stitches locally-computed batch schedules (one subgrid, one
// phase, one round, …) into a single globally feasible schedule. It tracks
// where and when each object was last released, and shifts each batch by
// the exact offset δ that satisfies every cross-batch object-movement
// constraint — the constructive counterpart of the paper's "transition
// periods".
type composer struct {
	in    *tm.Instance
	sched *schedule.Schedule
	clock int64 // last step used by any scheduled transaction

	relTime []int64        // release step of each object (0 = still at home)
	relNode []graph.NodeID // node the object was last released at (home initially)
	done    []bool         // per transaction
	pending int
}

func newComposer(in *tm.Instance) *composer {
	c := &composer{
		in:      in,
		sched:   schedule.New(in.NumTxns()),
		relTime: make([]int64, in.NumObjects),
		relNode: make([]graph.NodeID, in.NumObjects),
		done:    make([]bool, in.NumTxns()),
		pending: in.NumTxns(),
	}
	copy(c.relNode, in.Home)
	return c
}

// appendBatch schedules the given transactions at local times (each ≥ 1),
// shifted by the smallest δ ≥ clock such that every object's first use in
// the batch respects its release point. Local times must already satisfy
// all intra-batch constraints (a valid dependency-graph coloring does).
// It returns the batch's global completion step.
func (c *composer) appendBatch(ids []tm.TxnID, local []int64) int64 {
	if len(ids) != len(local) {
		panic(fmt.Sprintf("core: batch of %d transactions with %d times", len(ids), len(local)))
	}
	if len(ids) == 0 {
		return c.clock
	}
	// Determine, per object used in the batch, its earliest batch use.
	type firstUse struct {
		t    int64
		node graph.NodeID
	}
	first := make(map[tm.ObjectID]firstUse)
	for i, id := range ids {
		if c.done[id] {
			panic(fmt.Sprintf("core: transaction %d scheduled twice", id))
		}
		if local[i] < 1 {
			panic(fmt.Sprintf("core: local time %d < 1 for transaction %d", local[i], id))
		}
		for _, o := range c.in.Txns[id].Objects {
			fu, ok := first[o]
			if !ok || local[i] < fu.t {
				first[o] = firstUse{t: local[i], node: c.in.Txns[id].Node}
			}
		}
	}
	// δ: batches are serialized after the clock, and each object must
	// have time to travel from its release point to its first batch use.
	delta := c.clock
	for o, fu := range first {
		need := c.relTime[o] + c.in.Dist(c.relNode[o], fu.node) - fu.t
		if need > delta {
			delta = need
		}
	}
	// Commit the batch and update per-object release points to each
	// object's last use in the batch.
	for i, id := range ids {
		t := local[i] + delta
		c.sched.Times[id] = t
		c.done[id] = true
		c.pending--
		if t > c.clock {
			c.clock = t
		}
		for _, o := range c.in.Txns[id].Objects {
			if t > c.relTime[o] {
				c.relTime[o] = t
				c.relNode[o] = c.in.Txns[id].Node
			}
		}
	}
	return c.clock
}

// appendOne schedules a single transaction at the earliest feasible step
// given current release points (list scheduling). Unlike appendBatch it
// does not serialize after the clock, so independent transactions may
// share steps.
func (c *composer) appendOne(id tm.TxnID) int64 {
	if c.done[id] {
		panic(fmt.Sprintf("core: transaction %d scheduled twice", id))
	}
	txn := &c.in.Txns[id]
	var t int64 = 1
	for _, o := range txn.Objects {
		// Distinct requesters sit at distinct nodes, so dist ≥ 1 for any
		// previously-used object and the new holder necessarily runs
		// strictly after the releaser.
		if need := c.relTime[o] + c.in.Dist(c.relNode[o], txn.Node); need > t {
			t = need
		}
	}
	c.sched.Times[id] = t
	c.done[id] = true
	c.pending--
	if t > c.clock {
		c.clock = t
	}
	for _, o := range txn.Objects {
		if t > c.relTime[o] {
			c.relTime[o] = t
			c.relNode[o] = txn.Node
		}
	}
	return t
}

// remaining returns the not-yet-scheduled transactions in ID order.
func (c *composer) remaining() []tm.TxnID {
	out := make([]tm.TxnID, 0, c.pending)
	for i, d := range c.done {
		if !d {
			out = append(out, tm.TxnID(i))
		}
	}
	return out
}

// finish asserts completeness and returns the composed schedule.
func (c *composer) finish() *schedule.Schedule {
	if c.pending != 0 {
		panic(fmt.Sprintf("core: %d transactions left unscheduled", c.pending))
	}
	return c.sched
}
