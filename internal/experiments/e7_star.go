package experiments

import (
	"fmt"
	"math"

	"dtmsched/internal/core"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E7", Title: "Star: segment/period schedule realizes Theorem 5", Ref: "Theorem 5", Run: runE7})
}

// runE7 sweeps ray counts and lengths. Theorem 5 proves an approximation
// of O(log β · min(kβ, c^k·ln^k m)); the check normalizes the measured
// ratio by k·β·log₂β (the theorem's first branch) and requires it bounded,
// plus both per-period approaches are compared like E6.
func runE7(cfg Config) (*Result, error) {
	type sweep struct{ alpha, beta, k int }
	sweeps := []sweep{
		{4, 8, 1}, {4, 8, 2}, {8, 8, 2}, {8, 16, 1}, {8, 16, 2}, {4, 32, 2}, {16, 16, 2},
	}
	if cfg.Quick {
		sweeps = []sweep{{4, 8, 2}, {8, 16, 2}}
	}
	res := &Result{ID: "E7", Title: "Star: segment/period schedule realizes Theorem 5", Ref: "Theorem 5",
		Table: stats.NewTable("alpha", "beta", "k", "n", "r(A1)", "r(A2)", "r(auto)", "winner", "ratio/(k·b·logb)")}
	worstNorm := 0.0
	autoOK := true
	sb := newSweep(cfg)
	for _, sw := range sweeps {
		n := 1 + sw.alpha*sw.beta
		w := maxOf2(n/4, sw.k)
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := xrand.NewDerived(cfg.Seed, "E7", fmt.Sprint(sw.alpha), fmt.Sprint(sw.beta), fmt.Sprint(sw.k), fmt.Sprint(trial))
			topo := topology.NewStar(sw.alpha, sw.beta)
			in := tm.UniformK(w, sw.k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			mk := func(tag string, ap core.ClusterApproach) *core.Star {
				return &core.Star{Topo: topo, Rng: xrand.NewDerived(cfg.Seed, "E7rng", tag, fmt.Sprint(trial)), Approach: ap}
			}
			prefix := fmt.Sprintf("E7/a=%d/b=%d/k=%d/t=%d", sw.alpha, sw.beta, sw.k, trial)
			sb.addInstance(prefix+"/A1", in, mk("a1", core.ClusterApproach1))
			sb.addInstance(prefix+"/A2", in, mk("a2", core.ClusterApproach2))
			sb.addInstance(prefix+"/auto", in, mk("auto", core.ClusterAuto))
		}
		sb.endCell()
	}
	groups, err := sb.run()
	if err != nil {
		return nil, err
	}
	for i, sw := range sweeps {
		n := 1 + sw.alpha*sw.beta
		var c1s, c2s, cas []cell
		for trial := 0; trial < cfg.Trials; trial++ {
			c1, c2, ca := groups[i][3*trial], groups[i][3*trial+1], groups[i][3*trial+2]
			if ca.Makespan > c1.Makespan && ca.Makespan > c2.Makespan {
				autoOK = false
			}
			c1s, c2s, cas = append(c1s, c1), append(c2s, c2), append(cas, ca)
		}
		r1, r2, ra := meanRatio(c1s), meanRatio(c2s), meanRatio(cas)
		winner := "A1"
		if r2 < r1 {
			winner = "A2"
		}
		norm := ra / (float64(sw.k) * float64(sw.beta) * math.Log2(float64(sw.beta)))
		if norm > worstNorm {
			worstNorm = norm
		}
		res.Table.AddRowf(sw.alpha, sw.beta, sw.k, n, r1, r2, ra, winner, norm)
	}
	res.Checks = append(res.Checks,
		checkf("auto ≤ min(A1, A2) on every instance", autoOK, "the selector keeps the shorter schedule"),
		checkf("auto ratio ≤ 4·k·β·log β everywhere", worstNorm <= 4.0, "worst normalized ratio %.2f (Theorem 5 first branch)", worstNorm))
	return res, nil
}
