package experiments

import (
	"fmt"
	"math"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E6", Title: "Cluster: min(Approach 1, Approach 2) realizes Theorem 4", Ref: "Theorem 4, Lemmas 6 & 9", Run: runE6})
}

// runE6 sweeps cluster counts, cluster sizes, and k. For every cell it
// runs both approaches and the auto selector, reporting which approach
// wins where: Theorem 4's O(min(kβ, 40^k·ln^k m)) says Approach 2 should
// take over as β grows at small k, while Approach 1 is competitive for
// small clusters. Checks: auto ≤ min of both (by construction), ratios
// bounded by the theorem's kβ term, and the cluster-local easy case stays
// O(k).
func runE6(cfg Config) (*Result, error) {
	type sweep struct{ alpha, beta, k int }
	sweeps := []sweep{
		{4, 4, 1}, {4, 4, 2}, {8, 8, 1}, {8, 8, 2}, {8, 8, 3},
		{4, 16, 1}, {4, 16, 2}, {8, 16, 2}, {16, 8, 2}, {4, 32, 1}, {4, 32, 2},
	}
	if cfg.Quick {
		sweeps = []sweep{{4, 4, 2}, {4, 16, 2}}
	}
	res := &Result{ID: "E6", Title: "Cluster: min(Approach 1, Approach 2) realizes Theorem 4", Ref: "Theorem 4, Lemmas 6 & 9",
		Table: stats.NewTable("alpha", "beta", "gamma", "k", "sigma", "r(A1)", "r(A2)", "r(auto)", "winner", "ratio/(k·beta)")}
	worstKB := 0.0
	autoOK := true
	sb := newSweep(cfg)
	for _, sw := range sweeps {
		gamma := int64(2 * sw.beta) // paper assumes γ ≥ β
		n := sw.alpha * sw.beta
		w := maxOf2(n/4, sw.k)
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := xrand.NewDerived(cfg.Seed, "E6", fmt.Sprint(sw.alpha), fmt.Sprint(sw.beta), fmt.Sprint(sw.k), fmt.Sprint(trial))
			topo := topology.NewCluster(sw.alpha, sw.beta, gamma)
			in := tm.UniformK(w, sw.k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			algRng := func(tag string) *core.Cluster {
				return &core.Cluster{Topo: topo, Rng: xrand.NewDerived(cfg.Seed, "E6rng", tag, fmt.Sprint(trial))}
			}
			a2 := algRng("a2")
			a2.Approach = core.ClusterApproach2
			prefix := fmt.Sprintf("E6/a=%d/b=%d/k=%d/t=%d", sw.alpha, sw.beta, sw.k, trial)
			sb.addInstance(prefix+"/A1", in, &core.Cluster{Topo: topo, Approach: core.ClusterApproach1})
			sb.addInstance(prefix+"/A2", in, a2)
			sb.addInstance(prefix+"/auto", in, algRng("auto"))
		}
		sb.endCell()
	}
	groups, err := sb.run()
	if err != nil {
		return nil, err
	}
	for i, sw := range sweeps {
		gamma := int64(2 * sw.beta)
		var c1s, c2s, cas []cell
		var sigma int64
		for trial := 0; trial < cfg.Trials; trial++ {
			c1, c2, ca := groups[i][3*trial], groups[i][3*trial+1], groups[i][3*trial+2]
			sigma = c1.Stats["sigma"]
			if ca.Makespan > c1.Makespan && ca.Makespan > c2.Makespan {
				autoOK = false
			}
			c1s, c2s, cas = append(c1s, c1), append(c2s, c2), append(cas, ca)
		}
		r1, r2, ra := meanRatio(c1s), meanRatio(c2s), meanRatio(cas)
		winner := "A1"
		if r2 < r1 {
			winner = "A2"
		}
		norm := ra / (float64(sw.k) * float64(sw.beta))
		if norm > worstKB {
			worstKB = norm
		}
		res.Table.AddRowf(sw.alpha, sw.beta, gamma, sw.k, sigma, r1, r2, ra, winner, norm)
	}

	// Easy case (Theorem 4, first branch): every object lives in one
	// cluster → the greedy schedule is O(k)-approximate.
	localWorst := 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := xrand.NewDerived(cfg.Seed, "E6local", fmt.Sprint(trial))
		topo := topology.NewCluster(8, 8, 16)
		wl := tm.PartitionedK(8*8, 2, 8, func(v graph.NodeID) int { return topo.ClusterOf(v) })
		in := wl.Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		c, err := runCell(cfg, in, &core.Cluster{Topo: topo, Approach: core.ClusterApproach1})
		if err != nil {
			return nil, err
		}
		if r := c.Ratio() / 2; r > localWorst { // k = 2
			localWorst = r
		}
	}

	res.Checks = append(res.Checks,
		checkf("auto ≤ min(A1, A2) on every instance", autoOK, "the selector keeps the shorter schedule"),
		checkf("auto ratio ≤ k·β everywhere", worstKB <= 1.0+1e-9 || worstKB <= 4.0, "worst ratio/(kβ) = %.2f (Theorem 4's first term, constant slack ≤ 4)", worstKB),
		checkf("cluster-local workload is O(k)", localWorst <= 4.0, "worst ratio/k = %.2f for single-cluster objects", localWorst))
	res.Notes = append(res.Notes,
		fmt.Sprintf("Approach-2 ln^k m term at k=2, m=64 is ≈ %.0f; its advantage appears once kβ exceeds it (large β, small k)", math.Pow(40*math.Log(64), 2)))
	return res, nil
}
