package experiments

import (
	"fmt"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E10", Title: "Ablation: paper schedulers vs naive baselines on every topology", Ref: "all upper-bound sections", Run: runE10})
	register(Experiment{ID: "E11", Title: "Ablation: grid tile-size sensitivity around the paper's √ξ", Ref: "Section 5", Run: runE11})
}

// runE10 runs, on every topology family, the paper's scheduler against the
// global-lock, FIFO list, and random-order baselines. The paper's
// schedules carry worst-case guarantees, while list scheduling is a strong
// average-case heuristic with no bound — so the honest checks are: the
// paper scheduler beats full serialization on the diameter-dominated
// topologies (clique, hypercube, butterfly, line), and stays within a
// small constant of the best heuristic everywhere. Note that ID-order
// serialization on cluster/star graphs accidentally enjoys perfect
// locality (it sweeps cluster by cluster), which is why it looks strong
// there; the random-priority serialization column is the realistic
// contention-manager comparison.
func runE10(cfg Config) (*Result, error) {
	k, trials := 2, cfg.Trials
	res := &Result{ID: "E10", Title: "Ablation: paper schedulers vs naive baselines on every topology", Ref: "all upper-bound sections",
		Table: stats.NewTable("topology", "n", "paperAlg", "r(paper)", "r(seq)", "r(list)", "r(rand)", "p50(paper)", "p99(paper)", "winner")}
	beatSeqFlat := true // on diameter-dominated topologies
	withinBest := true  // ≤ 4× the best baseline everywhere

	type setup struct {
		name  string
		build func(trial int) (*tm.Instance, core.Scheduler)
	}
	size := 0
	setups := []setup{
		{"clique", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewClique(128)
			size = 128
			in := tm.UniformK(32, k).Generate(xrand.NewDerived(cfg.Seed, "E10", "clique", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Greedy{}
		}},
		{"hypercube", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewHypercube(7)
			size = 128
			in := tm.UniformK(32, k).Generate(xrand.NewDerived(cfg.Seed, "E10", "hcube", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Greedy{}
		}},
		{"butterfly", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewButterfly(4)
			size = topo.Graph().NumNodes()
			in := tm.UniformK(20, k).Generate(xrand.NewDerived(cfg.Seed, "E10", "bfly", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Greedy{}
		}},
		{"line", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewLine(256)
			size = 256
			in := tm.NeighborhoodK(128, k, 256, 16).Generate(xrand.NewDerived(cfg.Seed, "E10", "line", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Line{Topo: topo}
		}},
		{"grid", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewSquareGrid(16)
			size = 256
			in := tm.UniformK(64, k).Generate(xrand.NewDerived(cfg.Seed, "E10", "grid", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Grid{Topo: topo}
		}},
		{"cluster", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewCluster(8, 16, 32)
			size = 128
			in := tm.UniformK(32, k).Generate(xrand.NewDerived(cfg.Seed, "E10", "cluster", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Cluster{Topo: topo, Rng: xrand.NewDerived(cfg.Seed, "E10rng", "cluster", fmt.Sprint(trial))}
		}},
		{"star", func(trial int) (*tm.Instance, core.Scheduler) {
			topo := topology.NewStar(8, 16)
			size = topo.Graph().NumNodes()
			in := tm.UniformK(32, k).Generate(xrand.NewDerived(cfg.Seed, "E10", "star", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Star{Topo: topo, Rng: xrand.NewDerived(cfg.Seed, "E10rng", "star", fmt.Sprint(trial))}
		}},
	}
	if cfg.Quick {
		setups = setups[:3]
	}
	// Fan every (setup, trial, algorithm) cell out through the engine:
	// the four algorithms of a trial share one instance, which is safe —
	// instances are read-only during scheduling.
	sb := newSweep(cfg)
	algNames := make([]string, len(setups))
	sizes := make([]int, len(setups))
	for si, su := range setups {
		for trial := 0; trial < trials; trial++ {
			in, sched := su.build(trial)
			algNames[si] = sched.Name()
			sizes[si] = size
			prefix := fmt.Sprintf("E10/%s/t=%d", su.name, trial)
			sb.addInstance(prefix+"/paper", in, sched)
			sb.addInstance(prefix+"/seq", in, baseline.Sequential{})
			sb.addInstance(prefix+"/list", in, baseline.List{})
			sb.addInstance(prefix+"/rand", in, baseline.Random{Rng: xrand.NewDerived(cfg.Seed, "E10base", su.name, fmt.Sprint(trial))})
		}
		sb.endCell()
	}
	groups, err := sb.run()
	if err != nil {
		return nil, err
	}
	for si, su := range setups {
		var paper, seq, list, rnd []cell
		for trial := 0; trial < trials; trial++ {
			cp, cs, cl, cr := groups[si][4*trial], groups[si][4*trial+1], groups[si][4*trial+2], groups[si][4*trial+3]
			switch su.name {
			case "clique", "hypercube", "butterfly", "line":
				if cp.Makespan > cs.Makespan {
					beatSeqFlat = false
				}
			}
			best := cs.Makespan
			if cl.Makespan < best {
				best = cl.Makespan
			}
			if cr.Makespan < best {
				best = cr.Makespan
			}
			if cp.Makespan > 4*best {
				withinBest = false
			}
			paper, seq, list, rnd = append(paper, cp), append(seq, cs), append(list, cl), append(rnd, cr)
		}
		rp, rs, rl, rr := meanRatio(paper), meanRatio(seq), meanRatio(list), meanRatio(rnd)
		winner := "paper"
		bestR := rp
		for _, c := range []struct {
			name string
			r    float64
		}{{"seq", rs}, {"list", rl}, {"rand", rr}} {
			if c.r < bestR {
				winner, bestR = c.name, c.r
			}
		}
		res.Table.AddRowf(su.name, sizes[si], algNames[si], rp, rs, rl, rr, meanP50(paper), meanP99(paper), winner)
	}
	res.Checks = append(res.Checks,
		checkf("paper scheduler beats the global lock on clique/hypercube/butterfly/line", beatSeqFlat,
			"on diameter-dominated topologies the structured schedules never lose to full serialization"),
		checkf("paper scheduler within 4× of the best baseline everywhere", withinBest,
			"worst-case-bounded schedules stay competitive with unbounded average-case heuristics"))
	res.Notes = append(res.Notes,
		"ID-order sequential execution sweeps cluster/star graphs with perfect locality, an artifact of node numbering; the random-priority column models a realistic contention manager.")
	return res, nil
}

// runE11 probes Theorem 3's tile-size choice: forcing tiles much smaller
// or larger than √ξ should not beat the paper's choice by more than a
// small factor, showing √ξ sits near the sweet spot.
func runE11(cfg Config) (*Result, error) {
	side := 32
	k := 2
	if cfg.Quick {
		side = 16
	}
	w := 4 * side
	res := &Result{ID: "E11", Title: "Ablation: grid tile-size sensitivity around the paper's √ξ", Ref: "Section 5",
		Table: stats.NewTable("tile", "relToPaper", "makespan", "lb", "ratio")}
	topoProbe := topology.NewSquareGrid(side)
	paperSide := (&core.Grid{Topo: topoProbe}).Side(
		tm.UniformK(w, k).Generate(xrand.NewDerived(cfg.Seed, "E11probe"), topoProbe.Graph(), metric(topoProbe), topoProbe.Graph().Nodes(), tm.PlaceAtRandomUser))
	tiles := []int{maxOf2(paperSide/4, 1), maxOf2(paperSide/2, 1), paperSide, minOf2(paperSide*2, side), side}
	var paperRatio, bestRatio float64
	seen := map[int]bool{}
	for _, tile := range tiles {
		if seen[tile] {
			continue
		}
		seen[tile] = true
		var cells []cell
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := xrand.NewDerived(cfg.Seed, "E11", fmt.Sprint(tile), fmt.Sprint(trial))
			topo := topology.NewSquareGrid(side)
			in := tm.UniformK(w, k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			c, err := runCell(cfg, in, &core.Grid{Topo: topo, SideOverride: tile})
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
		ratio := meanRatio(cells)
		rel := fmt.Sprintf("%.2fx", float64(tile)/float64(paperSide))
		if tile == paperSide {
			paperRatio = ratio
			rel = "paper"
		}
		if bestRatio == 0 || ratio < bestRatio {
			bestRatio = ratio
		}
		res.Table.AddRowf(tile, rel, meanMakespan(cells), meanBound(cells), ratio)
	}
	res.Checks = append(res.Checks,
		checkf("paper tile within 2x of the best probed tile", paperRatio <= 2*bestRatio,
			"paper √ξ tile ratio %.2f vs best probed %.2f", paperRatio, bestRatio))
	res.Notes = append(res.Notes, fmt.Sprintf("paper tile side √ξ = %d on a %d×%d grid (w=%d, k=%d)", paperSide, side, side, w, k))
	return res, nil
}
