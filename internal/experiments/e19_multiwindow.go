package experiments

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/windows"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E19", Title: "Extension: repeated windows, barrier vs pipelined", Ref: "related work [33] (window-based contention management)", Run: runE19})
}

// runE19 runs multi-window sequences (fresh batch of transactions per
// node each window) under a global barrier vs pipelined window entry.
// Checks: pipelining never loses, and its advantage grows with the number
// of windows (stragglers overlap instead of stalling everyone).
func runE19(cfg Config) (*Result, error) {
	counts := []int{1, 2, 4, 8}
	if cfg.Quick {
		counts = []int{1, 4}
	}
	type setup struct {
		name string
		mk   func() (*graph.Graph, graph.Metric)
		w, k int
	}
	setups := []setup{
		{"clique-64", func() (*graph.Graph, graph.Metric) {
			t := topology.NewClique(64)
			return t.Graph(), graph.FuncMetric(t.Dist)
		}, 16, 2},
		{"grid-12", func() (*graph.Graph, graph.Metric) {
			t := topology.NewSquareGrid(12)
			return t.Graph(), graph.FuncMetric(t.Dist)
		}, 36, 2},
	}
	if cfg.Quick {
		setups = setups[:1]
	}
	res := &Result{ID: "E19", Title: "Extension: repeated windows, barrier vs pipelined", Ref: "related work [33] (window-based contention management)",
		Table: stats.NewTable("instance", "windows", "barrier", "pipelined", "speedup")}
	neverWorse := true
	var firstSpeedup, lastSpeedup float64
	for _, su := range setups {
		for _, count := range counts {
			var barSum, pipSum float64
			for trial := 0; trial < cfg.Trials; trial++ {
				g, m := su.mk()
				seq, err := windows.Generate(
					xrand.NewDerived(cfg.Seed, "E19", su.name, fmt.Sprint(count), fmt.Sprint(trial)),
					g, m, tm.UniformK(su.w, su.k), count, tm.PlaceAtRandomUser)
				if err != nil {
					return nil, err
				}
				bar, err := windows.Run(seq, false)
				if err != nil {
					return nil, err
				}
				pip, err := windows.Run(seq, true)
				if err != nil {
					return nil, err
				}
				if pip.Makespan > bar.Makespan {
					neverWorse = false
				}
				barSum += float64(bar.Makespan)
				pipSum += float64(pip.Makespan)
			}
			tr := float64(cfg.Trials)
			speedup := barSum / pipSum
			if su.name == setups[0].name {
				if count == counts[0] {
					firstSpeedup = speedup
				}
				lastSpeedup = speedup
			}
			res.Table.AddRowf(su.name, count, barSum/tr, pipSum/tr, speedup)
		}
	}
	res.Checks = append(res.Checks,
		checkf("pipelining never loses to the barrier", neverWorse, "overlapping windows can only remove idle steps"),
		checkf("pipelining's advantage does not shrink with more windows", lastSpeedup >= firstSpeedup-0.05,
			"speedup went %.2f → %.2f from %d to %d windows", firstSpeedup, lastSpeedup, counts[0], counts[len(counts)-1]))
	res.Notes = append(res.Notes,
		"objects' homes evolve across windows; feasibility (object handoffs and per-node sequencing) is re-verified across window boundaries")
	return res, nil
}
