package experiments

import (
	"fmt"

	"dtmsched/internal/core"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E4", Title: "Line: two-phase schedule finishes within 4ℓ−2 steps", Ref: "Theorem 2", Run: runE4})
}

// runE4 verifies Theorem 2 on the line: the schedule's makespan never
// exceeds 4ℓ−2 for ℓ the longest shortest object walk, making it an
// asymptotically optimal (factor ≤ 4) schedule. Both local-walk
// (neighborhood) and global (uniform) workloads are exercised; the ratio
// against the walk lower bound must stay below 4 plus slack for the
// discrete constants.
func runE4(cfg Config) (*Result, error) {
	ns := []int{64, 256, 1024, 4096}
	if cfg.Quick {
		ns = []int{64, 256}
	}
	type wl struct {
		name string
		make func(n int) tm.Workload
	}
	workloads := []wl{
		{"neighborhood", func(n int) tm.Workload { return tm.NeighborhoodK(n/2, 2, n, maxOf2(n/16, 4)) }},
		{"uniform", func(n int) tm.Workload { return tm.UniformK(n/4, 2) }},
	}
	res := &Result{ID: "E4", Title: "Line: two-phase schedule finishes within 4ℓ−2 steps", Ref: "Theorem 2",
		Table: stats.NewTable("n", "workload", "ell", "makespan", "4ell-2", "lb(walk)", "ratio")}
	within := true
	worstRatio := 0.0
	type key struct {
		n    int
		name string
	}
	var keys []key
	sw := newSweep(cfg)
	for _, n := range ns {
		for _, w := range workloads {
			// The line scheduler needs its topology; build it per trial
			// inside the job so scheduling state is never shared.
			for trial := 0; trial < cfg.Trials; trial++ {
				topo := topology.NewLine(n)
				sw.add(fmt.Sprintf("E4/n=%d/%s/t=%d", n, w.name, trial), func() (*tm.Instance, error) {
					rng := xrand.NewDerived(cfg.Seed, "E4", fmt.Sprint(n), w.name, fmt.Sprint(trial))
					return w.make(n).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser), nil
				}, &core.Line{Topo: topo})
			}
			sw.endCell()
			keys = append(keys, key{n, w.name})
		}
	}
	groups, err := sw.run()
	if err != nil {
		return nil, err
	}
	for i, ky := range keys {
		cells := groups[i]
		var ellMean, capMean float64
		for _, c := range cells {
			ell := c.Stats["ell"]
			ellMean += float64(ell)
			capMean += float64(4*ell - 2)
			if c.Makespan > 4*ell-2 {
				within = false
			}
		}
		ellMean /= float64(cfg.Trials)
		capMean /= float64(cfg.Trials)
		ratio := meanRatio(cells)
		if ratio > worstRatio {
			worstRatio = ratio
		}
		res.Table.AddRowf(ky.n, ky.name, ellMean, meanMakespan(cells), capMean, meanBound(cells), ratio)
	}
	res.Checks = append(res.Checks,
		checkf("makespan ≤ 4ℓ−2 on every instance", within, "Theorem 2's explicit step count holds"),
		checkf("ratio vs lower bound ≤ 5", worstRatio <= 5.0, "worst ratio %.2f (theorem proves ≤ 4 vs the exact walk; our certified LB can undershoot the walk slightly on large sets)", worstRatio))
	return res, nil
}
