package experiments

import (
	"fmt"

	"dtmsched/internal/core"
	"dtmsched/internal/exact"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E15", Title: "Ground truth: greedy vs exact optimum on small instances", Ref: "Theorem 1 + Section 9 open question 3", Run: runE15})
	register(Experiment{ID: "E16", Title: "Ablation: greedy coloring order (node vs Welsh-Powell vs random)", Ref: "Section 2.3", Run: runE16})
}

// runE15 measures *true* approximation ratios by branch-and-bound on
// instances small enough to solve exactly — the ground truth the paper's
// certified-lower-bound ratios can only approximate. It also probes the
// paper's third open question (is Ω(k) tight on the clique?) empirically:
// the worst observed greedy/OPT ratio per k is reported.
func runE15(cfg Config) (*Result, error) {
	trials := 20
	if cfg.Quick {
		trials = 6
	}
	res := &Result{ID: "E15", Title: "Ground truth: greedy vs exact optimum on small instances", Ref: "Theorem 1 + Section 9 open question 3",
		Table: stats.NewTable("topo", "m", "w", "k", "meanOPT", "mean greedy/OPT", "worst greedy/OPT", "lb/OPT")}
	lbSound := true
	worstOverall := 0.0
	type cfgRow struct {
		name    string
		m, w, k int
	}
	sizes := []cfgRow{
		{"clique", 8, 4, 1},
		{"clique", 8, 4, 2},
		{"line", 8, 4, 2},
		{"grid3x3", 9, 4, 2},
	}
	for _, row := range sizes {
		var sumOpt, sumRatio, worst, lbShare float64
		count := 0
		for trial := 0; trial < trials; trial++ {
			rng := xrand.NewDerived(cfg.Seed, "E15", row.name, fmt.Sprint(row.k), fmt.Sprint(trial))
			var in *tm.Instance
			switch row.name {
			case "clique":
				topo := topology.NewClique(row.m)
				in = tm.UniformK(row.w, row.k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			case "line":
				topo := topology.NewLine(row.m)
				in = tm.UniformK(row.w, row.k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			default:
				topo := topology.NewSquareGrid(3)
				in = tm.UniformK(row.w, row.k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			}
			opt, err := exact.Optimal(in, exact.Options{})
			if err != nil {
				return nil, err
			}
			gr, err := (&core.Greedy{}).Schedule(in)
			if err != nil {
				return nil, err
			}
			lb := cfg.bound(in)
			if lb.Value > opt.Makespan {
				lbSound = false
			}
			ratio := float64(gr.Makespan) / float64(opt.Makespan)
			sumOpt += float64(opt.Makespan)
			sumRatio += ratio
			lbShare += float64(lb.Value) / float64(opt.Makespan)
			if ratio > worst {
				worst = ratio
			}
			count++
		}
		if worst > worstOverall {
			worstOverall = worst
		}
		res.Table.AddRowf(row.name, row.m, row.w, row.k,
			sumOpt/float64(count), sumRatio/float64(count), worst, lbShare/float64(count))
	}
	res.Checks = append(res.Checks,
		checkf("certified lower bound ≤ true optimum on every instance", lbSound, "the bound machinery is sound against ground truth"),
		checkf("greedy within 4k of the true optimum", worstOverall <= 8.0, "worst observed greedy/OPT = %.2f (k ≤ 2)", worstOverall))
	res.Notes = append(res.Notes,
		"open question 3 asks whether Ω(k) is tight for the clique; the worst-ratio column gives the empirical distribution exact search can reach at these sizes")
	return res, nil
}

// runE16 compares the three coloring orders across topologies. The Γ+1
// bound holds for all; the table shows the constant each order pays.
func runE16(cfg Config) (*Result, error) {
	res := &Result{ID: "E16", Title: "Ablation: greedy coloring order (node vs Welsh-Powell vs random)", Ref: "Section 2.3",
		Table: stats.NewTable("topo", "r(node)", "r(degree)", "r(random)", "winner")}
	type setup struct {
		name string
		mk   func(seed int64) *tm.Instance
	}
	setups := []setup{
		{"clique-128", func(seed int64) *tm.Instance {
			topo := topology.NewClique(128)
			return tm.ZipfK(32, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		}},
		{"hypercube-7", func(seed int64) *tm.Instance {
			topo := topology.NewHypercube(7)
			return tm.ZipfK(32, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		}},
		{"multigrid-4x4x4", func(seed int64) *tm.Instance {
			topo := topology.NewMultiGrid(4, 4, 4)
			return tm.ZipfK(16, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		}},
	}
	if cfg.Quick {
		setups = setups[:2]
	}
	ok := true
	for _, su := range setups {
		var rn, rd, rr float64
		for trial := 0; trial < cfg.Trials; trial++ {
			in := su.mk(cfg.Seed + int64(trial))
			run := func(g *core.Greedy) (float64, error) {
				r, err := runCell(cfg, in, g)
				if err != nil {
					return 0, err
				}
				return r.Ratio(), nil
			}
			a, err := run(&core.Greedy{Order: core.OrderNode})
			if err != nil {
				return nil, err
			}
			b, err := run(&core.Greedy{Order: core.OrderDegree})
			if err != nil {
				return nil, err
			}
			c, err := run(&core.Greedy{Order: core.OrderRandom, Rng: xrand.NewDerived(cfg.Seed, "E16", su.name, fmt.Sprint(trial))})
			if err != nil {
				return nil, err
			}
			rn, rd, rr = rn+a, rd+b, rr+c
		}
		tr := float64(cfg.Trials)
		rn, rd, rr = rn/tr, rd/tr, rr/tr
		winner := "node"
		best := rn
		if rd < best {
			winner, best = "degree", rd
		}
		if rr < best {
			winner = "random"
		}
		// All orders share the Γ+1 guarantee; flag only pathological
		// spreads (>3x between best and worst).
		worst := rn
		if rd > worst {
			worst = rd
		}
		if rr > worst {
			worst = rr
		}
		if best > 0 && worst/best > 3 {
			ok = false
		}
		res.Table.AddRowf(su.name, rn, rd, rr, winner)
	}
	res.Checks = append(res.Checks,
		checkf("coloring orders stay within 3x of each other", ok, "the order affects constants only, as Section 2.3 predicts"))
	return res, nil
}
