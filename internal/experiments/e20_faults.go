package experiments

import (
	"fmt"

	"dtmsched/internal/core"
	"dtmsched/internal/engine"
	"dtmsched/internal/faults"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E20", Title: "Robustness: makespan inflation under injected faults", Ref: "beyond the paper's model", Run: runE20})
}

// runE20 replays verified schedules under seeded fault injection — link
// outages and slowdowns, node crash/restart windows, transient move drops
// — at a ladder of fault rates, and reports the recovery work and the
// makespan inflation factor per (topology, rate). The rates parameterize
// faults.Config: LinkDownRate = LinkSlowRate = rate, CrashRate = rate/2,
// DropRate = rate/4. Checks: rate 0 reproduces the fault-free run exactly
// (inflation 1, zero recovery counters), faults only ever delay
// (inflation ≥ 1 everywhere), and the highest rate costs at least as much
// as rate 0. This experiment leaves the paper's model: Section 2.1 has no
// failures, so the inflation factors quantify schedule robustness rather
// than reproduce a theorem.
func runE20(cfg Config) (*Result, error) {
	rates := []float64{0, 0.02, 0.05, 0.10}
	if cfg.Quick {
		rates = []float64{0, 0.05}
	}
	if len(cfg.FaultRates) > 0 {
		rates = cfg.FaultRates
	}
	type setup struct {
		name string
		mk   func(seed int64) (*tm.Instance, core.Scheduler)
	}
	setups := []setup{
		{"grid-12", func(seed int64) (*tm.Instance, core.Scheduler) {
			topo := topology.NewSquareGrid(12)
			in := tm.UniformK(36, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Grid{Topo: topo}
		}},
		{"clique-64", func(seed int64) (*tm.Instance, core.Scheduler) {
			topo := topology.NewClique(64)
			in := tm.UniformK(16, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Greedy{}
		}},
	}
	if cfg.Quick {
		setups = setups[:1]
	}

	res := &Result{ID: "E20", Title: "Robustness: makespan inflation under injected faults", Ref: "beyond the paper's model",
		Table: stats.NewTable("instance", "rate", "faults", "retries", "reroutes", "blocked", "deferred", "inflation")}

	// Phase 1: schedule every (setup, trial) once, fault-free — the
	// planned schedule and its makespan are the injection baseline.
	type base struct {
		in       *tm.Instance
		schedRes *core.Result
	}
	bases := make(map[string][]base, len(setups))
	for _, su := range setups {
		for trial := 0; trial < cfg.Trials; trial++ {
			in, sched := su.mk(cfg.Seed + int64(trial))
			cfg.prepare(in)
			r, err := sched.Schedule(in)
			if err != nil {
				return nil, fmt.Errorf("E20 %s trial %d: %w", su.name, trial, err)
			}
			bases[su.name] = append(bases[su.name], base{in: in, schedRes: r})
		}
	}

	// Phase 2: one engine job per (setup, rate, trial), fanned out over
	// the worker pool. Rate 0 gets no injector, so it exercises the plain
	// fault-free replay path.
	var jobs []engine.Job
	for _, su := range setups {
		for ri, rate := range rates {
			for trial := 0; trial < cfg.Trials; trial++ {
				b := bases[su.name][trial]
				var inj faults.Injector
				if rate > 0 {
					plan, err := faults.New(faults.Config{
						Seed:         xrand.Derive(cfg.Seed, "E20", su.name, fmt.Sprint(rate), fmt.Sprint(trial)),
						Horizon:      b.schedRes.Makespan,
						LinkDownRate: rate,
						LinkSlowRate: rate,
						CrashRate:    rate / 2,
						DropRate:     rate / 4,
					}, b.in.G)
					if err != nil {
						return nil, fmt.Errorf("E20 %s rate %g: %w", su.name, rate, err)
					}
					inj = plan
				}
				jobs = append(jobs, engine.Job{
					Name:           fmt.Sprintf("E20/%s/r%d/t%d", su.name, ri, trial),
					Instance:       b.in,
					Schedule:       b.schedRes.Schedule,
					Algorithm:      b.schedRes.Algorithm,
					Faults:         inj,
					SkipLowerBound: true,
				})
			}
		}
	}
	results, err := engine.RunBatch(cfg.context(), jobs, engine.Options{Workers: cfg.Workers, Collector: cfg.Collector, Hook: cfg.Hook})
	if err != nil {
		return nil, err
	}
	reports, err := engine.Reports(results)
	if err != nil {
		return nil, err
	}

	zeroExact, allInflated := true, true
	inflationAt := map[string]map[float64]float64{}
	i := 0
	for _, su := range setups {
		inflationAt[su.name] = map[float64]float64{}
		for _, rate := range rates {
			var nf, retries, reroutes, blocked, deferred, inflation float64
			for trial := 0; trial < cfg.Trials; trial++ {
				rep := reports[i]
				i++
				fr := rep.Fault
				if rate == 0 {
					// The fault-free column: no injector, so no report —
					// and the replay must land exactly on the plan.
					if fr != nil || rep.Counters.SimSteps != rep.Makespan {
						zeroExact = false
					}
					inflation += 1.0
					continue
				}
				if fr == nil {
					return nil, fmt.Errorf("E20 %s rate %g: fault-injected run carries no report", su.name, rate)
				}
				if fr.Inflation < 1.0 {
					allInflated = false
				}
				nf += float64(fr.Faults)
				retries += float64(fr.Retries)
				reroutes += float64(fr.Reroutes)
				blocked += float64(fr.BlockedWaits)
				deferred += float64(fr.DeferredCommits)
				inflation += fr.Inflation
			}
			tr := float64(cfg.Trials)
			inflationAt[su.name][rate] = inflation / tr
			res.Table.AddRowf(su.name, fmt.Sprintf("%.2f", rate), nf/tr, retries/tr, reroutes/tr, blocked/tr, deferred/tr, fmt.Sprintf("%.4f", inflation/tr))
		}
	}

	monotoneEnds := true
	for _, su := range setups {
		if inflationAt[su.name][rates[len(rates)-1]] < inflationAt[su.name][rates[0]]-1e-9 {
			monotoneEnds = false
		}
	}
	res.Checks = append(res.Checks,
		checkf("zero fault rate reproduces the fault-free run exactly", zeroExact, "no fault report, recovered makespan equals the plan"),
		checkf("faults only delay: inflation ≥ 1 everywhere", allInflated, "the planned commit step is a floor under recovery"),
		checkf("highest fault rate costs at least as much as rate 0", monotoneEnds, "mean inflation is ≥ 1 at the top of the ladder"))
	res.Notes = append(res.Notes,
		"outside the paper's model: Section 2.1 assumes a failure-free network, so these inflation factors measure schedule robustness, not a theorem",
		"recovery policy: dropped moves re-dispatch with bounded exponential backoff, blocked moves reroute on the surviving subgraph, crashed nodes defer their commits to restart")
	return res, nil
}
