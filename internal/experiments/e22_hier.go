package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/hier"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E22", Title: "Extension: hierarchical fog–cloud scheduling, tiers × fan-out × locality", Ref: "Adhikari–Busch–Poudel (poly-log fog–cloud extension)", Run: runE22})
}

// e22Shape is one fog–cloud tier configuration of the sweep.
type e22Shape struct {
	name   string
	fanout []int
	weight []int64
	w, k   int
}

// e22Shapes returns the three tier configurations the acceptance criteria
// sweep: a shallow wide tree, a larger fan-out at both levels, and a
// four-tier tree with a steeper link-weight ladder. The object count is a
// multiple of the fog-subtree count so the localized workload can shard
// the object space evenly.
func e22Shapes() []e22Shape {
	return []e22Shape{
		{"f4x8-w8x1", []int{4, 8}, []int64{8, 1}, 64, 2},
		{"f8x8-w8x1", []int{8, 8}, []int64{8, 1}, 128, 2},
		{"f4x4x4-w16x4x1", []int{4, 4, 4}, []int64{16, 4, 1}, 64, 2},
	}
}

// e22Instance generates one localized instance on fc: every node carries
// one transaction, objects shard into one group per fog subtree, and each
// draw stays inside the node's own subtree group with probability
// locality (nodes above the fog tier always draw uniformly).
func e22Instance(cfg Config, fc *topology.FogCloud, sh e22Shape, locality float64, trial int) *tm.Instance {
	g := fc.Graph()
	nodes := make([]graph.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	wl := tm.LocalizedK(sh.w, sh.k, fc.TierSize(1), locality, e22Subtree(fc))
	r := xrand.NewDerived(cfg.Seed, "E22", sh.name, fmt.Sprint(locality), fmt.Sprint(trial))
	return wl.Generate(r, g, fc, nodes, tm.PlaceAtRandomUser)
}

// e22Subtree maps a node to its fog-subtree group: the tier-1 ancestor's
// index, or -1 for the cloud root (which then draws uniformly).
func e22Subtree(fc *topology.FogCloud) func(node graph.NodeID) int {
	return func(node graph.NodeID) int {
		if fc.TierOf(node) < 1 {
			return -1
		}
		return int(fc.Ancestor(node, 1)) - int(fc.TierStart(1))
	}
}

// runE22 sweeps the hierarchical scheduler (internal/hier) over tier
// configuration × workload locality, measuring makespan against the
// certified instance lower bound so the fog–cloud extension's poly-log
// claim is tested on measured ratios, not assumed. Greedy on the same
// instances is the flat-metric yardstick: it sees the same conflicts but
// schedules them over one global conflict graph. The experiment also pins
// the determinism contract (byte-identical schedules at shard-worker
// counts 1, 4, and 8) and probes the parallel-shard speedup on a dense
// instance of the largest configuration.
func runE22(cfg Config) (*Result, error) {
	localities := []float64{0.5, 0.9, 1.0}
	if cfg.Quick {
		localities = []float64{0.5, 1.0}
	}
	shapes := e22Shapes()

	res := &Result{ID: "E22", Title: "Extension: hierarchical fog–cloud scheduling, tiers × fan-out × locality", Ref: "Adhikari–Busch–Poudel (poly-log fog–cloud extension)",
		Table: stats.NewTable("config", "tiers", "shards", "locality", "makespan", "bound", "ratio", "greedy-ratio", "cross-pct")}

	sw := newSweep(cfg)
	type cellKey struct {
		shape    string
		locality float64
	}
	var keys []cellKey
	for _, sh := range shapes {
		fc := topology.NewFogCloud(sh.fanout, sh.weight)
		for _, locality := range localities {
			for trial := 0; trial < cfg.Trials; trial++ {
				in := e22Instance(cfg, fc, sh, locality, trial)
				name := fmt.Sprintf("E22/%s/p%.2f/t%d", sh.name, locality, trial)
				sw.addInstance(name+"/hier", in, &hier.Scheduler{Topo: fc, Workers: cfg.HierWorkers})
				sw.addInstance(name+"/greedy", in, &core.Greedy{})
			}
			sw.endCell()
			keys = append(keys, cellKey{sh.name, locality})
		}
	}
	groups, err := sw.run()
	if err != nil {
		return nil, err
	}

	// crossPct[shape][locality] is the mean percentage of transactions
	// classified cross-tier; ratio[shape][locality] the mean measured
	// makespan/bound ratio of the hierarchical scheduler.
	crossPct := map[string]map[float64]float64{}
	ratio := map[string]map[float64]float64{}
	greedyRatio := map[string]map[float64]float64{}
	maxRatio := 0.0
	for gi, key := range keys {
		var sh e22Shape
		for _, s := range shapes {
			if s.name == key.shape {
				sh = s
			}
		}
		fc := topology.NewFogCloud(sh.fanout, sh.weight)
		// Trial cells interleave hier and greedy jobs.
		var hcells, gcells []cell
		for j, c := range groups[gi] {
			if j%2 == 0 {
				hcells = append(hcells, c)
			} else {
				gcells = append(gcells, c)
			}
		}
		var crossSum float64
		for _, c := range hcells {
			total := c.Stats["hier_local_txns"] + c.Stats["hier_cross_txns"]
			if total > 0 {
				crossSum += 100 * float64(c.Stats["hier_cross_txns"]) / float64(total)
			}
		}
		if crossPct[key.shape] == nil {
			crossPct[key.shape] = map[float64]float64{}
			ratio[key.shape] = map[float64]float64{}
			greedyRatio[key.shape] = map[float64]float64{}
		}
		crossPct[key.shape][key.locality] = crossSum / float64(len(hcells))
		ratio[key.shape][key.locality] = meanRatio(hcells)
		greedyRatio[key.shape][key.locality] = meanRatio(gcells)
		if r := meanRatio(hcells); r > maxRatio {
			maxRatio = r
		}
		res.Table.AddRowf(key.shape, fc.Tiers(), fc.TierSize(1), key.locality,
			meanMakespan(hcells), meanBound(hcells), meanRatio(hcells), meanRatio(gcells),
			crossPct[key.shape][key.locality])
	}

	// Determinism: one instance per shape, scheduled at shard-worker
	// counts 1, 4, and 8 — the schedules must be byte-identical.
	deterministic := true
	for _, sh := range shapes {
		fc := topology.NewFogCloud(sh.fanout, sh.weight)
		in := cfg.prepare(e22Instance(cfg, fc, sh, localities[0], 0))
		var base []int64
		for _, workers := range []int{1, 4, 8} {
			r, err := (&hier.Scheduler{Topo: fc, Workers: workers}).Schedule(in)
			if err != nil {
				return nil, fmt.Errorf("E22 determinism probe %s workers=%d: %w", sh.name, workers, err)
			}
			if base == nil {
				base = r.Schedule.Times
			} else if !reflect.DeepEqual(base, r.Schedule.Times) {
				deterministic = false
			}
		}
	}

	// Parallel-shard speedup probe: the largest configuration's family
	// scaled until each of its 8 shards schedules hundreds of
	// transactions, scheduled with 1 worker vs the machine's parallelism;
	// speedup compares the shard-phase wall clocks (best of 3 — the merge
	// pass and the feasibility checks are intentionally serial and
	// identical on both sides).
	parallelWorkers := cfg.HierWorkers
	if parallelWorkers <= 0 {
		parallelWorkers = runtime.GOMAXPROCS(0)
	}
	speedup, probeTxns, probeShape := e22SpeedupProbe(cfg, parallelWorkers)
	multiCore := runtime.GOMAXPROCS(0) >= 4

	lo, hi := localities[0], localities[len(localities)-1]
	crossFalls := true
	for _, sh := range shapes {
		if crossPct[sh.name][hi] >= crossPct[sh.name][lo] {
			crossFalls = false
		}
	}
	speedupOK := speedup >= 2
	speedupDetail := fmt.Sprintf("shard-phase wall, 1 worker vs %d, on %s (%d txns, one per node): %.2f× (GOMAXPROCS=%d)",
		parallelWorkers, probeShape.name, probeTxns, speedup, runtime.GOMAXPROCS(0))
	if !multiCore {
		// A single-core host cannot realize parallel speedup; the probe
		// still runs and reports, but the ≥2× gate needs real cores.
		speedupOK = true
		speedupDetail += " — single-core host, ≥2× gate needs GOMAXPROCS ≥ 4 (see ci.sh hier guard)"
	}
	res.Checks = append(res.Checks,
		checkf("schedules byte-identical at shard-worker counts 1, 4, 8", deterministic,
			"hier.Scheduler at workers ∈ {1,4,8} on every tier configuration"),
		checkf("cross-tier fraction falls as locality rises", crossFalls,
			"cross-pct at locality %.1f vs %.1f: %s %.1f%%→%.1f%%, %s %.1f%%→%.1f%%, %s %.1f%%→%.1f%%",
			lo, hi,
			shapes[0].name, crossPct[shapes[0].name][lo], crossPct[shapes[0].name][hi],
			shapes[1].name, crossPct[shapes[1].name][lo], crossPct[shapes[1].name][hi],
			shapes[2].name, crossPct[shapes[2].name][lo], crossPct[shapes[2].name][hi]),
		checkf("measured ratios stay in the poly-log regime", maxRatio <= 16,
			"max mean makespan/bound ratio %.2f over every tier configuration × locality (cap 16 ≈ 2·log²(fan-out) on these shapes)", maxRatio),
		checkf("hierarchical scheduling beats the flat yardstick at full locality", e22BeatsGreedy(ratio, greedyRatio, shapes, hi),
			"at locality %.1f the hier ratio is at most greedy's on every shape (%s %.2f vs %.2f, %s %.2f vs %.2f, %s %.2f vs %.2f) — subtree shards overlap in time instead of serializing into one global coloring", hi,
			shapes[0].name, ratio[shapes[0].name][hi], greedyRatio[shapes[0].name][hi],
			shapes[1].name, ratio[shapes[1].name][hi], greedyRatio[shapes[1].name][hi],
			shapes[2].name, ratio[shapes[2].name][hi], greedyRatio[shapes[2].name][hi]),
		checkf("parallel shards speed up the shard phase", speedupOK, "%s", speedupDetail))
	res.Notes = append(res.Notes,
		"ratio divides measured makespan by the certified instance lower bound — the poly-log claim is tested, not assumed",
		"greedy-ratio is the same instance under the flat global-coloring scheduler; cross-pct is the share of transactions whose objects span fog subtrees",
		fmt.Sprintf("speedup probe: %s", speedupDetail))
	return res, nil
}

// e22BeatsGreedy reports whether the hierarchical ratio is at most the
// flat greedy ratio on every shape at the given locality.
func e22BeatsGreedy(ratio, greedyRatio map[string]map[float64]float64, shapes []e22Shape, locality float64) bool {
	for _, sh := range shapes {
		if ratio[sh.name][locality] > greedyRatio[sh.name][locality] {
			return false
		}
	}
	return true
}

// e22ProbeShape is the speedup probe's tree: the largest configuration of
// the sweep scaled until the shard phase is measurable — the same 8 fog
// subtrees as f8x8, each grown to a few hundred edge nodes so every shard
// schedules hundreds of transactions (one per node, as everywhere in the
// batch model). Fully local workload: the probe times the parallel shard
// phase, not the (serial, identical-on-both-sides) merge pass.
func e22ProbeShape(quick bool) e22Shape {
	if quick {
		return e22Shape{"f8x256-w8x1", []int{8, 256}, []int64{8, 1}, 2048, 3}
	}
	return e22Shape{"f8x512-w8x1", []int{8, 512}, []int64{8, 1}, 4096, 3}
}

// e22SpeedupProbe schedules one fully-local instance of the probe shape
// with 1 shard worker and with parallel workers, returning the best-of-3
// shard-phase speedup, the probe's transaction count, and the shape. The
// schedules themselves are byte-identical; only the wall clock differs.
func e22SpeedupProbe(cfg Config, parallel int) (float64, int, e22Shape) {
	sh := e22ProbeShape(cfg.Quick)
	fc := topology.NewFogCloud(sh.fanout, sh.weight)
	g := fc.Graph()
	nodes := make([]graph.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	wl := tm.LocalizedK(sh.w, sh.k, fc.TierSize(1), 1.0, e22Subtree(fc))
	in := wl.Generate(xrand.NewDerived(cfg.Seed, "E22", "speedup", sh.name), g, fc, nodes, tm.PlaceAtRandomUser)

	wall := func(workers int) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			r, err := (&hier.Scheduler{Topo: fc, Workers: workers}).Schedule(in)
			if err != nil {
				return 0
			}
			d := time.Duration(r.Stats["hier_shard_wall_ns"])
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serial := wall(1)
	if parallel <= 1 {
		// 1 worker vs 1 worker would just measure timer jitter.
		return 1, len(nodes), sh
	}
	par := wall(parallel)
	if par <= 0 || serial <= 0 {
		return 0, len(nodes), sh
	}
	return float64(serial) / float64(par), len(nodes), sh
}
