package experiments

import (
	"fmt"
	"math"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/engine"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E8", Title: "Grid lower bound: TSP tours stay O(s²) while schedules stall", Ref: "Theorem 6, Corollary 3, Lemma 10", Run: runE8})
	register(Experiment{ID: "E9", Title: "Tree lower bound: the Section 8.2 mirror of E8", Ref: "Section 8.2", Run: runE9})
}

func runE8(cfg Config) (*Result, error) {
	return runLB(cfg, "E8", "Grid lower bound: TSP tours stay O(s²) while schedules stall", "Theorem 6, Corollary 3, Lemma 10",
		func(s int) tm.Blocked { return topology.NewLBGrid(s) })
}

func runE9(cfg Config) (*Result, error) {
	return runLB(cfg, "E9", "Tree lower bound: the Section 8.2 mirror of E8", "Section 8.2",
		func(s int) tm.Blocked { return topology.NewLBTree(s) })
}

// runLB builds the adversarial instance I_s of Section 8 on a blocked
// topology and verifies its constructive ingredients:
//
//   - Lemma 10: the longest shortest object walk is ≤ 5s² (we certify the
//     2-approximate upper bracket is ≤ 10s²);
//   - Corollary 3: within any s-step window, λ ≥ s^(3/8) transactions
//     executing in one block use ≥ λ^(3/5) distinct B-objects — checked on
//     the best schedule any implemented algorithm finds;
//   - Theorem 6's gap: every implemented scheduler's makespan exceeds the
//     maximum object tour, with the gap not shrinking as s grows.
func runLB(cfg Config, id, title, ref string, build func(s int) tm.Blocked) (*Result, error) {
	ss := []int{16, 25}
	if cfg.Quick {
		ss = []int{16}
	}
	res := &Result{ID: id, Title: title, Ref: ref,
		Table: stats.NewTable("s", "n", "maxWalkUB", "10s^2", "bestAlg", "makespan", "maxTourUB", "gap", "winChecks")}
	walkOK := true
	windowOK := true
	var gaps []float64
	for _, s := range ss {
		rng := xrand.NewDerived(cfg.Seed, id, fmt.Sprint(s))
		topo := build(s)
		li := tm.NewLBInstance(rng, topo)
		if err := li.Validate(); err != nil {
			return nil, fmt.Errorf("%s: invalid instance: %w", id, err)
		}
		lb := cfg.bound(li.Instance)
		cap10 := int64(10 * s * s)
		if lb.MaxWalkUB > cap10 {
			walkOK = false
		}

		// Best schedule any implemented algorithm finds; the candidate
		// schedulers fan out concurrently over the shared instance. The
		// certified bound is computed once above, so the jobs skip it.
		algs := []struct {
			name  string
			sched core.Scheduler
		}{
			{"greedy", &core.Greedy{}},
			{"list", baseline.List{}},
			{"sequential", baseline.Sequential{}},
		}
		jobs := make([]engine.Job, len(algs))
		for i, a := range algs {
			jobs[i] = engine.Job{Name: fmt.Sprintf("%s/s=%d/%s", id, s, a.name),
				Instance: li.Instance, Scheduler: a.sched, SkipLowerBound: true}
		}
		results, err := engine.RunBatch(cfg.context(), jobs, engine.Options{Workers: cfg.Workers, Hook: cfg.Hook})
		if err != nil {
			return nil, err
		}
		reports, err := engine.Reports(results)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		var bestName string
		var bestCell cell
		var bestTimes []int64
		for i, rep := range reports {
			c := cellFromReport(rep)
			if bestTimes == nil || c.Makespan < bestCell.Makespan {
				bestName, bestCell, bestTimes = algs[i].name, c, rep.Schedule.Times
			}
		}

		// Corollary 3 window counting on the best schedule. The
		// corollary is asymptotic (its proof assumes s ≥ e^560), so at
		// simulable sizes we require the overwhelming majority of
		// windows to satisfy the distinct-object bound rather than
		// literally all of them.
		wins, total := windowCheck(li, bestTimes, int64(s))
		if total > 0 && float64(wins) < 0.9*float64(total) {
			windowOK = false
		}

		gap := float64(bestCell.Makespan) / float64(maxI64(lb.MaxTourUB, 1))
		gaps = append(gaps, gap)
		n := topo.Graph().NumNodes()
		res.Table.AddRowf(s, n, lb.MaxWalkUB, cap10, bestName, bestCell.Makespan, lb.MaxTourUB, gap,
			fmt.Sprintf("%d/%d", wins, total))
	}
	res.Checks = append(res.Checks,
		checkf("Lemma 10: max object walk ≤ 5s² (certified ≤ 10s² bracket)", walkOK, "object walks stay quadratic in s"),
		checkf("Corollary 3: λ-txn windows use ≥ λ^(3/5) distinct B-objects", windowOK, "distinct-object counting holds in ≥90%% of s-step windows (asymptotic statement; see winChecks column)"),
	)
	if len(gaps) >= 2 {
		res.Checks = append(res.Checks,
			checkf("Theorem 6: schedule/tour gap does not shrink with s", gaps[len(gaps)-1] >= 0.8*gaps[0],
				"gap went %.2f → %.2f as s grew (theory predicts slow growth ~ n^(1/40)/log n)", gaps[0], gaps[len(gaps)-1]))
	}
	res.Notes = append(res.Notes,
		"Theorem 6 lower-bounds *all* schedules existentially; the experiment verifies its constructive ingredients exactly and shows every implemented scheduler obeys the predicted gap.",
		fmt.Sprintf("s^(3/8) threshold for the window check at s=%d is %.1f", ss[len(ss)-1], math.Pow(float64(ss[len(ss)-1]), 3.0/8.0)))
	return res, nil
}

// windowCheck verifies Corollary 3 on a concrete schedule: for every block
// and every window [t, t+s) positioned at multiples of s/2, if λ ≥ s^(3/8)
// transactions of the block execute within the window then they use at
// least λ^(3/5) distinct B-objects. Returns (windows passing, windows
// applicable).
func windowCheck(li *tm.LBInstance, times []int64, s int64) (pass, total int) {
	topo := li.Topo
	sInt := topo.S()
	threshold := math.Pow(float64(sInt), 3.0/8.0)
	var makespan int64
	for _, t := range times {
		if t > makespan {
			makespan = t
		}
	}
	step := s / 2
	if step < 1 {
		step = 1
	}
	// Group transactions by block once.
	byBlock := make([][]tm.TxnID, sInt)
	for i := range times {
		b := topo.Block(li.Txns[i].Node)
		byBlock[b] = append(byBlock[b], tm.TxnID(i))
	}
	for b := 0; b < sInt; b++ {
		for start := int64(1); start <= makespan; start += step {
			end := start + s
			lambda := 0
			distinctB := make(map[tm.ObjectID]struct{})
			for _, id := range byBlock[b] {
				t := times[id]
				if t >= start && t < end {
					lambda++
					for _, o := range li.Txns[id].Objects {
						if !li.IsA(o) {
							distinctB[o] = struct{}{}
						}
					}
				}
			}
			if float64(lambda) < threshold {
				continue
			}
			total++
			if float64(len(distinctB)) >= math.Pow(float64(lambda), 3.0/5.0) {
				pass++
			}
		}
	}
	return pass, total
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
