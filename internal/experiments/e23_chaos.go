package experiments

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/stats"
	"dtmsched/internal/stream"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E23", Title: "Robustness: chaos soak of the streaming service", Ref: "beyond the paper's model (fault-tolerant serving)", Run: runE23})
}

// runE23 soaks the streaming scheduler under seeded chaos injection at a
// ladder of fault rates per topology: recurring link outages and
// slowdowns, node crash/restart windows, and move drops drawn fresh each
// chunk (stream.NewChaos), with the health layer requeueing transactions
// homed on down nodes, shedding them past the retry budget, and the
// admission breaker shifting Block→Reject when rolling window inflation
// crosses the trip threshold. Reported per cell: goodput (committed
// transactions per step) against the fault-free baseline, the shed
// fraction, requeue volume and backlog peak, degraded windows, mean
// inflation, and breaker transitions. Checks: zero chaos reproduces the
// fault-free service bit-for-bit (digest equality), goodput at 10% chaos
// on the clique stays within 70% of fault-free, the breaker both trips
// and recovers somewhere in the soak, and the admission accounting
// (admitted = committed + shed, inflation ≥ 1) holds everywhere. Like
// E20 this leaves the paper's model: Section 2.1 has no failures, so the
// soak measures serving robustness rather than a theorem.
func runE23(cfg Config) (*Result, error) {
	chaosRates := []float64{0, 0.05, 0.10, 0.20}
	txns := 240
	if cfg.Quick {
		chaosRates = []float64{0, 0.10, 0.20}
		txns = 140
	}
	type setup struct {
		name string
		mk   func() topology.Topology
		w, k int
		rate float64 // injection rate, transactions per step
	}
	setups := []setup{
		{"clique-16", func() topology.Topology { return topology.NewClique(16) }, 16, 2, 1.0},
		{"line-16", func() topology.Topology { return topology.NewLine(16) }, 4, 1, 0.5},
	}
	res := &Result{ID: "E23", Title: "Robustness: chaos soak of the streaming service", Ref: "beyond the paper's model (fault-tolerant serving)",
		Table: stats.NewTable("topology", "chaos", "goodput", "vs-clean", "shed-frac", "requeued", "rq-peak", "degraded", "inflation", "trips", "recov")}

	serveOnce := func(su setup, chaosRate float64, trial int) (*stream.Result, error) {
		topo := su.mk()
		g := topo.Graph()
		rng := xrand.NewDerived(cfg.Seed, "E23", su.name, fmt.Sprint(trial))
		home := make([]graph.NodeID, su.w)
		for o := range home {
			home[o] = g.Nodes()[rng.Intn(g.NumNodes())]
		}
		var wl tm.Workload
		if su.k == 1 {
			wl = tm.HotspotK(su.w, su.k)
		} else {
			wl = tm.UniformK(su.w, su.k)
		}
		sc := stream.Config{
			G: g, Metric: metric(topo), NumObjects: su.w, Home: home,
			Source:        stream.NewGenerator(rng, g, wl, su.rate, txns),
			Policy:        stream.Block,
			Verify:        verifyModeFor(cfg),
			PipelineDepth: 2,
			BreakerWindow: 2,
			InflationTrip: 1.25,
			Collector:     cfg.Collector,
			Hook:          cfg.Hook,
		}
		if chaosRate > 0 {
			inj, err := stream.NewChaos(stream.ChaosConfig{
				Rate:    chaosRate,
				Seed:    xrand.Derive(cfg.Seed, "E23", "chaos", su.name, fmt.Sprint(chaosRate), fmt.Sprint(trial)),
				Horizon: int64(2 * float64(txns) / su.rate),
			}, g)
			if err != nil {
				return nil, fmt.Errorf("E23 %s chaos %g: %w", su.name, chaosRate, err)
			}
			sc.Faults = inj
		}
		return stream.Serve(cfg.context(), sc)
	}

	zeroExact, allAccounted, allInflated := true, true, true
	var totalTrips, totalRecov int
	goodput := map[string]map[float64]float64{}
	for _, su := range setups {
		goodput[su.name] = map[float64]float64{}
		for _, chaosRate := range chaosRates {
			var gp, shedFrac, requeued, inflation float64
			var rqPeak, degraded, trips, recov int64
			for trial := 0; trial < cfg.Trials; trial++ {
				r, err := serveOnce(su, chaosRate, trial)
				if err != nil {
					return nil, err
				}
				if chaosRate == 0 {
					// The chaos-off column must be the plain fault-free
					// service: replay without any injector and compare
					// digests bit-for-bit.
					clean, err := serveOnce(su, -1, trial) // -1 skips NewChaos entirely
					if err != nil {
						return nil, err
					}
					if r.Digest != clean.Digest || r.Requeued != 0 || r.Shed != 0 || r.MeanInflation != 0 {
						zeroExact = false
					}
				}
				if r.Admitted != r.Committed+r.Shed {
					allAccounted = false
				}
				if r.MeanInflation != 0 && r.MeanInflation < 1 {
					allInflated = false
				}
				gp += r.Throughput
				if r.Admitted > 0 {
					shedFrac += float64(r.Shed) / float64(r.Admitted)
				}
				requeued += float64(r.Requeued)
				inflation += r.MeanInflation
				if int64(r.RequeuePeak) > rqPeak {
					rqPeak = int64(r.RequeuePeak)
				}
				degraded += int64(r.DegradedWindows)
				trips += int64(r.BreakerTrips)
				recov += int64(r.BreakerRecoveries)
			}
			tr := float64(cfg.Trials)
			goodput[su.name][chaosRate] = gp / tr
			totalTrips += int(trips)
			totalRecov += int(recov)
			vsClean := 1.0
			if clean := goodput[su.name][0]; clean > 0 {
				vsClean = (gp / tr) / clean
			}
			res.Table.AddRowf(su.name, fmt.Sprintf("%.2f", chaosRate),
				fmt.Sprintf("%.4f", gp/tr), fmt.Sprintf("%.3f", vsClean),
				fmt.Sprintf("%.4f", shedFrac/tr), requeued/tr, rqPeak, degraded,
				fmt.Sprintf("%.4f", inflation/tr), trips, recov)
		}
	}

	cliqueRatio := goodput["clique-16"][0.10] / goodput["clique-16"][0]
	res.Checks = append(res.Checks,
		checkf("zero chaos reproduces the fault-free service bit-for-bit", zeroExact,
			"digest equality with the injector-free run, no requeue/shed/inflation accounting"),
		checkf("goodput at 10% chaos on the clique stays within 70% of fault-free", cliqueRatio >= 0.70,
			"goodput ratio %.3f (want ≥ 0.70)", cliqueRatio),
		checkf("the admission breaker trips and recovers during the soak", totalTrips >= 1 && totalRecov >= 1,
			"%d trips, %d recoveries across all cells", totalTrips, totalRecov),
		checkf("admission accounting holds under chaos", allAccounted && allInflated,
			"admitted = committed + shed everywhere, mean window inflation ≥ 1 whenever faults engaged"))
	res.Notes = append(res.Notes,
		"chaos plans redraw every fault site per chunk (faults.Config.Recur), so pressure persists across the soak instead of clustering near step 0",
		"the breaker converts Block admission to Reject while open: overload under faults surfaces as rejections and shed transactions, never as a stuck queue",
		"same seed ⇒ identical chaos plan, admission order, requeues, sheds, and breaker transitions at every worker count (digest-pinned in internal/stream)")
	return res, nil
}
