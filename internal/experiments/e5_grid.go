package experiments

import (
	"fmt"
	"math"

	"dtmsched/internal/core"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E5", Title: "Grid: subgrid schedule is O(k·log m)-approximate w.h.p.", Ref: "Theorem 3, Lemma 4", Run: runE5})
}

// runE5 sweeps grid side, object count, and k on the uniform-random
// workload Theorem 3 assumes. The measured ratio is normalized by k·ln m
// (m = max(side, w)); the check requires the normalized ratio to stay
// bounded across the sweep, and a shape fit confirms the ratio does not
// grow polynomially with the side length.
func runE5(cfg Config) (*Result, error) {
	sides := []int{16, 32, 48}
	ks := []int{2, 4, 8}
	if cfg.Quick {
		sides = []int{16}
		ks = []int{2, 4}
	}
	res := &Result{ID: "E5", Title: "Grid: subgrid schedule is O(k·log m)-approximate w.h.p.", Ref: "Theorem 3, Lemma 4",
		Table: stats.NewTable("side", "n", "w", "k", "tile", "makespan", "lb", "ratio", "ratio/(k·ln m)")}
	worstNorm := 0.0
	var xs, ys []float64 // log side vs log ratio, for the growth-shape fit at fixed k=2
	type key struct{ side, w, k, m int }
	var keys []key
	sw := newSweep(cfg)
	for _, side := range sides {
		for _, k := range ks {
			w := 4 * side
			m := maxOf2(side, w)
			for trial := 0; trial < cfg.Trials; trial++ {
				topo := topology.NewSquareGrid(side)
				sw.add(fmt.Sprintf("E5/side=%d/k=%d/t=%d", side, k, trial), func() (*tm.Instance, error) {
					rng := xrand.NewDerived(cfg.Seed, "E5", fmt.Sprint(side), fmt.Sprint(k), fmt.Sprint(trial))
					return tm.UniformK(w, k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser), nil
				}, &core.Grid{Topo: topo})
			}
			sw.endCell()
			keys = append(keys, key{side, w, k, m})
		}
	}
	groups, err := sw.run()
	if err != nil {
		return nil, err
	}
	for i, ky := range keys {
		cells := groups[i]
		var tile int64
		for _, c := range cells {
			tile = c.Stats["side"]
		}
		ratio := meanRatio(cells)
		norm := ratio / (float64(ky.k) * math.Log(float64(ky.m)))
		if norm > worstNorm {
			worstNorm = norm
		}
		if ky.k == 2 {
			xs = append(xs, math.Log(float64(ky.side)))
			ys = append(ys, math.Log(ratio))
		}
		res.Table.AddRowf(ky.side, ky.side*ky.side, ky.w, ky.k, tile, meanMakespan(cells), meanBound(cells), ratio, norm)
	}
	res.Checks = append(res.Checks,
		checkf("ratio ≤ 8·k·ln m everywhere", worstNorm <= 8.0, "worst ratio/(k·ln m) = %.2f", worstNorm))
	if len(xs) >= 2 {
		_, slope, r2 := stats.LinFit(xs, ys)
		res.Checks = append(res.Checks,
			checkf("ratio grows sub-polynomially in side (k=2)", slope < 0.75,
				"log-log slope %.2f (r²=%.2f); a polynomial-in-n ratio would show slope ≥ 1", slope, r2))
	}
	return res, nil
}
