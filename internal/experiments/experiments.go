// Package experiments regenerates every result of the paper as a table or
// figure: one experiment per theorem (E1–E7), the Section 8 lower-bound
// constructions (E8–E9), and a baseline/ablation comparison (E10). Each
// experiment sweeps the parameters its theorem quantifies over, measures
// makespans against certified instance lower bounds, and checks the
// proven *shape* (who wins, bounded ratios, growth rates) rather than
// absolute numbers.
//
// The package is consumed by cmd/dtmbench (human-readable report, the
// source of EXPERIMENTS.md) and by the repository-root benchmarks.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"dtmsched/internal/core"
	"dtmsched/internal/engine"
	"dtmsched/internal/faults"
	"dtmsched/internal/lower"
	"dtmsched/internal/obs"
	"dtmsched/internal/schedule"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/xrand"
)

// PrecomputeMode selects when instances install the precomputed all-pairs
// distance matrix (tm.Instance.PrecomputeDist) before entering the engine
// pipeline. Only graph-backed metrics are affected; topologies with
// closed-form metrics never consult the graph.
type PrecomputeMode int

// Precompute policies. The zero value is Auto: small graph-backed
// instances get the matrix, everything else keeps the lock-free lazy
// tree cache.
const (
	// PrecomputeAuto installs the matrix for graph-backed metrics on
	// graphs of at most tm.AutoPrecomputeNodes nodes.
	PrecomputeAuto PrecomputeMode = iota
	// PrecomputeOff never installs the matrix.
	PrecomputeOff
	// PrecomputeOn installs the matrix for every graph-backed metric
	// regardless of size.
	PrecomputeOn
)

// Config tunes experiment execution.
type Config struct {
	// Seed roots all randomness; fixed default for reproducibility.
	Seed int64
	// Trials is the number of random instances per parameter cell.
	Trials int
	// Quick shrinks sweeps for fast CI/bench runs.
	Quick bool
	// Workers bounds the engine worker pool that trial cells fan out
	// over (0 = GOMAXPROCS, 1 = sequential). Results are identical for
	// every worker count.
	Workers int
	// Ctx cancels long sweeps mid-flight; nil means Background.
	Ctx context.Context
	// Collector, when set, receives stage timings, counters, and
	// (depending on its configuration) run traces from every engine job
	// the experiments execute. Nil costs nothing.
	Collector *obs.Collector
	// Hook, when set, observes every engine job's stage completions
	// (dtmbench wires the obs/v2 profiler through it). Called from the
	// engine workers; must be goroutine-safe. Nil costs nothing.
	Hook engine.Hook
	// Precompute selects the distance-matrix policy applied to every
	// instance the experiments build (default PrecomputeAuto). Purely a
	// performance knob: measured makespans, bounds, and ratios are
	// identical under every mode.
	Precompute PrecomputeMode
	// FaultRates overrides E20's fault-rate ladder (dtmbench -faults).
	// Empty keeps the experiment's default ladder; a 0 entry is the
	// fault-free baseline column.
	FaultRates []float64
	// LowerWorkers is the worker count for certified-bound computations
	// (≤ 1 = serial). Purely a performance knob: bounds are byte-identical
	// at every worker count.
	LowerWorkers int
	// LowerOracle, when set, caches certified bounds per instance across
	// everything this config runs — engine sweeps and the experiments'
	// direct bound queries alike. Nil scopes a fresh oracle to each
	// engine batch instead (direct queries then compute uncached).
	LowerOracle *lower.Oracle
	// HierWorkers bounds the hierarchical scheduler's shard worker pool
	// in E22 (0 = GOMAXPROCS, 1 = serial). Purely a performance knob:
	// hierarchical schedules are byte-identical at every worker count.
	HierWorkers int
}

// bound returns the certified lower bound for in, through the shared
// oracle when one is configured, else a direct witness-free computation
// (the experiments' own queries only read the scalar fields).
func (c Config) bound(in *tm.Instance) lower.Bound {
	if c.LowerOracle != nil {
		b, _ := c.LowerOracle.Get(in)
		return *b
	}
	return lower.ComputeOpts(in, lower.Options{Workers: c.LowerWorkers})
}

// prepare applies the precompute policy to a freshly built instance. It
// runs single-threaded SSSP: callers are already fanned out across the
// engine worker pool, so nesting parallelism would oversubscribe.
func (c Config) prepare(in *tm.Instance) *tm.Instance {
	switch c.Precompute {
	case PrecomputeOn:
		in.PrecomputeDist(1)
	case PrecomputeAuto:
		in.PrecomputeDistAuto(1)
	}
	return in
}

// wrapGen applies prepare to the instance a Gen closure produces.
func (c Config) wrapGen(gen func() (*tm.Instance, error)) func() (*tm.Instance, error) {
	if c.Precompute == PrecomputeOff {
		return gen
	}
	return func() (*tm.Instance, error) {
		in, err := gen()
		if err != nil {
			return nil, err
		}
		return c.prepare(in), nil
	}
}

// context returns the sweep's cancellation context.
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: xrand.DefaultSeed, Trials: 3}
}

// Check is one named shape assertion derived from a theorem.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is an experiment's rendered output.
type Result struct {
	ID     string
	Title  string
	Ref    string // paper reference (theorem / section)
	Table  *stats.Table
	Checks []Check
	Notes  []string
}

// Failed returns the failing checks.
func (r *Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Ref   string
	Run   func(cfg Config) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// cell is one measured (instance, algorithm) data point.
type cell struct {
	Makespan int64
	Bound    lower.Bound
	CommCost int64
	Stats    map[string]int64
	// P50/P99 are per-transaction latency percentiles: the step at which
	// a transaction commits, counted from batch activation at step 0.
	P50, P99 int64
	// Fault is the recovery summary of a fault-injected run (E20); nil
	// for fault-free cells.
	Fault *faults.Report
}

// Ratio is makespan over the certified lower bound.
func (c cell) Ratio() float64 {
	if c.Bound.Value == 0 {
		return 0
	}
	return float64(c.Makespan) / float64(c.Bound.Value)
}

// cellFromReport converts an engine report into a measurement cell.
func cellFromReport(r *engine.Report) cell {
	c := cell{Makespan: r.Makespan, Bound: r.Bound, CommCost: r.CommCost, Stats: r.Stats, Fault: r.Fault}
	if r.Schedule != nil {
		q := obs.Quantiles(r.Schedule.Times, 0.50, 0.99)
		c.P50, c.P99 = q[0], q[1]
	}
	return c
}

// runCell schedules in with sched through the engine pipeline (full
// verification: algebraic + synchronous simulator) and measures it against
// the instance lower bound. Any infeasibility is a hard error: the
// experiments never report unverified schedules.
func runCell(cfg Config, in *tm.Instance, sched core.Scheduler) (cell, error) {
	rep, err := engine.Run(cfg.context(), engine.Job{Instance: cfg.prepare(in), Scheduler: sched, Collector: cfg.Collector, LowerOracle: cfg.LowerOracle, Hook: cfg.Hook})
	if err != nil {
		return cell{}, fmt.Errorf("%s: %w", sched.Name(), err)
	}
	return cellFromReport(rep), nil
}

// runSchedule is runCell for a precomputed schedule.
func runSchedule(cfg Config, in *tm.Instance, s *schedule.Schedule, name string) (cell, error) {
	rep, err := engine.Run(cfg.context(), engine.Job{Instance: cfg.prepare(in), Schedule: s, Algorithm: name, Collector: cfg.Collector, LowerOracle: cfg.LowerOracle, Hook: cfg.Hook})
	if err != nil {
		return cell{}, fmt.Errorf("%s: %w", name, err)
	}
	return cellFromReport(rep), nil
}

// sweep accumulates engine jobs across a parameter sweep, grouped into
// cells, and executes them all through one engine.RunBatch fan-out: trial
// cells of an experiment run concurrently (bounded by Config.Workers)
// while the grouped results keep their deterministic add order.
type sweep struct {
	cfg   Config
	jobs  []engine.Job
	sizes []int // jobs per closed cell, in endCell order
	open  int   // jobs added to the currently open cell
}

// newSweep starts an empty sweep under cfg.
func newSweep(cfg Config) *sweep { return &sweep{cfg: cfg} }

// add appends one scheduler job to the open cell. gen runs on a pool
// worker, so it must derive its randomness from labels, not shared state.
func (s *sweep) add(name string, gen func() (*tm.Instance, error), sched core.Scheduler) {
	s.jobs = append(s.jobs, engine.Job{Name: name, Gen: s.cfg.wrapGen(gen), Scheduler: sched})
	s.open++
}

// addInstance appends one scheduler job on a pre-built instance. Instances
// may be shared between jobs of a cell (e.g. several algorithms compared
// on the same input).
func (s *sweep) addInstance(name string, in *tm.Instance, sched core.Scheduler) {
	s.jobs = append(s.jobs, engine.Job{Name: name, Instance: s.cfg.prepare(in), Scheduler: sched})
	s.open++
}

// endCell closes the current cell.
func (s *sweep) endCell() {
	s.sizes = append(s.sizes, s.open)
	s.open = 0
}

// run executes every accumulated job and returns the cells grouped per
// endCell call, in order. The first failing job aborts the sweep.
func (s *sweep) run() ([][]cell, error) {
	if s.open > 0 {
		s.endCell()
	}
	results, err := engine.RunBatch(s.cfg.context(), s.jobs, engine.Options{
		Workers:      s.cfg.Workers,
		Collector:    s.cfg.Collector,
		Hook:         s.cfg.Hook,
		LowerOracle:  s.cfg.LowerOracle,
		LowerWorkers: s.cfg.LowerWorkers,
	})
	if err != nil {
		return nil, err
	}
	reports, err := engine.Reports(results)
	if err != nil {
		return nil, err
	}
	groups := make([][]cell, 0, len(s.sizes))
	i := 0
	for _, size := range s.sizes {
		g := make([]cell, size)
		for j := 0; j < size; j++ {
			g[j] = cellFromReport(reports[i])
			i++
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// meanRatio averages cells' ratios.
func meanRatio(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += c.Ratio()
	}
	return sum / float64(len(cells))
}

// meanMakespan averages cells' makespans.
func meanMakespan(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += float64(c.Makespan)
	}
	return sum / float64(len(cells))
}

// meanP50 and meanP99 average cells' per-transaction latency percentiles.
func meanP50(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += float64(c.P50)
	}
	return sum / float64(len(cells))
}

func meanP99(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += float64(c.P99)
	}
	return sum / float64(len(cells))
}

// meanBound averages cells' lower bounds.
func meanBound(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += float64(c.Bound.Value)
	}
	return sum / float64(len(cells))
}

// checkf builds a Check from a condition and formatted detail.
func checkf(name string, ok bool, format string, args ...interface{}) Check {
	return Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}
