// Package experiments regenerates every result of the paper as a table or
// figure: one experiment per theorem (E1–E7), the Section 8 lower-bound
// constructions (E8–E9), and a baseline/ablation comparison (E10). Each
// experiment sweeps the parameters its theorem quantifies over, measures
// makespans against certified instance lower bounds, and checks the
// proven *shape* (who wins, bounded ratios, growth rates) rather than
// absolute numbers.
//
// The package is consumed by cmd/dtmbench (human-readable report, the
// source of EXPERIMENTS.md) and by the repository-root benchmarks.
package experiments

import (
	"fmt"
	"sort"

	"dtmsched/internal/core"
	"dtmsched/internal/lower"
	"dtmsched/internal/schedule"
	"dtmsched/internal/sim"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/xrand"
)

// Config tunes experiment execution.
type Config struct {
	// Seed roots all randomness; fixed default for reproducibility.
	Seed int64
	// Trials is the number of random instances per parameter cell.
	Trials int
	// Quick shrinks sweeps for fast CI/bench runs.
	Quick bool
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: xrand.DefaultSeed, Trials: 3}
}

// Check is one named shape assertion derived from a theorem.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is an experiment's rendered output.
type Result struct {
	ID     string
	Title  string
	Ref    string // paper reference (theorem / section)
	Table  *stats.Table
	Checks []Check
	Notes  []string
}

// Failed returns the failing checks.
func (r *Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Ref   string
	Run   func(cfg Config) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// cell is one measured (instance, algorithm) data point.
type cell struct {
	Makespan int64
	Bound    lower.Bound
	CommCost int64
	Stats    map[string]int64
}

// Ratio is makespan over the certified lower bound.
func (c cell) Ratio() float64 {
	if c.Bound.Value == 0 {
		return 0
	}
	return float64(c.Makespan) / float64(c.Bound.Value)
}

// runCell schedules in with sched, verifies the schedule both
// algebraically and in the synchronous simulator, and measures it against
// the instance lower bound. Any infeasibility is a hard error: the
// experiments never report unverified schedules.
func runCell(in *tm.Instance, sched core.Scheduler) (cell, error) {
	res, err := sched.Schedule(in)
	if err != nil {
		return cell{}, fmt.Errorf("%s: %w", sched.Name(), err)
	}
	simRes, err := sim.Run(in, res.Schedule, sim.Options{})
	if err != nil {
		return cell{}, fmt.Errorf("%s: simulator rejected schedule: %w", sched.Name(), err)
	}
	return cell{
		Makespan: res.Makespan,
		Bound:    lower.Compute(in),
		CommCost: simRes.CommCost,
		Stats:    res.Stats,
	}, nil
}

// runSchedule is runCell for a precomputed schedule.
func runSchedule(in *tm.Instance, s *schedule.Schedule, name string) (cell, error) {
	if err := s.Validate(in); err != nil {
		return cell{}, fmt.Errorf("%s: infeasible: %w", name, err)
	}
	simRes, err := sim.Run(in, s, sim.Options{})
	if err != nil {
		return cell{}, fmt.Errorf("%s: simulator rejected schedule: %w", name, err)
	}
	return cell{Makespan: s.Makespan(), Bound: lower.Compute(in), CommCost: simRes.CommCost}, nil
}

// meanRatio averages cells' ratios.
func meanRatio(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += c.Ratio()
	}
	return sum / float64(len(cells))
}

// meanMakespan averages cells' makespans.
func meanMakespan(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += float64(c.Makespan)
	}
	return sum / float64(len(cells))
}

// meanBound averages cells' lower bounds.
func meanBound(cells []cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += float64(c.Bound.Value)
	}
	return sum / float64(len(cells))
}

// checkf builds a Check from a condition and formatted detail.
func checkf(name string, ok bool, format string, args ...interface{}) Check {
	return Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}
