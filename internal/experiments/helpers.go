package experiments

import (
	"dtmsched/internal/graph"
	"dtmsched/internal/topology"
)

// metric adapts a topology's closed-form distance to graph.Metric.
func metric(t topology.Topology) graph.Metric {
	return graph.FuncMetric(t.Dist)
}

func maxOf2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minOf2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
