package experiments

import (
	"dtmsched/internal/graph"
	"dtmsched/internal/topology"
)

// metric adapts a topology's distance oracle to graph.Metric: the
// closed form where one exists, the graph itself where the topology
// falls back to shortest-path search — exposing the graph directly lets
// instances install the precomputed matrix (Config.Precompute).
func metric(t topology.Topology) graph.Metric {
	if topology.MetricFallsBackToGraph(t) {
		return t.Graph()
	}
	return graph.FuncMetric(t.Dist)
}

func maxOf2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minOf2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
