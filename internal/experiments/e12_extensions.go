package experiments

import (
	"fmt"

	"dtmsched/internal/congestion"
	"dtmsched/internal/core"
	"dtmsched/internal/online"
	"dtmsched/internal/replica"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E12", Title: "Extension: online scheduling (open question 1)", Ref: "Section 9, open question 1", Run: runE12})
	register(Experiment{ID: "E13", Title: "Extension: bounded link capacity (open question 2)", Ref: "Section 9, open question 2", Run: runE13})
	register(Experiment{ID: "E14", Title: "Extension: read-only replication / multi-versioning", Ref: "Section 1.2 related work", Run: runE14})
}

// runE12 compares the online contention-management policies (FIFO,
// nearest, random) against the offline greedy schedule on batch arrivals,
// and reports response times under Poisson arrivals. Checks: the online
// executor never beats the certified offline lower bound, and the
// distance-aware nearest policy never moves objects farther than FIFO in
// total.
func runE12(cfg Config) (*Result, error) {
	type setup struct {
		name string
		mk   func(seed int64) *tm.Instance
	}
	setups := []setup{
		{"clique-64", func(seed int64) *tm.Instance {
			topo := topology.NewClique(64)
			return tm.UniformK(16, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		}},
		{"grid-12", func(seed int64) *tm.Instance {
			topo := topology.NewSquareGrid(12)
			return tm.UniformK(36, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		}},
		{"cluster-4x8", func(seed int64) *tm.Instance {
			topo := topology.NewCluster(4, 8, 16)
			return tm.UniformK(8, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		}},
	}
	if cfg.Quick {
		setups = setups[:1]
	}
	res := &Result{ID: "E12", Title: "Extension: online scheduling (open question 1)", Ref: "Section 9, open question 1",
		Table: stats.NewTable("instance", "offline", "lb", "fifo", "nearest", "random", "near/off", "meanResp(poisson)")}
	soundLB := true
	var nearCommTotal, fifoCommTotal float64
	for _, su := range setups {
		var off, fifo, near, rnd, lbv, resp float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + int64(trial)
			in := su.mk(seed)
			lb := cfg.bound(in)
			offRes, err := (&core.Greedy{}).Schedule(in)
			if err != nil {
				return nil, err
			}
			batch := online.BatchArrivals(in)
			rf, err := online.Run(in, batch, online.FIFO{})
			if err != nil {
				return nil, err
			}
			rn, err := online.Run(in, batch, online.Nearest{})
			if err != nil {
				return nil, err
			}
			rr, err := online.Run(in, batch, online.Random{Rng: xrand.NewDerived(cfg.Seed, "E12", su.name, fmt.Sprint(trial))})
			if err != nil {
				return nil, err
			}
			if rf.Makespan < lb.Value || rn.Makespan < lb.Value || rr.Makespan < lb.Value {
				soundLB = false
			}
			nearCommTotal += float64(rn.CommCost)
			fifoCommTotal += float64(rf.CommCost)
			// Open-system response time under Poisson arrivals.
			pois := online.PoissonArrivals(xrand.NewDerived(cfg.Seed, "E12p", su.name, fmt.Sprint(trial)), in, 0.5)
			rp, err := online.Run(in, pois, online.FIFO{})
			if err != nil {
				return nil, err
			}
			off += float64(offRes.Makespan)
			lbv += float64(lb.Value)
			fifo += float64(rf.Makespan)
			near += float64(rn.Makespan)
			rnd += float64(rr.Makespan)
			resp += rp.MeanResponse
		}
		tr := float64(cfg.Trials)
		res.Table.AddRowf(su.name, off/tr, lbv/tr, fifo/tr, near/tr, rnd/tr, (near/tr)/(off/tr), resp/tr)
	}
	res.Checks = append(res.Checks,
		checkf("online makespans never beat the certified offline lower bound", soundLB, "lower bounds hold for online executions too"),
		checkf("nearest policy moves objects less than FIFO in aggregate", nearCommTotal <= fifoCommTotal,
			"total object travel: nearest %.0f vs FIFO %.0f (per-instance inversions are possible: nearest is myopic)", nearCommTotal, fifoCommTotal))
	res.Notes = append(res.Notes,
		"the online executor uses ordered acquisition (deadlock-free, abort-free); policies differ only in which waiting transaction a freed object serves next")
	return res, nil
}

// runE13 replays offline schedules under per-edge capacities on the two
// most congestion-prone topologies (star: all traffic crosses the center;
// grid: mesh links). Checks: dilation ≥ 1 everywhere and monotone
// non-increasing in capacity; unlimited capacity reproduces the base
// model (dilation exactly 1).
func runE13(cfg Config) (*Result, error) {
	caps := []int{1, 2, 4, 1 << 20}
	type setup struct {
		name string
		mk   func(seed int64) (*tm.Instance, *core.Result, error)
	}
	setups := []setup{
		{"star-8x8", func(seed int64) (*tm.Instance, *core.Result, error) {
			topo := topology.NewStar(8, 8)
			in := tm.UniformK(16, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			r, err := (&core.Star{Topo: topo, Rng: xrand.New(seed + 1)}).Schedule(in)
			return in, r, err
		}},
		{"grid-12", func(seed int64) (*tm.Instance, *core.Result, error) {
			topo := topology.NewSquareGrid(12)
			in := tm.UniformK(36, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			r, err := (&core.Grid{Topo: topo}).Schedule(in)
			return in, r, err
		}},
	}
	if cfg.Quick {
		setups = setups[:1]
	}
	res := &Result{ID: "E13", Title: "Extension: bounded link capacity (open question 2)", Ref: "Section 9, open question 2",
		Table: stats.NewTable("instance", "capacity", "makespan", "ideal", "dilation", "maxQueue", "waits")}
	monotone, unitAtInf := true, true
	for _, su := range setups {
		for trial := 0; trial < cfg.Trials; trial++ {
			in, sched, err := su.mk(cfg.Seed + int64(trial))
			if err != nil {
				return nil, err
			}
			prev := int64(-1)
			for _, c := range caps {
				r, err := congestion.Replay(in, sched.Schedule, c)
				if err != nil {
					return nil, err
				}
				if r.Dilation < 1.0-1e-9 {
					monotone = false
				}
				if prev >= 0 && r.Makespan > prev {
					monotone = false
				}
				prev = r.Makespan
				if c == 1<<20 && r.Dilation != 1.0 {
					unitAtInf = false
				}
				if trial == 0 {
					capLabel := fmt.Sprint(c)
					if c == 1<<20 {
						capLabel = "inf"
					}
					res.Table.AddRowf(su.name, capLabel, r.Makespan, r.IdealMakespan, r.Dilation, r.MaxQueue, r.Waits)
				}
			}
		}
	}
	res.Checks = append(res.Checks,
		checkf("dilation ≥ 1 and non-increasing in capacity", monotone, "congestion only slows schedules, and more capacity never hurts"),
		checkf("unlimited capacity reproduces the base model", unitAtInf, "dilation is exactly 1 at capacity ∞"))
	return res, nil
}

// runE14 sweeps the read fraction of a clique workload under the
// multi-version scheduler. Checks: all-writes matches the base model's
// feasibility, makespan falls as the read share rises, and all-reads
// collapses to copy-distribution time.
func runE14(cfg Config) (*Result, error) {
	n, w, k := 64, 16, 2
	if cfg.Quick {
		n = 32
	}
	fracs := []float64{0, 0.25, 0.5, 0.75, 0.9, 1}
	res := &Result{ID: "E14", Title: "Extension: read-only replication / multi-versioning", Ref: "Section 1.2 related work",
		Table: stats.NewTable("readFrac", "writeAccesses", "conflicts", "makespan", "vs allWrites")}
	var first float64
	monotoneExtremes := true
	var lastMakespan float64
	for _, frac := range fracs {
		var mk, conf, wc float64
		for trial := 0; trial < cfg.Trials; trial++ {
			topo := topology.NewClique(n)
			in := tm.UniformK(w, k).Generate(xrand.NewDerived(cfg.Seed, "E14", fmt.Sprint(trial)), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			rw := replica.WithReadFraction(xrand.NewDerived(cfg.Seed, "E14rw", fmt.Sprint(frac), fmt.Sprint(trial)), in, frac)
			r, err := replica.Schedule(rw)
			if err != nil {
				return nil, err
			}
			mk += float64(r.Makespan)
			conf += float64(r.Conflicts)
			wc += float64(rw.WriteCount())
		}
		tr := float64(cfg.Trials)
		mk, conf, wc = mk/tr, conf/tr, wc/tr
		if frac == 0 {
			first = mk
		}
		lastMakespan = mk
		rel := 1.0
		if first > 0 {
			rel = mk / first
		}
		res.Table.AddRowf(fmt.Sprintf("%.2f", frac), wc, conf, mk, rel)
	}
	if lastMakespan > first {
		monotoneExtremes = false
	}
	res.Checks = append(res.Checks,
		checkf("all-reads never slower than all-writes", monotoneExtremes, "replication removes conflicts"),
		checkf("all-reads runs in copy-distribution time", lastMakespan <= 2.0, "readFrac=1 makespan %.1f ≤ 2 on a clique", lastMakespan))
	res.Notes = append(res.Notes,
		"multi-version semantics: writers chain on the master copy; readers receive a copy of the latest preceding version and never conflict with each other")
	return res, nil
}
