package experiments

import (
	"fmt"
	"math"

	"dtmsched/internal/core"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E1", Title: "Clique: greedy is O(k)-approximate", Ref: "Theorem 1", Run: runE1})
	register(Experiment{ID: "E2", Title: "Hypercube: greedy is O(k·log n)-approximate", Ref: "Section 3.1", Run: runE2})
	register(Experiment{ID: "E3", Title: "Butterfly: greedy is O(k·log n)-approximate", Ref: "Section 3.1", Run: runE3})
}

// runE1 sweeps clique size and per-transaction object count, measuring the
// greedy schedule's makespan against the instance lower bound. Theorem 1
// proves a ratio of O(k); the check requires ratio ≤ 4k across the sweep
// and that ratio/k stays flat as n grows.
func runE1(cfg Config) (*Result, error) {
	ns := []int{64, 128, 256, 512}
	ks := []int{1, 2, 4, 8}
	if cfg.Quick {
		ns = []int{64, 128}
		ks = []int{2, 4}
	}
	res := &Result{ID: "E1", Title: "Clique: greedy is O(k)-approximate", Ref: "Theorem 1",
		Table: stats.NewTable("n", "w", "k", "makespan", "lb", "ratio", "ratio/k")}
	worstNorm := 0.0
	type key struct{ n, w, k int }
	var keys []key
	sw := newSweep(cfg)
	for _, n := range ns {
		for _, k := range ks {
			w := n / 4
			if k > w {
				continue
			}
			for trial := 0; trial < cfg.Trials; trial++ {
				sw.add(fmt.Sprintf("E1/n=%d/k=%d/t=%d", n, k, trial), func() (*tm.Instance, error) {
					rng := xrand.NewDerived(cfg.Seed, "E1", fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(trial))
					topo := topology.NewClique(n)
					return tm.UniformK(w, k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser), nil
				}, &core.Greedy{})
			}
			sw.endCell()
			keys = append(keys, key{n, w, k})
		}
	}
	groups, err := sw.run()
	if err != nil {
		return nil, err
	}
	for i, ky := range keys {
		cells := groups[i]
		ratio := meanRatio(cells)
		norm := ratio / float64(ky.k)
		if norm > worstNorm {
			worstNorm = norm
		}
		res.Table.AddRowf(ky.n, ky.w, ky.k, meanMakespan(cells), meanBound(cells), ratio, norm)
	}
	res.Checks = append(res.Checks,
		checkf("ratio ≤ 4k everywhere", worstNorm <= 4.0, "worst ratio/k = %.2f (Theorem 1 allows O(k); constant ≤ 4 expected)", worstNorm))
	return res, nil
}

// runE2 repeats E1 on hypercubes, normalizing by k·log₂ n per Section 3.1.
func runE2(cfg Config) (*Result, error) {
	dims := []int{6, 8, 10}
	ks := []int{1, 2, 4}
	if cfg.Quick {
		dims = []int{6, 7}
		ks = []int{2}
	}
	res := &Result{ID: "E2", Title: "Hypercube: greedy is O(k·log n)-approximate", Ref: "Section 3.1",
		Table: stats.NewTable("dim", "n", "w", "k", "makespan", "lb", "ratio", "ratio/(k·log n)")}
	worstNorm := 0.0
	type key struct{ d, n, w, k int }
	var keys []key
	sw := newSweep(cfg)
	for _, d := range dims {
		n := 1 << d
		for _, k := range ks {
			w := n / 4
			for trial := 0; trial < cfg.Trials; trial++ {
				sw.add(fmt.Sprintf("E2/dim=%d/k=%d/t=%d", d, k, trial), func() (*tm.Instance, error) {
					rng := xrand.NewDerived(cfg.Seed, "E2", fmt.Sprint(d), fmt.Sprint(k), fmt.Sprint(trial))
					topo := topology.NewHypercube(d)
					return tm.UniformK(w, k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser), nil
				}, &core.Greedy{})
			}
			sw.endCell()
			keys = append(keys, key{d, n, w, k})
		}
	}
	groups, err := sw.run()
	if err != nil {
		return nil, err
	}
	for i, ky := range keys {
		cells := groups[i]
		ratio := meanRatio(cells)
		norm := ratio / (float64(ky.k) * float64(ky.d))
		if norm > worstNorm {
			worstNorm = norm
		}
		res.Table.AddRowf(ky.d, ky.n, ky.w, ky.k, meanMakespan(cells), meanBound(cells), ratio, norm)
	}
	res.Checks = append(res.Checks,
		checkf("ratio ≤ 4·k·log n everywhere", worstNorm <= 4.0, "worst ratio/(k·log n) = %.2f", worstNorm))
	return res, nil
}

// runE3 repeats E2 on butterflies, whose diameter is 2·dim.
func runE3(cfg Config) (*Result, error) {
	dims := []int{3, 4, 5, 6}
	ks := []int{1, 2, 4}
	if cfg.Quick {
		dims = []int{3, 4}
		ks = []int{2}
	}
	res := &Result{ID: "E3", Title: "Butterfly: greedy is O(k·log n)-approximate", Ref: "Section 3.1",
		Table: stats.NewTable("dim", "n", "w", "k", "makespan", "lb", "ratio", "ratio/(k·diam)")}
	worstNorm := 0.0
	type key struct {
		d, n, w, k int
		diam       float64
	}
	var keys []key
	sw := newSweep(cfg)
	for _, d := range dims {
		topoProbe := topology.NewButterfly(d)
		n := topoProbe.Graph().NumNodes()
		diam := float64(topoProbe.Diameter())
		for _, k := range ks {
			w := maxOf2(n/4, k)
			for trial := 0; trial < cfg.Trials; trial++ {
				sw.add(fmt.Sprintf("E3/dim=%d/k=%d/t=%d", d, k, trial), func() (*tm.Instance, error) {
					rng := xrand.NewDerived(cfg.Seed, "E3", fmt.Sprint(d), fmt.Sprint(k), fmt.Sprint(trial))
					topo := topology.NewButterfly(d)
					return tm.UniformK(w, k).Generate(rng, topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser), nil
				}, &core.Greedy{})
			}
			sw.endCell()
			keys = append(keys, key{d, n, w, k, diam})
		}
	}
	groups, err := sw.run()
	if err != nil {
		return nil, err
	}
	for i, ky := range keys {
		cells := groups[i]
		ratio := meanRatio(cells)
		norm := ratio / (float64(ky.k) * ky.diam)
		if norm > worstNorm {
			worstNorm = norm
		}
		res.Table.AddRowf(ky.d, ky.n, ky.w, ky.k, meanMakespan(cells), meanBound(cells), ratio, norm)
	}
	res.Checks = append(res.Checks,
		checkf("ratio ≤ 4·k·diam everywhere", worstNorm <= 4.0, "worst ratio/(k·diam) = %.2f", worstNorm))
	res.Notes = append(res.Notes, fmt.Sprintf("butterfly diameter is 2·dim = Θ(log n); largest sweep diameter %.0f", math.Max(float64(2*dims[len(dims)-1]), 0)))
	return res, nil
}
