package experiments

import (
	"fmt"

	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/stats"
	"dtmsched/internal/stream"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E21", Title: "Extension: streaming service, injection rate vs sustainable throughput", Ref: "Section 9 (open question: continuous arrivals)", Run: runE21})
}

// runE21 sweeps the streaming scheduler (internal/stream) over injection
// rate × topology with the lossless Block policy: transactions arrive
// from a seeded generator, rolling windows are cut over the mutable
// conflict index, and the run drains completely. Utilization
// (throughput / offered rate) shows where each topology saturates: the
// clique sustains rates the line cannot, because the line's object
// travel time caps its service rate — the streaming analogue of the
// paper's O(n) vs O(1)-per-window gap.
func runE21(cfg Config) (*Result, error) {
	rates := []float64{0.1, 0.3, 0.6, 1.0}
	txns := 240
	if cfg.Quick {
		rates = []float64{0.1, 1.0}
		txns = 120
	}
	type setup struct {
		name string
		mk   func() topology.Topology
		w, k int
	}
	setups := []setup{
		{"clique-16", func() topology.Topology { return topology.NewClique(16) }, 16, 2},
		{"line-16", func() topology.Topology { return topology.NewLine(16) }, 4, 1},
	}
	res := &Result{ID: "E21", Title: "Extension: streaming service, injection rate vs sustainable throughput", Ref: "Section 9 (open question: continuous arrivals)",
		Table: stats.NewTable("topology", "rate", "throughput", "util", "resp-mean", "resp-max", "queue-peak", "blocked")}

	lossless := true
	util := map[string]map[float64]float64{}
	resp := map[string]map[float64]float64{}
	for _, su := range setups {
		util[su.name] = map[float64]float64{}
		resp[su.name] = map[float64]float64{}
		for _, rate := range rates {
			var thrSum, utilSum, respSum float64
			var respMax, queuePeak, blocked int64
			for trial := 0; trial < cfg.Trials; trial++ {
				topo := su.mk()
				g := topo.Graph()
				rng := xrand.NewDerived(cfg.Seed, "E21", su.name, fmt.Sprint(rate), fmt.Sprint(trial))
				home := make([]graph.NodeID, su.w)
				for o := range home {
					home[o] = g.Nodes()[rng.Intn(g.NumNodes())]
				}
				var wl tm.Workload
				if su.k == 1 && su.w == 4 {
					wl = tm.HotspotK(su.w, su.k) // skewed contention stresses the line
				} else {
					wl = tm.UniformK(su.w, su.k)
				}
				r, err := stream.Serve(cfg.context(), stream.Config{
					G: g, Metric: metric(topo), NumObjects: su.w, Home: home,
					Source:        stream.NewGenerator(rng, g, wl, rate, txns),
					Policy:        stream.Block,
					Verify:        verifyModeFor(cfg),
					PipelineDepth: 2,
					Collector:     cfg.Collector,
					Hook:          cfg.Hook,
				})
				if err != nil {
					return nil, err
				}
				if r.Rejected != 0 || r.Admitted != int64(txns) || r.Committed != int64(txns) {
					lossless = false
				}
				offered := rate
				if offered > 1 {
					offered = 1
				}
				thrSum += r.Throughput
				utilSum += r.Throughput / offered
				respSum += r.MeanResponse
				if r.MaxResponse > respMax {
					respMax = r.MaxResponse
				}
				if int64(r.QueuePeak) > queuePeak {
					queuePeak = int64(r.QueuePeak)
				}
				blocked += r.Blocked
			}
			tr := float64(cfg.Trials)
			util[su.name][rate] = utilSum / tr
			resp[su.name][rate] = respSum / tr
			res.Table.AddRowf(su.name, rate, thrSum/tr, utilSum/tr, respSum/tr, respMax, queuePeak, blocked)
		}
	}

	lo, hi := rates[0], rates[len(rates)-1]
	res.Checks = append(res.Checks,
		checkf("block policy is lossless at every rate", lossless,
			"admitted and committed must both equal the %d offered transactions", txns),
		checkf("sub-critical injection is sustained", util["clique-16"][lo] >= 0.85 && util["line-16"][lo] >= 0.85,
			"utilization at rate %.1f: clique %.2f, line %.2f (want ≥ 0.85)", lo, util["clique-16"][lo], util["line-16"][lo]),
		checkf("the line saturates below the clique", util["line-16"][hi] < util["clique-16"][hi],
			"utilization at rate %.1f: line %.2f vs clique %.2f — object travel time caps the line's service rate", hi, util["line-16"][hi], util["clique-16"][hi]),
		checkf("response time grows with injection rate", resp["line-16"][hi] > resp["line-16"][lo],
			"line mean response %.1f → %.1f steps from rate %.1f to %.1f", resp["line-16"][lo], resp["line-16"][hi], lo, hi))
	res.Notes = append(res.Notes,
		"Block policy: overload surfaces as queueing delay (resp-mean, queue-peak), never as loss; the reject policy trades exactly this delay for drops",
		"same seed ⇒ identical admission order, window cuts, and commit steps (stream.Result.Digest pins this in the package tests)")
	return res, nil
}

// verifyModeFor picks the per-window verification depth: full replay
// normally, algebraic-only when the sweep is shrunk for CI.
func verifyModeFor(cfg Config) engine.VerifyMode {
	if cfg.Quick {
		return engine.VerifyFast
	}
	return engine.VerifyFull
}
