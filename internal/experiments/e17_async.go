package experiments

import (
	"fmt"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/stats"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func init() {
	register(Experiment{ID: "E17", Title: "Extension: asynchrony / synchronicity factor", Ref: "Section 9 (conclusion remark)", Run: runE17})
	register(Experiment{ID: "E18", Title: "Tradeoff: execution time vs communication cost", Ref: "Section 1.2, Busch et al. PODC 2015", Run: runE18})
}

// runE17 tests the conclusion's remark that partial synchrony scales the
// bounds by the synchronicity factor (max delay / min delay). Clique
// edges are stretched by random factors in [1, F]; the greedy schedule's
// ratio against the (re-certified) lower bound should grow at most
// proportionally to F.
func runE17(cfg Config) (*Result, error) {
	factors := []int64{1, 2, 4, 8}
	n, w, k := 64, 16, 2
	if cfg.Quick {
		factors = []int64{1, 4}
		n = 32
	}
	res := &Result{ID: "E17", Title: "Extension: asynchrony / synchronicity factor", Ref: "Section 9 (conclusion remark)",
		Table: stats.NewTable("factor", "realized sync", "makespan", "lb", "ratio", "ratio/factor")}
	var baseRatio float64
	worstNorm := 0.0
	for _, f := range factors {
		var mk, lbv, sync float64
		var ratio float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := xrand.NewDerived(cfg.Seed, "E17", fmt.Sprint(f), fmt.Sprint(trial))
			base := topology.NewClique(n)
			st := topology.Stretch(rng, base, f)
			in := tm.UniformK(w, k).Generate(rng, st.Graph(), metric(st), st.Graph().Nodes(), tm.PlaceAtRandomUser)
			c, err := runCell(cfg, in, &core.Greedy{})
			if err != nil {
				return nil, err
			}
			mk += float64(c.Makespan)
			lbv += float64(c.Bound.Value)
			ratio += c.Ratio()
			sync += st.Synchronicity()
		}
		tr := float64(cfg.Trials)
		mk, lbv, ratio, sync = mk/tr, lbv/tr, ratio/tr, sync/tr
		if f == 1 {
			baseRatio = ratio
		}
		norm := ratio / float64(f)
		if norm > worstNorm {
			worstNorm = norm
		}
		res.Table.AddRowf(f, sync, mk, lbv, ratio, norm)
	}
	res.Checks = append(res.Checks,
		checkf("ratio grows at most proportionally to the synchronicity factor",
			worstNorm <= 2*baseRatio+1,
			"worst ratio/factor %.2f vs synchronous baseline ratio %.2f", worstNorm, baseRatio))
	res.Notes = append(res.Notes,
		"the lower bound is re-certified on the stretched metric, so the ratio isolates the scheduler's loss, not the slower network itself")
	return res, nil
}

// runE18 reproduces the flavor of the paper's predecessor result (Busch
// et al., PODC 2015): execution time and communication cost cannot be
// minimized together. For each topology it plots three schedules — the
// paper's (time-oriented), nearest-neighbor-order list scheduling
// (communication-oriented), and random order — and checks the frontier:
// the comm-oriented schedule moves objects the least, the paper schedule
// finishes at least as fast as the comm-oriented one.
func runE18(cfg Config) (*Result, error) {
	type setup struct {
		name string
		mk   func(seed int64) (*tm.Instance, core.Scheduler)
	}
	setups := []setup{
		{"line-128", func(seed int64) (*tm.Instance, core.Scheduler) {
			topo := topology.NewLine(128)
			in := tm.UniformK(32, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Line{Topo: topo}
		}},
		{"clique-64", func(seed int64) (*tm.Instance, core.Scheduler) {
			topo := topology.NewClique(64)
			in := tm.UniformK(16, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Greedy{}
		}},
		{"star-8x8", func(seed int64) (*tm.Instance, core.Scheduler) {
			topo := topology.NewStar(8, 8)
			in := tm.UniformK(16, 2).Generate(xrand.New(seed), topo.Graph(), metric(topo), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
			return in, &core.Star{Topo: topo, Rng: xrand.New(seed + 1)}
		}},
	}
	if cfg.Quick {
		setups = setups[:2]
	}
	res := &Result{ID: "E18", Title: "Tradeoff: execution time vs communication cost", Ref: "Section 1.2, Busch et al. PODC 2015",
		Table: stats.NewTable("instance", "t(paper)", "c(paper)", "t(commOpt)", "c(commOpt)", "t(random)", "c(random)")}
	frontier := true
	for _, su := range setups {
		var tp, cp, tc, cc, trd, crd float64
		for trial := 0; trial < cfg.Trials; trial++ {
			in, paperSched := su.mk(cfg.Seed + int64(trial))
			p, err := runCell(cfg, in, paperSched)
			if err != nil {
				return nil, err
			}
			comm, err := runCell(cfg, in, baseline.List{Order: baseline.NearestOrder(in)})
			if err != nil {
				return nil, err
			}
			rnd, err := runCell(cfg, in, baseline.Random{Rng: xrand.NewDerived(cfg.Seed, "E18", su.name, fmt.Sprint(trial))})
			if err != nil {
				return nil, err
			}
			// The frontier claim: the comm-oriented schedule never moves
			// objects more than the random-priority one. Cliques are
			// degenerate (all distances 1, so order barely moves the
			// needle) and stay informational.
			if su.name != "clique-64" && comm.CommCost > rnd.CommCost {
				frontier = false
			}
			tp += float64(p.Makespan)
			cp += float64(p.CommCost)
			tc += float64(comm.Makespan)
			cc += float64(comm.CommCost)
			trd += float64(rnd.Makespan)
			crd += float64(rnd.CommCost)
		}
		tr := float64(cfg.Trials)
		res.Table.AddRowf(su.name, tp/tr, cp/tr, tc/tr, cc/tr, trd/tr, crd/tr)
	}
	res.Checks = append(res.Checks,
		checkf("comm-oriented order moves objects least on distance-structured topologies", frontier,
			"nearest-neighbor priority dominates random priority on communication (cliques are degenerate: all distances 1)"))
	res.Notes = append(res.Notes,
		"PODC 2015 proves the extremes cannot be attained together; the table shows the empirical frontier the two orientations span")
	return res, nil
}
