package experiments

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E2", "E20", "E21", "E22", "E23", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Run == nil || e.Title == "" || e.Ref == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

// TestAllExperimentsQuick is the integration test of the whole harness:
// every experiment runs in quick mode with one trial and every shape check
// derived from the paper's theorems must pass.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes a few seconds")
	}
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Trials = 1
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.Table.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			for _, c := range res.Failed() {
				t.Errorf("%s check failed: %s — %s", e.ID, c.Name, c.Detail)
			}
		})
	}
}

func TestCellRatio(t *testing.T) {
	c := cell{Makespan: 10}
	if c.Ratio() != 0 {
		t.Fatal("zero bound should give ratio 0")
	}
}

func TestCheckf(t *testing.T) {
	c := checkf("name", true, "x=%d", 4)
	if !c.OK || c.Detail != "x=4" {
		t.Fatalf("checkf = %+v", c)
	}
}
