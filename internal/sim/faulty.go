package sim

import (
	"fmt"
	"sort"

	"dtmsched/internal/faults"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// FaultyOptions configures RunFaulty.
type FaultyOptions struct {
	Options
	// Inject scripts the faults. A nil or empty injector makes RunFaulty
	// exactly Run (same result, same events, nil report, and no extra
	// allocations — the empty path is CI-guarded).
	Inject faults.Injector
	// BackoffBase is the delay in simulated steps before the first
	// re-dispatch of a dropped move (default 1). The delay doubles after
	// every consecutive drop of the same hop.
	BackoffBase int64
	// BackoffMax caps the re-dispatch delay (default 64 steps).
	BackoffMax int64
	// MaxRetries bounds consecutive re-dispatches of one hop (default
	// 32); exceeding the budget aborts the run with an error rather than
	// spinning on an injector that drops everything.
	MaxRetries int
}

// Defaults for FaultyOptions' zero values.
const (
	defaultBackoffBase = 1
	defaultBackoffMax  = 64
	defaultMaxRetries  = 32
)

// faultEnv caches one surviving subgraph per fault epoch. Fault state is
// piecewise-constant between injector boundaries, so each epoch's subgraph
// (healthy links at original weight, slowed links multiplied, down links
// and crashed nodes' links removed) is built once and its lazy SSSP cache
// then serves every reroute query of the epoch.
type faultEnv struct {
	in     *tm.Instance
	inj    faults.Injector
	bounds []int64
	epochs []*graph.Graph // lazily built; index 0 covers steps before bounds[0]
}

func newFaultEnv(in *tm.Instance, inj faults.Injector) *faultEnv {
	bounds := inj.Boundaries()
	return &faultEnv{in: in, inj: inj, bounds: bounds, epochs: make([]*graph.Graph, len(bounds)+1)}
}

// epoch returns the index of the epoch containing step.
func (e *faultEnv) epoch(step int64) int {
	return sort.Search(len(e.bounds), func(i int) bool { return e.bounds[i] > step })
}

// graphAt builds (or returns) the surviving subgraph of epoch ep.
func (e *faultEnv) graphAt(ep int) *graph.Graph {
	if g := e.epochs[ep]; g != nil {
		return g
	}
	var step int64
	if ep > 0 {
		step = e.bounds[ep-1]
	}
	src := e.in.G
	n := src.NumNodes()
	g := graph.New(n)
	for u := 0; u < n; u++ {
		if _, down := e.inj.NodeDownUntil(graph.NodeID(u), step); down {
			continue
		}
		for _, edge := range src.Neighbors(graph.NodeID(u)) {
			if edge.To <= graph.NodeID(u) {
				continue
			}
			if _, down := e.inj.NodeDownUntil(edge.To, step); down {
				continue
			}
			f := e.inj.LinkFactor(graph.NodeID(u), edge.To, step)
			if f <= 0 {
				continue
			}
			g.AddEdge(graph.NodeID(u), edge.To, edge.Weight*f)
		}
	}
	e.epochs[ep] = g
	return g
}

// dist returns the surviving-subgraph distance between u and v at step,
// and false when the endpoints are partitioned for that whole epoch.
func (e *faultEnv) dist(step int64, u, v graph.NodeID) (int64, bool) {
	if u == v {
		return 0, true
	}
	d := e.graphAt(e.epoch(step)).Dist(u, v)
	if d == graph.Inf {
		return 0, false
	}
	return d, true
}

// nextBoundary returns the first fault boundary strictly after step, and
// false when none remains (the fault state is final from step on).
func (e *faultEnv) nextBoundary(step int64) (int64, bool) {
	i := sort.Search(len(e.bounds), func(i int) bool { return e.bounds[i] > step })
	if i == len(e.bounds) {
		return 0, false
	}
	return e.bounds[i], true
}

// RunFaulty replays schedule s on instance in while the injector breaks the
// model of Section 2.1, and repairs the execution instead of failing it:
//
//   - an object whose move is dropped in transit is re-dispatched with
//     bounded exponential backoff (BackoffBase/BackoffMax/MaxRetries);
//   - a move across downed links travels the shortest path of the
//     surviving subgraph, and waits for the next fault boundary when the
//     endpoints are partitioned outright;
//   - a crashed node defers its transaction's commit (and any dispatch
//     touching it) until the restart.
//
// The scheduled step of every transaction is kept as a floor — faults only
// ever delay commits — and each object still visits its requesters in
// schedule order, so single-copy semantics are preserved by construction
// and re-verified: the recovered commit times are cross-checked against
// schedule.Validate's Definition 1 invariants before returning.
//
// The returned Result measures the faulty execution (its Makespan and
// CommCost include recovery delays and detours; CommCost counts delivered
// moves only). The Report quantifies the recovery work and the makespan
// inflation against the fault-free baseline. With a nil or empty injector
// the run is exactly Run and the report is nil.
//
// Determinism: for a fixed (instance, schedule, injector, options) the
// Result, the Report, and the event trace are identical across runs — all
// fault decisions are seeded, never drawn from wall-clock or shared state.
func RunFaulty(in *tm.Instance, s *schedule.Schedule, opt FaultyOptions) (*Result, *faults.Report, error) {
	if opt.Inject == nil || opt.Inject.Empty() {
		res, err := Run(in, s, opt.Options)
		return res, nil, err
	}
	if err := checkInput(in, s); err != nil {
		return nil, nil, err
	}
	horizon := s.Makespan()
	limit := opt.MaxSteps
	if limit == 0 {
		// Faults legitimately push events past the planned makespan, so
		// the derived cap is a generous safety net (repeated backoff,
		// crash windows, partition waits) rather than the makespan: the
		// run must still terminate against an unrecoverable plan.
		limit = 16*horizon + lastBoundary(opt.Inject) + 4096
	} else if horizon > limit {
		return nil, nil, fmt.Errorf("sim: schedule makespan %d exceeds step limit %d", horizon, limit)
	}
	backoffBase := opt.BackoffBase
	if backoffBase <= 0 {
		backoffBase = defaultBackoffBase
	}
	backoffMax := opt.BackoffMax
	if backoffMax <= 0 {
		backoffMax = defaultBackoffMax
	}
	maxRetries := opt.MaxRetries
	if maxRetries <= 0 {
		maxRetries = defaultMaxRetries
	}

	env := newFaultEnv(in, opt.Inject)
	fr := &faults.Report{Faults: opt.Inject.Count(), BaselineMakespan: horizon}

	itineraries := make([][]tm.TxnID, in.NumObjects)
	for o := range itineraries {
		itineraries[o] = s.Order(in, tm.ObjectID(o))
	}

	res := &Result{ObjectDistance: make([]int64, in.NumObjects)}
	// Object state mirrors Run's, plus the per-object dispatch-attempt
	// counter that scripted MoveDrop faults key on.
	type objState struct {
		node    graph.NodeID
		arrives int64
		next    int
		seq     int
	}
	objs := make([]objState, in.NumObjects)

	dispatch := func(o int, from graph.NodeID, commitStep int64) error {
		it := itineraries[o]
		st := &objs[o]
		if st.next >= len(it) {
			return nil // no further requester; object rests
		}
		dest := in.Txns[it[st.next]].Node
		depart := commitStep
		backoff := backoffBase
		retries := 0
		var d int64
		for {
			if depart > limit {
				return fmt.Errorf("sim: object %d still undelivered to node %d at step %d, past the step limit %d",
					o, dest, depart, limit)
			}
			// A crashed endpoint blocks the move until its restart.
			deferred := false
			for _, v := range [2]graph.NodeID{from, dest} {
				if restart, down := opt.Inject.NodeDownUntil(v, depart); down {
					if restart >= faults.Forever {
						return fmt.Errorf("sim: object %d cannot move %d→%d: node %d never restarts", o, from, dest, v)
					}
					fr.DeferredMoves++
					depart = restart
					deferred = true
					break
				}
			}
			if deferred {
				continue
			}
			// Route on the surviving subgraph; a partition waits for the
			// next fault boundary to restore connectivity.
			var ok bool
			d, ok = env.dist(depart, from, dest)
			if !ok {
				nb, more := env.nextBoundary(depart)
				if !more {
					return fmt.Errorf("sim: object %d is permanently partitioned from node %d (no fault boundary after step %d)",
						o, dest, depart)
				}
				fr.BlockedWaits++
				depart = nb
				continue
			}
			seq := st.seq
			st.seq++
			if opt.Inject.DropMove(tm.ObjectID(o), seq, depart) {
				retries++
				if retries > maxRetries {
					return fmt.Errorf("sim: object %d moving %d→%d exceeded the retry budget (%d consecutive drops)",
						o, from, dest, maxRetries)
				}
				fr.Retries++
				fr.WastedComm += d
				if opt.Trace {
					res.Events = append(res.Events,
						Event{Step: depart, Kind: EventDrop, Object: tm.ObjectID(o), Txn: it[st.next], From: from, To: dest})
				}
				depart += backoff
				backoff *= 2
				if backoff > backoffMax {
					backoff = backoffMax
				}
				continue
			}
			break
		}
		st.node = dest
		st.arrives = depart + d
		if st.arrives > limit {
			return fmt.Errorf("sim: object %d departing node %d at step %d would reach node %d only at step %d, past the step limit %d",
				o, from, depart, dest, st.arrives, limit)
		}
		if base := in.Dist(from, dest); d > base {
			fr.Reroutes++
			fr.RerouteExtra += d - base
		}
		if opt.Trace && d > 0 {
			res.Events = append(res.Events,
				Event{Step: depart, Kind: EventDepart, Object: tm.ObjectID(o), Txn: it[st.next], From: from, To: dest},
				Event{Step: st.arrives, Kind: EventArrive, Object: tm.ObjectID(o), Txn: it[st.next], To: dest})
		}
		res.CommCost += d
		res.ObjectDistance[o] += d
		if d > 0 {
			res.Moves++
		}
		return nil
	}

	// Step 0: every object departs home toward its first requester.
	for o := 0; o < in.NumObjects; o++ {
		objs[o] = objState{node: in.Home[o], arrives: 0, next: 0}
		if err := dispatch(o, in.Home[o], 0); err != nil {
			return nil, nil, err
		}
	}

	// Commit transactions in scheduled order. Feasible schedules give the
	// users of every object strictly increasing times, so each object's
	// chain of requesters is processed in itinerary order and every
	// dependency (the previous holder's actual commit) is already
	// resolved when a transaction is reached — one pass suffices even
	// though faults shift actual commit steps past later-scheduled,
	// unrelated transactions.
	order := make([]tm.TxnID, in.NumTxns())
	for i := range order {
		order[i] = tm.TxnID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := s.Times[order[a]], s.Times[order[b]]
		if ta != tb {
			return ta < tb
		}
		return order[a] < order[b]
	})

	actual := make([]int64, in.NumTxns())
	for _, id := range order {
		txn := &in.Txns[id]
		step := s.Times[id] // the schedule is a floor: faults only delay
		for _, o := range txn.Objects {
			st := &objs[o]
			it := itineraries[o]
			if st.next >= len(it) || it[st.next] != id {
				return nil, nil, fmt.Errorf("sim: object %d is not headed to transaction %d (single-copy conflict)", o, id)
			}
			if st.node != txn.Node {
				return nil, nil, fmt.Errorf("sim: object %d is at/heading to node %d, not transaction %d's node %d",
					o, st.node, id, txn.Node)
			}
			if st.arrives > step {
				step = st.arrives // recovery delay, not an infeasibility
			}
		}
		// A crashed node defers the commit to its restart.
		for {
			restart, down := opt.Inject.NodeDownUntil(txn.Node, step)
			if !down {
				break
			}
			if restart >= faults.Forever {
				return nil, nil, fmt.Errorf("sim: transaction %d cannot commit: node %d never restarts", id, txn.Node)
			}
			step = restart
		}
		if step > limit {
			return nil, nil, fmt.Errorf("sim: transaction %d deferred to step %d, past the step limit %d", id, step, limit)
		}
		if step > s.Times[id] {
			fr.DeferredCommits++
			fr.DeferredSteps += step - s.Times[id]
			if opt.Trace {
				res.Events = append(res.Events, Event{Step: step, Kind: EventDefer, Txn: id, Node: txn.Node})
			}
		}
		actual[id] = step
		if opt.Trace {
			res.Events = append(res.Events, Event{Step: step, Kind: EventExecute, Txn: id, Node: txn.Node})
		}
		res.Executed++
		if step > res.Makespan {
			res.Makespan = step
		}
		for _, o := range txn.Objects {
			objs[o].next++
			if err := dispatch(int(o), txn.Node, step); err != nil {
				return nil, nil, err
			}
		}
	}

	// Cross-check: recovery must preserve single-copy semantics. Every
	// surviving-subgraph distance is at least the healthy shortest path,
	// so the recovered commit times must themselves form a feasible
	// schedule under Definition 1 — anything else is a simulator bug.
	recovered := &schedule.Schedule{Times: actual}
	if err := recovered.Validate(in); err != nil {
		return nil, nil, fmt.Errorf("sim: internal: recovered schedule violates Definition 1: %w", err)
	}

	fr.Makespan = res.Makespan
	if horizon > 0 {
		fr.Inflation = float64(fr.Makespan) / float64(horizon)
	}
	return res, fr, nil
}

// lastBoundary returns the injector's final finite boundary (0 when none).
func lastBoundary(inj faults.Injector) int64 {
	b := inj.Boundaries()
	if len(b) == 0 {
		return 0
	}
	return b[len(b)-1]
}

// MustRunFaulty is RunFaulty for tests and examples that treat failure as a
// programming error.
func MustRunFaulty(in *tm.Instance, s *schedule.Schedule, opt FaultyOptions) (*Result, *faults.Report) {
	res, fr, err := RunFaulty(in, s, opt)
	if err != nil {
		panic(err)
	}
	return res, fr
}
