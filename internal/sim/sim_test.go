package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

func tinyInstance() *tm.Instance {
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return tm.NewInstance(g, nil, 2, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0, 1}},
		{Node: 3, Objects: []tm.ObjectID{1}},
	}, []graph.NodeID{0, 3})
}

func TestRunFeasible(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	res, err := Run(in, s, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Makespan != 3 || res.Executed != 3 {
		t.Fatalf("res = %+v", res)
	}
	// obj0 travels 0→1 (1 hop), obj1 travels 3→1 (2 hops).
	if res.CommCost != 3 {
		t.Fatalf("CommCost = %d, want 3", res.CommCost)
	}
	if res.ObjectDistance[0] != 1 || res.ObjectDistance[1] != 2 {
		t.Fatalf("ObjectDistance = %v", res.ObjectDistance)
	}
}

func TestRunRejectsLateObject(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 1, 4}}
	if _, err := Run(in, s, Options{}); err == nil {
		t.Fatal("simulator accepted an object arriving after execution")
	}
}

func TestRunRejectsConflictTie(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{2, 2, 5}}
	if _, err := Run(in, s, Options{}); err == nil {
		t.Fatal("simulator accepted two simultaneous holders of one object")
	}
}

func TestRunRejectsZeroTime(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{0, 2, 2}}
	if _, err := Run(in, s, Options{}); err == nil {
		t.Fatal("simulator accepted step 0")
	}
}

func TestRunRejectsWrongLength(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	if _, err := Run(in, s, Options{}); err == nil {
		t.Fatal("simulator accepted wrong-length schedule")
	}
}

func TestRunMaxSteps(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	if _, err := Run(in, s, Options{MaxSteps: 2}); err == nil {
		t.Fatal("step limit not enforced")
	}
}

// TestRunMaxStepsEnforcedOnArrivals: the cap binds actual event steps,
// not just the upfront makespan comparison. Times {1,2,1} keep the
// makespan within MaxSteps=2, but committing txn 2 forwards object 1 from
// node 3 toward node 1 (distance 2, arriving at step 3) — past the cap.
func TestRunMaxStepsEnforcedOnArrivals(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 2, 1}}
	_, err := Run(in, s, Options{MaxSteps: 2})
	if err == nil {
		t.Fatal("arrival past the step limit accepted")
	}
	if !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("error %q does not name the step limit", err)
	}
}

// TestRunMaxStepsDerivedFromMakespan: with MaxSteps 0 the cap defaults to
// the schedule's makespan, so a movement that cannot complete by then is
// rejected with the step-limit error (triggered branch), while feasible
// schedules — whose events all land at or before the makespan — pass
// under the derived cap (non-triggered branch).
func TestRunMaxStepsDerivedFromMakespan(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	in := tm.NewInstance(g, nil, 1, []tm.Txn{
		{Node: 3, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
	// Makespan 1, but the object needs 3 steps from its home: the derived
	// cap rejects the dispatch at step 0.
	_, err := Run(in, &schedule.Schedule{Times: []int64{1}}, Options{})
	if err == nil {
		t.Fatal("derived cap not enforced")
	}
	if !strings.Contains(err.Error(), "step limit 1") {
		t.Fatalf("error %q does not carry the derived cap", err)
	}

	// Non-triggered: a feasible schedule runs to completion under both the
	// derived cap and an explicit cap equal to its makespan.
	feasible := &schedule.Schedule{Times: []int64{3}}
	for _, opt := range []Options{{}, {MaxSteps: 3}} {
		res, err := Run(in, feasible, opt)
		if err != nil {
			t.Fatalf("feasible schedule rejected under cap %d: %v", opt.MaxSteps, err)
		}
		if res.Makespan != 3 || res.Executed != 1 {
			t.Fatalf("res = %+v", res)
		}
	}
}

func TestTraceEvents(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	res, err := Run(in, s, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var execs, departs, arrives int
	for _, e := range res.Events {
		switch e.Kind {
		case EventExecute:
			execs++
		case EventDepart:
			departs++
		case EventArrive:
			arrives++
		}
		if e.String() == "" {
			t.Fatal("empty event string")
		}
	}
	if execs != 3 {
		t.Fatalf("trace has %d executes, want 3", execs)
	}
	if departs != arrives || departs != 2 {
		t.Fatalf("trace has %d departs / %d arrives, want 2/2", departs, arrives)
	}
	// Event strings mention the object for transfers.
	found := false
	for _, e := range res.Events {
		if e.Kind == EventDepart && strings.Contains(e.String(), "obj") {
			found = true
		}
	}
	if !found {
		t.Fatal("no depart event mentions an object")
	}
}

func TestMustRunPanicsOnInfeasible(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 1, 4}}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic")
		}
	}()
	MustRun(in, s, Options{})
}

// randomInstance and randomTimes feed the agreement property.
func randomInstance(r *rand.Rand) *tm.Instance {
	n := 3 + r.Intn(16)
	w := 2 + r.Intn(6)
	k := 1 + r.Intn(minInt(w, 3))
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(3))
	}
	return tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
}

// TestSimulatorAgreesWithValidateProperty is the keystone invariant: the
// step-by-step simulator and the algebraic feasibility rules accept
// exactly the same schedules. Random times are drawn in a small range so
// both feasible and infeasible schedules occur.
func TestSimulatorAgreesWithValidateProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		s := schedule.New(in.NumTxns())
		horizon := int64(2*in.NumTxns() + 4)
		for i := range s.Times {
			s.Times[i] = 1 + r.Int63n(horizon)
		}
		algebraic := s.Validate(in) == nil
		_, err := Run(in, s, Options{})
		simulated := err == nil
		return algebraic == simulated
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatorCommCostMatchesSchedule cross-checks the two independent
// communication-cost computations on feasible schedules.
func TestSimulatorCommCostMatchesSchedule(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		s := feasibleSchedule(r, in)
		res, err := Run(in, s, Options{})
		if err != nil {
			return false
		}
		return res.CommCost == s.CommCost(in) && res.Makespan == s.Makespan()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func feasibleSchedule(r *rand.Rand, in *tm.Instance) *schedule.Schedule {
	order := r.Perm(in.NumTxns())
	relT := make([]int64, in.NumObjects)
	relN := make([]graph.NodeID, in.NumObjects)
	copy(relN, in.Home)
	s := schedule.New(in.NumTxns())
	for _, i := range order {
		txn := &in.Txns[i]
		var t int64 = 1
		for _, o := range txn.Objects {
			if need := relT[o] + in.Dist(relN[o], txn.Node); need > t {
				t = need
			}
		}
		// Random extra slack keeps schedules diverse but feasible.
		t += r.Int63n(3)
		s.Times[i] = t
		for _, o := range txn.Objects {
			relT[o] = t
			relN[o] = txn.Node
		}
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEventString covers every event kind, including the fallback for an
// unknown kind (a regression guard: EventExecute used to fall through to
// the default formatting).
func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Step: 3, Kind: EventDepart, Object: 2, Txn: 5, From: 1, To: 4},
			"t=3 obj2 departs 1→4 (for txn 5)"},
		{Event{Step: 7, Kind: EventArrive, Object: 2, Txn: 5, To: 4},
			"t=7 obj2 arrives at 4 (for txn 5)"},
		{Event{Step: 9, Kind: EventExecute, Txn: 5, Node: 4},
			"t=9 txn 5 executes at node 4"},
		{Event{Step: 1, Kind: EventKind(99)},
			"t=1 unknown event kind 99"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.ev, got, c.want)
		}
	}
}
