package sim

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dtmsched/internal/faults"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// twoNodeInstance: one transaction at node 1 requesting the object homed at
// node 0, one unit link between them.
func twoNodeInstance() *tm.Instance {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	return tm.NewInstance(g, nil, 1, []tm.Txn{
		{Node: 1, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
}

// ringInstance: a 4-cycle with one transaction at node 1 requesting the
// object homed at node 0; the direct link can be cut to force the 3-hop
// detour.
func ringInstance() *tm.Instance {
	g := graph.New(4)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	g.AddUnitEdge(2, 3)
	g.AddUnitEdge(3, 0)
	return tm.NewInstance(g, nil, 1, []tm.Txn{
		{Node: 1, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
}

func TestRunFaultyNilInjectorMatchesRun(t *testing.T) {
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	want, err := Run(in, s, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, inj := range map[string]faults.Injector{
		"nil":          nil,
		"empty-plan":   faults.MustFromFaults(),
		"nil-plan":     (*faults.Plan)(nil),
		"zero-compose": faults.Compose(nil, faults.MustFromFaults()),
	} {
		got, fr, err := RunFaulty(in, s, FaultyOptions{Options: Options{Trace: true}, Inject: inj})
		if err != nil {
			t.Fatalf("%s: RunFaulty: %v", name, err)
		}
		if fr != nil {
			t.Errorf("%s: empty injector produced a report: %v", name, fr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: RunFaulty result differs from Run:\n%+v\nvs\n%+v", name, got, want)
		}
	}
}

func TestRunFaultyHarmlessScriptMatchesRun(t *testing.T) {
	// A scripted injector whose faults never intersect the execution must
	// be event-identical to Run — same trace, same counters — with an
	// all-zero recovery report.
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	want := MustRun(in, s, Options{Trace: true})
	inj := faults.MustFromFaults(
		faults.Fault{Kind: faults.LinkDown, From: 100, To: 110, U: 2, V: 3},
		faults.Fault{Kind: faults.NodeCrash, From: 50, To: 60, Node: 2},
		faults.Fault{Kind: faults.MoveDrop, Object: 0, Seq: 9}, // object 0 never dispatches 10 times
	)
	got, fr, err := RunFaulty(in, s, FaultyOptions{Options: Options{Trace: true}, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, want.Events) {
		t.Errorf("events differ:\n%v\nvs\n%v", got.Events, want.Events)
	}
	if got.Makespan != want.Makespan || got.CommCost != want.CommCost || got.Moves != want.Moves {
		t.Errorf("counters differ: %+v vs %+v", got, want)
	}
	if fr == nil {
		t.Fatal("non-empty injector must produce a report")
	}
	if fr.Retries != 0 || fr.Reroutes != 0 || fr.DeferredCommits != 0 || fr.BlockedWaits != 0 || fr.DeferredMoves != 0 {
		t.Errorf("harmless plan recorded recovery work: %v", fr)
	}
	if fr.Inflation != 1.0 || fr.Makespan != want.Makespan || fr.BaselineMakespan != want.Makespan {
		t.Errorf("harmless plan inflated the makespan: %v", fr)
	}
}

func TestRunFaultyScriptedDropBacksOff(t *testing.T) {
	// Drop obj1's dispatch from txn2 toward txn1 (its second attempt).
	// The re-dispatch departs one backoff step later, so txn1's commit
	// slips from 3 to 4.
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.MoveDrop, Object: 1, Seq: 1})
	res, fr, err := RunFaulty(in, s, FaultyOptions{Options: Options{Trace: true}, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 || res.Executed != 3 {
		t.Fatalf("makespan = %d, executed = %d; want 4, 3", res.Makespan, res.Executed)
	}
	if fr.Retries != 1 || fr.WastedComm != 2 || fr.DeferredCommits != 1 || fr.DeferredSteps != 1 {
		t.Fatalf("report = %v; want 1 retry, 2 wasted, 1 deferred commit by 1 step", fr)
	}
	if fr.Inflation != 4.0/3.0 {
		t.Fatalf("inflation = %v, want 4/3", fr.Inflation)
	}
	// CommCost counts only delivered moves: 1 (obj0) + 2 (obj1 retry).
	if res.CommCost != 3 {
		t.Fatalf("CommCost = %d, want 3 (wasted distance excluded)", res.CommCost)
	}
	var drops, defers int
	for _, ev := range res.Events {
		switch ev.Kind {
		case EventDrop:
			drops++
			if ev.Object != 1 || ev.Step != 1 {
				t.Errorf("unexpected drop event %v", ev)
			}
		case EventDefer:
			defers++
		}
	}
	if drops != 1 || defers != 1 {
		t.Errorf("trace has %d drops, %d defers; want 1, 1", drops, defers)
	}
}

func TestRunFaultyCrashDefersCommit(t *testing.T) {
	// Node 1 is down over [2, 6): txn1 (scheduled at 3) commits at the
	// restart.
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.NodeCrash, From: 2, To: 6, Node: 1})
	res, fr, err := RunFaulty(in, s, FaultyOptions{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Fatalf("makespan = %d, want 6 (deferred to restart)", res.Makespan)
	}
	if fr.DeferredCommits != 1 || fr.DeferredSteps != 3 {
		t.Fatalf("report = %v; want 1 deferred commit by 3 steps", fr)
	}
	if fr.Inflation != 2.0 {
		t.Fatalf("inflation = %v, want 2.0", fr.Inflation)
	}
}

func TestRunFaultyLinkDownReroutes(t *testing.T) {
	// Cutting the direct 0–1 link forces the object around the ring:
	// distance 3 instead of 1, commit at 3.
	in := ringInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.LinkDown, From: 0, To: 5, U: 0, V: 1})
	res, fr, err := RunFaulty(in, s, FaultyOptions{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3 || res.CommCost != 3 {
		t.Fatalf("makespan = %d, commcost = %d; want 3, 3", res.Makespan, res.CommCost)
	}
	if fr.Reroutes != 1 || fr.RerouteExtra != 2 {
		t.Fatalf("report = %v; want 1 reroute with 2 extra steps", fr)
	}
}

func TestRunFaultyLinkSlowStretchesHop(t *testing.T) {
	// Slowing the only link by 4× makes the 1-step hop take 4 steps.
	in := twoNodeInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.LinkSlow, From: 0, To: 10, U: 0, V: 1, Factor: 4})
	res, fr, err := RunFaulty(in, s, FaultyOptions{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Fatalf("makespan = %d, want 4", res.Makespan)
	}
	if fr.Reroutes != 1 || fr.RerouteExtra != 3 {
		t.Fatalf("report = %v; want the slowed hop accounted as 3 extra steps", fr)
	}
}

func TestRunFaultyPartitionWaitsForBoundary(t *testing.T) {
	// The only link is down over [0, 5): the dispatch waits out the
	// partition and delivers at 6.
	in := twoNodeInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.LinkDown, From: 0, To: 5, U: 0, V: 1})
	res, fr, err := RunFaulty(in, s, FaultyOptions{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Fatalf("makespan = %d, want 6 (departs at the boundary)", res.Makespan)
	}
	if fr.BlockedWaits != 1 {
		t.Fatalf("report = %v; want 1 blocked wait", fr)
	}
}

func TestRunFaultyPermanentPartitionErrors(t *testing.T) {
	in := twoNodeInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.LinkDown, From: 0, To: faults.Forever, U: 0, V: 1})
	_, _, err := RunFaulty(in, s, FaultyOptions{Inject: inj})
	if err == nil || !strings.Contains(err.Error(), "permanently partitioned") {
		t.Fatalf("err = %v, want permanent-partition error", err)
	}
}

func TestRunFaultyPermanentCrashErrors(t *testing.T) {
	in := twoNodeInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	inj := faults.MustFromFaults(faults.Fault{Kind: faults.NodeCrash, From: 0, To: faults.Forever, Node: 1})
	_, _, err := RunFaulty(in, s, FaultyOptions{Inject: inj})
	if err == nil || !strings.Contains(err.Error(), "never restarts") {
		t.Fatalf("err = %v, want permanent-crash error", err)
	}
}

func TestRunFaultyRetryBudget(t *testing.T) {
	// A drop rate of 1 loses every dispatch; the bounded retry policy
	// must abort instead of spinning.
	in := twoNodeInstance()
	s := &schedule.Schedule{Times: []int64{1}}
	inj := faults.MustNew(faults.Config{Seed: 1, DropRate: 1}, in.G)
	_, _, err := RunFaulty(in, s, FaultyOptions{Inject: inj, MaxRetries: 4})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want retry-budget error", err)
	}
}

// TestRunRejectsOutOfRangeObject and TestRunRejectsDuplicateObject cover
// the hardened input validation: hand-built instances that bypass
// tm.NewInstance used to hit the simulator's dense object state as an
// index panic.
func TestRunRejectsOutOfRangeObject(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := &tm.Instance{G: g, Metric: g, NumObjects: 1,
		Txns: []tm.Txn{{ID: 0, Node: 1, Objects: []tm.ObjectID{5}}},
		Home: []graph.NodeID{0}}
	s := &schedule.Schedule{Times: []int64{1}}
	if _, err := Run(in, s, Options{}); err == nil || !strings.Contains(err.Error(), "outside [0,1)") {
		t.Fatalf("err = %v, want out-of-range object error", err)
	}
}

func TestRunRejectsDuplicateObject(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := &tm.Instance{G: g, Metric: g, NumObjects: 2,
		Txns: []tm.Txn{{ID: 0, Node: 1, Objects: []tm.ObjectID{0, 0}}},
		Home: []graph.NodeID{0, 0}}
	s := &schedule.Schedule{Times: []int64{1}}
	if _, err := Run(in, s, Options{}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate-object error", err)
	}
	in.Txns[0].Objects = []tm.ObjectID{1, 0}
	if _, err := Run(in, s, Options{}); err == nil || !strings.Contains(err.Error(), "unsorted") {
		t.Fatalf("err = %v, want unsorted-objects error", err)
	}
}

func TestRunFaultyEmptyPlanZeroAlloc(t *testing.T) {
	// The fault machinery must cost nothing when unused: RunFaulty with a
	// nil or empty injector allocates exactly what Run allocates.
	in := tinyInstance()
	s := &schedule.Schedule{Times: []int64{1, 3, 1}}
	in.PrecomputeDist(1) // steady-state distance oracle for both paths
	MustRun(in, s, Options{})
	empty := faults.MustFromFaults()
	base := testing.AllocsPerRun(200, func() { MustRun(in, s, Options{}) })
	for name, inj := range map[string]faults.Injector{"nil": nil, "empty": empty} {
		got := testing.AllocsPerRun(200, func() { MustRunFaulty(in, s, FaultyOptions{Inject: inj}) })
		if got > base {
			t.Errorf("%s injector: RunFaulty allocates %.1f/op vs Run's %.1f/op; the empty path must add zero", name, got, base)
		}
	}
}

// serialSchedule builds the trivially feasible schedule that commits
// transaction i at step (i+1)·n: every hop of every object fits in the n
// steps between consecutive commits on a unit-weight graph of n nodes.
func serialSchedule(in *tm.Instance) *schedule.Schedule {
	n := int64(in.G.NumNodes())
	s := schedule.New(in.NumTxns())
	for i := range s.Times {
		s.Times[i] = int64(i+1) * n
	}
	return s
}

func TestFaultMatrixSmoke(t *testing.T) {
	// The CI fault matrix: 3 rates × 2 topologies. Every combination must
	// recover (all transactions commit), keep inflation ≥ 1, and be fully
	// deterministic — two runs of the same plan produce byte-identical
	// reports. ci.sh runs this under -race.
	topos := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid-6", topology.NewSquareGrid(6).Graph()},
		{"clique-16", topology.NewClique(16).Graph()},
	}
	rates := []float64{0.02, 0.05, 0.10}
	for _, tp := range topos {
		for _, rate := range rates {
			t.Run(fmt.Sprintf("%s/rate=%g", tp.name, rate), func(t *testing.T) {
				rng := xrand.NewDerived(99, "faultmatrix", tp.name, fmt.Sprint(rate))
				in := tm.UniformK(8, 2).Generate(rng, tp.g, nil, tp.g.Nodes(), tm.PlaceAtRandomUser)
				s := serialSchedule(in)
				if err := s.Validate(in); err != nil {
					t.Fatalf("serial schedule infeasible: %v", err)
				}
				plan := faults.MustNew(faults.Config{
					Seed: 7, Horizon: s.Makespan(),
					LinkDownRate: rate, LinkSlowRate: rate, CrashRate: rate / 2, DropRate: rate / 2,
				}, tp.g)
				run := func() (*Result, *faults.Report) {
					res, fr, err := RunFaulty(in, s, FaultyOptions{Options: Options{Trace: true}, Inject: plan})
					if err != nil {
						t.Fatalf("RunFaulty: %v", err)
					}
					return res, fr
				}
				resA, frA := run()
				resB, frB := run()
				if resA.Executed != in.NumTxns() {
					t.Fatalf("executed %d of %d transactions", resA.Executed, in.NumTxns())
				}
				if frA != nil && frA.Inflation < 1.0 {
					t.Fatalf("inflation %v < 1", frA.Inflation)
				}
				ja, _ := json.Marshal(frA)
				jb, _ := json.Marshal(frB)
				if string(ja) != string(jb) {
					t.Fatalf("fault report is nondeterministic:\n%s\nvs\n%s", ja, jb)
				}
				if !reflect.DeepEqual(resA.Events, resB.Events) {
					t.Fatal("event trace is nondeterministic")
				}
			})
		}
	}
}
