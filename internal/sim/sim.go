// Package sim executes a schedule step by step under the synchronous
// data-flow model of Section 2.1, independently of the algebraic
// feasibility rules in package schedule. At every discrete step each node
// receives objects, executes a transaction whose objects have all arrived,
// and forwards objects toward their next requesters along shortest paths.
//
// The simulator is the ground truth for Definition 1: a schedule is
// feasible iff Run completes without error, and the reported makespan and
// communication cost are measured from the actual object movements. Tests
// cross-check sim.Run against schedule.Validate on every algorithm.
package sim

import (
	"fmt"
	"sort"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// EventKind distinguishes trace events.
type EventKind int

// Event kinds.
const (
	// EventDepart: an object leaves a node toward its next requester.
	EventDepart EventKind = iota
	// EventArrive: an object reaches a requester's node.
	EventArrive
	// EventExecute: a transaction executes and commits.
	EventExecute
	// EventDrop: a dispatched object is lost in transit and will be
	// re-dispatched after backoff (RunFaulty only).
	EventDrop
	// EventDefer: a transaction commits later than its scheduled step
	// because of faults (RunFaulty only).
	EventDefer
)

// Event is one trace record.
type Event struct {
	Step   int64
	Kind   EventKind
	Object tm.ObjectID  // valid for depart/arrive
	Txn    tm.TxnID     // valid for execute; destination txn for depart/arrive
	From   graph.NodeID // depart: source node
	To     graph.NodeID // depart/arrive: destination node
	Node   graph.NodeID // execute: the executing node
}

// String renders the event for logs. Every defined kind has an explicit
// case; undefined kinds render visibly rather than masquerading as an
// execution, so trace output never silently mislabels an event.
func (e Event) String() string {
	switch e.Kind {
	case EventDepart:
		return fmt.Sprintf("t=%d obj%d departs %d→%d (for txn %d)", e.Step, e.Object, e.From, e.To, e.Txn)
	case EventArrive:
		return fmt.Sprintf("t=%d obj%d arrives at %d (for txn %d)", e.Step, e.Object, e.To, e.Txn)
	case EventExecute:
		return fmt.Sprintf("t=%d txn %d executes at node %d", e.Step, e.Txn, e.Node)
	case EventDrop:
		return fmt.Sprintf("t=%d obj%d dropped in transit %d→%d (for txn %d)", e.Step, e.Object, e.From, e.To, e.Txn)
	case EventDefer:
		return fmt.Sprintf("t=%d txn %d commits deferred at node %d", e.Step, e.Txn, e.Node)
	default:
		return fmt.Sprintf("t=%d unknown event kind %d", e.Step, int(e.Kind))
	}
}

// Result summarizes a simulation run.
type Result struct {
	// Makespan is the step at which the last transaction committed.
	Makespan int64
	// CommCost is the total distance traveled by all objects.
	CommCost int64
	// Moves counts object dispatches that traveled a nonzero distance
	// (one per hop sequence between consecutive holders).
	Moves int64
	// Executed counts committed transactions (equals the instance's
	// transaction count on success).
	Executed int
	// ObjectDistance[o] is the distance object o traveled.
	ObjectDistance []int64
	// Events is the trace, present only when requested.
	Events []Event
}

// Options configures a run.
type Options struct {
	// Trace records depart/arrive/execute events.
	Trace bool
	// MaxSteps caps the step of every simulated event. A schedule whose
	// makespan already exceeds the cap is rejected up front; during
	// execution, any object movement that would arrive past the cap
	// aborts the run (commit steps are bounded by the makespan, so the
	// upfront check covers them). 0 derives the cap from the schedule's
	// makespan, which every feasible schedule satisfies: an object is
	// only ever dispatched toward a transaction, and on feasible input
	// it arrives no later than that transaction executes.
	MaxSteps int64
}

// Run simulates schedule s on instance in and verifies that every
// transaction's objects are physically present when it executes. It
// returns an error describing the first violation for infeasible
// schedules.
func Run(in *tm.Instance, s *schedule.Schedule, opt Options) (*Result, error) {
	if err := checkInput(in, s); err != nil {
		return nil, err
	}
	horizon := s.Makespan()
	if opt.MaxSteps > 0 && horizon > opt.MaxSteps {
		return nil, fmt.Errorf("sim: schedule makespan %d exceeds step limit %d", horizon, opt.MaxSteps)
	}
	limit := opt.MaxSteps
	if limit == 0 {
		limit = horizon // feasible schedules never produce an event past the makespan
	}

	// Per-object itinerary: the sequence of requesters in execution
	// order. itinerary[o][i] is the ith transaction to receive object o.
	itineraries := make([][]tm.TxnID, in.NumObjects)
	for o := range itineraries {
		itineraries[o] = s.Order(in, tm.ObjectID(o))
	}

	res := &Result{ObjectDistance: make([]int64, in.NumObjects)}
	// Object state: where it is (or will arrive), and the index of the
	// next itinerary stop it has been dispatched toward.
	type objState struct {
		node    graph.NodeID // current or destination node
		arrives int64        // step at which it is present at node
		next    int          // itinerary index the object is heading to / waiting at
	}
	objs := make([]objState, in.NumObjects)

	dispatch := func(o int, from graph.NodeID, departStep int64) error {
		it := itineraries[o]
		st := &objs[o]
		if st.next >= len(it) {
			return nil // no further requester; object rests
		}
		dest := in.Txns[it[st.next]].Node
		d := in.Dist(from, dest)
		st.node = dest
		st.arrives = departStep + d
		if st.arrives > limit {
			return fmt.Errorf("sim: object %d departing node %d at step %d would reach node %d only at step %d, past the step limit %d",
				o, from, departStep, dest, st.arrives, limit)
		}
		if opt.Trace && d > 0 {
			res.Events = append(res.Events,
				Event{Step: departStep, Kind: EventDepart, Object: tm.ObjectID(o), Txn: it[st.next], From: from, To: dest},
				Event{Step: st.arrives, Kind: EventArrive, Object: tm.ObjectID(o), Txn: it[st.next], To: dest})
		}
		res.CommCost += d
		res.ObjectDistance[o] += d
		if d > 0 {
			res.Moves++
		}
		return nil
	}

	// Step 0: every object departs home toward its first requester.
	for o := 0; o < in.NumObjects; o++ {
		objs[o] = objState{node: in.Home[o], arrives: 0, next: 0}
		if err := dispatch(o, in.Home[o], 0); err != nil {
			return nil, err
		}
	}

	// Execute transactions in time order, verifying physical presence.
	order := make([]tm.TxnID, in.NumTxns())
	for i := range order {
		order[i] = tm.TxnID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := s.Times[order[a]], s.Times[order[b]]
		if ta != tb {
			return ta < tb
		}
		return order[a] < order[b]
	})

	for _, id := range order {
		txn := &in.Txns[id]
		step := s.Times[id]
		for _, o := range txn.Objects {
			st := &objs[o]
			it := itineraries[o]
			if st.next >= len(it) || it[st.next] != id {
				return nil, fmt.Errorf("sim: object %d is not headed to transaction %d at step %d (single-copy conflict: another requester executes concurrently or later-ordered)",
					o, id, step)
			}
			if st.node != txn.Node {
				return nil, fmt.Errorf("sim: object %d is at/heading to node %d, not transaction %d's node %d",
					o, st.node, id, txn.Node)
			}
			if st.arrives > step {
				return nil, fmt.Errorf("sim: object %d arrives at node %d only at step %d, but transaction %d executes at step %d",
					o, txn.Node, st.arrives, id, step)
			}
		}
		// Commit: forward each object to its next requester.
		if opt.Trace {
			res.Events = append(res.Events, Event{Step: step, Kind: EventExecute, Txn: id, Node: txn.Node})
		}
		res.Executed++
		if step > res.Makespan {
			res.Makespan = step
		}
		for _, o := range txn.Objects {
			objs[o].next++
			if err := dispatch(int(o), txn.Node, step); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// checkInput validates the (instance, schedule) pair before simulation:
// schedule shape (one time ≥ 1 per transaction) and per-transaction object
// lists (every requested object in [0, NumObjects), no duplicates). The
// object checks guard the simulator's dense per-object state against
// hand-built instances that bypassed tm.NewInstance — an out-of-range or
// duplicated request previously hit the object-state index as a panic.
// Allocation-free: RunFaulty's empty-plan path must add nothing over Run.
func checkInput(in *tm.Instance, s *schedule.Schedule) error {
	if len(s.Times) != in.NumTxns() {
		return fmt.Errorf("sim: schedule has %d times for %d transactions", len(s.Times), in.NumTxns())
	}
	for i, t := range s.Times {
		if t < 1 {
			return fmt.Errorf("sim: transaction %d scheduled at step %d < 1", i, t)
		}
	}
	for i := range in.Txns {
		objs := in.Txns[i].Objects
		for j, o := range objs {
			if o < 0 || int(o) >= in.NumObjects {
				return fmt.Errorf("sim: transaction %d requests object %d outside [0,%d)", i, o, in.NumObjects)
			}
			// Instance object lists are sorted strictly increasing
			// (tm.NewInstance enforces it); any duplicate shows up either
			// as an adjacent equal pair or as an inversion.
			if j > 0 && objs[j-1] == o {
				return fmt.Errorf("sim: transaction %d requests object %d twice", i, o)
			}
			if j > 0 && objs[j-1] > o {
				return fmt.Errorf("sim: transaction %d has unsorted objects (%d before %d); duplicates cannot be ruled out", i, objs[j-1], o)
			}
		}
	}
	return nil
}

// MustRun is Run for tests and examples that treat infeasibility as a
// programming error.
func MustRun(in *tm.Instance, s *schedule.Schedule, opt Options) *Result {
	res, err := Run(in, s, opt)
	if err != nil {
		panic(err)
	}
	return res
}
