package online

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/lower"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func cliqueInstance(n, w, k int, seed int64) *tm.Instance {
	topo := topology.NewClique(n)
	return tm.UniformK(w, k).Generate(xrand.New(seed), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
}

func TestBatchRunCompletes(t *testing.T) {
	in := cliqueInstance(24, 8, 2, 1)
	for _, pol := range []Policy{FIFO{}, Nearest{}, Random{Rng: xrand.New(2)}} {
		res, err := Run(in, BatchArrivals(in), pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Makespan < 1 {
			t.Fatalf("%s: makespan %d", pol.Name(), res.Makespan)
		}
		for i, c := range res.CommitTime {
			if c < 1 {
				t.Fatalf("%s: transaction %d never committed", pol.Name(), i)
			}
		}
		// Online execution can never beat the offline certified bound.
		lb := lower.Compute(in)
		if res.Makespan < lb.Value {
			t.Fatalf("%s: makespan %d below lower bound %d", pol.Name(), res.Makespan, lb.Value)
		}
	}
}

func TestCommitRespectsArrival(t *testing.T) {
	in := cliqueInstance(12, 6, 2, 3)
	arr := BatchArrivals(in)
	arr[5].At = 40
	res, err := Run(in, arr, FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitTime[5] <= 40 {
		t.Fatalf("transaction 5 committed at %d before arriving at 40", res.CommitTime[5])
	}
	if res.MaxResponse < 1 {
		t.Fatalf("MaxResponse = %d", res.MaxResponse)
	}
}

func TestOrderedAcquisitionNoDeadlockProperty(t *testing.T) {
	// High-contention random instances: the executor must always drain.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(24)
		w := 2 + r.Intn(5) // few objects = heavy conflicts
		k := 1 + r.Intn(minInt(w, 3))
		in := cliqueInstance(n, w, k, seed)
		pol := Policy(FIFO{})
		switch seed % 3 {
		case 1:
			pol = Nearest{}
		case 2:
			pol = Random{Rng: rand.New(rand.NewSource(seed + 7))}
		}
		res, err := Run(in, BatchArrivals(in), pol)
		if err != nil {
			return false
		}
		for _, c := range res.CommitTime {
			if c < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectNeverAtTwoPlaces(t *testing.T) {
	// Single hot object: commits must be totally ordered with gaps ≥ 1.
	in := cliqueInstance(16, 1, 1, 4)
	res, err := Run(in, BatchArrivals(in), Nearest{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, c := range res.CommitTime {
		if seen[c] {
			t.Fatalf("two holders of the single object committed at step %d", c)
		}
		seen[c] = true
	}
}

func TestRunErrors(t *testing.T) {
	in := cliqueInstance(4, 2, 1, 5)
	if _, err := Run(in, nil, FIFO{}); err == nil {
		t.Fatal("accepted missing arrivals")
	}
	arr := BatchArrivals(in)
	arr[0].Txn = 99
	if _, err := Run(in, arr, FIFO{}); err == nil {
		t.Fatal("accepted unknown transaction")
	}
	arr = BatchArrivals(in)
	arr[1] = arr[0]
	if _, err := Run(in, arr, FIFO{}); err == nil {
		t.Fatal("accepted duplicate arrival")
	}
	arr = BatchArrivals(in)
	arr[0].At = -1
	if _, err := Run(in, arr, FIFO{}); err == nil {
		t.Fatal("accepted negative arrival")
	}
}

func TestPoissonArrivalsMonotone(t *testing.T) {
	in := cliqueInstance(32, 8, 2, 6)
	arr := PoissonArrivals(xrand.New(1), in, 0.5)
	if len(arr) != 32 {
		t.Fatalf("arrivals = %d", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("arrival times decreasing")
		}
	}
	res, err := Run(in, arr, FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < arr[len(arr)-1].At {
		t.Fatal("makespan before last arrival")
	}
}

func TestPoissonPanicsOnBadRate(t *testing.T) {
	in := cliqueInstance(4, 2, 1, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PoissonArrivals(xrand.New(1), in, 0)
}

func TestNearestReducesCommCost(t *testing.T) {
	// On a long line with a single shared object, Nearest should travel
	// far less than FIFO over random arrival order, and never more than
	// the worst case.
	topo := topology.NewLine(64)
	in := tm.SingleObject().Generate(xrand.New(8), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	near, err := Run(in, BatchArrivals(in), Nearest{})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Run(in, BatchArrivals(in), FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	if near.CommCost > fifo.CommCost {
		t.Fatalf("nearest comm %d > fifo comm %d", near.CommCost, fifo.CommCost)
	}
	// Nearest on a line with batch arrivals sweeps to the closer end and
	// back across: an optimal walk, which the certified bracket pins
	// within its factor-2 MST bounds.
	lb := lower.Compute(in)
	if near.CommCost < lb.MaxWalkLB || near.CommCost > lb.MaxWalkUB {
		t.Fatalf("nearest comm %d outside walk bracket [%d,%d]", near.CommCost, lb.MaxWalkLB, lb.MaxWalkUB)
	}
}

func TestPolicyNames(t *testing.T) {
	if (FIFO{}).Name() != "online/fifo" || (Nearest{}).Name() != "online/nearest" ||
		(Random{}).Name() != "online/random" {
		t.Fatal("policy names wrong")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPoissonRealizedRate(t *testing.T) {
	// The sampler's gaps must have mean 1/min(rate,1): a long arrival
	// stream realizes its nominal injection rate within a few percent
	// (deterministic under the fixed seed). The pre-fix sampler had mean
	// gap (1−p)/p, overshooting the rate — e.g. realized 1.0 at nominal
	// 0.5.
	topo := topology.NewLine(4096)
	in := tm.UniformK(8, 2).Generate(xrand.New(11), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	for _, rate := range []float64{0.1, 0.5, 0.9, 2.0} {
		arr := PoissonArrivals(xrand.New(42), in, rate)
		last := arr[len(arr)-1].At
		if last <= 0 {
			t.Fatalf("rate %v: last arrival at %d", rate, last)
		}
		realized := float64(len(arr)-1) / float64(last)
		want := rate
		if want > 1 {
			want = 1 // rates ≥ 1 clamp to one arrival per step
		}
		if rel := realized/want - 1; rel < -0.05 || rel > 0.05 {
			t.Fatalf("rate %v: realized %.4f txn/step (last arrival %d), off by %+.1f%%",
				rate, realized, last, rel*100)
		}
	}
}

func TestRandomNilRngError(t *testing.T) {
	in := cliqueInstance(6, 3, 1, 10)
	if _, err := Run(in, BatchArrivals(in), Random{}); err == nil {
		t.Fatal("Random{Rng: nil} accepted; want a clear error, not a Pick panic")
	}
	if _, err := Run(in, BatchArrivals(in), (*Random)(nil)); err == nil {
		t.Fatal("(*Random)(nil) accepted")
	}
	if _, err := Run(in, BatchArrivals(in), &Random{}); err == nil {
		t.Fatal("&Random{Rng: nil} accepted")
	}
}

func TestRunSteadyStateAllocs(t *testing.T) {
	// Run's allocations must not scale with the number of simulated
	// steps: stretching the idle tail by 5000 ticks (one straggler
	// arriving late) may not cost more than a handful of extra
	// allocations over the short run.
	in := cliqueInstance(16, 8, 2, 9)
	measure := func(lastAt int64) float64 {
		arr := BatchArrivals(in)
		arr[15].At = lastAt
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(in, arr, FIFO{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := measure(100), measure(5100)
	if long > short+8 {
		t.Fatalf("allocations scale with steps: %.0f allocs for ~100 ticks vs %.0f for ~5100", short, long)
	}
}
