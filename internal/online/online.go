// Package online addresses the paper's first open question (Section 9):
// scheduling when transactions are not known ahead of time but arrive
// continuously. It implements an event-driven online executor for the same
// synchronous data-flow model: transactions arrive at their nodes over
// time, request their objects, and commit when all objects have assembled.
//
// Deadlock freedom comes from ordered acquisition: a transaction requests
// its objects in increasing object-ID order and holds each one until it
// commits, the classic resource-ordering discipline. Which waiting
// transaction a freed object travels to next is the pluggable Policy — the
// online analogue of contention management. The executor never aborts
// transactions: the model's single-copy objects make conflicts pure
// queueing, exactly as in the offline schedulers.
package online

import (
	"fmt"
	"math/rand"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/xrand"
)

// Arrival couples a transaction with its release (arrival) step.
type Arrival struct {
	Txn tm.TxnID
	At  int64 // step at which the transaction becomes known, ≥ 0
}

// Policy picks, among the transactions currently waiting for an object,
// the one the object should travel to next.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick chooses one of the candidates (all waiting for the object,
	// never empty). from is the object's current node; waitingSince[i]
	// is the step candidate i started waiting.
	Pick(in *tm.Instance, object tm.ObjectID, from graph.NodeID, candidates []tm.TxnID, waitingSince []int64) tm.TxnID
}

// FIFO serves the transaction that has waited longest (ties by ID) —
// the fairness-first contention manager.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "online/fifo" }

// Pick implements Policy.
func (FIFO) Pick(_ *tm.Instance, _ tm.ObjectID, _ graph.NodeID, candidates []tm.TxnID, waitingSince []int64) tm.TxnID {
	best := 0
	for i := 1; i < len(candidates); i++ {
		if waitingSince[i] < waitingSince[best] ||
			(waitingSince[i] == waitingSince[best] && candidates[i] < candidates[best]) {
			best = i
		}
	}
	return candidates[best]
}

// Nearest sends the object to the closest waiting transaction — the
// communication-cost-greedy manager, an online shadow of the TSP walks the
// offline lower bounds are built from.
type Nearest struct{}

// Name implements Policy.
func (Nearest) Name() string { return "online/nearest" }

// Pick implements Policy.
func (Nearest) Pick(in *tm.Instance, _ tm.ObjectID, from graph.NodeID, candidates []tm.TxnID, _ []int64) tm.TxnID {
	best := candidates[0]
	bestD := in.Dist(from, in.Txns[best].Node)
	for _, id := range candidates[1:] {
		if d := in.Dist(from, in.Txns[id].Node); d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best
}

// Random picks a uniformly random waiting transaction — the randomized
// contention manager of the experimental TM literature.
type Random struct{ Rng *rand.Rand }

// Name implements Policy.
func (Random) Name() string { return "online/random" }

// Pick implements Policy.
func (p Random) Pick(_ *tm.Instance, _ tm.ObjectID, _ graph.NodeID, candidates []tm.TxnID, _ []int64) tm.TxnID {
	return candidates[p.Rng.Intn(len(candidates))]
}

// Result reports one online execution.
type Result struct {
	// Policy is the contention-management policy used.
	Policy string
	// Makespan is the step at which the last transaction committed.
	Makespan int64
	// CommCost is the total distance traveled by all objects.
	CommCost int64
	// CommitTime[i] is the commit step of transaction i.
	CommitTime []int64
	// MeanResponse is the average of (commit − arrival) over
	// transactions.
	MeanResponse float64
	// MaxResponse is the worst response time.
	MaxResponse int64
}

// Run executes the instance online under the given arrivals and policy.
// Arrivals must cover every transaction exactly once. The executor is
// deterministic given the policy (and its Rng).
func Run(in *tm.Instance, arrivals []Arrival, pol Policy) (*Result, error) {
	m := in.NumTxns()
	if len(arrivals) != m {
		return nil, fmt.Errorf("online: %d arrivals for %d transactions", len(arrivals), m)
	}
	// A Random policy without an Rng would nil-panic deep inside Pick;
	// fail it up front with an actionable error instead.
	switch p := pol.(type) {
	case Random:
		if p.Rng == nil {
			return nil, fmt.Errorf("online: Random policy requires a non-nil Rng (seed one with xrand.New)")
		}
	case *Random:
		if p == nil || p.Rng == nil {
			return nil, fmt.Errorf("online: Random policy requires a non-nil Rng (seed one with xrand.New)")
		}
	}
	arriveAt := make([]int64, m)
	for i := range arriveAt {
		arriveAt[i] = -1
	}
	for _, a := range arrivals {
		if a.Txn < 0 || int(a.Txn) >= m {
			return nil, fmt.Errorf("online: arrival for unknown transaction %d", a.Txn)
		}
		if arriveAt[a.Txn] >= 0 {
			return nil, fmt.Errorf("online: duplicate arrival for transaction %d", a.Txn)
		}
		if a.At < 0 {
			return nil, fmt.Errorf("online: negative arrival time %d", a.At)
		}
		arriveAt[a.Txn] = a.At
	}

	// Transaction progress: next object index to acquire (in sorted
	// object order), held[] flags.
	type txnState struct {
		nextObj      int
		waitingSince int64 // step it started waiting for nextObj (−1 = n/a)
	}
	txns := make([]txnState, m)
	commit := make([]int64, m)
	for i := range commit {
		commit[i] = -1
	}

	// Object state.
	type objState struct {
		node    graph.NodeID
		busyTil int64    // in transit until this step (arrival step)
		holder  tm.TxnID // −1 when free
		target  tm.TxnID // −1 when not in transit
	}
	objs := make([]objState, in.NumObjects)
	for o := range objs {
		objs[o] = objState{node: in.Home[o], holder: -1, target: -1}
	}

	res := &Result{Policy: pol.Name(), CommitTime: commit}
	remaining := m

	// The horizon guards against executor bugs; ordered acquisition
	// guarantees progress long before it.
	var horizon int64 = 16
	var diamBound int64
	index := in.Index()
	for o := range objs {
		for _, id := range index.Members(tm.ObjectID(o)) {
			if d := in.Dist(in.Home[o], in.Txns[id].Node); d > diamBound {
				diamBound = d
			}
		}
	}
	for _, a := range arrivals {
		if a.At > horizon {
			horizon = a.At
		}
	}
	horizon += int64(m+1) * (diamBound + 2) * int64(maxInt(in.MaxK(), 1))

	// Per-step scratch, hoisted out of the tick loop so steady-state
	// steps are allocation-free (TestRunSteadyStateAllocs): requests are
	// bucketed per object and dispatched in object-ID order, replacing
	// the per-step map + sorted-key slice.
	waiting := make([][]tm.TxnID, in.NumObjects)
	sinceBuf := make([]int64, m)

	for step := int64(1); remaining > 0; step++ {
		if step > horizon {
			return nil, fmt.Errorf("online: no progress by step %d with %d transactions pending", step, remaining)
		}
		// 1. Deliveries: objects arriving this step are handed to their
		// target transaction (held until commit).
		for o := range objs {
			st := &objs[o]
			if st.target >= 0 && st.busyTil <= step {
				st.holder, st.target = st.target, -1
				ts := &txns[st.holder]
				ts.nextObj++
				ts.waitingSince = -1
			}
		}
		// 2. Commits: transactions holding all their objects execute.
		for i := 0; i < m; i++ {
			if commit[i] >= 0 || arriveAt[i] > step {
				continue
			}
			if txns[i].nextObj == len(in.Txns[i].Objects) {
				commit[i] = step
				remaining--
				if step > res.Makespan {
					res.Makespan = step
				}
				// Release all held objects at this node.
				for _, o := range in.Txns[i].Objects {
					objs[o].holder = -1
					objs[o].node = in.Txns[i].Node
					objs[o].busyTil = step
				}
			}
		}
		// 3. Requests: each live transaction starts waiting for its next
		// object (ordered acquisition ⇒ at most one outstanding request).
		for o := range waiting {
			waiting[o] = waiting[o][:0]
		}
		for i := 0; i < m; i++ {
			if commit[i] >= 0 || arriveAt[i] > step {
				continue
			}
			ts := &txns[i]
			if ts.nextObj < len(in.Txns[i].Objects) {
				if ts.waitingSince < 0 {
					ts.waitingSince = step
				}
				o := in.Txns[i].Objects[ts.nextObj]
				waiting[o] = append(waiting[o], tm.TxnID(i))
			}
		}
		// 4. Dispatch: each free, idle object picks a waiter via the
		// policy and departs (arrives after dist steps; dist 0 = next
		// step delivery so holding is atomic per step). Object-ID order
		// keeps dispatch deterministic.
		for oi := range waiting {
			cands := waiting[oi]
			if len(cands) == 0 {
				continue
			}
			o := tm.ObjectID(oi)
			st := &objs[o]
			if st.holder >= 0 || st.target >= 0 || st.busyTil > step {
				continue
			}
			since := sinceBuf[:len(cands)]
			for i, id := range cands {
				since[i] = txns[id].waitingSince
			}
			chosen := pol.Pick(in, o, st.node, cands, since)
			d := in.Dist(st.node, in.Txns[chosen].Node)
			st.target = chosen
			st.busyTil = step + maxI64(d, 1) // same-node handoff takes one step
			res.CommCost += d
		}
	}

	var totalResp float64
	for i := 0; i < m; i++ {
		resp := commit[i] - arriveAt[i]
		totalResp += float64(resp)
		if resp > res.MaxResponse {
			res.MaxResponse = resp
		}
	}
	if m > 0 {
		res.MeanResponse = totalResp / float64(m)
	}
	return res, nil
}

// BatchArrivals releases every transaction at step 0, making the online
// executor directly comparable with the offline batch schedulers.
func BatchArrivals(in *tm.Instance) []Arrival {
	out := make([]Arrival, in.NumTxns())
	for i := range out {
		out[i] = Arrival{Txn: tm.TxnID(i)}
	}
	return out
}

// PoissonArrivals spreads arrivals with geometric inter-arrival gaps of
// mean exactly 1/min(rate, 1) steps, in ID order — the standard
// open-system workload, the discrete-time analogue of a Poisson process.
// Gaps are ≥ 1 (rates ≥ 1 clamp to one arrival per step), so the
// realized injection rate matches the nominal one; the earlier sampler
// here had mean gap (1−p)/p, overshooting the nominal rate
// (TestPoissonRealizedRate pins the fix).
func PoissonArrivals(r *rand.Rand, in *tm.Instance, rate float64) []Arrival {
	if rate <= 0 {
		panic(fmt.Sprintf("online: non-positive arrival rate %v", rate))
	}
	out := make([]Arrival, in.NumTxns())
	var t int64
	for i := range out {
		out[i] = Arrival{Txn: tm.TxnID(i), At: t}
		t += xrand.GeometricGap(r, rate)
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
