// Package analysis derives explanatory statistics from a schedule: the
// per-step concurrency profile, per-object travel/wait decomposition, and
// the critical chain of tight object handoffs that pins the makespan.
// The dtmsched CLI exposes it via -analyze; it is also the tool used when
// investigating why a scheduler's constant is what it is.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// ObjectStats decomposes one object's lifetime under a schedule.
type ObjectStats struct {
	Object tm.ObjectID
	// Users is how many transactions requested the object.
	Users int
	// Travel is the total distance (= steps in transit) the object
	// covers along its route.
	Travel int64
	// Wait is the total steps the object sat at requesters' nodes
	// between arrival and use, plus gaps between use and next demand.
	Wait int64
	// LastUse is the step of the object's final use.
	LastUse int64
}

// Report is the full analysis of one (instance, schedule) pair.
type Report struct {
	Makespan int64
	// PeakParallelism is the largest number of transactions committing
	// in any single step; MeanParallelism averages over busy steps.
	PeakParallelism int
	MeanParallelism float64
	// BusySteps counts steps in which at least one transaction commits.
	BusySteps int
	// CriticalLen is the number of transactions on the longest chain of
	// tight handoffs (each executing exactly when its predecessor's
	// object arrives); CriticalChain lists them in order.
	CriticalLen   int
	CriticalChain []tm.TxnID
	// Objects has one entry per requested object, sorted by travel
	// (descending) — the "hottest movers" first.
	Objects []ObjectStats
}

// Analyze computes the report. The schedule must be feasible for the
// instance (callers validate first).
func Analyze(in *tm.Instance, s *schedule.Schedule) *Report {
	rep := &Report{Makespan: s.Makespan()}

	// Concurrency profile.
	perStep := make(map[int64]int)
	for _, t := range s.Times {
		perStep[t]++
	}
	total := 0
	for _, c := range perStep {
		total += c
		if c > rep.PeakParallelism {
			rep.PeakParallelism = c
		}
	}
	rep.BusySteps = len(perStep)
	if rep.BusySteps > 0 {
		rep.MeanParallelism = float64(total) / float64(rep.BusySteps)
	}

	// Object decomposition.
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		order := s.Order(in, oid)
		if len(order) == 0 {
			continue
		}
		st := ObjectStats{Object: oid, Users: len(order)}
		prevNode := in.Home[oid]
		prevTime := int64(0)
		for _, id := range order {
			d := in.Dist(prevNode, in.Txns[id].Node)
			st.Travel += d
			st.Wait += s.Times[id] - prevTime - d // slack in the handoff
			prevNode = in.Txns[id].Node
			prevTime = s.Times[id]
		}
		st.LastUse = prevTime
		rep.Objects = append(rep.Objects, st)
	}
	sort.Slice(rep.Objects, func(i, j int) bool {
		if rep.Objects[i].Travel != rep.Objects[j].Travel {
			return rep.Objects[i].Travel > rep.Objects[j].Travel
		}
		return rep.Objects[i].Object < rep.Objects[j].Object
	})

	rep.CriticalChain = criticalChain(in, s)
	rep.CriticalLen = len(rep.CriticalChain)
	return rep
}

// criticalChain finds the longest chain T_1 → T_2 → … where consecutive
// transactions share an object and T_{i+1} executes exactly when the
// object can first arrive from T_i (a tight handoff). Chains of tight
// handoffs are what the composer and coloring lower bounds manifest as.
func criticalChain(in *tm.Instance, s *schedule.Schedule) []tm.TxnID {
	m := in.NumTxns()
	// preds[j] lists tight predecessors of j.
	preds := make([][]tm.TxnID, m)
	for o := 0; o < in.NumObjects; o++ {
		order := s.Order(in, tm.ObjectID(o))
		for i := 0; i+1 < len(order); i++ {
			a, b := order[i], order[i+1]
			if s.Times[b] == s.Times[a]+in.Dist(in.Txns[a].Node, in.Txns[b].Node) {
				preds[b] = append(preds[b], a)
			}
		}
	}
	// Longest chain ending at each transaction, DP over time order.
	order := make([]tm.TxnID, m)
	for i := range order {
		order[i] = tm.TxnID(i)
	}
	sort.Slice(order, func(a, b int) bool { return s.Times[order[a]] < s.Times[order[b]] })
	bestLen := make([]int, m)
	bestPrev := make([]tm.TxnID, m)
	for i := range bestPrev {
		bestPrev[i] = -1
	}
	var tail tm.TxnID = -1
	tailLen := 0
	for _, id := range order {
		bestLen[id] = 1
		for _, p := range preds[id] {
			if bestLen[p]+1 > bestLen[id] {
				bestLen[id] = bestLen[p] + 1
				bestPrev[id] = p
			}
		}
		if bestLen[id] > tailLen {
			tailLen = bestLen[id]
			tail = id
		}
	}
	if tail < 0 {
		return nil
	}
	chain := make([]tm.TxnID, 0, tailLen)
	for id := tail; id >= 0; id = bestPrev[id] {
		chain = append(chain, id)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// String renders the report for terminals.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan %d over %d busy steps; parallelism peak %d, mean %.2f\n",
		r.Makespan, r.BusySteps, r.PeakParallelism, r.MeanParallelism)
	fmt.Fprintf(&sb, "critical chain: %d tight handoffs", r.CriticalLen)
	if r.CriticalLen > 0 {
		sb.WriteString(" (txns")
		limit := r.CriticalLen
		if limit > 12 {
			limit = 12
		}
		for _, id := range r.CriticalChain[:limit] {
			fmt.Fprintf(&sb, " %d", id)
		}
		if r.CriticalLen > limit {
			sb.WriteString(" …")
		}
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	limit := len(r.Objects)
	if limit > 8 {
		limit = 8
	}
	for _, o := range r.Objects[:limit] {
		fmt.Fprintf(&sb, "object %-4d users=%-4d travel=%-6d wait=%-6d lastUse=%d\n",
			o.Object, o.Users, o.Travel, o.Wait, o.LastUse)
	}
	if len(r.Objects) > limit {
		fmt.Fprintf(&sb, "… %d more objects\n", len(r.Objects)-limit)
	}
	return sb.String()
}
