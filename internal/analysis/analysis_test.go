package analysis

import (
	"strings"
	"testing"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// chainInstance: line 0-1-2 with one object passed 0 → 1 → 2 tightly.
func chainInstance() (*tm.Instance, *schedule.Schedule) {
	topo := topology.NewLine(3)
	in := tm.NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
	s := &schedule.Schedule{Times: []int64{1, 2, 3}}
	return in, s
}

func TestAnalyzeTightChain(t *testing.T) {
	in, s := chainInstance()
	if err := s.Validate(in); err != nil {
		t.Fatal(err)
	}
	rep := Analyze(in, s)
	if rep.Makespan != 3 || rep.BusySteps != 3 || rep.PeakParallelism != 1 {
		t.Fatalf("profile wrong: %+v", rep)
	}
	if rep.CriticalLen != 3 {
		t.Fatalf("critical chain length %d, want 3", rep.CriticalLen)
	}
	want := []tm.TxnID{0, 1, 2}
	for i, id := range rep.CriticalChain {
		if id != want[i] {
			t.Fatalf("chain = %v, want %v", rep.CriticalChain, want)
		}
	}
	if len(rep.Objects) != 1 || rep.Objects[0].Travel != 2 || rep.Objects[0].Wait != 1 {
		// travel 0→1→2 = 2; wait: first use at t=1 with d=0 gives 1 slack.
		t.Fatalf("object stats wrong: %+v", rep.Objects)
	}
}

func TestAnalyzeSlackBreaksChain(t *testing.T) {
	in, _ := chainInstance()
	s := &schedule.Schedule{Times: []int64{1, 5, 6}}
	rep := Analyze(in, s)
	// 0→1 handoff has slack (5 > 1+1), 1→2 is tight (6 == 5+1).
	if rep.CriticalLen != 2 {
		t.Fatalf("critical chain length %d, want 2", rep.CriticalLen)
	}
	if rep.CriticalChain[0] != 1 || rep.CriticalChain[1] != 2 {
		t.Fatalf("chain = %v", rep.CriticalChain)
	}
}

func TestAnalyzeParallelism(t *testing.T) {
	topo := topology.NewClique(6)
	g := topo.Graph()
	txns := make([]tm.Txn, 6)
	homes := make([]graph.NodeID, 6)
	for i := range txns {
		txns[i] = tm.Txn{Node: graph.NodeID(i), Objects: []tm.ObjectID{tm.ObjectID(i)}}
		homes[i] = graph.NodeID(i)
	}
	in := tm.NewInstance(g, graph.FuncMetric(topo.Dist), 6, txns, homes)
	s := &schedule.Schedule{Times: []int64{1, 1, 1, 2, 2, 9}}
	rep := Analyze(in, s)
	if rep.PeakParallelism != 3 || rep.BusySteps != 3 {
		t.Fatalf("parallelism wrong: %+v", rep)
	}
	if rep.MeanParallelism != 2.0 {
		t.Fatalf("mean parallelism = %v, want 2", rep.MeanParallelism)
	}
}

func TestAnalyzeRealSchedule(t *testing.T) {
	topo := topology.NewSquareGrid(8)
	in := tm.UniformK(16, 2).Generate(xrand.New(1), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (&core.Grid{Topo: topo}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(in, res.Schedule)
	if rep.Makespan != res.Makespan {
		t.Fatal("makespan mismatch")
	}
	if rep.CriticalLen < 1 {
		t.Fatal("no critical chain on a nontrivial schedule")
	}
	// Hottest-mover ordering.
	for i := 1; i < len(rep.Objects); i++ {
		if rep.Objects[i].Travel > rep.Objects[i-1].Travel {
			t.Fatal("objects not sorted by travel")
		}
	}
	out := rep.String()
	if !strings.Contains(out, "critical chain") || !strings.Contains(out, "object") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestAnalyzeEmptyObjects(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	in := tm.NewInstance(g, nil, 1, []tm.Txn{{Node: 0, Objects: nil}}, []graph.NodeID{1})
	s := &schedule.Schedule{Times: []int64{1}}
	rep := Analyze(in, s)
	if len(rep.Objects) != 0 {
		t.Fatal("unrequested object got stats")
	}
	if rep.CriticalLen != 0 && rep.CriticalLen != 1 {
		t.Fatalf("chain length %d", rep.CriticalLen)
	}
}
