// Package tm defines the distributed transactional memory model of Busch,
// Herlihy, Popovic, and Sharma (Section 2.1): a batch of transactions, one
// per node of a communication graph, each requesting a set of mobile shared
// objects that exist in a single copy. A transaction executes at its node
// once all requested objects have been assembled there, then releases them.
//
// The package provides the problem-instance representation consumed by
// every scheduler, plus workload generators for each scheduling problem the
// paper studies (arbitrary k-subsets, uniform-random k-subsets, cluster-
// local, hotspot/Zipf skew, and the Section 8 adversarial instances).
package tm

import (
	"fmt"
	"sort"
	"sync"

	"dtmsched/internal/graph"
)

// ObjectID identifies a shared object o_1 … o_w (0-based).
type ObjectID int

// TxnID identifies a transaction (0-based, dense).
type TxnID int

// Txn is one transaction: an atomic code block residing at Node that needs
// every object in Objects co-located before it can execute and commit.
type Txn struct {
	ID   TxnID
	Node graph.NodeID
	// Objects lists the distinct objects the transaction requests,
	// in increasing order.
	Objects []ObjectID
}

// Uses reports whether the transaction requests object o.
func (t *Txn) Uses(o ObjectID) bool {
	i := sort.Search(len(t.Objects), func(i int) bool { return t.Objects[i] >= o })
	return i < len(t.Objects) && t.Objects[i] == o
}

// Instance is one batch scheduling problem: a communication graph, a
// distance oracle over it, w shared objects with initial placements, and at
// most one transaction per node.
type Instance struct {
	// G is the communication graph.
	G *graph.Graph
	// Metric is the distance oracle. Topology packages provide O(1)
	// closed forms; G itself is always a valid fallback.
	Metric graph.Metric
	// NumObjects is w, the size of the object set O.
	NumObjects int
	// Txns holds the transactions; Txns[i].ID == TxnID(i).
	Txns []Txn
	// Home[o] is the node initially holding object o.
	Home []graph.NodeID

	usersOnce sync.Once
	users     [][]TxnID // lazily built object → requesting-transaction index
}

// NewInstance assembles an instance and assigns dense transaction IDs. The
// metric may be nil, in which case the graph itself is used.
func NewInstance(g *graph.Graph, metric graph.Metric, numObjects int, txns []Txn, home []graph.NodeID) *Instance {
	if metric == nil {
		metric = g
	}
	for i := range txns {
		txns[i].ID = TxnID(i)
		sortObjects(txns[i].Objects)
	}
	return &Instance{G: g, Metric: metric, NumObjects: numObjects, Txns: txns, Home: home}
}

func sortObjects(objs []ObjectID) {
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
}

// NumTxns returns the number of transactions m ≤ n.
func (in *Instance) NumTxns() int { return len(in.Txns) }

// Dist returns the shortest-path distance between two nodes.
func (in *Instance) Dist(u, v graph.NodeID) int64 { return in.Metric.Dist(u, v) }

// Users returns the IDs of the transactions requesting object o (the
// paper's set A_i), in increasing ID order. The index is built on first use
// and cached; the build is synchronized so instances may be shared across
// concurrent engine jobs.
func (in *Instance) Users(o ObjectID) []TxnID {
	in.usersOnce.Do(in.buildUsers)
	return in.users[o]
}

func (in *Instance) buildUsers() {
	users := make([][]TxnID, in.NumObjects)
	for i := range in.Txns {
		for _, o := range in.Txns[i].Objects {
			users[o] = append(users[o], TxnID(i))
		}
	}
	in.users = users
}

// MaxUse returns ℓ = max_i |A_i|: the largest number of transactions
// sharing a single object. Zero for an instance with no requests.
func (in *Instance) MaxUse() int {
	maxUse := 0
	for o := 0; o < in.NumObjects; o++ {
		if u := len(in.Users(ObjectID(o))); u > maxUse {
			maxUse = u
		}
	}
	return maxUse
}

// MaxK returns the largest per-transaction object count k.
func (in *Instance) MaxK() int {
	k := 0
	for i := range in.Txns {
		if len(in.Txns[i].Objects) > k {
			k = len(in.Txns[i].Objects)
		}
	}
	return k
}

// Validate checks the model's structural invariants:
//   - at most one transaction per node, every node in range;
//   - every requested object exists and appears once per transaction;
//   - every object has a valid home node;
//   - the graph is connected (objects must be able to reach every
//     requester).
func (in *Instance) Validate() error {
	if in.G == nil {
		return fmt.Errorf("tm: instance has no graph")
	}
	n := in.G.NumNodes()
	if len(in.Txns) > n {
		return fmt.Errorf("tm: %d transactions exceed %d nodes", len(in.Txns), n)
	}
	seen := make(map[graph.NodeID]TxnID, len(in.Txns))
	for i := range in.Txns {
		t := &in.Txns[i]
		if t.ID != TxnID(i) {
			return fmt.Errorf("tm: transaction %d has non-dense ID %d", i, t.ID)
		}
		if t.Node < 0 || int(t.Node) >= n {
			return fmt.Errorf("tm: transaction %d at invalid node %d", i, t.Node)
		}
		if prev, dup := seen[t.Node]; dup {
			return fmt.Errorf("tm: transactions %d and %d share node %d", prev, t.ID, t.Node)
		}
		seen[t.Node] = t.ID
		for j, o := range t.Objects {
			if o < 0 || int(o) >= in.NumObjects {
				return fmt.Errorf("tm: transaction %d requests invalid object %d", i, o)
			}
			if j > 0 && t.Objects[j-1] >= o {
				return fmt.Errorf("tm: transaction %d has unsorted or duplicate objects", i)
			}
		}
	}
	if len(in.Home) != in.NumObjects {
		return fmt.Errorf("tm: %d home nodes for %d objects", len(in.Home), in.NumObjects)
	}
	for o, h := range in.Home {
		if h < 0 || int(h) >= n {
			return fmt.Errorf("tm: object %d homed at invalid node %d", o, h)
		}
	}
	if !in.G.Connected() {
		return fmt.Errorf("tm: communication graph is disconnected")
	}
	return nil
}

// TxnAt returns the transaction residing at node v, or nil when the node
// hosts none.
func (in *Instance) TxnAt(v graph.NodeID) *Txn {
	for i := range in.Txns {
		if in.Txns[i].Node == v {
			return &in.Txns[i]
		}
	}
	return nil
}

// String summarizes the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("instance(%s, m=%d txns, w=%d objects, k≤%d)",
		in.G, len(in.Txns), in.NumObjects, in.MaxK())
}
