// Package tm defines the distributed transactional memory model of Busch,
// Herlihy, Popovic, and Sharma (Section 2.1): a batch of transactions, one
// per node of a communication graph, each requesting a set of mobile shared
// objects that exist in a single copy. A transaction executes at its node
// once all requested objects have been assembled there, then releases them.
//
// The package provides the problem-instance representation consumed by
// every scheduler, plus workload generators for each scheduling problem the
// paper studies (arbitrary k-subsets, uniform-random k-subsets, cluster-
// local, hotspot/Zipf skew, and the Section 8 adversarial instances).
package tm

import (
	"fmt"
	"sort"
	"sync"

	"dtmsched/internal/graph"
)

// ObjectID identifies a shared object o_1 … o_w (0-based).
type ObjectID int

// TxnID identifies a transaction (0-based, dense).
type TxnID int

// Txn is one transaction: an atomic code block residing at Node that needs
// every object in Objects co-located before it can execute and commit.
type Txn struct {
	ID   TxnID
	Node graph.NodeID
	// Objects lists the distinct objects the transaction requests,
	// in increasing order.
	Objects []ObjectID
}

// Uses reports whether the transaction requests object o.
func (t *Txn) Uses(o ObjectID) bool {
	i := sort.Search(len(t.Objects), func(i int) bool { return t.Objects[i] >= o })
	return i < len(t.Objects) && t.Objects[i] == o
}

// Instance is one batch scheduling problem: a communication graph, a
// distance oracle over it, w shared objects with initial placements, and at
// most one transaction per node.
type Instance struct {
	// G is the communication graph.
	G *graph.Graph
	// Metric is the distance oracle. Topology packages provide O(1)
	// closed forms; G itself is always a valid fallback.
	Metric graph.Metric
	// NumObjects is w, the size of the object set O.
	NumObjects int
	// Txns holds the transactions; Txns[i].ID == TxnID(i).
	Txns []Txn
	// Home[o] is the node initially holding object o.
	Home []graph.NodeID

	indexOnce sync.Once
	index     *ConflictIndex // lazily built object → requesting-transaction index

	txnAtOnce sync.Once
	txnAt     []TxnID // lazily built node → hosted-transaction index (-1 = none)
}

// NewInstance assembles an instance and assigns dense transaction IDs. The
// metric may be nil, in which case the graph itself is used.
func NewInstance(g *graph.Graph, metric graph.Metric, numObjects int, txns []Txn, home []graph.NodeID) *Instance {
	if metric == nil {
		metric = g
	}
	for i := range txns {
		txns[i].ID = TxnID(i)
		sortObjects(txns[i].Objects)
	}
	return &Instance{G: g, Metric: metric, NumObjects: numObjects, Txns: txns, Home: home}
}

func sortObjects(objs []ObjectID) {
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
}

// NumTxns returns the number of transactions m ≤ n.
func (in *Instance) NumTxns() int { return len(in.Txns) }

// Dist returns the shortest-path distance between two nodes.
func (in *Instance) Dist(u, v graph.NodeID) int64 { return in.Metric.Dist(u, v) }

// AutoPrecomputeNodes is the largest node count at which PrecomputeDistAuto
// installs the all-pairs matrix: n² int64 cells are 32 MiB at 2048 nodes,
// negligible next to the SSSP work a dense sweep would otherwise repeat.
const AutoPrecomputeNodes = 2048

// PrecomputeDist installs the graph's all-pairs distance matrix
// (graph.Graph.Precompute, workers 0 = GOMAXPROCS) so every Dist during
// scheduling, validation, simulation, and lower-bound computation is a
// single index read. It applies only when the instance's metric is the
// graph itself — topologies with closed-form O(1) metrics never consult
// the graph, so precomputing for them would be wasted Θ(n²) work and
// memory. Reports whether the matrix was installed.
func (in *Instance) PrecomputeDist(workers int) bool {
	g, ok := in.Metric.(*graph.Graph)
	if !ok || g != in.G {
		return false
	}
	g.Precompute(workers)
	return true
}

// PrecomputeDistAuto is the library's default precompute policy: install
// the matrix only for graph-backed metrics on graphs of at most
// AutoPrecomputeNodes nodes. Reports whether the matrix was installed.
func (in *Instance) PrecomputeDistAuto(workers int) bool {
	if in.G == nil || in.G.NumNodes() > AutoPrecomputeNodes {
		return false
	}
	return in.PrecomputeDist(workers)
}

// Index returns the instance's ConflictIndex (object → requesting
// transactions). It is built on first use and cached; the build is
// synchronized so instances may be shared across concurrent engine jobs.
// The returned index is owned by the instance and must be treated as
// read-only — callers that need a mutable index (evolving member sets)
// build their own with NewConflictIndex / IndexTxns.
func (in *Instance) Index() *ConflictIndex {
	in.indexOnce.Do(in.buildIndex)
	return in.index
}

func (in *Instance) buildIndex() {
	in.index = IndexTxns(in.NumObjects, in.Txns)
}

// Users returns the IDs of the transactions requesting object o (the
// paper's set A_i), in increasing ID order — shorthand for
// Index().Members(o).
func (in *Instance) Users(o ObjectID) []TxnID {
	return in.Index().Members(o)
}

// MaxUse returns ℓ = max_i |A_i|: the largest number of transactions
// sharing a single object. Zero for an instance with no requests.
func (in *Instance) MaxUse() int {
	return in.Index().MaxUse()
}

// MaxK returns the largest per-transaction object count k.
func (in *Instance) MaxK() int {
	k := 0
	for i := range in.Txns {
		if len(in.Txns[i].Objects) > k {
			k = len(in.Txns[i].Objects)
		}
	}
	return k
}

// Validate checks the model's structural invariants:
//   - at most one transaction per node, every node in range;
//   - every requested object exists and appears once per transaction;
//   - every object has a valid home node;
//   - the graph is connected (objects must be able to reach every
//     requester).
func (in *Instance) Validate() error {
	if in.G == nil {
		return fmt.Errorf("tm: instance has no graph")
	}
	n := in.G.NumNodes()
	if len(in.Txns) > n {
		return fmt.Errorf("tm: %d transactions exceed %d nodes", len(in.Txns), n)
	}
	seen := make(map[graph.NodeID]TxnID, len(in.Txns))
	for i := range in.Txns {
		t := &in.Txns[i]
		if t.ID != TxnID(i) {
			return fmt.Errorf("tm: transaction %d has non-dense ID %d", i, t.ID)
		}
		if t.Node < 0 || int(t.Node) >= n {
			return fmt.Errorf("tm: transaction %d at invalid node %d", i, t.Node)
		}
		if prev, dup := seen[t.Node]; dup {
			return fmt.Errorf("tm: transactions %d and %d share node %d", prev, t.ID, t.Node)
		}
		seen[t.Node] = t.ID
		for j, o := range t.Objects {
			if o < 0 || int(o) >= in.NumObjects {
				return fmt.Errorf("tm: transaction %d requests invalid object %d", i, o)
			}
			if j > 0 && t.Objects[j-1] >= o {
				return fmt.Errorf("tm: transaction %d has unsorted or duplicate objects", i)
			}
		}
	}
	if len(in.Home) != in.NumObjects {
		return fmt.Errorf("tm: %d home nodes for %d objects", len(in.Home), in.NumObjects)
	}
	for o, h := range in.Home {
		if h < 0 || int(h) >= n {
			return fmt.Errorf("tm: object %d homed at invalid node %d", o, h)
		}
	}
	if !in.G.Connected() {
		return fmt.Errorf("tm: communication graph is disconnected")
	}
	return nil
}

// TxnAt returns the transaction residing at node v, or nil when the node
// hosts none. The node→transaction index is built on first use (same
// synchronization as Users), so hot-path callers pay O(1) per lookup
// rather than a linear scan per call. Nodes outside the graph's range
// host no transaction on a valid instance (Validate enforces it) and
// report nil.
func (in *Instance) TxnAt(v graph.NodeID) *Txn {
	in.txnAtOnce.Do(in.buildTxnAt)
	if v < 0 || int(v) >= len(in.txnAt) {
		return nil
	}
	i := in.txnAt[v]
	if i < 0 {
		return nil
	}
	return &in.Txns[i]
}

func (in *Instance) buildTxnAt() {
	n := 0
	if in.G != nil {
		n = in.G.NumNodes()
	}
	idx := make([]TxnID, n)
	for i := range idx {
		idx[i] = -1
	}
	for i := range in.Txns {
		if v := in.Txns[i].Node; v >= 0 && int(v) < n {
			idx[v] = TxnID(i)
		}
	}
	in.txnAt = idx
}

// String summarizes the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("instance(%s, m=%d txns, w=%d objects, k≤%d)",
		in.G, len(in.Txns), in.NumObjects, in.MaxK())
}
