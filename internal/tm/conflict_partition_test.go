package tm

import (
	"testing"
)

// partitionFixture builds an index over 4 objects and 6 transactions with
// shard assignment {0,0,1,1,2,2}.
func partitionFixture() (*ConflictIndex, []int) {
	ci := NewConflictIndex(4)
	ci.Add(0, []ObjectID{0, 1})
	ci.Add(1, []ObjectID{0, 2})
	ci.Add(2, []ObjectID{0, 1, 3})
	ci.Add(3, []ObjectID{2})
	ci.Add(4, []ObjectID{3})
	ci.Add(5, []ObjectID{0, 3})
	return ci, []int{0, 0, 1, 1, 2, 2}
}

func TestPartitionedViewGroups(t *testing.T) {
	ci, shardOf := partitionFixture()
	pv := ci.Partition(3, shardOf)
	if pv.Shards() != 3 || pv.NumObjects() != 4 {
		t.Fatalf("shards=%d objects=%d", pv.Shards(), pv.NumObjects())
	}
	want := map[[2]int][]TxnID{
		{0, 0}: {0, 1}, {1, 0}: {2}, {2, 0}: {5},
		{0, 1}: {0}, {1, 1}: {2}, {2, 1}: {},
		{0, 2}: {1}, {1, 2}: {3}, {2, 2}: {},
		{0, 3}: {}, {1, 3}: {2}, {2, 3}: {4, 5},
	}
	for key, ids := range want {
		got := pv.Members(key[0], ObjectID(key[1]))
		if len(got) != len(ids) {
			t.Fatalf("shard %d object %d: got %v, want %v", key[0], key[1], got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("shard %d object %d: got %v, want %v", key[0], key[1], got, ids)
			}
		}
	}
	// Per (object, shard) groups partition each full member list.
	for o := 0; o < 4; o++ {
		var merged []TxnID
		for s := 0; s < 3; s++ {
			merged = append(merged, pv.Members(s, ObjectID(o))...)
		}
		full := ci.Members(ObjectID(o))
		seen := map[TxnID]bool{}
		for _, id := range merged {
			seen[id] = true
		}
		if len(merged) != len(full) {
			t.Fatalf("object %d: view has %d members, index %d", o, len(merged), len(full))
		}
		for _, id := range full {
			if !seen[id] {
				t.Fatalf("object %d: member %d missing from view", o, id)
			}
		}
	}
}

func TestShardViewImplementsMemberSource(t *testing.T) {
	ci, shardOf := partitionFixture()
	pv := ci.Partition(3, shardOf)
	var src MemberSource = pv.View(1)
	if src.NumObjects() != 4 {
		t.Fatalf("NumObjects = %d", src.NumObjects())
	}
	ms := src.Members(3)
	if len(ms) != 1 || ms[0] != 2 {
		t.Fatalf("shard 1 members of object 3 = %v", ms)
	}
}

// TestPartitionedViewZeroAlloc is the CI guard: warm member lookups
// through the shard view — the depgraph builder's inner loop — must not
// allocate.
func TestPartitionedViewZeroAlloc(t *testing.T) {
	ci, shardOf := partitionFixture()
	pv := ci.Partition(3, shardOf)
	views := make([]MemberSource, 3)
	for s := range views {
		views[s] = pv.View(s)
	}
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range views {
			for o := 0; o < v.NumObjects(); o++ {
				sink += len(v.Members(ObjectID(o)))
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("shard-view member walk allocated %.1f/op, want 0", allocs)
	}
	_ = sink
}

func TestPartitionBadShard(t *testing.T) {
	ci, _ := partitionFixture()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range shard assignment")
		}
	}()
	ci.Partition(2, []int{0, 0, 1, 1, 2, 2}) // shard 2 out of range
}
