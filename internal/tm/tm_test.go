package tm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

func TestTxnUses(t *testing.T) {
	txn := Txn{Objects: []ObjectID{1, 3, 5}}
	for o, want := range map[ObjectID]bool{0: false, 1: true, 2: false, 3: true, 5: true, 6: false} {
		if txn.Uses(o) != want {
			t.Fatalf("Uses(%d) = %v, want %v", o, !want, want)
		}
	}
}

func TestNewInstanceSortsAndNumbers(t *testing.T) {
	g := lineGraph(3)
	txns := []Txn{
		{Node: 0, Objects: []ObjectID{2, 0}},
		{Node: 1, Objects: []ObjectID{1}},
	}
	in := NewInstance(g, nil, 3, txns, []graph.NodeID{0, 1, 2})
	if in.Txns[0].ID != 0 || in.Txns[1].ID != 1 {
		t.Fatal("IDs not densified")
	}
	if in.Txns[0].Objects[0] != 0 || in.Txns[0].Objects[1] != 2 {
		t.Fatalf("objects not sorted: %v", in.Txns[0].Objects)
	}
	if in.Metric == nil {
		t.Fatal("nil metric not defaulted to graph")
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestUsersIndexAndMaxUse(t *testing.T) {
	g := lineGraph(4)
	in := NewInstance(g, nil, 2, []Txn{
		{Node: 0, Objects: []ObjectID{0}},
		{Node: 1, Objects: []ObjectID{0, 1}},
		{Node: 2, Objects: []ObjectID{0}},
	}, []graph.NodeID{0, 1})
	u0 := in.Users(0)
	if len(u0) != 3 {
		t.Fatalf("Users(0) = %v", u0)
	}
	if len(in.Users(1)) != 1 {
		t.Fatalf("Users(1) = %v", in.Users(1))
	}
	if in.MaxUse() != 3 {
		t.Fatalf("MaxUse = %d", in.MaxUse())
	}
	if in.MaxK() != 2 {
		t.Fatalf("MaxK = %d", in.MaxK())
	}
}

func TestValidateRejections(t *testing.T) {
	g := lineGraph(3)
	home := []graph.NodeID{0}
	cases := []struct {
		name string
		in   *Instance
	}{
		{"two txns one node", NewInstance(g, nil, 1, []Txn{{Node: 1, Objects: []ObjectID{0}}, {Node: 1, Objects: []ObjectID{0}}}, home)},
		{"bad node", NewInstance(g, nil, 1, []Txn{{Node: 9, Objects: []ObjectID{0}}}, home)},
		{"bad object", NewInstance(g, nil, 1, []Txn{{Node: 0, Objects: []ObjectID{4}}}, home)},
		{"bad home count", NewInstance(g, nil, 2, []Txn{{Node: 0, Objects: []ObjectID{0}}}, home)},
		{"bad home node", NewInstance(g, nil, 1, []Txn{{Node: 0, Objects: []ObjectID{0}}}, []graph.NodeID{7})},
	}
	for _, tc := range cases {
		if err := tc.in.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted invalid instance", tc.name)
		}
	}
	// Duplicate objects inside a transaction.
	dup := &Instance{G: g, Metric: g, NumObjects: 1,
		Txns: []Txn{{ID: 0, Node: 0, Objects: []ObjectID{0, 0}}}, Home: home}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate objects accepted")
	}
	// Disconnected graph.
	dg := graph.New(2)
	disc := NewInstance(dg, nil, 1, []Txn{{Node: 0, Objects: []ObjectID{0}}}, []graph.NodeID{0})
	if err := disc.Validate(); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestTxnAt(t *testing.T) {
	g := lineGraph(3)
	in := NewInstance(g, nil, 1, []Txn{{Node: 2, Objects: []ObjectID{0}}}, []graph.NodeID{2})
	if in.TxnAt(2) == nil || in.TxnAt(0) != nil {
		t.Fatal("TxnAt lookup broken")
	}
}

// TestTxnAtIndex pins the lazily built node→transaction index: every
// hosting node resolves to its transaction, nodes hosting none (and nodes
// outside the graph) report nil, and repeated lookups return the same
// pointer into Txns.
func TestTxnAtIndex(t *testing.T) {
	g := lineGraph(6)
	in := NewInstance(g, nil, 2, []Txn{
		{Node: 4, Objects: []ObjectID{0}},
		{Node: 1, Objects: []ObjectID{1}},
	}, []graph.NodeID{4, 1})
	for i := range in.Txns {
		got := in.TxnAt(in.Txns[i].Node)
		if got != &in.Txns[i] {
			t.Fatalf("TxnAt(%d) = %v, want &Txns[%d]", in.Txns[i].Node, got, i)
		}
	}
	for _, empty := range []graph.NodeID{0, 2, 3, 5} {
		if in.TxnAt(empty) != nil {
			t.Fatalf("TxnAt(%d) non-nil for node hosting no transaction", empty)
		}
	}
	for _, out := range []graph.NodeID{-1, 6, 1000} {
		if in.TxnAt(out) != nil {
			t.Fatalf("TxnAt(%d) non-nil for out-of-range node", out)
		}
	}
}

func TestPrecomputeDist(t *testing.T) {
	g := lineGraph(5)
	in := NewInstance(g, nil, 1, []Txn{{Node: 0, Objects: []ObjectID{0}}}, []graph.NodeID{4})
	if !in.PrecomputeDist(2) {
		t.Fatal("PrecomputeDist refused a graph-backed metric")
	}
	if !g.Precomputed() {
		t.Fatal("matrix not installed on the graph")
	}
	if d := in.Dist(0, 4); d != 4 {
		t.Fatalf("Dist(0,4) = %d, want 4", d)
	}

	// A closed-form metric never consults the graph: precompute declines.
	topo := topology.NewClique(8)
	cin := NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1,
		[]Txn{{Node: 0, Objects: []ObjectID{0}}}, []graph.NodeID{1})
	if cin.PrecomputeDist(1) {
		t.Fatal("PrecomputeDist installed a matrix behind a closed-form metric")
	}
	if topo.Graph().Precomputed() {
		t.Fatal("clique graph precomputed despite closed-form metric")
	}
}

func TestPrecomputeDistAutoThreshold(t *testing.T) {
	small := lineGraph(16)
	sin := NewInstance(small, nil, 1, []Txn{{Node: 0, Objects: []ObjectID{0}}}, []graph.NodeID{1})
	if !sin.PrecomputeDistAuto(1) {
		t.Fatal("auto declined a small graph-backed instance")
	}
	big := lineGraph(AutoPrecomputeNodes + 1)
	bin := NewInstance(big, nil, 1, []Txn{{Node: 0, Objects: []ObjectID{0}}}, []graph.NodeID{1})
	if bin.PrecomputeDistAuto(1) {
		t.Fatal("auto installed a matrix above the size threshold")
	}
	if big.Precomputed() {
		t.Fatal("oversized graph got a matrix")
	}
}

func generate(t *testing.T, w Workload, n int, place Placement) *Instance {
	t.Helper()
	g := lineGraph(n)
	r := rand.New(rand.NewSource(3))
	in := w.Generate(r, g, nil, g.Nodes(), place)
	if err := in.Validate(); err != nil {
		t.Fatalf("%s: generated invalid instance: %v", w.Name, err)
	}
	return in
}

func TestUniformKWorkload(t *testing.T) {
	in := generate(t, UniformK(10, 3), 20, PlaceAtRandomUser)
	for i := range in.Txns {
		if len(in.Txns[i].Objects) != 3 {
			t.Fatalf("txn %d has %d objects", i, len(in.Txns[i].Objects))
		}
	}
	// Homes must be at requesters (or anywhere for unrequested objects).
	for o := 0; o < in.NumObjects; o++ {
		users := in.Users(ObjectID(o))
		if len(users) == 0 {
			continue
		}
		found := false
		for _, id := range users {
			if in.Txns[id].Node == in.Home[o] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d homed at %d, not at any requester", o, in.Home[o])
		}
	}
}

func TestPlaceAtFirstUserDeterministic(t *testing.T) {
	in := generate(t, UniformK(6, 2), 12, PlaceAtFirstUser)
	for o := 0; o < in.NumObjects; o++ {
		users := in.Users(ObjectID(o))
		if len(users) > 0 && in.Home[o] != in.Txns[users[0]].Node {
			t.Fatalf("object %d not at first user", o)
		}
	}
}

func TestZipfSkewsPopularity(t *testing.T) {
	in := generate(t, ZipfK(50, 2), 200, PlaceAtRandomUser)
	// Object 0 should be far more popular than object 40.
	if len(in.Users(0)) <= len(in.Users(40)) {
		t.Fatalf("zipf not skewed: users(0)=%d users(40)=%d", len(in.Users(0)), len(in.Users(40)))
	}
}

func TestHotspotEveryoneUsesObjectZero(t *testing.T) {
	in := generate(t, HotspotK(10, 3), 15, PlaceAtRandomUser)
	if len(in.Users(0)) != 15 {
		t.Fatalf("hotspot object used by %d of 15", len(in.Users(0)))
	}
}

func TestPartitionedKRespectsGroups(t *testing.T) {
	// 4 groups of 5 objects; nodes assigned round-robin.
	wl := PartitionedK(20, 2, 4, func(v graph.NodeID) int { return int(v) % 4 })
	in := generate(t, wl, 16, PlaceAtRandomUser)
	for i := range in.Txns {
		grp := int(in.Txns[i].Node) % 4
		for _, o := range in.Txns[i].Objects {
			if int(o)/5 != grp {
				t.Fatalf("txn %d (group %d) picked object %d", i, grp, o)
			}
		}
	}
}

func TestPartitionedKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible groups")
		}
	}()
	PartitionedK(10, 2, 3, func(graph.NodeID) int { return 0 })
}

func TestLocalizedKExtremes(t *testing.T) {
	assign := func(v graph.NodeID) int { return int(v) % 4 }
	// locality=1 degenerates to a partitioned workload.
	in := generate(t, LocalizedK(20, 2, 4, 1, assign), 16, PlaceAtRandomUser)
	for i := range in.Txns {
		grp := int(in.Txns[i].Node) % 4
		for _, o := range in.Txns[i].Objects {
			if int(o)/5 != grp {
				t.Fatalf("locality=1: txn %d (group %d) picked object %d", i, grp, o)
			}
		}
	}
	// locality=0 draws escape the group: over 200 nodes some txn must pick
	// an object outside its own fifth of the space.
	in = generate(t, LocalizedK(20, 2, 4, 0, assign), 200, PlaceAtRandomUser)
	escaped := false
	for i := range in.Txns {
		grp := int(in.Txns[i].Node) % 4
		for _, o := range in.Txns[i].Objects {
			if int(o)/5 != grp {
				escaped = true
			}
		}
	}
	if !escaped {
		t.Fatal("locality=0 never picked outside the group")
	}
	// Negative assignment means "no group": still k distinct valid objects.
	in = generate(t, LocalizedK(20, 3, 4, 0.9, func(graph.NodeID) int { return -1 }), 32, PlaceAtRandomUser)
	for i := range in.Txns {
		seen := map[ObjectID]bool{}
		for _, o := range in.Txns[i].Objects {
			if o < 0 || int(o) >= 20 || seen[o] {
				t.Fatalf("txn %d picked invalid/duplicate object %d", i, o)
			}
			seen[o] = true
		}
	}
}

func TestLocalizedKPanics(t *testing.T) {
	for name, mk := range map[string]func(){
		"indivisible": func() { LocalizedK(10, 2, 3, 0.5, func(graph.NodeID) int { return 0 }) },
		"k>group":     func() { LocalizedK(8, 3, 4, 0.5, func(graph.NodeID) int { return 0 }) },
		"locality>1":  func() { LocalizedK(8, 2, 4, 1.5, func(graph.NodeID) int { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			mk()
		}()
	}
}

func TestNeighborhoodKWindows(t *testing.T) {
	n, w, win := 64, 64, 8
	wl := NeighborhoodK(w, 2, n, win)
	in := generate(t, wl, n, PlaceAtRandomUser)
	for i := range in.Txns {
		frac := float64(in.Txns[i].Node) / float64(n-1)
		start := int(frac * float64(w-win))
		for _, o := range in.Txns[i].Objects {
			if int(o) < start-1 || int(o) > start+win {
				t.Fatalf("txn at node %d picked object %d outside window [%d,%d)", in.Txns[i].Node, o, start, start+win)
			}
		}
	}
}

func TestSingleObjectWorkload(t *testing.T) {
	in := generate(t, SingleObject(), 8, PlaceAtRandomUser)
	if in.NumObjects != 1 || in.MaxUse() != 8 {
		t.Fatalf("single-object instance wrong: w=%d maxuse=%d", in.NumObjects, in.MaxUse())
	}
}

func TestWorkloadPickCountMismatchPanics(t *testing.T) {
	w := Workload{W: 4, K: 2, Name: "broken",
		Pick: func(*rand.Rand, graph.NodeID) []ObjectID { return []ObjectID{0} }}
	g := lineGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong pick count")
		}
	}()
	w.Generate(rand.New(rand.NewSource(1)), g, nil, g.Nodes(), PlaceAtRandomUser)
}

func TestWorkloadKExceedsWPanics(t *testing.T) {
	g := lineGraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > w")
		}
	}()
	UniformK(2, 3).Generate(rand.New(rand.NewSource(1)), g, nil, g.Nodes(), PlaceAtRandomUser)
}

func TestGeneratedObjectsAlwaysValidProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(40)
		w := 2 + r.Intn(20)
		k := 1 + r.Intn(minInt(w, 4))
		g := lineGraph(n)
		in := UniformK(w, k).Generate(r, g, nil, g.Nodes(), PlaceAtRandomUser)
		return in.Validate() == nil && in.MaxK() == k
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLBInstanceStructure(t *testing.T) {
	topo := topology.NewLBGrid(4)
	r := xrand.New(5)
	li := NewLBInstance(r, topo)
	if err := li.Validate(); err != nil {
		t.Fatalf("LB instance invalid: %v", err)
	}
	s := topo.S()
	if li.NumObjects != 2*s {
		t.Fatalf("w = %d, want %d", li.NumObjects, 2*s)
	}
	// Every transaction: exactly its block's A-object plus one B-object.
	for i := range li.Txns {
		objs := li.Txns[i].Objects
		if len(objs) != 2 {
			t.Fatalf("txn %d has %d objects", i, len(objs))
		}
		b := topo.Block(li.Txns[i].Node)
		if objs[0] != li.AObject(b) {
			t.Fatalf("txn %d in block %d uses A-object %d", i, b, objs[0])
		}
		if li.IsA(objs[1]) {
			t.Fatalf("txn %d second object %d is an A-object", i, objs[1])
		}
	}
	// A-objects are used by every transaction of their block.
	for b := 0; b < s; b++ {
		if got, want := len(li.Users(li.AObject(b))), s*topo.SqrtS(); got != want {
			t.Fatalf("A-object %d used by %d txns, want %d", b, got, want)
		}
	}
	// All homes are inside H_1; A-objects at the top-left corner.
	for o := 0; o < li.NumObjects; o++ {
		if topo.Block(li.Home[o]) != 0 {
			t.Fatalf("object %d homed outside H_1", o)
		}
	}
	for b := 0; b < s; b++ {
		if li.Home[li.AObject(b)] != topo.ID(0, 0) {
			t.Fatalf("A-object %d not at H_1 corner", b)
		}
	}
	// B-objects sit at a requester in H_1 when one exists.
	for i := 0; i < s; i++ {
		o := li.BObject(i)
		var h1Users []graph.NodeID
		for _, id := range li.Users(o) {
			if topo.Block(li.Txns[id].Node) == 0 {
				h1Users = append(h1Users, li.Txns[id].Node)
			}
		}
		if len(h1Users) == 0 {
			continue
		}
		found := false
		for _, v := range h1Users {
			if v == li.Home[o] {
				found = true
			}
		}
		if !found {
			t.Fatalf("B-object %d has H_1 requesters but homed elsewhere in H_1", i)
		}
	}
}

func TestLBInstanceOnTree(t *testing.T) {
	topo := topology.NewLBTree(4)
	li := NewLBInstance(xrand.New(9), topo)
	if err := li.Validate(); err != nil {
		t.Fatalf("tree LB instance invalid: %v", err)
	}
	if li.NumTxns() != topo.Graph().NumNodes() {
		t.Fatal("not one transaction per node")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
