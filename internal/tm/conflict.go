package tm

import "sort"

// ConflictIndex is the shared object → member-transaction index: for every
// object o it lists, in ascending TxnID order, the transactions requesting
// o (the paper's set A_i). It is the single source of conflict information
// in the repo — the dependency-graph builder (internal/depgraph), the
// multi-window extension (internal/windows), the online executor
// (internal/online), and the baseline orderings (internal/baseline) all
// consume it instead of re-deriving memberships from Txns[].Objects.
//
// An index is either owned by an Instance (built once, read-only, shared
// across concurrent engine jobs — see Instance.Index) or free-standing and
// mutable: NewConflictIndex plus Add/Remove support workloads whose member
// set evolves, such as the windows extension re-registering each window's
// transactions instead of rebuilding the index from scratch.
type ConflictIndex struct {
	members [][]TxnID
}

// NewConflictIndex returns an empty mutable index over numObjects objects.
func NewConflictIndex(numObjects int) *ConflictIndex {
	return &ConflictIndex{members: make([][]TxnID, numObjects)}
}

// IndexTxns bulk-builds the index of a transaction set: members appear in
// ascending TxnID order because transactions are scanned in ID order.
func IndexTxns(numObjects int, txns []Txn) *ConflictIndex {
	ci := NewConflictIndex(numObjects)
	for i := range txns {
		for _, o := range txns[i].Objects {
			ci.members[o] = append(ci.members[o], txns[i].ID)
		}
	}
	return ci
}

// NumObjects returns the number of objects the index covers.
func (ci *ConflictIndex) NumObjects() int { return len(ci.members) }

// Members returns the transactions requesting object o, in ascending ID
// order. The returned slice is the index's own storage: callers must not
// modify it, and must not retain it across Add/Remove.
func (ci *ConflictIndex) Members(o ObjectID) []TxnID { return ci.members[o] }

// MaxUse returns ℓ = max_o |Members(o)|, zero for an empty index.
func (ci *ConflictIndex) MaxUse() int {
	maxUse := 0
	for _, ms := range ci.members {
		if len(ms) > maxUse {
			maxUse = len(ms)
		}
	}
	return maxUse
}

// Add registers a transaction as a member of each listed object, keeping
// member lists sorted. Adding an already-present member is a no-op, so
// re-registration is idempotent.
func (ci *ConflictIndex) Add(id TxnID, objects []ObjectID) {
	for _, o := range objects {
		ms := ci.members[o]
		i := sort.Search(len(ms), func(i int) bool { return ms[i] >= id })
		if i < len(ms) && ms[i] == id {
			continue
		}
		ms = append(ms, 0)
		copy(ms[i+1:], ms[i:])
		ms[i] = id
		ci.members[o] = ms
	}
}

// Remove deregisters a transaction from each listed object. Removing an
// absent member is a no-op. The freed capacity is retained, so a
// Remove/Add cycle over same-sized windows allocates nothing.
func (ci *ConflictIndex) Remove(id TxnID, objects []ObjectID) {
	for _, o := range objects {
		ms := ci.members[o]
		i := sort.Search(len(ms), func(i int) bool { return ms[i] >= id })
		if i >= len(ms) || ms[i] != id {
			continue
		}
		copy(ms[i:], ms[i+1:])
		ci.members[o] = ms[:len(ms)-1]
	}
}
