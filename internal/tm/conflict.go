package tm

import (
	"fmt"
	"sort"
)

// ConflictIndex is the shared object → member-transaction index: for every
// object o it lists, in ascending TxnID order, the transactions requesting
// o (the paper's set A_i). It is the single source of conflict information
// in the repo — the dependency-graph builder (internal/depgraph), the
// multi-window extension (internal/windows), the online executor
// (internal/online), and the baseline orderings (internal/baseline) all
// consume it instead of re-deriving memberships from Txns[].Objects.
//
// An index is either owned by an Instance (built once, read-only, shared
// across concurrent engine jobs — see Instance.Index) or free-standing and
// mutable: NewConflictIndex plus Add/Remove support workloads whose member
// set evolves, such as the windows extension re-registering each window's
// transactions instead of rebuilding the index from scratch.
type ConflictIndex struct {
	members [][]TxnID
}

// NewConflictIndex returns an empty mutable index over numObjects objects.
func NewConflictIndex(numObjects int) *ConflictIndex {
	return &ConflictIndex{members: make([][]TxnID, numObjects)}
}

// IndexTxns bulk-builds the index of a transaction set: members appear in
// ascending TxnID order because transactions are scanned in ID order.
func IndexTxns(numObjects int, txns []Txn) *ConflictIndex {
	ci := NewConflictIndex(numObjects)
	for i := range txns {
		for _, o := range txns[i].Objects {
			ci.members[o] = append(ci.members[o], txns[i].ID)
		}
	}
	return ci
}

// MemberSource is the read-only view of conflict membership that
// consumers accept (the dependency-graph builder in particular): the
// object count plus each object's member transactions in ascending ID
// order. *ConflictIndex implements it directly; ShardView implements it
// for one shard of a PartitionedView.
type MemberSource interface {
	// NumObjects returns the number of objects the source covers.
	NumObjects() int
	// Members returns the transactions requesting object o, ascending by
	// ID. The slice aliases the source's storage: read-only.
	Members(o ObjectID) []TxnID
}

var (
	_ MemberSource = (*ConflictIndex)(nil)
	_ MemberSource = ShardView{}
)

// NumObjects returns the number of objects the index covers.
func (ci *ConflictIndex) NumObjects() int { return len(ci.members) }

// Members returns the transactions requesting object o, in ascending ID
// order. The returned slice is the index's own storage: callers must not
// modify it, and must not retain it across Add/Remove.
func (ci *ConflictIndex) Members(o ObjectID) []TxnID { return ci.members[o] }

// MaxUse returns ℓ = max_o |Members(o)|, zero for an empty index.
func (ci *ConflictIndex) MaxUse() int {
	maxUse := 0
	for _, ms := range ci.members {
		if len(ms) > maxUse {
			maxUse = len(ms)
		}
	}
	return maxUse
}

// Add registers a transaction as a member of each listed object, keeping
// member lists sorted. Adding an already-present member is a no-op, so
// re-registration is idempotent.
func (ci *ConflictIndex) Add(id TxnID, objects []ObjectID) {
	for _, o := range objects {
		ms := ci.members[o]
		i := sort.Search(len(ms), func(i int) bool { return ms[i] >= id })
		if i < len(ms) && ms[i] == id {
			continue
		}
		ms = append(ms, 0)
		copy(ms[i+1:], ms[i:])
		ms[i] = id
		ci.members[o] = ms
	}
}

// PartitionedView regroups a ConflictIndex's member lists by shard
// without copying instances: one flat backing array holds every (object,
// shard) member group contiguously, so ShardView.Members is a
// zero-allocation subslice lookup and building the view costs one pass
// over the index. The hierarchical scheduler (internal/hier) builds one
// view per decomposition and hands each shard's ShardView to the
// dependency-graph builder in place of the full index.
//
// The view is a snapshot: later Add/Remove calls on the source index are
// not reflected.
type PartitionedView struct {
	shards     int
	numObjects int
	flat       []TxnID
	// off indexes the flat array: the members of object o assigned to
	// shard s occupy flat[off[o·shards+s]:off[o·shards+s+1]].
	off []int32
}

// Partition splits the index's member lists into shards groups according
// to shardOf, which maps every member TxnID to its shard in [0, shards).
// Within each (object, shard) group the ascending-ID member order of the
// source index is preserved.
func (ci *ConflictIndex) Partition(shards int, shardOf []int) *PartitionedView {
	if shards < 1 {
		panic(fmt.Sprintf("tm: partition into %d shards", shards))
	}
	w := len(ci.members)
	pv := &PartitionedView{shards: shards, numObjects: w, off: make([]int32, w*shards+1)}
	var total int
	for _, ms := range ci.members {
		total += len(ms)
	}
	pv.flat = make([]TxnID, total)
	// Counting pass: group sizes into off (shifted by one for the later
	// prefix sum).
	for o, ms := range ci.members {
		for _, id := range ms {
			s := shardOf[id]
			if s < 0 || s >= shards {
				panic(fmt.Sprintf("tm: transaction %d assigned to shard %d of %d", id, s, shards))
			}
			pv.off[o*shards+s+1]++
		}
	}
	for i := 1; i < len(pv.off); i++ {
		pv.off[i] += pv.off[i-1]
	}
	// Scatter pass, stable within each group.
	cur := make([]int32, w*shards)
	copy(cur, pv.off[:w*shards])
	for o, ms := range ci.members {
		for _, id := range ms {
			g := o*shards + shardOf[id]
			pv.flat[cur[g]] = id
			cur[g]++
		}
	}
	return pv
}

// Shards returns the number of shards the view was built with.
func (pv *PartitionedView) Shards() int { return pv.shards }

// NumObjects returns the number of objects the view covers.
func (pv *PartitionedView) NumObjects() int { return pv.numObjects }

// Members returns object o's members assigned to shard s, ascending by
// ID. Zero-allocation; the slice aliases the view's storage.
func (pv *PartitionedView) Members(s int, o ObjectID) []TxnID {
	i := int(o)*pv.shards + s
	return pv.flat[pv.off[i]:pv.off[i+1]]
}

// View returns shard s's MemberSource over the partitioned index.
func (pv *PartitionedView) View(s int) ShardView {
	if s < 0 || s >= pv.shards {
		panic(fmt.Sprintf("tm: view of shard %d of %d", s, pv.shards))
	}
	return ShardView{pv: pv, shard: s}
}

// ShardView is one shard's read-only MemberSource over a PartitionedView.
// The zero value is not usable; obtain one from PartitionedView.View.
type ShardView struct {
	pv    *PartitionedView
	shard int
}

// NumObjects implements MemberSource.
func (v ShardView) NumObjects() int { return v.pv.numObjects }

// Members implements MemberSource: object o's members within this shard.
func (v ShardView) Members(o ObjectID) []TxnID { return v.pv.Members(v.shard, o) }

// Remove deregisters a transaction from each listed object. Removing an
// absent member is a no-op. The freed capacity is retained, so a
// Remove/Add cycle over same-sized windows allocates nothing.
func (ci *ConflictIndex) Remove(id TxnID, objects []ObjectID) {
	for _, o := range objects {
		ms := ci.members[o]
		i := sort.Search(len(ms), func(i int) bool { return ms[i] >= id })
		if i >= len(ms) || ms[i] != id {
			continue
		}
		copy(ms[i:], ms[i+1:])
		ci.members[o] = ms[:len(ms)-1]
	}
}
