package tm

import (
	"fmt"
	"math/rand"

	"dtmsched/internal/graph"
)

// Blocked is the structural view shared by the Section 8 lower-bound
// topologies (LBGrid and LBTree): s blocks H_1 … H_s of s×√s nodes each.
type Blocked interface {
	Graph() *graph.Graph
	Dist(u, v graph.NodeID) int64
	S() int
	SqrtS() int
	Block(id graph.NodeID) int
	BlockNodes(b int) []graph.NodeID
	ID(r, c int) graph.NodeID
}

// LBInstance is the Section 8 adversarial problem instance I_s together
// with its bookkeeping. Objects 0 … s−1 are the A-objects (a_{i+1} is used
// by every transaction of block i); objects s … 2s−1 are the B-objects,
// one of which each transaction picks uniformly at random. Every
// transaction therefore requests exactly k = 2 objects.
type LBInstance struct {
	*Instance
	Topo Blocked
}

// AObject returns the object ID of a_{b+1}, the block-b common object.
func (li *LBInstance) AObject(b int) ObjectID { return ObjectID(b) }

// BObject returns the object ID of b_{i+1}, the ith B-object.
func (li *LBInstance) BObject(i int) ObjectID { return ObjectID(li.Topo.S() + i) }

// IsA reports whether o is an A-object.
func (li *LBInstance) IsA(o ObjectID) bool { return int(o) < li.Topo.S() }

// NewLBInstance builds I_s on the given blocked topology using r for the
// per-transaction uniform B-object choices. Per the paper: every a_i starts
// at the top-left corner node of H_1, and every b_i starts at a node of H_1
// that uses it (or an arbitrary H_1 node when none does).
func NewLBInstance(r *rand.Rand, topo Blocked) *LBInstance {
	s := topo.S()
	g := topo.Graph()
	n := g.NumNodes()
	if n != s*s*topo.SqrtS() {
		panic(fmt.Sprintf("tm: blocked topology has %d nodes, want s^(5/2)=%d", n, s*s*topo.SqrtS()))
	}
	txns := make([]Txn, 0, n)
	// bPick[v] is recorded so homes can be assigned afterwards.
	bPick := make(map[graph.NodeID]ObjectID, n)
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		a := ObjectID(topo.Block(node))
		b := ObjectID(s + r.Intn(s))
		bPick[node] = b
		objs := []ObjectID{a, b}
		if a > b { // keep sorted (cannot happen: a < s ≤ b) — defensive
			objs[0], objs[1] = objs[1], objs[0]
		}
		txns = append(txns, Txn{Node: node, Objects: objs})
	}

	home := make([]graph.NodeID, 2*s)
	topLeft := topo.ID(0, 0)
	for i := 0; i < s; i++ {
		home[i] = topLeft // all A-objects start at H_1's top-left corner
	}
	h1 := topo.BlockNodes(0)
	for i := 0; i < s; i++ {
		b := ObjectID(s + i)
		home[s+i] = h1[r.Intn(len(h1))] // fallback: arbitrary node of H_1
		for _, v := range h1 {
			if bPick[v] == b {
				home[s+i] = v
				break
			}
		}
	}

	in := NewInstance(g, metricOf(topo), 2*s, txns, home)
	return &LBInstance{Instance: in, Topo: topo}
}

// metricOf adapts a Blocked topology's closed-form Dist to graph.Metric.
func metricOf(topo Blocked) graph.Metric {
	return graph.FuncMetric(func(u, v graph.NodeID) int64 { return topo.Dist(u, v) })
}
