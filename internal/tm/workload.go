package tm

import (
	"fmt"
	"math/rand"
	"sort"

	"dtmsched/internal/graph"
	"dtmsched/internal/xrand"
)

// Placement selects the initial node of each object, matching the paper's
// assumption that "initially, each object is at one of the nodes (if any)
// that needs it".
type Placement int

// Placement policies.
const (
	// PlaceAtRandomUser homes each object at a uniformly random
	// requesting transaction's node (or a random node if unrequested).
	PlaceAtRandomUser Placement = iota
	// PlaceAtFirstUser homes each object at its lowest-ID requester's
	// node, the deterministic variant used by tests.
	PlaceAtFirstUser
	// PlaceRandom homes each object at a uniformly random node,
	// regardless of requesters (used for sensitivity experiments; the
	// paper's theorems assume user placement).
	PlaceRandom
)

// Workload describes how transactions choose their object sets.
type Workload struct {
	// W is the number of shared objects.
	W int
	// K is the number of objects each transaction requests (k ≤ w).
	K int
	// Pick chooses the object set for the transaction at a node. It
	// must return K distinct objects in [0, W).
	Pick func(r *rand.Rand, node graph.NodeID) []ObjectID
	// Name labels the workload in reports.
	Name string
}

// Generate builds an instance over g (with distance oracle metric, nil for
// the graph itself), placing one transaction on each node of nodes and
// homing objects per policy. It uses r for every random choice.
func (w Workload) Generate(r *rand.Rand, g *graph.Graph, metric graph.Metric, nodes []graph.NodeID, place Placement) *Instance {
	if w.K > w.W {
		panic(fmt.Sprintf("tm: workload k=%d exceeds w=%d", w.K, w.W))
	}
	txns := make([]Txn, len(nodes))
	for i, v := range nodes {
		objs := w.Pick(r, v)
		if len(objs) != w.K {
			panic(fmt.Sprintf("tm: workload %q picked %d objects, want %d", w.Name, len(objs), w.K))
		}
		txns[i] = Txn{Node: v, Objects: objs}
	}
	in := NewInstance(g, metric, w.W, txns, nil)
	in.Home = PlaceObjects(r, in, place)
	return in
}

// PlaceObjects computes initial object homes for an instance whose
// transactions are already fixed.
func PlaceObjects(r *rand.Rand, in *Instance, place Placement) []graph.NodeID {
	n := in.G.NumNodes()
	home := make([]graph.NodeID, in.NumObjects)
	for o := range home {
		users := in.Users(ObjectID(o))
		switch {
		case place == PlaceRandom || len(users) == 0:
			home[o] = graph.NodeID(r.Intn(n))
		case place == PlaceAtFirstUser:
			home[o] = in.Txns[users[0]].Node
		default: // PlaceAtRandomUser
			home[o] = in.Txns[users[r.Intn(len(users))]].Node
		}
	}
	return home
}

// UniformK is the Grid problem's workload: each transaction requests a
// uniformly random k-subset of the w objects.
func UniformK(w, k int) Workload {
	return Workload{
		W: w, K: k, Name: fmt.Sprintf("uniform(w=%d,k=%d)", w, k),
		Pick: func(r *rand.Rand, _ graph.NodeID) []ObjectID {
			return toObjectIDs(xrand.SampleK(r, w, k))
		},
	}
}

// ZipfK skews object popularity with a Zipf(s≈1.07) distribution over the w
// objects, modeling hotspot contention; each transaction still requests k
// distinct objects. This is one realization of the paper's "arbitrary"
// object sets.
func ZipfK(w, k int) Workload {
	return Workload{
		W: w, K: k, Name: fmt.Sprintf("zipf(w=%d,k=%d)", w, k),
		Pick: func(r *rand.Rand, _ graph.NodeID) []ObjectID {
			z := rand.NewZipf(r, 1.07, 1, uint64(w-1))
			picked := make(map[ObjectID]struct{}, k)
			out := make([]ObjectID, 0, k)
			for len(out) < k {
				o := ObjectID(z.Uint64())
				if _, dup := picked[o]; dup {
					continue
				}
				picked[o] = struct{}{}
				out = append(out, o)
			}
			return out
		},
	}
}

// HotspotK makes every transaction request object 0 (the hotspot) plus k−1
// uniform others — the worst case for ℓ, exercising the serialization that
// Theorem 1's lower bound argument (an object must visit each requester)
// rests on.
func HotspotK(w, k int) Workload {
	return Workload{
		W: w, K: k, Name: fmt.Sprintf("hotspot(w=%d,k=%d)", w, k),
		Pick: func(r *rand.Rand, _ graph.NodeID) []ObjectID {
			out := []ObjectID{0}
			if k > 1 {
				for _, x := range xrand.SampleK(r, w-1, k-1) {
					out = append(out, ObjectID(x+1))
				}
			}
			return out
		},
	}
}

// PartitionedK splits the object space into g groups and lets a node pick
// only from the group Assign(node) — e.g. cluster-local workloads where
// each object is used within one cluster (Cluster Approach 1's easy case).
func PartitionedK(w, k, groups int, assign func(node graph.NodeID) int) Workload {
	if groups < 1 || w%groups != 0 {
		panic(fmt.Sprintf("tm: %d objects not divisible into %d groups", w, groups))
	}
	per := w / groups
	if k > per {
		panic(fmt.Sprintf("tm: k=%d exceeds group size %d", k, per))
	}
	return Workload{
		W: w, K: k, Name: fmt.Sprintf("partitioned(w=%d,k=%d,g=%d)", w, k, groups),
		Pick: func(r *rand.Rand, node graph.NodeID) []ObjectID {
			g := assign(node)
			base := g * per
			out := make([]ObjectID, 0, k)
			for _, x := range xrand.SampleK(r, per, k) {
				out = append(out, ObjectID(base+x))
			}
			return out
		},
	}
}

// LocalizedK interpolates between PartitionedK and UniformK: the object
// space splits into g equal groups, and each draw lands in the node's own
// group (per assign) with probability locality, anywhere otherwise. Nodes
// that assign maps below zero (e.g. fog–cloud nodes above the shard tier)
// always draw uniformly. locality=1 with group-aligned assignment is fully
// partitioned; locality=0 is uniform — the knob the hierarchical
// scheduler's experiments sweep to trade local against cross conflicts.
func LocalizedK(w, k, groups int, locality float64, assign func(node graph.NodeID) int) Workload {
	if groups < 1 || w%groups != 0 {
		panic(fmt.Sprintf("tm: %d objects not divisible into %d groups", w, groups))
	}
	per := w / groups
	if k > per {
		panic(fmt.Sprintf("tm: k=%d exceeds group size %d", k, per))
	}
	if locality < 0 || locality > 1 {
		panic(fmt.Sprintf("tm: locality %g outside [0,1]", locality))
	}
	return Workload{
		W: w, K: k, Name: fmt.Sprintf("localized(w=%d,k=%d,g=%d,p=%g)", w, k, groups, locality),
		Pick: func(r *rand.Rand, node graph.NodeID) []ObjectID {
			g := assign(node)
			if g < 0 {
				return toObjectIDs(xrand.SampleK(r, w, k))
			}
			base := g * per
			picked := make(map[ObjectID]struct{}, k)
			out := make([]ObjectID, 0, k)
			for len(out) < k {
				var o ObjectID
				if r.Float64() < locality {
					o = ObjectID(base + r.Intn(per))
				} else {
					o = ObjectID(r.Intn(w))
				}
				if _, dup := picked[o]; dup {
					continue
				}
				picked[o] = struct{}{}
				out = append(out, o)
			}
			return out
		},
	}
}

// NeighborhoodK draws each transaction's objects from a window of the
// object space centered on the node's index, producing the bounded-walk
// locality that makes the Line schedule interesting (objects travel at most
// a window's width).
func NeighborhoodK(w, k, n, window int) Workload {
	if window < k {
		panic(fmt.Sprintf("tm: window %d smaller than k=%d", window, k))
	}
	return Workload{
		W: w, K: k, Name: fmt.Sprintf("neighborhood(w=%d,k=%d,win=%d)", w, k, window),
		Pick: func(r *rand.Rand, node graph.NodeID) []ObjectID {
			// Map the node's position to a window start in object space.
			frac := float64(node) / float64(maxInt(n-1, 1))
			start := int(frac * float64(w-window))
			if start < 0 {
				start = 0
			}
			if start > w-window {
				start = w - window
			}
			out := make([]ObjectID, 0, k)
			for _, x := range xrand.SampleK(r, window, k) {
				out = append(out, ObjectID(start+x))
			}
			return out
		},
	}
}

// SingleObject is the classic single shared object workload of prior
// data-flow work (Herlihy–Sun): every transaction requests object 0.
func SingleObject() Workload {
	return Workload{
		W: 1, K: 1, Name: "single-object",
		Pick: func(_ *rand.Rand, _ graph.NodeID) []ObjectID { return []ObjectID{0} },
	}
}

func toObjectIDs(xs []int) []ObjectID {
	out := make([]ObjectID, len(xs))
	for i, x := range xs {
		out[i] = ObjectID(x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
