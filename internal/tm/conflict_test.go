package tm

import (
	"math/rand"
	"slices"
	"testing"

	"dtmsched/internal/graph"
)

func conflictTestInstance() *Instance {
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return NewInstance(g, nil, 3, []Txn{
		{Node: 0, Objects: []ObjectID{0, 1}},
		{Node: 1, Objects: []ObjectID{0}},
		{Node: 2, Objects: []ObjectID{1, 2}},
		{Node: 3, Objects: nil},
	}, []graph.NodeID{0, 1, 2})
}

func TestInstanceIndexBacksUsers(t *testing.T) {
	in := conflictTestInstance()
	index := in.Index()
	if index != in.Index() {
		t.Fatal("Index not cached")
	}
	want := map[ObjectID][]TxnID{0: {0, 1}, 1: {0, 2}, 2: {2}}
	for o, members := range want {
		if !slices.Equal(index.Members(o), members) {
			t.Fatalf("Members(%d) = %v, want %v", o, index.Members(o), members)
		}
		if !slices.Equal(in.Users(o), members) {
			t.Fatalf("Users(%d) = %v, want %v", o, in.Users(o), members)
		}
	}
	if in.MaxUse() != 2 || index.MaxUse() != 2 {
		t.Fatalf("MaxUse = %d/%d, want 2", in.MaxUse(), index.MaxUse())
	}
	if index.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d", index.NumObjects())
	}
}

func TestConflictIndexAddRemove(t *testing.T) {
	ci := NewConflictIndex(2)
	if ci.MaxUse() != 0 {
		t.Fatalf("empty MaxUse = %d", ci.MaxUse())
	}
	// Out-of-order adds keep member lists sorted.
	ci.Add(5, []ObjectID{0, 1})
	ci.Add(1, []ObjectID{0})
	ci.Add(3, []ObjectID{0})
	if got := ci.Members(0); !slices.Equal(got, []TxnID{1, 3, 5}) {
		t.Fatalf("Members(0) = %v", got)
	}
	// Idempotent re-add.
	ci.Add(3, []ObjectID{0})
	if got := ci.Members(0); !slices.Equal(got, []TxnID{1, 3, 5}) {
		t.Fatalf("Members(0) after re-add = %v", got)
	}
	ci.Remove(3, []ObjectID{0})
	if got := ci.Members(0); !slices.Equal(got, []TxnID{1, 5}) {
		t.Fatalf("Members(0) after remove = %v", got)
	}
	// Removing an absent member is a no-op.
	ci.Remove(3, []ObjectID{0, 1})
	if got := ci.Members(1); !slices.Equal(got, []TxnID{5}) {
		t.Fatalf("Members(1) = %v", got)
	}
	if ci.MaxUse() != 2 {
		t.Fatalf("MaxUse = %d, want 2", ci.MaxUse())
	}
}

// TestConflictIndexWindowCycle: deregistering one "window" of transactions
// and registering another leaves the index identical to a fresh bulk build
// — the reuse contract the windows extension depends on.
func TestConflictIndexWindowCycle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const numObjects = 16
	makeTxns := func() []Txn {
		txns := make([]Txn, 12)
		for i := range txns {
			objs := map[ObjectID]bool{}
			for len(objs) < 1+r.Intn(3) {
				objs[ObjectID(r.Intn(numObjects))] = true
			}
			txns[i].ID = TxnID(i)
			for o := range objs {
				txns[i].Objects = append(txns[i].Objects, o)
			}
			sortObjects(txns[i].Objects)
		}
		return txns
	}
	ci := NewConflictIndex(numObjects)
	var prev []Txn
	for window := 0; window < 5; window++ {
		cur := makeTxns()
		for i := range prev {
			ci.Remove(prev[i].ID, prev[i].Objects)
		}
		for i := range cur {
			ci.Add(cur[i].ID, cur[i].Objects)
		}
		prev = cur
		fresh := IndexTxns(numObjects, cur)
		for o := 0; o < numObjects; o++ {
			if !slices.Equal(ci.Members(ObjectID(o)), fresh.Members(ObjectID(o))) {
				t.Fatalf("window %d object %d: reused index %v != fresh %v",
					window, o, ci.Members(ObjectID(o)), fresh.Members(ObjectID(o)))
			}
		}
	}
}
