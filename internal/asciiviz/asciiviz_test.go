package asciiviz

import (
	"strings"
	"testing"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func TestLineFigure(t *testing.T) {
	out := Line(32, 8)
	if !strings.Contains(out, "n=32") || !strings.Contains(out, "S3") {
		t.Fatalf("line figure missing markers:\n%s", out)
	}
	// 32 nodes: 16 phase-1 (●) and 16 phase-2 (○), plus one of each in
	// the legend line.
	if strings.Count(out, "●") != 17 || strings.Count(out, "○") != 17 {
		t.Fatalf("phase markers wrong:\n%s", out)
	}
	// Degenerate ℓ is clamped.
	if !strings.Contains(Line(4, 0), "ℓ=1") {
		t.Fatal("ℓ clamp missing")
	}
}

func TestGridSnakeFigure(t *testing.T) {
	out := GridSnake(16, 4)
	// 16 tiles numbered 1..16; the snake visits column 0 top-down.
	if !strings.Contains(out, "[  1][  8]") {
		t.Fatalf("snake order wrong:\n%s", out)
	}
	if !strings.Contains(out, "[ 16]") {
		t.Fatalf("missing last tile:\n%s", out)
	}
}

func TestClusterFigure(t *testing.T) {
	out := Cluster(5, 6, 12)
	if strings.Count(out, "(*)") != 5 {
		t.Fatalf("want 5 bridge markers:\n%s", out)
	}
	if strings.Count(out, "(o)") != 25 {
		t.Fatalf("want 25 plain nodes:\n%s", out)
	}
}

func TestStarFigure(t *testing.T) {
	out := Star(8, 7)
	if !strings.Contains(out, "η=3") {
		t.Fatalf("segment count missing:\n%s", out)
	}
	if strings.Count(out, "(ray") != 8 {
		t.Fatalf("want 8 rays:\n%s", out)
	}
	// Each ray line shows segments 1,2,2,3,3,3,3.
	if !strings.Contains(out, "-1-2-2-3-3-3-3") {
		t.Fatalf("segment digits wrong:\n%s", out)
	}
}

func TestBlocksFigure(t *testing.T) {
	grid := Blocks(16, false)
	if !strings.Contains(grid, "H1") || !strings.Contains(grid, "=16=") {
		t.Fatalf("grid blocks missing markers:\n%s", grid)
	}
	tree := Blocks(16, true)
	if !strings.Contains(tree, "tree") || !strings.Contains(tree, "leftmost column") {
		t.Fatalf("tree blocks missing markers:\n%s", tree)
	}
}

func TestGanttSmall(t *testing.T) {
	topo := topology.NewClique(6)
	in := tm.UniformK(4, 2).Generate(xrand.New(1), topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (&core.Greedy{}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(in, res.Schedule, 64, 100)
	if strings.Count(out, "X  (t=") != 6 {
		t.Fatalf("want 6 execution marks:\n%s", out)
	}
}

func TestGanttTooLarge(t *testing.T) {
	topo := topology.NewClique(4)
	in := tm.UniformK(2, 1).Generate(xrand.New(2), topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	s := &schedule.Schedule{Times: []int64{1, 2, 3, 4}}
	out := Gantt(in, s, 2, 100) // maxNodes too small
	if !strings.Contains(out, "too large") {
		t.Fatalf("oversize summary missing:\n%s", out)
	}
}

func TestObjectJourney(t *testing.T) {
	topo := topology.NewLine(5)
	g := topo.Graph()
	in := tm.NewInstance(g, graph.FuncMetric(topo.Dist), 1, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 3, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
	s := &schedule.Schedule{Times: []int64{1, 4}}
	out := ObjectJourney(in, s, 0)
	if !strings.Contains(out, "home=node 0") || !strings.Contains(out, "t=4@node 3") {
		t.Fatalf("journey wrong:\n%s", out)
	}
	if !strings.Contains(out, "[d=3]") {
		t.Fatalf("distance annotation missing:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	// One object passed down a 6-node line: committed at steps 1, 3, 6
	// with one step of queueing before the last use.
	topo := topology.NewLine(6)
	in := tm.NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1, []tm.Txn{
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 3, Objects: []tm.ObjectID{0}},
		{Node: 5, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
	s := &schedule.Schedule{Times: []int64{1, 3, 6}}
	out := Timeline(in, s, 10, 100)
	if !strings.Contains(out, "|X>X>=X|") {
		t.Errorf("object lane wrong:\n%s", out)
	}
	if !strings.Contains(out, "|1 1  1|") {
		t.Errorf("commit footer wrong:\n%s", out)
	}
	if !strings.Contains(out, "home=0 users=3") {
		t.Errorf("lane annotation wrong:\n%s", out)
	}
}

func TestTimelineTooWide(t *testing.T) {
	topo := topology.NewLine(4)
	in := tm.NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1, []tm.Txn{
		{Node: 3, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{0})
	s := &schedule.Schedule{Times: []int64{500}}
	out := Timeline(in, s, 10, 100)
	if !strings.Contains(out, "too wide") {
		t.Errorf("expected width fallback, got:\n%s", out)
	}
}
