// Package asciiviz renders the paper's figures and schedule visualizations
// as plain-text drawings: the Figure 1 line decomposition, the Figure 2
// grid snake order with an object path, the Figure 3 cluster graph, the
// Figure 4 star segments, the Figures 5–6 lower-bound block graphs, and
// Gantt charts of computed schedules.
package asciiviz

import (
	"fmt"
	"sort"
	"strings"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// Line renders a line graph of n nodes decomposed into subgraphs of size
// ell, marking the even (phase 1) and odd (phase 2) subgraphs as Figure 1
// does.
func Line(n, ell int) string {
	if ell < 1 {
		ell = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Line graph: n=%d, ℓ=%d (● phase-1 subgraphs, ○ phase-2 subgraphs)\n\n", n, ell)
	var nodes, marks strings.Builder
	for v := 0; v < n; v++ {
		y := v / ell
		if y%2 == 0 {
			nodes.WriteString("●")
		} else {
			nodes.WriteString("○")
		}
		if v+1 < n {
			nodes.WriteString("-")
		}
		if v%ell == 0 {
			marks.WriteString(fmt.Sprintf("|%-*s", 2*ell-1, fmt.Sprintf("S%d", y)))
		}
	}
	sb.WriteString(nodes.String())
	sb.WriteByte('\n')
	sb.WriteString(marks.String())
	sb.WriteByte('\n')
	return sb.String()
}

// GridSnake renders a side×side grid tiled into tile×tile subgrids with
// the Section 5 boustrophedon execution order numbered per tile, echoing
// Figure 2.
func GridSnake(side, tile int) string {
	if tile < 1 {
		tile = 1
	}
	g := topology.NewSquareGrid(side)
	order := topology.SnakeOrder(g.Decompose(tile))
	rank := make(map[[2]int]int, len(order))
	for i, t := range order {
		rank[[2]int{t.Row, t.Col}] = i + 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Grid %d×%d, subgrids %d×%d, execution order (column-major snake):\n\n", side, side, tile, tile)
	tiles := (side + tile - 1) / tile
	for r := 0; r < tiles; r++ {
		for c := 0; c < tiles; c++ {
			fmt.Fprintf(&sb, "[%3d]", rank[[2]int{r, c}])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Cluster renders the Figure 3 cluster graph: α cliques of β nodes, bridge
// nodes marked with *, bridge weight γ.
func Cluster(alpha, beta int, gamma int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster graph: α=%d cliques × β=%d nodes, bridge weight γ=%d\n", alpha, beta, gamma)
	fmt.Fprintf(&sb, "(* = bridge node; bridges form a clique over all * with weight-%d edges)\n\n", gamma)
	for i := 0; i < alpha; i++ {
		fmt.Fprintf(&sb, "C%-2d ", i)
		for j := 0; j < beta; j++ {
			if j == 0 {
				sb.WriteString("(*)")
			} else {
				sb.WriteString("(o)")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Star renders the Figure 4 star graph with its exponentially growing
// segments marked: segment i of a ray covers positions 2^(i−1) … 2^i−1.
func Star(alpha, beta int) string {
	s := topology.NewStar(alpha, beta)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Star graph: α=%d rays × β=%d nodes, η=%d segments per ray\n", alpha, beta, s.NumSegments())
	sb.WriteString("(S = center; digits mark each node's segment index)\n\n")
	segOf := make([]int, beta+1)
	for i := 1; i <= s.NumSegments(); i++ {
		lo := 1 << (i - 1)
		hi := 1<<i - 1
		if hi > beta {
			hi = beta
		}
		for p := lo; p <= hi && p <= beta; p++ {
			segOf[p] = i
		}
	}
	for r := 0; r < alpha; r++ {
		if r == 0 {
			sb.WriteString("S ")
		} else {
			sb.WriteString("  ")
		}
		for p := 1; p <= beta; p++ {
			fmt.Fprintf(&sb, "-%d", segOf[p]%10)
		}
		fmt.Fprintf(&sb, "   (ray %d)\n", r)
	}
	return sb.String()
}

// Blocks renders the Figures 5–6 lower-bound block layout for s blocks of
// s×√s nodes with weight-s inter-block edges.
func Blocks(s int, tree bool) string {
	sq := 0
	for sq*sq < s {
		sq++
	}
	kind := "grid"
	if tree {
		kind = "tree"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Lower-bound %s: s=%d blocks, each %d rows × %d cols; inter-block edge weight s=%d\n\n", kind, s, s, sq, s)
	show := s
	if show > 6 {
		show = 6
	}
	for b := 0; b < show; b++ {
		fmt.Fprintf(&sb, "H%-3d", b+1)
		sb.WriteString(strings.Repeat("▓", sq))
		if b+1 < s {
			fmt.Fprintf(&sb, " =%d= ", s)
		}
	}
	if show < s {
		fmt.Fprintf(&sb, "… (%d more blocks)", s-show)
	}
	sb.WriteByte('\n')
	if tree {
		sb.WriteString("each block: leftmost column is a vertical path; every row hangs off it (a tree)\n")
	} else {
		sb.WriteString("each block: full s×√s mesh of unit edges\n")
	}
	return sb.String()
}

// Gantt renders a schedule as one row per node with execution steps marked,
// for instances small enough to eyeball (≤ maxNodes rows, ≤ maxWidth
// steps; larger schedules are summarized instead).
func Gantt(in *tm.Instance, s *schedule.Schedule, maxNodes int, maxWidth int64) string {
	makespan := s.Makespan()
	if in.NumTxns() > maxNodes || makespan > maxWidth {
		return fmt.Sprintf("schedule too large to draw (%d transactions, makespan %d); summary: makespan=%d\n",
			in.NumTxns(), makespan, makespan)
	}
	type row struct {
		node graph.NodeID
		id   tm.TxnID
	}
	rows := make([]row, 0, in.NumTxns())
	for i := range in.Txns {
		rows = append(rows, row{in.Txns[i].Node, tm.TxnID(i)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	var sb strings.Builder
	fmt.Fprintf(&sb, "Gantt (rows = nodes, X = execution step, makespan = %d):\n\n", makespan)
	for _, r := range rows {
		t := s.Times[r.id]
		fmt.Fprintf(&sb, "node %4d |%s X  (t=%d, objs=%v)\n", r.node, strings.Repeat(".", int(t-1)), t, in.Txns[r.id].Objects)
	}
	return sb.String()
}

// Timeline renders a run's per-object timeline over simulated steps: one
// lane per requested object, marking transit hops (>), queue waits at the
// destination node (=), and use steps (X), with a per-step commit-count
// footer. It is the text rendering of the same move/wait spans the obs
// trace recorder exports to Perfetto, so `dtmsched trace` and a Chrome
// trace of the same run show the same shape.
func Timeline(in *tm.Instance, s *schedule.Schedule, maxObjects int, maxWidth int64) string {
	makespan := s.Makespan()
	if makespan > maxWidth {
		return fmt.Sprintf("timeline too wide to draw (makespan %d > %d); use the Chrome trace export instead\n",
			makespan, maxWidth)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Timeline (steps 1…%d; > transit, = queued, X use):\n\n", makespan)
	shown := 0
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		order := s.Order(in, oid)
		if len(order) == 0 {
			continue
		}
		if shown >= maxObjects {
			fmt.Fprintf(&sb, "… %d more objects\n", in.NumObjects-o)
			break
		}
		shown++
		lane := make([]byte, makespan+1)
		for i := range lane {
			lane[i] = '.'
		}
		prevNode := in.Home[oid]
		prevTime := int64(0)
		for _, id := range order {
			dest := in.Txns[id].Node
			arrive := prevTime + in.Dist(prevNode, dest)
			used := s.Times[id]
			for t := prevTime + 1; t <= arrive; t++ {
				lane[t] = '>'
			}
			for t := arrive; t < used; t++ {
				if t > 0 {
					lane[t] = '='
				}
			}
			lane[used] = 'X'
			prevNode, prevTime = dest, used
		}
		fmt.Fprintf(&sb, "obj %4d |%s| home=%d users=%d\n", o, lane[1:], in.Home[oid], len(order))
	}
	commits := make([]int, makespan+1)
	for _, t := range s.Times {
		commits[t]++
	}
	var foot strings.Builder
	for t := int64(1); t <= makespan; t++ {
		c := commits[t]
		switch {
		case c == 0:
			foot.WriteByte(' ')
		case c < 10:
			foot.WriteByte(byte('0' + c))
		default:
			foot.WriteByte('+')
		}
	}
	fmt.Fprintf(&sb, "commits  |%s| (per step; + means ≥10)\n", foot.String())
	return sb.String()
}

// ObjectJourney renders the route one object takes under a schedule: the
// sequence of (step, node) handoffs.
func ObjectJourney(in *tm.Instance, s *schedule.Schedule, o tm.ObjectID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "object %d: home=node %d", o, in.Home[o])
	var prev graph.NodeID = in.Home[o]
	for _, id := range s.Order(in, o) {
		v := in.Txns[id].Node
		fmt.Fprintf(&sb, " →[d=%d] t=%d@node %d", in.Dist(prev, v), s.Times[id], v)
		prev = v
	}
	sb.WriteByte('\n')
	return sb.String()
}
