package parexec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func instanceAndSchedule(t testing.TB, seed int64) (*tm.Instance, *schedule.Schedule) {
	t.Helper()
	topo := topology.NewSquareGrid(8)
	in := tm.UniformK(16, 2).Generate(xrand.New(seed), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (&core.Grid{Topo: topo}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, res.Schedule
}

func TestAgreesWithSequentialSimulator(t *testing.T) {
	in, s := instanceAndSchedule(t, 1)
	want, err := sim.Run(in, s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := Run(in, s, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Makespan != want.Makespan || got.CommCost != want.CommCost || got.Executed != want.Executed {
			t.Fatalf("workers=%d: parexec (%d,%d,%d) != sim (%d,%d,%d)", workers,
				got.Makespan, got.CommCost, got.Executed,
				want.Makespan, want.CommCost, want.Executed)
		}
	}
}

func TestRejectsInfeasible(t *testing.T) {
	in, s := instanceAndSchedule(t, 2)
	bad := s.Clone()
	// Find a transaction whose objects travel, and pull it to step 1.
	for i := range bad.Times {
		if bad.Times[i] > 1 && len(in.Txns[i].Objects) > 0 {
			bad.Times[i] = 1
			break
		}
	}
	if s.Validate(in) != nil {
		t.Fatal("base schedule should be feasible")
	}
	if bad.Validate(in) == nil {
		t.Skip("perturbation happened to stay feasible")
	}
	if _, err := Run(in, bad, Options{}); err == nil {
		t.Fatal("parexec accepted an infeasible schedule")
	}
}

func TestRejectsBadInput(t *testing.T) {
	in, s := instanceAndSchedule(t, 3)
	if _, err := Run(in, &schedule.Schedule{Times: []int64{1}}, Options{}); err == nil {
		t.Fatal("wrong length accepted")
	}
	bad := s.Clone()
	bad.Times[0] = 0
	if _, err := Run(in, bad, Options{}); err == nil {
		t.Fatal("step 0 accepted")
	}
}

func TestWeightedEdgesCluster(t *testing.T) {
	topo := topology.NewCluster(4, 4, 8)
	in := tm.UniformK(8, 2).Generate(xrand.New(4), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (&core.Cluster{Topo: topo, Rng: xrand.New(5)}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(in, res.Schedule, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(in, res.Schedule, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan || got.Executed != want.Executed {
		t.Fatalf("parexec (%d,%d) != sim (%d,%d)", got.Makespan, got.Executed, want.Makespan, want.Executed)
	}
}

// TestAgreementProperty cross-checks the concurrent and sequential engines
// on random instances and schedulers — the package's keystone invariant.
func TestAgreementProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo := topology.NewClique(4 + r.Intn(20))
		w := 2 + r.Intn(6)
		k := 1 + r.Intn(minInt(w, 3))
		in := tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
		res, err := (&core.Greedy{}).Schedule(in)
		if err != nil {
			return false
		}
		want, err := sim.Run(in, res.Schedule, sim.Options{})
		if err != nil {
			return false
		}
		got, err := Run(in, res.Schedule, Options{Workers: 1 + int(seed&3)})
		if err != nil {
			return false
		}
		return got.Makespan == want.Makespan && got.CommCost == want.CommCost && got.Executed == want.Executed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
