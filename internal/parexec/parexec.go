// Package parexec executes a schedule on a parallel step-synchronous
// engine: nodes are processed by a pool of goroutine workers within each
// synchronous step, objects travel hop by hop as messages through per-node
// mailboxes, and steps are separated by barriers. It is the concurrent
// counterpart of the sequential simulator in package sim — same semantics,
// different machinery — so agreement between the two is a strong check on
// both (and is asserted by tests and usable under `go test -race`).
//
// Determinism: within a step, node processing order does not affect the
// outcome (each node touches only its own mailbox and appends to a
// worker-private outbox merged at the barrier), so results are identical
// across worker counts.
package parexec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// message is one object in flight: it sits at a node and, unless it has
// reached its destination, continues along its precomputed hop path.
type message struct {
	obj  tm.ObjectID
	dest tm.TxnID
	// path holds the remaining nodes, path[0] being the node the
	// message is currently at (or arriving at).
	path []graph.NodeID
	// readyAt is the step at which the message is at path[0] (edges
	// with weight w > 1 take w steps per hop).
	readyAt int64
}

// Result mirrors sim.Result for cross-checking.
type Result struct {
	Makespan int64
	CommCost int64
	Executed int
	// Workers is the pool size actually used.
	Workers int
}

// Options configures the executor.
type Options struct {
	// Workers is the goroutine pool size (0 = GOMAXPROCS).
	Workers int
}

// Run executes schedule s on instance in and verifies object presence at
// every commit, exactly like sim.Run, but with per-step parallel node
// processing.
func Run(in *tm.Instance, s *schedule.Schedule, opt Options) (*Result, error) {
	m := in.NumTxns()
	if len(s.Times) != m {
		return nil, fmt.Errorf("parexec: schedule has %d times for %d transactions", len(s.Times), m)
	}
	for i, t := range s.Times {
		if t < 1 {
			return nil, fmt.Errorf("parexec: transaction %d at step %d < 1", i, t)
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := in.G.NumNodes()
	if workers > n {
		workers = n
	}

	// Itineraries and the transaction hosted per node.
	itineraries := make([][]tm.TxnID, in.NumObjects)
	nextStop := make([]int, in.NumObjects)
	for o := range itineraries {
		itineraries[o] = s.Order(in, tm.ObjectID(o))
	}
	txnAt := make(map[graph.NodeID]tm.TxnID, m)
	for i := range in.Txns {
		txnAt[in.Txns[i].Node] = tm.TxnID(i)
	}

	// Mailboxes: resident[v] holds messages whose path is exhausted
	// (object waiting at v); moving[v] holds messages currently at v
	// still traveling.
	resident := make([][]message, n)
	moving := make([][]message, n)

	// route prepares the message for object o from `from` to its next
	// itinerary stop, departing at step depart. Returns false when the
	// object has no further requester.
	var commCost atomic.Int64
	route := func(o tm.ObjectID, from graph.NodeID, depart int64) (message, bool) {
		idx := nextStop[o]
		if idx >= len(itineraries[o]) {
			return message{}, false
		}
		dest := itineraries[o][idx]
		destNode := in.Txns[dest].Node
		if destNode == from {
			return message{obj: o, dest: dest, path: []graph.NodeID{from}, readyAt: depart}, true
		}
		p := in.G.Path(from, destNode)
		commCost.Add(in.G.Dist(from, destNode))
		return message{obj: o, dest: dest, path: p, readyAt: depart}, true
	}

	// Initial dispatch from homes (departing at step 0).
	for o := 0; o < in.NumObjects; o++ {
		if msg, ok := route(tm.ObjectID(o), in.Home[o], 0); ok {
			v := msg.path[0]
			if len(msg.path) == 1 {
				resident[v] = append(resident[v], msg)
			} else {
				moving[v] = append(moving[v], msg)
			}
		}
	}

	horizon := s.Makespan()
	executed := 0
	var makespan int64

	// Per-worker outboxes, merged after each phase (avoids a shared
	// mutex on hot paths).
	type outMsg struct {
		node graph.NodeID
		msg  message
	}
	outboxes := make([][]outMsg, workers)
	errs := make([]error, workers)

	parallelNodes := func(fn func(worker int, v graph.NodeID)) {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if int(i) >= n {
						return
					}
					fn(w, graph.NodeID(i))
				}
			}(w)
		}
		wg.Wait()
	}

	for step := int64(1); step <= horizon; step++ {
		// Phase 1 (parallel): advance traveling messages one hop where
		// their edge traversal has elapsed; deliver those arriving.
		parallelNodes(func(w int, v graph.NodeID) {
			keep := moving[v][:0]
			for _, msg := range moving[v] {
				wgt, _ := in.G.HasEdge(msg.path[0], msg.path[1])
				if step < msg.readyAt+wgt {
					keep = append(keep, msg) // still traversing
					continue
				}
				msg.path = msg.path[1:]
				msg.readyAt = step
				outboxes[w] = append(outboxes[w], outMsg{node: msg.path[0], msg: msg})
			}
			moving[v] = keep
		})
		for w := range outboxes {
			for _, om := range outboxes[w] {
				if len(om.msg.path) == 1 {
					resident[om.node] = append(resident[om.node], om.msg)
				} else {
					moving[om.node] = append(moving[om.node], om.msg)
				}
			}
			outboxes[w] = outboxes[w][:0]
		}

		// Phase 2 (parallel): nodes whose transaction fires this step
		// verify object presence; failures are collected per worker.
		var fired []tm.TxnID
		var firedMu sync.Mutex
		parallelNodes(func(w int, v graph.NodeID) {
			id, ok := txnAt[v]
			if !ok || s.Times[id] != step {
				return
			}
			have := make(map[tm.ObjectID]bool, len(resident[v]))
			for _, msg := range resident[v] {
				if msg.dest == id && msg.readyAt <= step {
					have[msg.obj] = true
				}
			}
			for _, o := range in.Txns[id].Objects {
				if !have[o] {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("parexec: transaction %d at step %d missing object %d", id, step, o)
					}
					return
				}
			}
			firedMu.Lock()
			fired = append(fired, id)
			firedMu.Unlock()
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Phase 3 (sequential, tiny): committed transactions release and
		// re-route their objects. Sequential because nextStop is shared
		// per object; commits per step are few.
		sort.Slice(fired, func(a, b int) bool { return fired[a] < fired[b] })
		for _, id := range fired {
			v := in.Txns[id].Node
			executed++
			if step > makespan {
				makespan = step
			}
			// Drop consumed messages.
			keep := resident[v][:0]
			var held []tm.ObjectID
			for _, msg := range resident[v] {
				if msg.dest == id {
					held = append(held, msg.obj)
				} else {
					keep = append(keep, msg)
				}
			}
			resident[v] = keep
			for _, o := range held {
				nextStop[o]++
				if msg, ok := route(o, v, step); ok {
					dst := msg.path[0]
					if len(msg.path) == 1 {
						resident[dst] = append(resident[dst], msg)
					} else {
						moving[dst] = append(moving[dst], msg)
					}
				}
			}
		}
	}

	if executed != m {
		return nil, fmt.Errorf("parexec: only %d of %d transactions executed by the horizon", executed, m)
	}
	return &Result{Makespan: makespan, CommCost: commCost.Load(), Executed: executed, Workers: workers}, nil
}
