// Package baseline provides deliberately naive comparator schedulers. The
// experiment harness runs them against the paper's algorithms to show the
// gap the structured schedules buy: Sequential emulates a global-lock
// distributed TM (one transaction at a time, full transfer waits between
// commits); List is FIFO list scheduling that permits parallelism between
// non-conflicting transactions but ignores topology structure; Random is
// List over a random priority order, emulating randomized contention
// management.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// tracker carries the per-object release bookkeeping shared by the
// baselines (the same invariants as the core composer, re-implemented here
// so the baselines stay independent of the algorithms they benchmark).
type tracker struct {
	in      *tm.Instance
	relTime []int64
	relNode []graph.NodeID
}

func newTracker(in *tm.Instance) *tracker {
	t := &tracker{
		in:      in,
		relTime: make([]int64, in.NumObjects),
		relNode: make([]graph.NodeID, in.NumObjects),
	}
	copy(t.relNode, in.Home)
	return t
}

// earliest returns the earliest feasible step for id given current release
// points.
func (t *tracker) earliest(id tm.TxnID) int64 {
	txn := &t.in.Txns[id]
	var step int64 = 1
	for _, o := range txn.Objects {
		if need := t.relTime[o] + t.in.Dist(t.relNode[o], txn.Node); need > step {
			step = need
		}
	}
	return step
}

// commit records id executing at step.
func (t *tracker) commit(id tm.TxnID, step int64) {
	txn := &t.in.Txns[id]
	for _, o := range txn.Objects {
		if step > t.relTime[o] {
			t.relTime[o] = step
			t.relNode[o] = txn.Node
		}
	}
}

// Sequential schedules transactions strictly one after another in ID
// order, waiting out every object transfer in between — the behavior of a
// single global lock circulating through the system.
type Sequential struct{}

// Name implements core.Scheduler.
func (Sequential) Name() string { return "baseline/sequential" }

// Schedule implements core.Scheduler.
func (Sequential) Schedule(in *tm.Instance) (*core.Result, error) {
	t := newTracker(in)
	s := schedule.New(in.NumTxns())
	var clock int64
	for i := range in.Txns {
		id := tm.TxnID(i)
		step := t.earliest(id)
		if step <= clock {
			step = clock + 1
		}
		s.Times[id] = step
		t.commit(id, step)
		clock = step
	}
	return finishResult("baseline/sequential", in, s)
}

// List is FIFO list scheduling: each transaction, in priority order, takes
// the earliest step at which its objects can have reached it. Transactions
// with disjoint object sets may share a step, but no topology structure is
// exploited.
type List struct {
	// Order permutes transaction priorities; nil means ID order.
	Order []tm.TxnID
}

// Name implements core.Scheduler.
func (List) Name() string { return "baseline/list" }

// Schedule implements core.Scheduler.
func (l List) Schedule(in *tm.Instance) (*core.Result, error) {
	order := l.Order
	if order == nil {
		order = make([]tm.TxnID, in.NumTxns())
		for i := range order {
			order[i] = tm.TxnID(i)
		}
	}
	if len(order) != in.NumTxns() {
		return nil, fmt.Errorf("baseline: order has %d entries for %d transactions", len(order), in.NumTxns())
	}
	t := newTracker(in)
	s := schedule.New(in.NumTxns())
	for _, id := range order {
		step := t.earliest(id)
		s.Times[id] = step
		t.commit(id, step)
	}
	return finishResult("baseline/list", in, s)
}

// Random is List over a uniformly random priority order (randomized
// contention management).
type Random struct {
	Rng *rand.Rand
}

// Name implements core.Scheduler.
func (Random) Name() string { return "baseline/random" }

// Schedule implements core.Scheduler.
func (r Random) Schedule(in *tm.Instance) (*core.Result, error) {
	if r.Rng == nil {
		return nil, fmt.Errorf("baseline: random scheduler needs an Rng")
	}
	order := make([]tm.TxnID, in.NumTxns())
	for i := range order {
		order[i] = tm.TxnID(i)
	}
	r.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	res, err := List{Order: order}.Schedule(in)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "baseline/random"
	return res, nil
}

func finishResult(name string, in *tm.Instance, s *schedule.Schedule) (*core.Result, error) {
	if err := s.Validate(in); err != nil {
		return nil, fmt.Errorf("baseline: %s produced an infeasible schedule: %w", name, err)
	}
	return &core.Result{Schedule: s, Makespan: s.Makespan(), Algorithm: name, Stats: map[string]int64{}}, nil
}

// DegreeOrder returns a transaction priority order by descending
// contention degree: each transaction is scored by the number of co-users
// summed over its objects (ties broken by ascending ID), read off the
// instance's shared ConflictIndex rather than re-derived from
// Txns[].Objects. List scheduling in this order serves the most contended
// transactions first — the "highest conflict first" contention manager of
// the experimental TM literature, and the parallelism-oriented counterpart
// of NearestOrder below.
func DegreeOrder(in *tm.Instance) []tm.TxnID {
	score := make([]int64, in.NumTxns())
	index := in.Index()
	for o := 0; o < in.NumObjects; o++ {
		members := index.Members(tm.ObjectID(o))
		for _, id := range members {
			score[id] += int64(len(members) - 1)
		}
	}
	order := make([]tm.TxnID, in.NumTxns())
	for i := range order {
		order[i] = tm.TxnID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return score[order[a]] > score[order[b]]
	})
	return order
}

// NearestOrder returns a transaction priority order built by a
// nearest-neighbor tour over the transactions' nodes, starting from the
// first transaction. List scheduling in this order keeps consecutive
// users of each object close together, approximately minimizing total
// communication at the expense of parallelism — the communication-
// oriented end of the execution-time/communication-cost tradeoff of
// Busch et al. (PODC 2015) that the paper builds on.
func NearestOrder(in *tm.Instance) []tm.TxnID {
	m := in.NumTxns()
	if m == 0 {
		return nil
	}
	visited := make([]bool, m)
	order := make([]tm.TxnID, 0, m)
	cur := tm.TxnID(0)
	visited[0] = true
	order = append(order, cur)
	for len(order) < m {
		best := tm.TxnID(-1)
		var bestD int64
		for i := 0; i < m; i++ {
			if visited[i] {
				continue
			}
			d := in.Dist(in.Txns[cur].Node, in.Txns[i].Node)
			if best < 0 || d < bestD || (d == bestD && tm.TxnID(i) < best) {
				best, bestD = tm.TxnID(i), d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}
	return order
}
