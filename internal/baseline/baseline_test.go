package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/sim"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func randomInstance(r *rand.Rand) *tm.Instance {
	n := 3 + r.Intn(24)
	w := 2 + r.Intn(8)
	k := 1 + r.Intn(minInt(w, 3))
	g := graph.New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[r.Intn(i)]), 1+r.Int63n(4))
	}
	return tm.UniformK(w, k).Generate(r, g, nil, g.Nodes(), tm.PlaceAtRandomUser)
}

func TestAllBaselinesFeasibleProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r)
		seq, err := Sequential{}.Schedule(in)
		if err != nil {
			return false
		}
		lst, err := List{}.Schedule(in)
		if err != nil {
			return false
		}
		rnd, err := Random{Rng: rand.New(rand.NewSource(seed + 1))}.Schedule(in)
		if err != nil {
			return false
		}
		for _, res := range []*core.Result{seq, lst, rnd} {
			if _, err := sim.Run(in, res.Schedule, sim.Options{}); err != nil {
				return false
			}
		}
		// List parallelism never loses to strict serialization (same
		// priority order, minus the forced gaps).
		return lst.Makespan <= seq.Makespan
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStrictlyIncreasing(t *testing.T) {
	r := xrand.New(4)
	in := randomInstance(r)
	res, err := Sequential{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Schedule.Times); i++ {
		if res.Schedule.Times[i] <= res.Schedule.Times[i-1] {
			t.Fatalf("sequential times not increasing: %v", res.Schedule.Times)
		}
	}
}

func TestListCustomOrder(t *testing.T) {
	r := xrand.New(5)
	in := randomInstance(r)
	order := make([]tm.TxnID, in.NumTxns())
	for i := range order {
		order[i] = tm.TxnID(in.NumTxns() - 1 - i)
	}
	res, err := List{Order: order}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestListRejectsBadOrder(t *testing.T) {
	r := xrand.New(6)
	in := randomInstance(r)
	if _, err := (List{Order: []tm.TxnID{0}}).Schedule(in); err == nil {
		t.Fatal("accepted short order")
	}
}

func TestRandomNeedsRng(t *testing.T) {
	r := xrand.New(7)
	in := randomInstance(r)
	if _, err := (Random{}).Schedule(in); err == nil {
		t.Fatal("accepted nil Rng")
	}
}

func TestNames(t *testing.T) {
	if (Sequential{}).Name() != "baseline/sequential" ||
		(List{}).Name() != "baseline/list" ||
		(Random{}).Name() != "baseline/random" {
		t.Fatal("names wrong")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNearestOrderVisitsAll(t *testing.T) {
	r := xrand.New(9)
	in := randomInstance(r)
	order := NearestOrder(in)
	if len(order) != in.NumTxns() {
		t.Fatalf("order has %d entries", len(order))
	}
	seen := make(map[tm.TxnID]bool)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate %d", id)
		}
		seen[id] = true
	}
	// List scheduling over it must be feasible.
	res, err := List{Order: order}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 1 {
		t.Fatal("empty schedule")
	}
}

func TestNearestOrderReducesComm(t *testing.T) {
	// On a line, nearest order sweeps; its schedule's communication is
	// no worse than random-order list scheduling on the same instance.
	topo := topology.NewLine(64)
	in := tm.UniformK(16, 2).Generate(xrand.New(10), topo.Graph(), nil, topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	near, err := List{Order: NearestOrder(in)}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Random{Rng: xrand.New(11)}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if near.Schedule.CommCost(in) > rnd.Schedule.CommCost(in) {
		t.Fatalf("nearest order comm %d > random %d", near.Schedule.CommCost(in), rnd.Schedule.CommCost(in))
	}
}
