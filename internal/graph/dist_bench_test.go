package graph

import (
	"sync"
	"testing"
)

// benchGrid builds the side×side unit-weight grid used by the Dist
// contention benchmarks (32×32 = 1024 nodes, the scale ISSUE/BENCH
// numbers quote).
func benchGrid(side int) *Graph {
	g := New(side * side)
	id := func(r, c int) NodeID { return NodeID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddUnitEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				g.AddUnitEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// mutexDistOracle replicates the pre-lock-free cache design — one mutex
// over a map of per-source trees — as the baseline BenchmarkDistParallel
// compares against. Kept in the benchmark file only; the library no
// longer ships this path.
type mutexDistOracle struct {
	g     *Graph
	mu    sync.Mutex
	trees map[NodeID]*ShortestPathTree
}

func newMutexDistOracle(g *Graph) *mutexDistOracle {
	return &mutexDistOracle{g: g, trees: make(map[NodeID]*ShortestPathTree)}
}

func (o *mutexDistOracle) Dist(u, v NodeID) int64 {
	o.mu.Lock()
	t, ok := o.trees[u]
	o.mu.Unlock()
	if !ok {
		t = o.g.ShortestPaths(u)
		o.mu.Lock()
		o.trees[u] = t
		o.mu.Unlock()
	}
	return t.Dist[v]
}

// distWorkload walks a deterministic source/target sequence; every
// benchmark variant below issues the identical query stream so the
// numbers compare oracle cost, not query mix.
func distWorkload(n int, dist func(u, v NodeID) int64, pb *testing.PB) {
	var i uint64
	for pb.Next() {
		u := NodeID(i * 2654435761 % uint64(n))
		v := NodeID((i*40503 + 1) % uint64(n))
		dist(u, v)
		i++
	}
}

// BenchmarkDistParallel measures concurrent Dist throughput on a
// 1024-node grid across oracle layers. Run with -cpu 1,4,8 to see the
// contention profile; the mutexmap baseline serializes every lookup,
// lockfree is the shipped tree cache, precomputed the all-pairs matrix.
func BenchmarkDistParallel(b *testing.B) {
	const side = 32
	n := side * side

	b.Run("mutexmap", func(b *testing.B) {
		g := benchGrid(side)
		o := newMutexDistOracle(g)
		o.Dist(0, NodeID(n-1)) // warm one tree so setup cost is off the clock
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) { distWorkload(n, o.Dist, pb) })
	})

	b.Run("lockfree", func(b *testing.B) {
		g := benchGrid(side)
		g.Dist(0, NodeID(n-1))
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) { distWorkload(n, g.Dist, pb) })
	})

	b.Run("precomputed", func(b *testing.B) {
		g := benchGrid(side)
		g.Precompute(0)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) { distWorkload(n, g.Dist, pb) })
	})
}

// BenchmarkDistSequential pins the single-goroutine cost of the two
// shipped layers, for spotting regressions that parallel numbers hide.
func BenchmarkDistSequential(b *testing.B) {
	const side = 32
	n := side * side
	b.Run("lockfree", func(b *testing.B) {
		g := benchGrid(side)
		g.Dist(0, NodeID(n-1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Dist(NodeID(i%n), NodeID((i*7+1)%n))
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		g := benchGrid(side)
		g.Precompute(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Dist(NodeID(i%n), NodeID((i*7+1)%n))
		}
	})
}
