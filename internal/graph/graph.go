// Package graph provides the weighted undirected communication graphs on
// which the distributed transactional memory model of Busch et al. operates.
//
// Nodes are dense integer identifiers in [0, N). Edges carry positive
// integer weights representing communication delay in synchronous time
// steps. The package offers single-source shortest paths (BFS for unit
// weights, Dijkstra otherwise), lock-free lazily cached per-source
// distances, an opt-in precomputed all-pairs matrix (Precompute) for
// densely queried instances, exact path reconstruction, and parallel
// all-pairs computation for large instances.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a node of a Graph. IDs are dense: a graph with N nodes
// uses IDs 0..N-1.
type NodeID int

// Edge is an outgoing half-edge in an adjacency list.
type Edge struct {
	To     NodeID
	Weight int64
}

// Graph is a weighted undirected multigraph with dense node IDs.
// The zero value is an empty graph with no nodes; use New to size it.
//
// Graph is safe for concurrent reads after construction, including first
// queries against the lazily created shortest-path cache (trees are
// published lock-free per source) and against a precomputed distance
// matrix (Precompute). Mutation (AddEdge) must not race with queries.
type Graph struct {
	name       string
	adj        [][]Edge
	edges      int
	unitWeight bool // true while every inserted edge has weight 1

	sp   atomic.Pointer[spCache]    // lazy per-source tree cache, created on first query
	apsp atomic.Pointer[distMatrix] // optional precomputed all-pairs matrix (Precompute)
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]Edge, n), unitWeight: true}
}

// NewNamed is New with a human-readable name used in error and report text.
func NewNamed(name string, n int) *Graph {
	g := New(n)
	g.name = name
	return g
}

// Name returns the graph's descriptive name (may be empty).
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's descriptive name.
func (g *Graph) SetName(name string) { g.name = name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges inserted so far.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts an undirected edge {u, v} of weight w ≥ 1.
// Self-loops are rejected: they are meaningless as communication links.
func (g *Graph) AddEdge(u, v NodeID, w int64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	g.checkNode(u)
	g.checkNode(v)
	if w < 1 {
		panic(fmt.Sprintf("graph: edge weight %d < 1", w))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
	g.edges++
	if w != 1 {
		g.unitWeight = false
	}
	g.sp.Store(nil) // invalidate tree cache
	g.apsp.Store(nil)
}

// AddUnitEdge inserts an undirected edge of weight 1.
func (g *Graph) AddUnitEdge(u, v NodeID) { g.AddEdge(u, v, 1) }

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []Edge {
	g.checkNode(u)
	return g.adj[u]
}

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u NodeID) int {
	g.checkNode(u)
	return len(g.adj[u])
}

// HasEdge reports whether an edge {u, v} exists, and returns the minimum
// weight among parallel edges if so.
func (g *Graph) HasEdge(u, v NodeID) (int64, bool) {
	g.checkNode(u)
	g.checkNode(v)
	best := int64(-1)
	for _, e := range g.adj[u] {
		if e.To == v && (best < 0 || e.Weight < best) {
			best = e.Weight
		}
	}
	return best, best >= 0
}

// MaxEdgeWeight returns the largest edge weight, or 0 for an edgeless graph.
func (g *Graph) MaxEdgeWeight() int64 {
	var mw int64
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.Weight > mw {
				mw = e.Weight
			}
		}
	}
	return mw
}

// UnitWeight reports whether every edge has weight exactly 1.
func (g *Graph) UnitWeight() bool { return g.unitWeight }

// Connected reports whether the graph is connected (an empty graph and a
// single-node graph are connected).
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}

// Nodes returns all node IDs in increasing order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, len(g.adj))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// SortedNeighbors returns a copy of u's adjacency list sorted by target ID
// then weight; useful for deterministic iteration in tests and renderers.
func (g *Graph) SortedNeighbors(u NodeID) []Edge {
	src := g.Neighbors(u)
	out := make([]Edge, len(src))
	copy(out, src)
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Weight < out[j].Weight
	})
	return out
}

func (g *Graph) checkNode(u NodeID) {
	if u < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// String summarizes the graph.
func (g *Graph) String() string {
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s(n=%d, m=%d)", name, len(g.adj), g.edges)
}

// DOT renders the graph in Graphviz DOT format (undirected; weight-1
// edges unlabeled, heavier edges labeled), for visual inspection of
// generated topologies.
func (g *Graph) DOT() string {
	var sb strings.Builder
	name := g.name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&sb, "graph %q {\n", name)
	for u := range g.adj {
		for _, e := range g.SortedNeighbors(NodeID(u)) {
			if int(e.To) < u {
				continue
			}
			if e.Weight == 1 {
				fmt.Fprintf(&sb, "  %d -- %d;\n", u, e.To)
			} else {
				fmt.Fprintf(&sb, "  %d -- %d [label=%d];\n", u, e.To, e.Weight)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
