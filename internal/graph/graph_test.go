package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph reports n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer expectPanic(t, "negative node count")
	New(-1)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddUnitEdge(1, 2)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 5 {
		t.Fatalf("HasEdge(0,1) = %d,%v want 5,true", w, ok)
	}
	if _, ok := g.HasEdge(0, 2); ok {
		t.Fatal("HasEdge(0,2) should be false")
	}
	if g.UnitWeight() {
		t.Fatal("graph with a weight-5 edge reports UnitWeight")
	}
	if g.MaxEdgeWeight() != 5 {
		t.Fatalf("MaxEdgeWeight = %d, want 5", g.MaxEdgeWeight())
	}
}

func TestAddEdgeParallelKeepsMinWeight(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 7)
	g.AddEdge(0, 1, 3)
	if w, ok := g.HasEdge(0, 1); !ok || w != 3 {
		t.Fatalf("HasEdge with parallel edges = %d,%v want 3,true", w, ok)
	}
	if d := g.Dist(0, 1); d != 3 {
		t.Fatalf("Dist across parallel edges = %d, want 3", d)
	}
}

func TestAddEdgePanics(t *testing.T) {
	t.Run("self-loop", func(t *testing.T) {
		g := New(2)
		defer expectPanic(t, "self loop")
		g.AddEdge(1, 1, 1)
	})
	t.Run("zero weight", func(t *testing.T) {
		g := New(2)
		defer expectPanic(t, "zero weight")
		g.AddEdge(0, 1, 0)
	})
	t.Run("out of range", func(t *testing.T) {
		g := New(2)
		defer expectPanic(t, "node out of range")
		g.AddEdge(0, 2, 1)
	})
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(2, 3)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	g.AddUnitEdge(1, 2)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
}

func TestBFSPathOnPathGraph(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(NodeID(i), NodeID(i+1))
	}
	tree := g.ShortestPaths(0)
	for v := 0; v < 5; v++ {
		if tree.Dist[v] != int64(v) {
			t.Fatalf("Dist[%d] = %d, want %d", v, tree.Dist[v], v)
		}
	}
	path := tree.PathTo(4)
	want := []NodeID{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestDijkstraPicksCheaperLongerRoute(t *testing.T) {
	// 0—1 weight 10, but 0—2—1 weight 2+3.
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 1, 3)
	if d := g.Dist(0, 1); d != 5 {
		t.Fatalf("Dist(0,1) = %d, want 5", d)
	}
	p := g.Path(0, 1)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("Path(0,1) = %v, want [0 2 1]", p)
	}
}

func TestUnreachable(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	if d := g.Dist(0, 2); d != Inf {
		t.Fatalf("Dist to unreachable = %d, want Inf", d)
	}
	if p := g.Path(0, 2); p != nil {
		t.Fatalf("Path to unreachable = %v, want nil", p)
	}
	if e := g.Eccentricity(0); e != Inf {
		t.Fatalf("Eccentricity in disconnected graph = %d, want Inf", e)
	}
	if d := g.Diameter(); d != Inf {
		t.Fatalf("Diameter of disconnected graph = %d, want Inf", d)
	}
}

func TestCacheInvalidatedByAddEdge(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	if d := g.Dist(0, 2); d != 2 {
		t.Fatalf("Dist(0,2) = %d, want 2", d)
	}
	g.AddUnitEdge(0, 2) // shortcut
	if d := g.Dist(0, 2); d != 1 {
		t.Fatalf("Dist(0,2) after shortcut = %d, want 1 (stale cache?)", d)
	}
}

// randomConnectedGraph builds a connected graph on n nodes: a random
// spanning tree plus extra random edges, with weights in [1, maxW].
func randomConnectedGraph(r *rand.Rand, n, extraEdges int, maxW int64) *Graph {
	g := New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[r.Intn(i)])
		g.AddEdge(u, v, 1+r.Int63n(maxW))
	}
	for e := 0; e < extraEdges; e++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u != v {
			g.AddEdge(u, v, 1+r.Int63n(maxW))
		}
	}
	return g
}

// floydWarshall is an independent all-pairs implementation used to
// cross-check Dijkstra/BFS.
func floydWarshall(g *Graph) [][]int64 {
	n := g.NumNodes()
	const inf = int64(1) << 50
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(NodeID(u)) {
			if e.Weight < d[u][e.To] {
				d[u][e.To] = e.Weight
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(24)
		g := randomConnectedGraph(r, n, r.Intn(2*n), 9)
		want := floydWarshall(g)
		for u := 0; u < n; u++ {
			tree := g.ShortestPaths(NodeID(u))
			for v := 0; v < n; v++ {
				if tree.Dist[v] != want[u][v] {
					t.Fatalf("trial %d: Dist(%d,%d) = %d, want %d", trial, u, v, tree.Dist[v], want[u][v])
				}
			}
		}
	}
}

func TestMetricAxiomsProperty(t *testing.T) {
	// Shortest-path distances must satisfy symmetry and the triangle
	// inequality on any random connected graph.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(16)
		g := randomConnectedGraph(r, n, n, 7)
		for trial := 0; trial < 32; trial++ {
			a := NodeID(r.Intn(n))
			b := NodeID(r.Intn(n))
			c := NodeID(r.Intn(n))
			if g.Dist(a, b) != g.Dist(b, a) {
				return false
			}
			if g.Dist(a, c) > g.Dist(a, b)+g.Dist(b, c) {
				return false
			}
			if a == b && g.Dist(a, b) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPathConsistentWithDist(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(16)
		g := randomConnectedGraph(r, n, n/2, 5)
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		p := g.Path(u, v)
		if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
			return u == v && len(p) == 1
		}
		var total int64
		for i := 0; i+1 < len(p); i++ {
			w, ok := g.HasEdge(p[i], p[i+1])
			if !ok {
				return false
			}
			total += w
		}
		return total == g.Dist(u, v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedGraph(r, 3+r.Intn(30), r.Intn(20), 6)
		var serial int64
		for u := 0; u < g.NumNodes(); u++ {
			if e := g.eccUncached(NodeID(u)); e > serial {
				serial = e
			}
		}
		for _, workers := range []int{1, 2, 8} {
			if d := g.DiameterParallel(workers); d != serial {
				t.Fatalf("DiameterParallel(%d) = %d, want %d", workers, d, serial)
			}
		}
	}
}

func TestAllPairsMatchesTrees(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(r, 20, 15, 4)
	ap := g.AllPairs(4)
	for u := 0; u < 20; u++ {
		tree := g.ShortestPaths(NodeID(u))
		for v := 0; v < 20; v++ {
			if ap[u][v] != tree.Dist[v] {
				t.Fatalf("AllPairs[%d][%d] = %d, want %d", u, v, ap[u][v], tree.Dist[v])
			}
		}
	}
}

func TestSortedNeighborsDeterministic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3, 2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 5)
	ns := g.SortedNeighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1].To > ns[i].To {
			t.Fatalf("SortedNeighbors not sorted: %v", ns)
		}
	}
}

func TestMatrixAndFuncMetric(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	mm := MatrixMetric(g.AllPairs(1))
	if _, _, _, _, ok := CheckMetricAgrees(g, mm); !ok {
		t.Fatal("MatrixMetric from AllPairs disagrees with graph")
	}
	fm := FuncMetric(func(u, v NodeID) int64 { return g.Dist(u, v) })
	if _, _, _, _, ok := CheckMetricAgrees(g, fm); !ok {
		t.Fatal("FuncMetric wrapper disagrees with graph")
	}
	bad := FuncMetric(func(u, v NodeID) int64 { return 0 })
	if _, _, _, _, ok := CheckMetricAgrees(g, bad); ok {
		t.Fatal("CheckMetricAgrees accepted a wrong metric")
	}
}

func TestTreeCachingReturnsSameTree(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	t1 := g.Tree(0)
	t2 := g.Tree(0)
	if t1 != t2 {
		t.Fatal("Tree(0) not cached")
	}
}

func TestStringer(t *testing.T) {
	g := NewNamed("demo", 2)
	g.AddUnitEdge(0, 1)
	if got := g.String(); got != "demo(n=2, m=1)" {
		t.Fatalf("String() = %q", got)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

func TestDOTExport(t *testing.T) {
	g := NewNamed("demo", 3)
	g.AddUnitEdge(0, 1)
	g.AddEdge(1, 2, 5)
	dot := g.DOT()
	for _, want := range []string{`graph "demo" {`, "0 -- 1;", "1 -- 2 [label=5];", "}"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Each undirected edge appears exactly once.
	if strings.Count(dot, "--") != 2 {
		t.Fatalf("edge count wrong:\n%s", dot)
	}
}
