package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DiameterParallel computes the exact diameter using workers goroutines
// (0 means GOMAXPROCS). Each worker runs single-source shortest paths from a
// disjoint set of sources; trees are not cached, so memory stays O(n) per
// worker. It returns Inf for disconnected graphs.
func (g *Graph) DiameterParallel(workers int) int64 {
	n := len(g.adj)
	if n == 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next         atomic.Int64
		diam         atomic.Int64
		disconnected atomic.Bool
		wg           sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= n || disconnected.Load() {
					return
				}
				ecc := g.eccUncached(NodeID(i))
				if ecc == Inf {
					disconnected.Store(true)
					return
				}
				for {
					cur := diam.Load()
					if ecc <= cur || diam.CompareAndSwap(cur, ecc) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if disconnected.Load() {
		return Inf
	}
	return diam.Load()
}

// eccUncached computes eccentricity without touching the shared tree cache,
// so parallel workers do not contend on the cache mutex or balloon memory.
func (g *Graph) eccUncached(u NodeID) int64 {
	t := g.ShortestPaths(u)
	var ecc int64
	for _, d := range t.Dist {
		if d == Inf {
			return Inf
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// AllPairs computes the full distance matrix in parallel and returns it as a
// dense n×n slice-of-slices (row u = distances from u). Intended for small
// and medium graphs; memory is Θ(n²).
func (g *Graph) AllPairs(workers int) [][]int64 {
	n := len(g.adj)
	dist := make([][]int64, n)
	if n == 0 {
		return dist
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= n {
					return
				}
				dist[i] = g.ShortestPaths(NodeID(i)).Dist
			}
		}()
	}
	wg.Wait()
	return dist
}
