package graph

import (
	"container/heap"
	"math"
)

// Inf is the distance reported between disconnected nodes.
const Inf = int64(math.MaxInt64)

// ShortestPathTree holds the result of a single-source shortest-path
// computation: distance and predecessor for every node reachable from the
// source. Unreachable nodes have Dist == Inf and Parent == -1.
type ShortestPathTree struct {
	Source NodeID
	Dist   []int64
	Parent []NodeID
}

// PathTo reconstructs the shortest path from the tree's source to v,
// inclusive of both endpoints. It returns nil if v is unreachable.
func (t *ShortestPathTree) PathTo(v NodeID) []NodeID {
	if int(v) >= len(t.Dist) || t.Dist[v] == Inf {
		return nil
	}
	// Walk parents backwards, then reverse.
	var rev []NodeID
	for u := v; ; u = t.Parent[u] {
		rev = append(rev, u)
		if u == t.Source {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ShortestPaths computes the single-source shortest-path tree from src,
// using BFS when all edge weights are 1 and Dijkstra otherwise.
func (g *Graph) ShortestPaths(src NodeID) *ShortestPathTree {
	g.checkNode(src)
	if g.unitWeight {
		return g.bfs(src)
	}
	return g.dijkstra(src)
}

func (g *Graph) bfs(src NodeID) *ShortestPathTree {
	n := len(g.adj)
	t := newTree(src, n)
	t.Dist[src] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := t.Dist[u]
		for _, e := range g.adj[u] {
			if t.Dist[e.To] == Inf {
				t.Dist[e.To] = du + 1
				t.Parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return t
}

func (g *Graph) dijkstra(src NodeID) *ShortestPathTree {
	n := len(g.adj)
	t := newTree(src, n)
	t.Dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		u, du := item.node, item.dist
		if du > t.Dist[u] {
			continue // stale entry
		}
		for _, e := range g.adj[u] {
			if nd := du + e.Weight; nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = u
				heap.Push(pq, distItem{node: e.To, dist: nd})
			}
		}
	}
	return t
}

func newTree(src NodeID, n int) *ShortestPathTree {
	t := &ShortestPathTree{
		Source: src,
		Dist:   make([]int64, n),
		Parent: make([]NodeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = Inf
		t.Parent[i] = -1
	}
	return t
}

type distItem struct {
	node NodeID
	dist int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Tree returns the (cached) shortest-path tree rooted at src. Safe for
// concurrent use, including the first query from each source: trees are
// published lock-free (see spCache), so parallel readers never serialize
// on a lock.
func (g *Graph) Tree(src NodeID) *ShortestPathTree {
	c := g.cache()
	if t := c.slots[src].Load(); t != nil {
		return t
	}
	t := g.ShortestPaths(src)
	if c.slots[src].CompareAndSwap(nil, t) {
		return t
	}
	return c.slots[src].Load()
}

// Dist returns the shortest-path distance between u and v, or Inf when v is
// unreachable from u. With a precomputed matrix (Precompute) the lookup is
// a single index operation; otherwise results are memoized per source.
func (g *Graph) Dist(u, v NodeID) int64 {
	if m := g.apsp.Load(); m != nil {
		g.checkNode(u)
		g.checkNode(v)
		return m.dist[int(u)*m.n+int(v)]
	}
	g.checkNode(v)
	return g.Tree(u).Dist[v]
}

// Path returns a shortest path from u to v inclusive, or nil if v is
// unreachable.
func (g *Graph) Path(u, v NodeID) []NodeID {
	g.checkNode(v)
	return g.Tree(u).PathTo(v)
}

// Eccentricity returns the maximum finite distance from u to any node,
// or Inf if some node is unreachable.
func (g *Graph) Eccentricity(u NodeID) int64 {
	t := g.Tree(u)
	var ecc int64
	for _, d := range t.Dist {
		if d == Inf {
			return Inf
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter with one SSSP per node, in parallel.
// It returns Inf for disconnected graphs.
func (g *Graph) Diameter() int64 {
	return g.DiameterParallel(0)
}
