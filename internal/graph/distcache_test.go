package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestPrecomputeMatchesTrees(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		g := randomConnectedGraph(r, 2+r.Intn(30), r.Intn(20), 6)
		want := make([][]int64, g.NumNodes())
		for u := range want {
			want[u] = g.ShortestPaths(NodeID(u)).Dist
		}
		g.Precompute(1 + r.Intn(4))
		if !g.Precomputed() {
			t.Fatal("Precomputed() false after Precompute")
		}
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if got := g.Dist(NodeID(u), NodeID(v)); got != want[u][v] {
					t.Fatalf("trial %d: precomputed Dist(%d,%d) = %d, want %d", trial, u, v, got, want[u][v])
				}
			}
		}
	}
}

func TestPrecomputeDisconnected(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	g.Precompute(2)
	if d := g.Dist(0, 2); d != Inf {
		t.Fatalf("precomputed Dist to unreachable = %d, want Inf", d)
	}
}

func TestPrecomputeEmptyAndSingle(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := New(n)
		g.Precompute(4)
		if !g.Precomputed() {
			t.Fatalf("n=%d: Precomputed() false", n)
		}
	}
	g := New(1)
	g.Precompute(1)
	if d := g.Dist(0, 0); d != 0 {
		t.Fatalf("Dist(0,0) on singleton = %d, want 0", d)
	}
}

// TestAddEdgeInvalidatesAllLayers: queries populate both cache layers,
// then a mutation must drop them so later queries see the new edge.
func TestAddEdgeInvalidatesAllLayers(t *testing.T) {
	g := New(4)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	g.AddUnitEdge(2, 3)
	if d := g.Dist(0, 3); d != 3 {
		t.Fatalf("Dist(0,3) = %d, want 3", d)
	}
	g.Precompute(2)
	if d := g.Dist(0, 3); d != 3 {
		t.Fatalf("precomputed Dist(0,3) = %d, want 3", d)
	}
	g.AddUnitEdge(0, 3) // shortcut invalidates matrix and tree cache
	if g.Precomputed() {
		t.Fatal("matrix survived AddEdge")
	}
	if d := g.Dist(0, 3); d != 1 {
		t.Fatalf("Dist(0,3) after shortcut = %d, want 1 (stale cache?)", d)
	}
	if p := g.Path(0, 3); len(p) != 2 {
		t.Fatalf("Path(0,3) after shortcut = %v, want direct edge", p)
	}
	g.Precompute(2)
	if d := g.Dist(0, 3); d != 1 {
		t.Fatalf("re-precomputed Dist(0,3) = %d, want 1", d)
	}
}

// TestConcurrentFirstQuery hammers Dist/Tree/Path from many goroutines on
// a cold cache, so first-query CAS publication races are exercised under
// the race detector. Every goroutine cross-checks against an
// independently computed expectation.
func TestConcurrentFirstQuery(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(r, 48, 64, 5)
	want := floydWarshall(g)
	n := g.NumNodes()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u := NodeID(r.Intn(n))
				v := NodeID(r.Intn(n))
				if d := g.Dist(u, v); d != want[u][v] {
					errs <- fmt.Errorf("Dist(%d,%d) = %d, want %d", u, v, d, want[u][v])
					return
				}
				tree := g.Tree(u)
				if tree.Dist[v] != want[u][v] {
					errs <- fmt.Errorf("Tree(%d).Dist[%d] = %d, want %d", u, v, tree.Dist[v], want[u][v])
					return
				}
				if p := g.Path(u, v); len(p) == 0 || p[0] != u || p[len(p)-1] != v {
					errs <- fmt.Errorf("Path(%d,%d) = %v", u, v, p)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentPrecomputeAndQuery runs Precompute concurrently with
// queries: readers must observe either the tree-cache or the matrix
// layer, never a torn result.
func TestConcurrentPrecomputeAndQuery(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := randomConnectedGraph(r, 40, 40, 4)
	want := floydWarshall(g)
	n := g.NumNodes()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Precompute(4)
	}()
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				u := NodeID(r.Intn(n))
				v := NodeID(r.Intn(n))
				if d := g.Dist(u, v); d != want[u][v] {
					errs <- fmt.Errorf("Dist(%d,%d) = %d, want %d", u, v, d, want[u][v])
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPrecomputedDistZeroAlloc is the CI allocation guard: a Dist lookup
// on the precomputed path must not allocate.
func TestPrecomputedDistZeroAlloc(t *testing.T) {
	g := benchGrid(16)
	g.Precompute(0)
	n := NodeID(g.NumNodes())
	var sink int64
	allocs := testing.AllocsPerRun(200, func() {
		sink += g.Dist(3, n-5)
	})
	if allocs != 0 {
		t.Fatalf("precomputed Dist allocates %.1f per op, want 0", allocs)
	}
	_ = sink
}

// TestWarmTreeDistZeroAlloc pins the tree-cache path too: once a source's
// tree exists, Dist is an array read.
func TestWarmTreeDistZeroAlloc(t *testing.T) {
	g := benchGrid(8)
	g.Dist(0, 5) // warm source 0
	var sink int64
	allocs := testing.AllocsPerRun(200, func() {
		sink += g.Dist(0, 17)
	})
	if allocs != 0 {
		t.Fatalf("warm tree-cache Dist allocates %.1f per op, want 0", allocs)
	}
	_ = sink
}
