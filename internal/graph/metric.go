package graph

// Metric reports shortest-path distances between nodes of a graph. A *Graph
// is itself a Metric (with memoized Dijkstra/BFS); specialized topologies
// supply closed-form O(1) metrics so that large instances never run
// all-pairs shortest paths.
type Metric interface {
	// Dist returns the shortest-path distance between u and v in
	// synchronous time steps. Dist(u, u) == 0 and Dist is symmetric.
	Dist(u, v NodeID) int64
}

// Router extends Metric with explicit shortest-path reconstruction. The
// simulator uses the path to move objects hop by hop.
type Router interface {
	Metric
	// Path returns a shortest path from u to v inclusive of both
	// endpoints, or nil when v is unreachable.
	Path(u, v NodeID) []NodeID
}

// Graph implements Router.
var _ Router = (*Graph)(nil)

// FuncMetric adapts a distance function to the Metric interface.
type FuncMetric func(u, v NodeID) int64

// Dist implements Metric.
func (f FuncMetric) Dist(u, v NodeID) int64 { return f(u, v) }

// MatrixMetric is a dense precomputed distance matrix, convenient for tests
// and for cross-checking closed-form metrics against the graph's own
// shortest paths.
type MatrixMetric [][]int64

// Dist implements Metric.
func (m MatrixMetric) Dist(u, v NodeID) int64 { return m[u][v] }

// CheckMetricAgrees verifies that metric m agrees with g's shortest paths
// for every node pair, returning the first disagreeing pair. It is O(n²)
// and intended for tests.
func CheckMetricAgrees(g *Graph, m Metric) (u, v NodeID, want, got int64, ok bool) {
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		t := g.ShortestPaths(NodeID(i))
		for j := 0; j < n; j++ {
			got := m.Dist(NodeID(i), NodeID(j))
			if got != t.Dist[j] {
				return NodeID(i), NodeID(j), t.Dist[j], got, false
			}
		}
	}
	return 0, 0, 0, 0, true
}
