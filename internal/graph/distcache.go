package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The distance oracle has three layers, cheapest first:
//
//  1. closed-form topology metrics (internal/topology) never reach the
//     graph at all;
//  2. the lock-free per-source tree cache below memoizes SSSP results on
//     first query, so repeated Dist/Path calls from one source are O(1)
//     array reads with no lock on the hot path;
//  3. Precompute builds a flat n×n matrix up front, making every Dist a
//     single index operation — the right trade when an instance is
//     queried densely (engine sweeps, simulator replay, TSP bounds) and
//     Θ(n²) memory is affordable.
//
// AddEdge invalidates layers 2 and 3 wholesale by swapping the cache
// pointers, so mutation never has to synchronize with readers beyond the
// atomic pointer loads they already perform.

// spCache is the lock-free per-source shortest-path-tree cache. NodeIDs
// are dense in [0, n), so sources index directly into a slot array; the
// first query from a source computes its tree and publishes it with a
// compare-and-swap. Concurrent first queries may race to compute the same
// tree — that duplicate SSSP is benign (both trees are equal; one wins the
// CAS and the loser's work is dropped) and rare, and it buys an
// uncontended atomic load on every subsequent lookup.
type spCache struct {
	slots []atomic.Pointer[ShortestPathTree]
}

// cache returns the current tree cache, creating it on first use. AddEdge
// invalidates by storing nil, so a stale cache is never observed: readers
// re-load the pointer on every query.
func (g *Graph) cache() *spCache {
	if c := g.sp.Load(); c != nil {
		return c
	}
	c := &spCache{slots: make([]atomic.Pointer[ShortestPathTree], len(g.adj))}
	if g.sp.CompareAndSwap(nil, c) {
		return c
	}
	return g.sp.Load()
}

// distMatrix is the precomputed all-pairs layer: row-major n×n distances
// in one flat allocation, immutable once published.
type distMatrix struct {
	n    int
	dist []int64
}

// Precompute builds the all-pairs distance matrix with workers goroutines
// (0 = GOMAXPROCS) and installs it, making every subsequent Dist a single
// index read with zero allocations. Memory is Θ(n²); callers choose this
// layer for densely queried small and medium graphs (see
// AutoPrecomputeNodes in package tm for the facade's threshold). AddEdge
// drops the matrix along with the tree cache, so mutated graphs must call
// Precompute again to regain the fast path. Precompute is idempotent and
// safe to call concurrently with queries; it does not populate the tree
// cache, which Path continues to use for route reconstruction.
func (g *Graph) Precompute(workers int) {
	n := len(g.adj)
	m := &distMatrix{n: n, dist: make([]int64, n*n)}
	if n > 0 {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > n {
			workers = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= n {
						return
					}
					copy(m.dist[i*n:(i+1)*n], g.ShortestPaths(NodeID(i)).Dist)
				}
			}()
		}
		wg.Wait()
	}
	g.apsp.Store(m)
}

// Precomputed reports whether the all-pairs matrix is currently installed
// (false before Precompute and again after any AddEdge).
func (g *Graph) Precomputed() bool { return g.apsp.Load() != nil }
