package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/lower"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func smallInstance(r *rand.Rand, maxTxns int) *tm.Instance {
	n := 2 + r.Intn(maxTxns-1)
	w := 1 + r.Intn(4)
	k := 1 + r.Intn(minInt(w, 2))
	topo := topology.NewClique(n)
	return tm.UniformK(w, k).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
}

// bruteForce enumerates every permutation and list-schedules each — the
// independent oracle for Optimal.
func bruteForce(in *tm.Instance) int64 {
	m := in.NumTxns()
	perm := make([]tm.TxnID, m)
	for i := range perm {
		perm[i] = tm.TxnID(i)
	}
	best := int64(1) << 60
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			relT := make([]int64, in.NumObjects)
			relN := make([]graph.NodeID, in.NumObjects)
			copy(relN, in.Home)
			var mk int64
			for _, id := range perm {
				t := earliest(in, relT, relN, id)
				commit(in, relT, relN, id, t)
				if t > mk {
					mk = t
				}
			}
			if mk < best {
				best = mk
			}
			return
		}
		for j := i; j < m; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

func TestOptimalMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := smallInstance(r, 7)
		res, err := Optimal(in, Options{})
		if err != nil {
			return false
		}
		if res.Schedule.Validate(in) != nil {
			return false
		}
		return res.Makespan == bruteForce(in)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalOnLineHandExample(t *testing.T) {
	// Line 0-1-2; txns at 0,1,2 all share object 0 homed at node 1.
	// Optimal: send it to an end first (node 0 at t=1), sweep back
	// through the middle (t=2) to the far end (t=3): makespan 3.
	topo := topology.NewLine(3)
	in := tm.NewInstance(topo.Graph(), graph.FuncMetric(topo.Dist), 1, []tm.Txn{
		{Node: 0, Objects: []tm.ObjectID{0}},
		{Node: 1, Objects: []tm.ObjectID{0}},
		{Node: 2, Objects: []tm.ObjectID{0}},
	}, []graph.NodeID{1})
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3 {
		t.Fatalf("optimal makespan = %d, want 3", res.Makespan)
	}
}

func TestLowerBoundSoundAgainstTrueOptimum(t *testing.T) {
	// The certified lower bound must never exceed the true optimum: the
	// strongest possible soundness check for package lower.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := smallInstance(r, 8)
		res, err := Optimal(in, Options{})
		if err != nil {
			return false
		}
		return lower.Compute(in).Value <= res.Makespan
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyWithinTheoremFactorOfTrueOptimum(t *testing.T) {
	// Theorem 1 (clique, k ≤ 2): greedy ≤ O(k)·OPT. Verify against the
	// true optimum with a generous constant.
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		in := smallInstance(r, 8)
		opt, err := Optimal(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := (&core.Greedy{}).Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		k := int64(in.MaxK())
		if gr.Makespan > 4*k*opt.Makespan+2 {
			t.Fatalf("seed %d: greedy %d vs optimal %d exceeds 4k factor (k=%d)", seed, gr.Makespan, opt.Makespan, k)
		}
	}
}

func TestInitialUpperPrunes(t *testing.T) {
	r := xrand.New(11)
	in := smallInstance(r, 9)
	gr, err := baseline.List{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	unseeded, err := Optimal(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Optimal(in, Options{InitialUpper: gr.Makespan})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Makespan != unseeded.Makespan {
		t.Fatalf("seeded optimum %d != unseeded %d", seeded.Makespan, unseeded.Makespan)
	}
	if seeded.Nodes > unseeded.Nodes {
		t.Fatalf("seeding increased search: %d > %d nodes", seeded.Nodes, unseeded.Nodes)
	}
}

func TestOptimalLimit(t *testing.T) {
	r := xrand.New(12)
	topo := topology.NewClique(16)
	in := tm.UniformK(4, 1).Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	if _, err := Optimal(in, Options{}); err == nil {
		t.Fatal("16 transactions accepted at default limit 10")
	}
	if _, err := Optimal(in, Options{Limit: 16}); err != nil {
		t.Fatalf("explicit limit rejected: %v", err)
	}
}

func TestOptimalEmpty(t *testing.T) {
	g := graph.New(1)
	in := tm.NewInstance(g, nil, 0, nil, nil)
	res, err := Optimal(in, Options{})
	if err != nil || res.Makespan != 0 {
		t.Fatalf("empty instance: %v %v", res, err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
