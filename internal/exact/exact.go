// Package exact computes provably optimal schedules for small instances
// by branch-and-bound, giving the experiments a ground truth that the
// paper's proofs replace with lower bounds. It rests on a structural fact
// of the data-flow model: every feasible schedule induces, per object, a
// visiting order of its requesters; conversely, for any global priority
// order of transactions, list scheduling produces the (unique) earliest
// feasible schedule consistent with the induced per-object orders. The
// optimal makespan is therefore the minimum of list scheduling over all
// m! priority orders, which branch-and-bound explores with pruning.
//
// Intended for m ≤ about 10 transactions; Optimal returns an error above
// the configured limit rather than silently taking forever.
package exact

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// DefaultLimit is the largest transaction count Optimal accepts unless
// overridden via Options.
const DefaultLimit = 10

// Options tunes the search.
type Options struct {
	// Limit overrides DefaultLimit (0 = default). Search cost grows
	// factorially; 12 is already ~0.5B nodes before pruning.
	Limit int
	// InitialUpper seeds the incumbent with a known feasible makespan
	// (e.g. a greedy schedule), tightening pruning. 0 = none.
	InitialUpper int64
}

// Result is the optimal schedule with its makespan and search statistics.
type Result struct {
	Schedule *schedule.Schedule
	Makespan int64
	// Nodes is the number of search-tree nodes expanded.
	Nodes int64
}

type searcher struct {
	in      *tm.Instance
	best    int64
	bestSeq []tm.TxnID
	nodes   int64

	// Incremental list-scheduling state along the current branch.
	relT []int64
	relN []graph.NodeID
	used []bool
	seq  []tm.TxnID

	// remChain[o] counts unscheduled requesters of object o: each still
	// needs ≥ 1 extra step on o's chain, a cheap admissible bound.
	remChain []int
}

// Optimal computes a minimum-makespan schedule.
func Optimal(in *tm.Instance, opt Options) (*Result, error) {
	limit := opt.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	m := in.NumTxns()
	if m > limit {
		return nil, fmt.Errorf("exact: %d transactions exceed search limit %d", m, limit)
	}
	if m == 0 {
		return &Result{Schedule: schedule.New(0)}, nil
	}
	s := &searcher{
		in:       in,
		best:     1 << 60,
		relT:     make([]int64, in.NumObjects),
		relN:     make([]graph.NodeID, in.NumObjects),
		used:     make([]bool, m),
		remChain: make([]int, in.NumObjects),
	}
	if opt.InitialUpper > 0 {
		s.best = opt.InitialUpper + 1 // strict improvement not required: +1 keeps equal-cost solutions
	}
	copy(s.relN, in.Home)
	for o := 0; o < in.NumObjects; o++ {
		s.remChain[o] = len(in.Users(tm.ObjectID(o)))
	}
	s.search(0, 0)
	if s.bestSeq == nil {
		// InitialUpper was already optimal but we never recorded a
		// sequence; rerun without the seed (m is tiny).
		s.best = 1 << 60
		s.search(0, 0)
	}
	// Rebuild the optimal schedule from the best sequence.
	sched := schedule.New(m)
	relT := make([]int64, in.NumObjects)
	relN := make([]graph.NodeID, in.NumObjects)
	copy(relN, in.Home)
	for _, id := range s.bestSeq {
		t := earliest(in, relT, relN, id)
		sched.Times[id] = t
		commit(in, relT, relN, id, t)
	}
	return &Result{Schedule: sched, Makespan: sched.Makespan(), Nodes: s.nodes}, nil
}

func earliest(in *tm.Instance, relT []int64, relN []graph.NodeID, id tm.TxnID) int64 {
	txn := &in.Txns[id]
	var t int64 = 1
	for _, o := range txn.Objects {
		if need := relT[o] + in.Dist(relN[o], txn.Node); need > t {
			t = need
		}
	}
	return t
}

func commit(in *tm.Instance, relT []int64, relN []graph.NodeID, id tm.TxnID, t int64) {
	for _, o := range in.Txns[id].Objects {
		if t > relT[o] {
			relT[o] = t
			relN[o] = in.Txns[id].Node
		}
	}
}

// search extends the current priority prefix; depth = txns placed,
// curMax = makespan of the prefix.
func (s *searcher) search(depth int, curMax int64) {
	s.nodes++
	lb := curMax
	if fb := s.finishBound(); fb > lb {
		lb = fb
	}
	if lb >= s.best {
		return // even the admissible remainder cannot improve
	}
	m := s.in.NumTxns()
	if depth == m {
		s.best = curMax
		s.bestSeq = append(s.bestSeq[:0], s.seq...)
		return
	}
	for i := 0; i < m; i++ {
		if s.used[i] {
			continue
		}
		id := tm.TxnID(i)
		t := earliest(s.in, s.relT, s.relN, id)
		if t >= s.best {
			continue
		}
		// Save and apply.
		var savedT [8]int64
		var savedN [8]graph.NodeID
		objs := s.in.Txns[i].Objects
		for j, o := range objs {
			if j < len(savedT) {
				savedT[j], savedN[j] = s.relT[o], s.relN[o]
			}
		}
		bigSave := objs
		var bigT []int64
		var bigN []graph.NodeID
		if len(objs) > len(savedT) {
			bigT = make([]int64, len(objs))
			bigN = make([]graph.NodeID, len(objs))
			for j, o := range objs {
				bigT[j], bigN[j] = s.relT[o], s.relN[o]
			}
		}
		commit(s.in, s.relT, s.relN, id, t)
		for _, o := range objs {
			s.remChain[o]--
		}
		s.used[i] = true
		s.seq = append(s.seq, id)

		next := curMax
		if t > next {
			next = t
		}
		s.search(depth+1, next)

		// Undo.
		s.seq = s.seq[:len(s.seq)-1]
		s.used[i] = false
		for _, o := range objs {
			s.remChain[o]++
		}
		if bigT != nil {
			for j, o := range bigSave {
				s.relT[o], s.relN[o] = bigT[j], bigN[j]
			}
		} else {
			for j, o := range objs {
				s.relT[o], s.relN[o] = savedT[j], savedN[j]
			}
		}
	}
}

// finishBound gives an absolute lower bound on any completion's makespan
// from the current state: object o's chain still needs remChain[o] more
// commits at least one step apart, none earlier than its current release.
func (s *searcher) finishBound() int64 {
	var b int64
	for o, rem := range s.remChain {
		if rem == 0 {
			continue
		}
		if t := s.relT[o] + int64(rem); t > b {
			b = t
		}
	}
	return b
}
