package faults

import (
	"reflect"
	"sort"
	"testing"
)

// TestComposeBoundariesMerge pins the Boundaries contract of composed
// injectors: the union of every live injector's boundaries, deduplicated
// and sorted ascending, so the simulator's per-epoch subgraph cache sees
// every step at which any component's state may change.
func TestComposeBoundariesMerge(t *testing.T) {
	a := MustFromFaults(
		Fault{Kind: LinkDown, From: 10, To: 30, U: 0, V: 1},
		Fault{Kind: NodeCrash, From: 20, To: 40, Node: 2},
	)
	b := MustFromFaults(
		Fault{Kind: LinkSlow, From: 25, To: 30, U: 1, V: 2, Factor: 2}, // shares boundary 30 with a
		Fault{Kind: NodeCrash, From: 5, To: 10, Node: 3},               // shares boundary 10 with a
	)
	c := Compose(a, b)
	got := c.Boundaries()
	want := []int64{5, 10, 20, 25, 30, 40}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged boundaries = %v, want %v", got, want)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("boundaries not sorted")
	}
	// A Forever fault contributes its start but no end boundary.
	f := MustFromFaults(Fault{Kind: NodeCrash, From: 50, To: Forever, Node: 0})
	cf := Compose(a, f)
	gotF := cf.Boundaries()
	wantF := []int64{10, 20, 30, 40, 50}
	if !reflect.DeepEqual(gotF, wantF) {
		t.Fatalf("boundaries with Forever fault = %v, want %v", gotF, wantF)
	}
}

// TestComposeEmptySemantics pins Empty() across the Compose shapes: nil
// and empty components are skipped, zero live injectors compose to an
// empty plan usable as a nil injector, and a composition with any live
// component is never empty even if queried where nothing fires.
func TestComposeEmptySemantics(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil *Plan must report empty")
	}
	empty := MustFromFaults()
	if !empty.Empty() {
		t.Fatal("zero-fault plan must report empty")
	}
	// Drop-rate-only plans are non-empty even with zero scripted faults.
	dropOnly := MustNew(Config{Seed: 9, DropRate: 0.5}, nil)
	if dropOnly.Empty() || dropOnly.Count() != 0 {
		t.Fatalf("drop-only plan: Empty=%v Count=%d, want false/0", dropOnly.Empty(), dropOnly.Count())
	}

	c := Compose(nil, nilPlan, empty)
	if !c.Empty() {
		t.Fatal("compose of nothing live must be empty")
	}
	// The empty composition must behave as a healthy network everywhere.
	if f := c.LinkFactor(0, 1, 7); f != 1 {
		t.Fatalf("empty composition LinkFactor = %d, want 1", f)
	}
	if _, down := c.NodeDownUntil(3, 7); down {
		t.Fatal("empty composition reports a node down")
	}
	if c.DropMove(0, 0, 0) {
		t.Fatal("empty composition drops a move")
	}
	if len(c.Boundaries()) != 0 || c.Count() != 0 {
		t.Fatalf("empty composition has boundaries %v count %d", c.Boundaries(), c.Count())
	}

	live := MustFromFaults(Fault{Kind: LinkDown, From: 1000, To: 1001, U: 0, V: 1})
	mixed := Compose(empty, live, nilPlan)
	if mixed.Empty() {
		t.Fatal("composition with a live component reports empty")
	}
	// Single-live passthrough: the composition IS the live injector.
	if mixed != Injector(live) {
		t.Fatal("single live injector not returned as-is")
	}
	two := Compose(live, dropOnly)
	if two.Empty() {
		t.Fatal("two-live composition reports empty")
	}
}

// TestComposeLinkFactorPrecedence pins the precedence rules across
// composed injectors: factors multiply across components exactly as
// overlapping spans multiply within one plan, and a down link (factor 0)
// in any component dominates every slowdown, whatever the composition
// order.
func TestComposeLinkFactorPrecedence(t *testing.T) {
	slow2 := MustFromFaults(Fault{Kind: LinkSlow, From: 0, To: 100, U: 0, V: 1, Factor: 2})
	slow3 := MustFromFaults(Fault{Kind: LinkSlow, From: 0, To: 100, U: 1, V: 0, Factor: 3}) // same link, reversed endpoints
	slow5 := MustFromFaults(Fault{Kind: LinkSlow, From: 50, To: 100, U: 0, V: 1, Factor: 5})
	down := MustFromFaults(Fault{Kind: LinkDown, From: 40, To: 60, U: 0, V: 1})

	c := Compose(slow2, slow3, slow5)
	if got := c.LinkFactor(0, 1, 10); got != 6 {
		t.Fatalf("factor at 10 = %d, want 2·3 = 6", got)
	}
	if got := c.LinkFactor(1, 0, 70); got != 30 {
		t.Fatalf("factor at 70 (queried reversed) = %d, want 2·3·5 = 30", got)
	}
	// Down dominates regardless of where it sits in the composition.
	for _, injs := range [][]Injector{
		{down, slow2, slow5},
		{slow2, down, slow5},
		{slow2, slow5, down},
	} {
		if got := Compose(injs...).LinkFactor(0, 1, 55); got != 0 {
			t.Fatalf("down link not dominant (order %v): factor %d", injs, got)
		}
	}
	// Outside the down span the slowdowns reappear.
	cd := Compose(slow2, slow5, down)
	if got := cd.LinkFactor(0, 1, 65); got != 10 {
		t.Fatalf("factor after down span = %d, want 10", got)
	}
	// Untouched links stay healthy through the composition.
	if got := cd.LinkFactor(2, 3, 55); got != 1 {
		t.Fatalf("unrelated link factor = %d, want 1", got)
	}
}
