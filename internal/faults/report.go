package faults

import "fmt"

// Report summarizes the recovery work a faulty simulation performed. Every
// field is deterministic for a fixed (instance, schedule, plan): tests
// compare reports byte-for-byte across runs and worker counts.
type Report struct {
	// Faults is the number of scripted faults in the plan (probabilistic
	// drops are uncounted; they surface as Retries).
	Faults int `json:"faults"`
	// Retries counts re-dispatches after dropped moves.
	Retries int64 `json:"retries"`
	// WastedComm is the distance traveled by moves that were then lost
	// (charged at the full hop distance; not part of Result.CommCost).
	WastedComm int64 `json:"wasted_comm"`
	// Reroutes counts delivered moves that took a longer path on the
	// surviving subgraph than the healthy shortest path.
	Reroutes int64 `json:"reroutes"`
	// RerouteExtra is the total extra distance those reroutes paid.
	RerouteExtra int64 `json:"reroute_extra"`
	// BlockedWaits counts dispatches that waited out a partition (no
	// surviving path) until a fault boundary restored connectivity.
	BlockedWaits int64 `json:"blocked_waits"`
	// DeferredMoves counts dispatches delayed because an endpoint node
	// was crashed.
	DeferredMoves int64 `json:"deferred_moves"`
	// DeferredCommits counts transactions that committed later than their
	// scheduled step.
	DeferredCommits int64 `json:"deferred_commits"`
	// DeferredSteps is the total commit delay in steps, summed over all
	// deferred transactions.
	DeferredSteps int64 `json:"deferred_steps"`
	// BaselineMakespan is the schedule's fault-free makespan.
	BaselineMakespan int64 `json:"baseline_makespan"`
	// Makespan is the step of the last commit under faults.
	Makespan int64 `json:"makespan"`
	// Inflation is Makespan / BaselineMakespan (1.0 = no loss).
	Inflation float64 `json:"inflation"`
}

// String renders the report for logs.
func (r *Report) String() string {
	if r == nil {
		return "faults.Report(nil)"
	}
	return fmt.Sprintf("faults.Report(makespan %d/%d = %.3fx, %d retries, %d reroutes(+%d), %d blocked, %d deferred commits(+%d steps))",
		r.Makespan, r.BaselineMakespan, r.Inflation, r.Retries, r.Reroutes, r.RerouteExtra, r.BlockedWaits, r.DeferredCommits, r.DeferredSteps)
}
