package faults

import (
	"reflect"
	"testing"

	"dtmsched/internal/topology"
)

func TestRecurZeroMatchesSingleDraw(t *testing.T) {
	// Recur is purely additive: a zero chunk must reproduce the
	// historical single-draw plan bit-for-bit (the zero-fault and
	// batch-sweep baselines depend on it).
	g := topology.NewSquareGrid(6).Graph()
	cfg := Config{Seed: 11, Horizon: 300, LinkDownRate: 0.2, LinkSlowRate: 0.15, CrashRate: 0.1, DropRate: 0.05}
	base := MustNew(cfg, g)
	cfg.Recur = 0
	again := MustNew(cfg, g)
	if !reflect.DeepEqual(base.Faults(), again.Faults()) {
		t.Fatal("Recur=0 changed the generated plan")
	}
}

func TestRecurRedrawsPerChunk(t *testing.T) {
	g := topology.NewClique(8).Graph()
	cfg := Config{Seed: 3, Horizon: 800, Recur: 100, MeanOutage: 20,
		LinkDownRate: 0.3, CrashRate: 0.2}
	a := MustNew(cfg, g)
	b := MustNew(cfg, g)
	if !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatal("recurring plans are not seed-deterministic")
	}
	// Every generated interval starts inside its own chunk.
	for _, f := range a.Faults() {
		if f.From < 1 || f.From > cfg.Horizon {
			t.Fatalf("fault start %d outside (0,%d]", f.From, cfg.Horizon)
		}
	}
	// A recurring plan over many chunks should carry strictly more faults
	// than the single-draw plan at the same rates: each site gets eight
	// chances instead of one.
	single := MustNew(Config{Seed: 3, Horizon: 800, MeanOutage: 20,
		LinkDownRate: 0.3, CrashRate: 0.2}, g)
	if a.Count() <= single.Count() {
		t.Fatalf("recurring plan has %d faults, single-draw %d — expected more pressure",
			a.Count(), single.Count())
	}
	// Late chunks actually fire: chaos pressure must not decay over the
	// horizon (the whole point of recurring draws).
	var late int
	for _, f := range a.Faults() {
		if f.From > cfg.Horizon/2 {
			late++
		}
	}
	if late == 0 {
		t.Fatal("no faults in the second half of the horizon")
	}
}

func TestRecurValidation(t *testing.T) {
	g := topology.NewClique(4).Graph()
	if _, err := New(Config{Seed: 1, Horizon: 100, LinkDownRate: 0.1, Recur: -5}, g); err == nil {
		t.Fatal("negative Recur accepted")
	}
}
