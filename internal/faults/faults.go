// Package faults provides deterministic, seed-reproducible fault plans for
// the repairing simulator (sim.RunFaulty) and the engine's robustness
// sweeps. Every bound in the paper assumes the synchronous fault-free model
// of Section 2.1; this package scripts the ways a deployment breaks that
// model — links slowing down or dropping out over step intervals, object
// moves lost in transit, nodes crashing and restarting — so the schedules'
// makespan and communication-cost loss under faults becomes measurable.
//
// All randomness is rooted in an explicit seed (never wall-clock): the same
// seed always yields the same Plan, and a Plan's answers depend only on its
// faults, never on query order. Injectors compose, so tests can overlay a
// scripted fault sequence on a rate-generated background plan.
package faults

import (
	"fmt"
	"math"
	"sort"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
)

// Forever marks a fault interval that never ends (To == Forever) and is the
// restart step NodeDownUntil reports for a permanently crashed node. The
// simulator treats a dependency on a Forever fault as unrecoverable.
const Forever = int64(math.MaxInt64)

// Kind enumerates fault classes.
type Kind int

// Fault kinds.
const (
	// LinkSlow multiplies the delay of link {U, V} by Factor during
	// [From, To).
	LinkSlow Kind = iota
	// LinkDown removes link {U, V} during [From, To); objects reroute
	// around it on the surviving subgraph.
	LinkDown
	// NodeCrash takes Node down during [From, To): its transactions defer
	// their commits and objects cannot depart from, arrive at, or route
	// through it until the restart.
	NodeCrash
	// MoveDrop loses the Seq-th dispatch of Object in transit; the holder
	// re-dispatches after a bounded exponential backoff.
	MoveDrop
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case LinkSlow:
		return "link-slow"
	case LinkDown:
		return "link-down"
	case NodeCrash:
		return "node-crash"
	case MoveDrop:
		return "move-drop"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scripted fault.
type Fault struct {
	Kind Kind
	// From and To delimit the active interval [From, To) in simulated
	// steps (LinkSlow, LinkDown, NodeCrash). To == Forever never ends.
	From, To int64
	// U and V are the link endpoints (LinkSlow, LinkDown); order is
	// irrelevant.
	U, V graph.NodeID
	// Node is the crash target (NodeCrash).
	Node graph.NodeID
	// Object and Seq select a dispatch to lose (MoveDrop): Seq counts the
	// object's dispatch attempts over the whole run, 0-based.
	Object tm.ObjectID
	Seq    int
	// Factor is the LinkSlow delay multiplier (≥ 2).
	Factor int64
}

// Injector is the fault state a faulty simulation consults. Implementations
// must be deterministic (answers depend only on the arguments) and safe for
// concurrent readers, because engine jobs may share one injector.
//
// The step arguments let custom injectors vary state over time, but the
// contract is piecewise-constant state: between two consecutive Boundaries
// entries every answer must stay fixed, so the simulator can cache one
// surviving subgraph per epoch.
type Injector interface {
	// Empty reports whether the injector can never fire; an empty
	// injector makes RunFaulty exactly Run.
	Empty() bool
	// Count is the number of scripted faults (rate-based move drops are
	// uncounted: they surface as retries in the report).
	Count() int
	// Boundaries returns the sorted ascending steps at which interval
	// fault state may change (fault starts and finite ends).
	Boundaries() []int64
	// LinkFactor returns the delay multiplier of link {u, v} at step:
	// 1 healthy, 0 down, > 1 slowed. Overlapping faults multiply; a down
	// fault dominates.
	LinkFactor(u, v graph.NodeID, step int64) int64
	// NodeDownUntil reports whether node v is crashed at step and, if so,
	// the step at which it restarts (Forever = never).
	NodeDownUntil(v graph.NodeID, step int64) (restart int64, down bool)
	// DropMove reports whether the seq-th dispatch attempt of object o,
	// departing at step, is lost in transit.
	DropMove(o tm.ObjectID, seq int, step int64) bool
}

// span is a half-open step interval.
type span struct{ from, to int64 }

// linkSpan is a span with a link delay multiplier (0 = down).
type linkSpan struct {
	span
	factor int64
}

// linkKey is an unordered node pair.
type linkKey struct{ u, v graph.NodeID }

func mkLinkKey(u, v graph.NodeID) linkKey {
	if u > v {
		u, v = v, u
	}
	return linkKey{u, v}
}

// dropKey selects one dispatch of one object.
type dropKey struct {
	obj tm.ObjectID
	seq int
}

// Plan is the standard Injector: a fixed fault list with precomputed
// lookups, plus an optional probabilistic per-dispatch drop rate resolved
// by seeded hashing (deterministic and independent of query order). Build
// one from explicit faults with FromFaults or from rates with New.
type Plan struct {
	faults     []Fault
	boundaries []int64
	links      map[linkKey][]linkSpan
	crashes    map[graph.NodeID][]span
	drops      map[dropKey]struct{}
	dropRate   float64
	dropSeed   int64
}

// FromFaults builds a plan from an explicit fault script. Faults are
// validated: interval kinds need From ≥ 0 and To > From, LinkSlow needs
// Factor ≥ 2, MoveDrop needs Seq ≥ 0.
func FromFaults(fs ...Fault) (*Plan, error) {
	p := &Plan{
		links:   map[linkKey][]linkSpan{},
		crashes: map[graph.NodeID][]span{},
		drops:   map[dropKey]struct{}{},
	}
	for i, f := range fs {
		switch f.Kind {
		case LinkSlow, LinkDown, NodeCrash:
			if f.From < 0 || f.To <= f.From {
				return nil, fmt.Errorf("faults: fault %d (%s) has empty interval [%d,%d)", i, f.Kind, f.From, f.To)
			}
			if f.Kind == LinkSlow && f.Factor < 2 {
				return nil, fmt.Errorf("faults: fault %d (link-slow) has factor %d < 2", i, f.Factor)
			}
			if f.Kind != NodeCrash && f.U == f.V {
				return nil, fmt.Errorf("faults: fault %d (%s) is a self-loop at node %d", i, f.Kind, f.U)
			}
		case MoveDrop:
			if f.Seq < 0 {
				return nil, fmt.Errorf("faults: fault %d (move-drop) has negative seq %d", i, f.Seq)
			}
		default:
			return nil, fmt.Errorf("faults: fault %d has unknown kind %d", i, int(f.Kind))
		}
		p.add(f)
	}
	p.finish()
	return p, nil
}

// MustFromFaults is FromFaults for tests and examples that treat a bad
// script as a programming error.
func MustFromFaults(fs ...Fault) *Plan {
	p, err := FromFaults(fs...)
	if err != nil {
		panic(err)
	}
	return p
}

// add indexes one validated fault.
func (p *Plan) add(f Fault) {
	p.faults = append(p.faults, f)
	switch f.Kind {
	case LinkSlow:
		k := mkLinkKey(f.U, f.V)
		p.links[k] = append(p.links[k], linkSpan{span{f.From, f.To}, f.Factor})
	case LinkDown:
		k := mkLinkKey(f.U, f.V)
		p.links[k] = append(p.links[k], linkSpan{span{f.From, f.To}, 0})
	case NodeCrash:
		p.crashes[f.Node] = append(p.crashes[f.Node], span{f.From, f.To})
	case MoveDrop:
		p.drops[dropKey{f.Object, f.Seq}] = struct{}{}
	}
}

// finish sorts the lookup structures and collects the epoch boundaries.
func (p *Plan) finish() {
	set := map[int64]struct{}{}
	for k := range p.links {
		spans := p.links[k]
		sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
		for _, s := range spans {
			set[s.from] = struct{}{}
			if s.to != Forever {
				set[s.to] = struct{}{}
			}
		}
	}
	for v := range p.crashes {
		spans := mergeSpans(p.crashes[v])
		p.crashes[v] = spans
		for _, s := range spans {
			set[s.from] = struct{}{}
			if s.to != Forever {
				set[s.to] = struct{}{}
			}
		}
	}
	p.boundaries = make([]int64, 0, len(set))
	for b := range set {
		p.boundaries = append(p.boundaries, b)
	}
	sort.Slice(p.boundaries, func(i, j int) bool { return p.boundaries[i] < p.boundaries[j] })
}

// mergeSpans merges overlapping or touching intervals.
func mergeSpans(spans []span) []span {
	if len(spans) <= 1 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.from <= last.to {
			if s.to > last.to {
				last.to = s.to
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Faults returns the plan's scripted faults (read-only).
func (p *Plan) Faults() []Fault { return p.faults }

// DropRate returns the probabilistic per-dispatch drop rate (0 = none).
func (p *Plan) DropRate() float64 { return p.dropRate }

// Empty implements Injector.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.faults) == 0 && p.dropRate == 0)
}

// Count implements Injector.
func (p *Plan) Count() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// Boundaries implements Injector.
func (p *Plan) Boundaries() []int64 {
	if p == nil {
		return nil
	}
	return p.boundaries
}

// LinkFactor implements Injector.
func (p *Plan) LinkFactor(u, v graph.NodeID, step int64) int64 {
	if p == nil || len(p.links) == 0 {
		return 1
	}
	factor := int64(1)
	for _, s := range p.links[mkLinkKey(u, v)] {
		if step < s.from || step >= s.to {
			continue
		}
		if s.factor == 0 {
			return 0
		}
		factor *= s.factor
	}
	return factor
}

// NodeDownUntil implements Injector. Crash spans are merged at build time,
// so the first covering span's end is the true restart step.
func (p *Plan) NodeDownUntil(v graph.NodeID, step int64) (int64, bool) {
	if p == nil || len(p.crashes) == 0 {
		return 0, false
	}
	for _, s := range p.crashes[v] {
		if step >= s.from && step < s.to {
			return s.to, true
		}
		if s.from > step {
			break
		}
	}
	return 0, false
}

// DropMove implements Injector: scripted drops fire on their exact (object,
// seq) pair; the probabilistic rate hashes (seed, object, seq) so the
// decision is reproducible and independent of when the dispatch happens.
func (p *Plan) DropMove(o tm.ObjectID, seq int, step int64) bool {
	if p == nil {
		return false
	}
	if len(p.drops) > 0 {
		if _, hit := p.drops[dropKey{o, seq}]; hit {
			return true
		}
	}
	if p.dropRate <= 0 {
		return false
	}
	return hashUnit(p.dropSeed, int64(o), int64(seq)) < p.dropRate
}

// String summarizes the plan.
func (p *Plan) String() string {
	if p.Empty() {
		return "faults.Plan(empty)"
	}
	var slow, down, crash, drop int
	for _, f := range p.faults {
		switch f.Kind {
		case LinkSlow:
			slow++
		case LinkDown:
			down++
		case NodeCrash:
			crash++
		case MoveDrop:
			drop++
		}
	}
	return fmt.Sprintf("faults.Plan(%d slow, %d down, %d crash, %d drop, rate=%.3g)",
		slow, down, crash, drop, p.dropRate)
}

// hashUnit maps (seed, a, b) to a uniform value in [0, 1) via the FNV-1a
// construction xrand uses for stream derivation. Purely arithmetic, so the
// probabilistic drop path allocates nothing and never consults a shared
// RNG.
func hashUnit(seed, a, b int64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x int64) {
		u := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
		h ^= 0xff
		h *= prime64
	}
	mix(seed)
	mix(a)
	mix(b)
	// Use the top 53 bits for a full-precision float in [0, 1).
	return float64(h>>11) / float64(1<<53)
}

// compose overlays several injectors.
type compose struct {
	injs       []Injector
	boundaries []int64
}

// Compose overlays injectors: link factors multiply (down dominates), node
// crashes and move drops union, boundaries merge. Nil and empty injectors
// are skipped; composing zero live injectors yields an empty plan, and a
// single live injector is returned as-is.
func Compose(injs ...Injector) Injector {
	live := make([]Injector, 0, len(injs))
	for _, in := range injs {
		if in != nil && !in.Empty() {
			live = append(live, in)
		}
	}
	switch len(live) {
	case 0:
		return (*Plan)(nil)
	case 1:
		return live[0]
	}
	set := map[int64]struct{}{}
	for _, in := range live {
		for _, b := range in.Boundaries() {
			set[b] = struct{}{}
		}
	}
	bounds := make([]int64, 0, len(set))
	for b := range set {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &compose{injs: live, boundaries: bounds}
}

// Empty implements Injector.
func (c *compose) Empty() bool { return false }

// Count implements Injector.
func (c *compose) Count() int {
	total := 0
	for _, in := range c.injs {
		total += in.Count()
	}
	return total
}

// Boundaries implements Injector.
func (c *compose) Boundaries() []int64 { return c.boundaries }

// LinkFactor implements Injector.
func (c *compose) LinkFactor(u, v graph.NodeID, step int64) int64 {
	factor := int64(1)
	for _, in := range c.injs {
		f := in.LinkFactor(u, v, step)
		if f == 0 {
			return 0
		}
		factor *= f
	}
	return factor
}

// NodeDownUntil implements Injector: the latest restart among injectors
// reporting the node down. The simulator re-queries after advancing, so
// staggered overlapping crashes resolve over successive calls.
func (c *compose) NodeDownUntil(v graph.NodeID, step int64) (int64, bool) {
	var restart int64
	down := false
	for _, in := range c.injs {
		if r, d := in.NodeDownUntil(v, step); d {
			down = true
			if r > restart {
				restart = r
			}
		}
	}
	return restart, down
}

// DropMove implements Injector.
func (c *compose) DropMove(o tm.ObjectID, seq int, step int64) bool {
	for _, in := range c.injs {
		if in.DropMove(o, seq, step) {
			return true
		}
	}
	return false
}
