package faults

import (
	"reflect"
	"testing"

	"dtmsched/internal/graph"
	"dtmsched/internal/topology"
)

func TestPlanSeedDeterminism(t *testing.T) {
	// The same (seed, config, graph) must yield an identical plan — same
	// fault list, same boundaries, same probabilistic drop answers — no
	// matter how often it is generated.
	g := topology.NewSquareGrid(8).Graph()
	cfg := Config{Seed: 42, Horizon: 200, LinkDownRate: 0.1, LinkSlowRate: 0.1, CrashRate: 0.05, DropRate: 0.1}
	a := MustNew(cfg, g)
	b := MustNew(cfg, g)
	if !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatalf("same seed generated different fault lists:\n%v\nvs\n%v", a.Faults(), b.Faults())
	}
	if !reflect.DeepEqual(a.Boundaries(), b.Boundaries()) {
		t.Fatalf("same seed generated different boundaries: %v vs %v", a.Boundaries(), b.Boundaries())
	}
	for o := 0; o < 16; o++ {
		for seq := 0; seq < 8; seq++ {
			if a.DropMove(0, seq, 0) != b.DropMove(0, seq, 0) {
				t.Fatalf("drop decision for obj %d seq %d differs between identical plans", o, seq)
			}
		}
	}
	if MustNew(Config{Seed: 43, Horizon: 200, LinkDownRate: 0.1}, g).Count() == a.Count() &&
		reflect.DeepEqual(MustNew(Config{Seed: 43, Horizon: 200, LinkDownRate: 0.1, LinkSlowRate: 0.1, CrashRate: 0.05}, g).Faults(), a.Faults()) {
		t.Fatal("different seeds generated identical fault lists")
	}
}

func TestPlanGenerationIsOrderIndependent(t *testing.T) {
	// Two graphs with the same links added in different orders must fault
	// identically: draws are derived per site, not per iteration.
	a := graph.New(4)
	a.AddUnitEdge(0, 1)
	a.AddUnitEdge(1, 2)
	a.AddUnitEdge(2, 3)
	b := graph.New(4)
	b.AddUnitEdge(2, 3)
	b.AddUnitEdge(0, 1)
	b.AddUnitEdge(1, 2)
	cfg := Config{Seed: 7, Horizon: 100, LinkDownRate: 0.5, LinkSlowRate: 0.5, CrashRate: 0.5}
	pa, pb := MustNew(cfg, a), MustNew(cfg, b)
	// Compare per-site answers (fault list order may differ with edge order).
	for u := graph.NodeID(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			for step := int64(0); step < 150; step += 7 {
				if pa.LinkFactor(u, v, step) != pb.LinkFactor(u, v, step) {
					t.Fatalf("link {%d,%d} factor differs at step %d", u, v, step)
				}
			}
		}
		for step := int64(0); step < 150; step += 7 {
			ra, da := pa.NodeDownUntil(u, step)
			rb, db := pb.NodeDownUntil(u, step)
			if da != db || ra != rb {
				t.Fatalf("node %d crash state differs at step %d", u, step)
			}
		}
	}
}

func TestScriptedPlanLookups(t *testing.T) {
	p := MustFromFaults(
		Fault{Kind: LinkDown, From: 10, To: 20, U: 1, V: 2},
		Fault{Kind: LinkSlow, From: 15, To: 30, U: 2, V: 1, Factor: 3},
		Fault{Kind: NodeCrash, From: 5, To: 8, Node: 4},
		Fault{Kind: NodeCrash, From: 7, To: 12, Node: 4}, // overlaps: merges to [5,12)
		Fault{Kind: MoveDrop, Object: 3, Seq: 1},
	)
	if p.Empty() {
		t.Fatal("scripted plan reports empty")
	}
	if got := p.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// Link {1,2}: down dominates in [15,20) even though slowed too.
	cases := []struct {
		step int64
		want int64
	}{{9, 1}, {10, 0}, {17, 0}, {20, 3}, {29, 3}, {30, 1}}
	for _, c := range cases {
		if got := p.LinkFactor(2, 1, c.step); got != c.want {
			t.Errorf("LinkFactor(step %d) = %d, want %d", c.step, got, c.want)
		}
	}
	if r, down := p.NodeDownUntil(4, 6); !down || r != 12 {
		t.Errorf("NodeDownUntil(4, 6) = (%d, %v), want (12, true) after merge", r, down)
	}
	if _, down := p.NodeDownUntil(4, 12); down {
		t.Error("node 4 still down at its restart step")
	}
	if !p.DropMove(3, 1, 0) || p.DropMove(3, 0, 0) || p.DropMove(2, 1, 0) {
		t.Error("scripted drop fires on wrong (object, seq)")
	}
	wantBounds := []int64{5, 10, 12, 15, 20, 30}
	if !reflect.DeepEqual(p.Boundaries(), wantBounds) {
		t.Errorf("Boundaries = %v, want %v", p.Boundaries(), wantBounds)
	}
}

func TestFromFaultsValidation(t *testing.T) {
	bad := []Fault{
		{Kind: LinkDown, From: 10, To: 10, U: 0, V: 1},
		{Kind: LinkDown, From: 5, To: 10, U: 1, V: 1},
		{Kind: LinkSlow, From: 1, To: 2, U: 0, V: 1, Factor: 1},
		{Kind: MoveDrop, Object: 0, Seq: -1},
		{Kind: Kind(99)},
	}
	for i, f := range bad {
		if _, err := FromFaults(f); err == nil {
			t.Errorf("case %d: FromFaults accepted invalid fault %+v", i, f)
		}
	}
}

func TestComposeOverlays(t *testing.T) {
	slow := MustFromFaults(Fault{Kind: LinkSlow, From: 0, To: 100, U: 0, V: 1, Factor: 2})
	slower := MustFromFaults(Fault{Kind: LinkSlow, From: 50, To: 100, U: 0, V: 1, Factor: 3})
	down := MustFromFaults(Fault{Kind: LinkDown, From: 70, To: 80, U: 0, V: 1})
	crashA := MustFromFaults(Fault{Kind: NodeCrash, From: 10, To: 20, Node: 5})
	crashB := MustFromFaults(Fault{Kind: NodeCrash, From: 15, To: 25, Node: 5})
	c := Compose(slow, slower, down, crashA, crashB, nil, MustFromFaults())
	if c.Empty() {
		t.Fatal("composed injector reports empty")
	}
	if got := c.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := c.LinkFactor(0, 1, 60); got != 6 {
		t.Errorf("factors should multiply: got %d, want 6", got)
	}
	if got := c.LinkFactor(0, 1, 75); got != 0 {
		t.Errorf("down should dominate: got %d, want 0", got)
	}
	if r, isDown := c.NodeDownUntil(5, 17); !isDown || r != 25 {
		t.Errorf("overlapping crashes: NodeDownUntil = (%d, %v), want (25, true)", r, isDown)
	}
	// Composing nothing live yields an empty injector.
	if !Compose(nil, MustFromFaults()).Empty() {
		t.Error("Compose of empty injectors is not empty")
	}
	// A single live injector passes through untouched.
	if Compose(nil, slow) != Injector(slow) {
		t.Error("Compose of one live injector should return it as-is")
	}
}

func TestHashUnitRange(t *testing.T) {
	for a := int64(0); a < 100; a++ {
		for b := int64(0); b < 10; b++ {
			u := hashUnit(12345, a, b)
			if u < 0 || u >= 1 {
				t.Fatalf("hashUnit(%d,%d) = %v outside [0,1)", a, b, u)
			}
		}
	}
	// A zero rate never drops, a rate of 1 always does.
	p := &Plan{dropRate: 1, dropSeed: 1}
	if !p.DropMove(0, 0, 0) {
		t.Error("rate-1 plan failed to drop")
	}
}
