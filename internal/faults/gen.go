package faults

import (
	"fmt"

	"dtmsched/internal/graph"
	"dtmsched/internal/xrand"
)

// Config parameterizes rate-based plan generation (New). All rates are
// probabilities in [0, 1]; every fault site (link, node) draws from its own
// seed-derived stream, so the generated plan is identical regardless of
// graph construction order or parallelism.
type Config struct {
	// Seed roots all randomness. The same (Seed, Config, graph) always
	// yields the same plan.
	Seed int64
	// Horizon is the step range [1, Horizon] over which interval faults
	// start; pick the schedule's fault-free makespan so faults land while
	// the batch is active. Required ≥ 1 when any interval rate is set.
	Horizon int64
	// LinkDownRate is the probability that a link suffers one outage.
	LinkDownRate float64
	// LinkSlowRate is the probability that a link suffers one slowdown.
	LinkSlowRate float64
	// SlowFactor is the delay multiplier of slowdowns (default 4).
	SlowFactor int64
	// CrashRate is the probability that a node suffers one crash window.
	CrashRate float64
	// DropRate is the probability that any single object dispatch is lost
	// in transit (resolved per dispatch by seeded hashing).
	DropRate float64
	// MeanOutage is the mean fault duration in steps (default
	// max(Horizon/8, 1)); durations are uniform in [1, 2·MeanOutage].
	MeanOutage int64
	// Recur, when > 0, splits the horizon into chunks of Recur steps and
	// redraws every fault site once per chunk instead of once per run, so
	// fault pressure persists over long horizons (the chaos mode of the
	// streaming service, which keys chunks to its serving windows). Each
	// (site, chunk) pair draws from its own derived stream, so plans stay
	// identical across graph construction order and parallelism, and
	// Recur = 0 reproduces today's single-draw plans bit-for-bit.
	Recur int64
}

// rated reports whether any interval fault class has a nonzero rate.
func (c Config) rated() bool {
	return c.LinkDownRate > 0 || c.LinkSlowRate > 0 || c.CrashRate > 0
}

// New generates a plan over g's links and nodes from per-site rates. The
// draw for each link and node comes from a stream derived from (Seed, kind,
// site), so two plans with the same seed and config agree fault-by-fault
// even if the graphs were built in different edge orders.
func New(cfg Config, g *graph.Graph) (*Plan, error) {
	if cfg.rated() && cfg.Horizon < 1 {
		return nil, fmt.Errorf("faults: config has interval fault rates but horizon %d < 1", cfg.Horizon)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"LinkDownRate", cfg.LinkDownRate}, {"LinkSlowRate", cfg.LinkSlowRate}, {"CrashRate", cfg.CrashRate}, {"DropRate", cfg.DropRate}} {
		if r.v < 0 || r.v > 1 {
			return nil, fmt.Errorf("faults: %s %v outside [0,1]", r.name, r.v)
		}
	}
	factor := cfg.SlowFactor
	if factor == 0 {
		factor = 4
	}
	if factor < 2 {
		return nil, fmt.Errorf("faults: slow factor %d < 2", factor)
	}
	mean := cfg.MeanOutage
	if mean == 0 {
		mean = cfg.Horizon / 8
		if mean < 1 {
			mean = 1
		}
	}
	if mean < 1 {
		return nil, fmt.Errorf("faults: mean outage %d < 1", mean)
	}
	if cfg.Recur < 0 {
		return nil, fmt.Errorf("faults: recur chunk %d < 0", cfg.Recur)
	}

	var fs []Fault
	// intervals draws every active interval of one fault site. With
	// Recur = 0 a site draws exactly once over the whole horizon (one
	// stream per site — the historical plan shape); with Recur > 0 it
	// draws once per chunk from a per-(site, chunk) stream, each hit
	// landing inside its own chunk.
	intervals := func(r float64, kind string, a, b int64, emit func(from, to int64)) {
		if r <= 0 {
			return
		}
		if cfg.Recur <= 0 {
			rng := xrand.NewDerived(cfg.Seed, "faults", kind, fmt.Sprint(a), fmt.Sprint(b))
			if rng.Float64() >= r {
				return
			}
			from := 1 + rng.Int63n(cfg.Horizon)
			dur := 1 + rng.Int63n(2*mean)
			emit(from, from+dur)
			return
		}
		for start := int64(0); start < cfg.Horizon; start += cfg.Recur {
			width := cfg.Recur
			if rem := cfg.Horizon - start; rem < width {
				width = rem
			}
			rng := xrand.NewDerived(cfg.Seed, "faults", kind,
				fmt.Sprint(a), fmt.Sprint(b), "chunk", fmt.Sprint(start/cfg.Recur))
			if rng.Float64() >= r {
				continue
			}
			from := start + 1 + rng.Int63n(width)
			dur := 1 + rng.Int63n(2*mean)
			emit(from, from+dur)
		}
	}
	if cfg.rated() {
		n := g.NumNodes()
		seen := map[linkKey]struct{}{}
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(graph.NodeID(u)) {
				if e.To <= graph.NodeID(u) {
					continue
				}
				k := mkLinkKey(graph.NodeID(u), e.To)
				if _, dup := seen[k]; dup {
					continue // parallel links fault as one site
				}
				seen[k] = struct{}{}
				intervals(cfg.LinkDownRate, "link-down", int64(k.u), int64(k.v), func(from, to int64) {
					fs = append(fs, Fault{Kind: LinkDown, From: from, To: to, U: k.u, V: k.v})
				})
				intervals(cfg.LinkSlowRate, "link-slow", int64(k.u), int64(k.v), func(from, to int64) {
					fs = append(fs, Fault{Kind: LinkSlow, From: from, To: to, U: k.u, V: k.v, Factor: factor})
				})
			}
		}
		for v := 0; v < n; v++ {
			intervals(cfg.CrashRate, "crash", int64(v), 0, func(from, to int64) {
				fs = append(fs, Fault{Kind: NodeCrash, From: from, To: to, Node: graph.NodeID(v)})
			})
		}
	}
	p, err := FromFaults(fs...)
	if err != nil {
		return nil, err
	}
	p.dropRate = cfg.DropRate
	p.dropSeed = xrand.Derive(cfg.Seed, "faults", "drop")
	return p, nil
}

// MustNew is New for tests and examples that treat a bad config as a
// programming error.
func MustNew(cfg Config, g *graph.Graph) *Plan {
	p, err := New(cfg, g)
	if err != nil {
		panic(err)
	}
	return p
}
