package windows

import (
	"fmt"
	"sort"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// ChainChecker cross-checks a sequence of window schedules against the
// whole-sequence feasibility rules, independently of the scheduler's own
// bookkeeping: per-object handoff chains must leave enough transfer time
// across window boundaries (an object released at step t on node u
// reaches its next user v no earlier than t + dist(u, v)), and the
// transactions a node hosts across windows must commit at strictly
// increasing steps. State advances window by window, so feeding every
// window of a sequence through Check validates the whole composition —
// the cross-check windows.Run applies to both execution modes and the
// streaming cutter reuses per cut window.
type ChainChecker struct {
	metric graph.Metric
	// relT / relN track each object's release step and node after the
	// windows checked so far (the virtual time-0 holder initially).
	relT []int64
	relN []graph.NodeID
	// nodeBusy is the last verified commit step per node.
	nodeBusy map[graph.NodeID]int64
	// windows counts the windows verified so far, for error context.
	windows int
}

// NewChainChecker starts a checker for a sequence whose objects begin at
// the given homes under the given metric.
func NewChainChecker(metric graph.Metric, home []graph.NodeID) *ChainChecker {
	return &ChainChecker{
		metric:   metric,
		relT:     make([]int64, len(home)),
		relN:     append([]graph.NodeID(nil), home...),
		nodeBusy: make(map[graph.NodeID]int64),
	}
}

// Check validates one window's schedule against the chained state and,
// when feasible, advances the state past it. The instance must share the
// sequence's object space (NumObjects). On error the checker state is
// unspecified; a failed sequence should not be checked further.
func (c *ChainChecker) Check(in *tm.Instance, s *schedule.Schedule) error {
	wi := c.windows
	if len(s.Times) != in.NumTxns() {
		return fmt.Errorf("windows: window %d: %d times for %d transactions", wi, len(s.Times), in.NumTxns())
	}
	if in.NumObjects != len(c.relT) {
		return fmt.Errorf("windows: window %d has %d objects, checker tracks %d", wi, in.NumObjects, len(c.relT))
	}
	for i, t := range s.Times {
		if t < 1 {
			return fmt.Errorf("windows: window %d: transaction %d at step %d < 1", wi, i, t)
		}
	}

	// Per-node uniqueness across the whole sequence: sweep this window's
	// transactions in time order and require each node's commits to be
	// strictly increasing over the chained nodeBusy state (which also
	// rejects two same-node transactions within one window).
	order := make([]int, in.NumTxns())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if s.Times[order[a]] != s.Times[order[b]] {
			return s.Times[order[a]] < s.Times[order[b]]
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		node := in.Txns[i].Node
		if busy, ok := c.nodeBusy[node]; ok && s.Times[i] <= busy {
			return fmt.Errorf("windows: window %d: node %d commits at step %d, not after step %d",
				wi, node, s.Times[i], busy)
		}
		c.nodeBusy[node] = s.Times[i]
	}

	// Per-object handoff chains: each object's users, in execution
	// order, must be reachable from wherever the previous user (possibly
	// in an earlier window) released it. Ties among users of a shared
	// object are infeasible — the object cannot be at two nodes at once.
	for o := 0; o < in.NumObjects; o++ {
		oid := tm.ObjectID(o)
		users := s.Order(in, oid)
		if len(users) == 0 {
			continue
		}
		for i, id := range users {
			t, node := s.Times[id], in.Txns[id].Node
			if i > 0 && t == s.Times[users[i-1]] {
				return fmt.Errorf("windows: window %d: object %d used by transactions %d and %d both at step %d",
					wi, o, users[i-1], id, t)
			}
			if need := c.relT[o] + c.metric.Dist(c.relN[o], node); t < need {
				return fmt.Errorf("windows: window %d: object %d released at step %d on node %d cannot reach transaction %d (node %d) by step %d",
					wi, o, c.relT[o], c.relN[o], id, node, t)
			}
			c.relT[o], c.relN[o] = t, node
		}
	}
	c.windows++
	return nil
}

// Windows reports how many windows the checker has verified.
func (c *ChainChecker) Windows() int { return c.windows }
