package windows

import (
	"strings"
	"testing"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
)

// replay feeds every window of a finished run through a fresh checker.
func replay(t *testing.T, seq *Sequence, res *Result) error {
	t.Helper()
	c := NewChainChecker(seq.Metric, seq.Home)
	for wi, in := range seq.Windows {
		if err := c.Check(in, res.PerWindow[wi]); err != nil {
			return err
		}
	}
	if c.Windows() != len(seq.Windows) {
		t.Fatalf("checker verified %d windows, want %d", c.Windows(), len(seq.Windows))
	}
	return nil
}

func TestChainCheckerAcceptsBothModes(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		seq := sequenceOn(t, 5, 11)
		res, err := Run(seq, pipelined)
		if err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		if err := replay(t, seq, res); err != nil {
			t.Fatalf("pipelined=%v: feasible sequence rejected: %v", pipelined, err)
		}
	}
}

func TestChainCheckerRejectsCorruption(t *testing.T) {
	seq := sequenceOn(t, 4, 12)
	res, err := Run(seq, true)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(res *Result)) error {
		fresh, err := Run(seq, true)
		if err != nil {
			t.Fatal(err)
		}
		mutate(fresh)
		return replay(t, seq, fresh)
	}

	// Pulling a later window's transaction to step 1 breaks its objects'
	// handoff chains (or its node's commit ordering).
	if err := corrupt(func(r *Result) { r.PerWindow[2].Times[0] = 1 }); err == nil {
		t.Fatal("handoff corruption accepted")
	}
	// Cloning one window's times into the next forces node reuse at
	// equal steps (every node hosts one transaction per window).
	if err := corrupt(func(r *Result) { copy(r.PerWindow[1].Times, r.PerWindow[0].Times) }); err == nil {
		t.Fatal("node-reuse corruption accepted")
	}
	// Zero times are rejected outright.
	if err := corrupt(func(r *Result) { r.PerWindow[3].Times[5] = 0 }); err == nil {
		t.Fatal("zero time accepted")
	}
	_ = res
}

func TestChainCheckerRejectsSharedObjectTie(t *testing.T) {
	// Two transactions sharing the single object at the same step: the
	// object would need to be at two nodes at once.
	topo := topology.NewClique(4)
	g := topo.Graph()
	metric := graph.FuncMetric(topo.Dist)
	txns := []tm.Txn{
		{Node: g.Nodes()[0], Objects: []tm.ObjectID{0}},
		{Node: g.Nodes()[1], Objects: []tm.ObjectID{0}},
	}
	in := tm.NewInstance(g, metric, 1, txns, []graph.NodeID{g.Nodes()[0]})
	c := NewChainChecker(metric, in.Home)
	err := c.Check(in, &schedule.Schedule{Times: []int64{2, 2}})
	if err == nil || !strings.Contains(err.Error(), "both at step") {
		t.Fatalf("tie on shared object not rejected: %v", err)
	}
}

func TestChainCheckerMismatchedShapes(t *testing.T) {
	seq := sequenceOn(t, 1, 13)
	res, err := Run(seq, true)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong object-space width.
	c := NewChainChecker(seq.Metric, seq.Home[:len(seq.Home)-1])
	if err := c.Check(seq.Windows[0], res.PerWindow[0]); err == nil {
		t.Fatal("object-count mismatch accepted")
	}
	// Wrong transaction count.
	c = NewChainChecker(seq.Metric, seq.Home)
	short := res.PerWindow[0].Clone()
	short.Times = short.Times[:len(short.Times)-1]
	if err := c.Check(seq.Windows[0], short); err == nil {
		t.Fatal("times-length mismatch accepted")
	}
}
