package windows

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/graph"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func sequenceOn(t testing.TB, count int, seed int64) *Sequence {
	t.Helper()
	topo := topology.NewClique(24)
	seq, err := Generate(xrand.New(seed), topo.Graph(), graph.FuncMetric(topo.Dist), tm.UniformK(8, 2), count, tm.PlaceAtRandomUser)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestBarrierAndPipelinedComplete(t *testing.T) {
	seq := sequenceOn(t, 4, 1)
	bar, err := Run(seq, false)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := Run(seq, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bar.PerWindow) != 4 || len(pip.PerWindow) != 4 {
		t.Fatal("missing windows")
	}
	if bar.Mode != "barrier" || pip.Mode != "pipelined" {
		t.Fatal("modes wrong")
	}
	// Pipelining can only help.
	if pip.Makespan > bar.Makespan {
		t.Fatalf("pipelined %d slower than barrier %d", pip.Makespan, bar.Makespan)
	}
	// Window ends are non-decreasing in both modes.
	for i := 1; i < 4; i++ {
		if bar.WindowEnd[i] < bar.WindowEnd[i-1] {
			t.Fatal("barrier window ends decreasing")
		}
	}
}

func TestCrossWindowChainsRespected(t *testing.T) {
	seq := sequenceOn(t, 3, 2)
	res, err := Run(seq, true)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-object global chains and verify handoff gaps,
	// independent of the scheduler's own bookkeeping.
	relT := make([]int64, seq.NumObjects)
	relN := make([]graph.NodeID, seq.NumObjects)
	copy(relN, seq.Home)
	nodeBusy := make(map[graph.NodeID]int64)
	for wi, in := range seq.Windows {
		s := res.PerWindow[wi]
		for o := 0; o < in.NumObjects; o++ {
			for _, id := range s.Order(in, tm.ObjectID(o)) {
				txn := &in.Txns[id]
				if s.Times[id] < relT[o]+seq.Metric.Dist(relN[o], txn.Node) {
					t.Fatalf("window %d: object %d handoff violated at txn %d", wi, o, id)
				}
				relT[o] = s.Times[id]
				relN[o] = txn.Node
			}
		}
		for i := range in.Txns {
			v := in.Txns[i].Node
			if busy, ok := nodeBusy[v]; ok && s.Times[i] <= busy {
				t.Fatalf("window %d: node %d reused at step %d ≤ %d", wi, v, s.Times[i], busy)
			}
		}
		for i := range in.Txns {
			v := in.Txns[i].Node
			if s.Times[i] > nodeBusy[v] {
				nodeBusy[v] = s.Times[i]
			}
		}
	}
}

func TestSingleWindowModes(t *testing.T) {
	// With one window the barrier is irrelevant; pipelined mode reduces
	// to plain list scheduling in coloring order, which can only beat
	// the one-shift coloring schedule.
	seq := sequenceOn(t, 1, 3)
	bar, err := Run(seq, false)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := Run(seq, true)
	if err != nil {
		t.Fatal(err)
	}
	if pip.Makespan > bar.Makespan {
		t.Fatalf("single-window pipelined %d slower than barrier %d", pip.Makespan, bar.Makespan)
	}
}

func TestGenerateErrors(t *testing.T) {
	topo := topology.NewClique(4)
	if _, err := Generate(xrand.New(1), topo.Graph(), nil, tm.UniformK(2, 1), 0, tm.PlaceAtRandomUser); err == nil {
		t.Fatal("count 0 accepted")
	}
}

func TestPipelinedNeverSlowerProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo := topology.NewSquareGrid(4 + r.Intn(4))
		w := 2 + r.Intn(6)
		k := 1 + r.Intn(minInt(w, 3))
		count := 2 + r.Intn(4)
		seq, err := Generate(r, topo.Graph(), graph.FuncMetric(topo.Dist), tm.UniformK(w, k), count, tm.PlaceAtRandomUser)
		if err != nil {
			return false
		}
		bar, err := Run(seq, false)
		if err != nil {
			return false
		}
		pip, err := Run(seq, true)
		if err != nil {
			return false
		}
		return pip.Makespan <= bar.Makespan
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
