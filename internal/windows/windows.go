// Package windows extends the one-shot batch model to repeated batches
// (windows) of transactions, in the spirit of the window-based contention
// management of Sharma & Busch that the paper cites [33]: every node
// receives a fresh transaction each window, and windows execute either
// behind a global barrier (each window starts after the previous one
// fully finishes) or pipelined (a window's transaction may start as soon
// as its own objects are available, overlapping the previous window's
// stragglers).
//
// Object homes evolve across windows: window i+1 finds each object where
// window i released it. Feasibility spans the whole sequence: per-object
// handoff chains cross window boundaries, and transactions sharing a node
// (one per window) execute at distinct steps.
package windows

import (
	"fmt"
	"math/rand"
	"sort"

	"dtmsched/internal/depgraph"
	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// Sequence is a multi-window workload over one communication graph.
type Sequence struct {
	// G and Metric describe the network.
	G      *graph.Graph
	Metric graph.Metric
	// NumObjects is the shared object count (constant across windows).
	NumObjects int
	// Home is each object's initial position before window 0.
	Home []graph.NodeID
	// Windows holds the per-window instances; all share G, Metric, and
	// NumObjects, with homes chained automatically during scheduling.
	Windows []*tm.Instance
}

// Generate builds a Sequence of `count` windows, each drawn independently
// from the workload over all nodes. Homes for window 0 follow the
// placement policy; later windows inherit positions.
func Generate(r *rand.Rand, g *graph.Graph, metric graph.Metric, w tm.Workload, count int, place tm.Placement) (*Sequence, error) {
	if count < 1 {
		return nil, fmt.Errorf("windows: count %d < 1", count)
	}
	seq := &Sequence{G: g, Metric: metric, NumObjects: w.W}
	for i := 0; i < count; i++ {
		in := w.Generate(r, g, metric, g.Nodes(), place)
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("windows: window %d invalid: %w", i, err)
		}
		seq.Windows = append(seq.Windows, in)
	}
	seq.Home = append([]graph.NodeID(nil), seq.Windows[0].Home...)
	return seq, nil
}

// Result reports one multi-window execution.
type Result struct {
	// Mode is "barrier" or "pipelined".
	Mode string
	// Makespan is the completion step of the last window's last
	// transaction.
	Makespan int64
	// PerWindow holds each window's schedule (times local to the global
	// clock).
	PerWindow []*schedule.Schedule
	// WindowEnd[i] is the last commit step of window i.
	WindowEnd []int64
}

// Run schedules the sequence window by window. With pipelined = false, a
// global barrier separates windows: each window takes the §2.3 greedy
// coloring shifted past the previous window's completion. With pipelined
// = true, transactions are list-scheduled across window boundaries in
// coloring order: each starts at the earliest step its own objects and
// node allow, so a window's cold transactions overlap the previous
// window's stragglers.
func Run(seq *Sequence, pipelined bool) (*Result, error) {
	mode := "barrier"
	if pipelined {
		mode = "pipelined"
	}
	res := &Result{Mode: mode}

	relT := make([]int64, seq.NumObjects)
	relN := make([]graph.NodeID, seq.NumObjects)
	copy(relN, seq.Home)
	nodeBusy := make(map[graph.NodeID]int64) // last commit step per node
	var clock int64

	// One mutable conflict index is reused across the whole sequence:
	// window i's members are deregistered and window i+1's registered in
	// place, so the per-window dependency graphs are built without
	// re-deriving object memberships (or reallocating member lists) from
	// scratch each window.
	index := tm.NewConflictIndex(seq.NumObjects)
	var prev *tm.Instance

	// An independent cross-check of the composed sequence: the checker
	// re-derives the per-object handoff chains and per-node commit
	// ordering from the schedules alone, so a bookkeeping bug in either
	// mode's relT/relN/nodeBusy updates surfaces as an error instead of
	// an infeasible (but silently accepted) sequence. Pipelined mode has
	// no other validation; barrier mode keeps its shadow-instance check
	// as well.
	checker := NewChainChecker(seq.Metric, seq.Home)

	for wi, in := range seq.Windows {
		if prev != nil {
			for i := range prev.Txns {
				index.Remove(prev.Txns[i].ID, prev.Txns[i].Objects)
			}
		}
		for i := range in.Txns {
			index.Add(in.Txns[i].ID, in.Txns[i].Objects)
		}
		prev = in
		h := depgraph.BuildOpts(in, nil, depgraph.Options{Index: index})
		local := h.GreedyColor(h.OrderByNode(in))

		s := schedule.New(in.NumTxns())
		var windowEnd int64
		if pipelined {
			// Cross-window list scheduling: process this window's
			// transactions in coloring order; each takes the earliest
			// step after its objects can arrive and its node is free.
			order := make([]int, len(h.IDs))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				if local[order[a]] != local[order[b]] {
					return local[order[a]] < local[order[b]]
				}
				return h.IDs[order[a]] < h.IDs[order[b]]
			})
			for _, i := range order {
				id := h.IDs[i]
				txn := &in.Txns[id]
				var t int64 = 1
				for _, o := range txn.Objects {
					if need := relT[o] + seq.Metric.Dist(relN[o], txn.Node); need > t {
						t = need
					}
				}
				if busy := nodeBusy[txn.Node]; busy >= t {
					t = busy + 1
				}
				s.Times[id] = t
				nodeBusy[txn.Node] = t
				for _, o := range txn.Objects {
					if t > relT[o] {
						relT[o] = t
						relN[o] = txn.Node
					}
				}
				if t > windowEnd {
					windowEnd = t
				}
				if t > clock {
					clock = t
				}
			}
		} else {
			// Barrier: one shift past the clock plus the exact object
			// and node constraints (the composer pattern).
			delta := clock
			for i, id := range h.IDs {
				txn := &in.Txns[id]
				for _, o := range txn.Objects {
					if need := relT[o] + seq.Metric.Dist(relN[o], txn.Node) - local[i]; need > delta {
						delta = need
					}
				}
				if busy := nodeBusy[txn.Node]; busy > 0 {
					if need := busy + 1 - local[i]; need > delta {
						delta = need
					}
				}
			}
			for i, id := range h.IDs {
				t := local[i] + delta
				s.Times[id] = t
				if t > windowEnd {
					windowEnd = t
				}
			}
			// Validate against a shadow instance whose homes are the
			// objects' current positions (sound: true release times are
			// later than the shadow's time-0 homes).
			shadow := tm.NewInstance(in.G, seq.Metric, in.NumObjects, in.Txns, relN)
			if err := s.Validate(shadow); err != nil {
				return nil, fmt.Errorf("windows: window %d infeasible: %w", wi, err)
			}
			for _, id := range h.IDs {
				txn := &in.Txns[id]
				if busy, ok := nodeBusy[txn.Node]; ok && s.Times[id] <= busy {
					return nil, fmt.Errorf("windows: window %d node %d executes at %d, not after %d", wi, txn.Node, s.Times[id], busy)
				}
			}
			for _, id := range h.IDs {
				txn := &in.Txns[id]
				t := s.Times[id]
				nodeBusy[txn.Node] = t
				for _, o := range txn.Objects {
					if t > relT[o] {
						relT[o] = t
						relN[o] = txn.Node
					}
				}
				if t > clock {
					clock = t
				}
			}
		}
		if err := checker.Check(in, s); err != nil {
			return nil, fmt.Errorf("windows: %s mode cross-check failed: %w", mode, err)
		}
		res.PerWindow = append(res.PerWindow, s)
		res.WindowEnd = append(res.WindowEnd, windowEnd)
		if windowEnd > res.Makespan {
			res.Makespan = windowEnd
		}
	}
	return res, nil
}
