// Package congestion addresses the paper's second open question (Section
// 9): the impact of bounded link capacity. The base model lets unlimited
// objects cross an edge concurrently; here a schedule's object movements
// are replayed hop by hop with at most Capacity objects occupying an edge
// at once, objects queueing FCFS when a link is full, and transactions
// executing as soon as their (possibly delayed) objects assemble.
//
// The replay preserves the schedule's commit order per object, so the
// result is a *dilation* measurement: how much longer the same logical
// schedule takes when the network can actually be congested.
package congestion

import (
	"container/heap"
	"fmt"
	"sort"

	"dtmsched/internal/graph"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
)

// Result reports one congestion-limited replay.
type Result struct {
	// Capacity is the per-edge concurrent-object limit replayed under.
	Capacity int
	// Makespan is the dilated completion step.
	Makespan int64
	// IdealMakespan is the makespan of the same replay with unlimited
	// capacity (the base model), for direct dilation comparison.
	IdealMakespan int64
	// Dilation is Makespan / IdealMakespan.
	Dilation float64
	// MaxQueue is the largest number of objects simultaneously waiting
	// on a single link.
	MaxQueue int
	// Waits is the total number of object·steps spent blocked on full
	// links.
	Waits int64
}

type edgeKey struct {
	u, v graph.NodeID
}

func keyOf(u, v graph.NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// releaseHeap tracks when in-flight traversals free their edge slot.
type releaseHeap []int64

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h releaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Replay runs schedule s on instance in with per-edge capacity cap ≥ 1.
// Paths are the communication graph's shortest paths (the metric oracle is
// not used: congestion is inherently a per-link phenomenon).
func Replay(in *tm.Instance, s *schedule.Schedule, cap int) (*Result, error) {
	if cap < 1 {
		return nil, fmt.Errorf("congestion: capacity %d < 1", cap)
	}
	if len(s.Times) != in.NumTxns() {
		return nil, fmt.Errorf("congestion: schedule has %d times for %d transactions", len(s.Times), in.NumTxns())
	}
	makespan, maxQueue, waits, err := replay(in, s, cap)
	if err != nil {
		return nil, err
	}
	ideal, _, _, err := replay(in, s, 0) // 0 = unlimited
	if err != nil {
		return nil, err
	}
	res := &Result{
		Capacity:      cap,
		Makespan:      makespan,
		IdealMakespan: ideal,
		MaxQueue:      maxQueue,
		Waits:         waits,
	}
	if ideal > 0 {
		res.Dilation = float64(makespan) / float64(ideal)
	}
	return res, nil
}

// replay is the hop-by-hop engine; cap == 0 means unlimited capacity.
func replay(in *tm.Instance, s *schedule.Schedule, cap int) (makespan int64, maxQueue int, waits int64, err error) {
	m := in.NumTxns()

	// Per-object itinerary (requesters in schedule order) and hop path
	// for the current leg. Timing matches the base model: an object
	// released at the end of step t and d away is usable at step t+d, so
	// a weight-w edge entered at step s occupies steps s…s+w−1 and the
	// object may use / leave the far endpoint at step s+w−1 / s+w.
	type objState struct {
		itinerary []tm.TxnID
		leg       int            // index into itinerary of the current destination
		path      []graph.NodeID // remaining nodes of the current leg (path[0] = current)
		moving    bool           // true when released toward itinerary[leg]
		arrivedAt int64          // step the object is usable at its destination (−1 while moving)
		entered   int64          // step the object entered its current edge (−1 if idle at path[0])
	}
	objs := make([]objState, in.NumObjects)
	for o := range objs {
		it := s.Order(in, tm.ObjectID(o))
		objs[o] = objState{itinerary: it, arrivedAt: -1, entered: -1}
	}

	// Edge occupancy.
	busy := make(map[edgeKey]*releaseHeap)
	occupancy := func(k edgeKey, step int64) int {
		h, ok := busy[k]
		if !ok {
			return 0
		}
		for h.Len() > 0 && (*h)[0] <= step {
			heap.Pop(h)
		}
		return h.Len()
	}

	// startLeg points the object toward its next itinerary stop.
	startLeg := func(o int, from graph.NodeID, step int64) {
		st := &objs[o]
		st.arrivedAt = -1
		st.entered = -1
		st.moving = false
		if st.leg >= len(st.itinerary) {
			return
		}
		dest := in.Txns[st.itinerary[st.leg]].Node
		if dest == from {
			st.arrivedAt = step
			return
		}
		st.path = in.G.Path(from, dest)
		st.moving = true
	}

	// Release every object from home toward its first requester.
	for o := 0; o < in.NumObjects; o++ {
		if len(objs[o].itinerary) > 0 {
			startLeg(o, in.Home[o], 0)
		}
	}

	executed := make([]bool, m)
	remaining := m
	// A conservative horizon: every hop can be delayed by at most all
	// other objects traversing the same edge.
	horizon := s.Makespan() * int64(in.NumObjects+2) * (in.G.MaxEdgeWeight() + 1)
	if horizon < 64 {
		horizon = 64
	}

	ids := make([]int, in.NumObjects)
	for i := range ids {
		ids[i] = i
	}

	for step := int64(1); remaining > 0; step++ {
		if step > horizon {
			return 0, 0, 0, fmt.Errorf("congestion: replay exceeded horizon %d with %d transactions pending", horizon, remaining)
		}
		// 1. Advance moving objects (FCFS in object-ID order: a fixed,
		// fair arbitration).
		sort.Ints(ids)
		for _, o := range ids {
			st := &objs[o]
			if !st.moving {
				continue
			}
			// Complete an in-flight hop once its traversal steps elapsed.
			if st.entered >= 0 {
				w, _ := in.G.HasEdge(st.path[0], st.path[1])
				if step < st.entered+w {
					continue // still traversing (or resting at the far end)
				}
				st.path = st.path[1:]
				st.entered = -1
				if len(st.path) == 1 {
					st.moving = false
					continue // arrivedAt was set when entering this final edge
				}
			}
			// Try to enter the next edge.
			k := keyOf(st.path[0], st.path[1])
			w, ok := in.G.HasEdge(st.path[0], st.path[1])
			if !ok {
				return 0, 0, 0, fmt.Errorf("congestion: path uses missing edge %d-%d", st.path[0], st.path[1])
			}
			if cap > 0 {
				occ := occupancy(k, step)
				if occ >= cap {
					waits++
					if q := occ + 1; q > maxQueue {
						maxQueue = q
					}
					continue
				}
				h, okh := busy[k]
				if !okh {
					h = &releaseHeap{}
					busy[k] = h
				}
				heap.Push(h, step+w)
			}
			st.entered = step
			if len(st.path) == 2 {
				// Final hop: usable at the destination on its last
				// in-transit step, matching t' ≥ t + d.
				st.arrivedAt = step + w - 1
			}
		}
		// 2. Execute transactions whose objects have all arrived.
		for i := 0; i < m; i++ {
			if executed[i] {
				continue
			}
			ready := true
			for _, o := range in.Txns[i].Objects {
				st := &objs[o]
				if st.leg >= len(st.itinerary) || st.itinerary[st.leg] != tm.TxnID(i) ||
					st.arrivedAt < 0 || st.arrivedAt > step {
					ready = false
					break
				}
			}
			if len(in.Txns[i].Objects) == 0 {
				// Object-free transactions follow their scheduled step.
				ready = step >= s.Times[i]
			}
			if !ready {
				continue
			}
			executed[i] = true
			remaining--
			if step > makespan {
				makespan = step
			}
			for _, o := range in.Txns[i].Objects {
				st := &objs[o]
				st.leg++
				startLeg(int(o), in.Txns[i].Node, step)
			}
		}
	}
	return makespan, maxQueue, waits, nil
}
