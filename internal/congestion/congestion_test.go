package congestion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtmsched/internal/core"
	"dtmsched/internal/graph"
	"dtmsched/internal/lower"
	"dtmsched/internal/schedule"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

func gridInstance(side, w, k int, seed int64) (*tm.Instance, *topology.Grid) {
	topo := topology.NewSquareGrid(side)
	in := tm.UniformK(w, k).Generate(xrand.New(seed), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	return in, topo
}

func scheduleOf(t testing.TB, in *tm.Instance, topo *topology.Grid) *schedule.Schedule {
	t.Helper()
	res, err := (&core.Grid{Topo: topo}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

func TestReplayUnlimitedMatchesASAP(t *testing.T) {
	in, topo := gridInstance(6, 8, 2, 1)
	s := scheduleOf(t, in, topo)
	res, err := Replay(in, s, 1<<20) // effectively unlimited
	if err != nil {
		t.Fatal(err)
	}
	if res.Waits != 0 {
		t.Fatalf("huge capacity still waited %d times", res.Waits)
	}
	if res.Makespan != res.IdealMakespan {
		t.Fatalf("unlimited replay %d != ideal %d", res.Makespan, res.IdealMakespan)
	}
	if res.Dilation != 1.0 {
		t.Fatalf("dilation = %v", res.Dilation)
	}
	// ASAP replay can only tighten a feasible schedule, never beat the
	// instance lower bound.
	lb := lower.Compute(in)
	if res.Makespan > s.Makespan() || res.Makespan < lb.Value {
		t.Fatalf("ideal %d outside [lb %d, schedule %d]", res.Makespan, lb.Value, s.Makespan())
	}
}

func TestReplayCapacityMonotone(t *testing.T) {
	in, topo := gridInstance(6, 6, 2, 2)
	s := scheduleOf(t, in, topo)
	prev := int64(-1)
	for _, cap := range []int{1, 2, 4, 64} {
		res, err := Replay(in, s, cap)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dilation < 1.0-1e-9 {
			t.Fatalf("cap=%d dilation %v < 1", cap, res.Dilation)
		}
		if prev >= 0 && res.Makespan > prev {
			t.Fatalf("makespan increased with capacity: cap=%d gives %d after %d", cap, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestReplayCongestedHotLink(t *testing.T) {
	// A star forces every object through the center: capacity 1 on its
	// edges must create measurable waits when many objects cross at once.
	topo := topology.NewStar(6, 2)
	in := tm.UniformK(12, 2).Generate(xrand.New(3), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (&core.Star{Topo: topo, Rng: xrand.New(4)}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	congested, err := Replay(in, res.Schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	if congested.Makespan < congested.IdealMakespan {
		t.Fatalf("congested %d < ideal %d", congested.Makespan, congested.IdealMakespan)
	}
}

func TestReplayErrors(t *testing.T) {
	in, topo := gridInstance(4, 4, 1, 5)
	s := scheduleOf(t, in, topo)
	if _, err := Replay(in, s, 0); err == nil {
		t.Fatal("accepted capacity 0")
	}
	if _, err := Replay(in, &schedule.Schedule{Times: []int64{1}}, 1); err == nil {
		t.Fatal("accepted wrong-length schedule")
	}
}

func TestReplayWeightedEdges(t *testing.T) {
	// Cluster graph: bridge edges have weight γ; replay must handle
	// multi-step traversals.
	topo := topology.NewCluster(3, 4, 6)
	in := tm.UniformK(6, 2).Generate(xrand.New(6), topo.Graph(),
		graph.FuncMetric(topo.Dist), topo.Graph().Nodes(), tm.PlaceAtRandomUser)
	res, err := (&core.Cluster{Topo: topo, Rng: xrand.New(7)}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 8} {
		r, err := Replay(in, res.Schedule, cap)
		if err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		if r.Makespan < 1 {
			t.Fatalf("cap=%d makespan %d", cap, r.Makespan)
		}
	}
}

// TestReplayAlwaysCompletesProperty: any feasible schedule replays to
// completion at any capacity, with dilation ≥ 1 and makespan monotone
// non-increasing in capacity.
func TestReplayAlwaysCompletesProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		side := 3 + r.Intn(5)
		w := 2 + r.Intn(6)
		k := 1 + r.Intn(minInt(w, 3))
		in, topo := gridInstance(side, w, k, seed)
		res, err := (&core.Grid{Topo: topo}).Schedule(in)
		if err != nil {
			return false
		}
		c1, err := Replay(in, res.Schedule, 1)
		if err != nil {
			return false
		}
		c8, err := Replay(in, res.Schedule, 8)
		if err != nil {
			return false
		}
		return c1.Dilation >= 1.0-1e-9 && c8.Dilation >= 1.0-1e-9 && c1.Makespan >= c8.Makespan
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
