package dtmsched

import (
	"fmt"
	"strings"
	"testing"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/hier"
)

// smallSystems builds one tiny System per topology family, keyed by
// Topology() kind name.
func smallSystems() map[string]*System {
	w := Uniform(8, 2)
	return map[string]*System{
		"clique":    NewCliqueSystem(8, w),
		"line":      NewLineSystem(8, w),
		"grid":      NewGridSystem(4, w),
		"hypercube": NewHypercubeSystem(3, w),
		"cluster":   NewClusterSystem(2, 4, 8, w),
		"star":      NewStarSystem(2, 4, w),
		"fogcloud":  NewFogCloudSystem([]int{2, 3}, []int64{4, 1}, w),
	}
}

// TestSchedulerResolution drives every Algorithm constant against every
// topology family: concrete scheduler types on success (including the
// forced cluster/star approaches), and the topology-mismatch errors.
func TestSchedulerResolution(t *testing.T) {
	systems := smallSystems()
	tests := []struct {
		alg Algorithm
		// want maps topology kind → expected check; topologies absent
		// from the map must fail with wantErr.
		want    map[string]func(t *testing.T, s core.Scheduler)
		wantErr string // substring of the mismatch error, "" if alg never errors
	}{
		{
			alg: AlgGreedy,
			want: map[string]func(*testing.T, core.Scheduler){
				"clique": isType[*core.Greedy], "line": isType[*core.Greedy],
				"grid": isType[*core.Greedy], "hypercube": isType[*core.Greedy],
				"cluster": isType[*core.Greedy], "star": isType[*core.Greedy],
				"fogcloud": isType[*core.Greedy],
			},
		},
		{
			alg:     AlgLine,
			want:    map[string]func(*testing.T, core.Scheduler){"line": isType[*core.Line]},
			wantErr: "requires a line topology",
		},
		{
			alg:     AlgGrid,
			want:    map[string]func(*testing.T, core.Scheduler){"grid": isType[*core.Grid]},
			wantErr: "requires a grid topology",
		},
		{
			alg:     AlgCluster,
			want:    map[string]func(*testing.T, core.Scheduler){"cluster": clusterApproach(core.ClusterAuto)},
			wantErr: "requires a cluster topology",
		},
		{
			alg:     AlgClusterGreedy,
			want:    map[string]func(*testing.T, core.Scheduler){"cluster": clusterApproach(core.ClusterApproach1)},
			wantErr: "requires a cluster topology",
		},
		{
			alg:     AlgClusterRandom,
			want:    map[string]func(*testing.T, core.Scheduler){"cluster": clusterApproach(core.ClusterApproach2)},
			wantErr: "requires a cluster topology",
		},
		{
			alg:     AlgStar,
			want:    map[string]func(*testing.T, core.Scheduler){"star": starApproach(core.ClusterAuto)},
			wantErr: "requires a star topology",
		},
		{
			alg:     AlgStarGreedy,
			want:    map[string]func(*testing.T, core.Scheduler){"star": starApproach(core.ClusterApproach1)},
			wantErr: "requires a star topology",
		},
		{
			alg:     AlgStarRandom,
			want:    map[string]func(*testing.T, core.Scheduler){"star": starApproach(core.ClusterApproach2)},
			wantErr: "requires a star topology",
		},
		{
			alg:     AlgHier,
			want:    map[string]func(*testing.T, core.Scheduler){"fogcloud": isType[*hier.Scheduler]},
			wantErr: "requires a fogcloud topology",
		},
		{
			alg: AlgSequential,
			want: map[string]func(*testing.T, core.Scheduler){
				"clique": isType[baseline.Sequential], "line": isType[baseline.Sequential],
				"grid": isType[baseline.Sequential], "hypercube": isType[baseline.Sequential],
				"cluster": isType[baseline.Sequential], "star": isType[baseline.Sequential],
				"fogcloud": isType[baseline.Sequential],
			},
		},
		{
			alg: AlgList,
			want: map[string]func(*testing.T, core.Scheduler){
				"clique": isType[baseline.List], "line": isType[baseline.List],
				"grid": isType[baseline.List], "hypercube": isType[baseline.List],
				"cluster": isType[baseline.List], "star": isType[baseline.List],
				"fogcloud": isType[baseline.List],
			},
		},
		{
			alg: AlgRandomOrder,
			want: map[string]func(*testing.T, core.Scheduler){
				"clique": isType[baseline.Random], "line": isType[baseline.Random],
				"grid": isType[baseline.Random], "hypercube": isType[baseline.Random],
				"cluster": isType[baseline.Random], "star": isType[baseline.Random],
				"fogcloud": isType[baseline.Random],
			},
		},
		{
			// AlgAuto dispatches on topology: the structured scheduler
			// where one exists, greedy on diameter-friendly graphs.
			alg: AlgAuto,
			want: map[string]func(*testing.T, core.Scheduler){
				"clique": isType[*core.Greedy], "hypercube": isType[*core.Greedy],
				"line": isType[*core.Line], "grid": isType[*core.Grid],
				"cluster": clusterApproach(core.ClusterAuto), "star": starApproach(core.ClusterAuto),
				"fogcloud": isType[*hier.Scheduler],
			},
		},
	}

	covered := map[Algorithm]bool{}
	for _, tc := range tests {
		covered[tc.alg] = true
		for kind, sys := range systems {
			t.Run(fmt.Sprintf("%s/%s", tc.alg, kind), func(t *testing.T) {
				sched, err := sys.scheduler(tc.alg)
				check, ok := tc.want[kind]
				if !ok {
					if err == nil {
						t.Fatalf("scheduler(%s) on %s succeeded (%T), want error", tc.alg, kind, sched)
					}
					if tc.wantErr == "" || !strings.Contains(err.Error(), tc.wantErr) {
						t.Fatalf("error %q does not mention %q", err, tc.wantErr)
					}
					return
				}
				if err != nil {
					t.Fatalf("scheduler(%s) on %s: %v", tc.alg, kind, err)
				}
				check(t, sched)
			})
		}
	}

	t.Run("unknown", func(t *testing.T) {
		_, err := systems["clique"].scheduler(Algorithm("nonesuch"))
		if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
			t.Fatalf("unknown algorithm error = %v", err)
		}
	})

	// Every published algorithm must appear in the table above, so a new
	// Alg* constant cannot ship without resolution coverage.
	for _, alg := range Algorithms() {
		if !covered[alg] {
			t.Errorf("Algorithms() includes %q but the resolution table does not", alg)
		}
	}
}

// isType asserts the scheduler's concrete type.
func isType[T core.Scheduler](t *testing.T, s core.Scheduler) {
	t.Helper()
	if _, ok := s.(T); !ok {
		var want T
		t.Fatalf("scheduler is %T, want %T", s, want)
	}
}

// clusterApproach asserts a *core.Cluster with the given forced approach
// and a non-nil rng (Approach 2 needs randomness).
func clusterApproach(ap core.ClusterApproach) func(*testing.T, core.Scheduler) {
	return func(t *testing.T, s core.Scheduler) {
		t.Helper()
		c, ok := s.(*core.Cluster)
		if !ok {
			t.Fatalf("scheduler is %T, want *core.Cluster", s)
		}
		if c.Approach != ap {
			t.Errorf("cluster approach = %v, want %v", c.Approach, ap)
		}
		if c.Rng == nil {
			t.Error("cluster scheduler has no rng")
		}
	}
}

// starApproach is clusterApproach for *core.Star.
func starApproach(ap core.ClusterApproach) func(*testing.T, core.Scheduler) {
	return func(t *testing.T, s core.Scheduler) {
		t.Helper()
		st, ok := s.(*core.Star)
		if !ok {
			t.Fatalf("scheduler is %T, want *core.Star", s)
		}
		if st.Approach != ap {
			t.Errorf("star approach = %v, want %v", st.Approach, ap)
		}
		if st.Rng == nil {
			t.Error("star scheduler has no rng")
		}
	}
}
