// Package dtmsched is the public API of dtmsched, a library of provably fast
// transaction schedulers for distributed transactional memory in the
// data-flow model, reproducing "Fast Scheduling in Distributed
// Transactional Memory" (Busch, Herlihy, Popovic, Sharma; SPAA 2017).
//
// A System couples a communication topology with a batch of transactions
// (one per node) over mobile shared objects. Run applies a scheduling
// algorithm, verifies the resulting schedule against the synchronous
// simulator, computes the instance's certified execution-time lower bound,
// and reports the approximation ratio.
//
// Quickstart:
//
//	sys := dtmsched.NewCliqueSystem(64, dtmsched.Uniform(16, 2), dtmsched.Seed(1))
//	rep, err := sys.Run(dtmsched.AlgGreedy)
//	// rep.Makespan, rep.LowerBound, rep.Ratio, rep.CommCost …
package dtmsched

import (
	"context"
	"fmt"
	"math/rand"

	"dtmsched/internal/baseline"
	"dtmsched/internal/core"
	"dtmsched/internal/engine"
	"dtmsched/internal/graph"
	"dtmsched/internal/hier"
	"dtmsched/internal/tm"
	"dtmsched/internal/topology"
	"dtmsched/internal/xrand"
)

// Re-exported identifier types.
type (
	// NodeID identifies a node of the communication graph.
	NodeID = graph.NodeID
	// ObjectID identifies a shared object.
	ObjectID = tm.ObjectID
	// TxnID identifies a transaction.
	TxnID = tm.TxnID
)

// Algorithm names an available scheduling algorithm.
type Algorithm string

// Available algorithms.
const (
	// AlgAuto picks the paper's scheduler matching the system topology.
	AlgAuto Algorithm = "auto"
	// AlgGreedy is the Section 2.3 greedy dependency-graph coloring
	// schedule (Theorem 1 on cliques; Section 3.1 elsewhere).
	AlgGreedy Algorithm = "greedy"
	// AlgLine is the Section 4 two-phase line schedule.
	AlgLine Algorithm = "line"
	// AlgGrid is the Section 5 subgrid column-major schedule.
	AlgGrid Algorithm = "grid"
	// AlgCluster is Theorem 4's min of the two cluster approaches.
	AlgCluster Algorithm = "cluster"
	// AlgClusterGreedy forces cluster Approach 1.
	AlgClusterGreedy Algorithm = "cluster1"
	// AlgClusterRandom forces cluster Approach 2 (Algorithm 1).
	AlgClusterRandom Algorithm = "cluster2"
	// AlgStar is the Section 7 segment/period star schedule.
	AlgStar Algorithm = "star"
	// AlgStarGreedy forces star Approach 1 per period.
	AlgStarGreedy Algorithm = "star1"
	// AlgStarRandom forces star Approach 2 per period.
	AlgStarRandom Algorithm = "star2"
	// AlgHier is the hierarchical fog–cloud scheduler: subtree-sharded
	// local scheduling plus a top-level cross-tier merge pass (the
	// poly-log fog–cloud extension; requires a fog–cloud topology).
	AlgHier Algorithm = "hier"
	// AlgSequential is the global-lock baseline.
	AlgSequential Algorithm = "sequential"
	// AlgList is the FIFO list-scheduling baseline.
	AlgList Algorithm = "list"
	// AlgRandomOrder is the random-priority list-scheduling baseline.
	AlgRandomOrder Algorithm = "random"
)

// Algorithms lists every selectable algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{AlgAuto, AlgGreedy, AlgLine, AlgGrid, AlgCluster,
		AlgClusterGreedy, AlgClusterRandom, AlgStar, AlgStarGreedy,
		AlgStarRandom, AlgHier, AlgSequential, AlgList, AlgRandomOrder}
}

// Workload describes how transactions pick their object sets; construct
// one with Uniform, Zipf, Hotspot, SingleObject, Localized, or
// WrapWorkload.
type Workload struct {
	w tm.Workload
	// build defers resolution to system construction for workloads whose
	// shape depends on the topology (Localized's fog-subtree groups).
	build func(topology.Topology) (tm.Workload, error)
}

// Uniform gives every transaction a uniformly random k-subset of w objects
// (the Grid problem's input model).
func Uniform(w, k int) Workload { return Workload{w: tm.UniformK(w, k)} }

// Zipf skews object popularity (hot objects requested far more often).
func Zipf(w, k int) Workload { return Workload{w: tm.ZipfK(w, k)} }

// Hotspot makes all transactions share object 0 plus k−1 uniform others.
func Hotspot(w, k int) Workload { return Workload{w: tm.HotspotK(w, k)} }

// SingleObject is the classic one-shared-object workload of earlier
// data-flow literature.
func SingleObject() Workload { return Workload{w: tm.SingleObject()} }

// WrapWorkload adapts a raw internal workload — e.g. tm.LocalizedK,
// whose subtree groups are derived from a fog–cloud topology — for the
// System constructors. Like System.Instance, this is an advanced-use
// escape hatch into the internal model.
func WrapWorkload(w tm.Workload) Workload { return Workload{w: w} }

// Localized interpolates between fully subtree-local and uniform object
// draws on a fog–cloud system: each of a transaction's k picks stays
// inside its node's fog-subtree object group with probability locality,
// and is uniform over all w objects otherwise. Valid only with
// NewFogCloudSystem (whose fog tier defines the groups); construction
// panics on any other topology, mirroring the other workloads'
// invalid-parameter panics.
func Localized(w, k int, locality float64) Workload {
	return Workload{build: func(topo topology.Topology) (tm.Workload, error) {
		fc, ok := topo.(*topology.FogCloud)
		if !ok {
			return tm.Workload{}, fmt.Errorf("dtm: the Localized workload needs a fog–cloud system, not %s", topo.Kind())
		}
		groups := fc.TierSize(1)
		if w%groups != 0 {
			return tm.Workload{}, fmt.Errorf("dtm: Localized w=%d not divisible by the %d fog subtrees", w, groups)
		}
		return tm.LocalizedK(w, k, groups, locality, func(node graph.NodeID) int {
			if fc.TierOf(node) < 1 {
				return -1 // the cloud root draws uniformly
			}
			return int(fc.Ancestor(node, 1)) - int(fc.TierStart(1))
		}), nil
	}}
}

// Options configures system construction.
type Options struct {
	// Seed roots every random choice (workload, placement, randomized
	// schedulers). The default is xrand.DefaultSeed.
	Seed int64
	// Placement picks initial object homes; default places each object
	// at a random requester, per the paper.
	Placement tm.Placement
	// Precompute forces the all-pairs distance matrix for graph-backed
	// metrics regardless of size. When false (default), the matrix is
	// still installed automatically for topologies whose metric falls
	// back to graph shortest paths (butterfly) when the graph has at
	// most tm.AutoPrecomputeNodes nodes.
	Precompute bool
	// HierTier selects the hierarchical scheduler's shard tier on
	// fog–cloud systems (0 picks the fog tier, tier 1).
	HierTier int
	// HierWorkers bounds the hierarchical scheduler's shard worker pool
	// (0 picks GOMAXPROCS). Schedules are byte-identical at every value.
	HierWorkers int
}

// Option mutates Options.
type Option func(*Options)

// Seed sets the root seed.
func Seed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// PlaceFirstUser homes each object deterministically at its lowest-ID
// requester.
func PlaceFirstUser() Option {
	return func(o *Options) { o.Placement = tm.PlaceAtFirstUser }
}

// PlaceRandomNode homes each object at a uniformly random node (not
// necessarily a requester).
func PlaceRandomNode() Option {
	return func(o *Options) { o.Placement = tm.PlaceRandom }
}

// PrecomputeDistances forces the system's distance oracle onto the
// precomputed all-pairs matrix (Θ(n²) memory, O(1) zero-alloc lookups)
// even above the automatic size threshold. It only applies to topologies
// whose metric is graph-backed; closed-form metrics are already O(1).
func PrecomputeDistances() Option {
	return func(o *Options) { o.Precompute = true }
}

// HierTier selects the shard tier of the hierarchical scheduler on
// fog–cloud systems: subtrees rooted at that tier schedule their local
// conflicts independently. The default (tier 1) shards by the fog tier.
func HierTier(tier int) Option {
	return func(o *Options) { o.HierTier = tier }
}

// HierShardWorkers bounds the hierarchical scheduler's parallel shard
// pool. The schedule is byte-identical at every worker count; the knob
// only trades wall time.
func HierShardWorkers(n int) Option {
	return func(o *Options) { o.HierWorkers = n }
}

// System is a topology plus a generated problem instance, ready to
// schedule.
type System struct {
	topo        topology.Topology
	in          *tm.Instance
	seed        int64
	hierTier    int
	hierWorkers int
}

func newSystem(topo topology.Topology, w Workload, opts []Option) *System {
	o := Options{Seed: xrand.DefaultSeed, Placement: tm.PlaceAtRandomUser}
	for _, fn := range opts {
		fn(&o)
	}
	g := topo.Graph()
	rng := xrand.NewDerived(o.Seed, "workload", g.Name())
	// Topologies without a closed-form metric delegate to graph shortest
	// paths; hand the graph out directly so the instance can see (and
	// precompute) the real oracle instead of an opaque closure.
	var metric graph.Metric = graph.FuncMetric(topo.Dist)
	if topology.MetricFallsBackToGraph(topo) {
		metric = g
	}
	wk := w.w
	if w.build != nil {
		var err error
		if wk, err = w.build(topo); err != nil {
			panic(err)
		}
	}
	in := wk.Generate(rng, g, metric, g.Nodes(), o.Placement)
	if o.Precompute {
		in.PrecomputeDist(0)
	} else {
		in.PrecomputeDistAuto(0)
	}
	return &System{topo: topo, in: in, seed: o.Seed, hierTier: o.HierTier, hierWorkers: o.HierWorkers}
}

// NewCliqueSystem builds a system on the complete graph K_n.
func NewCliqueSystem(n int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewClique(n), w, opts)
}

// NewLineSystem builds a system on the n-node line.
func NewLineSystem(n int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewLine(n), w, opts)
}

// NewGridSystem builds a system on the side×side grid.
func NewGridSystem(side int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewSquareGrid(side), w, opts)
}

// NewHypercubeSystem builds a system on the dim-dimensional hypercube.
func NewHypercubeSystem(dim int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewHypercube(dim), w, opts)
}

// NewButterflySystem builds a system on the dim-dimensional butterfly.
func NewButterflySystem(dim int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewButterfly(dim), w, opts)
}

// NewClusterSystem builds a system on α cliques of β nodes with bridge
// weight γ.
func NewClusterSystem(alpha, beta int, gamma int64, w Workload, opts ...Option) *System {
	return newSystem(topology.NewCluster(alpha, beta, gamma), w, opts)
}

// NewStarSystem builds a system on a star of α rays × β nodes.
func NewStarSystem(alpha, beta int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewStar(alpha, beta), w, opts)
}

// NewTorusSystem builds a system on the rows×cols torus (extension
// topology; the grid scheduler applies).
func NewTorusSystem(rows, cols int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewTorus(rows, cols), w, opts)
}

// NewRingSystem builds a system on the n-node cycle (bus/token-ring
// architectures; extension topology, scheduled greedily).
func NewRingSystem(n int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewRing(n), w, opts)
}

// NewTreeSystem builds a system on the complete b-ary tree of the given
// depth (hierarchical datacenters; extension topology, scheduled
// greedily with the O(k·ℓ·d) diameter bound).
func NewTreeSystem(branching, depth int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewBTree(branching, depth), w, opts)
}

// NewMultiGridSystem builds a system on the d-dimensional mesh with the
// given per-dimension sizes (Section 3.1's log n-dimensional grids).
func NewMultiGridSystem(dims []int, w Workload, opts ...Option) *System {
	return newSystem(topology.NewMultiGrid(dims...), w, opts)
}

// NewFogCloudSystem builds a system on the hierarchical edge–fog–cloud
// tree: tier t nodes have fanout[t] children each, reached over links of
// weight linkWeights[t] (the fog–cloud extension topology, scheduled
// hierarchically by subtree shards).
func NewFogCloudSystem(fanout []int, linkWeights []int64, w Workload, opts ...Option) *System {
	return newSystem(topology.NewFogCloud(fanout, linkWeights), w, opts)
}

// Topology returns the system's topology kind name.
func (s *System) Topology() string { return s.topo.Kind().String() }

// NumNodes returns the node count.
func (s *System) NumNodes() int { return s.in.G.NumNodes() }

// NumTxns returns the transaction count.
func (s *System) NumTxns() int { return s.in.NumTxns() }

// NumObjects returns w.
func (s *System) NumObjects() int { return s.in.NumObjects }

// Instance exposes the underlying problem instance for advanced use
// (custom schedulers, direct simulator access).
func (s *System) Instance() *tm.Instance { return s.in }

// Report is the outcome of running one algorithm on a system.
type Report struct {
	// Algorithm is the concrete algorithm that ran (e.g.
	// "cluster/approach2" when AlgCluster picked Approach 2).
	Algorithm string
	// Topology names the topology family.
	Topology string
	// Makespan is the schedule's execution time (Definition 1).
	Makespan int64
	// LowerBound is the instance's certified optimal-makespan lower
	// bound; Ratio = Makespan / LowerBound overestimates the true
	// approximation ratio.
	LowerBound int64
	// Ratio is Makespan / LowerBound.
	Ratio float64
	// CommCost is the total distance traveled by all objects, as
	// measured by the simulator.
	CommCost int64
	// MaxUse is ℓ, MaxWalk the longest shortest object walk (lower
	// bound side).
	MaxUse  int
	MaxWalk int64
	// Stats carries algorithm-specific counters.
	Stats map[string]int64
	// Verify is the verification policy the report was produced under.
	Verify VerifyMode
	// Timing is the run pipeline's per-stage wall-time instrumentation.
	Timing Timing
	// Counters carries the simulator counters (VerifyFull runs only).
	Counters Counters
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%-20s on %-10s makespan=%-7d lb=%-6d ratio=%.2f comm=%d",
		r.Algorithm, r.Topology, r.Makespan, r.LowerBound, r.Ratio, r.CommCost)
}

// Run schedules the system with the chosen algorithm, verifies the
// schedule in the synchronous simulator, and reports makespan,
// communication cost, and the approximation ratio against the certified
// lower bound. It is RunContext with a background context and full
// verification.
func (s *System) Run(alg Algorithm) (*Report, error) {
	return s.RunContext(context.Background(), alg, VerifyFull)
}

// RunContext runs one algorithm through the staged engine pipeline
// (Generate → Schedule → Verify → Measure) with the given cancellation
// context and verification policy. The returned report carries per-stage
// timings and, under VerifyFull, the simulator's counters.
func (s *System) RunContext(ctx context.Context, alg Algorithm, verify VerifyMode) (*Report, error) {
	sched, err := s.scheduler(alg)
	if err != nil {
		return nil, err
	}
	rep, err := engine.Run(ctx, engine.Job{
		Name:      string(alg),
		Instance:  s.in,
		Scheduler: sched,
		Verify:    verify,
	})
	if err != nil {
		return nil, err
	}
	return s.report(rep), nil
}

// report converts an engine report into the facade's Report shape.
func (s *System) report(rep *engine.Report) *Report {
	return &Report{
		Algorithm:  rep.Algorithm,
		Topology:   s.Topology(),
		Makespan:   rep.Makespan,
		LowerBound: rep.Bound.Value,
		Ratio:      rep.Ratio,
		CommCost:   rep.CommCost,
		MaxUse:     rep.Bound.MaxUse,
		MaxWalk:    rep.Bound.MaxWalkLB,
		Stats:      rep.Stats,
		Verify:     rep.Verify,
		Timing:     rep.Timing,
		Counters:   rep.Counters,
	}
}

// scheduler resolves an Algorithm name against the system's topology.
func (s *System) scheduler(alg Algorithm) (core.Scheduler, error) {
	rng := func(tag string) *rand.Rand { return xrand.NewDerived(s.seed, "alg", tag) }
	if alg == AlgAuto {
		switch t := s.topo.(type) {
		case *topology.Line:
			return &core.Line{Topo: t}, nil
		case *topology.Grid:
			return &core.Grid{Topo: t}, nil
		case *topology.ClusterGraph:
			return &core.Cluster{Topo: t, Rng: rng("cluster")}, nil
		case *topology.Star:
			return &core.Star{Topo: t, Rng: rng("star")}, nil
		case *topology.FogCloud:
			return &hier.Scheduler{Topo: t, Tier: s.hierTier, Workers: s.hierWorkers}, nil
		default:
			return &core.Greedy{}, nil
		}
	}
	switch alg {
	case AlgGreedy:
		return &core.Greedy{}, nil
	case AlgLine:
		t, ok := s.topo.(*topology.Line)
		if !ok {
			return nil, fmt.Errorf("dtm: %s requires a line topology, have %s", alg, s.Topology())
		}
		return &core.Line{Topo: t}, nil
	case AlgGrid:
		t, ok := s.topo.(*topology.Grid)
		if !ok {
			return nil, fmt.Errorf("dtm: %s requires a grid topology, have %s", alg, s.Topology())
		}
		return &core.Grid{Topo: t}, nil
	case AlgCluster, AlgClusterGreedy, AlgClusterRandom:
		t, ok := s.topo.(*topology.ClusterGraph)
		if !ok {
			return nil, fmt.Errorf("dtm: %s requires a cluster topology, have %s", alg, s.Topology())
		}
		ap := core.ClusterAuto
		if alg == AlgClusterGreedy {
			ap = core.ClusterApproach1
		} else if alg == AlgClusterRandom {
			ap = core.ClusterApproach2
		}
		return &core.Cluster{Topo: t, Rng: rng("cluster"), Approach: ap}, nil
	case AlgStar, AlgStarGreedy, AlgStarRandom:
		t, ok := s.topo.(*topology.Star)
		if !ok {
			return nil, fmt.Errorf("dtm: %s requires a star topology, have %s", alg, s.Topology())
		}
		ap := core.ClusterAuto
		if alg == AlgStarGreedy {
			ap = core.ClusterApproach1
		} else if alg == AlgStarRandom {
			ap = core.ClusterApproach2
		}
		return &core.Star{Topo: t, Rng: rng("star"), Approach: ap}, nil
	case AlgHier:
		t, ok := s.topo.(*topology.FogCloud)
		if !ok {
			return nil, fmt.Errorf("dtm: %s requires a fogcloud topology, have %s", alg, s.Topology())
		}
		return &hier.Scheduler{Topo: t, Tier: s.hierTier, Workers: s.hierWorkers}, nil
	case AlgSequential:
		return baseline.Sequential{}, nil
	case AlgList:
		return baseline.List{}, nil
	case AlgRandomOrder:
		return baseline.Random{Rng: rng("baseline")}, nil
	default:
		return nil, fmt.Errorf("dtm: unknown algorithm %q", alg)
	}
}
