package dtmsched

// Extensions beyond the paper's batch offline model, addressing its
// Section 9 open questions and Section 1.2 related directions:
//
//   - RunOnline: continuous transaction arrival with pluggable contention
//     management (open question 1);
//   - RunCongested: replay a schedule under bounded per-link capacity
//     (open question 2);
//   - RunReplicated: multi-version semantics where read-only accesses are
//     served by replicas (related work on replicated/multi-version TMs).

import (
	"fmt"

	"dtmsched/internal/congestion"
	"dtmsched/internal/online"
	"dtmsched/internal/replica"
	"dtmsched/internal/xrand"
)

// Policy names an online contention-management policy.
type Policy string

// Online policies.
const (
	// PolicyFIFO serves the longest-waiting transaction first.
	PolicyFIFO Policy = "fifo"
	// PolicyNearest sends each freed object to its closest waiter.
	PolicyNearest Policy = "nearest"
	// PolicyRandom serves a uniformly random waiter.
	PolicyRandom Policy = "random"
)

// OnlineReport is the outcome of an online execution.
type OnlineReport struct {
	// Policy is the contention-management policy that ran.
	Policy string
	// Makespan is the completion step of the last transaction.
	Makespan int64
	// CommCost is the total distance traveled by objects.
	CommCost int64
	// MeanResponse and MaxResponse measure commit − arrival.
	MeanResponse float64
	MaxResponse  int64
}

// RunOnline executes the system's transactions online: all released at
// step 0 when rate ≤ 0, or arriving as a Poisson-like stream of the given
// mean rate (transactions per step) otherwise. Objects are acquired in
// object-ID order (deadlock- and abort-free); the policy decides which
// waiting transaction each freed object serves next.
func (s *System) RunOnline(pol Policy, rate float64) (*OnlineReport, error) {
	var p online.Policy
	switch pol {
	case PolicyFIFO:
		p = online.FIFO{}
	case PolicyNearest:
		p = online.Nearest{}
	case PolicyRandom:
		p = online.Random{Rng: xrand.NewDerived(s.seed, "online", "policy")}
	default:
		return nil, fmt.Errorf("dtm: unknown online policy %q", pol)
	}
	arrivals := online.BatchArrivals(s.in)
	if rate > 0 {
		arrivals = online.PoissonArrivals(xrand.NewDerived(s.seed, "online", "arrivals"), s.in, rate)
	}
	res, err := online.Run(s.in, arrivals, p)
	if err != nil {
		return nil, err
	}
	return &OnlineReport{
		Policy:       res.Policy,
		Makespan:     res.Makespan,
		CommCost:     res.CommCost,
		MeanResponse: res.MeanResponse,
		MaxResponse:  res.MaxResponse,
	}, nil
}

// CongestionReport is the outcome of a capacity-limited replay.
type CongestionReport struct {
	// Algorithm is the scheduler whose schedule was replayed.
	Algorithm string
	// Capacity is the per-edge concurrent-object limit.
	Capacity int
	// Makespan is the dilated completion step; IdealMakespan the
	// unlimited-capacity replay of the same schedule.
	Makespan, IdealMakespan int64
	// Dilation is Makespan / IdealMakespan.
	Dilation float64
	// MaxQueue and Waits quantify link contention.
	MaxQueue int
	Waits    int64
}

// RunCongested schedules the system with alg, then replays the schedule
// hop by hop with at most capacity objects per link at a time.
func (s *System) RunCongested(alg Algorithm, capacity int) (*CongestionReport, error) {
	sched, err := s.scheduler(alg)
	if err != nil {
		return nil, err
	}
	res, err := sched.Schedule(s.in)
	if err != nil {
		return nil, err
	}
	rep, err := congestion.Replay(s.in, res.Schedule, capacity)
	if err != nil {
		return nil, err
	}
	return &CongestionReport{
		Algorithm:     res.Algorithm,
		Capacity:      rep.Capacity,
		Makespan:      rep.Makespan,
		IdealMakespan: rep.IdealMakespan,
		Dilation:      rep.Dilation,
		MaxQueue:      rep.MaxQueue,
		Waits:         rep.Waits,
	}, nil
}

// ReplicationReport is the outcome of a multi-version schedule.
type ReplicationReport struct {
	// ReadFraction is the share of accesses that were read-only.
	ReadFraction float64
	// WriteAccesses counts (transaction, object) write pairs.
	WriteAccesses int
	// Conflicts counts write-conflict graph edges.
	Conflicts int
	// Makespan is the multi-version schedule's execution time.
	Makespan int64
}

// RunReplicated derives read/write sets with the given read fraction and
// schedules under multi-version semantics: writers serialize on the
// master copy, readers receive replicas and never conflict.
func (s *System) RunReplicated(readFraction float64) (*ReplicationReport, error) {
	if readFraction < 0 || readFraction > 1 {
		return nil, fmt.Errorf("dtm: read fraction %v outside [0,1]", readFraction)
	}
	rw := replica.WithReadFraction(xrand.NewDerived(s.seed, "replica"), s.in, readFraction)
	res, err := replica.Schedule(rw)
	if err != nil {
		return nil, err
	}
	return &ReplicationReport{
		ReadFraction:  readFraction,
		WriteAccesses: rw.WriteCount(),
		Conflicts:     res.Conflicts,
		Makespan:      res.Makespan,
	}, nil
}
