package dtmsched

// The batch API: run many (system, algorithm) pairs concurrently through
// the staged engine pipeline. RunBatch fans jobs out over a bounded worker
// pool, honors context cancellation, recovers per-job panics, and returns
// results in job order — with byte-identical reports (timings aside) for
// every worker count, because each job owns its randomness.

import (
	"context"
	"fmt"

	"dtmsched/internal/engine"
	"dtmsched/internal/tm"
)

// VerifyMode selects how much verification a run performs; see the
// constants below. The zero value is VerifyFull.
type VerifyMode = engine.VerifyMode

// Verification policies for Run / RunContext / RunBatch.
const (
	// VerifyFull validates algebraically and replays the schedule hop by
	// hop in the synchronous simulator (the default).
	VerifyFull = engine.VerifyFull
	// VerifyFast checks only Definition 1's algebraic transfer-time
	// constraints — no simulation, no communication cost.
	VerifyFast = engine.VerifyFast
	// VerifyOff trusts the scheduler; use for large sweeps that only
	// need makespans.
	VerifyOff = engine.VerifyOff
)

// Timing is the run pipeline's per-stage wall-time record.
type Timing = engine.Timing

// Counters carries the simulator counters of a fully verified run.
type Counters = engine.Counters

// RunEvent is one progress record delivered to a batch Hook.
type RunEvent = engine.Event

// RunStage identifies the pipeline stage a RunEvent reports.
type RunStage = engine.Stage

// Pipeline stages reported to hooks, in execution order.
const (
	StageGenerate = engine.StageGenerate
	StageSchedule = engine.StageSchedule
	StageVerify   = engine.StageVerify
	StageMeasure  = engine.StageMeasure
	StageDone     = engine.StageDone
)

// BatchJob is one (system, algorithm) pair for RunBatch. Jobs may share a
// System: instances are read-only during scheduling and their lazy indexes
// are synchronized.
type BatchJob struct {
	// Name labels the job in results and hook events; defaults to
	// "alg@topology".
	Name string
	// System is the system to schedule.
	System *System
	// Alg names the algorithm to resolve against the system's topology.
	Alg Algorithm
	// Verify selects the verification policy (default VerifyFull).
	Verify VerifyMode
}

// BatchResult pairs one BatchJob with its outcome; exactly one of Report /
// Err is set.
type BatchResult struct {
	// Name echoes the job label.
	Name string
	// Report is the finished report on success.
	Report *Report
	// Err is the job's failure: an unresolvable algorithm, a pipeline
	// error, a recovered panic, or the context error for jobs skipped by
	// cancellation.
	Err error
}

// BatchOptions configures RunBatch.
type BatchOptions struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Hook observes per-stage progress; called concurrently from the
	// workers, so it must be goroutine-safe.
	Hook func(RunEvent)
}

// RunBatch runs every job concurrently over a bounded worker pool and
// returns one result per job, in job order. Cancelling the context returns
// promptly with partial results: finished jobs keep their reports,
// unstarted jobs carry the context error. A panicking scheduler fails its
// own job, never the batch. The returned error is the context's error, if
// any; per-job failures are reported only through the results.
func RunBatch(ctx context.Context, jobs []BatchJob, opt BatchOptions) ([]BatchResult, error) {
	ejobs := make([]engine.Job, len(jobs))
	for i, j := range jobs {
		name := j.Name
		if name == "" && j.System != nil {
			name = fmt.Sprintf("%s@%s", j.Alg, j.System.Topology())
		}
		if j.System == nil {
			err := fmt.Errorf("dtm: batch job %d (%s) has no System", i, name)
			ejobs[i] = engine.Job{Name: name, Gen: func() (*tm.Instance, error) { return nil, err }}
			continue
		}
		sched, err := j.System.scheduler(j.Alg)
		if err != nil {
			// Surface resolution failures as that job's error, not a
			// batch abort: the rest of the comparison still runs.
			ejobs[i] = engine.Job{Name: name, Gen: func() (*tm.Instance, error) { return nil, err }}
			continue
		}
		ejobs[i] = engine.Job{
			Name:      name,
			Instance:  j.System.in,
			Scheduler: sched,
			Verify:    j.Verify,
		}
	}
	results, err := engine.RunBatch(ctx, ejobs, engine.Options{Workers: opt.Workers, Hook: engineHook(opt.Hook)})
	out := make([]BatchResult, len(results))
	for i, r := range results {
		out[i] = BatchResult{Name: r.Name, Err: r.Err}
		if r.Report != nil {
			out[i].Report = jobs[i].System.report(r.Report)
		}
	}
	return out, err
}

// engineHook adapts the public hook type (identical underlying type, but
// spelled without the internal package name).
func engineHook(h func(RunEvent)) engine.Hook {
	if h == nil {
		return nil
	}
	return engine.Hook(h)
}
